#include "verify/verify.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/json.hpp"
#include "common/table.hpp"

namespace cr::verify {
namespace {

/// JSON string literal with the standard escapes (the report embeds check
/// diagnostics, which quote cell text freely).
std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

/// Compact observed summary for the terminal table ("name=value, ...").
std::string observed_summary(const ClaimOutcome& outcome, std::size_t max_entries = 2) {
  std::string out;
  for (std::size_t i = 0; i < outcome.observed.size() && i < max_entries; ++i) {
    if (i) out += ", ";
    out += outcome.observed[i].first + "=" + outcome.observed[i].second;
  }
  if (outcome.observed.size() > max_entries) out += ", ...";
  return out;
}

}  // namespace

RunInfo load_run_info(const std::string& out_dir) {
  RunInfo info;
  const JsonParseResult parsed = JsonValue::parse_file(out_dir + "/manifest.json");
  if (!parsed.ok() || !parsed.value->is_object()) return info;
  info.manifest_found = true;
  if (const JsonValue* suite = parsed.value->find("suite"); suite && suite->is_string())
    info.suite = suite->as_string();
  if (const JsonValue* hash = parsed.value->find("config_hash"); hash && hash->is_string())
    info.config_hash = hash->as_string();
  if (const JsonValue* quick = parsed.value->find("quick"); quick && quick->is_bool())
    info.quick = quick->as_bool();
  return info;
}

std::vector<ClaimOutcome> evaluate_claims(const std::string& out_dir, bool quick,
                                          const std::vector<ClaimSpec>* claims) {
  const std::vector<ClaimSpec>& specs =
      claims != nullptr ? *claims : ClaimRegistry::instance().entries();
  std::vector<ClaimOutcome> outcomes;
  outcomes.reserve(specs.size());
  for (const ClaimSpec& spec : specs) {
    ClaimOutcome outcome;
    outcome.id = spec.id;
    outcome.title = spec.title;
    outcome.bound = spec.bound_text(quick);
    outcome.cells = spec.evidence_cells(quick);
    ClaimContext ctx(out_dir, quick);
    ctx.set_cells(outcome.cells);
    try {
      const stat::CheckResult result = spec.check(ctx);
      outcome.verdict = result.passed ? "pass" : "fail";
      outcome.detail = result.message;
    } catch (const EvidenceError& error) {
      // Claim id first: with 15 claims sharing cells, "which claim couldn't
      // read what" is the question the message must answer.
      outcome.verdict = "error";
      outcome.detail = "claim " + spec.id + ": " + error.what();
    }
    outcome.observed = ctx.observed();
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

std::string report_json(const RunInfo& info, const std::vector<ClaimOutcome>& outcomes) {
  std::size_t pass = 0, fail = 0, errors = 0;
  for (const ClaimOutcome& outcome : outcomes) {
    if (outcome.verdict == "pass") ++pass;
    else if (outcome.verdict == "fail") ++fail;
    else ++errors;
  }
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"cr-verify-report/1\",\n";
  os << "  \"suite\": " << json_quote(info.suite) << ",\n";
  os << "  \"config_hash\": " << json_quote(info.config_hash) << ",\n";
  os << "  \"quick\": " << (info.quick ? "true" : "false") << ",\n";
  os << "  \"summary\": {\"claims\": " << outcomes.size() << ", \"pass\": " << pass
     << ", \"fail\": " << fail << ", \"error\": " << errors << "},\n";
  os << "  \"claims\": [";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ClaimOutcome& outcome = outcomes[i];
    os << (i ? ",\n" : "\n");
    os << "    {\n";
    os << "      \"id\": " << json_quote(outcome.id) << ",\n";
    os << "      \"title\": " << json_quote(outcome.title) << ",\n";
    os << "      \"verdict\": " << json_quote(outcome.verdict) << ",\n";
    os << "      \"bound\": " << json_quote(outcome.bound) << ",\n";
    os << "      \"observed\": {";
    for (std::size_t j = 0; j < outcome.observed.size(); ++j) {
      os << (j ? ", " : "") << json_quote(outcome.observed[j].first) << ": "
         << json_quote(outcome.observed[j].second);
    }
    os << "},\n";
    os << "      \"detail\": " << json_quote(outcome.detail) << ",\n";
    os << "      \"cells\": [";
    for (std::size_t j = 0; j < outcome.cells.size(); ++j)
      os << (j ? ", " : "") << json_quote(outcome.cells[j]);
    os << "]\n";
    os << "    }";
  }
  os << "\n  ]\n";
  os << "}\n";
  return os.str();
}

int run_verify(const VerifyOptions& opts, std::ostream& os) {
  const RunInfo info = load_run_info(opts.out_dir);
  if (!info.manifest_found) {
    os << "warning: no readable manifest.json in " << opts.out_dir
       << " (report provenance will be empty)\n";
  } else if (info.quick != opts.quick) {
    // Full bounds against quick evidence guarantee spurious failures (and
    // vice versa masks regressions); make the mismatch a hard setup error.
    os << "error: evidence in " << opts.out_dir << " was "
       << (info.quick ? "a --quick run" : "a full run") << " but cr verify was invoked "
       << (opts.quick ? "with" : "without") << " --quick\n";
    return 2;
  }

  const std::vector<ClaimOutcome> outcomes =
      evaluate_claims(opts.out_dir, opts.quick, opts.claims);

  Table table({"claim", "verdict", "observed", "bound"});
  std::ostringstream title;
  title << "cr verify — " << (info.suite.empty() ? opts.out_dir : info.suite)
        << (opts.quick ? " (quick bounds)" : "") << ", " << outcomes.size() << " claims";
  table.set_title(title.str());
  std::size_t failed = 0;
  for (const ClaimOutcome& outcome : outcomes) {
    if (!outcome.passed()) ++failed;
    table.add_row({outcome.id, outcome.verdict == "pass" ? "PASS" :
                       outcome.verdict == "fail" ? "FAIL" : "ERROR",
                   observed_summary(outcome), outcome.bound});
  }
  table.print(os);
  for (const ClaimOutcome& outcome : outcomes) {
    if (outcome.passed()) continue;
    os << "\n" << outcome.id << " [" << outcome.verdict << "]: " << outcome.detail << "\n";
    for (const auto& [name, value] : outcome.observed)
      os << "    observed " << name << " = " << value << "\n";
  }
  os << "\n" << (outcomes.size() - failed) << "/" << outcomes.size() << " claims pass\n";

  const std::string report_path =
      opts.report_path.empty() ? opts.out_dir + "/verify_report.json" : opts.report_path;
  std::ofstream out(report_path, std::ios::binary | std::ios::trunc);
  out << report_json(info, outcomes);
  out.flush();
  if (!out) {
    os << "error: cannot write report to " << report_path << "\n";
    return 2;
  }
  os << "report: " << report_path << "\n";
  return failed == 0 ? 0 : 1;
}

}  // namespace cr::verify
