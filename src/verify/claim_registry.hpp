/// \file
/// ClaimRegistry — the sixth name-keyed registry (after Engine, Scenario,
/// Bench, Arrival, Jammer): every paper claim the repo reproduces registers
/// an executable acceptance test here, and `cr verify` / tests/test_claims
/// both evaluate the same entries — one assertion path, two harnesses.
///
/// A ClaimSpec names the claim (paper-anchored id like "thm1.2-tradeoff"),
/// the suite cell(s) whose CSVs supply the evidence, the columns it reads,
/// and a check function built from the cr::stat predicates
/// (src/common/stat_assert.hpp). Checks read evidence through a
/// ClaimContext, which loads + caches the per-cell CSVs from a suite run's
/// output directory and turns every malformed-evidence condition (missing
/// file, missing column, non-numeric cell) into an EvidenceError naming the
/// claim, the file and the cell — reported as verdict "error", distinct
/// from a scientific "fail".
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/csv_read.hpp"
#include "common/stat_assert.hpp"

namespace cr::verify {

/// Evidence could not be read or has the wrong shape. Carries a message
/// naming the file/column/row that is wrong; evaluate_claims() converts it
/// into a per-claim "error" verdict instead of aborting the whole run.
class EvidenceError : public std::runtime_error {
 public:
  explicit EvidenceError(const std::string& message) : std::runtime_error(message) {}
};

/// Accessor a claim's check function uses to read suite-run evidence.
/// Loads `<out_dir>/<cell id>.csv` lazily and caches per evaluation run; all
/// accessors throw EvidenceError with a file-and-column-naming message on
/// anything missing or non-numeric.
class ClaimContext {
 public:
  ClaimContext(std::string out_dir, bool quick) : out_dir_(std::move(out_dir)), quick_(quick) {}

  /// True when the evidence comes from a `--quick` suite run: checks widen
  /// their tolerances per the claim's registered quick bounds.
  bool quick() const { return quick_; }

  /// The evidence cell ids of the claim under evaluation
  /// (ClaimSpec::evidence_cells for the active mode; set by the evaluator).
  /// Checks that treat every evidence cell uniformly iterate this instead
  /// of hard-coding ids, so the quick/full cell grids can differ freely.
  const std::vector<std::string>& cells() const { return cells_; }
  void set_cells(std::vector<std::string> cells) { cells_ = std::move(cells); }

  /// The parsed CSV of one evidence cell.
  const CsvTable& table(const std::string& cell_id);

  /// `column` of every data row, parsed as numeric cells, in file order.
  std::vector<NumericCell> column(const std::string& cell_id, const std::string& column);

  /// `column` of the rows whose `key_column` text equals `key`; throws when
  /// no row matches (a vanished protocol/regime name is an evidence bug).
  std::vector<NumericCell> column_where(const std::string& cell_id, const std::string& column,
                                        const std::string& key_column, const std::string& key);

  /// `column` of the single row whose `key_column` equals `key`; throws
  /// unless exactly one row matches.
  NumericCell single_where(const std::string& cell_id, const std::string& column,
                           const std::string& key_column, const std::string& key);

  /// Record an observed scalar for the report ("what did the run measure").
  /// Doubles are formatted shortest-round-trip (std::to_chars).
  void observe(const std::string& name, double value);
  void observe_text(const std::string& name, std::string value);
  const std::vector<std::pair<std::string, std::string>>& observed() const { return observed_; }

  /// Path the evidence for `cell_id` is loaded from (diagnostics).
  std::string csv_path(const std::string& cell_id) const;

 private:
  std::string out_dir_;
  bool quick_ = false;
  std::vector<std::string> cells_;
  std::map<std::string, CsvTable> cache_;
  std::vector<std::pair<std::string, std::string>> observed_;
};

/// One machine-checked paper claim.
struct ClaimSpec {
  std::string id;         ///< paper-anchored slug, e.g. "claim3.5.1-completion"
  std::string title;      ///< one-line human title (verify table, docs)
  std::string statement;  ///< the paper claim being checked, prose
  /// Human-readable acceptance bound at full evidence sizes, e.g.
  /// "per-regime ratio spread <= 2.5x".
  std::string bound;
  /// Bound at --quick sizes when it differs (empty = same as `bound`).
  std::string quick_bound;
  /// Evidence cell ids in a full suite run (suites/paper_repro.json).
  std::vector<std::string> cells;
  /// Evidence cell ids in a --quick run of suites/quick.json, when the cell
  /// grid differs there (empty = same ids as `cells`).
  std::vector<std::string> quick_cells;
  /// CSV columns the check reads (docs: the claim table names its inputs).
  std::vector<std::string> columns;
  /// The executable check. Reads evidence via `ctx`, records observed
  /// values, returns pass/fail with a diagnostic message. May throw
  /// EvidenceError (via the ctx accessors).
  stat::CheckResult (*check)(ClaimContext& ctx);

  const std::vector<std::string>& evidence_cells(bool quick) const {
    return quick && !quick_cells.empty() ? quick_cells : cells;
  }
  const std::string& bound_text(bool quick) const {
    return quick && !quick_bound.empty() ? quick_bound : bound;
  }
};

/// Name-keyed registry of the paper's claims, seeded in registration order
/// with the 12 E-bench claims plus the scenario-sweep claims (claims.cpp).
/// register_claim() is the extension point; registration is not thread-safe
/// — register before evaluating.
class ClaimRegistry {
 public:
  static ClaimRegistry& instance();

  /// nullptr when unknown.
  const ClaimSpec* find(const std::string& id) const;

  std::vector<std::string> ids() const;
  const std::vector<ClaimSpec>& entries() const { return entries_; }

  void register_claim(ClaimSpec spec);

 private:
  ClaimRegistry();
  std::vector<ClaimSpec> entries_;
};

/// Seeds `registry` with the paper claims (defined in claims.cpp; called by
/// the ClaimRegistry constructor).
void register_paper_claims(ClaimRegistry& registry);

}  // namespace cr::verify
