/// \file
/// The paper's claims as executable acceptance tests.
///
/// Each entry binds a claim from conf_podc_ChenJZ21 (Chen–Jiang–Zheng,
/// PODC'21: contention resolution with an adversarial jammer and no
/// collision detection) to the suite cells that evidence it and a check
/// over their CSVs. Bounds were calibrated against a full
/// suites/paper_repro.json run and a --quick suites/quick.json run at the
/// repo's fixed seeds, then widened by a safety margin — they assert the
/// claim's *shape* (flat / bounded / dominates), not the exact sample
/// values, so an engine change that keeps the science intact passes while
/// a semantic regression (throughput losing its 1/log t scaling, the
/// adaptive protocol losing its Theorem 4.2 edge, ...) fails.
///
/// Adding a claim: write a file-local check function, register a ClaimSpec
/// for it in register_paper_claims() below, and list its evidence cells —
/// full ids from suites/paper_repro.json, quick ids from suites/quick.json
/// when they differ. tests/test_claims.cpp guards both id sets against the
/// manifests, and docs/EXPERIMENTS.md picks the claim up on regeneration.
#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "verify/claim_registry.hpp"

namespace cr::verify {
namespace {

using stat::CheckResult;
using stat::check_fail;
using stat::check_pass;

/// Splits a bound constant by evidence mode: quick runs are smaller and
/// noisier (fewer reps, shorter horizons), so they get the wider value.
double pick(const ClaimContext& ctx, double full, double quick) {
  return ctx.quick() ? quick : full;
}

double min_value(const std::vector<NumericCell>& cells) {
  double out = cells.front().value;
  for (const NumericCell& c : cells) out = std::min(out, c.value);
  return out;
}

double max_value(const std::vector<NumericCell>& cells) {
  double out = cells.front().value;
  for (const NumericCell& c : cells) out = std::max(out, c.value);
  return out;
}

double mean_value(const std::vector<NumericCell>& cells) {
  double sum = 0.0;
  for (const NumericCell& c : cells) sum += c.value;
  return sum / static_cast<double>(cells.size());
}

/// All values in [lo, hi]; on failure the message names the violating value.
CheckResult all_in_range(const std::vector<NumericCell>& cells, double lo, double hi,
                         const std::string& what) {
  for (const NumericCell& c : cells) {
    if (const auto r = stat::in_range(c.value, lo, hi); !r)
      return check_fail(what + ": " + r.message);
  }
  std::ostringstream os;
  os << what << ": all " << cells.size() << " values inside [" << lo << ", " << hi << "]";
  return check_pass(os.str());
}

// ---------------------------------------------------------------------------
// E1 tradeoff — Theorem 1.2: with arrival rate n_t and departures d_t both
// Theta(t / log t), the success/arrival ratio per window is a regime
// constant: flat in t for each density regime, and the superconstant
// (log^2) regime sits a level above the constant one.
CheckResult check_tradeoff(ClaimContext& ctx) {
  const std::string& cell = ctx.cells().front();
  const double flat = pick(ctx, 2.5, 3.5);
  const std::vector<std::string> regimes = {"const(4)", "log2(x)", "2^sqrt(log)", "log2(x)^2"};
  double const_mean = 0.0, dense_mean = 0.0;
  for (const std::string& regime : regimes) {
    const auto ratios = ctx.column_where(cell, "ratio", "regime", regime);
    const double lo = min_value(ratios), hi = max_value(ratios);
    ctx.observe(regime + " ratio min", lo);
    ctx.observe(regime + " ratio max", hi);
    if (const auto r = stat::within_factor(lo, hi, flat); !r)
      return check_fail("regime " + regime + " ratio not flat in t: " + r.message);
    if (regime == "const(4)") const_mean = mean_value(ratios);
    if (regime == "log2(x)^2") dense_mean = mean_value(ratios);
  }
  if (const auto r = stat::growth_at_least(const_mean, dense_mean, 4.0); !r)
    return check_fail("log2(x)^2 regime does not dominate const(4): " + r.message);
  std::ostringstream os;
  os << "every regime's ratio flat within " << flat << "x; log2(x)^2 mean " << dense_mean
     << " >= 4x const(4) mean " << const_mean;
  return check_pass(os.str());
}

// ---------------------------------------------------------------------------
// E2 worstcase — Theorem 1.2 / Section 1: against the worst-case adversary
// the protocol serves every arrival when the arrival margin is 4x the
// Theta(t / log t) capacity, and at margin 1 the normalized success rate
// (successes * log2(t) / t) stays a constant bounded away from zero — the
// 1/log t throughput shape, not a collapse.
CheckResult check_worstcase(ClaimContext& ctx) {
  const std::string& cell = ctx.cells().front();
  const CsvTable& csv = ctx.table(cell);
  const auto margins = ctx.column(cell, "arrival_margin");
  const auto served = ctx.column(cell, "served");
  const auto norm = ctx.column(cell, "norm_succ");
  const double norm_lo = pick(ctx, 1.2, 1.0);
  const double norm_hi = pick(ctx, 3.5, 4.0);
  double norm_min = 1e300, norm_max = 0.0;
  for (std::size_t r = 0; r < csv.rows.size(); ++r) {
    if (margins[r].value == 4.0) {
      if (const auto ok = stat::in_range(served[r].value, 0.99, 1.0); !ok)
        return check_fail("margin-4 row " + std::to_string(r + 1) + " not fully served: " +
                          ok.message);
    } else if (margins[r].value == 1.0) {
      norm_min = std::min(norm_min, norm[r].value);
      norm_max = std::max(norm_max, norm[r].value);
      if (const auto ok = stat::in_range(norm[r].value, norm_lo, norm_hi); !ok)
        return check_fail("margin-1 row " + std::to_string(r + 1) +
                          " normalized throughput off the 1/log t shape: " + ok.message);
    }
    // margin-0.5 rows (2x overload) are diagnostic only: their small-t end
    // is dominated by start-up noise at quick rep counts.
  }
  ctx.observe("margin-1 norm_succ min", norm_min);
  ctx.observe("margin-1 norm_succ max", norm_max);
  std::ostringstream os;
  os << "margin-4 served == 1 at every (jam, t); margin-1 norm_succ in [" << norm_lo << ", "
     << norm_hi << "]";
  return check_pass(os.str());
}

// ---------------------------------------------------------------------------
// E3 batch_completion — Claim 3.5.1: a batch of n stations completes in
// O(n) slots with the paper protocol. cjz finishes 90% of the batch by a
// constant multiple of n (always by 50n), while the h_data baseline
// essentially never does, even given 200n.
CheckResult check_batch_completion(ClaimContext& ctx) {
  const std::string& cell = ctx.cells().front();
  const auto cjz_done = ctx.column_where(cell, "p_done_50n", "protocol", "cjz");
  const auto cjz_norm = ctx.column_where(cell, "slots90_over_n", "protocol", "cjz");
  const auto hdata_done = ctx.column_where(cell, "p_done_50n", "protocol", "h_data");
  const auto hdata_200 = ctx.column_where(cell, "p_done_200n", "protocol", "h_data");
  ctx.observe("cjz p_done_50n min", min_value(cjz_done));
  ctx.observe("cjz slots90_over_n max", max_value(cjz_norm));
  ctx.observe("h_data p_done_50n max", max_value(hdata_done));
  ctx.observe("h_data p_done_200n at n_max", hdata_200.back().value);
  if (const auto r = all_in_range(cjz_done, 0.99, 1.0, "cjz p_done_50n"); !r) return r;
  if (const auto r = all_in_range(cjz_norm, 6.0, 12.0, "cjz slots90_over_n"); !r) return r;
  if (const auto r = all_in_range(hdata_done, 0.0, 0.05, "h_data p_done_50n"); !r) return r;
  if (const auto r = stat::in_range(hdata_200.back().value, 0.0, 0.05); !r)
    return check_fail("h_data still completes at the largest n given 200n slots: " + r.message);
  return check_pass("cjz always completes within 50n (90% in <= 12n slots); h_data does not");
}

// ---------------------------------------------------------------------------
// E4 batch_robustness — Remark 3.5: batch completion degrades gracefully
// under jamming; even at jam rate 0.40 a majority of the batch is done
// within 8n slots, and the no-jam completion fraction stays high.
CheckResult check_batch_robustness(ClaimContext& ctx) {
  const double floor_40 = pick(ctx, 0.55, 0.50);
  const double floor_00 = pick(ctx, 0.80, 0.75);
  for (const std::string& cell : ctx.cells()) {
    const auto no_jam = ctx.single_where(cell, "frac_by_8n", "jam", "0.00");
    const auto heavy = ctx.single_where(cell, "frac_by_8n", "jam", "0.40");
    ctx.observe(cell + " frac_by_8n @ jam 0", no_jam.value);
    ctx.observe(cell + " frac_by_8n @ jam 0.40", heavy.value);
    if (const auto r = stat::in_range(no_jam.value, floor_00, 1.0); !r)
      return check_fail(cell + " jam-0 completion: " + r.message);
    if (const auto r = stat::in_range(heavy.value, floor_40, 1.0); !r)
      return check_fail(cell + " jam-0.40 completion: " + r.message);
  }
  std::ostringstream os;
  os << "frac_by_8n >= " << floor_40 << " at jam 0.40 (>= " << floor_00 << " unjammed)";
  return check_pass(os.str());
}

// ---------------------------------------------------------------------------
// E5 nonadaptive — Theorem 4.2: a non-adaptive sender schedule cannot have
// it both ways. The adaptive h-backoff recovers from a jammed prefix with a
// fraction of the non-adaptive 1/k protocol's excess delay, and always
// solves; 1/k pays an order of magnitude more delay (and at full sizes
// fails outright in some runs).
CheckResult check_nonadaptive(ClaimContext& ctx) {
  const std::string& cell = ctx.cells().front();
  const CsvTable& csv = ctx.table(cell);
  if (!csv.column("t") || !csv.column("protocol") || csv.rows.empty())
    throw EvidenceError(ctx.csv_path(cell) + ": missing t/protocol columns or data rows");
  // Compare at the largest t in the file (rows are grouped by t ascending).
  const std::string& t_max = csv.rows.back()[*csv.column("t")];
  const auto row_at = [&](const std::string& protocol, const std::string& column) {
    const auto t_col = *csv.column("t");
    const auto key_col = *csv.column("protocol");
    const auto val_col = csv.column(column);
    if (!val_col) throw EvidenceError(ctx.csv_path(cell) + ": no column \"" + column + "\"");
    for (std::size_t r = 0; r < csv.rows.size(); ++r) {
      if (csv.rows[r][t_col] != t_max || csv.rows[r][key_col] != protocol) continue;
      std::string error;
      const auto v = parse_numeric_cell(csv.rows[r][*val_col], &error);
      if (!v) throw EvidenceError(ctx.csv_path(cell) + ": " + error);
      return *v;
    }
    throw EvidenceError(ctx.csv_path(cell) + ": no row with protocol \"" + protocol +
                        "\" at t=" + t_max);
  };
  const double adaptive = row_at("h-backoff (adaptive)", "excess").value;
  const double oblivious = row_at("non-adaptive 1/k", "excess").value;
  const double windowed = row_at("windowed BEB", "excess").value;
  const double solved = row_at("h-backoff (adaptive)", "solved").value;
  ctx.observe("t", std::stod(t_max));
  ctx.observe("adaptive excess", adaptive);
  ctx.observe("non-adaptive 1/k excess", oblivious);
  ctx.observe("windowed BEB excess", windowed);
  if (const auto r = stat::in_range(solved, 0.99, 1.0); !r)
    return check_fail("adaptive protocol failed to solve: " + r.message);
  const double vs_oblivious = pick(ctx, 0.5, 0.6);
  if (adaptive > vs_oblivious * oblivious) {
    std::ostringstream os;
    os << "adaptive excess " << adaptive << " not <= " << vs_oblivious
       << " * non-adaptive 1/k excess " << oblivious;
    return check_fail(os.str());
  }
  const double vs_windowed = pick(ctx, 0.8, 1.0);
  if (adaptive > vs_windowed * windowed) {
    std::ostringstream os;
    os << "adaptive excess " << adaptive << " not <= " << vs_windowed
       << " * windowed BEB excess " << windowed;
    return check_fail(os.str());
  }
  std::ostringstream os;
  os << "at t=" << t_max << " adaptive recovers in " << adaptive << " excess slots vs "
     << oblivious << " (1/k)";
  return check_pass(os.str());
}

// ---------------------------------------------------------------------------
// E6 lowerbound — Theorem 1.3: any protocol sending O(g(t)) times against a
// t-slot jammed prefix needs ~ t + g^{-1}-shaped extra delay; the measured
// first success lands a regime constant times the analytic bound, per send
// budget g, and a larger budget sits closer to the bound.
CheckResult check_lowerbound(ClaimContext& ctx) {
  const std::string& cell = ctx.cells().front();
  const double flat = pick(ctx, 1.8, 2.0);
  const auto g4 = ctx.column_where(cell, "normalized", "g", "4");
  const auto g16 = ctx.column_where(cell, "normalized", "g", "16");
  for (const auto* vals : {&g4, &g16}) {
    const double lo = min_value(*vals), hi = max_value(*vals);
    if (const auto r = stat::within_factor(lo, hi, flat); !r)
      return check_fail("normalized delay not flat in t: " + r.message);
  }
  ctx.observe("g=4 normalized mean", mean_value(g4));
  ctx.observe("g=16 normalized mean", mean_value(g16));
  if (const auto r = all_in_range(g4, 0.15, 1.5, "g=4 normalized"); !r) return r;
  if (const auto r = all_in_range(g16, 0.15, 1.5, "g=16 normalized"); !r) return r;
  if (const auto r = stat::growth_at_least(mean_value(g4), mean_value(g16), 1.2); !r)
    return check_fail("larger send budget should sit closer to the bound: " + r.message);
  std::ostringstream os;
  os << "first_success/bound flat within " << flat << "x and inside [0.15, 1.5] for both g";
  return check_pass(os.str());
}

// ---------------------------------------------------------------------------
// E7 baselines — Section 1 positioning: the paper protocol completes
// batches in Theta(n) like the classic backoffs, while the robust h_data
// baseline pays orders of magnitude more — robustness does not require
// giving up linear completion.
CheckResult check_baselines(ClaimContext& ctx) {
  const std::string& cell = ctx.cells().front();
  const auto cjz = ctx.column_where(cell, "completion_over_n", "protocol", "cjz");
  const auto hdata = ctx.column_where(cell, "completion_over_n", "protocol", "h_data");
  const auto cjz_frac = ctx.column_where(cell, "frac_by_32n", "protocol", "cjz");
  ctx.observe("cjz completion_over_n max", max_value(cjz));
  ctx.observe("h_data completion_over_n min", min_value(hdata));
  if (const auto r = all_in_range(cjz, 5.0, 13.0, "cjz completion_over_n"); !r) return r;
  if (const auto r = all_in_range(cjz_frac, 0.99, 1.0, "cjz frac_by_32n"); !r) return r;
  for (std::size_t i = 0; i < cjz.size() && i < hdata.size(); ++i) {
    if (const auto r = stat::growth_at_least(cjz[i].value, hdata[i].value, 4.0); !r)
      return check_fail("h_data not clearly slower at row " + std::to_string(i + 1) + ": " +
                        r.message);
  }
  return check_pass("cjz completes in <= 13n slots at every n; h_data needs >= 4x more");
}

// ---------------------------------------------------------------------------
// E8 first_success — Lemma 3.2: after a batch of m joiners starts, the
// median time to the first success scales linearly in m (a constant near
// log-squared per station, flat across m) and is insensitive to a 0.25
// jamming rate.
CheckResult check_first_success(ClaimContext& ctx) {
  const std::string& cell = ctx.cells().front();
  const auto norm = ctx.column(cell, "p50_over_m");
  const auto solved = ctx.column(cell, "solved");
  const double lo_bound = pick(ctx, 2.0, 1.8);
  const double hi_bound = pick(ctx, 4.0, 4.5);
  const double flat = pick(ctx, 1.5, 1.8);
  ctx.observe("p50_over_m min", min_value(norm));
  ctx.observe("p50_over_m max", max_value(norm));
  if (const auto r = all_in_range(solved, 0.99, 1.0, "solved"); !r) return r;
  if (const auto r = all_in_range(norm, lo_bound, hi_bound, "p50_over_m"); !r) return r;
  if (const auto r = stat::within_factor(min_value(norm), max_value(norm), flat); !r)
    return check_fail("p50_over_m not flat across (m, jam): " + r.message);
  return check_pass("median first-success time is a flat multiple of m, jammed or not");
}

// ---------------------------------------------------------------------------
// E9 latency — Corollary 3.6: in the constant-rate regime a burst of b
// arrivals drains with per-packet latency linear in b (p99 a flat small
// multiple of b), nothing is stranded, and the backlog never exceeds the
// burst itself.
CheckResult check_latency(ClaimContext& ctx) {
  const std::string& cell = ctx.cells().front();
  const CsvTable& csv = ctx.table(cell);
  const auto bursts = ctx.column(cell, "burst");
  const auto stranded = ctx.column(cell, "stranded");
  const auto p99 = ctx.column(cell, "lat_p99");
  const auto backlog = ctx.column(cell, "peak_backlog");
  const auto regime_col = *csv.column("regime");
  const double lo = pick(ctx, 8.0, 7.5);
  const double hi = pick(ctx, 12.0, 12.5);
  double norm_min = 1e300, norm_max = 0.0;
  for (std::size_t r = 0; r < csv.rows.size(); ++r) {
    if (csv.rows[r][regime_col] != "const(4)") continue;
    const double per_burst = p99[r].value / bursts[r].value;
    norm_min = std::min(norm_min, per_burst);
    norm_max = std::max(norm_max, per_burst);
    if (stranded[r].value != 0.0)
      return check_fail("const(4) burst " + std::to_string(bursts[r].value) + " stranded " +
                        std::to_string(stranded[r].value) + " packets");
    if (const auto ok = stat::in_range(backlog[r].value, 0.0, bursts[r].value); !ok)
      return check_fail("peak backlog exceeds the burst: " + ok.message);
    if (const auto ok = stat::in_range(per_burst, lo, hi); !ok)
      return check_fail("p99 latency per burst unit off the linear shape: " + ok.message);
  }
  if (norm_max == 0.0) throw EvidenceError(ctx.csv_path(cell) + ": no const(4) rows");
  ctx.observe("p99/burst min", norm_min);
  ctx.observe("p99/burst max", norm_max);
  std::ostringstream os;
  os << "const(4) bursts drain fully; p99/burst in [" << lo << ", " << hi << "]";
  return check_pass(os.str());
}

// ---------------------------------------------------------------------------
// E10 energy — Section 1 / Theorem 1.2 energy bound: per-node sends to
// batch completion are polylog — mean energy tracks c * log2(n)^2 with a
// small flat c, across n and a 0.25 jam rate.
CheckResult check_energy(ClaimContext& ctx) {
  const std::string& cell = ctx.cells().front();
  const auto mean_energy = ctx.column(cell, "energy_mean");
  const auto log2n_sq = ctx.column(cell, "log2n_sq");
  const double lo = pick(ctx, 1.5, 1.2);
  const double hi = pick(ctx, 3.0, 3.2);
  double c_min = 1e300, c_max = 0.0;
  for (std::size_t r = 0; r < mean_energy.size(); ++r) {
    const double c = mean_energy[r].value / log2n_sq[r].value;
    c_min = std::min(c_min, c);
    c_max = std::max(c_max, c);
    if (const auto ok = stat::in_range(c, lo, hi); !ok)
      return check_fail("energy_mean / log2(n)^2 off the polylog shape at row " +
                        std::to_string(r + 1) + ": " + ok.message);
  }
  ctx.observe("energy/log2(n)^2 min", c_min);
  ctx.observe("energy/log2(n)^2 max", c_max);
  if (const auto r = stat::within_factor(c_min, c_max, 1.5); !r)
    return check_fail("energy constant not flat across (n, jam): " + r.message);
  std::ostringstream os;
  os << "energy_mean = c * log2(n)^2 with c in [" << lo << ", " << hi << "], flat within 1.5x";
  return check_pass(os.str());
}

// ---------------------------------------------------------------------------
// E11 ablation — Section 2.1 design choices: the paper's constants matter.
// The full protocol serves the stream completely; thinning the backoff
// density (cf = 0.25) breaks streaming service, and densifying the control
// channel (c3 = 8) inflates batch completion.
CheckResult check_ablation(ClaimContext& ctx) {
  const std::string& cell = ctx.cells().front();
  const auto paper_served =
      ctx.single_where(cell, "stream_served", "variant", "paper (swap + phase2)");
  const auto paper_completion =
      ctx.single_where(cell, "completion_over_n", "variant", "paper (swap + phase2)");
  const auto sparse_served =
      ctx.single_where(cell, "stream_served", "variant", "cf = 0.25 (sparse backoff)");
  const auto dense_ctrl =
      ctx.single_where(cell, "completion_over_n", "variant", "c3 = 8 (dense ctrl)");
  ctx.observe("paper stream_served", paper_served.value);
  ctx.observe("sparse-backoff stream_served", sparse_served.value);
  ctx.observe("paper completion_over_n", paper_completion.value);
  ctx.observe("dense-ctrl completion_over_n", dense_ctrl.value);
  if (const auto r = stat::in_range(paper_served.value, 0.99, 1.0); !r)
    return check_fail("paper variant no longer serves the stream: " + r.message);
  if (const auto r = stat::in_range(paper_completion.value, 9.0, 16.0); !r)
    return check_fail("paper variant completion off its O(n) constant: " + r.message);
  if (const auto r = stat::in_range(sparse_served.value, 0.0, 0.8); !r)
    return check_fail("sparse backoff unexpectedly keeps full service (ablation lost its "
                      "teeth): " + r.message);
  if (const auto r = stat::growth_at_least(paper_completion.value, dense_ctrl.value, 1.15); !r)
    return check_fail("dense control channel should inflate completion: " + r.message);
  return check_pass("full protocol serves the stream; sparse backoff breaks service; dense "
                    "control pays >= 1.15x completion");
}

// ---------------------------------------------------------------------------
// E12 cd_contrast — Section 1 (model contrast): collision detection makes
// the problem easy (O(n) with a small constant); without CD the paper
// protocol still completes in O(n), while the naive no-CD transplant blows
// past the measurement horizon entirely.
CheckResult check_cd_contrast(ClaimContext& ctx) {
  const std::string& cell = ctx.cells().front();
  const auto with_cd = ctx.column(cell, "cd_backon_over_n");
  const auto cjz = ctx.column(cell, "cjz_over_n");
  const auto no_cd = ctx.column(cell, "no_cd_over_n");
  ctx.observe("cd_backon_over_n max", max_value(with_cd));
  ctx.observe("cjz_over_n max", max_value(cjz));
  if (const auto r = all_in_range(with_cd, 2.0, 7.0, "cd_backon_over_n"); !r) return r;
  if (const auto r = all_in_range(cjz, 7.0, 15.0, "cjz_over_n"); !r) return r;
  for (std::size_t r = 0; r < no_cd.size(); ++r) {
    if (!no_cd[r].censored || no_cd[r].value < 20.0) {
      std::ostringstream os;
      os << "no-CD transplant finished within the horizon at row " << (r + 1)
         << " (expected a censored >=20n cell, got " << no_cd[r].value << ")";
      return check_fail(os.str());
    }
  }
  return check_pass("CD backon <= 7n, cjz <= 15n, naive no-CD censored at >= 20n everywhere");
}

// ---------------------------------------------------------------------------
// Scenario sweeps (suites' scenario cells): end-to-end service properties
// of the composed system, one level up from the single-bench tables.

// Batch scenario under 0.25 jamming: the full batch is served and nothing
// is left in the backlog at the horizon.
CheckResult check_scenario_batch(ClaimContext& ctx) {
  for (const std::string& cell : ctx.cells()) {
    const auto served = ctx.column(cell, "served");
    const auto backlog = ctx.column(cell, "backlog_at_end");
    ctx.observe(cell + " served", served.front().value);
    if (const auto r = stat::in_range(served.front().value, 0.999, 1.0); !r)
      return check_fail(cell + ": " + r.message);
    if (const auto r = stat::in_range(backlog.front().value, 0.0, 0.0); !r)
      return check_fail(cell + " backlog at end: " + r.message);
  }
  return check_pass("batch fully served with empty final backlog under 0.25 jamming");
}

// Worst-case arrival scenario under 0.25 jamming: the Theta(t / log t)
// arrival stream is still fully served.
CheckResult check_scenario_worstcase(ClaimContext& ctx) {
  for (const std::string& cell : ctx.cells()) {
    const auto served = ctx.column(cell, "served");
    ctx.observe(cell + " served", served.front().value);
    if (const auto r = stat::in_range(served.front().value, 0.999, 1.0); !r)
      return check_fail(cell + ": " + r.message);
  }
  return check_pass("worst-case arrival stream fully served under 0.25 jamming");
}

// The iid jammer realizes its nominal rate (the adversary the other claims
// assume is actually being applied), and the stream stays served under it.
CheckResult check_scenario_jam_rate(ClaimContext& ctx) {
  for (const std::string& cell : ctx.cells()) {
    const auto jammed = ctx.column(cell, "jammed");
    const auto slots = ctx.column(cell, "slots");
    const auto served = ctx.column(cell, "served");
    const double rate = jammed.front().value / slots.front().value;
    ctx.observe(cell + " realized jam rate", rate);
    if (const auto r = stat::in_range(rate, 0.22, 0.28); !r)
      return check_fail(cell + " iid jammer off its 0.25 rate: " + r.message);
    if (const auto r = stat::in_range(served.front().value, 0.99, 1.0); !r)
      return check_fail(cell + ": " + r.message);
  }
  return check_pass("realized jam rate within [0.22, 0.28] of nominal 0.25; stream served");
}

}  // namespace

void register_paper_claims(ClaimRegistry& registry) {
  registry.register_claim(
      {.id = "thm1.2-tradeoff",
       .title = "Throughput/density tradeoff is a flat regime constant",
       .statement = "Theorem 1.2: at arrival and departure rates Theta(t / log t), the "
                    "per-window success/arrival ratio is a constant of the density regime, "
                    "flat in t; denser send regimes buy a strictly higher constant.",
       .bound = "per-regime ratio spread <= 2.5x; log2(x)^2 mean >= 4x const(4) mean",
       .quick_bound = "per-regime ratio spread <= 3.5x; log2(x)^2 mean >= 4x const(4) mean",
       .cells = {"tradeoff__seed-default"},
       .columns = {"regime", "ratio"},
       .check = &check_tradeoff});
  registry.register_claim(
      {.id = "thm1.2-worstcase",
       .title = "Worst-case throughput keeps the 1/log t shape",
       .statement = "Theorem 1.2 / Section 1: the worst-case adversarial arrival stream at "
                    "4x capacity margin is fully served at every jam rate, and at margin 1 "
                    "the success rate normalized by log2(t)/t stays a constant bounded away "
                    "from zero.",
       .bound = "margin-4 served = 1 +- 0.01; margin-1 norm_succ in [1.2, 3.5]",
       .quick_bound = "margin-4 served = 1 +- 0.01; margin-1 norm_succ in [1.0, 4.0]",
       .cells = {"worstcase__seed-default"},
       .columns = {"arrival_margin", "served", "norm_succ"},
       .check = &check_worstcase});
  registry.register_claim(
      {.id = "claim3.5.1-completion",
       .title = "Batch completion is O(n); the robust baseline's is not",
       .statement = "Claim 3.5.1: a batch of n stations completes in O(n) slots — cjz "
                    "always finishes within 50n (90% within 12n), while h_data fails to "
                    "finish even within 200n at the larger n.",
       .bound = "cjz p_done_50n = 1, slots90_over_n in [6, 12]; h_data p_done_50n <= 0.05 "
                "and p_done_200n <= 0.05 at n_max",
       .cells = {"batch_completion__seed-default"},
       .columns = {"protocol", "p_done_50n", "p_done_200n", "slots90_over_n"},
       .check = &check_batch_completion});
  registry.register_claim(
      {.id = "rem3.5-robustness",
       .title = "Batch completion degrades gracefully under jamming",
       .statement = "Remark 3.5: jamming slows batch completion by at most a constant "
                    "factor — at jam rate 0.40 a majority of the batch still completes "
                    "within 8n slots.",
       .bound = "frac_by_8n >= 0.55 at jam 0.40 and >= 0.80 at jam 0",
       .quick_bound = "frac_by_8n >= 0.50 at jam 0.40 and >= 0.75 at jam 0",
       .cells = {"batch_robustness__n-1024__seed-default",
                 "batch_robustness__n-4096__seed-default"},
       .quick_cells = {"batch_robustness__n-256__seed-31000"},
       .columns = {"jam", "frac_by_8n"},
       .check = &check_batch_robustness});
  registry.register_claim(
      {.id = "thm4.2-nonadaptive",
       .title = "Non-adaptive protocols pay for jammed prefixes; adaptive ones do not",
       .statement = "Theorem 4.2: after a jammed prefix, the adaptive h-backoff protocol's "
                    "excess delay is a fraction of the non-adaptive 1/k protocol's (and no "
                    "worse than windowed BEB's), while still always solving.",
       .bound = "at t_max: adaptive excess <= 0.5x non-adaptive 1/k and <= 0.8x windowed "
                "BEB; adaptive solves",
       .quick_bound = "at t_max: adaptive excess <= 0.6x non-adaptive 1/k and <= 1.0x "
                      "windowed BEB; adaptive solves",
       .cells = {"nonadaptive__seed-default"},
       .columns = {"t", "protocol", "excess", "solved"},
       .check = &check_nonadaptive});
  registry.register_claim(
      {.id = "thm1.3-lowerbound",
       .title = "Measured delay tracks the send-budget lower bound",
       .statement = "Theorem 1.3: with a per-station send budget g(t), the first success "
                    "after a jammed prefix lands a flat constant times the analytic lower "
                    "bound, and a larger budget sits closer to it.",
       .bound = "per-g normalized delay spread <= 1.8x, inside [0.15, 1.5]; g=16 mean >= "
                "1.2x g=4 mean",
       .quick_bound = "per-g normalized delay spread <= 2.0x, inside [0.15, 1.5]; g=16 "
                      "mean >= 1.2x g=4 mean",
       .cells = {"lowerbound__seed-default"},
       .columns = {"g", "normalized"},
       .check = &check_lowerbound});
  registry.register_claim(
      {.id = "sec1-baselines",
       .title = "Linear completion does not cost robustness",
       .statement = "Section 1: the paper protocol completes batches in Theta(n) like the "
                    "classic backoff family, while the robust h_data baseline pays >= 4x "
                    "(orders of magnitude at larger n).",
       .bound = "cjz completion_over_n in [5, 13] with frac_by_32n = 1; h_data >= 4x cjz "
                "at every n",
       .cells = {"baselines__seed-default"},
       .columns = {"protocol", "completion_over_n", "frac_by_32n"},
       .check = &check_baselines});
  registry.register_claim(
      {.id = "lem3.2-first-success",
       .title = "First success after a join burst is linear in the burst",
       .statement = "Lemma 3.2: after m stations join, the median first-success time is a "
                    "flat constant times m, insensitive to a 0.25 jam rate, and every "
                    "instance solves.",
       .bound = "p50_over_m in [2, 4], flat within 1.5x; solved = 1",
       .quick_bound = "p50_over_m in [1.8, 4.5], flat within 1.8x; solved = 1",
       .cells = {"first_success__seed-default"},
       .columns = {"p50_over_m", "solved"},
       .check = &check_first_success});
  registry.register_claim(
      {.id = "cor3.6-latency",
       .title = "Burst latency is linear in the burst size",
       .statement = "Corollary 3.6: in the constant-rate regime a burst of b arrivals "
                    "drains completely (nothing stranded, backlog never above b) with p99 "
                    "latency a flat small multiple of b.",
       .bound = "const(4): stranded = 0, peak_backlog <= burst, p99/burst in [8, 12]",
       .quick_bound = "const(4): stranded = 0, peak_backlog <= burst, p99/burst in "
                      "[7.5, 12.5]",
       .cells = {"latency__seed-default"},
       .columns = {"regime", "burst", "stranded", "lat_p99", "peak_backlog"},
       .check = &check_latency});
  registry.register_claim(
      {.id = "thm1.2-energy",
       .title = "Per-node energy is polylog",
       .statement = "Theorem 1.2 (energy): sends per node to batch completion track "
                    "c * log2(n)^2 with a small constant c, flat across n and a 0.25 jam "
                    "rate.",
       .bound = "energy_mean / log2(n)^2 in [1.5, 3.0], flat within 1.5x",
       .quick_bound = "energy_mean / log2(n)^2 in [1.2, 3.2], flat within 1.5x",
       .cells = {"energy__seed-default"},
       .quick_cells = {"energy__max_n-128__seed-91000"},
       .columns = {"energy_mean", "log2n_sq"},
       .check = &check_energy});
  registry.register_claim(
      {.id = "sec2.1-ablation",
       .title = "The protocol's constants are load-bearing",
       .statement = "Section 2.1: the published constants matter — the full protocol "
                    "serves the stream completely, thinning the backoff density breaks "
                    "streaming service, and densifying the control channel inflates batch "
                    "completion.",
       .bound = "paper variant: stream_served = 1, completion_over_n in [9, 16]; sparse "
                "backoff serves <= 0.8; dense ctrl completion >= 1.15x paper",
       .cells = {"ablation__seed-default"},
       .columns = {"variant", "stream_served", "completion_over_n"},
       .check = &check_ablation});
  registry.register_claim(
      {.id = "sec1-cd-contrast",
       .title = "No collision detection is the hard part",
       .statement = "Section 1 (model): with collision detection batch resolution is easy "
                    "(small-constant O(n)); the paper protocol matches O(n) without CD, "
                    "while the naive no-CD transplant never finishes within the 20n "
                    "horizon.",
       .bound = "cd_backon_over_n in [2, 7]; cjz_over_n in [7, 15]; no_cd censored at "
                ">= 20n everywhere",
       .cells = {"cd_contrast__seed-default"},
       .columns = {"cd_backon_over_n", "cjz_over_n", "no_cd_over_n"},
       .check = &check_cd_contrast});
  registry.register_claim(
      {.id = "scenario-batch-clears",
       .title = "Composed batch scenario clears its backlog under jamming",
       .statement = "End-to-end scenario sweep: the batch workload on the registry-composed "
                    "engine path is fully served with an empty final backlog at jam 0.25.",
       .bound = "served >= 0.999 and backlog_at_end = 0",
       .cells = {"scenario__scenario-batch__jam-0.25__seed-50000"},
       .quick_cells = {"scenario__scenario-batch__jam-0.25__horizon-4096__n-64__seed-1",
                       "scenario__scenario-batch__jam-0.25__horizon-4096__n-64__seed-2"},
       .columns = {"served", "backlog_at_end"},
       .check = &check_scenario_batch});
  registry.register_claim(
      {.id = "scenario-worstcase-served",
       .title = "Composed worst-case scenario stays fully served",
       .statement = "End-to-end scenario sweep: the Theta(t / log t) worst-case arrival "
                    "stream is fully served under 0.25 jamming through the composed "
                    "workload path.",
       .bound = "served >= 0.999",
       .cells = {"scenario__scenario-worst_case__jam-0.25__seed-50000"},
       .quick_cells = {"scenario__scenario-worst_case__jam-0.25__horizon-4096__seed-1",
                       "scenario__scenario-worst_case__jam-0.25__horizon-4096__seed-2"},
       .columns = {"served"},
       .check = &check_scenario_worstcase});
  registry.register_claim(
      {.id = "scenario-iid-jam-rate",
       .title = "The iid jammer delivers its nominal rate",
       .statement = "Adversary sanity for every other claim: the iid jammer's realized "
                    "jam-slot fraction matches its nominal 0.25 rate, and the Bernoulli "
                    "stream stays served under it.",
       .bound = "jammed/slots in [0.22, 0.28]; served >= 0.99",
       .cells = {"scenario__scenario-bernoulli_stream__jam-0.25__seed-50000"},
       .quick_cells =
           {"scenario__scenario-bernoulli_stream__jam-0.25__horizon-4096__seed-1",
            "scenario__scenario-bernoulli_stream__jam-0.25__horizon-4096__seed-2"},
       .columns = {"jammed", "slots", "served"},
       .check = &check_scenario_jam_rate});
}

}  // namespace cr::verify
