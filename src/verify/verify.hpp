/// \file
/// `cr verify <out_dir>` — evaluate every registered paper claim against a
/// suite run's CSVs, print a pass/fail table, write verify_report.json.
///
/// The report is the machine-readable artifact downstream steps consume
/// (CI gating now; the distributed-runner merge step per ROADMAP item 5
/// later). It is deliberately byte-deterministic for a given evidence
/// directory: no timestamps and no git SHA of the *verifying* checkout —
/// provenance comes from the evidence run's own manifest (suite name +
/// config_hash), which the suite runner already stamps with its git SHA.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "verify/claim_registry.hpp"

namespace cr::verify {

/// Result of evaluating one claim.
struct ClaimOutcome {
  std::string id;
  std::string title;
  std::string verdict;  ///< "pass", "fail", or "error" (unreadable evidence)
  std::string bound;    ///< the acceptance bound that was applied (mode-aware)
  std::string detail;   ///< check diagnostic (observed vs bound) or evidence error
  /// Observed (name, value-text) pairs the check recorded.
  std::vector<std::pair<std::string, std::string>> observed;
  std::vector<std::string> cells;  ///< evidence cell ids consulted

  bool passed() const { return verdict == "pass"; }
};

/// Evidence-run provenance, from `<out_dir>/manifest.json`.
struct RunInfo {
  bool manifest_found = false;
  std::string suite;        ///< manifest "suite" name ("" when not found)
  std::string config_hash;  ///< suite_config_hash of the evidence expansion
  bool quick = false;       ///< the evidence run's own --quick flag
};

/// Parse `<out_dir>/manifest.json` (best effort: manifest_found=false when
/// missing/unparseable — verification still runs, with empty provenance).
RunInfo load_run_info(const std::string& out_dir);

/// Evaluate `claims` (default: the full ClaimRegistry) against the CSVs in
/// `out_dir`. Never throws: evidence problems become "error" verdicts.
std::vector<ClaimOutcome> evaluate_claims(const std::string& out_dir, bool quick,
                                          const std::vector<ClaimSpec>* claims = nullptr);

/// Serialize the report (schema cr-verify-report/1). Deterministic for a
/// given evidence directory; doubles are shortest-round-trip formatted.
std::string report_json(const RunInfo& info, const std::vector<ClaimOutcome>& outcomes);

struct VerifyOptions {
  std::string out_dir;      ///< suite run directory holding <cell>.csv + manifest.json
  bool quick = false;       ///< evaluate quick cells/tolerances
  std::string report_path;  ///< empty = <out_dir>/verify_report.json
  /// Override the registry (tests inject fixture claims); null = registry.
  const std::vector<ClaimSpec>* claims = nullptr;
};

/// Evaluate, print the verdict table to `os`, write the report JSON.
/// Returns 0 when every claim passes, 1 when any fails or errors, 2 on
/// setup errors (unwritable report, quick-mode mismatch with the evidence
/// manifest).
int run_verify(const VerifyOptions& opts, std::ostream& os);

}  // namespace cr::verify
