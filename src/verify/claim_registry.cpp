#include "verify/claim_registry.hpp"

#include <charconv>
#include <system_error>

#include "common/check.hpp"

namespace cr::verify {

const CsvTable& ClaimContext::table(const std::string& cell_id) {
  auto it = cache_.find(cell_id);
  if (it != cache_.end()) return it->second;
  std::string error;
  auto parsed = read_csv_file(csv_path(cell_id), &error);
  if (!parsed) throw EvidenceError("evidence cell \"" + cell_id + "\": " + error);
  return cache_.emplace(cell_id, std::move(*parsed)).first->second;
}

std::vector<NumericCell> ClaimContext::column(const std::string& cell_id,
                                              const std::string& column) {
  const CsvTable& csv = table(cell_id);
  const auto col = csv.column(column);
  if (!col) {
    throw EvidenceError(csv_path(cell_id) + ": no column \"" + column +
                        "\" (columns change when a bench's schema does — update the claim)");
  }
  if (csv.rows.empty())
    throw EvidenceError(csv_path(cell_id) + ": no data rows under column \"" + column + "\"");
  std::vector<NumericCell> out;
  out.reserve(csv.rows.size());
  for (std::size_t r = 0; r < csv.rows.size(); ++r) {
    std::string error;
    const auto value = parse_numeric_cell(csv.rows[r][*col], &error);
    if (!value) {
      throw EvidenceError(csv_path(cell_id) + ": row " + std::to_string(r + 1) + " column \"" +
                          column + "\": " + error);
    }
    out.push_back(*value);
  }
  return out;
}

std::vector<NumericCell> ClaimContext::column_where(const std::string& cell_id,
                                                    const std::string& column,
                                                    const std::string& key_column,
                                                    const std::string& key) {
  const CsvTable& csv = table(cell_id);
  const auto key_col = csv.column(key_column);
  if (!key_col)
    throw EvidenceError(csv_path(cell_id) + ": no column \"" + key_column + "\"");
  const auto col = csv.column(column);
  if (!col) throw EvidenceError(csv_path(cell_id) + ": no column \"" + column + "\"");
  std::vector<NumericCell> out;
  for (std::size_t r = 0; r < csv.rows.size(); ++r) {
    if (csv.rows[r][*key_col] != key) continue;
    std::string error;
    const auto value = parse_numeric_cell(csv.rows[r][*col], &error);
    if (!value) {
      throw EvidenceError(csv_path(cell_id) + ": row " + std::to_string(r + 1) + " column \"" +
                          column + "\": " + error);
    }
    out.push_back(*value);
  }
  if (out.empty()) {
    throw EvidenceError(csv_path(cell_id) + ": no row with " + key_column + "=\"" + key +
                        "\"");
  }
  return out;
}

NumericCell ClaimContext::single_where(const std::string& cell_id, const std::string& column,
                                       const std::string& key_column, const std::string& key) {
  const auto values = column_where(cell_id, column, key_column, key);
  if (values.size() != 1) {
    throw EvidenceError(csv_path(cell_id) + ": expected exactly one row with " + key_column +
                        "=\"" + key + "\", found " + std::to_string(values.size()));
  }
  return values.front();
}

void ClaimContext::observe(const std::string& name, double value) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  CR_CHECK(res.ec == std::errc());
  observed_.emplace_back(name, std::string(buf, res.ptr));
}

void ClaimContext::observe_text(const std::string& name, std::string value) {
  observed_.emplace_back(name, std::move(value));
}

std::string ClaimContext::csv_path(const std::string& cell_id) const {
  return out_dir_ + "/" + cell_id + ".csv";
}

ClaimRegistry::ClaimRegistry() { register_paper_claims(*this); }

ClaimRegistry& ClaimRegistry::instance() {
  static ClaimRegistry registry;
  return registry;
}

const ClaimSpec* ClaimRegistry::find(const std::string& id) const {
  for (const ClaimSpec& spec : entries_)
    if (spec.id == id) return &spec;
  return nullptr;
}

std::vector<std::string> ClaimRegistry::ids() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const ClaimSpec& spec : entries_) out.push_back(spec.id);
  return out;
}

void ClaimRegistry::register_claim(ClaimSpec spec) {
  CR_CHECK(!spec.id.empty());
  CR_CHECK(!spec.cells.empty());
  CR_CHECK(spec.check != nullptr);
  CR_CHECK(find(spec.id) == nullptr);
  entries_.push_back(std::move(spec));
}

}  // namespace cr::verify
