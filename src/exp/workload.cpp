#include "exp/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "adversary/component_registry.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "engine/lockstep.hpp"
#include "exp/harness.hpp"
#include "protocols/baselines.hpp"
#include "protocols/batch.hpp"

namespace cr {

namespace {

const std::string kArrivalPrefix = "arrival.";
const std::string kJammerPrefix = "jammer.";

bool has_prefix(const std::string& text, const std::string& prefix) {
  return text.rfind(prefix, 0) == 0;
}

std::string known_list(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) out += " " + name;
  return out;
}

/// Validate one component against its registry entry; empty on success.
template <typename Registry>
std::string check_component(const Registry& registry, const ComponentSpec& component,
                            const std::string& kind) {
  const auto* entry = registry.find(component.name);
  if (entry == nullptr) {
    std::string error = "unknown " + kind + " \"" + component.name + "\"";
    const std::string hint = closest_match(component.name, registry.names());
    if (!hint.empty()) error += " (did you mean \"" + hint + "\"?)";
    return error + "; known " + kind + "s:" + known_list(registry.names());
  }
  const auto checked = ParamValidation::check(entry->schema, component.params,
                                             kind + " \"" + component.name + "\"");
  return checked.error;
}

}  // namespace

const std::vector<std::string>& workload_keys() {
  static const std::vector<std::string> keys = {"arrival", "jammer",  "g",
                                                "gamma",   "protocol", "horizon"};
  return keys;
}

const std::vector<std::string>& workload_protocol_names() {
  static const std::vector<std::string> names = {"cjz",  "h_backoff", "h_data",
                                                 "beb",  "sawtooth",  "poly"};
  return names;
}

ProtocolSpec workload_protocol(const std::string& name, const FunctionSet& fs) {
  if (name == "cjz") return cjz_protocol(fs);
  if (name == "h_backoff")
    return factory_protocol("h-backoff", [fs] { return backoff_protocol_factory(fs); });
  if (name == "h_data") return profile_protocol(profiles::h_data());
  if (name == "beb")
    return factory_protocol("windowed-beb", [] { return windowed_backoff_factory({}); });
  if (name == "sawtooth")
    return factory_protocol("windowed-sawtooth", [] {
      return windowed_backoff_factory({WindowScheme::kSawtooth, 2.0});
    });
  if (name == "poly")
    return factory_protocol("windowed-poly", [] {
      return windowed_backoff_factory({WindowScheme::kPolynomial, 2.0});
    });
  CR_CHECK(false);  // names are validated upstream
  return {};
}

WorkloadParse parse_workload(const std::vector<std::pair<std::string, std::string>>& kvs) {
  WorkloadParse out;
  std::set<std::string> seen;
  auto fail = [&](std::string msg) {
    out.error = std::move(msg);
    return out;
  };
  auto once = [&](const std::string& key) { return seen.insert(key).second; };

  for (const auto& [key, value] : kvs) {
    if (key == "arrival" || key == "jammer") {
      if (!once(key)) return fail("workload key \"" + key + "\" given twice");
      (key == "arrival" ? out.spec.arrival : out.spec.jammer).name = value;
    } else if (has_prefix(key, kArrivalPrefix)) {
      out.spec.arrival.params.emplace_back(key.substr(kArrivalPrefix.size()), value);
    } else if (has_prefix(key, kJammerPrefix)) {
      out.spec.jammer.params.emplace_back(key.substr(kJammerPrefix.size()), value);
    } else if (key == "g") {
      if (!once(key)) return fail("workload key \"g\" given twice");
      out.spec.g_regime = value;
    } else if (key == "gamma") {
      if (!once(key)) return fail("workload key \"gamma\" given twice");
      if (!parse_double_text(value, &out.spec.gamma))
        return fail("workload key \"gamma\" expects a number, got \"" + value + "\"");
      out.spec.gamma_set = true;
    } else if (key == "protocol") {
      if (!once(key)) return fail("workload key \"protocol\" given twice");
      out.spec.protocol = value;
    } else if (key == "horizon") {
      if (!once(key)) return fail("workload key \"horizon\" given twice");
      std::uint64_t horizon = 0;
      if (!parse_uint_text(value, &horizon))
        return fail("workload key \"horizon\" expects a uint, got \"" + value + "\"");
      out.spec.horizon = static_cast<slot_t>(horizon);
    } else {
      // Unknown top-level key: the hard error the whole design exists for.
      std::string error = "unknown workload key \"" + key + "\"";
      const std::string hint = closest_match(key, workload_keys());
      if (!hint.empty()) error += " (did you mean \"" + hint + "\"?)";
      error += "; workload keys:" + known_list(workload_keys()) +
               " plus arrival.<param>/jammer.<param> (see cr list)";
      return fail(std::move(error));
    }
  }
  out.error = validate_workload(out.spec);
  return out;
}

std::string validate_workload(const WorkloadSpec& spec) {
  if (std::string error =
          check_component(ArrivalRegistry::instance(), spec.arrival, "arrival");
      !error.empty())
    return error;
  if (std::string error = check_component(JammerRegistry::instance(), spec.jammer, "jammer");
      !error.empty())
    return error;
  if (spec.g_regime != "const" && spec.g_regime != "log" && spec.g_regime != "exp_sqrt_log")
    return "unknown g regime \"" + spec.g_regime + "\"; known: const log exp_sqrt_log";
  // g=log takes no scale — an explicit gamma would be the silent no-op this
  // API bans, so it is an error instead.
  if (spec.gamma_set && spec.g_regime == "log")
    return "workload key \"gamma\" is not consumed when g=log (the log regime has no scale); "
           "drop it or pick g=const/exp_sqrt_log";
  bool protocol_known = false;
  for (const std::string& name : workload_protocol_names())
    protocol_known = protocol_known || name == spec.protocol;
  if (!protocol_known) {
    std::string error = "unknown protocol \"" + spec.protocol + "\"";
    const std::string hint = closest_match(spec.protocol, workload_protocol_names());
    if (!hint.empty()) error += " (did you mean \"" + hint + "\"?)";
    return error + "; known protocols:" + known_list(workload_protocol_names());
  }
  if (spec.horizon < 1) return "workload key \"horizon\" must be >= 1";
  return "";
}

std::vector<std::pair<std::string, std::string>> workload_to_flags(const WorkloadSpec& spec) {
  const WorkloadSpec defaults;
  std::vector<std::pair<std::string, std::string>> out;
  out.emplace_back("arrival", spec.arrival.name);
  for (const auto& [key, value] : spec.arrival.params)
    out.emplace_back(kArrivalPrefix + key, value);
  out.emplace_back("jammer", spec.jammer.name);
  for (const auto& [key, value] : spec.jammer.params)
    out.emplace_back(kJammerPrefix + key, value);
  if (spec.g_regime != defaults.g_regime) out.emplace_back("g", spec.g_regime);
  if (spec.gamma_set) out.emplace_back("gamma", double_param_text(spec.gamma));
  if (spec.protocol != defaults.protocol) out.emplace_back("protocol", spec.protocol);
  if (spec.horizon != defaults.horizon)
    out.emplace_back("horizon", std::to_string(static_cast<std::uint64_t>(spec.horizon)));
  return out;
}

Scenario build_workload(const WorkloadSpec& spec) {
  const std::string error = validate_workload(spec);
  if (!error.empty()) std::fprintf(stderr, "build_workload: %s\n", error.c_str());
  CR_CHECK(error.empty());

  Scenario sc;
  sc.fs = functions_for_regime(spec.g_regime, spec.gamma);
  const WorkloadContext ctx{sc.fs, spec.horizon, spec.seed};

  const ArrivalEntry& arrival = ArrivalRegistry::instance().at(spec.arrival.name);
  const auto arrival_params = ParamValidation::check(arrival.schema, spec.arrival.params,
                                                     "arrival \"" + spec.arrival.name + "\"");
  const JammerEntry& jammer = JammerRegistry::instance().at(spec.jammer.name);
  const auto jammer_params = ParamValidation::check(jammer.schema, spec.jammer.params,
                                                    "jammer \"" + spec.jammer.name + "\"");
  sc.adversary = std::make_unique<ComposedAdversary>(arrival.make(arrival_params.values, ctx),
                                                     jammer.make(jammer_params.values, ctx));
  sc.config.horizon = spec.horizon;
  sc.config.seed = spec.seed;
  sc.protocol = workload_protocol(spec.protocol, sc.fs);
  return sc;
}

WorkloadSpec scenario_preset_workload(const std::string& scenario, const ScenarioParams& p) {
  WorkloadSpec w;
  w.horizon = p.horizon;
  w.seed = p.seed;
  const auto iid_or_none = [&] {
    return p.jam > 0.0
               ? ComponentSpec{"iid", {{"fraction", double_param_text(p.jam)}}}
               : ComponentSpec{"none", {}};
  };
  const auto regime = [&] {
    w.g_regime = p.g_regime;
    // The log regime has no scale; setting gamma there would (rightly) fail
    // validation, and functions_log_g ignores it anyway.
    if (p.g_regime != "log") {
      w.gamma = p.gamma;
      w.gamma_set = true;
    }
  };
  if (scenario == "worst_case") {
    // Always const-g (the legacy builder pins functions_constant_g(4.0) so
    // arrival pacing stays comparable across jam levels).
    w.arrival = {"paced", {{"margin", double_param_text(p.arrival_margin)}}};
    w.jammer = iid_or_none();
    return w;
  }
  if (scenario == "batch") {
    regime();
    w.arrival = {"batch", {{"n", std::to_string(p.n)}}};
    w.jammer = iid_or_none();
    return w;
  }
  if (scenario == "smooth") {
    regime();
    w.arrival = {"paced", {{"margin", double_param_text(p.arrival_margin)}}};
    w.jammer = {"budget_paced", {{"margin", double_param_text(p.jam_margin)}}};
    return w;
  }
  if (scenario == "bernoulli_stream") {
    regime();
    w.arrival = {"bernoulli", {{"rate", double_param_text(p.rate)}}};
    w.jammer = iid_or_none();
    return w;
  }
  if (scenario == "bursty") {
    // Burstiest arrival pattern still inside the smooth budget: batches of n
    // every ceil(arrival_margin·n·f(horizon)) slots, budget-paced jamming on
    // top (the E9 latency workload).
    regime();
    const FunctionSet fs = functions_for_regime(p.g_regime, p.gamma);
    const double ft = fs.f(static_cast<double>(p.horizon));
    const auto period = static_cast<std::uint64_t>(
        std::max(1.0, std::ceil(p.arrival_margin * static_cast<double>(p.n) * ft)));
    w.arrival = {"bursty",
                 {{"period", std::to_string(period)}, {"burst", std::to_string(p.n)}}};
    w.jammer = {"budget_paced", {{"margin", double_param_text(p.jam_margin)}}};
    return w;
  }
  std::fprintf(stderr, "scenario_preset_workload: unknown scenario preset \"%s\"\n",
               scenario.c_str());
  CR_CHECK(false);
  return w;
}

namespace {

/// Validated parameter values of one component (schema defaults applied).
template <typename Entry>
ParamValues component_values(const Entry& entry, const ComponentSpec& component,
                             const std::string& kind) {
  const auto checked = ParamValidation::check(entry.schema, component.params,
                                              kind + " \"" + component.name + "\"");
  CR_CHECK(checked.error.empty());  // spec validated upstream
  return checked.values;
}

}  // namespace

LockstepCertificate lockstep_certificate(const WorkloadSpec& spec) {
  CR_CHECK(validate_workload(spec).empty());
  LockstepCertificate cert;

  // Arrival side: the last slot an arrival can occur at. Anything without a
  // provable bound keeps the horizon — correct, and the skip simply never
  // fires.
  slot_t quiet = spec.horizon;
  if (spec.arrival.name == "none") {
    quiet = 0;
  } else if (spec.arrival.name == "batch") {
    const auto values = component_values(ArrivalRegistry::instance().at("batch"),
                                         spec.arrival, "arrival");
    quiet = static_cast<slot_t>(values.get_uint("at"));
  } else if (spec.arrival.name == "bernoulli") {
    const auto values = component_values(ArrivalRegistry::instance().at("bernoulli"),
                                         spec.arrival, "arrival");
    const std::uint64_t to = values.get_uint("to");
    quiet = to == 0 ? spec.horizon : static_cast<slot_t>(to);
  }

  // Jammer side: the i.i.d. rate past the quiet point, when certifiable.
  double tail = -1.0;
  if (spec.jammer.name == "none") {
    tail = 0.0;
  } else if (spec.jammer.name == "iid") {
    const auto values = component_values(JammerRegistry::instance().at("iid"),
                                         spec.jammer, "jammer");
    tail = values.get_double("fraction");
  } else if (spec.jammer.name == "prefix") {
    const auto values = component_values(JammerRegistry::instance().at("prefix"),
                                         spec.jammer, "jammer");
    tail = 0.0;
    quiet = std::max(quiet, static_cast<slot_t>(values.get_uint("count")));
  }

  cert.eligible = tail >= 0.0;
  cert.quiet_after = quiet;
  cert.tail_jam = tail;
  return cert;
}

LockstepPlan lockstep_plan(const WorkloadSpec& spec) {
  CR_CHECK(validate_workload(spec).empty());
  LockstepPlan plan;
  const slot_t horizon = spec.horizon;

  // Materialization scaffolding for the deterministic components: they
  // ignore the history and the rng by contract (that is exactly what the
  // name whitelists below assert), so a dummy history over an empty trace
  // and a throwaway rng are safe to hand them.
  const FunctionSet fs = functions_for_regime(spec.g_regime, spec.gamma);
  const WorkloadContext ctx{fs, horizon, 0};
  Trace dummy_trace(Trace::Storage::kCounting);
  const PublicHistory dummy_history(dummy_trace);
  Rng dummy_rng(1);

  // Arrival side.
  bool arrival_ok = false;
  const std::string& arrival_name = spec.arrival.name;
  if (arrival_name == "bernoulli") {
    const auto values = component_values(ArrivalRegistry::instance().at("bernoulli"),
                                         spec.arrival, "arrival");
    plan.bernoulli_arrivals = true;
    plan.arrival_rate = values.get_double("rate");
    plan.arrival_from = static_cast<slot_t>(values.get_uint("from"));
    const std::uint64_t to = values.get_uint("to");
    plan.arrival_to = to == 0 ? horizon : static_cast<slot_t>(to);
    arrival_ok = true;
  } else if (arrival_name == "none" || arrival_name == "batch" || arrival_name == "paced" ||
             arrival_name == "bursty") {
    // Deterministic and seed-independent: one slot-ordered walk materializes
    // the schedule every replication shares ("paced" is stateful, so the
    // walk must visit every slot in order — it does).
    const ArrivalEntry& entry = ArrivalRegistry::instance().at(arrival_name);
    const auto values = component_values(entry, spec.arrival, "arrival");
    const auto component = entry.make(values, ctx);
    for (slot_t s = 1; s <= horizon; ++s) {
      const std::uint64_t count = component->arrivals(s, dummy_history, dummy_rng);
      if (count > 0) plan.schedule.emplace_back(s, count);
    }
    arrival_ok = true;
  }

  // Jam side.
  bool jammer_ok = false;
  const std::string& jammer_name = spec.jammer.name;
  if (jammer_name == "iid") {
    const auto values = component_values(JammerRegistry::instance().at("iid"), spec.jammer,
                                         "jammer");
    plan.iid_jams = true;
    plan.jam_rate = values.get_double("fraction");
    jammer_ok = true;
  } else if (jammer_name == "none" || jammer_name == "prefix" || jammer_name == "periodic" ||
             jammer_name == "budget_paced") {
    const JammerEntry& entry = JammerRegistry::instance().at(jammer_name);
    const auto values = component_values(entry, spec.jammer, "jammer");
    const auto component = entry.make(values, ctx);
    for (slot_t s = 1; s <= horizon; ++s)
      if (component->jams(s, dummy_history, dummy_rng)) plan.jam_slots.push_back(s);
    jammer_ok = true;
  }

  plan.valid = arrival_ok && jammer_ok;
  return plan;
}

LockstepSweep lockstep_sweep(const WorkloadSpec& spec, int reps, std::uint64_t base_seed,
                             int threads) {
  const ArrivalEntry& arrival = ArrivalRegistry::instance().at(spec.arrival.name);
  const ParamValues arrival_values = component_values(arrival, spec.arrival, "arrival");
  const JammerEntry& jammer = JammerRegistry::instance().at(spec.jammer.name);
  const ParamValues jammer_values = component_values(jammer, spec.jammer, "jammer");
  const FunctionSet fs = functions_for_regime(spec.g_regime, spec.gamma);
  const slot_t horizon = spec.horizon;

  LockstepSweep sweep;
  sweep.reps = reps;
  sweep.base_seed = base_seed;
  sweep.threads = threads;
  // Captures are by value (the entries are registry singletons; ParamValues
  // and FunctionSet are value types), so the sweep can outlive this frame.
  // The per-seed context mirrors build_workload's exactly.
  sweep.make_arrival = [&arrival, arrival_values, fs, horizon](std::uint64_t seed) {
    const WorkloadContext ctx{fs, horizon, seed};
    return arrival.make(arrival_values, ctx);
  };
  sweep.make_jammer = [&jammer, jammer_values, fs, horizon](std::uint64_t seed) {
    const WorkloadContext ctx{fs, horizon, seed};
    return jammer.make(jammer_values, ctx);
  };
  const LockstepCertificate cert = lockstep_certificate(spec);
  sweep.analytic_tail = cert.eligible;
  sweep.quiet_after = cert.quiet_after;
  sweep.tail_jam = cert.tail_jam;
  sweep.plan = lockstep_plan(spec);
  return sweep;
}

std::vector<SimResult> replicate_workload(const Engine& engine, const WorkloadSpec& spec,
                                          int reps, std::uint64_t base_seed, int threads,
                                          const SimConfig& config_template) {
  CR_CHECK(reps > 0);

  if (engine.name() == "lockstep") {
    WorkloadSpec probe_spec = spec;
    probe_spec.seed = base_seed;
    const Scenario probe = build_workload(probe_spec);
    CR_CHECK(engine.supports(probe.protocol));

    SimConfig config = config_template;
    config.horizon = spec.horizon;
    config.seed = base_seed;

    const LockstepSweep sweep = lockstep_sweep(spec, reps, base_seed, threads);
    return run_lockstep_many(probe.protocol, config, sweep);
  }

  return replicate(
      reps, base_seed,
      [&](std::uint64_t seed) {
        WorkloadSpec per = spec;
        per.seed = seed;
        Scenario sc = build_workload(per);
        sc.config = config_template;
        sc.config.horizon = per.horizon;
        sc.config.seed = seed;
        return run_scenario(engine, sc);
      },
      threads);
}

std::vector<SimResult> replicate_scenario(const Engine& engine, const std::string& scenario,
                                          const ScenarioParams& params, int reps,
                                          std::uint64_t base_seed, int threads,
                                          const SimConfig& config_template) {
  return replicate_workload(engine, scenario_preset_workload(scenario, params), reps,
                            base_seed, threads, config_template);
}

}  // namespace cr
