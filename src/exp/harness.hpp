/// \file
/// Experiment harness: multi-seed replication and aggregation.
///
/// All Monte-Carlo results in the benches flow through replicate(): a run
/// factory is invoked with seeds base, base+1, ..., and per-metric
/// Accumulators are extracted with collect(). This keeps every reported
/// number a (mean ± stddev) over independent seeds, which is how the paper's
/// "with high probability" statements are made observable.
///
/// Replication parallelises for free: seeds are independent by construction
/// (splitmix64-seeded xoshiro256** gives well-separated streams for adjacent
/// seeds), so replicate(..., threads) fans the seed range across a thread
/// pool and stores each result at its seed's index — the output vector is
/// seed-ordered and bit-identical to the serial path for every thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "engine/sim_result.hpp"

namespace cr {

using RunFn = std::function<SimResult(std::uint64_t seed)>;

namespace detail {
/// Runs body(r) for r in [0, reps) on up to `threads` workers. Each index is
/// executed exactly once; with threads <= 1 this is a plain serial loop.
void parallel_for_reps(int reps, int threads, const std::function<void(int)>& body);
}  // namespace detail

/// Run `reps` independent replications with seeds base_seed .. base_seed+reps-1
/// and collect `run`'s results in seed order. With threads > 1 the seeds are
/// fanned across a thread pool; `run` must then be safe to invoke
/// concurrently (build all per-run state — adversary, config, observer —
/// inside the callback). The result is identical for every thread count.
template <typename Fn>
auto replicate_map(int reps, std::uint64_t base_seed, Fn&& run, int threads = 1)
    -> std::vector<std::decay_t<decltype(run(std::uint64_t{}))>> {
  using Result = std::decay_t<decltype(run(std::uint64_t{}))>;
  // std::vector<bool> packs adjacent elements into shared bytes, so
  // concurrent writes to distinct indices would race. Return a struct or an
  // int instead.
  static_assert(!std::is_same_v<Result, bool>,
                "replicate_map cannot return bool (vector<bool> is not thread-safe "
                "per-element)");
  CR_CHECK(reps > 0);
  std::vector<Result> results(static_cast<std::size_t>(reps));
  detail::parallel_for_reps(reps, threads, [&](int r) {
    results[static_cast<std::size_t>(r)] = run(base_seed + static_cast<std::uint64_t>(r));
  });
  return results;
}

/// SimResult-typed replicate (the common case; see replicate_map).
std::vector<SimResult> replicate(int reps, std::uint64_t base_seed, const RunFn& run,
                                 int threads = 1);

/// Fold one scalar metric across replications.
Accumulator collect(const std::vector<SimResult>& results,
                    const std::function<double(const SimResult&)>& metric);

/// Fraction of replications satisfying a predicate (empirical probability).
double fraction(const std::vector<SimResult>& results,
                const std::function<bool(const SimResult&)>& pred);

/// Formats "mean±sd" compactly for tables.
std::string mean_sd(const Accumulator& acc, int precision = 3);

}  // namespace cr
