// Experiment harness: multi-seed replication and aggregation.
//
// All Monte-Carlo results in the benches flow through replicate(): a run
// factory is invoked with seeds base, base+1, ..., and per-metric
// Accumulators are extracted with collect(). This keeps every reported
// number a (mean ± stddev) over independent seeds, which is how the paper's
// "with high probability" statements are made observable.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "engine/sim_result.hpp"

namespace cr {

using RunFn = std::function<SimResult(std::uint64_t seed)>;

/// Run `reps` independent replications with seeds base_seed .. base_seed+reps-1.
std::vector<SimResult> replicate(int reps, std::uint64_t base_seed, const RunFn& run);

/// Fold one scalar metric across replications.
Accumulator collect(const std::vector<SimResult>& results,
                    const std::function<double(const SimResult&)>& metric);

/// Fraction of replications satisfying a predicate (empirical probability).
double fraction(const std::vector<SimResult>& results,
                const std::function<bool(const SimResult&)>& pred);

/// Formats "mean±sd" compactly for tables.
std::string mean_sd(const Accumulator& acc, int precision = 3);

}  // namespace cr
