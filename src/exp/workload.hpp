/// \file
/// WorkloadSpec — the composable workload value type: (arrival process ×
/// jammer × g regime × protocol) plus the run-level horizon/seed, with every
/// component resolved by name through the typed ArrivalRegistry /
/// JammerRegistry (src/adversary/component_registry.hpp).
///
/// A WorkloadSpec serializes to and from the flat `key=value` form used by
/// `cr bench workload` flags and suite-manifest cells:
///
///     arrival=bernoulli  arrival.rate=0.2  jammer=iid  jammer.fraction=0.25
///     g=const  gamma=4  protocol=cjz  horizon=65536
///
/// so any (arrival × jammer × g × protocol × engine) combination is runnable
/// and sweepable from JSON without touching C++. Validation is a hard error
/// on anything a component does not consume — an unknown top-level key, a
/// parameter the named component does not declare, or `gamma` under the
/// g=log regime (which ignores it) all fail with a message naming the
/// offending key. The five legacy scenario builders are thin presets over
/// this type (src/exp/scenarios.cpp), parity-tested byte-identical in
/// tests/test_workload.cpp.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "engine/lockstep.hpp"
#include "exp/scenarios.hpp"

namespace cr {

/// One named component with its explicitly-set parameters (raw text, in
/// application order). Unset parameters take their schema defaults.
struct ComponentSpec {
  std::string name = "none";
  std::vector<std::pair<std::string, std::string>> params;

  bool operator==(const ComponentSpec&) const = default;
};

/// The full composable workload. Value type: copyable, comparable, cheap.
struct WorkloadSpec {
  ComponentSpec arrival;
  ComponentSpec jammer;
  std::string g_regime = "const";  ///< "const" | "log" | "exp_sqrt_log"
  double gamma = 4.0;              ///< const-g value / exp_sqrt_log scale
  bool gamma_set = false;          ///< gamma was given explicitly
  std::string protocol = "cjz";    ///< named protocol (workload_protocol_names())
  slot_t horizon = 1 << 16;
  std::uint64_t seed = 1;          ///< not part of the flat form (runner-owned)

  bool operator==(const WorkloadSpec&) const = default;
};

/// Keys understood at the top level of the flat form (component parameters
/// ride under "arrival."/"jammer." prefixes).
const std::vector<std::string>& workload_keys();

/// Protocols nameable in a WorkloadSpec ("cjz", the windowed-backoff
/// baselines, "h_backoff", "h_data").
const std::vector<std::string>& workload_protocol_names();
/// Materialise the named protocol on `fs`. CR_CHECKs the name (validated
/// upstream by parse/validate).
ProtocolSpec workload_protocol(const std::string& name, const FunctionSet& fs);

struct WorkloadParse {
  WorkloadSpec spec;
  std::string error;  ///< empty on success; names the offending key otherwise

  bool ok() const { return error.empty(); }
};

/// Parse AND validate the flat form: unknown keys, unknown component names,
/// undeclared or ill-typed component parameters, unknown g regime/protocol,
/// horizon < 1 and gamma-under-g=log are all hard errors. `kvs` is every
/// workload key in application order (later duplicates are errors).
WorkloadParse parse_workload(const std::vector<std::pair<std::string, std::string>>& kvs);

/// Semantic re-validation of an already-built spec (what parse_workload ran
/// after parsing). Empty string = valid.
std::string validate_workload(const WorkloadSpec& spec);

/// Canonical flat form: component names always, other keys only when they
/// differ from the defaults. parse_workload(workload_to_flags(s)).spec == s
/// for every valid spec with the default seed (round-trip test in
/// tests/test_workload.cpp) — the seed is runner-owned and never part of
/// the flat form, so it does not survive the trip.
std::vector<std::pair<std::string, std::string>> workload_to_flags(const WorkloadSpec& spec);

/// Materialise the workload: resolve both components through the registries,
/// compose them into a ComposedAdversary and attach the named protocol on
/// the regime's FunctionSet. CR_CHECKs validate_workload(spec) is clean.
Scenario build_workload(const WorkloadSpec& spec);

/// The WorkloadSpec behind one of the five registered scenario presets
/// ("worst_case", "batch", "smooth", "bernoulli_stream", "bursty"): the
/// registered builders are exactly build_workload over this mapping, so any
/// legacy scenario sweep is also expressible as a workload sweep. CR_CHECKs
/// the scenario name.
WorkloadSpec scenario_preset_workload(const std::string& scenario, const ScenarioParams& p);

/// Quiescent-tail certificate for the lockstep engine, derived from the
/// workload's component names and parameters (see engine/lockstep.hpp):
/// `quiet_after` is a slot after which the arrival component provably emits
/// nothing (batch: its arrival slot; bernoulli: its window end; otherwise
/// the horizon, which is trivially correct and disables the skip), and
/// `tail_jam` is the i.i.d. jam probability past that point (none: 0, iid:
/// its fraction, prefix: 0 past the prefix). History- or budget-coupled
/// jammers cannot be certified — `eligible` is false and lockstep sweeps
/// fall back to the exact per-slot loop.
struct LockstepCertificate {
  bool eligible = false;
  slot_t quiet_after = 0;
  double tail_jam = -1.0;
};
LockstepCertificate lockstep_certificate(const WorkloadSpec& spec);

/// Precomputed adversary plan for the lockstep plan path (see
/// engine/lockstep.hpp LockstepPlan), derived from the component names:
/// seed- and history-independent components ("none"/"batch"/"paced"/"bursty"
/// arrivals; "none"/"prefix"/"periodic"/"budget_paced" jammers) are walked
/// once over the slot axis into a shared schedule / jam-slot list, and the
/// i.i.d. components ("bernoulli" arrivals, "iid" jammers) become
/// per-replication coin parameters the engine batches through Rng::fill.
/// Anything else — history-reading ("reactive") or seed-dependent
/// ("uniform_random") — leaves `valid` false and the sweep runs the generic
/// per-slot path. Plan-path results are bit-identical to the generic path
/// (tests/test_lockstep.cpp PlanPath* tests).
LockstepPlan lockstep_plan(const WorkloadSpec& spec);

/// The LockstepSweep replicate_workload hands to run_lockstep_many for
/// `spec`: registry-built per-seed component factories, the quiescent-tail
/// certificate, and the adversary plan. Exposed so tests can run the same
/// sweep with the plan toggled off and assert the plan path is bit-identical
/// to the generic per-slot path. The returned sweep owns everything its
/// factories capture (safe to outlive this call).
LockstepSweep lockstep_sweep(const WorkloadSpec& spec, int reps, std::uint64_t base_seed,
                             int threads);

/// Replicate `spec` over seeds base_seed .. base_seed+reps-1 on `engine` and
/// return the results in seed order. `config_template` supplies the run
/// options other than horizon and seed (recording tier, stop flags, node
/// cap), which are taken from the spec and the seed sweep.
///
/// For every scalar engine this is exactly the classic harness loop —
/// build_workload per seed, run_scenario, replicate() across threads — and
/// is byte-identical to it. For engine "lockstep" it dispatches to
/// run_lockstep_many: one lockstep pass advances all replications together,
/// with the analytic quiescent-tail skip enabled whenever
/// lockstep_certificate(spec) is eligible (aggregate statistics match the
/// scalar engines; per-seed bit-exactness is not preserved across
/// substrates).
std::vector<SimResult> replicate_workload(const Engine& engine, const WorkloadSpec& spec,
                                          int reps, std::uint64_t base_seed, int threads,
                                          const SimConfig& config_template = {});

/// replicate_workload over a registered scenario preset (the five built-in
/// scenario names), via scenario_preset_workload. `params.horizon` and
/// `params.seed` shape the spec exactly like the registry builders do.
std::vector<SimResult> replicate_scenario(const Engine& engine, const std::string& scenario,
                                          const ScenarioParams& params, int reps,
                                          std::uint64_t base_seed, int threads,
                                          const SimConfig& config_template = {});

}  // namespace cr
