// Canned scenario builders shared by benches, examples and tests.
//
// Each builder returns the (FunctionSet, Adversary, SimConfig) triple for a
// named workload from the experiment index in DESIGN.md.
#pragma once

#include <cstdint>
#include <memory>

#include "adversary/adversary.hpp"
#include "common/functions.hpp"
#include "engine/sim_result.hpp"

namespace cr {

/// The three g regimes the paper discusses.
FunctionSet functions_constant_g(double gamma = 4.0);
FunctionSet functions_log_g();
FunctionSet functions_exp_sqrt_log_g(double scale = 1.0);

struct Scenario {
  FunctionSet fs;
  std::unique_ptr<Adversary> adversary;
  SimConfig config;
};

/// E2-style worst case: i.i.d. jamming at `jam_fraction` plus saturating
/// paced arrivals (n_t tracks t/(margin·f(t))). Uses g = const.
Scenario worst_case_scenario(slot_t horizon, double jam_fraction, double arrival_margin,
                             std::uint64_t seed);

/// Batch workload: n nodes at slot 1, i.i.d. jamming at `jam_fraction`.
Scenario batch_scenario(std::uint64_t n, double jam_fraction, slot_t horizon,
                        FunctionSet fs);

/// Corollary 3.6 smooth adversary: paced arrivals at 1/(arrival_margin·f)
/// and budget-paced jamming at 1/(jam_margin·g).
Scenario smooth_scenario(slot_t horizon, FunctionSet fs, double arrival_margin,
                         double jam_margin);

}  // namespace cr
