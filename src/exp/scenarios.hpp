/// \file
/// Canned scenario builders and the name-keyed scenario registry shared by
/// benches, examples and tests.
///
/// Each builder returns a Scenario — the (protocol, adversary, config)
/// triple for a named workload from the experiment index in
/// docs/EXPERIMENTS.md. The registry promotes the builders into named,
/// parameterised workloads so drivers can select them by string without
/// hand-rolled dispatch:
///
///     Scenario sc = ScenarioRegistry::instance().build("worst_case", params);
///     SimResult r = run_scenario(EngineRegistry::instance().preferred(sc.protocol), sc);
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adversary/adversary.hpp"
#include "common/functions.hpp"
#include "engine/engine.hpp"
#include "engine/sim_result.hpp"

namespace cr {

/// The three g regimes the paper discusses.
FunctionSet functions_constant_g(double gamma = 4.0);
FunctionSet functions_log_g();
FunctionSet functions_exp_sqrt_log_g(double scale = 1.0);

/// Regime by name: "const" | "log" | "exp_sqrt_log". `gamma` feeds const's
/// value and exp_sqrt_log's scale; log ignores it. Aborts on unknown names.
FunctionSet functions_for_regime(const std::string& regime, double gamma = 4.0);

struct Scenario {
  FunctionSet fs;
  std::unique_ptr<Adversary> adversary;
  SimConfig config;
  /// What runs on the channel. Builders default this to the CJZ algorithm
  /// on `fs`; callers may swap in any spec to race other protocols on the
  /// same workload.
  ProtocolSpec protocol;
};

/// Execute `scenario` on `engine` (the scenario's adversary is consumed
/// statefully — build a fresh Scenario per run).
SimResult run_scenario(const Engine& engine, Scenario& scenario,
                       SlotObserver* observer = nullptr);

/// E2-style worst case: i.i.d. jamming at `jam_fraction` plus saturating
/// paced arrivals (n_t tracks t/(margin·f(t))). Uses g = const.
Scenario worst_case_scenario(slot_t horizon, double jam_fraction, double arrival_margin,
                             std::uint64_t seed);

/// Batch workload: n nodes at slot 1, i.i.d. jamming at `jam_fraction`.
Scenario batch_scenario(std::uint64_t n, double jam_fraction, slot_t horizon,
                        FunctionSet fs);

/// Corollary 3.6 smooth adversary: paced arrivals at 1/(arrival_margin·f)
/// and budget-paced jamming at 1/(jam_margin·g).
Scenario smooth_scenario(slot_t horizon, FunctionSet fs, double arrival_margin,
                         double jam_margin);

/// Parameter bundle understood by the registered scenario builders. Every
/// field has a sensible default; builders read only the fields they document.
struct ScenarioParams {
  slot_t horizon = 1 << 16;
  std::uint64_t seed = 1;
  std::uint64_t n = 256;           ///< batch / burst size
  double jam = 0.25;               ///< i.i.d. jam fraction (worst_case, batch, bernoulli_stream)
  double arrival_margin = 4.0;     ///< paced-arrival margin (worst_case, smooth)
  double jam_margin = 8.0;         ///< budget-paced jam margin (smooth)
  double rate = 0.1;               ///< Bernoulli arrival rate (bernoulli_stream)
  std::string g_regime = "const";  ///< "const" | "log" | "exp_sqrt_log"
  double gamma = 4.0;              ///< const-g value / exp_sqrt_log scale
};

using ScenarioBuilderFn = Scenario (*)(const ScenarioParams&);

struct ScenarioEntry {
  std::string name;
  std::string description;
  ScenarioBuilderFn build;
  /// The ScenarioParams fields this builder actually consumes (by flag
  /// name). `cr bench scenario` and the suite validator reject an
  /// explicitly-passed parameter outside this set — a param one scenario
  /// ignores must not be a silent no-op in a sweep over scenarios.
  std::vector<std::string> params;

  bool consumes(const std::string& param) const;
};

/// Name-keyed scenario registry. Seeded with the five built-in workloads
/// ("worst_case", "batch", "smooth", "bernoulli_stream", "bursty"), each a
/// thin preset over WorkloadSpec (src/exp/workload.hpp) — byte-identical to
/// the direct compositions, parity-tested in tests/test_workload.cpp;
/// register_scenario() is the extension point. Registration is not
/// thread-safe — register before fanning out runs.
class ScenarioRegistry {
 public:
  static ScenarioRegistry& instance();

  /// nullptr when unknown.
  const ScenarioEntry* find(const std::string& name) const;
  /// Aborts (CR_CHECK) on unknown names, after printing the known set.
  Scenario build(const std::string& name, const ScenarioParams& params = {}) const;

  std::vector<std::string> names() const;
  const std::vector<ScenarioEntry>& entries() const { return entries_; }

  void register_scenario(ScenarioEntry entry);

 private:
  ScenarioRegistry();
  std::vector<ScenarioEntry> entries_;
};

}  // namespace cr
