#include "exp/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "common/check.hpp"
#include "exp/workload.hpp"

namespace cr {

FunctionSet functions_constant_g(double gamma) {
  FunctionSet fs;
  fs.g = fn::constant(gamma);
  return fs;
}

FunctionSet functions_log_g() {
  FunctionSet fs;
  fs.g = fn::log2p(1.0);
  return fs;
}

FunctionSet functions_exp_sqrt_log_g(double scale) {
  FunctionSet fs;
  fs.g = fn::exp_sqrt_log(scale);
  return fs;
}

FunctionSet functions_for_regime(const std::string& regime, double gamma) {
  if (regime == "const") return functions_constant_g(gamma);
  if (regime == "log") return functions_log_g();
  if (regime == "exp_sqrt_log") return functions_exp_sqrt_log_g(gamma);
  std::fprintf(stderr,
               "functions_for_regime: unknown regime \"%s\" (known: const, log, exp_sqrt_log)\n",
               regime.c_str());
  CR_CHECK(false);
  return {};
}

SimResult run_scenario(const Engine& engine, Scenario& scenario, SlotObserver* observer) {
  CR_CHECK(scenario.adversary != nullptr);
  CR_CHECK(engine.supports(scenario.protocol));
  return engine.run(scenario.protocol, *scenario.adversary, scenario.config, observer);
}

Scenario worst_case_scenario(slot_t horizon, double jam_fraction, double arrival_margin,
                             std::uint64_t seed) {
  // The algorithm is always configured for constant-fraction tolerance
  // (g = const); jam_fraction is what the adversary actually does. This
  // keeps the arrival pacing (which depends on f, hence on g) comparable
  // across jamming levels, including zero.
  Scenario sc;
  sc.fs = functions_constant_g(4.0);
  sc.adversary = std::make_unique<ComposedAdversary>(
      paced_arrivals(sc.fs, arrival_margin),
      jam_fraction > 0.0 ? iid_jammer(jam_fraction) : no_jam());
  sc.config.horizon = horizon;
  sc.config.seed = seed;
  sc.protocol = cjz_protocol(sc.fs);
  return sc;
}

Scenario batch_scenario(std::uint64_t n, double jam_fraction, slot_t horizon, FunctionSet fs) {
  Scenario sc;
  sc.fs = std::move(fs);
  sc.adversary = std::make_unique<ComposedAdversary>(batch_arrival(n, 1),
                                                     jam_fraction > 0.0
                                                         ? iid_jammer(jam_fraction)
                                                         : no_jam());
  sc.config.horizon = horizon;
  sc.protocol = cjz_protocol(sc.fs);
  return sc;
}

Scenario smooth_scenario(slot_t horizon, FunctionSet fs, double arrival_margin,
                         double jam_margin) {
  Scenario sc;
  sc.fs = std::move(fs);
  sc.adversary = std::make_unique<ComposedAdversary>(
      paced_arrivals(sc.fs, arrival_margin), budget_paced_jammer(sc.fs.g, jam_margin));
  sc.config.horizon = horizon;
  sc.protocol = cjz_protocol(sc.fs);
  return sc;
}

namespace {

// The five built-in builders are thin presets over WorkloadSpec: each maps
// its ScenarioParams onto named registry components (scenario_preset_workload
// in src/exp/workload.cpp) and materialises the result. Parity with the
// direct compositions is pinned byte-for-byte in tests/test_workload.cpp.

Scenario build_worst_case(const ScenarioParams& p) {
  return build_workload(scenario_preset_workload("worst_case", p));
}

Scenario build_batch(const ScenarioParams& p) {
  return build_workload(scenario_preset_workload("batch", p));
}

Scenario build_smooth(const ScenarioParams& p) {
  return build_workload(scenario_preset_workload("smooth", p));
}

Scenario build_bernoulli_stream(const ScenarioParams& p) {
  return build_workload(scenario_preset_workload("bernoulli_stream", p));
}

Scenario build_bursty(const ScenarioParams& p) {
  return build_workload(scenario_preset_workload("bursty", p));
}

}  // namespace

bool ScenarioEntry::consumes(const std::string& param) const {
  for (const std::string& name : params)
    if (name == param) return true;
  return false;
}

ScenarioRegistry::ScenarioRegistry() {
  register_scenario({"worst_case",
                     "paced arrivals ~t/(margin·f) + i.i.d. jamming (E2)", build_worst_case,
                     {"horizon", "seed", "jam", "arrival_margin"}});
  register_scenario({"batch", "n nodes at slot 1 + i.i.d. jamming (E3/E4/E7)", build_batch,
                     {"horizon", "seed", "n", "jam", "g_regime", "gamma"}});
  register_scenario({"smooth",
                     "budget-saturating paced arrivals + paced jamming (E1/Cor 3.6)",
                     build_smooth,
                     {"horizon", "seed", "arrival_margin", "jam_margin", "g_regime", "gamma"}});
  register_scenario({"bernoulli_stream",
                     "Bernoulli(rate) arrivals + i.i.d. jamming (E7b)", build_bernoulli_stream,
                     {"horizon", "seed", "rate", "jam", "g_regime", "gamma"}});
  register_scenario({"bursty",
                     "bursts of n inside the smooth budget + paced jamming (E9)", build_bursty,
                     {"horizon", "seed", "n", "arrival_margin", "jam_margin", "g_regime",
                      "gamma"}});
}

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

const ScenarioEntry* ScenarioRegistry::find(const std::string& name) const {
  for (const auto& entry : entries_)
    if (entry.name == name) return &entry;
  return nullptr;
}

Scenario ScenarioRegistry::build(const std::string& name, const ScenarioParams& params) const {
  const ScenarioEntry* entry = find(name);
  if (entry == nullptr) {
    std::fprintf(stderr, "ScenarioRegistry: unknown scenario \"%s\" (known:", name.c_str());
    for (const auto& e : entries_) std::fprintf(stderr, " %s", e.name.c_str());
    std::fprintf(stderr, ")\n");
  }
  CR_CHECK(entry != nullptr);
  return entry->build(params);
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.name);
  return out;
}

void ScenarioRegistry::register_scenario(ScenarioEntry entry) {
  CR_CHECK(entry.build != nullptr);
  CR_CHECK(find(entry.name) == nullptr);  // names are unique keys
  entries_.push_back(std::move(entry));
}

}  // namespace cr
