#include "exp/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"

namespace cr {

FunctionSet functions_constant_g(double gamma) {
  FunctionSet fs;
  fs.g = fn::constant(gamma);
  return fs;
}

FunctionSet functions_log_g() {
  FunctionSet fs;
  fs.g = fn::log2p(1.0);
  return fs;
}

FunctionSet functions_exp_sqrt_log_g(double scale) {
  FunctionSet fs;
  fs.g = fn::exp_sqrt_log(scale);
  return fs;
}

Scenario worst_case_scenario(slot_t horizon, double jam_fraction, double arrival_margin,
                             std::uint64_t seed) {
  // The algorithm is always configured for constant-fraction tolerance
  // (g = const); jam_fraction is what the adversary actually does. This
  // keeps the arrival pacing (which depends on f, hence on g) comparable
  // across jamming levels, including zero.
  Scenario sc;
  sc.fs = functions_constant_g(4.0);
  sc.adversary = std::make_unique<ComposedAdversary>(
      paced_arrivals(sc.fs, arrival_margin),
      jam_fraction > 0.0 ? iid_jammer(jam_fraction) : no_jam());
  sc.config.horizon = horizon;
  sc.config.seed = seed;
  return sc;
}

Scenario batch_scenario(std::uint64_t n, double jam_fraction, slot_t horizon, FunctionSet fs) {
  Scenario sc;
  sc.fs = std::move(fs);
  sc.adversary = std::make_unique<ComposedAdversary>(batch_arrival(n, 1),
                                                     jam_fraction > 0.0
                                                         ? iid_jammer(jam_fraction)
                                                         : no_jam());
  sc.config.horizon = horizon;
  return sc;
}

Scenario smooth_scenario(slot_t horizon, FunctionSet fs, double arrival_margin,
                         double jam_margin) {
  Scenario sc;
  sc.fs = std::move(fs);
  sc.adversary = std::make_unique<ComposedAdversary>(
      paced_arrivals(sc.fs, arrival_margin), budget_paced_jammer(sc.fs.g, jam_margin));
  sc.config.horizon = horizon;
  return sc;
}

}  // namespace cr
