#include "exp/harness.hpp"

#include "common/check.hpp"
#include "common/table.hpp"

namespace cr {

std::vector<SimResult> replicate(int reps, std::uint64_t base_seed, const RunFn& run) {
  CR_CHECK(reps > 0);
  std::vector<SimResult> results;
  results.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) results.push_back(run(base_seed + static_cast<std::uint64_t>(r)));
  return results;
}

Accumulator collect(const std::vector<SimResult>& results,
                    const std::function<double(const SimResult&)>& metric) {
  Accumulator acc;
  for (const auto& res : results) acc.add(metric(res));
  return acc;
}

double fraction(const std::vector<SimResult>& results,
                const std::function<bool(const SimResult&)>& pred) {
  if (results.empty()) return 0.0;
  std::uint64_t hits = 0;
  for (const auto& res : results)
    if (pred(res)) ++hits;
  return static_cast<double>(hits) / static_cast<double>(results.size());
}

std::string mean_sd(const Accumulator& acc, int precision) {
  return format_double(acc.mean(), precision) + "±" + format_double(acc.stddev(), precision);
}

}  // namespace cr
