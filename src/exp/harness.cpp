#include "exp/harness.hpp"

#include <atomic>
#include <thread>

#include "common/check.hpp"
#include "common/table.hpp"

namespace cr {

namespace detail {

void parallel_for_reps(int reps, int threads, const std::function<void(int)>& body) {
  CR_CHECK(reps > 0);
  if (threads > reps) threads = reps;
  if (threads <= 1) {
    for (int r = 0; r < reps; ++r) body(r);
    return;
  }
  // Work-stealing by atomic counter: replications have uneven cost (early
  // stopping, adversary-dependent horizons), so static striping would leave
  // workers idle. Indices are handed out in contiguous blocks rather than
  // one at a time — callers write results[r] for the indices they ran, and
  // interleaved single-index stealing puts adjacent workers' stores on the
  // same cache line (false sharing measurably throttles short runs, where
  // the store traffic is a visible fraction of the work). Each index still
  // runs exactly once and the output does not depend on which worker ran it
  // (results are stored by index).
  constexpr int kBlock = 8;
  std::atomic<int> next_block{0};
  auto worker = [&] {
    for (;;) {
      const int lo = next_block.fetch_add(kBlock);
      if (lo >= reps) return;
      const int hi = lo + kBlock < reps ? lo + kBlock : reps;
      for (int r = lo; r < hi; ++r) body(r);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
}

}  // namespace detail

std::vector<SimResult> replicate(int reps, std::uint64_t base_seed, const RunFn& run,
                                 int threads) {
  return replicate_map(reps, base_seed, run, threads);
}

Accumulator collect(const std::vector<SimResult>& results,
                    const std::function<double(const SimResult&)>& metric) {
  Accumulator acc;
  for (const auto& res : results) acc.add(metric(res));
  return acc;
}

double fraction(const std::vector<SimResult>& results,
                const std::function<bool(const SimResult&)>& pred) {
  if (results.empty()) return 0.0;
  std::uint64_t hits = 0;
  for (const auto& res : results)
    if (pred(res)) ++hits;
  return static_cast<double>(hits) / static_cast<double>(results.size());
}

std::string mean_sd(const Accumulator& acc, int precision) {
  return format_double(acc.mean(), precision) + "±" + format_double(acc.stddev(), precision);
}

}  // namespace cr
