// Shared driver for the bench binaries.
//
// Every bench used to hand-roll the same prologue: parse Cli, read
// --reps/--quick, pick quick-mode defaults, loop seeds serially. BenchDriver
// centralises that contract:
//
//   * uniform flags: --reps, --seed, --threads, --quick, --help — declared
//     once, plus the bench's own flags (list "csv" there to enable
//     csv_path()), with unknown flags rejected loudly (a typo like --rep=10
//     exits with a did-you-mean message);
//   * quick-aware defaults: reps(6, 3) reads --reps with a default of 6,
//     or 3 under --quick;
//   * deterministic parallel replication: replicate() fans seeds across
//     --threads workers (default: all hardware threads) and returns
//     seed-ordered results bit-identical to a serial run.
//
// Usage:
//   BenchDriver driver(argc, argv, {"E2", "worst-case throughput",
//                                   {"max_exp"}});
//   const int reps = driver.reps(6, 3);
//   const auto results = driver.replicate(reps, 11000, [&](std::uint64_t s) {
//     Scenario sc = ...; sc.config.seed = s;
//     return run_scenario(engine, sc);
//   });
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "exp/harness.hpp"

namespace cr {

struct BenchInfo {
  std::string id;     ///< experiment number, e.g. "E2"
  std::string title;  ///< one-line description for --help
  std::vector<std::string> flags;  ///< bench-specific flags beyond the standard set
};

class BenchDriver {
 public:
  /// Parses flags, handles --help (prints usage, exits 0) and rejects
  /// unknown flags (exits 2 with a did-you-mean message).
  BenchDriver(int argc, const char* const* argv, BenchInfo info);

  const Cli& cli() const { return cli_; }
  const BenchInfo& info() const { return info_; }

  bool quick() const { return quick_; }
  /// Worker count for replicate(): --threads, defaulting to the hardware
  /// concurrency (results do not depend on it).
  int threads() const { return threads_; }

  /// --reps, defaulting to `full` (or `quick_def` under --quick).
  int reps(int full, int quick_def) const;
  /// Any integer flag with quick-aware defaults.
  std::int64_t get_int(const std::string& name, std::int64_t full,
                       std::int64_t quick_def) const;
  /// --seed, defaulting to the bench's fixed base seed.
  std::uint64_t seed(std::uint64_t def) const;
  /// --csv=PATH; empty when not requested. Bare --csv selects `def`. Only
  /// meaningful for benches that list "csv" in BenchInfo.flags (others
  /// reject the flag at startup).
  std::string csv_path(const std::string& def) const;

  /// Deterministic parallel replication over seeds base .. base+reps-1,
  /// honouring --threads. `run` must be safe to call concurrently (build all
  /// per-run state inside it); results come back in seed order, identical
  /// for every thread count. See replicate_map() in exp/harness.hpp.
  template <typename Fn>
  auto replicate(int n, std::uint64_t base_seed, Fn&& run) const {
    return replicate_map(n, base_seed, std::forward<Fn>(run), threads_);
  }

 private:
  Cli cli_;
  BenchInfo info_;
  bool quick_ = false;
  int threads_ = 1;
};

}  // namespace cr
