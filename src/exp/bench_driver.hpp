/// \file
/// Shared driver for the CLI benches (standalone wrappers and `cr bench`).
///
/// Every bench used to hand-roll the same prologue: parse Cli, read
/// --reps/--quick, pick quick-mode defaults, loop seeds serially. BenchDriver
/// centralises that contract:
///
///   * uniform flags: --reps, --seed, --threads, --quick, --csv, --quiet,
///     --help — declared once, plus the bench's own flags (each with a help
///     line for --help and `cr list`), with unknown flags rejected loudly
///     (a typo like --rep=10 exits with a did-you-mean message);
///   * quick-aware defaults: reps(6, 3) reads --reps with a default of 6,
///     or 3 under --quick;
///   * deterministic parallel replication: replicate() fans seeds across
///     --threads workers (default: all hardware threads) and returns
///     seed-ordered results bit-identical to a serial run;
///   * suite-friendly output: narrative tables go to out(), which --quiet
///     silences so `cr suite run` logs stay readable; --csv=PATH output is
///     never silenced.
///
/// Usage:
///   BenchDriver driver(argc, argv, {"E2", "worst-case throughput",
///                                   {{"max_exp", "largest horizon exponent"}}});
///   const int reps = driver.reps(6, 3);
///   const auto results = driver.replicate(reps, 11000, [&](std::uint64_t s) {
///     Scenario sc = ...; sc.config.seed = s;
///     return run_scenario(engine, sc);
///   });
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "exp/harness.hpp"

namespace cr {

/// One bench-specific flag: its name and the one-line help shown by
/// --help, `cr list --md` and docs/EXPERIMENTS.md (all generated from the
/// same declaration, so they cannot drift).
struct BenchFlag {
  std::string name;  ///< flag name without the leading "--"
  std::string help;  ///< one-line description
};

struct BenchInfo {
  std::string id;     ///< experiment number, e.g. "E2"
  std::string title;  ///< one-line description for --help
  std::vector<BenchFlag> flags;  ///< bench-specific flags beyond the standard set
  /// Optional: accept flags whose names are dynamic (the workload bench's
  /// `arrival.<param>`/`jammer.<param>` keys). A passed flag matching the
  /// predicate is treated as declared; precise validation (is the parameter
  /// real for the chosen component?) stays with the bench.
  bool (*dynamic_flag)(const std::string& name) = nullptr;
};

class BenchDriver {
 public:
  /// Parses flags, handles --help (prints usage, exits 0) and rejects
  /// unknown flags (exits 2 with a did-you-mean message).
  BenchDriver(int argc, const char* const* argv, BenchInfo info);

  const Cli& cli() const { return cli_; }
  const BenchInfo& info() const { return info_; }

  bool quick() const { return quick_; }
  /// --quiet: narrative output is discarded (out() is a null sink), so
  /// benches skip narrative-ONLY sub-experiments (tables outside their CSV
  /// schema, e.g. baselines' E7b/E7c) — the suite runner would otherwise
  /// pay their full wall-clock for output that goes nowhere. The CSV is
  /// identical either way.
  bool quiet() const { return quiet_; }
  /// Worker count for replicate(): --threads, defaulting to the hardware
  /// concurrency (results do not depend on it).
  int threads() const { return threads_; }

  /// Narrative output stream: std::cout normally, a null sink under
  /// --quiet. CSV files are written regardless — --quiet only mutes the
  /// human-facing tables and commentary.
  std::ostream& out() const { return *out_; }

  /// --reps, defaulting to `full` (or `quick_def` under --quick).
  int reps(int full, int quick_def) const;
  /// Any integer flag with quick-aware defaults.
  std::int64_t get_int(const std::string& name, std::int64_t full,
                       std::int64_t quick_def) const;
  /// --seed, defaulting to the bench's fixed base seed.
  std::uint64_t seed(std::uint64_t def) const;
  /// --csv=PATH; empty when not requested. Bare --csv selects `def`.
  std::string csv_path(const std::string& def) const;

  /// Deterministic parallel replication over seeds base .. base+reps-1,
  /// honouring --threads. `run` must be safe to call concurrently (build all
  /// per-run state inside it); results come back in seed order, identical
  /// for every thread count. See replicate_map() in exp/harness.hpp.
  template <typename Fn>
  auto replicate(int n, std::uint64_t base_seed, Fn&& run) const {
    return replicate_map(n, base_seed, std::forward<Fn>(run), threads_);
  }

  /// The uniform flags every bench accepts, for docs generation.
  static const std::vector<BenchFlag>& standard_flags();

 private:
  Cli cli_;
  BenchInfo info_;
  bool quick_ = false;
  bool quiet_ = false;
  int threads_ = 1;
  std::ostream* out_ = nullptr;
};

}  // namespace cr
