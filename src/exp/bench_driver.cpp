#include "exp/bench_driver.hpp"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <streambuf>
#include <thread>
#include <utility>

namespace cr {

namespace {

int default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Discards everything written to it (--quiet).
std::ostream& null_stream() {
  struct NullBuf final : std::streambuf {
    int overflow(int c) override { return traits_type::not_eof(c); }
  };
  static NullBuf buf;
  static std::ostream os(&buf);
  return os;
}

}  // namespace

const std::vector<BenchFlag>& BenchDriver::standard_flags() {
  static const std::vector<BenchFlag> flags = {
      {"reps", "replications per table cell (quick-aware default)"},
      {"seed", "base seed; seeds S..S+reps-1 are used"},
      {"threads", "parallel replication workers (default: all cores; results identical)"},
      {"quick", "smaller sizes/reps for smoke runs"},
      {"csv", "write the machine-readable result table to PATH"},
      {"quiet", "suppress narrative output and skip narrative-only sub-tables; "
                "CSV unchanged"},
      {"help", "print usage and exit"},
  };
  return flags;
}

BenchDriver::BenchDriver(int argc, const char* const* argv, BenchInfo info)
    : cli_(argc, argv), info_(std::move(info)) {
  for (const BenchFlag& flag : standard_flags()) cli_.declare({flag.name.c_str()});
  for (const BenchFlag& flag : info_.flags) cli_.declare({flag.name.c_str()});
  if (cli_.get_bool("help", false)) {
    std::printf("%s — %s\n\nflags:\n", info_.id.c_str(), info_.title.c_str());
    for (const BenchFlag& flag : standard_flags())
      std::printf("  --%-10s %s\n", flag.name.c_str(), flag.help.c_str());
    for (const BenchFlag& flag : info_.flags)
      std::printf("  --%-10s %s\n", flag.name.c_str(), flag.help.c_str());
    std::exit(0);
  }
  if (info_.dynamic_flag != nullptr)
    for (const std::string& name : cli_.unknown_flags())
      if (info_.dynamic_flag(name)) cli_.declare({name.c_str()});
  cli_.reject_unknown();
  quick_ = cli_.get_bool("quick", false);
  quiet_ = cli_.get_bool("quiet", false);
  out_ = quiet_ ? &null_stream() : &std::cout;
  const auto threads = cli_.get_int("threads", default_threads());
  if (threads < 1) {
    std::fprintf(stderr, "%s: --threads must be >= 1, got %lld\n", cli_.program().c_str(),
                 static_cast<long long>(threads));
    std::exit(2);
  }
  threads_ = static_cast<int>(threads);
}

int BenchDriver::reps(int full, int quick_def) const {
  return static_cast<int>(cli_.get_int("reps", quick_ ? quick_def : full));
}

std::int64_t BenchDriver::get_int(const std::string& name, std::int64_t full,
                                  std::int64_t quick_def) const {
  return cli_.get_int(name, quick_ ? quick_def : full);
}

std::uint64_t BenchDriver::seed(std::uint64_t def) const {
  return static_cast<std::uint64_t>(cli_.get_int("seed", static_cast<std::int64_t>(def)));
}

std::string BenchDriver::csv_path(const std::string& def) const {
  if (!cli_.has("csv")) return "";
  const std::string path = cli_.get_string("csv", def);
  return (path.empty() || path == "true") ? def : path;
}

}  // namespace cr
