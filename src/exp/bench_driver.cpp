#include "exp/bench_driver.hpp"

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

namespace cr {

namespace {

int default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

BenchDriver::BenchDriver(int argc, const char* const* argv, BenchInfo info)
    : cli_(argc, argv), info_(std::move(info)) {
  // --csv is deliberately NOT declared here: a bench that writes CSV lists
  // "csv" in its BenchInfo.flags, so passing --csv to one that doesn't is
  // rejected instead of silently producing no file.
  cli_.declare({"reps", "seed", "threads", "quick", "help"});
  cli_.declare(info_.flags);
  if (cli_.get_bool("help", false)) {
    std::printf("%s — %s\n\nflags:\n", info_.id.c_str(), info_.title.c_str());
    std::printf("  --reps=N     replications per table cell\n");
    std::printf("  --seed=S     base seed (seeds S..S+reps-1 are used)\n");
    std::printf("  --threads=N  parallel replication workers (default: all cores;\n");
    std::printf("               results are identical for every value)\n");
    std::printf("  --quick      smaller sizes/reps for smoke runs\n");
    for (const auto& flag : info_.flags) std::printf("  --%s\n", flag.c_str());
    std::exit(0);
  }
  cli_.reject_unknown();
  quick_ = cli_.get_bool("quick", false);
  const auto threads = cli_.get_int("threads", default_threads());
  if (threads < 1) {
    std::fprintf(stderr, "%s: --threads must be >= 1, got %lld\n", cli_.program().c_str(),
                 static_cast<long long>(threads));
    std::exit(2);
  }
  threads_ = static_cast<int>(threads);
}

int BenchDriver::reps(int full, int quick_def) const {
  return static_cast<int>(cli_.get_int("reps", quick_ ? quick_def : full));
}

std::int64_t BenchDriver::get_int(const std::string& name, std::int64_t full,
                                  std::int64_t quick_def) const {
  return cli_.get_int(name, quick_ ? quick_def : full);
}

std::uint64_t BenchDriver::seed(std::uint64_t def) const {
  return static_cast<std::uint64_t>(cli_.get_int("seed", static_cast<std::int64_t>(def)));
}

std::string BenchDriver::csv_path(const std::string& def) const {
  if (!cli_.has("csv")) return "";
  const std::string path = cli_.get_string("csv", def);
  return (path.empty() || path == "true") ? def : path;
}

}  // namespace cr
