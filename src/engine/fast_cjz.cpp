#include "engine/fast_cjz.hpp"

#include <algorithm>
#include <utility>

#include "channel/channel.hpp"
#include "common/check.hpp"
#include "protocols/cjz_node.hpp"

namespace cr {

FastCjzSimulator::FastCjzSimulator(FunctionSet fs, Adversary& adversary, SimConfig config,
                                   CjzOptions options)
    : fs_(std::move(fs)), adversary_(adversary), config_(config), options_(options) {}

void FastCjzSimulator::begin_stage(std::uint32_t idx, std::uint64_t k, Rng& rng) {
  Node& n = nodes_[idx];
  n.stage = k;
  const std::uint64_t len = static_cast<std::uint64_t>(1) << k;
  const std::uint64_t vstart = len - 1;

  const unsigned sends = fs_.backoff_sends(len);
  offsets_scratch_.clear();
  for (unsigned i = 0; i < sends; ++i) offsets_scratch_.push_back(rng.uniform_u64(len));
  std::sort(offsets_scratch_.begin(), offsets_scratch_.end());
  offsets_scratch_.erase(std::unique(offsets_scratch_.begin(), offsets_scratch_.end()),
                         offsets_scratch_.end());
  for (const std::uint64_t off : offsets_scratch_) {
    const slot_t abs = n.from + 2 * (vstart + off);
    if (abs <= config_.horizon)
      calendar_.push({abs, CalendarEvent::Kind::kSend, idx, n.gen});
  }
  const slot_t next_begin = n.from + 2 * ((len << 1) - 1);
  if (next_begin <= config_.horizon)
    calendar_.push({next_begin, CalendarEvent::Kind::kStageBegin, idx, n.gen});
}

void FastCjzSimulator::handle_success(slot_t slot, Rng& rng) {
  const int sp = parity_channel(slot);

  // Start the new cohort from the largest merging population (moved, not
  // copied) — under heavy overload cohorts hold hundreds of thousands of
  // members and per-success copies would dominate the run time.
  std::vector<std::uint32_t>* largest = nullptr;
  for (auto& cohort : cohorts_) {
    if (cohort.ctrl_parity != sp || cohort.members.empty()) continue;
    if (largest == nullptr || cohort.members.size() > largest->size())
      largest = &cohort.members;
  }
  std::vector<std::uint32_t> joiners;
  if (largest != nullptr) joiners = std::move(*largest);
  for (auto& cohort : cohorts_) {
    if (cohort.ctrl_parity != sp || cohort.members.empty()) continue;
    if (&cohort.members == largest) continue;
    joiners.insert(joiners.end(), cohort.members.begin(), cohort.members.end());
    cohort.members.clear();
  }
  if (largest != nullptr) largest->clear();
  std::erase_if(cohorts_, [](const Cohort& c) { return c.members.empty(); });

  // Phase 1: every Phase-1 node heard this success. Paper behaviour: move
  // to Phase 2 on the other channel. Ablation (use_phase2 == false): join
  // the fresh Phase-3 cohort directly.
  for (const std::uint32_t idx : p1_nodes_) {
    Node& n = nodes_[idx];
    if (!n.alive || n.phase != 1) continue;
    ++n.gen;  // invalidate pending Phase-1 calendar events
    if (options_.use_phase2) {
      n.phase = 2;
      n.channel = static_cast<std::uint8_t>(1 - sp);
      n.from = slot + 1;
      p2_nodes_[1 - sp].push_back(idx);
      begin_stage(idx, 0, rng);
    } else {
      n.phase = 3;
      joiners.push_back(idx);
    }
  }
  p1_nodes_.clear();

  // Phase 2 -> Phase 3: the whole bucket waiting on this parity joins the
  // cohort anchored at l3 = slot (stale/dead entries filtered here).
  for (const std::uint32_t idx : p2_nodes_[sp]) {
    Node& n = nodes_[idx];
    if (!n.alive || n.phase != 2) continue;
    ++n.gen;
    n.phase = 3;
    joiners.push_back(idx);
  }
  p2_nodes_[sp].clear();

  if (!joiners.empty()) {
    Cohort fresh;
    fresh.l3 = slot;
    // Paper behaviour: the new control channel is parity(slot+1), i.e. the
    // roles swap; the ablation pins them.
    fresh.ctrl_parity = options_.swap_channels_on_restart ? parity_channel(slot + 1) : sp;
    fresh.members = std::move(joiners);
    cohorts_.push_back(std::move(fresh));
  }
}

void FastCjzSimulator::attribute_cohort_sends(const Cohort& cohort, std::uint64_t c,
                                              Rng& rng_attr) {
  const auto m = static_cast<std::uint64_t>(cohort.members.size());
  CR_DCHECK(c <= m);
  visit_uniform_subset(m, c, rng_attr, attr_scratch_,
                       [&](std::uint64_t i) { ++nodes_[cohort.members[i]].sends; });
}

SimResult FastCjzSimulator::run() {
  Rng root(config_.seed);
  Rng rng_adv = root.fork(0xADu);
  Rng rng = root.fork(0xF0u);
  // Attribution draws live on their own stream: recording tiers must never
  // change the trajectory the main stream produces.
  Rng rng_attr = root.fork(0xA7u);

  trace_ = Trace{};
  PublicHistory history(trace_);
  SimResult result;

  nodes_.clear();
  p1_nodes_.clear();
  p2_nodes_[0].clear();
  p2_nodes_[1].clear();
  cohorts_.clear();
  live_ = 0;

  std::vector<std::uint32_t> backoff_senders;
  std::vector<std::pair<std::size_t, std::uint64_t>> cohort_draws;

  for (slot_t slot = 1; slot <= config_.horizon; ++slot) {
    const AdversaryAction action = adversary_.on_slot(slot, history, rng_adv);

    for (std::uint64_t i = 0; i < action.inject; ++i) {
      Node n;
      n.id = static_cast<node_id>(nodes_.size());
      n.arrival = slot;
      n.phase = 1;
      n.channel = static_cast<std::uint8_t>(parity_channel(slot));
      n.from = slot;
      nodes_.push_back(n);
      const auto idx = static_cast<std::uint32_t>(nodes_.size() - 1);
      p1_nodes_.push_back(idx);
      begin_stage(idx, 0, rng);
      ++live_;
    }
    result.arrivals += action.inject;
    CR_CHECK(live_ <= config_.max_live_nodes);

    const std::uint64_t live_now = live_;
    if (live_now > 0) ++result.active_slots;

    // Gather backoff senders due this slot.
    backoff_senders.clear();
    while (auto ev = calendar_.pop_due(slot)) {
      Node& n = nodes_[ev->node];
      if (!n.alive || n.gen != ev->gen) continue;
      if (ev->kind == CalendarEvent::Kind::kStageBegin) {
        begin_stage(ev->node, n.stage + 1, rng);
      } else {
        backoff_senders.push_back(ev->node);
        ++n.sends;
      }
    }

    // Cohort binomial draws.
    std::uint64_t senders = backoff_senders.size();
    cohort_draws.clear();
    for (std::size_t ci = 0; ci < cohorts_.size(); ++ci) {
      Cohort& cohort = cohorts_[ci];
      const auto m = static_cast<std::uint64_t>(cohort.members.size());
      if (m == 0) continue;
      CR_DCHECK(slot > cohort.l3);
      const int sp = parity_channel(slot);
      const double p = cjz_batch_prob(fs_, cohort.l3, sp, sp == cohort.ctrl_parity, slot);
      const std::uint64_t c = rng.binomial(m, p);
      if (c > 0) {
        senders += c;
        cohort_draws.emplace_back(ci, c);
      }
    }
    result.total_sends += senders;

    // Resolve.
    std::uint32_t winner_idx = 0;
    node_id winner = kNoNode;
    bool cohort_winner = false;
    if (senders == 1 && !action.jam) {
      if (!backoff_senders.empty()) {
        winner_idx = backoff_senders.front();
      } else {
        Cohort& cohort = cohorts_[cohort_draws.front().first];
        const std::uint64_t pos = rng.uniform_u64(cohort.members.size());
        winner_idx = cohort.members[pos];
        cohort.members[pos] = cohort.members.back();
        cohort.members.pop_back();
        cohort_winner = true;
      }
      winner = nodes_[winner_idx].id;
    }

    const SlotOutcome out = resolve_slot(slot, senders, action.jam, winner);
    trace_.record(out);
    if (config_.recording.wants_trace()) result.slot_outcomes.push_back(out);
    if (out.jammed) ++result.jammed_slots;
    if (observer_ != nullptr) observer_->on_slot(out, action.inject, live_now);

    if (config_.recording.wants_node_stats()) {
      // Charge each cohort's binomial count to concrete members. A winning
      // cohort draw (c == 1, the member already popped above) is charged to
      // the winner directly; backoff sends were counted at the calendar.
      for (std::size_t di = 0; di < cohort_draws.size(); ++di) {
        if (cohort_winner && di == 0) continue;
        attribute_cohort_sends(cohorts_[cohort_draws[di].first], cohort_draws[di].second,
                               rng_attr);
      }
      if (cohort_winner) ++nodes_[winner_idx].sends;
    }

    if (out.success()) {
      ++result.successes;
      if (result.first_success == 0) result.first_success = slot;
      result.last_success = slot;
      if (config_.recording.wants_success_times()) result.success_times.push_back(slot);

      Node& w = nodes_[winner_idx];
      w.alive = false;
      ++w.gen;
      --live_;
      if (config_.recording.wants_node_stats()) {
        NodeStats ns;
        ns.id = w.id;
        ns.arrival = w.arrival;
        ns.departure = slot;
        ns.sends = w.sends;
        result.node_stats.push_back(ns);
      }

      handle_success(slot, rng);
    }

    result.slots = slot;
    if (config_.stop_when_empty && result.arrivals > 0 && live_ == 0) break;
    if (config_.stop_after_first_success && result.successes > 0) break;
  }

  result.live_at_end = live_;
  if (config_.recording.wants_node_stats()) {
    for (const auto& n : nodes_) {
      if (!n.alive) continue;
      NodeStats ns;
      ns.id = n.id;
      ns.arrival = n.arrival;
      ns.departure = 0;
      ns.sends = n.sends;
      result.node_stats.push_back(ns);
    }
  }
  if (observer_ != nullptr) observer_->on_run_end(result);
  return result;
}

SimResult run_fast_cjz(const FunctionSet& fs, Adversary& adversary, const SimConfig& config,
                       SlotObserver* observer, CjzOptions options) {
  FastCjzSimulator sim(fs, adversary, config, options);
  sim.set_observer(observer);
  return sim.run();
}

}  // namespace cr
