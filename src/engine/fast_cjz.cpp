#include "engine/fast_cjz.hpp"

#include <utility>

#include "common/rng.hpp"
#include "common/stream_tags.hpp"
#include "engine/cjz_core.hpp"

namespace cr {

FastCjzSimulator::FastCjzSimulator(FunctionSet fs, Adversary& adversary, SimConfig config,
                                   CjzOptions options)
    : fs_(std::move(fs)), adversary_(adversary), config_(config), options_(options) {}

SimResult FastCjzSimulator::run() {
  const Rng root(config_.seed);
  Rng rng_adv = root.fork(streams::kAdversary);

  CjzCore<SequentialCjzStreams> core(&fs_, config_, options_, SequentialCjzStreams(root));
  PublicHistory history(core.trace());

  for (slot_t slot = 1; slot <= config_.horizon; ++slot) {
    const AdversaryAction action = adversary_.on_slot(slot, history, rng_adv);
    if (core.step(slot, action, observer_)) break;
  }
  memory_stats_ = core.memory_stats();
  SimResult result = core.finish(observer_);
  trace_ = std::move(core.trace());
  return result;
}

SimResult run_fast_cjz(const FunctionSet& fs, Adversary& adversary, const SimConfig& config,
                       SlotObserver* observer, CjzOptions options) {
  FastCjzSimulator sim(fs, adversary, config, options);
  sim.set_observer(observer);
  return sim.run();
}

}  // namespace cr
