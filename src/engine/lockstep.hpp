/// \file
/// Lockstep many-replication engine for the CJZ algorithm.
///
/// The scalar engines execute one replication at a time; a Monte-Carlo sweep
/// over R seeds pays R full passes over the slot axis plus R times the
/// per-run setup, and the threaded harness buys back at most a core-count
/// factor. The lockstep engine turns the loop inside out: it holds R
/// replications of the SAME workload concurrently and advances all of them
/// in one pass, which is only possible on the counter-based RNG substrate
/// (CounterRng) — every (replication, slot) pair owns a stream that is a
/// pure function of (seed, stream-tag, slot), so no generator state has to
/// persist per replication between slots.
///
/// Two execution paths share the CjzCore transition:
///
///   1. The generic path holds the live adversary components and calls them
///      per (replication, slot) — correct for ANY registered component,
///      including history-reading ones, and bit-exact to running the
///      single-run counter path once per seed. Its optional analytic
///      quiescent-tail skip (quiet_after / tail_jam, certified by the exp
///      layer) replaces the i.i.d. jam coins of a provably-silent tail with
///      one Binomial draw on the dedicated kLockstepTail stream — counters
///      then match the per-slot loop exactly except jammed_slots, which
///      matches in distribution.
///
///   2. The plan path (LockstepPlan) handles the common case where neither
///      component reads the history: the adversary's entire behaviour is
///      precomputed — deterministic arrivals/jams into a shared schedule and
///      jam-slot list, i.i.d. coins into per-replication bitmaps batched
///      through Rng::fill — and each replication advances event-driven: the
///      next stepped slot is min(next certified arrival, the core's
///      next_event_slot()), so protocol-silent slots are never stepped at
///      all, even mid-run between arrivals. The per-slot Philox streams make
///      the skipped slots free *and* exact: a slot with no arrival, no due
///      calendar event and no cohort members consumes no draws and changes
///      nothing but the slot/active/jam counters, which the engine fixes up
///      arithmetically (jams from the precomputed bitmap — exact, not
///      sampled). Plan-path results are bit-identical to the generic path in
///      exact mode (asserted per-seed in tests/test_lockstep.cpp); it
///      subsumes the analytic tail and is what makes always-active sweeps
///      (paced or Bernoulli arrivals to the horizon) fast, not just
///      skippable ones.
///
/// The single-run entry point (run_lockstep_single, wrapped by the
/// "lockstep" EngineRegistry entry) executes one replication on the counter
/// substrate — same trajectory law as fast_cjz, different draws.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "adversary/adversary.hpp"
#include "engine/engine.hpp"
#include "engine/sim_result.hpp"

namespace cr {

/// One replication on the counter substrate (registered as engine
/// "lockstep"). `spec` must be kCjz.
SimResult run_lockstep_single(const ProtocolSpec& spec, Adversary& adversary,
                              const SimConfig& config, SlotObserver* observer = nullptr);

/// Precomputed adversary behaviour for a whole sweep (the plan path above).
/// Only valid for workloads whose components never read the PublicHistory;
/// the exp layer builds it from the component names (lockstep_plan in
/// exp/workload.hpp) and leaves `valid` false for anything it cannot prove.
///
/// Draw-for-draw exactness contract: a replication's i.i.d. coins are drawn
/// from the same forked xoshiro streams, in the same slot order, with the
/// same one-word-per-coin consumption as the live components would draw them
/// on the generic path — so the plan path reproduces the generic path's
/// results bit-for-bit, it does not merely approximate them.
struct LockstepPlan {
  bool valid = false;

  /// Arrival side. Either a shared deterministic schedule (strictly
  /// increasing slots, counts > 0; shared because the plannable arrival
  /// components are seed-independent), or per-replication Bernoulli coins:
  /// floor(rate) certain arrivals plus one frac(rate)-coin per slot of
  /// [from, to].
  bool bernoulli_arrivals = false;
  std::vector<std::pair<slot_t, std::uint64_t>> schedule;
  double arrival_rate = 0.0;
  slot_t arrival_from = 1;
  slot_t arrival_to = 0;

  /// Jam side. Either a shared deterministic jammed-slot list (increasing),
  /// or per-replication i.i.d. coins at `jam_rate`.
  bool iid_jams = false;
  std::vector<slot_t> jam_slots;
  double jam_rate = 0.0;
};

/// Description of a many-seed sweep. Replication r runs with seed
/// base_seed + r; its adversary is rebuilt per replication from the two
/// factories with streams forked exactly like ComposedAdversary forks them
/// (kAdversary -> kArrival/kJammer, jam decided before arrivals), so each
/// replication's adversary behaviour is bit-identical to handing the same
/// components to a scalar engine at the same seed.
struct LockstepSweep {
  int reps = 1;
  std::uint64_t base_seed = 1;
  /// Worker threads; replications are split into contiguous chunks so each
  /// thread's lockstep pass touches a disjoint index range (results are
  /// seed-ordered and independent of the thread count).
  int threads = 1;

  /// Per-replication component factories (seed = that replication's seed,
  /// forwarded so construction-time randomness — e.g. uniform_random's slot
  /// schedule — varies across replications like it does across scalar runs).
  /// Always required: the generic path is the fallback whenever the plan is
  /// absent or the run options rule it out.
  std::function<std::unique_ptr<ArrivalProcess>(std::uint64_t seed)> make_arrival;
  std::function<std::unique_ptr<Jammer>(std::uint64_t seed)> make_jammer;

  /// Precomputed adversary plan; `plan.valid == false` means generic path.
  /// The engine additionally requires that no per-slot trace is recorded and
  /// no stop flag is set (both need every slot materialized / jam coins only
  /// up to the stop slot) — otherwise it silently uses the generic path.
  LockstepPlan plan;

  /// Quiescent-tail certificate for the generic path (see file comment).
  /// analytic_tail enables the skip; it applies only when tail_jam >= 0, the
  /// recording tier does not keep per-slot outcomes, and
  /// config.stop_when_empty is false. The plan path ignores these: its jam
  /// accounting is exact everywhere.
  bool analytic_tail = false;
  /// No arrivals can occur at any slot > quiet_after.
  slot_t quiet_after = 0;
  /// I.i.d. jam probability on slots > quiet_after once quiet (< 0: unknown
  /// — disables the analytic tail).
  double tail_jam = -1.0;
};

/// Run the sweep: R replications of `spec` × `config` advanced in lockstep.
/// Returns one SimResult per replication, ordered by seed (index r <->
/// seed base_seed + r). `config.seed` is ignored (per-rep seeds rule).
std::vector<SimResult> run_lockstep_many(const ProtocolSpec& spec, const SimConfig& config,
                                         const LockstepSweep& sweep);

}  // namespace cr
