/// \file
/// Lockstep many-replication engine for the CJZ algorithm.
///
/// The scalar engines execute one replication at a time; a Monte-Carlo sweep
/// over R seeds pays R full passes over the slot axis plus R times the
/// per-run setup, and the threaded harness buys back at most a core-count
/// factor. The lockstep engine turns the loop inside out: it holds R
/// replications of the SAME workload concurrently and advances all of them
/// slot by slot in one pass, which is only possible on the counter-based RNG
/// substrate (CounterRng) — every (replication, slot) pair owns a stream
/// that is a pure function of (seed, stream-tag, slot), so no generator
/// state has to persist per replication between slots.
///
/// Two things make the sweep fast:
///
///   1. Per-slot work per replication is the CjzCore transition (already
///      O(#cohorts + #due events)); the lockstep pass amortises the slot
///      loop, the adversary-component virtual dispatch stays, but dead
///      replications cost nothing.
///
///   2. Quiescent-tail skipping: once a replication has no live nodes and
///      the workload certificate says no further arrivals can occur
///      (LockstepSweep::quiet_after) and the jammer's tail is i.i.d. with a
///      known rate (tail_jam), the remaining slots are empty-or-jammed with
///      no protocol activity — the engine draws the number of jammed tail
///      slots from one Binomial on the dedicated kLockstepTail counter
///      stream and skips to the horizon. Counters match the scalar engines
///      in distribution (validated statistically in tests/test_lockstep.cpp
///      and tests/test_cross_engine.cpp); bit-exactness with the scalar
///      engines is not expected — the substrates draw different streams.
///      With the tail disabled (exact mode) a lockstep sweep is bit-exact to
///      running its own single-run path once per seed.
///
/// The single-run entry point (run_lockstep_single, wrapped by the
/// "lockstep" EngineRegistry entry) executes one replication on the counter
/// substrate — same trajectory law as fast_cjz, different draws.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "adversary/adversary.hpp"
#include "engine/engine.hpp"
#include "engine/sim_result.hpp"

namespace cr {

/// One replication on the counter substrate (registered as engine
/// "lockstep"). `spec` must be kCjz.
SimResult run_lockstep_single(const ProtocolSpec& spec, Adversary& adversary,
                              const SimConfig& config, SlotObserver* observer = nullptr);

/// Description of a many-seed sweep. Replication r runs with seed
/// base_seed + r; its adversary is rebuilt per replication from the two
/// factories with streams forked exactly like ComposedAdversary forks them
/// (kAdversary -> kArrival/kJammer, jam decided before arrivals), so each
/// replication's adversary behaviour is bit-identical to handing the same
/// components to a scalar engine at the same seed.
struct LockstepSweep {
  int reps = 1;
  std::uint64_t base_seed = 1;
  /// Worker threads; replications are split into contiguous chunks so each
  /// thread's lockstep pass touches a disjoint index range (results are
  /// seed-ordered and independent of the thread count).
  int threads = 1;

  /// Per-replication component factories (seed = that replication's seed,
  /// forwarded so construction-time randomness — e.g. uniform_random's slot
  /// schedule — varies across replications like it does across scalar runs).
  std::function<std::unique_ptr<ArrivalProcess>(std::uint64_t seed)> make_arrival;
  std::function<std::unique_ptr<Jammer>(std::uint64_t seed)> make_jammer;

  /// Quiescent-tail certificate (see file comment). analytic_tail enables
  /// the skip; it applies only when tail_jam >= 0, the recording tier does
  /// not keep per-slot outcomes, and config.stop_when_empty is false.
  bool analytic_tail = false;
  /// No arrivals can occur at any slot > quiet_after.
  slot_t quiet_after = 0;
  /// I.i.d. jam probability on slots > quiet_after once quiet (< 0: unknown
  /// — disables the analytic tail).
  double tail_jam = -1.0;
};

/// Run the sweep: R replications of `spec` × `config` advanced in lockstep.
/// Returns one SimResult per replication, ordered by seed (index r <->
/// seed base_seed + r). `config.seed` is ignored (per-rep seeds rule).
std::vector<SimResult> run_lockstep_many(const ProtocolSpec& spec, const SimConfig& config,
                                         const LockstepSweep& sweep);

}  // namespace cr
