#include "engine/stream.hpp"

#include <cstdio>
#include <thread>

#include "common/rng.hpp"
#include "common/stream_tags.hpp"

namespace cr {

namespace {

SimConfig stream_config(const StreamOptions& o) {
  SimConfig c;
  c.horizon = kStreamHorizon;
  c.seed = o.seed;
  c.recording = RecordingConfig::none();
  c.node_table = o.node_table;
  return c;
}

using ull = unsigned long long;

}  // namespace

StreamSim::StreamSim(const StreamOptions& opts)
    : opts_(opts),
      core_(&fs_, stream_config(opts), CjzOptions{}, CounterCjzStreams(opts.seed),
            Trace::Storage::kDisabled),
      windowed_(opts.window) {
  windowed_.set_sink([this](const WindowStats& ws) { emit_window(ws); });
}

void StreamSim::emit_window(const WindowStats& ws) {
  ++windows_emitted_;
  if (out_ == nullptr) return;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"window\":%llu,\"start\":%llu,\"end\":%llu,\"arrivals\":%llu,"
                "\"successes\":%llu,\"jammed\":%llu,\"sends\":%llu,\"live_max\":%llu,"
                "\"live_end\":%llu,\"live_mean\":%.6f}",
                static_cast<ull>(windows_emitted_), static_cast<ull>(ws.start),
                static_cast<ull>(ws.end), static_cast<ull>(ws.arrivals),
                static_cast<ull>(ws.successes), static_cast<ull>(ws.jammed),
                static_cast<ull>(ws.sends), static_cast<ull>(ws.live_max),
                static_cast<ull>(ws.live_end), ws.live_mean);
  *out_ << buf << '\n';
  out_->flush();
}

void StreamSim::step_slot(slot_t slot, const AdversaryAction& action) {
  // No stop flags are set in streaming configs, so step() never trips.
  (void)core_.step(slot, action, &windowed_);
  cur_slot_ = slot;
  if (checkpoint_sink_ && opts_.checkpoint_every > 0 && slot % opts_.checkpoint_every == 0)
    checkpoint_sink_(snapshot());
}

StreamRunSummary StreamSim::run(EventRing& ring, std::ostream& out) {
  out_ = &out;
  StreamRunSummary s;
  bool stop_max = false;
  for (;;) {
    if (opts_.max_windows > 0 && windows_emitted_ >= opts_.max_windows) {
      stop_max = true;
      break;
    }
    if (!has_pending_) {
      if (!ring.try_pop(pending_)) {
        if (ring.exhausted()) break;
        std::this_thread::yield();
        continue;
      }
      has_pending_ = true;
    }
    if (pending_.slot <= cur_slot_) {
      s.error = "stream: feed slot " + std::to_string(pending_.slot) +
                " is not ahead of the simulation (at slot " + std::to_string(cur_slot_) +
                "); feed slots must be strictly increasing";
      break;
    }
    const slot_t next = cur_slot_ + 1;
    if (next < pending_.slot) {
      step_slot(next, AdversaryAction{});
    } else {
      AdversaryAction action;
      action.inject = pending_.inject;
      action.jam = pending_.jam;
      // Mark the event applied BEFORE stepping: a checkpoint cut inside
      // step_slot must already account for it in the feed cursor.
      has_pending_ = false;
      ++events_applied_;
      step_slot(next, action);
    }
  }

  if (s.error.empty() && !stop_max) {
    // EOF: pad the open window to its boundary with empty slots, which
    // flushes it through the sink, then cut the final checkpoint and write
    // the summary line. A max_windows stop does none of this — the restored
    // tail re-enters here at the true EOF, so head + tail output
    // concatenates byte-identically with the uninterrupted run.
    while (cur_slot_ % opts_.window != 0) step_slot(cur_slot_ + 1, AdversaryAction{});
    if (checkpoint_sink_) checkpoint_sink_(snapshot());
    const SimResult& pr = core_.partial_result();
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"done\":true,\"slots\":%llu,\"arrivals\":%llu,\"successes\":%llu,"
                  "\"live_at_end\":%llu,\"windows\":%llu,\"events\":%llu}",
                  static_cast<ull>(pr.slots), static_cast<ull>(pr.arrivals),
                  static_cast<ull>(pr.successes), static_cast<ull>(core_.live()),
                  static_cast<ull>(windows_emitted_), static_cast<ull>(events_applied_));
    out << buf << '\n';
    out.flush();
  } else if (stop_max && checkpoint_sink_) {
    checkpoint_sink_(snapshot());
  }

  const SimResult& pr = core_.partial_result();
  s.slots = pr.slots;
  s.arrivals = pr.arrivals;
  s.successes = pr.successes;
  s.live_at_end = core_.live();
  s.windows = windows_emitted_;
  s.events_applied = events_applied_;
  s.stopped_by_max_windows = stop_max;
  out_ = nullptr;
  return s;
}

std::vector<std::uint8_t> StreamSim::snapshot() const {
  SnapshotWriter w;
  core_.save(w);
  windowed_.save(w);
  w.u64(cur_slot_);
  w.u64(windows_emitted_);
  w.u64(events_applied_);
  w.u8(has_pending_ ? 1 : 0);
  w.u64(pending_.slot);
  w.u64(pending_.inject);
  w.u8(pending_.jam ? 1 : 0);
  return w.seal(kStreamSnapshotVersion);
}

bool StreamSim::restore(const std::uint8_t* data, std::size_t size, std::string* error) {
  SnapshotReader r(data, size, kStreamSnapshotVersion);
  core_.load(r);
  windowed_.load(r);
  cur_slot_ = r.u64("stream.cur_slot");
  windows_emitted_ = r.u64("stream.windows_emitted");
  events_applied_ = r.u64("stream.events_applied");
  has_pending_ = r.u8("stream.has_pending") != 0;
  pending_.slot = r.u64("stream.pending.slot");
  pending_.inject = r.u64("stream.pending.inject");
  pending_.jam = r.u8("stream.pending.jam") != 0;
  r.expect_end();
  if (r.ok() && cur_slot_ != core_.partial_result().slots)
    r.fail("snapshot: stream cursor disagrees with the engine slot count");
  if (!r.ok()) {
    if (error != nullptr) *error = r.error();
    return false;
  }
  return true;
}

bool parse_stream_event(const std::string& line, StreamEvent* ev, std::string* error) {
  if (error != nullptr) error->clear();
  std::string s = line;
  if (const auto hash = s.find('#'); hash != std::string::npos) s.erase(hash);
  std::size_t i = 0;
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r')) ++i;
  if (i == s.size()) return false;  // blank / comment-only line

  ull slot = 0;
  ull inject = 0;
  int jam = 0;
  char trailing = '\0';
  const int n = std::sscanf(s.c_str(), "%llu %llu %d %c", &slot, &inject, &jam, &trailing);
  if (n < 2 || n > 3 || jam < 0 || jam > 1) {
    if (error != nullptr)
      *error = "stream: malformed trace line \"" + line + "\" (want: slot inject [jam01])";
    return false;
  }
  if (slot == 0) {
    if (error != nullptr) *error = "stream: trace slot 0 is invalid (slots are 1-based)";
    return false;
  }
  ev->slot = static_cast<slot_t>(slot);
  ev->inject = static_cast<std::uint64_t>(inject);
  ev->jam = jam != 0;
  return true;
}

std::vector<StreamEvent> synth_stream_events(std::uint64_t seed, std::uint64_t count) {
  Rng rng = Rng(seed).fork(streams::kStreamSynth);
  std::vector<StreamEvent> events;
  events.reserve(count);
  slot_t slot = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    slot += 1 + rng.uniform_u64(20);  // mean gap 11.5 -> arrival rate ~0.09
    StreamEvent ev;
    ev.slot = slot;
    ev.inject = 1;
    ev.jam = rng.uniform01() < 0.15;
    events.push_back(ev);
  }
  return events;
}

}  // namespace cr
