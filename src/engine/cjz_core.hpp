/// \file
/// CJZ cohort engine core, templated over the RNG-stream policy.
///
/// The cohort/calendar simulation of the CJZ algorithm (see
/// engine/fast_cjz.hpp for the two structural facts it exploits) is written
/// once here and instantiated per randomness substrate:
///
///   * SequentialCjzStreams — the classic substrate: one xoshiro256** main
///     stream and one attribution stream, each advancing draw by draw.
///     FastCjzSimulator wraps CjzCore<SequentialCjzStreams>; its draw
///     sequences are bit-identical to the pre-refactor engine.
///   * CounterCjzStreams — the lockstep substrate: Philox counter streams
///     keyed by (seed, tag) with the slot number as the hi counter, so every
///     slot's draws are a pure function of (seed, slot, draw-index) and no
///     generator state lives between slots. This is what lets one lockstep
///     pass advance thousands of replications per slot and skip quiescent
///     tails without replaying them.
///
/// The core is slot-callable: the driver owns the adversary interaction and
/// calls step(slot, action) once per slot (in order, starting at 1), then
/// finish(). This split is what the lockstep engine needs — it interleaves
/// step() calls of many replications inside one slot loop — while the scalar
/// engines keep their simple run() loop.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "channel/channel.hpp"
#include "channel/trace.hpp"
#include "common/check.hpp"
#include "common/functions.hpp"
#include "common/rng.hpp"
#include "common/stream_tags.hpp"
#include "engine/attribution.hpp"
#include "engine/calendar.hpp"
#include "engine/sim_result.hpp"
#include "protocols/cjz_node.hpp"

namespace cr {

/// Sequential stream policy: forked xoshiro streams, shared across slots.
struct SequentialCjzStreams {
  Rng main_rng;
  Rng attr_rng;

  /// `root` is the run's seed Rng; forks are pure (root is not consumed).
  explicit SequentialCjzStreams(const Rng& root)
      : main_rng(root.fork(streams::kCjzMain)), attr_rng(root.fork(streams::kAttribution)) {}

  void begin_slot(slot_t) {}
  Rng& main() { return main_rng; }
  Rng& attr() { return attr_rng; }
};

/// Counter stream policy: per-slot Philox streams; any slot's draws are
/// computable without the slots before it.
struct CounterCjzStreams {
  CounterRng main_base;
  CounterRng attr_base;
  CounterRng::Stream main_stream;
  CounterRng::Stream attr_stream;

  explicit CounterCjzStreams(std::uint64_t seed)
      : main_base(CounterRng(seed).fork(streams::kCjzMain)),
        attr_base(CounterRng(seed).fork(streams::kAttribution)) {}

  void begin_slot(slot_t slot) {
    main_stream = main_base.stream(slot);
    attr_stream = attr_base.stream(slot);
  }
  CounterRng::Stream& main() { return main_stream; }
  CounterRng::Stream& attr() { return attr_stream; }
};

/// One CJZ run's state and per-slot transition. One instance per run.
template <typename Streams>
class CjzCore {
 public:
  /// `fs` must outlive the core (owned by the caller).
  CjzCore(const FunctionSet* fs, const SimConfig& config, CjzOptions options, Streams streams,
          Trace::Storage trace_storage = Trace::Storage::kFull)
      : fs_(fs),
        config_(config),
        options_(options),
        streams_(std::move(streams)),
        trace_(trace_storage) {
    // backoff_sends goes through a std::function; memoize the per-stage send
    // counts once (stage k has window 2^k — 2^40 slots is beyond any horizon
    // this simulator runs, but begin_stage still falls back past the table).
    for (std::uint64_t k = 0; k < kSendsMemo; ++k)
      sends_memo_[k] = fs_->backoff_sends(std::uint64_t{1} << k);
    calendar_.reserve(64);
  }

  /// Advance one slot (slots arrive in order starting at 1, every slot the
  /// driver simulates). Returns true when a stop condition tripped — the
  /// driver must not step further and should call finish().
  bool step(slot_t slot, const AdversaryAction& action, SlotObserver* observer) {
    // Protocol-silent fast path: nobody live, nothing arriving, no cohort
    // members and no calendar event due. Such a slot cannot consume a draw
    // (cohort binomials need members, backoff sends need due events, stream
    // rebinding is a pure function of the slot), so only the counters move —
    // this is the per-slot floor the quiescent-tail perf cells measure, and
    // skipping straight to it keeps the scalar engines' empty-horizon
    // throughput independent of how much inlining the busy path attracts.
    if (live_ == 0 && action.inject == 0 && cohort_members_ == 0) {
      const slot_t due = calendar_.next_due_slot();
      if (due == 0 || due > slot) {
        const SlotOutcome out = resolve_slot(slot, 0, action.jam, kNoNode);
        if (trace_.storage() != Trace::Storage::kDisabled) trace_.record(out);
        if (config_.recording.wants_trace()) result_.slot_outcomes.push_back(out);
        if (out.jammed) ++result_.jammed_slots;
        if (observer != nullptr) observer->on_slot(out, 0, 0);
        result_.slots = slot;
        if (config_.stop_when_empty && result_.arrivals > 0) return true;
        if (config_.stop_after_first_success && result_.successes > 0) return true;
        return false;
      }
    }

    streams_.begin_slot(slot);
    auto& rng = streams_.main();

    for (std::uint64_t i = 0; i < action.inject; ++i) {
      Node n;
      n.id = static_cast<node_id>(nodes_.size());
      n.arrival = slot;
      n.phase = 1;
      n.channel = static_cast<std::uint8_t>(parity_channel(slot));
      n.from = slot;
      nodes_.push_back(n);
      const auto idx = static_cast<std::uint32_t>(nodes_.size() - 1);
      p1_nodes_.push_back(idx);
      begin_stage(idx, 0, rng);
      ++live_;
    }
    result_.arrivals += action.inject;
    CR_CHECK(live_ <= config_.max_live_nodes);

    const std::uint64_t live_now = live_;
    if (live_now > 0) ++result_.active_slots;

    // Gather backoff senders due this slot.
    backoff_senders_.clear();
    while (auto ev = calendar_.pop_due(slot)) {
      Node& n = nodes_[ev->node];
      if (!n.alive || n.gen != ev->gen) continue;
      if (ev->kind == CalendarEvent::Kind::kStageBegin) {
        begin_stage(ev->node, n.stage + 1, rng);
      } else {
        backoff_senders_.push_back(ev->node);
        ++n.sends;
      }
    }

    // Cohort binomial draws.
    std::uint64_t senders = backoff_senders_.size();
    cohort_draws_.clear();
    const int sp = parity_channel(slot);
    for (std::size_t ci = 0; ci < cohorts_.size(); ++ci) {
      Cohort& cohort = cohorts_[ci];
      const auto m = static_cast<std::uint64_t>(cohort.members.size());
      if (m == 0) continue;
      CR_DCHECK(slot > cohort.l3);
      const double p = cjz_batch_prob(*fs_, cohort.l3, sp, sp == cohort.ctrl_parity, slot);
      const std::uint64_t c = rng.binomial(m, p);
      if (c > 0) {
        senders += c;
        cohort_draws_.emplace_back(ci, c);
      }
    }
    result_.total_sends += senders;

    // Resolve.
    std::uint32_t winner_idx = 0;
    node_id winner = kNoNode;
    bool cohort_winner = false;
    if (senders == 1 && !action.jam) {
      if (!backoff_senders_.empty()) {
        winner_idx = backoff_senders_.front();
      } else {
        Cohort& cohort = cohorts_[cohort_draws_.front().first];
        const std::uint64_t pos = rng.uniform_u64(cohort.members.size());
        winner_idx = cohort.members[pos];
        cohort.members[pos] = cohort.members.back();
        cohort.members.pop_back();
        --cohort_members_;
        cohort_winner = true;
      }
      winner = nodes_[winner_idx].id;
    }

    const SlotOutcome out = resolve_slot(slot, senders, action.jam, winner);
    if (trace_.storage() != Trace::Storage::kDisabled) trace_.record(out);
    if (config_.recording.wants_trace()) result_.slot_outcomes.push_back(out);
    if (out.jammed) ++result_.jammed_slots;
    if (observer != nullptr) observer->on_slot(out, action.inject, live_now);

    if (config_.recording.wants_node_stats()) {
      // Charge each cohort's binomial count to concrete members. A winning
      // cohort draw (c == 1, the member already popped above) is charged to
      // the winner directly; backoff sends were counted at the calendar.
      for (std::size_t di = 0; di < cohort_draws_.size(); ++di) {
        if (cohort_winner && di == 0) continue;
        attribute_cohort_sends(cohorts_[cohort_draws_[di].first], cohort_draws_[di].second,
                               streams_.attr());
      }
      if (cohort_winner) ++nodes_[winner_idx].sends;
    }

    if (out.success()) {
      ++result_.successes;
      if (result_.first_success == 0) result_.first_success = slot;
      result_.last_success = slot;
      if (config_.recording.wants_success_times()) result_.success_times.push_back(slot);

      Node& w = nodes_[winner_idx];
      w.alive = false;
      ++w.gen;
      --live_;
      if (config_.recording.wants_node_stats()) {
        NodeStats ns;
        ns.id = w.id;
        ns.arrival = w.arrival;
        ns.departure = slot;
        ns.sends = w.sends;
        result_.node_stats.push_back(ns);
      }

      handle_success(slot, rng);
    }

    result_.slots = slot;
    if (config_.stop_when_empty && result_.arrivals > 0 && live_ == 0) return true;
    if (config_.stop_after_first_success && result_.successes > 0) return true;
    return false;
  }

  /// Seal the run: backlog, stranded node stats, observer end hook. Call
  /// exactly once, after the last step().
  SimResult finish(SlotObserver* observer) {
    result_.live_at_end = live_;
    if (config_.recording.wants_node_stats()) {
      for (const auto& n : nodes_) {
        if (!n.alive) continue;
        NodeStats ns;
        ns.id = n.id;
        ns.arrival = n.arrival;
        ns.departure = 0;
        ns.sends = n.sends;
        result_.node_stats.push_back(ns);
      }
    }
    if (observer != nullptr) observer->on_run_end(result_);
    return std::move(result_);
  }

  std::uint64_t live() const { return live_; }

  /// Lockstep idle-skip hint: assuming no arrivals, the earliest slot at
  /// which step() could consume a random draw or change any counter beyond
  /// the slot count itself. Returns 0 ("step every slot") while any cohort
  /// holds members — cohort binomials are drawn each slot — and otherwise
  /// the calendar's next event slot (conservative: stale events wake the
  /// core for a draw-free step). A core with an empty calendar and no
  /// cohort members can do nothing until the next arrival, encoded as a
  /// wake-up beyond the horizon.
  slot_t next_event_slot() const {
    if (cohort_members_ > 0) return 0;
    const slot_t due = calendar_.next_due_slot();
    return due == 0 ? config_.horizon + 1 : due;
  }

  /// Plan-path helper: discard calendar events due strictly before `slot`.
  /// The caller must guarantee they are all stale — live() == 0 does, since
  /// every pending event's owner is then dead and would be filtered anyway.
  /// Doing the discard with the calendar's own pop sequence keeps the heap
  /// permutation (and so the pop order of later tied events) bit-identical
  /// to having stepped every slot (see Calendar::drain_below).
  void drain_stale_before(slot_t slot) {
    CR_DCHECK(live_ == 0);
    calendar_.drain_below(slot);
  }

  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }
  /// Counters accumulated so far (valid between steps; finish() moves them).
  const SimResult& partial_result() const { return result_; }

 private:
  struct Node {
    node_id id = kNoNode;
    slot_t arrival = 0;
    slot_t from = 0;      ///< backoff channel-origin (phases 1–2)
    std::uint64_t sends = 0;  ///< attributed channel accesses (energy)
    std::uint64_t stage = 0;
    std::uint32_t gen = 0;
    std::uint8_t phase = 1;
    std::uint8_t channel = 0;  ///< backoff channel parity (phases 1–2)
    bool alive = true;
  };

  struct Cohort {
    slot_t l3 = 0;
    int ctrl_parity = 0;
    std::vector<std::uint32_t> members;
  };

  void begin_stage(std::uint32_t idx, std::uint64_t k, auto& rng) {
    Node& n = nodes_[idx];
    n.stage = k;
    const std::uint64_t len = static_cast<std::uint64_t>(1) << k;
    const std::uint64_t vstart = len - 1;

    const unsigned sends = k < kSendsMemo ? sends_memo_[k] : fs_->backoff_sends(len);
    offsets_scratch_.clear();
    if (len == 1) {
      // Stage 0: uniform_u64(1) consumes one word and returns 0 regardless of
      // its value, so advance the stream without materializing the words.
      rng.skip(sends);
      offsets_scratch_.push_back(0);
    } else {
      // len is a power of two, so Lemire rejection never loops: each offset
      // is exactly one word, equal to the multiply-shift of that word. A
      // batched fill therefore draws bit-identical offsets to `sends`
      // sequential uniform_u64(len) calls (asserted in tests/test_rng.cpp).
      words_scratch_.resize(sends);
      rng.fill(words_scratch_.data(), sends);
      for (unsigned i = 0; i < sends; ++i)
        offsets_scratch_.push_back(static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(words_scratch_[i]) * len) >> 64));
      if (offsets_scratch_.size() == 2) {
        // The common case (two sends per stage) needs no general sort.
        if (offsets_scratch_[0] > offsets_scratch_[1])
          std::swap(offsets_scratch_[0], offsets_scratch_[1]);
        if (offsets_scratch_[0] == offsets_scratch_[1]) offsets_scratch_.pop_back();
      } else if (offsets_scratch_.size() > 2) {
        std::sort(offsets_scratch_.begin(), offsets_scratch_.end());
        offsets_scratch_.erase(std::unique(offsets_scratch_.begin(), offsets_scratch_.end()),
                               offsets_scratch_.end());
      }
    }
    for (const std::uint64_t off : offsets_scratch_) {
      const slot_t abs = n.from + 2 * (vstart + off);
      if (abs <= config_.horizon)
        calendar_.push({abs, CalendarEvent::Kind::kSend, idx, n.gen});
    }
    const slot_t next_begin = n.from + 2 * ((len << 1) - 1);
    if (next_begin <= config_.horizon)
      calendar_.push({next_begin, CalendarEvent::Kind::kStageBegin, idx, n.gen});
  }

  void handle_success(slot_t slot, auto& rng) {
    const int sp = parity_channel(slot);

    // Start the new cohort from the largest merging population (moved, not
    // copied) — under heavy overload cohorts hold hundreds of thousands of
    // members and per-success copies would dominate the run time.
    std::vector<std::uint32_t>* largest = nullptr;
    for (auto& cohort : cohorts_) {
      if (cohort.ctrl_parity != sp || cohort.members.empty()) continue;
      if (largest == nullptr || cohort.members.size() > largest->size())
        largest = &cohort.members;
    }
    std::vector<std::uint32_t> joiners;
    if (largest != nullptr) joiners = std::move(*largest);
    for (auto& cohort : cohorts_) {
      if (cohort.ctrl_parity != sp || cohort.members.empty()) continue;
      if (&cohort.members == largest) continue;
      joiners.insert(joiners.end(), cohort.members.begin(), cohort.members.end());
      cohort.members.clear();
    }
    if (largest != nullptr) largest->clear();
    std::erase_if(cohorts_, [](const Cohort& c) { return c.members.empty(); });

    // Phase 1: every Phase-1 node heard this success. Paper behaviour: move
    // to Phase 2 on the other channel. Ablation (use_phase2 == false): join
    // the fresh Phase-3 cohort directly.
    for (const std::uint32_t idx : p1_nodes_) {
      Node& n = nodes_[idx];
      if (!n.alive || n.phase != 1) continue;
      ++n.gen;  // invalidate pending Phase-1 calendar events
      if (options_.use_phase2) {
        n.phase = 2;
        n.channel = static_cast<std::uint8_t>(1 - sp);
        n.from = slot + 1;
        p2_nodes_[1 - sp].push_back(idx);
        begin_stage(idx, 0, rng);
      } else {
        n.phase = 3;
        joiners.push_back(idx);
        ++cohort_members_;
      }
    }
    p1_nodes_.clear();

    // Phase 2 -> Phase 3: the whole bucket waiting on this parity joins the
    // cohort anchored at l3 = slot (stale/dead entries filtered here).
    for (const std::uint32_t idx : p2_nodes_[sp]) {
      Node& n = nodes_[idx];
      if (!n.alive || n.phase != 2) continue;
      ++n.gen;
      n.phase = 3;
      joiners.push_back(idx);
      ++cohort_members_;
    }
    p2_nodes_[sp].clear();

    if (!joiners.empty()) {
      Cohort fresh;
      fresh.l3 = slot;
      // Paper behaviour: the new control channel is parity(slot+1), i.e. the
      // roles swap; the ablation pins them.
      fresh.ctrl_parity = options_.swap_channels_on_restart ? parity_channel(slot + 1) : sp;
      fresh.members = std::move(joiners);
      cohorts_.push_back(std::move(fresh));
    }
  }

  /// kNodeStats tier: charge `c` of `cohort`'s members with one send each
  /// (uniform subset; see engine/attribution.hpp).
  void attribute_cohort_sends(const Cohort& cohort, std::uint64_t c, auto& rng_attr) {
    const auto m = static_cast<std::uint64_t>(cohort.members.size());
    CR_DCHECK(c <= m);
    visit_uniform_subset(m, c, rng_attr, attr_scratch_,
                         [&](std::uint64_t i) { ++nodes_[cohort.members[i]].sends; });
  }

  const FunctionSet* fs_;
  SimConfig config_;
  CjzOptions options_;
  Streams streams_;

  Trace trace_;
  SimResult result_;
  Calendar calendar_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> p1_nodes_;
  // Phase-2 nodes partitioned by the parity they are waiting on, so a
  // success transitions a whole bucket in O(1) amortized instead of
  // rescanning every Phase-2 node per success.
  std::vector<std::uint32_t> p2_nodes_[2];
  std::vector<Cohort> cohorts_;
  std::uint64_t live_ = 0;
  /// Total members across all cohorts — kept exact so next_event_slot() is
  /// O(1). Members enter in handle_success (the two phase-3 pushes) and leave
  /// only as a winning cohort draw; merges move them without changing the sum.
  std::uint64_t cohort_members_ = 0;
  static constexpr std::uint64_t kSendsMemo = 41;
  unsigned sends_memo_[kSendsMemo] = {};
  std::vector<std::uint64_t> offsets_scratch_;
  std::vector<std::uint64_t> words_scratch_;
  SubsetScratch attr_scratch_;
  std::vector<std::uint32_t> backoff_senders_;
  std::vector<std::pair<std::size_t, std::uint64_t>> cohort_draws_;
};

}  // namespace cr
