/// \file
/// CJZ cohort engine core, templated over the RNG-stream policy.
///
/// The cohort/calendar simulation of the CJZ algorithm (see
/// engine/fast_cjz.hpp for the two structural facts it exploits) is written
/// once here and instantiated per randomness substrate:
///
///   * SequentialCjzStreams — the classic substrate: one xoshiro256** main
///     stream and one attribution stream, each advancing draw by draw.
///     FastCjzSimulator wraps CjzCore<SequentialCjzStreams>; its draw
///     sequences are bit-identical to the pre-refactor engine.
///   * CounterCjzStreams — the lockstep substrate: Philox counter streams
///     keyed by (seed, tag) with the slot number as the hi counter, so every
///     slot's draws are a pure function of (seed, slot, draw-index) and no
///     generator state lives between slots. This is what lets one lockstep
///     pass advance thousands of replications per slot and skip quiescent
///     tails without replaying them.
///
/// The core is slot-callable: the driver owns the adversary interaction and
/// calls step(slot, action) once per slot (in order, starting at 1), then
/// finish(). This split is what the lockstep engine needs — it interleaves
/// step() calls of many replications inside one slot loop — while the scalar
/// engines keep their simple run() loop.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "adversary/adversary.hpp"
#include "channel/channel.hpp"
#include "channel/trace.hpp"
#include "common/check.hpp"
#include "common/functions.hpp"
#include "common/rng.hpp"
#include "common/snapshot.hpp"
#include "common/stream_tags.hpp"
#include "engine/attribution.hpp"
#include "engine/calendar.hpp"
#include "engine/sim_result.hpp"
#include "protocols/cjz_node.hpp"

namespace cr {

/// Sequential stream policy: forked xoshiro streams, shared across slots.
struct SequentialCjzStreams {
  Rng main_rng;
  Rng attr_rng;

  /// `root` is the run's seed Rng; forks are pure (root is not consumed).
  explicit SequentialCjzStreams(const Rng& root)
      : main_rng(root.fork(streams::kCjzMain)), attr_rng(root.fork(streams::kAttribution)) {}

  void begin_slot(slot_t) {}
  Rng& main() { return main_rng; }
  Rng& attr() { return attr_rng; }

  /// Sequential streams carry generator state across slots, which CjzCore
  /// snapshots do not serialize — see CounterCjzStreams::kSnapshotSafe.
  static constexpr bool kSnapshotSafe = false;
};

/// Counter stream policy: per-slot Philox streams; any slot's draws are
/// computable without the slots before it.
struct CounterCjzStreams {
  CounterRng main_base;
  CounterRng attr_base;
  CounterRng::Stream main_stream;
  CounterRng::Stream attr_stream;

  explicit CounterCjzStreams(std::uint64_t seed)
      : main_base(CounterRng(seed).fork(streams::kCjzMain)),
        attr_base(CounterRng(seed).fork(streams::kAttribution)) {}

  void begin_slot(slot_t slot) {
    main_stream = main_base.stream(slot);
    attr_stream = attr_base.stream(slot);
  }
  CounterRng::Stream& main() { return main_stream; }
  CounterRng::Stream& attr() { return attr_stream; }

  /// begin_slot() rebinds both streams as a pure function of (seed, slot),
  /// so at a slot boundary NO generator state needs to cross a snapshot —
  /// the keystone of CjzCore::save()/load() bit-identity (determinism
  /// rule 8 in docs/ARCHITECTURE.md).
  static constexpr bool kSnapshotSafe = true;
};

/// Resident node-table footprint of a core — what NodeTableKind buys.
struct CjzCoreMemoryStats {
  std::uint64_t peak_live_nodes = 0;   ///< max simultaneous live nodes seen
  std::uint64_t node_table_slots = 0;  ///< resident Node records (dense: total arrivals)
  std::uint64_t node_bytes = 0;        ///< node_table_slots * sizeof(Node)
};

/// One CJZ run's state and per-slot transition. One instance per run.
template <typename Streams>
class CjzCore {
 public:
  /// `fs` must outlive the core (owned by the caller).
  CjzCore(const FunctionSet* fs, const SimConfig& config, CjzOptions options, Streams streams,
          Trace::Storage trace_storage = Trace::Storage::kFull)
      : fs_(fs),
        config_(config),
        options_(options),
        streams_(std::move(streams)),
        trace_(trace_storage),
        nodes_(config.node_table == NodeTableKind::kSparse) {
    // backoff_sends goes through a std::function; memoize the per-stage send
    // counts once (stage k has window 2^k — 2^40 slots is beyond any horizon
    // this simulator runs, but begin_stage still falls back past the table).
    for (std::uint64_t k = 0; k < kSendsMemo; ++k)
      sends_memo_[k] = fs_->backoff_sends(std::uint64_t{1} << k);
    calendar_.reserve(64);
  }

  /// Advance one slot (slots arrive in order starting at 1, every slot the
  /// driver simulates). Returns true when a stop condition tripped — the
  /// driver must not step further and should call finish().
  bool step(slot_t slot, const AdversaryAction& action, SlotObserver* observer) {
    // Protocol-silent fast path: nobody live, nothing arriving, no cohort
    // members and no calendar event due. Such a slot cannot consume a draw
    // (cohort binomials need members, backoff sends need due events, stream
    // rebinding is a pure function of the slot), so only the counters move —
    // this is the per-slot floor the quiescent-tail perf cells measure, and
    // skipping straight to it keeps the scalar engines' empty-horizon
    // throughput independent of how much inlining the busy path attracts.
    if (live_ == 0 && action.inject == 0 && cohort_members_ == 0) {
      const slot_t due = calendar_.next_due_slot();
      if (due == 0 || due > slot) {
        const SlotOutcome out = resolve_slot(slot, 0, action.jam, kNoNode);
        if (trace_.storage() != Trace::Storage::kDisabled) trace_.record(out);
        if (config_.recording.wants_trace()) result_.slot_outcomes.push_back(out);
        if (out.jammed) ++result_.jammed_slots;
        if (observer != nullptr) observer->on_slot(out, 0, 0);
        result_.slots = slot;
        if (config_.stop_when_empty && result_.arrivals > 0) return true;
        if (config_.stop_after_first_success && result_.successes > 0) return true;
        return false;
      }
    }

    streams_.begin_slot(slot);
    auto& rng = streams_.main();

    for (std::uint64_t i = 0; i < action.inject; ++i) {
      const std::uint32_t idx = nodes_.acquire();
      Node& n = nodes_[idx];
      n.arrival = slot;
      n.phase = 1;
      n.channel = static_cast<std::uint8_t>(parity_channel(slot));
      n.from = slot;
      p1_nodes_.push_back(idx);
      begin_stage(idx, 0, rng);
      ++live_;
    }
    result_.arrivals += action.inject;
    CR_CHECK(live_ <= config_.max_live_nodes);
    if (live_ > peak_live_) peak_live_ = live_;

    const std::uint64_t live_now = live_;
    if (live_now > 0) ++result_.active_slots;

    // Gather backoff senders due this slot.
    backoff_senders_.clear();
    while (auto ev = calendar_.pop_due(slot)) {
      Node& n = nodes_[ev->node];
      if (!n.alive || n.gen != ev->gen) continue;
      if (ev->kind == CalendarEvent::Kind::kStageBegin) {
        begin_stage(ev->node, n.stage + 1, rng);
      } else {
        backoff_senders_.push_back(ev->node);
        ++n.sends;
      }
    }

    // Cohort binomial draws.
    std::uint64_t senders = backoff_senders_.size();
    cohort_draws_.clear();
    const int sp = parity_channel(slot);
    for (std::size_t ci = 0; ci < cohorts_.size(); ++ci) {
      Cohort& cohort = cohorts_[ci];
      const auto m = static_cast<std::uint64_t>(cohort.members.size());
      if (m == 0) continue;
      CR_DCHECK(slot > cohort.l3);
      const double p = cjz_batch_prob(*fs_, cohort.l3, sp, sp == cohort.ctrl_parity, slot);
      const std::uint64_t c = rng.binomial(m, p);
      if (c > 0) {
        senders += c;
        cohort_draws_.emplace_back(ci, c);
      }
    }
    result_.total_sends += senders;

    // Resolve.
    std::uint32_t winner_idx = 0;
    node_id winner = kNoNode;
    bool cohort_winner = false;
    if (senders == 1 && !action.jam) {
      if (!backoff_senders_.empty()) {
        winner_idx = backoff_senders_.front();
      } else {
        Cohort& cohort = cohorts_[cohort_draws_.front().first];
        const std::uint64_t pos = rng.uniform_u64(cohort.members.size());
        winner_idx = cohort.members[pos];
        cohort.members[pos] = cohort.members.back();
        cohort.members.pop_back();
        --cohort_members_;
        cohort_winner = true;
      }
      winner = nodes_[winner_idx].id;
    }

    const SlotOutcome out = resolve_slot(slot, senders, action.jam, winner);
    if (trace_.storage() != Trace::Storage::kDisabled) trace_.record(out);
    if (config_.recording.wants_trace()) result_.slot_outcomes.push_back(out);
    if (out.jammed) ++result_.jammed_slots;
    if (observer != nullptr) observer->on_slot(out, action.inject, live_now);

    if (config_.recording.wants_node_stats()) {
      // Charge each cohort's binomial count to concrete members. A winning
      // cohort draw (c == 1, the member already popped above) is charged to
      // the winner directly; backoff sends were counted at the calendar.
      for (std::size_t di = 0; di < cohort_draws_.size(); ++di) {
        if (cohort_winner && di == 0) continue;
        attribute_cohort_sends(cohorts_[cohort_draws_[di].first], cohort_draws_[di].second,
                               streams_.attr());
      }
      if (cohort_winner) ++nodes_[winner_idx].sends;
    }

    if (out.success()) {
      ++result_.successes;
      if (result_.first_success == 0) result_.first_success = slot;
      result_.last_success = slot;
      if (config_.recording.wants_success_times()) result_.success_times.push_back(slot);

      Node& w = nodes_[winner_idx];
      w.alive = false;
      ++w.gen;
      --live_;
      if (config_.recording.wants_node_stats()) {
        NodeStats ns;
        ns.id = w.id;
        ns.arrival = w.arrival;
        ns.departure = slot;
        ns.sends = w.sends;
        result_.node_stats.push_back(ns);
      }

      handle_success(slot, rng);
      // Recycle only after handle_success: the winner may still sit in the
      // p1/p2 membership lists it scans (filtered there by `alive`), and its
      // pending calendar events stay stale because the slot keeps the
      // incremented generation across reuse.
      nodes_.release(winner_idx);
    }

    result_.slots = slot;
    if (config_.stop_when_empty && result_.arrivals > 0 && live_ == 0) return true;
    if (config_.stop_after_first_success && result_.successes > 0) return true;
    return false;
  }

  /// Seal the run: backlog, stranded node stats, observer end hook. Call
  /// exactly once, after the last step().
  SimResult finish(SlotObserver* observer) {
    result_.live_at_end = live_;
    if (config_.recording.wants_node_stats()) {
      // Collect the stranded (never-departed) nodes in arrival order. The
      // sparse table hands slots out of a free list, so storage order is not
      // id order there; sorting by id (a no-op for the dense table) keeps
      // node_stats bit-identical across table kinds.
      const std::size_t stranded_begin = result_.node_stats.size();
      for (std::uint32_t idx = 0; idx < nodes_.slot_count(); ++idx) {
        const Node& n = nodes_[idx];
        if (!n.alive) continue;
        NodeStats ns;
        ns.id = n.id;
        ns.arrival = n.arrival;
        ns.departure = 0;
        ns.sends = n.sends;
        result_.node_stats.push_back(ns);
      }
      std::sort(result_.node_stats.begin() + static_cast<std::ptrdiff_t>(stranded_begin),
                result_.node_stats.end(),
                [](const NodeStats& a, const NodeStats& b) { return a.id < b.id; });
    }
    if (observer != nullptr) observer->on_run_end(result_);
    return std::move(result_);
  }

  std::uint64_t live() const { return live_; }

  /// Lockstep idle-skip hint: assuming no arrivals, the earliest slot at
  /// which step() could consume a random draw or change any counter beyond
  /// the slot count itself. Returns 0 ("step every slot") while any cohort
  /// holds members — cohort binomials are drawn each slot — and otherwise
  /// the calendar's next event slot (conservative: stale events wake the
  /// core for a draw-free step). A core with an empty calendar and no
  /// cohort members can do nothing until the next arrival, encoded as a
  /// wake-up beyond the horizon.
  slot_t next_event_slot() const {
    if (cohort_members_ > 0) return 0;
    const slot_t due = calendar_.next_due_slot();
    return due == 0 ? config_.horizon + 1 : due;
  }

  /// Plan-path helper: discard calendar events due strictly before `slot`.
  /// The caller must guarantee they are all stale — live() == 0 does, since
  /// every pending event's owner is then dead and would be filtered anyway.
  /// Doing the discard with the calendar's own pop sequence keeps the heap
  /// permutation (and so the pop order of later tied events) bit-identical
  /// to having stepped every slot (see Calendar::drain_below).
  void drain_stale_before(slot_t slot) {
    CR_DCHECK(live_ == 0);
    calendar_.drain_below(slot);
  }

  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }
  /// Counters accumulated so far (valid between steps; finish() moves them).
  const SimResult& partial_result() const { return result_; }

  /// Resident node footprint (valid any time, including after finish()).
  CjzCoreMemoryStats memory_stats() const {
    CjzCoreMemoryStats s;
    s.peak_live_nodes = peak_live_;
    s.node_table_slots = nodes_.slot_count();
    s.node_bytes = s.node_table_slots * sizeof(Node);
    return s;
  }

  /// Serialize the complete core state at a slot boundary — call only after
  /// step(k) returned and before step(k+1). Counter-stream cores only: their
  /// per-slot streams are rebound as a pure function of (seed, slot), so no
  /// generator state crosses the boundary. The Trace ring is NOT serialized;
  /// snapshot-bearing cores must run with Trace::Storage::kDisabled
  /// (enforced on load). Leads with a config echo so restoring into a
  /// differently-configured core is a named error, never silent divergence.
  void save(SnapshotWriter& w) const {
    static_assert(Streams::kSnapshotSafe,
                  "snapshots require the counter-stream policy (sequential streams "
                  "carry RNG state between slots that save() does not serialize)");
    w.u64(config_.horizon);
    w.u64(config_.seed);
    w.u8(config_.stop_when_empty ? 1 : 0);
    w.u8(config_.stop_after_first_success ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(config_.recording.tier));
    w.u64(config_.max_live_nodes);
    w.u8(static_cast<std::uint8_t>(config_.node_table));
    w.u8(options_.use_phase2 ? 1 : 0);
    w.u8(options_.swap_channels_on_restart ? 1 : 0);

    w.u64(result_.slots);
    w.u64(result_.arrivals);
    w.u64(result_.successes);
    w.u64(result_.jammed_slots);
    w.u64(result_.active_slots);
    w.u64(result_.total_sends);
    w.u64(result_.first_success);
    w.u64(result_.last_success);
    w.u64(result_.success_times.size());
    for (const slot_t t : result_.success_times) w.u64(t);
    w.u64(result_.node_stats.size());
    for (const NodeStats& ns : result_.node_stats) {
      w.u64(ns.id);
      w.u64(ns.arrival);
      w.u64(ns.departure);
      w.u64(ns.sends);
    }
    w.u64(result_.slot_outcomes.size());
    for (const SlotOutcome& so : result_.slot_outcomes) {
      w.u64(so.slot);
      w.u64(so.senders);
      w.u8(so.jammed ? 1 : 0);
      w.u64(so.winner);
    }

    w.u64(live_);
    w.u64(cohort_members_);
    w.u64(peak_live_);

    nodes_.save(w);

    w.u64(p1_nodes_.size());
    for (const std::uint32_t idx : p1_nodes_) w.u32(idx);
    for (int b = 0; b < 2; ++b) {
      w.u64(p2_nodes_[b].size());
      for (const std::uint32_t idx : p2_nodes_[b]) w.u32(idx);
    }
    w.u64(cohorts_.size());
    for (const Cohort& c : cohorts_) {
      w.u64(c.l3);
      w.u8(static_cast<std::uint8_t>(c.ctrl_parity));
      w.u64(c.members.size());
      for (const std::uint32_t m : c.members) w.u32(m);
    }

    calendar_.save(w);
  }

  /// Inverse of save(). On any failure the reader carries a named
  /// diagnostic and the core must be discarded (its state is unspecified but
  /// never out of bounds). Does not call expect_end() — callers may append
  /// their own fields after the core block.
  void load(SnapshotReader& r) {
    static_assert(Streams::kSnapshotSafe,
                  "snapshots require the counter-stream policy (sequential streams "
                  "carry RNG state between slots that load() cannot rebuild)");
    if (trace_.storage() != Trace::Storage::kDisabled) {
      r.fail("snapshot: restore requires a trace-disabled core (trace contents are "
             "not serialized)");
      return;
    }
    const auto echo_u64 = [&](const char* name, std::uint64_t want) {
      const std::uint64_t got = r.u64(name);
      if (r.ok() && got != want)
        r.fail("snapshot: config mismatch on " + std::string(name) + " (blob " +
               std::to_string(got) + ", run " + std::to_string(want) + ")");
    };
    const auto echo_u8 = [&](const char* name, std::uint8_t want) {
      const std::uint8_t got = r.u8(name);
      if (r.ok() && got != want)
        r.fail("snapshot: config mismatch on " + std::string(name) + " (blob " +
               std::to_string(got) + ", run " + std::to_string(want) + ")");
    };
    echo_u64("config.horizon", config_.horizon);
    echo_u64("config.seed", config_.seed);
    echo_u8("config.stop_when_empty", config_.stop_when_empty ? 1 : 0);
    echo_u8("config.stop_after_first_success", config_.stop_after_first_success ? 1 : 0);
    echo_u8("config.recording_tier", static_cast<std::uint8_t>(config_.recording.tier));
    echo_u64("config.max_live_nodes", config_.max_live_nodes);
    echo_u8("config.node_table", static_cast<std::uint8_t>(config_.node_table));
    echo_u8("options.use_phase2", options_.use_phase2 ? 1 : 0);
    echo_u8("options.swap_channels", options_.swap_channels_on_restart ? 1 : 0);
    if (!r.ok()) return;

    result_.slots = r.u64("result.slots");
    result_.arrivals = r.u64("result.arrivals");
    result_.successes = r.u64("result.successes");
    result_.jammed_slots = r.u64("result.jammed_slots");
    result_.active_slots = r.u64("result.active_slots");
    result_.total_sends = r.u64("result.total_sends");
    result_.first_success = r.u64("result.first_success");
    result_.last_success = r.u64("result.last_success");
    const std::uint64_t n_times = r.u64("result.success_times.size");
    if (!r.check_count(n_times, 8, "result.success_times")) return;
    result_.success_times.clear();
    result_.success_times.reserve(n_times);
    for (std::uint64_t i = 0; i < n_times; ++i)
      result_.success_times.push_back(r.u64("result.success_time"));
    const std::uint64_t n_stats = r.u64("result.node_stats.size");
    if (!r.check_count(n_stats, 32, "result.node_stats")) return;
    result_.node_stats.clear();
    result_.node_stats.reserve(n_stats);
    for (std::uint64_t i = 0; i < n_stats; ++i) {
      NodeStats ns;
      ns.id = r.u64("node_stat.id");
      ns.arrival = r.u64("node_stat.arrival");
      ns.departure = r.u64("node_stat.departure");
      ns.sends = r.u64("node_stat.sends");
      result_.node_stats.push_back(ns);
    }
    const std::uint64_t n_outcomes = r.u64("result.slot_outcomes.size");
    if (!r.check_count(n_outcomes, 25, "result.slot_outcomes")) return;
    result_.slot_outcomes.clear();
    result_.slot_outcomes.reserve(n_outcomes);
    for (std::uint64_t i = 0; i < n_outcomes; ++i) {
      SlotOutcome so;
      so.slot = r.u64("slot_outcome.slot");
      so.senders = r.u64("slot_outcome.senders");
      so.jammed = r.u8("slot_outcome.jammed") != 0;
      so.winner = r.u64("slot_outcome.winner");
      result_.slot_outcomes.push_back(so);
    }

    live_ = r.u64("core.live");
    cohort_members_ = r.u64("core.cohort_members");
    peak_live_ = r.u64("core.peak_live");

    nodes_.load(r);
    if (!r.ok()) return;

    const auto read_idx = [&](const char* field) {
      const std::uint32_t idx = r.u32(field);
      if (r.ok() && idx >= nodes_.slot_count())
        r.fail("snapshot: node index out of range in " + std::string(field));
      return idx;
    };
    const std::uint64_t n_p1 = r.u64("core.p1.size");
    if (!r.check_count(n_p1, 4, "core.p1")) return;
    p1_nodes_.clear();
    p1_nodes_.reserve(n_p1);
    for (std::uint64_t i = 0; i < n_p1; ++i) p1_nodes_.push_back(read_idx("core.p1.entry"));
    for (int b = 0; b < 2; ++b) {
      const std::uint64_t n_p2 = r.u64("core.p2.size");
      if (!r.check_count(n_p2, 4, "core.p2")) return;
      p2_nodes_[b].clear();
      p2_nodes_[b].reserve(n_p2);
      for (std::uint64_t i = 0; i < n_p2; ++i)
        p2_nodes_[b].push_back(read_idx("core.p2.entry"));
    }
    const std::uint64_t n_cohorts = r.u64("core.cohorts.size");
    if (!r.check_count(n_cohorts, 17, "core.cohorts")) return;
    cohorts_.clear();
    cohorts_.reserve(n_cohorts);
    for (std::uint64_t i = 0; i < n_cohorts; ++i) {
      Cohort c;
      c.l3 = r.u64("cohort.l3");
      const std::uint8_t parity = r.u8("cohort.ctrl_parity");
      if (r.ok() && parity > 1) {
        r.fail("snapshot: cohort.ctrl_parity out of range");
        return;
      }
      c.ctrl_parity = parity;
      const std::uint64_t n_members = r.u64("cohort.members.size");
      if (!r.check_count(n_members, 4, "cohort.members")) return;
      c.members.reserve(n_members);
      for (std::uint64_t m = 0; m < n_members; ++m)
        c.members.push_back(read_idx("cohort.member"));
      cohorts_.push_back(std::move(c));
    }

    calendar_.load(r);
  }

 private:
  struct Node {
    node_id id = kNoNode;
    slot_t arrival = 0;
    slot_t from = 0;      ///< backoff channel-origin (phases 1–2)
    std::uint64_t sends = 0;  ///< attributed channel accesses (energy)
    std::uint64_t stage = 0;
    std::uint32_t gen = 0;
    std::uint8_t phase = 1;
    std::uint8_t channel = 0;  ///< backoff channel parity (phases 1–2)
    bool alive = true;
  };

  struct Cohort {
    slot_t l3 = 0;
    int ctrl_parity = 0;
    std::vector<std::uint32_t> members;
  };

  /// Node table behind the historical "dense index" interface. Dense mode
  /// appends forever — index == arrival order, departed nodes stay as
  /// tombstones — so resident state is O(total arrivals). Sparse mode
  /// recycles departed slots through a free list, shrinking residency to
  /// O(peak live nodes). Trajectories are bit-identical across modes
  /// because (a) table indices never feed the RNG — draws index into cohort
  /// member POSITIONS, and membership vectors are built identically either
  /// way; (b) a recycled slot keeps its generation counter, so calendar
  /// events of the previous occupant stay stale under the same `gen` check
  /// that already filters dead dense nodes; and (c) node ids come from an
  /// arrival counter, not the table index.
  class NodeStore {
   public:
    explicit NodeStore(bool reuse) : reuse_(reuse) {}

    Node& operator[](std::uint32_t idx) { return slots_[idx]; }
    const Node& operator[](std::uint32_t idx) const { return slots_[idx]; }

    /// A fresh Node (id from the arrival counter, generation preserved from
    /// the slot's previous occupant) at a stable index.
    std::uint32_t acquire() {
      std::uint32_t idx;
      if (reuse_ && !free_.empty()) {
        idx = free_.back();
        free_.pop_back();
        const std::uint32_t gen = slots_[idx].gen;
        slots_[idx] = Node{};
        slots_[idx].gen = gen;
      } else {
        idx = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
      }
      slots_[idx].id = next_id_++;
      return idx;
    }

    /// Hand a departed node's slot back for reuse (no-op in dense mode).
    /// Call only once every membership list has dropped — or will filter by
    /// `alive` — the index, and only after its generation was bumped.
    void release(std::uint32_t idx) {
      if (reuse_) free_.push_back(idx);
    }

    std::size_t slot_count() const { return slots_.size(); }
    std::uint64_t issued_ids() const { return next_id_; }

    void save(SnapshotWriter& w) const {
      w.u64(next_id_);
      w.u64(slots_.size());
      for (const Node& n : slots_) {
        w.u64(n.id);
        w.u64(n.arrival);
        w.u64(n.from);
        w.u64(n.sends);
        w.u64(n.stage);
        w.u32(n.gen);
        w.u8(n.phase);
        w.u8(n.channel);
        w.u8(n.alive ? 1 : 0);
      }
      w.u64(free_.size());
      for (const std::uint32_t f : free_) w.u32(f);
    }

    void load(SnapshotReader& r) {
      next_id_ = r.u64("nodes.next_id");
      const std::uint64_t n_slots = r.u64("nodes.size");
      if (!r.check_count(n_slots, 47, "nodes")) return;
      slots_.clear();
      slots_.reserve(n_slots);
      for (std::uint64_t i = 0; i < n_slots; ++i) {
        Node n;
        n.id = r.u64("node.id");
        n.arrival = r.u64("node.arrival");
        n.from = r.u64("node.from");
        n.sends = r.u64("node.sends");
        n.stage = r.u64("node.stage");
        n.gen = r.u32("node.gen");
        n.phase = r.u8("node.phase");
        n.channel = r.u8("node.channel");
        n.alive = r.u8("node.alive") != 0;
        slots_.push_back(n);
      }
      const std::uint64_t n_free = r.u64("nodes.free.size");
      if (!r.check_count(n_free, 4, "nodes.free")) return;
      free_.clear();
      free_.reserve(n_free);
      for (std::uint64_t i = 0; i < n_free; ++i) {
        const std::uint32_t f = r.u32("nodes.free.entry");
        if (r.ok() && f >= slots_.size()) {
          r.fail("snapshot: free-list index out of range");
          return;
        }
        free_.push_back(f);
      }
    }

   private:
    bool reuse_ = false;
    std::vector<Node> slots_;
    std::vector<std::uint32_t> free_;
    node_id next_id_ = 0;
  };

  void begin_stage(std::uint32_t idx, std::uint64_t k, auto& rng) {
    Node& n = nodes_[idx];
    n.stage = k;
    const std::uint64_t len = static_cast<std::uint64_t>(1) << k;
    const std::uint64_t vstart = len - 1;

    const unsigned sends = k < kSendsMemo ? sends_memo_[k] : fs_->backoff_sends(len);
    offsets_scratch_.clear();
    if (len == 1) {
      // Stage 0: uniform_u64(1) consumes one word and returns 0 regardless of
      // its value, so advance the stream without materializing the words.
      rng.skip(sends);
      offsets_scratch_.push_back(0);
    } else {
      // len is a power of two, so Lemire rejection never loops: each offset
      // is exactly one word, equal to the multiply-shift of that word. A
      // batched fill therefore draws bit-identical offsets to `sends`
      // sequential uniform_u64(len) calls (asserted in tests/test_rng.cpp).
      words_scratch_.resize(sends);
      rng.fill(words_scratch_.data(), sends);
      for (unsigned i = 0; i < sends; ++i)
        offsets_scratch_.push_back(static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(words_scratch_[i]) * len) >> 64));
      if (offsets_scratch_.size() == 2) {
        // The common case (two sends per stage) needs no general sort.
        if (offsets_scratch_[0] > offsets_scratch_[1])
          std::swap(offsets_scratch_[0], offsets_scratch_[1]);
        if (offsets_scratch_[0] == offsets_scratch_[1]) offsets_scratch_.pop_back();
      } else if (offsets_scratch_.size() > 2) {
        std::sort(offsets_scratch_.begin(), offsets_scratch_.end());
        offsets_scratch_.erase(std::unique(offsets_scratch_.begin(), offsets_scratch_.end()),
                               offsets_scratch_.end());
      }
    }
    for (const std::uint64_t off : offsets_scratch_) {
      const slot_t abs = n.from + 2 * (vstart + off);
      if (abs <= config_.horizon)
        calendar_.push({abs, CalendarEvent::Kind::kSend, idx, n.gen});
    }
    const slot_t next_begin = n.from + 2 * ((len << 1) - 1);
    if (next_begin <= config_.horizon)
      calendar_.push({next_begin, CalendarEvent::Kind::kStageBegin, idx, n.gen});
  }

  void handle_success(slot_t slot, auto& rng) {
    const int sp = parity_channel(slot);

    // Start the new cohort from the largest merging population (moved, not
    // copied) — under heavy overload cohorts hold hundreds of thousands of
    // members and per-success copies would dominate the run time.
    std::vector<std::uint32_t>* largest = nullptr;
    for (auto& cohort : cohorts_) {
      if (cohort.ctrl_parity != sp || cohort.members.empty()) continue;
      if (largest == nullptr || cohort.members.size() > largest->size())
        largest = &cohort.members;
    }
    std::vector<std::uint32_t> joiners;
    if (largest != nullptr) joiners = std::move(*largest);
    for (auto& cohort : cohorts_) {
      if (cohort.ctrl_parity != sp || cohort.members.empty()) continue;
      if (&cohort.members == largest) continue;
      joiners.insert(joiners.end(), cohort.members.begin(), cohort.members.end());
      cohort.members.clear();
    }
    if (largest != nullptr) largest->clear();
    std::erase_if(cohorts_, [](const Cohort& c) { return c.members.empty(); });

    // Phase 1: every Phase-1 node heard this success. Paper behaviour: move
    // to Phase 2 on the other channel. Ablation (use_phase2 == false): join
    // the fresh Phase-3 cohort directly.
    for (const std::uint32_t idx : p1_nodes_) {
      Node& n = nodes_[idx];
      if (!n.alive || n.phase != 1) continue;
      ++n.gen;  // invalidate pending Phase-1 calendar events
      if (options_.use_phase2) {
        n.phase = 2;
        n.channel = static_cast<std::uint8_t>(1 - sp);
        n.from = slot + 1;
        p2_nodes_[1 - sp].push_back(idx);
        begin_stage(idx, 0, rng);
      } else {
        n.phase = 3;
        joiners.push_back(idx);
        ++cohort_members_;
      }
    }
    p1_nodes_.clear();

    // Phase 2 -> Phase 3: the whole bucket waiting on this parity joins the
    // cohort anchored at l3 = slot (stale/dead entries filtered here).
    for (const std::uint32_t idx : p2_nodes_[sp]) {
      Node& n = nodes_[idx];
      if (!n.alive || n.phase != 2) continue;
      ++n.gen;
      n.phase = 3;
      joiners.push_back(idx);
      ++cohort_members_;
    }
    p2_nodes_[sp].clear();

    if (!joiners.empty()) {
      Cohort fresh;
      fresh.l3 = slot;
      // Paper behaviour: the new control channel is parity(slot+1), i.e. the
      // roles swap; the ablation pins them.
      fresh.ctrl_parity = options_.swap_channels_on_restart ? parity_channel(slot + 1) : sp;
      fresh.members = std::move(joiners);
      cohorts_.push_back(std::move(fresh));
    }
  }

  /// kNodeStats tier: charge `c` of `cohort`'s members with one send each
  /// (uniform subset; see engine/attribution.hpp).
  void attribute_cohort_sends(const Cohort& cohort, std::uint64_t c, auto& rng_attr) {
    const auto m = static_cast<std::uint64_t>(cohort.members.size());
    CR_DCHECK(c <= m);
    visit_uniform_subset(m, c, rng_attr, attr_scratch_,
                         [&](std::uint64_t i) { ++nodes_[cohort.members[i]].sends; });
  }

  const FunctionSet* fs_;
  SimConfig config_;
  CjzOptions options_;
  Streams streams_;

  Trace trace_;
  SimResult result_;
  Calendar calendar_;
  NodeStore nodes_;
  std::vector<std::uint32_t> p1_nodes_;
  // Phase-2 nodes partitioned by the parity they are waiting on, so a
  // success transitions a whole bucket in O(1) amortized instead of
  // rescanning every Phase-2 node per success.
  std::vector<std::uint32_t> p2_nodes_[2];
  std::vector<Cohort> cohorts_;
  std::uint64_t live_ = 0;
  /// High-water mark of live_ (memory_stats; sparse residency bound).
  std::uint64_t peak_live_ = 0;
  /// Total members across all cohorts — kept exact so next_event_slot() is
  /// O(1). Members enter in handle_success (the two phase-3 pushes) and leave
  /// only as a winning cohort draw; merges move them without changing the sum.
  std::uint64_t cohort_members_ = 0;
  static constexpr std::uint64_t kSendsMemo = 41;
  unsigned sends_memo_[kSendsMemo] = {};
  std::vector<std::uint64_t> offsets_scratch_;
  std::vector<std::uint64_t> words_scratch_;
  SubsetScratch attr_scratch_;
  std::vector<std::uint32_t> backoff_senders_;
  std::vector<std::pair<std::size_t, std::uint64_t>> cohort_draws_;
};

}  // namespace cr
