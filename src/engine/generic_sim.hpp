/// \file
/// Reference simulator: per-node, per-slot, arbitrary NodeProtocol.
///
/// Semantics (one slot):
///   1. adversary decides (jam?, inject k) from public history
///   2. k new nodes join (they participate in this very slot)
///   3. every live node decides send/listen
///   4. channel resolves: success iff exactly one sender and not jammed
///   5. everyone observes the public feedback; the winner leaves
///
/// This engine is the semantic ground truth the fast engines are validated
/// against. Cost is O(live nodes) per slot.
#pragma once

#include <memory>

#include "adversary/adversary.hpp"
#include "channel/channel.hpp"
#include "channel/trace.hpp"
#include "engine/sim_result.hpp"
#include "protocols/protocol.hpp"

namespace cr {

/// Reference per-node engine (semantic ground truth); one instance per run.
class GenericSimulator {
 public:
  /// `factory` and `adversary` must outlive run().
  GenericSimulator(ProtocolFactory& factory, Adversary& adversary, SimConfig config);

  /// Optional per-slot metrics hook (not owned).
  void set_observer(SlotObserver* observer) { observer_ = observer; }

  SimResult run();

  /// Ground-truth trace of the last run (valid after run()).
  const Trace& trace() const { return trace_; }

 private:
  ProtocolFactory& factory_;
  Adversary& adversary_;
  SimConfig config_;
  SlotObserver* observer_ = nullptr;
  Trace trace_;
};

/// Convenience one-shot runner.
SimResult run_generic(ProtocolFactory& factory, Adversary& adversary, const SimConfig& config,
                      SlotObserver* observer = nullptr);

}  // namespace cr
