#include "engine/lockstep.hpp"

#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stream_tags.hpp"
#include "engine/cjz_core.hpp"

namespace cr {

SimResult run_lockstep_single(const ProtocolSpec& spec, Adversary& adversary,
                              const SimConfig& config, SlotObserver* observer) {
  CR_CHECK(spec.kind == ProtocolSpec::Kind::kCjz);
  Rng rng_adv = Rng(config.seed).fork(streams::kAdversary);

  CjzCore<CounterCjzStreams> core(&spec.fs, config, spec.cjz_options,
                                  CounterCjzStreams(config.seed));
  PublicHistory history(core.trace());

  for (slot_t slot = 1; slot <= config.horizon; ++slot) {
    const AdversaryAction action = adversary.on_slot(slot, history, rng_adv);
    if (core.step(slot, action, observer)) break;
  }
  return core.finish(observer);
}

namespace {

/// State of one in-flight replication inside a lockstep pass.
struct Rep {
  CjzCore<CounterCjzStreams> core;
  std::unique_ptr<ArrivalProcess> arrival;
  std::unique_ptr<Jammer> jammer;
  Rng arrival_rng;
  Rng jammer_rng;
  std::uint64_t seed = 0;
  bool done = false;
  bool tail_skipped = false;
  std::uint64_t tail_jammed = 0;

  Rep(const ProtocolSpec& spec, const SimConfig& cfg, const LockstepSweep& sweep,
      std::uint64_t s)
      : core(&spec.fs, cfg, spec.cjz_options, CounterCjzStreams(s),
             Trace::Storage::kCounting),
        arrival(sweep.make_arrival(s)),
        jammer(sweep.make_jammer(s)),
        // Mirror ComposedAdversary's lazy forks: the engine's adversary
        // stream is handed over unconsumed, so both component streams are
        // pure functions of the replication seed.
        arrival_rng(Rng(s).fork(streams::kAdversary).fork(streams::kArrival)),
        jammer_rng(Rng(s).fork(streams::kAdversary).fork(streams::kJammer)),
        seed(s) {}
};

/// Advance replications [lo, hi) in lockstep over the whole slot axis,
/// writing each finished result into out[r].
void run_chunk(const ProtocolSpec& spec, const SimConfig& config, const LockstepSweep& sweep,
               int lo, int hi, std::vector<SimResult>& out) {
  const bool can_tail = sweep.analytic_tail && sweep.tail_jam >= 0.0 &&
                        !config.recording.wants_trace() && !config.stop_when_empty;

  std::vector<Rep> reps;
  reps.reserve(static_cast<std::size_t>(hi - lo));
  for (int r = lo; r < hi; ++r) {
    SimConfig cfg = config;
    cfg.seed = sweep.base_seed + static_cast<std::uint64_t>(r);
    reps.emplace_back(spec, cfg, sweep, cfg.seed);
  }

  std::size_t running = reps.size();
  for (slot_t slot = 1; slot <= config.horizon && running > 0; ++slot) {
    for (auto& rep : reps) {
      if (rep.done) continue;

      if (can_tail && slot > sweep.quiet_after && rep.core.live() == 0) {
        // Certificate: no arrivals can occur from here on and no node is
        // live, so every remaining slot is protocol-silent — empty or
        // jammed by the i.i.d. tail. One binomial on the dedicated tail
        // stream replaces horizon - slot + 1 scalar slots.
        const auto remaining = static_cast<std::uint64_t>(config.horizon - slot + 1);
        rep.tail_jammed = CounterRng(rep.seed)
                              .fork(streams::kLockstepTail)
                              .stream(slot)
                              .binomial(remaining, sweep.tail_jam);
        rep.tail_skipped = true;
        rep.done = true;
        --running;
        continue;
      }

      PublicHistory history(rep.core.trace());
      AdversaryAction action;
      // Same order as ComposedAdversary: jam is decided before arrivals.
      action.jam = rep.jammer->jams(slot, history, rep.jammer_rng);
      action.inject = rep.arrival->arrivals(slot, history, rep.arrival_rng);
      if (rep.core.step(slot, action, nullptr)) {
        rep.done = true;
        --running;
      }
    }
  }

  for (int r = lo; r < hi; ++r) {
    Rep& rep = reps[static_cast<std::size_t>(r - lo)];
    SimResult res = rep.core.finish(nullptr);
    if (rep.tail_skipped) {
      res.slots = config.horizon;
      res.jammed_slots += rep.tail_jammed;
    }
    out[static_cast<std::size_t>(r)] = std::move(res);
  }
}

}  // namespace

std::vector<SimResult> run_lockstep_many(const ProtocolSpec& spec, const SimConfig& config,
                                         const LockstepSweep& sweep) {
  CR_CHECK(spec.kind == ProtocolSpec::Kind::kCjz);
  CR_CHECK(sweep.reps >= 0);
  CR_CHECK(sweep.make_arrival != nullptr && sweep.make_jammer != nullptr);

  std::vector<SimResult> out(static_cast<std::size_t>(sweep.reps));
  if (sweep.reps == 0) return out;

  const int threads = std::min(sweep.threads < 1 ? 1 : sweep.threads, sweep.reps);
  if (threads <= 1) {
    run_chunk(spec, config, sweep, 0, sweep.reps, out);
    return out;
  }

  // Contiguous chunks keep each thread's pass over disjoint cache lines and
  // make the result layout independent of scheduling.
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  const int per = sweep.reps / threads;
  const int extra = sweep.reps % threads;
  int lo = 0;
  for (int t = 0; t < threads; ++t) {
    const int hi = lo + per + (t < extra ? 1 : 0);
    pool.emplace_back([&, lo, hi] { run_chunk(spec, config, sweep, lo, hi, out); });
    lo = hi;
  }
  for (auto& th : pool) th.join();
  return out;
}

}  // namespace cr
