#include "engine/lockstep.hpp"

#include <algorithm>
#include <bit>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stream_tags.hpp"
#include "engine/cjz_core.hpp"

namespace cr {

SimResult run_lockstep_single(const ProtocolSpec& spec, Adversary& adversary,
                              const SimConfig& config, SlotObserver* observer) {
  CR_CHECK(spec.kind == ProtocolSpec::Kind::kCjz);
  Rng rng_adv = Rng(config.seed).fork(streams::kAdversary);

  CjzCore<CounterCjzStreams> core(&spec.fs, config, spec.cjz_options,
                                  CounterCjzStreams(config.seed));
  PublicHistory history(core.trace());

  for (slot_t slot = 1; slot <= config.horizon; ++slot) {
    const AdversaryAction action = adversary.on_slot(slot, history, rng_adv);
    if (core.step(slot, action, observer)) break;
  }
  return core.finish(observer);
}

namespace {

/// State of one in-flight replication inside a generic lockstep pass.
struct Rep {
  CjzCore<CounterCjzStreams> core;
  std::unique_ptr<ArrivalProcess> arrival;
  std::unique_ptr<Jammer> jammer;
  Rng arrival_rng;
  Rng jammer_rng;
  std::uint64_t seed = 0;
  bool done = false;
  bool tail_skipped = false;
  std::uint64_t tail_jammed = 0;

  Rep(const ProtocolSpec& spec, const SimConfig& cfg, const LockstepSweep& sweep,
      std::uint64_t s)
      : core(&spec.fs, cfg, spec.cjz_options, CounterCjzStreams(s),
             Trace::Storage::kCounting),
        arrival(sweep.make_arrival(s)),
        jammer(sweep.make_jammer(s)),
        // Mirror ComposedAdversary's lazy forks: the engine's adversary
        // stream is handed over unconsumed, so both component streams are
        // pure functions of the replication seed.
        arrival_rng(Rng(s).fork(streams::kAdversary).fork(streams::kArrival)),
        jammer_rng(Rng(s).fork(streams::kAdversary).fork(streams::kJammer)),
        seed(s) {}
};

/// Advance replications [lo, hi) in lockstep over the whole slot axis,
/// writing each finished result into out[r].
void run_chunk(const ProtocolSpec& spec, const SimConfig& config, const LockstepSweep& sweep,
               int lo, int hi, std::vector<SimResult>& out) {
  const bool can_tail = sweep.analytic_tail && sweep.tail_jam >= 0.0 &&
                        !config.recording.wants_trace() && !config.stop_when_empty;

  std::vector<Rep> reps;
  reps.reserve(static_cast<std::size_t>(hi - lo));
  for (int r = lo; r < hi; ++r) {
    SimConfig cfg = config;
    cfg.seed = sweep.base_seed + static_cast<std::uint64_t>(r);
    reps.emplace_back(spec, cfg, sweep, cfg.seed);
  }

  std::size_t running = reps.size();
  for (slot_t slot = 1; slot <= config.horizon && running > 0; ++slot) {
    for (auto& rep : reps) {
      if (rep.done) continue;

      if (can_tail && slot > sweep.quiet_after && rep.core.live() == 0) {
        // Certificate: no arrivals can occur from here on and no node is
        // live, so every remaining slot is protocol-silent — empty or
        // jammed by the i.i.d. tail. One binomial on the dedicated tail
        // stream replaces horizon - slot + 1 scalar slots.
        const auto remaining = static_cast<std::uint64_t>(config.horizon - slot + 1);
        rep.tail_jammed = CounterRng(rep.seed)
                              .fork(streams::kLockstepTail)
                              .stream(slot)
                              .binomial(remaining, sweep.tail_jam);
        rep.tail_skipped = true;
        rep.done = true;
        --running;
        continue;
      }

      PublicHistory history(rep.core.trace());
      AdversaryAction action;
      // Same order as ComposedAdversary: jam is decided before arrivals.
      action.jam = rep.jammer->jams(slot, history, rep.jammer_rng);
      action.inject = rep.arrival->arrivals(slot, history, rep.arrival_rng);
      if (rep.core.step(slot, action, nullptr)) {
        rep.done = true;
        --running;
      }
    }
  }

  for (int r = lo; r < hi; ++r) {
    Rep& rep = reps[static_cast<std::size_t>(r - lo)];
    SimResult res = rep.core.finish(nullptr);
    if (rep.tail_skipped) {
      res.slots = config.horizon;
      res.jammed_slots += rep.tail_jammed;
    }
    out[static_cast<std::size_t>(r)] = std::move(res);
  }
}

// --- plan path -------------------------------------------------------------

/// Shared deterministic jam bitmap (bit s = slot s jammed) + its popcount
/// over [1, horizon]. Built once per sweep for non-iid jam plans.
struct SharedJamBits {
  std::vector<std::uint64_t> bits;
  std::uint64_t count = 0;
};

std::size_t jam_words(slot_t horizon) {
  return static_cast<std::size_t>(horizon >> 6) + 2;
}

SharedJamBits build_shared_jam_bits(const LockstepPlan& plan, slot_t horizon) {
  SharedJamBits out;
  out.bits.assign(jam_words(horizon), 0);
  for (const slot_t s : plan.jam_slots) {
    if (s < 1 || s > horizon) continue;
    out.bits[s >> 6] |= std::uint64_t{1} << (s & 63);
    ++out.count;
  }
  return out;
}

/// Set bits counted over the inclusive slot range [from, to].
std::uint64_t popcount_range(const std::uint64_t* bits, slot_t from, slot_t to) {
  if (from > to) return 0;
  const std::size_t wf = static_cast<std::size_t>(from >> 6);
  const std::size_t wt = static_cast<std::size_t>(to >> 6);
  const std::uint64_t mf = ~std::uint64_t{0} << (from & 63);
  const std::uint64_t mt =
      (to & 63) == 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << ((to & 63) + 1)) - 1;
  if (wf == wt) return static_cast<std::uint64_t>(std::popcount(bits[wf] & mf & mt));
  std::uint64_t c = static_cast<std::uint64_t>(std::popcount(bits[wf] & mf)) +
                    static_cast<std::uint64_t>(std::popcount(bits[wt] & mt));
  for (std::size_t w = wf + 1; w < wt; ++w)
    c += static_cast<std::uint64_t>(std::popcount(bits[w]));
  return c;
}

/// One replication's jam-coin view on the plan path. Deterministic plans read
/// the prefilled shared bitmap; i.i.d. plans draw coins lazily in blocks from
/// the replication's forked jammer stream — the same stream, slot order and
/// one-word-per-coin consumption as IidJammer on the generic path
/// (rng_detail::bernoulli draws nothing for p <= 0 or p >= 1, so those edges
/// draw nothing here either). Laziness is what keeps the analytic tail skip
/// profitable: a replication that tails out early never pays for the tail's
/// coins, exactly like the generic path.
class JamBits {
 public:
  void reset_shared(const SharedJamBits& shared, slot_t horizon) {
    bits_ = shared.bits.data();
    mut_bits_ = nullptr;
    horizon_ = horizon;
    filled_to_ = horizon;
    count_ = shared.count;
    lazy_ = false;
  }

  void reset_iid(std::uint64_t seed, slot_t horizon, double rate,
                 std::vector<std::uint64_t>& bits, std::vector<std::uint64_t>& word_buf) {
    std::fill(bits.begin(), bits.end(), 0);
    bits_ = bits.data();
    mut_bits_ = bits.data();
    word_buf_ = &word_buf;
    horizon_ = horizon;
    rate_ = rate;
    filled_to_ = horizon;
    count_ = 0;
    lazy_ = false;
    if (rate >= 1.0) {
      for (slot_t s = 1; s <= horizon; ++s)
        mut_bits_[s >> 6] |= std::uint64_t{1} << (s & 63);
      count_ = static_cast<std::uint64_t>(horizon);
    } else if (rate > 0.0) {
      rng_ = Rng(seed).fork(streams::kAdversary).fork(streams::kJammer);
      filled_to_ = 0;
      lazy_ = true;
    }
  }

  bool jammed(slot_t s) {
    ensure(s);
    return ((bits_[s >> 6] >> (s & 63)) & 1) != 0;
  }

  /// Exact jam count over [1, s]; draws any still-missing coins in [1, s].
  std::uint64_t count_through(slot_t s) {
    ensure(s);
    return count_ - popcount_range(bits_, s + 1, filled_to_);
  }

 private:
  void ensure(slot_t s) {
    if (!lazy_ || s <= filled_to_) return;
    while (filled_to_ < s) {
      const auto n = static_cast<std::size_t>(
          std::min<std::uint64_t>(word_buf_->size(), horizon_ - filled_to_));
      rng_.fill(word_buf_->data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        if (static_cast<double>((*word_buf_)[i] >> 11) * 0x1.0p-53 < rate_) {
          const slot_t t = filled_to_ + 1 + static_cast<slot_t>(i);
          mut_bits_[t >> 6] |= std::uint64_t{1} << (t & 63);
          ++count_;
        }
      }
      filled_to_ += static_cast<slot_t>(n);
    }
  }

  const std::uint64_t* bits_ = nullptr;
  std::uint64_t* mut_bits_ = nullptr;
  std::vector<std::uint64_t>* word_buf_ = nullptr;
  Rng rng_;
  double rate_ = 0.0;
  slot_t horizon_ = 0;
  slot_t filled_to_ = 0;
  std::uint64_t count_ = 0;
  bool lazy_ = false;
};

/// Materialize one replication's Bernoulli arrival list — the same stream,
/// window and coin consumption as BernoulliArrivals on the generic path.
void fill_bernoulli_arrivals(std::uint64_t seed, slot_t horizon, const LockstepPlan& plan,
                             std::vector<std::pair<slot_t, std::uint64_t>>& arrivals,
                             std::vector<std::uint64_t>& word_buf) {
  arrivals.clear();
  const auto whole = static_cast<std::uint64_t>(plan.arrival_rate);
  const double frac = plan.arrival_rate - static_cast<double>(whole);
  const slot_t to = std::min(plan.arrival_to, horizon);
  if (frac <= 0.0) {
    if (whole == 0) return;
    for (slot_t s = plan.arrival_from; s <= to; ++s) arrivals.emplace_back(s, whole);
    return;
  }
  Rng rng = Rng(seed).fork(streams::kAdversary).fork(streams::kArrival);
  slot_t s = plan.arrival_from;
  while (s <= to) {
    const auto n =
        static_cast<std::size_t>(std::min<std::uint64_t>(word_buf.size(), to - s + 1));
    rng.fill(word_buf.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t count =
          whole +
          ((static_cast<double>(word_buf[i] >> 11) * 0x1.0p-53 < frac) ? 1 : 0);
      if (count > 0) arrivals.emplace_back(s + static_cast<slot_t>(i), count);
    }
    s += static_cast<slot_t>(n);
  }
}

/// Plan-path pass over replications [lo, hi): event-driven per replication.
/// Only slots with a certified arrival or a core wake-up are stepped; the
/// slot/active/jam counters for the skipped (provably draw-free) slots are
/// fixed up arithmetically afterwards, so the results are bit-identical to
/// stepping every slot on the generic path.
void run_plan_chunk(const ProtocolSpec& spec, const SimConfig& config,
                    const LockstepSweep& sweep, const SharedJamBits& shared_jams, int lo,
                    int hi, std::vector<SimResult>& out) {
  const LockstepPlan& plan = sweep.plan;
  const slot_t horizon = config.horizon;
  // Same certificate gate as the generic path (use_plan already excludes the
  // trace/stop flags): past quiet_after with nobody live, the rest of the run
  // is protocol-silent, so one binomial on the dedicated tail stream replaces
  // the remaining jam coins — which the lazy JamBits then never draws.
  const bool can_tail = sweep.analytic_tail && sweep.tail_jam >= 0.0;

  std::vector<std::uint64_t> rep_jam_bits;
  if (plan.iid_jams) rep_jam_bits.assign(jam_words(horizon), 0);
  std::vector<std::uint64_t> word_buf(4096);
  std::vector<std::pair<slot_t, std::uint64_t>> rep_arrivals;
  JamBits jams;

  for (int r = lo; r < hi; ++r) {
    const std::uint64_t seed = sweep.base_seed + static_cast<std::uint64_t>(r);
    SimConfig cfg = config;
    cfg.seed = seed;
    // kDisabled: the plan's components never read the history, so the core
    // skips trace bookkeeping entirely.
    CjzCore<CounterCjzStreams> core(&spec.fs, cfg, spec.cjz_options, CounterCjzStreams(seed),
                                    Trace::Storage::kDisabled);

    if (plan.iid_jams)
      jams.reset_iid(seed, horizon, plan.jam_rate, rep_jam_bits, word_buf);
    else
      jams.reset_shared(shared_jams, horizon);

    const std::vector<std::pair<slot_t, std::uint64_t>>* arrivals = &plan.schedule;
    if (plan.bernoulli_arrivals) {
      fill_bernoulli_arrivals(seed, horizon, plan, rep_arrivals, word_buf);
      arrivals = &rep_arrivals;
    }

    // Event-driven loop. Invariant: every slot NOT stepped has no arrival,
    // no due calendar event and no cohort member, so the core would consume
    // no draws and only bump the slot/active/jam counters there (see
    // CjzCore::next_event_slot) — exactly the fixups applied below.
    std::size_t ai = 0;
    std::uint64_t live = 0;
    std::uint64_t skipped_active = 0;
    slot_t prev = 0;
    slot_t tail_slot = 0;
    for (;;) {
      const slot_t next_arrival =
          ai < arrivals->size() ? (*arrivals)[ai].first : horizon + 1;
      // The generic loop checks the tail certificate at the top of every
      // slot; with nobody live the first candidate after prev that clears
      // quiet_after is reached before anything else can happen, so the skip
      // fires at exactly the slot the per-slot loop would fire it at.
      if (can_tail && live == 0) {
        const slot_t t = std::max(prev, sweep.quiet_after) + 1;
        if (t <= horizon && next_arrival >= t) {
          tail_slot = t;
          break;
        }
      }
      slot_t slot = next_arrival;
      if (live > 0) {
        slot_t wake = core.next_event_slot();
        if (wake <= prev) wake = prev + 1;  // 0 = cohorts live: step every slot
        slot = std::min(wake, next_arrival);
      }
      if (slot > horizon) break;
      // A dead replication jumps straight to the next arrival; calendar
      // events left behind by departed nodes must be discarded with the
      // per-slot loop's own pop sequence so later tie-breaks stay identical.
      if (live == 0) core.drain_stale_before(slot);
      AdversaryAction action;
      action.jam = jams.jammed(slot);
      action.inject = slot == next_arrival ? (*arrivals)[ai++].second : 0;
      if (live > 0) skipped_active += static_cast<std::uint64_t>(slot - prev - 1);
      core.step(slot, action, nullptr);
      prev = slot;
      live = core.live();
    }
    if (live > 0) skipped_active += static_cast<std::uint64_t>(horizon - prev);

    SimResult res = core.finish(nullptr);
    // Fixups for the skipped slots: the run covers the whole horizon, every
    // live-but-silent slot was active, and the jam count is exact — stepped
    // and skipped coins from the bitmap, plus, when the tail skip fired, the
    // same binomial the generic path draws at the same slot from the same
    // stream, so both paths stay bit-identical.
    res.slots = horizon;
    res.active_slots += skipped_active;
    if (tail_slot != 0) {
      const auto remaining = static_cast<std::uint64_t>(horizon - tail_slot + 1);
      res.jammed_slots = jams.count_through(tail_slot - 1) +
                         CounterRng(seed)
                             .fork(streams::kLockstepTail)
                             .stream(tail_slot)
                             .binomial(remaining, sweep.tail_jam);
    } else {
      res.jammed_slots = jams.count_through(horizon);
    }
    out[static_cast<std::size_t>(r)] = std::move(res);
  }
}

}  // namespace

std::vector<SimResult> run_lockstep_many(const ProtocolSpec& spec, const SimConfig& config,
                                         const LockstepSweep& sweep) {
  CR_CHECK(spec.kind == ProtocolSpec::Kind::kCjz);
  CR_CHECK(sweep.reps >= 0);
  CR_CHECK(sweep.make_arrival != nullptr && sweep.make_jammer != nullptr);

  std::vector<SimResult> out(static_cast<std::size_t>(sweep.reps));
  if (sweep.reps == 0) return out;

  // The plan path needs every counter to be reconstructible from the plan:
  // a per-slot trace or a stop flag (which truncates the jam-coin sequence
  // at the stop slot) forces the generic per-slot loop.
  const bool use_plan = sweep.plan.valid && !config.recording.wants_trace() &&
                        !config.stop_when_empty && !config.stop_after_first_success;
  SharedJamBits shared_jams;
  if (use_plan && !sweep.plan.iid_jams)
    shared_jams = build_shared_jam_bits(sweep.plan, config.horizon);

  const auto chunk = [&](int lo, int hi) {
    if (use_plan)
      run_plan_chunk(spec, config, sweep, shared_jams, lo, hi, out);
    else
      run_chunk(spec, config, sweep, lo, hi, out);
  };

  const int threads = std::min(sweep.threads < 1 ? 1 : sweep.threads, sweep.reps);
  if (threads <= 1) {
    chunk(0, sweep.reps);
    return out;
  }

  // Contiguous chunks keep each thread's pass over disjoint cache lines and
  // make the result layout independent of scheduling.
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  const int per = sweep.reps / threads;
  const int extra = sweep.reps % threads;
  int lo = 0;
  for (int t = 0; t < threads; ++t) {
    const int hi = lo + per + (t < extra ? 1 : 0);
    pool.emplace_back([&chunk, lo, hi] { chunk(lo, hi); });
    lo = hi;
  }
  for (auto& th : pool) th.join();
  return out;
}

}  // namespace cr
