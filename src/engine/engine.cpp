#include "engine/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/check.hpp"
#include "engine/fast_batch.hpp"
#include "engine/fast_cjz.hpp"
#include "engine/generic_sim.hpp"
#include "engine/lockstep.hpp"

namespace cr {

ProtocolSpec cjz_protocol(FunctionSet fs, CjzOptions options) {
  ProtocolSpec spec;
  spec.kind = ProtocolSpec::Kind::kCjz;
  spec.label = "cjz[" + fs.describe() + "]";
  spec.fs = std::move(fs);
  spec.cjz_options = options;
  return spec;
}

ProtocolSpec profile_protocol(SendProfile profile) {
  ProtocolSpec spec;
  spec.kind = ProtocolSpec::Kind::kProfile;
  spec.label = "profile[" + profile.name() + "]";
  spec.profile = std::move(profile);
  return spec;
}

ProtocolSpec factory_protocol(std::string label,
                              std::function<std::unique_ptr<ProtocolFactory>()> make) {
  CR_CHECK(make != nullptr);
  ProtocolSpec spec;
  spec.kind = ProtocolSpec::Kind::kFactory;
  spec.label = std::move(label);
  spec.make_factory = std::move(make);
  return spec;
}

std::unique_ptr<ProtocolFactory> make_protocol_factory(const ProtocolSpec& spec) {
  switch (spec.kind) {
    case ProtocolSpec::Kind::kCjz:
      return std::make_unique<CjzFactory>(spec.fs, spec.cjz_options);
    case ProtocolSpec::Kind::kProfile:
      return std::make_unique<ProfileProtocolFactory>(*spec.profile);
    case ProtocolSpec::Kind::kFactory:
      return spec.make_factory();
  }
  CR_CHECK(false);  // unreachable
  return nullptr;
}

namespace {

/// Reference per-node engine: executes every spec via make_protocol_factory.
class GenericEngine final : public Engine {
 public:
  std::string name() const override { return "generic"; }
  bool supports(const ProtocolSpec&) const override { return true; }
  int speed_rank() const override { return 0; }

  SimResult run(const ProtocolSpec& spec, Adversary& adversary, const SimConfig& config,
                SlotObserver* observer) const override {
    const auto factory = make_protocol_factory(spec);
    return run_generic(*factory, adversary, config, observer);
  }
};

/// Cohort engine specialised to the CJZ algorithm.
class FastCjzEngine final : public Engine {
 public:
  std::string name() const override { return "fast_cjz"; }
  bool supports(const ProtocolSpec& spec) const override {
    return spec.kind == ProtocolSpec::Kind::kCjz;
  }
  int speed_rank() const override { return 100; }

  SimResult run(const ProtocolSpec& spec, Adversary& adversary, const SimConfig& config,
                SlotObserver* observer) const override {
    CR_CHECK(supports(spec));
    return run_fast_cjz(spec.fs, adversary, config, observer, spec.cjz_options);
  }
};

/// Cohort engine specialised to probability-profile protocols.
class FastBatchEngine final : public Engine {
 public:
  std::string name() const override { return "fast_batch"; }
  bool supports(const ProtocolSpec& spec) const override {
    return spec.kind == ProtocolSpec::Kind::kProfile;
  }
  int speed_rank() const override { return 100; }

  SimResult run(const ProtocolSpec& spec, Adversary& adversary, const SimConfig& config,
                SlotObserver* observer) const override {
    CR_CHECK(supports(spec));
    return run_fast_batch(*spec.profile, adversary, config, observer);
  }
};

/// CJZ engine on the counter-based RNG substrate (see engine/lockstep.hpp).
/// Single runs rank below fast_cjz — per-slot stream rebinding costs a
/// little — so preferred() keeps picking fast_cjz; the engine's edge is the
/// many-seed sweep path (run_lockstep_many), which the exp layer dispatches
/// to explicitly.
class LockstepEngine final : public Engine {
 public:
  std::string name() const override { return "lockstep"; }
  bool supports(const ProtocolSpec& spec) const override {
    return spec.kind == ProtocolSpec::Kind::kCjz;
  }
  int speed_rank() const override { return 50; }

  SimResult run(const ProtocolSpec& spec, Adversary& adversary, const SimConfig& config,
                SlotObserver* observer) const override {
    CR_CHECK(supports(spec));
    return run_lockstep_single(spec, adversary, config, observer);
  }
};

}  // namespace

EngineRegistry::EngineRegistry() {
  register_engine(std::make_unique<GenericEngine>());
  register_engine(std::make_unique<FastCjzEngine>());
  register_engine(std::make_unique<FastBatchEngine>());
  register_engine(std::make_unique<LockstepEngine>());
}

EngineRegistry& EngineRegistry::instance() {
  static EngineRegistry registry;
  return registry;
}

const Engine* EngineRegistry::find(const std::string& name) const {
  for (const auto& engine : engines_)
    if (engine->name() == name) return engine.get();
  return nullptr;
}

const Engine& EngineRegistry::at(const std::string& name) const {
  const Engine* engine = find(name);
  if (engine == nullptr) {
    std::fprintf(stderr, "EngineRegistry: unknown engine \"%s\" (known:", name.c_str());
    for (const auto& e : engines_) std::fprintf(stderr, " %s", e->name().c_str());
    std::fprintf(stderr, ")\n");
  }
  CR_CHECK(engine != nullptr);
  return *engine;
}

std::vector<std::string> EngineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(engines_.size());
  for (const auto& engine : engines_) out.push_back(engine->name());
  return out;
}

std::vector<const Engine*> EngineRegistry::compatible(const ProtocolSpec& spec) const {
  std::vector<const Engine*> out;
  for (const auto& engine : engines_)
    if (engine->supports(spec)) out.push_back(engine.get());
  std::stable_sort(out.begin(), out.end(), [](const Engine* a, const Engine* b) {
    return a->speed_rank() > b->speed_rank();
  });
  return out;
}

const Engine& EngineRegistry::preferred(const ProtocolSpec& spec) const {
  const auto engines = compatible(spec);
  CR_CHECK(!engines.empty());
  return *engines.front();
}

void EngineRegistry::register_engine(std::unique_ptr<Engine> engine) {
  CR_CHECK(engine != nullptr);
  CR_CHECK(find(engine->name()) == nullptr);  // names are unique keys
  engines_.push_back(std::move(engine));
}

}  // namespace cr
