#include "engine/fast_batch.hpp"

#include <algorithm>
#include <utility>

#include "channel/channel.hpp"
#include "common/check.hpp"
#include "common/stream_tags.hpp"

namespace cr {

FastBatchSimulator::FastBatchSimulator(SendProfile profile, Adversary& adversary,
                                       SimConfig config)
    : profile_(std::move(profile)), adversary_(adversary), config_(config) {}

SimResult FastBatchSimulator::run() {
  Rng root(config_.seed);
  Rng rng_adv = root.fork(streams::kAdversary);
  Rng rng = root.fork(streams::kBatchMain);
  // Attribution draws live on their own stream: recording tiers must never
  // change the trajectory the main stream produces.
  Rng rng_attr = root.fork(streams::kAttribution);
  const bool attribute = config_.recording.wants_node_stats();
  const bool sparse = config_.node_table == NodeTableKind::kSparse;

  trace_ = Trace{};
  PublicHistory history(trace_);
  SimResult result;

  std::vector<Cohort> cohorts;
  std::vector<std::pair<std::size_t, std::uint64_t>> draws;
  std::uint64_t live = 0;
  node_id next_departed_id = 0;

  for (slot_t slot = 1; slot <= config_.horizon; ++slot) {
    const AdversaryAction action = adversary_.on_slot(slot, history, rng_adv);

    if (action.inject > 0) {
      Cohort fresh{slot, action.inject, {}};
      if (attribute) fresh.member_sends.assign(action.inject, 0);
      cohorts.push_back(std::move(fresh));
      live += action.inject;
      result.arrivals += action.inject;
    }
    CR_CHECK(live <= config_.max_live_nodes);

    const std::uint64_t live_now = live;
    if (live_now > 0) ++result.active_slots;

    std::uint64_t senders = 0;
    draws.clear();
    for (std::size_t ci = 0; ci < cohorts.size(); ++ci) {
      const Cohort& cohort = cohorts[ci];
      if (cohort.count == 0) continue;
      const std::uint64_t age = slot - cohort.arrival + 1;
      const std::uint64_t c = rng.binomial(cohort.count, profile_(age));
      if (c > 0) {
        senders += c;
        draws.emplace_back(ci, c);
      }
    }
    result.total_sends += senders;

    node_id winner = kNoNode;
    std::size_t winner_cohort = cohorts.size();
    if (senders == 1 && !action.jam) {
      winner_cohort = draws.front().first;
      winner = next_departed_id++;
    }

    const SlotOutcome out = resolve_slot(slot, senders, action.jam, winner);
    trace_.record(out);
    if (config_.recording.wants_trace()) result.slot_outcomes.push_back(out);
    if (out.jammed) ++result.jammed_slots;
    if (observer_ != nullptr) observer_->on_slot(out, action.inject, live_now);

    if (attribute) {
      // Charge each cohort's binomial count to concrete members. On a
      // success the lone draw IS the winning send, charged at departure.
      for (std::size_t di = 0; di < draws.size(); ++di) {
        if (out.success() && di == 0) continue;
        Cohort& cohort = cohorts[draws[di].first];
        CR_DCHECK(cohort.member_sends.size() == cohort.count);
        visit_uniform_subset(cohort.count, draws[di].second, rng_attr, attr_scratch_,
                             [&](std::uint64_t i) { ++cohort.member_sends[i]; });
      }
    }

    if (out.success()) {
      Cohort& cohort = cohorts[winner_cohort];
      if (attribute) {
        // The winner is the slot's only sender — uniform over the cohort's
        // members, exactly the conditional law of "who sent".
        const std::uint64_t pos = rng_attr.uniform_u64(cohort.member_sends.size());
        NodeStats ns;
        ns.id = out.winner;
        ns.arrival = cohort.arrival;
        ns.departure = slot;
        ns.sends = cohort.member_sends[pos] + 1;
        result.node_stats.push_back(ns);
        cohort.member_sends[pos] = cohort.member_sends.back();
        cohort.member_sends.pop_back();
      }
      --cohort.count;
      --live;
      ++result.successes;
      if (result.first_success == 0) result.first_success = slot;
      result.last_success = slot;
      if (config_.recording.wants_success_times()) result.success_times.push_back(slot);
      // Sparse table: retire the cohort the instant it drains (order-
      // preserving erase), so resident state is O(active cohorts) instead of
      // O(arrival batches mod 4096). Bit-identical to the periodic sweep:
      // count == 0 cohorts never draw, and relative order is kept either way.
      if (sparse && cohort.count == 0)
        cohorts.erase(cohorts.begin() + static_cast<std::ptrdiff_t>(winner_cohort));
    }

    // Dense table: periodically drop drained cohorts so long runs stay lean.
    if (!sparse && (slot & 0xFFF) == 0)
      std::erase_if(cohorts, [](const Cohort& c) { return c.count == 0; });

    result.slots = slot;
    if (config_.stop_when_empty && result.arrivals > 0 && live == 0) break;
    if (config_.stop_after_first_success && result.successes > 0) break;
  }

  result.live_at_end = live;
  if (attribute) {
    for (const auto& cohort : cohorts) {
      for (const std::uint64_t sends : cohort.member_sends) {
        NodeStats ns;
        ns.arrival = cohort.arrival;
        ns.departure = 0;
        ns.sends = sends;
        result.node_stats.push_back(ns);
      }
    }
  }
  if (observer_ != nullptr) observer_->on_run_end(result);
  return result;
}

SimResult run_fast_batch(const SendProfile& profile, Adversary& adversary,
                         const SimConfig& config, SlotObserver* observer) {
  FastBatchSimulator sim(profile, adversary, config);
  sim.set_observer(observer);
  return sim.run();
}

}  // namespace cr
