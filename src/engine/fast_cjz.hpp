/// \file
/// Fast simulator for the CJZ algorithm.
///
/// Exploits two structural facts about the algorithm:
///
///   1. Every node in Phase 3 restarted at some success slot l₃, and every
///      success slot merges all Phase-3 populations whose control channel has
///      that slot's parity (plus the Phase-2 nodes waiting on it) into ONE
///      synchronized cohort. Members of a cohort are exchangeable: the number
///      of transmitters per slot is Binomial(m, p(slot, l₃)), one draw per
///      cohort per slot instead of m Bernoulli draws.
///
///   2. Phase-1/2 backoff transmissions are sparse — h(2^k) per stage of
///      length 2^k — so they live in a calendar queue; a slot's backoff
///      senders are read off the queue in O(log) time.
///
/// Net cost: O(#cohorts + #due events) per slot, which lets the benches run
/// t up to 2²² with 10⁵–10⁶ nodes. Semantics match GenericSimulator +
/// CjzFactory (cross-validated statistically in tests/test_cross_engine.cpp).
///
/// Under RecordingTier::kNodeStats every transmission is attributed to a
/// concrete node: backoff sends are explicit calendar events, and a cohort's
/// binomial count is distributed over a uniformly sampled member subset (the
/// exact conditional law) drawn from a dedicated attribution RNG stream —
/// latency AND energy reports work here, and the trajectory is bit-identical
/// across recording tiers.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/adversary.hpp"
#include "channel/trace.hpp"
#include "common/functions.hpp"
#include "engine/attribution.hpp"
#include "engine/calendar.hpp"
#include "engine/sim_result.hpp"
#include "protocols/cjz_node.hpp"

namespace cr {

/// Cohort-based CJZ engine (see file comment for the two structural
/// facts it exploits). One instance per run.
class FastCjzSimulator {
 public:
  /// `adversary` must outlive run(); `fs` parameterises the algorithm.
  FastCjzSimulator(FunctionSet fs, Adversary& adversary, SimConfig config,
                   CjzOptions options = {});

  /// Optional per-slot metrics hook (not owned).
  void set_observer(SlotObserver* observer) { observer_ = observer; }

  /// Execute the run described by the constructor arguments.
  SimResult run();

  /// Ground-truth trace of the last run (valid after run()).
  const Trace& trace() const { return trace_; }

 private:
  struct Node {
    node_id id = kNoNode;
    slot_t arrival = 0;
    slot_t from = 0;      ///< backoff channel-origin (phases 1–2)
    std::uint64_t sends = 0;  ///< attributed channel accesses (energy)
    std::uint64_t stage = 0;
    std::uint32_t gen = 0;
    std::uint8_t phase = 1;
    std::uint8_t channel = 0;  ///< backoff channel parity (phases 1–2)
    bool alive = true;
  };

  struct Cohort {
    slot_t l3 = 0;
    int ctrl_parity = 0;
    std::vector<std::uint32_t> members;
  };

  void begin_stage(std::uint32_t idx, std::uint64_t k, Rng& rng);
  void handle_success(slot_t slot, Rng& rng);
  /// kNodeStats tier: charge `c` of `cohort`'s members with one send each
  /// (uniform subset; see engine/attribution.hpp).
  void attribute_cohort_sends(const Cohort& cohort, std::uint64_t c, Rng& rng_attr);

  FunctionSet fs_;
  Adversary& adversary_;
  SimConfig config_;
  CjzOptions options_;
  SlotObserver* observer_ = nullptr;

  Trace trace_;
  Calendar calendar_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> p1_nodes_;
  // Phase-2 nodes partitioned by the parity they are waiting on, so a
  // success transitions a whole bucket in O(1) amortized instead of
  // rescanning every Phase-2 node per success.
  std::vector<std::uint32_t> p2_nodes_[2];
  std::vector<Cohort> cohorts_;
  std::uint64_t live_ = 0;
  std::vector<std::uint64_t> offsets_scratch_;
  SubsetScratch attr_scratch_;
};

/// Convenience one-shot runner.
SimResult run_fast_cjz(const FunctionSet& fs, Adversary& adversary, const SimConfig& config,
                       SlotObserver* observer = nullptr, CjzOptions options = {});

}  // namespace cr
