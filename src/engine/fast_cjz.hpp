/// \file
/// Fast simulator for the CJZ algorithm.
///
/// Exploits two structural facts about the algorithm:
///
///   1. Every node in Phase 3 restarted at some success slot l₃, and every
///      success slot merges all Phase-3 populations whose control channel has
///      that slot's parity (plus the Phase-2 nodes waiting on it) into ONE
///      synchronized cohort. Members of a cohort are exchangeable: the number
///      of transmitters per slot is Binomial(m, p(slot, l₃)), one draw per
///      cohort per slot instead of m Bernoulli draws.
///
///   2. Phase-1/2 backoff transmissions are sparse — h(2^k) per stage of
///      length 2^k — so they live in a calendar queue; a slot's backoff
///      senders are read off the queue in O(log) time.
///
/// Net cost: O(#cohorts + #due events) per slot, which lets the benches run
/// t up to 2²² with 10⁵–10⁶ nodes. Semantics match GenericSimulator +
/// CjzFactory (cross-validated statistically in tests/test_cross_engine.cpp).
///
/// Under RecordingTier::kNodeStats every transmission is attributed to a
/// concrete node: backoff sends are explicit calendar events, and a cohort's
/// binomial count is distributed over a uniformly sampled member subset (the
/// exact conditional law) drawn from a dedicated attribution RNG stream —
/// latency AND energy reports work here, and the trajectory is bit-identical
/// across recording tiers.
///
/// The cohort/calendar machinery itself lives in engine/cjz_core.hpp
/// (CjzCore<Streams>, shared with the lockstep engine); this class is the
/// sequential-substrate driver: it owns the adversary loop and instantiates
/// the core over SequentialCjzStreams, which reproduces the historical
/// xoshiro draw sequences bit for bit.
#pragma once

#include "adversary/adversary.hpp"
#include "channel/trace.hpp"
#include "common/functions.hpp"
#include "engine/cjz_core.hpp"
#include "engine/sim_result.hpp"
#include "protocols/cjz_node.hpp"

namespace cr {

/// Cohort-based CJZ engine (see file comment for the two structural
/// facts it exploits). One instance per run.
class FastCjzSimulator {
 public:
  /// `adversary` must outlive run(); `fs` parameterises the algorithm.
  FastCjzSimulator(FunctionSet fs, Adversary& adversary, SimConfig config,
                   CjzOptions options = {});

  /// Optional per-slot metrics hook (not owned).
  void set_observer(SlotObserver* observer) { observer_ = observer; }

  /// Execute the run described by the constructor arguments.
  SimResult run();

  /// Ground-truth trace of the last run (valid after run()).
  const Trace& trace() const { return trace_; }

  /// Resident node-table footprint of the last run (valid after run()).
  /// With SimConfig::node_table == kSparse, node_table_slots tracks peak
  /// live nodes instead of total arrivals — the memory cell in `cr perf`
  /// reports both against the dense extrapolation (arrivals * sizeof(Node)).
  CjzCoreMemoryStats memory_stats() const { return memory_stats_; }

 private:
  FunctionSet fs_;
  Adversary& adversary_;
  SimConfig config_;
  CjzOptions options_;
  SlotObserver* observer_ = nullptr;
  Trace trace_;
  CjzCoreMemoryStats memory_stats_;
};

/// Convenience one-shot runner.
SimResult run_fast_cjz(const FunctionSet& fs, Adversary& adversary, const SimConfig& config,
                       SlotObserver* observer = nullptr, CjzOptions options = {});

}  // namespace cr
