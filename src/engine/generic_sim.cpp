#include "engine/generic_sim.hpp"

#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/stream_tags.hpp"

namespace cr {

namespace {

struct LiveNode {
  node_id id;
  slot_t arrival;
  std::uint64_t sends = 0;
  std::unique_ptr<NodeProtocol> protocol;
};

}  // namespace

GenericSimulator::GenericSimulator(ProtocolFactory& factory, Adversary& adversary,
                                   SimConfig config)
    : factory_(factory), adversary_(adversary), config_(config) {}

SimResult GenericSimulator::run() {
  Rng root(config_.seed);
  Rng rng_adv = root.fork(streams::kAdversary);
  Rng rng_nodes = root.fork(streams::kGenericNodes);

  trace_ = Trace{};
  PublicHistory history(trace_);
  Channel channel;

  SimResult result;
  std::vector<LiveNode> nodes;
  std::vector<std::uint8_t> sent_flags;
  node_id next_id = 0;

  for (slot_t slot = 1; slot <= config_.horizon; ++slot) {
    const AdversaryAction action = adversary_.on_slot(slot, history, rng_adv);

    for (std::uint64_t i = 0; i < action.inject; ++i) {
      LiveNode node;
      node.id = next_id++;
      node.arrival = slot;
      node.protocol = factory_.spawn(node.id, slot, rng_nodes);
      nodes.push_back(std::move(node));
    }
    result.arrivals += action.inject;
    CR_CHECK(nodes.size() <= config_.max_live_nodes);

    const std::uint64_t live = nodes.size();
    if (live > 0) ++result.active_slots;

    channel.begin_slot(slot, action.jam);
    sent_flags.assign(nodes.size(), 0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].protocol->on_slot(slot, rng_nodes)) {
        sent_flags[i] = 1;
        ++nodes[i].sends;
        ++result.total_sends;
        channel.broadcast(nodes[i].id);
      }
    }

    const SlotOutcome out = channel.resolve();
    trace_.record(out);
    if (config_.recording.wants_trace()) result.slot_outcomes.push_back(out);
    if (out.jammed) ++result.jammed_slots;
    if (out.success()) {
      ++result.successes;
      if (result.first_success == 0) result.first_success = slot;
      result.last_success = slot;
      if (config_.recording.wants_success_times()) result.success_times.push_back(slot);
    }
    if (observer_ != nullptr) observer_->on_slot(out, action.inject, live);

    // Dispatch through the CD entry point: CD-blind protocols fall through
    // to the binary on_feedback via the default implementation.
    const CdFeedback fb = out.cd_feedback();
    std::size_t winner_idx = nodes.size();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const bool own = out.success() && nodes[i].id == out.winner;
      if (own) winner_idx = i;
      nodes[i].protocol->on_feedback_cd(slot, fb, sent_flags[i] != 0, own);
    }
    if (winner_idx < nodes.size()) {
      if (config_.recording.wants_node_stats()) {
        NodeStats ns;
        ns.id = nodes[winner_idx].id;
        ns.arrival = nodes[winner_idx].arrival;
        ns.departure = slot;
        ns.sends = nodes[winner_idx].sends;
        result.node_stats.push_back(ns);
      }
      nodes[winner_idx] = std::move(nodes.back());
      nodes.pop_back();
    }

    result.slots = slot;
    if (config_.stop_when_empty && result.arrivals > 0 && nodes.empty()) break;
    if (config_.stop_after_first_success && result.successes > 0) break;
  }

  result.live_at_end = nodes.size();
  if (config_.recording.wants_node_stats()) {
    for (const auto& node : nodes) {
      NodeStats ns;
      ns.id = node.id;
      ns.arrival = node.arrival;
      ns.departure = 0;
      ns.sends = node.sends;
      result.node_stats.push_back(ns);
    }
  }
  if (observer_ != nullptr) observer_->on_run_end(result);
  return result;
}

SimResult run_generic(ProtocolFactory& factory, Adversary& adversary, const SimConfig& config,
                      SlotObserver* observer) {
  GenericSimulator sim(factory, adversary, config);
  sim.set_observer(observer);
  return sim.run();
}

}  // namespace cr
