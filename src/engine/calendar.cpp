#include "engine/calendar.hpp"

#include "common/check.hpp"

namespace cr {

std::optional<CalendarEvent> Calendar::pop_due(slot_t slot) {
  if (heap_.empty()) return std::nullopt;
  const CalendarEvent& top = heap_.top();
  // The engine visits every slot in order, so nothing can be overdue.
  CR_DCHECK(top.slot >= slot);
  if (top.slot > slot) return std::nullopt;
  CalendarEvent ev = top;
  heap_.pop();
  return ev;
}

}  // namespace cr
