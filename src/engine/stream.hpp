/// \file
/// Long-lived streaming simulation driver (`cr stream`).
///
/// Where every other engine runs a horizon-bounded closed experiment, the
/// stream driver turns the simulator into a service: arrival events flow in
/// through a fixed-capacity SPSC ring buffer (stdin, a trace file, or a
/// synthetic generator on the producer side), the CJZ cohort core advances
/// slot by slot with no horizon, and completed metric windows leave as JSON
/// lines the moment they close. Nothing in the pipeline grows with run
/// length: the sparse node table keeps resident state O(peak backlog), the
/// ring is fixed, and windows are published instead of accumulated.
///
/// Checkpoint/restore. snapshot() serializes the complete simulation state —
/// cohort core (nodes, cohorts, calendar heap verbatim), the open metrics
/// window, and the feed cursor (events applied + the one popped-but-pending
/// event) — into a versioned CRSNAP blob (common/snapshot.hpp). The RNG
/// needs no serialization at all: the core runs on CounterCjzStreams, whose
/// per-slot Philox streams are rebound as a pure function of (seed, slot).
/// Restoring a checkpoint and re-feeding the same trace (skipping
/// feed_skip() events) continues BIT-IDENTICALLY to the uninterrupted run —
/// determinism rule 8 in docs/ARCHITECTURE.md, enforced end-to-end by the
/// `stream`-labelled tests and byte-compared goldens in tests/golden/.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "channel/types.hpp"
#include "common/check.hpp"
#include "common/functions.hpp"
#include "common/snapshot.hpp"
#include "engine/cjz_core.hpp"
#include "metrics/windowed.hpp"

namespace cr {

/// Current CRSNAP schema version for stream snapshots. Bump on ANY layout
/// change (docs/ARCHITECTURE.md has the add-a-snapshot-field recipe).
inline constexpr std::uint32_t kStreamSnapshotVersion = 1;

/// Effectively-unbounded horizon for streaming runs (the cohort core bounds
/// calendar insertions by the config horizon; 2^62 keeps every shift in
/// range while never being reached).
inline constexpr slot_t kStreamHorizon = slot_t{1} << 62;

/// One arrival-feed record: `inject` nodes arrive at the beginning of
/// `slot`, which the adversary may also jam. Slots absent from the feed are
/// simulated as empty, unjammed slots.
struct StreamEvent {
  slot_t slot = 0;
  std::uint64_t inject = 0;
  bool jam = false;

  friend bool operator==(const StreamEvent&, const StreamEvent&) = default;
};

/// What the producer does when the ring is full.
enum class OverflowPolicy : std::uint8_t {
  kBlock = 0,  ///< spin/yield until the consumer frees a slot (lossless)
  kDrop = 1,   ///< discard the event and count it (lossy, bounded latency)
};

/// Fixed-capacity single-producer/single-consumer ring buffer of feed
/// events. Lock-free: the producer owns tail_, the consumer owns head_,
/// and close() publishes "no more pushes ever" (strictly after the last
/// push, so exhausted() == closed && empty is race-free for the consumer).
class EventRing {
 public:
  explicit EventRing(std::size_t capacity) : buf_(capacity), capacity_(capacity) {
    CR_CHECK(capacity >= 1);
  }

  /// Producer side. False when full — the caller applies its
  /// OverflowPolicy (block/retry or count the drop).
  bool try_push(const StreamEvent& ev) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == capacity_) return false;
    buf_[tail % capacity_] = ev;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when currently empty (which is not EOF — poll
  /// exhausted() to distinguish).
  bool try_pop(StreamEvent& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) return false;
    out = buf_[head % capacity_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Producer: no further pushes will ever happen. Call strictly after the
  /// last push.
  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Consumer: the feed is finished AND fully drained. Reading closed_
  /// first (acquire) makes the subsequent emptiness check definitive: a
  /// visible close happens-after the producer's last push.
  bool exhausted() const {
    if (!closed()) return false;
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_relaxed);
  }

  std::size_t size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }
  std::size_t capacity() const { return capacity_; }

 private:
  std::vector<StreamEvent> buf_;
  std::size_t capacity_;
  std::atomic<std::uint64_t> head_{0};  ///< pop count (consumer-owned)
  std::atomic<std::uint64_t> tail_{0};  ///< push count (producer-owned)
  std::atomic<bool> closed_{false};
};

struct StreamOptions {
  std::uint64_t seed = 1;
  slot_t window = 1024;            ///< metrics window width (slots)
  std::uint64_t max_windows = 0;   ///< stop after this many windows (0 = run to EOF)
  /// Cut a checkpoint after every slot divisible by this (0 = only the
  /// final checkpoint at stop). Checkpoints also require a sink.
  slot_t checkpoint_every = 0;
  NodeTableKind node_table = NodeTableKind::kSparse;
};

/// Final accounting of a streaming run.
struct StreamRunSummary {
  slot_t slots = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t successes = 0;
  std::uint64_t live_at_end = 0;
  std::uint64_t windows = 0;
  std::uint64_t events_applied = 0;
  bool stopped_by_max_windows = false;
  std::string error;  ///< empty on success

  bool ok() const { return error.empty(); }
};

/// The streaming driver: one instance per (possibly restored) run.
class StreamSim {
 public:
  explicit StreamSim(const StreamOptions& opts);

  /// Receives every cut checkpoint blob (periodic and final). Set before
  /// run(); without a sink no checkpoints are cut.
  void set_checkpoint_sink(std::function<void(const std::vector<std::uint8_t>&)> sink) {
    checkpoint_sink_ = std::move(sink);
  }

  /// Drain `ring` until EOF (producer closed + empty) or max_windows,
  /// writing one JSON line per completed window to `out`. At EOF the open
  /// window is completed by padding with empty slots, a final checkpoint is
  /// cut, and a `{"done":...}` summary line is written; a max_windows stop
  /// cuts the final checkpoint but pads and summarizes nothing, so a
  /// restored continuation's output concatenates byte-identically.
  StreamRunSummary run(EventRing& ring, std::ostream& out);

  /// Serialize the full simulation state (valid between slots — run() only
  /// cuts at slot boundaries).
  std::vector<std::uint8_t> snapshot() const;

  /// Load a snapshot() blob into a freshly-constructed sim whose options
  /// match the original run. False + named diagnostic in *error on any
  /// corrupt, truncated, version-mismatched, or mis-configured blob (never
  /// UB; the sim must then be discarded).
  bool restore(const std::uint8_t* data, std::size_t size, std::string* error);
  bool restore(const std::vector<std::uint8_t>& blob, std::string* error) {
    return restore(blob.data(), blob.size(), error);
  }

  /// After restore(): how many leading feed events the producer must skip
  /// when re-reading the same trace (events already applied, plus the one
  /// pending event carried inside the snapshot).
  std::uint64_t feed_skip() const { return events_applied_ + (has_pending_ ? 1 : 0); }

  slot_t current_slot() const { return cur_slot_; }
  const SimResult& partial_result() const { return core_.partial_result(); }
  CjzCoreMemoryStats memory_stats() const { return core_.memory_stats(); }

 private:
  void emit_window(const WindowStats& ws);
  void step_slot(slot_t slot, const AdversaryAction& action);

  StreamOptions opts_;
  FunctionSet fs_;  ///< paper-default functions; must outlive core_
  CjzCore<CounterCjzStreams> core_;
  WindowedMetrics windowed_;
  slot_t cur_slot_ = 0;
  std::uint64_t windows_emitted_ = 0;
  std::uint64_t events_applied_ = 0;
  bool has_pending_ = false;   ///< a popped event not yet applied
  StreamEvent pending_{};
  std::function<void(const std::vector<std::uint8_t>&)> checkpoint_sink_;
  std::ostream* out_ = nullptr;  ///< bound while run() is active
};

/// Parse one feed line: "slot inject [jam01]", '#' starts a comment, blank
/// lines skipped. Returns false for skipped lines; a malformed line sets
/// *error (empty otherwise).
bool parse_stream_event(const std::string& line, StreamEvent* ev, std::string* error);

/// Deterministic synthetic feed: `count` events with geometric slot gaps
/// (mean ~10), single-node injections and Bernoulli(0.15) jams, drawn from
/// the kStreamSynth fork of `seed` — reproducible for a given (seed, count),
/// independent of every engine stream.
std::vector<StreamEvent> synth_stream_events(std::uint64_t seed, std::uint64_t count);

}  // namespace cr
