/// \file
/// Calendar queue for the fast engines.
///
/// A min-heap of (slot, kind) events carrying a node index and a generation
/// counter. Stale events (the node transitioned or departed since
/// scheduling) are filtered by the consumer via the generation check —
/// cheaper than removing from the middle of a heap.
///
/// Kind ordering matters: all kStageBegin events of a slot are delivered
/// before any kSend event of the same slot, because beginning a backoff
/// stage may schedule a send in that very slot (offset 0).
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "channel/types.hpp"

namespace cr {

struct CalendarEvent {
  /// kStageBegin sorts before kSend within a slot (see file comment).
  enum class Kind : std::uint8_t { kStageBegin = 0, kSend = 1 };

  slot_t slot = 0;          ///< absolute slot the event fires in
  Kind kind = Kind::kSend;
  std::uint32_t node = 0;   ///< owning node's dense index in the engine
  std::uint32_t gen = 0;    ///< owner's generation at scheduling time (staleness check)
};

/// Min-heap of calendar events keyed by (slot, kind).
class Calendar {
 public:
  /// Schedule an event (no dedup; consumers filter stale generations).
  void push(const CalendarEvent& ev) { heap_.push(ev); }

  /// Pop the next event scheduled at or before `slot` (stage-begins first
  /// within a slot); nullopt when none remain for this slot.
  std::optional<CalendarEvent> pop_due(slot_t slot);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

 private:
  struct Later {
    bool operator()(const CalendarEvent& a, const CalendarEvent& b) const {
      if (a.slot != b.slot) return a.slot > b.slot;
      return static_cast<int>(a.kind) > static_cast<int>(b.kind);
    }
  };
  std::priority_queue<CalendarEvent, std::vector<CalendarEvent>, Later> heap_;
};

}  // namespace cr
