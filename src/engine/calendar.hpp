/// \file
/// Calendar queue for the fast engines.
///
/// A min-heap of (slot, kind) events carrying a node index and a generation
/// counter. Stale events (the node transitioned or departed since
/// scheduling) are filtered by the consumer via the generation check —
/// cheaper than removing from the middle of a heap.
///
/// Kind ordering matters: all kStageBegin events of a slot are delivered
/// before any kSend event of the same slot, because beginning a backoff
/// stage may schedule a send in that very slot (offset 0).
///
/// Storage note: events are packed into two words — the (slot, kind) sort
/// key in one and the (gen, node) payload in the other — so heap sifts move
/// 16 bytes and compare a single integer. The comparator is value-equivalent
/// to the old (slot, kind) field comparison, and std::push_heap/pop_heap
/// move elements purely by comparator outcomes, so the pop order — ties
/// included — is identical to the unpacked representation. (Lockstep
/// bit-exactness and the golden CSVs depend on that order.)
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "channel/types.hpp"
#include "common/snapshot.hpp"

namespace cr {

struct CalendarEvent {
  /// kStageBegin sorts before kSend within a slot (see file comment).
  enum class Kind : std::uint8_t { kStageBegin = 0, kSend = 1 };

  slot_t slot = 0;          ///< absolute slot the event fires in
  Kind kind = Kind::kSend;
  std::uint32_t node = 0;   ///< owning node's dense index in the engine
  std::uint32_t gen = 0;    ///< owner's generation at scheduling time (staleness check)
};

/// Min-heap of calendar events keyed by (slot, kind).
class Calendar {
 public:
  /// Schedule an event (no dedup; consumers filter stale generations).
  void push(const CalendarEvent& ev) {
    heap_.push_back(Packed{(static_cast<std::uint64_t>(ev.slot) << 1) |
                               static_cast<std::uint64_t>(ev.kind),
                           (static_cast<std::uint64_t>(ev.gen) << 32) | ev.node});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Pop the next event scheduled at or before `slot` (stage-begins first
  /// within a slot); nullopt when none remain for this slot.
  std::optional<CalendarEvent> pop_due(slot_t slot) {
    if (heap_.empty()) return std::nullopt;
    const Packed& top = heap_.front();
    // The engine visits every slot in order, so nothing can be overdue.
    CR_DCHECK(static_cast<slot_t>(top.key >> 1) >= slot);
    if (static_cast<slot_t>(top.key >> 1) > slot) return std::nullopt;
    CalendarEvent ev;
    ev.slot = static_cast<slot_t>(top.key >> 1);
    ev.kind = static_cast<CalendarEvent::Kind>(top.key & 1);
    ev.node = static_cast<std::uint32_t>(top.payload);
    ev.gen = static_cast<std::uint32_t>(top.payload >> 32);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    return ev;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Slot of the earliest scheduled event (stale entries included — callers
  /// treat this as a conservative wake-up hint, never as ground truth).
  /// 0 when the calendar is empty; slots themselves start at 1.
  slot_t next_due_slot() const {
    return heap_.empty() ? 0 : static_cast<slot_t>(heap_.front().key >> 1);
  }

  /// Pop and discard every event scheduled strictly before `slot`. The
  /// lockstep plan path jumps over spans where every pending event is
  /// provably stale (no node is alive); discarding them with the same
  /// pop_heap sequence the per-slot loop would have used keeps the heap
  /// array — and therefore the pop order of later TIED events — identical
  /// to stepping every slot, which is what plan/generic bit-exactness
  /// rests on.
  void drain_below(slot_t slot) {
    while (!heap_.empty() && static_cast<slot_t>(heap_.front().key >> 1) < slot) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
  }

  /// Pre-size the backing store (the lockstep engine knows a chunk's reps
  /// share similar event populations).
  void reserve(std::size_t n) { heap_.reserve(n); }

  /// Serialize the heap ARRAY verbatim, in storage order — never re-heapified
  /// on load. Equal-key elements can sit in several valid heap arrangements;
  /// preserving the exact arrangement preserves the pop order of tied events,
  /// which restore-then-continue bit-identity (determinism rule 8) rests on.
  void save(SnapshotWriter& w) const {
    w.u64(heap_.size());
    for (const Packed& p : heap_) {
      w.u64(p.key);
      w.u64(p.payload);
    }
  }

  void load(SnapshotReader& r) {
    const std::uint64_t n = r.u64("calendar.size");
    if (!r.check_count(n, 16, "calendar.events")) return;
    heap_.clear();
    heap_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      Packed p;
      p.key = r.u64("calendar.event.key");
      p.payload = r.u64("calendar.event.payload");
      heap_.push_back(p);
    }
  }

 private:
  struct Packed {
    std::uint64_t key = 0;      ///< (slot << 1) | kind — the full sort key
    std::uint64_t payload = 0;  ///< (gen << 32) | node
  };
  struct Later {
    bool operator()(const Packed& a, const Packed& b) const { return a.key > b.key; }
  };
  std::vector<Packed> heap_;
};

}  // namespace cr
