// Shared simulation configuration / result types and the observer hook.
//
// Both engines (generic and fast) produce the same SimResult and drive the
// same SlotObserver interface, so metrics are engine-agnostic.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/types.hpp"

namespace cr {

struct SimConfig {
  slot_t horizon = 1 << 16;   ///< simulate slots 1..horizon (inclusive)
  std::uint64_t seed = 1;
  /// Stop early once at least one node has arrived and the system drained.
  bool stop_when_empty = false;
  /// Stop right after the first successful transmission (first-success
  /// experiments; avoids simulating the irrelevant tail).
  bool stop_after_first_success = false;
  bool record_success_times = false;
  /// Generic engine only: per-node arrival/departure/send counts.
  bool record_node_stats = false;
  /// Safety valve: abort (CR_CHECK) if the live population exceeds this.
  std::uint64_t max_live_nodes = 10'000'000;
};

struct NodeStats {
  node_id id = kNoNode;
  slot_t arrival = 0;
  slot_t departure = 0;  ///< 0 = still in the system at the end
  std::uint64_t sends = 0;

  bool departed() const { return departure != 0; }
  /// Slots spent in the system (valid when departed).
  std::uint64_t latency() const { return departure - arrival + 1; }

  friend bool operator==(const NodeStats&, const NodeStats&) = default;
};

struct SimResult {
  slot_t slots = 0;                 ///< slots actually simulated
  std::uint64_t arrivals = 0;
  std::uint64_t successes = 0;
  std::uint64_t jammed_slots = 0;
  std::uint64_t active_slots = 0;   ///< slots with >=1 node in the system
  std::uint64_t total_sends = 0;    ///< transmissions incl. collisions
  std::uint64_t live_at_end = 0;
  slot_t first_success = 0;         ///< 0 = no success
  slot_t last_success = 0;

  std::vector<slot_t> success_times;  ///< when record_success_times
  std::vector<NodeStats> node_stats;  ///< when record_node_stats

  /// Classical throughput at the end of the run: n_t / a_t (>= 1 is ideal;
  /// the paper lower-bounds n_t/a_t, we report its reciprocal form too).
  double arrivals_per_active_slot() const {
    return active_slots ? static_cast<double>(arrivals) / static_cast<double>(active_slots) : 0.0;
  }
  double successes_per_slot() const {
    return slots ? static_cast<double>(successes) / static_cast<double>(slots) : 0.0;
  }

  /// Field-wise equality — what "bit-identical replication" means in the
  /// parallel-vs-serial determinism tests.
  friend bool operator==(const SimResult&, const SimResult&) = default;
};

/// Per-slot hook shared by all engines; `injected` counts this slot's
/// arrivals, `live_nodes` the population during the slot (post-injection).
class SlotObserver {
 public:
  virtual ~SlotObserver() = default;
  virtual void on_slot(const SlotOutcome& out, std::uint64_t injected, std::uint64_t live_nodes) = 0;
};

}  // namespace cr
