/// \file
/// Shared simulation configuration / result types and the observer hook.
///
/// All engines (generic and the cohort-based fast ones) produce the same
/// SimResult, honour the same tiered RecordingConfig and drive the same
/// SlotObserver interface, so metrics are engine-agnostic: anything
/// latency_report()/energy_report() can compute from a generic run it can
/// compute from a fast run too.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/types.hpp"

namespace cr {

/// How much per-run observability to pay for. Tiers are cumulative: each one
/// records everything the previous tier records.
///
///   tier          | extra per-slot cost                  | unlocks
///   --------------|--------------------------------------|------------------
///   kNone         | —                                    | aggregate counters
///   kSuccessTimes | O(1) per success                     | successes_in_window
///   kNodeStats    | O(#sends) attribution + per-node row | latency/energy reports
///   kFullTrace    | O(1) copy per slot                   | SimResult::slot_outcomes
///
/// On the fast engines kNodeStats attributes every cohort transmission to a
/// concrete member (uniform over the cohort, which is exactly the conditional
/// law of "who sent" given the binomial count). Attribution draws from a
/// dedicated RNG stream, so the simulated trajectory — success times, totals,
/// every aggregate counter — is bit-identical across recording tiers.
enum class RecordingTier : std::uint8_t {
  kNone = 0,
  kSuccessTimes = 1,
  kNodeStats = 2,
  kFullTrace = 3,
};

struct RecordingConfig {
  RecordingTier tier = RecordingTier::kNone;

  constexpr bool wants_success_times() const { return tier >= RecordingTier::kSuccessTimes; }
  constexpr bool wants_node_stats() const { return tier >= RecordingTier::kNodeStats; }
  constexpr bool wants_trace() const { return tier >= RecordingTier::kFullTrace; }

  static constexpr RecordingConfig none() { return {RecordingTier::kNone}; }
  static constexpr RecordingConfig success_times() { return {RecordingTier::kSuccessTimes}; }
  static constexpr RecordingConfig node_stats() { return {RecordingTier::kNodeStats}; }
  static constexpr RecordingConfig full_trace() { return {RecordingTier::kFullTrace}; }

  friend bool operator==(const RecordingConfig&, const RecordingConfig&) = default;
};

/// Node-table storage policy for the cohort engines (fast_cjz, fast_batch,
/// the stream driver). Trajectories are bit-identical across kinds — the RNG
/// never consumes a node's table index, only positions within cohorts — so
/// the choice is purely a memory/scale knob (asserted per-case by the
/// sparse-vs-dense differential fuzz in tests/test_cross_engine.cpp).
enum class NodeTableKind : std::uint8_t {
  /// One table slot per node that EVER arrived — O(total arrivals) resident
  /// state. The historical layout; departed nodes stay as tombstones.
  kDense = 0,
  /// Departed nodes' slots are recycled through a free list — O(peak live
  /// nodes) resident state, which is what lets 10^6..10^8-arrival streaming
  /// workloads run in cache-friendly memory.
  kSparse = 1,
};

struct SimConfig {
  slot_t horizon = 1 << 16;   ///< simulate slots 1..horizon (inclusive)
  std::uint64_t seed = 1;     ///< master seed; every engine RNG stream forks from it
  /// Stop early once at least one node has arrived and the system drained.
  bool stop_when_empty = false;
  /// Stop right after the first successful transmission (first-success
  /// experiments; avoids simulating the irrelevant tail).
  bool stop_after_first_success = false;
  /// Observability tier (see RecordingTier); honoured by every engine.
  RecordingConfig recording;
  /// Safety valve: abort (CR_CHECK) if the live population exceeds this.
  std::uint64_t max_live_nodes = 10'000'000;
  /// Node-table storage policy (cohort engines; the generic reference engine
  /// and the lockstep sweep always use their native layouts).
  NodeTableKind node_table = NodeTableKind::kDense;
};

struct NodeStats {
  node_id id = kNoNode;
  slot_t arrival = 0;
  slot_t departure = 0;  ///< 0 = still in the system at the end
  std::uint64_t sends = 0;

  bool departed() const { return departure != 0; }
  /// Slots spent in the system (valid when departed).
  std::uint64_t latency() const { return departure - arrival + 1; }

  friend bool operator==(const NodeStats&, const NodeStats&) = default;
};

struct SimResult {
  slot_t slots = 0;                 ///< slots actually simulated
  std::uint64_t arrivals = 0;       ///< nodes injected over the run
  std::uint64_t successes = 0;      ///< messages delivered
  std::uint64_t jammed_slots = 0;   ///< slots the adversary jammed
  std::uint64_t active_slots = 0;   ///< slots with >=1 node in the system
  std::uint64_t total_sends = 0;    ///< transmissions incl. collisions
  std::uint64_t live_at_end = 0;    ///< backlog remaining when the run stopped
  slot_t first_success = 0;         ///< 0 = no success
  slot_t last_success = 0;          ///< 0 = no success

  std::vector<slot_t> success_times;    ///< tier >= kSuccessTimes
  std::vector<NodeStats> node_stats;    ///< tier >= kNodeStats
  std::vector<SlotOutcome> slot_outcomes;  ///< tier >= kFullTrace (per slot)

  /// Classical throughput at the end of the run: n_t / a_t (>= 1 is ideal;
  /// the paper lower-bounds n_t/a_t, we report its reciprocal form too).
  double arrivals_per_active_slot() const {
    return active_slots ? static_cast<double>(arrivals) / static_cast<double>(active_slots) : 0.0;
  }
  double successes_per_slot() const {
    return slots ? static_cast<double>(successes) / static_cast<double>(slots) : 0.0;
  }

  /// Field-wise equality — what "bit-identical replication" means in the
  /// parallel-vs-serial determinism tests and the cross-engine fuzz loop.
  friend bool operator==(const SimResult&, const SimResult&) = default;
};

/// Per-slot hook shared by all engines; `injected` counts this slot's
/// arrivals, `live_nodes` the population during the slot (post-injection).
class SlotObserver {
 public:
  virtual ~SlotObserver() = default;
  virtual void on_slot(const SlotOutcome& out, std::uint64_t injected, std::uint64_t live_nodes) = 0;
  /// Called once by every engine after the last slot, with the finished
  /// result — streaming observers flush partial windows here.
  virtual void on_run_end(const SimResult& result) { (void)result; }
};

/// Fans one engine observer slot into several observers (null entries are
/// skipped), so a run can stream e.g. a ThroughputChecker and a
/// WindowedMetrics side by side.
class ObserverChain final : public SlotObserver {
 public:
  ObserverChain() = default;
  ObserverChain(std::initializer_list<SlotObserver*> observers) {
    for (SlotObserver* obs : observers) add(obs);
  }

  void add(SlotObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }

  void on_slot(const SlotOutcome& out, std::uint64_t injected, std::uint64_t live_nodes) override {
    for (SlotObserver* obs : observers_) obs->on_slot(out, injected, live_nodes);
  }
  void on_run_end(const SimResult& result) override {
    for (SlotObserver* obs : observers_) obs->on_run_end(result);
  }

 private:
  std::vector<SlotObserver*> observers_;
};

}  // namespace cr
