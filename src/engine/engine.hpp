/// \file
/// Unified engine layer: every simulator behind one polymorphic interface.
///
/// A ProtocolSpec describes WHAT runs on the channel (the CJZ algorithm, a
/// probability-profile protocol, or an arbitrary ProtocolFactory); an Engine
/// is a strategy for HOW to execute it (reference per-node simulation or one
/// of the cohort-based fast engines). Engines self-describe which specs they
/// can execute, so callers select one through the EngineRegistry instead of
/// hard-coding dispatch:
///
///     ProtocolSpec spec = cjz_protocol(functions_constant_g(4.0));
///     SimResult res = EngineRegistry::instance().preferred(spec)
///                         .run(spec, adversary, config);
///
/// Cross-engine validation enumerates the registry: for each engine with
/// supports(spec), run the same scenario and compare statistics (see
/// tests/test_cross_engine.cpp).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adversary/adversary.hpp"
#include "common/functions.hpp"
#include "engine/sim_result.hpp"
#include "protocols/batch.hpp"
#include "protocols/cjz_node.hpp"
#include "protocols/protocol.hpp"

namespace cr {

/// Engine-agnostic description of the protocol under test. Value type:
/// copyable, safe to share across replication threads (engines never mutate
/// the spec; each run builds its own per-run state from it).
struct ProtocolSpec {
  enum class Kind {
    kCjz,      ///< the paper's algorithm, parameterised by a FunctionSet
    kProfile,  ///< fixed per-age probability profile (h-batch family)
    kFactory,  ///< arbitrary ProtocolFactory (reference engine only)
  };

  Kind kind = Kind::kCjz;
  std::string label;                   ///< short human-readable tag for tables
  FunctionSet fs;                      ///< kCjz
  CjzOptions cjz_options;              ///< kCjz
  std::optional<SendProfile> profile;  ///< kProfile
  /// kFactory: builds a fresh factory per run (must be re-invocable and
  /// thread-safe — parallel replications call it concurrently).
  std::function<std::unique_ptr<ProtocolFactory>()> make_factory;
};

/// Spec constructors (the only supported way to build one).
ProtocolSpec cjz_protocol(FunctionSet fs, CjzOptions options = {});
ProtocolSpec profile_protocol(SendProfile profile);
ProtocolSpec factory_protocol(std::string label,
                              std::function<std::unique_ptr<ProtocolFactory>()> make);

/// Materialise a per-node ProtocolFactory for `spec` (any kind). This is how
/// the reference engine executes every spec; tests use it to pit the fast
/// engines against ground truth.
std::unique_ptr<ProtocolFactory> make_protocol_factory(const ProtocolSpec& spec);

/// Execution strategy. Implementations are stateless (all per-run state is
/// local to run()), so a single registered instance serves concurrent
/// replication threads.
class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string name() const = 0;

  /// Can this engine execute `spec` faithfully?
  virtual bool supports(const ProtocolSpec& spec) const = 0;

  /// Higher = faster. preferred() picks the supporting engine with the top
  /// rank; the reference engine ranks 0.
  virtual int speed_rank() const = 0;

  /// Execute one run. `adversary` is stateful and owned by the caller (one
  /// instance per run); `observer` may be null.
  virtual SimResult run(const ProtocolSpec& spec, Adversary& adversary, const SimConfig& config,
                        SlotObserver* observer = nullptr) const = 0;
};

/// Name-keyed engine registry. Seeded with the three built-ins ("generic",
/// "fast_cjz", "fast_batch"); register_engine() is the extension point.
/// Registration is not thread-safe — register before fanning out runs.
class EngineRegistry {
 public:
  static EngineRegistry& instance();

  /// nullptr when unknown.
  const Engine* find(const std::string& name) const;
  /// Aborts (CR_CHECK) on unknown names: bench flags are validated upstream.
  const Engine& at(const std::string& name) const;

  std::vector<std::string> names() const;

  /// All engines that can execute `spec`, ordered fastest first.
  std::vector<const Engine*> compatible(const ProtocolSpec& spec) const;
  /// The fastest engine that can execute `spec` (always exists: the
  /// reference engine supports everything).
  const Engine& preferred(const ProtocolSpec& spec) const;

  void register_engine(std::unique_ptr<Engine> engine);

 private:
  EngineRegistry();
  std::vector<std::unique_ptr<Engine>> engines_;
};

}  // namespace cr
