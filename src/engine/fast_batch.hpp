/// \file
/// Fast simulator for probability-profile protocols (h-batch and friends).
///
/// Nodes sharing an arrival slot are exchangeable under a SendProfile — the
/// sending probability depends only on age — so each arrival slot becomes a
/// cohort and the per-slot sender count is one Binomial draw per cohort.
///
/// Best suited to batch workloads (one or few arrival slots); with one cohort
/// per slot of a long arrival stream the per-slot cost degrades to O(live
/// cohorts), which is still far below the generic engine's O(live nodes).
///
/// Under RecordingTier::kNodeStats each cohort materialises per-member send
/// counters and every binomial count is attributed to a uniformly sampled
/// member subset (the exact conditional law) drawn from a dedicated
/// attribution RNG stream — latency and energy reports work here, and the
/// trajectory is bit-identical across recording tiers.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/adversary.hpp"
#include "channel/trace.hpp"
#include "engine/attribution.hpp"
#include "engine/sim_result.hpp"
#include "protocols/batch.hpp"

namespace cr {

/// Cohort-per-arrival-slot engine for probability-profile protocols.
/// One instance per run.
class FastBatchSimulator {
 public:
  /// `adversary` must outlive run(); `profile` gives the per-age law.
  FastBatchSimulator(SendProfile profile, Adversary& adversary, SimConfig config);

  /// Optional per-slot metrics hook (not owned).
  void set_observer(SlotObserver* observer) { observer_ = observer; }

  /// Execute the run described by the constructor arguments.
  SimResult run();

  /// Ground-truth trace of the last run (valid after run()).
  const Trace& trace() const { return trace_; }

 private:
  struct Cohort {
    slot_t arrival = 0;
    std::uint64_t count = 0;
    /// kNodeStats tier only: one send counter per live member (size ==
    /// count); members are anonymous otherwise.
    std::vector<std::uint64_t> member_sends;
  };

  SendProfile profile_;
  Adversary& adversary_;
  SimConfig config_;
  SlotObserver* observer_ = nullptr;
  Trace trace_;
  SubsetScratch attr_scratch_;
};

/// Convenience one-shot runner.
SimResult run_fast_batch(const SendProfile& profile, Adversary& adversary,
                         const SimConfig& config, SlotObserver* observer = nullptr);

}  // namespace cr
