/// \file
/// Send attribution for the cohort engines.
///
/// A cohort slot draws its transmitter COUNT c ~ Binomial(m, p) on the main
/// RNG stream; when the kNodeStats recording tier asks "which members sent?",
/// the exact conditional law given the count is the uniform distribution over
/// c-subsets of the m members (exchangeability of i.i.d. p-coins). This
/// header samples such a subset from a DEDICATED attribution RNG stream, so
/// turning recording on or off never perturbs the simulated trajectory.
///
/// Cost is O(c) expected (amortised O(total sends) per run): sparse subsets
/// use rejection sampling against a hash set, dense ones a partial
/// Fisher–Yates over an index scratch vector.
#pragma once

#include <cstdint>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"

namespace cr {

/// Scratch buffers reused across slots so attribution allocates O(1)
/// amortised.
struct SubsetScratch {
  std::vector<std::uint64_t> indices;
  std::unordered_set<std::uint64_t> picked;
};

/// Invoke `visit(i)` for each index of a uniformly random c-subset of
/// [0, m). Requires c <= m. Visit order is unspecified but deterministic for
/// a given RNG state. `rng` is any generator with uniform_u64 (Rng or a
/// CounterRng::Stream — the two engine substrates).
template <typename G, typename Visit>
void visit_uniform_subset(std::uint64_t m, std::uint64_t c, G& rng, SubsetScratch& scratch,
                          Visit&& visit) {
  if (c == 0) return;
  if (c >= m) {
    for (std::uint64_t i = 0; i < m; ++i) visit(i);
    return;
  }
  if (4 * c >= m) {
    // Dense: partial Fisher–Yates over 0..m-1 — O(m) = O(4c) worst case.
    scratch.indices.resize(m);
    std::iota(scratch.indices.begin(), scratch.indices.end(), std::uint64_t{0});
    for (std::uint64_t i = 0; i < c; ++i) {
      const std::uint64_t j = i + rng.uniform_u64(m - i);
      std::swap(scratch.indices[i], scratch.indices[j]);
      visit(scratch.indices[i]);
    }
    return;
  }
  // Sparse: rejection sampling; with c < m/4 the expected number of draws is
  // < 4c/3. Set membership is the only thing consulted, so the unordered
  // container keeps the choice deterministic.
  scratch.picked.clear();
  while (scratch.picked.size() < c) {
    const std::uint64_t j = rng.uniform_u64(m);
    if (scratch.picked.insert(j).second) visit(j);
  }
}

}  // namespace cr
