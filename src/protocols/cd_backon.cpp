#include "protocols/cd_backon.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace cr {

bool CdBackonNode::on_slot(slot_t, Rng& rng) { return rng.bernoulli(p_); }

void CdBackonNode::on_feedback(slot_t, Feedback fb, bool, bool) {
  // Degraded (no-CD) path: silence and collision are indistinguishable, so
  // the only safe reaction to a wasted slot is to back off. This is exactly
  // the paper's point — without CD the controller loses its backon signal.
  if (fb == Feedback::kSilenceOrCollision) p_ = std::max(opts_.p_min, p_ / opts_.mult);
}

void CdBackonNode::on_feedback_cd(slot_t, CdFeedback fb, bool, bool) {
  switch (fb) {
    case CdFeedback::kCollision:
      p_ = std::max(opts_.p_min, p_ / opts_.mult);
      break;
    case CdFeedback::kSilence:
      p_ = std::min(opts_.p_max, p_ * opts_.mult);
      break;
    case CdFeedback::kSuccess:
      break;  // a departure already reduces contention
  }
}

namespace {

class CdBackonFactory final : public ProtocolFactory {
 public:
  explicit CdBackonFactory(CdBackonOptions opts) : opts_(opts) {
    CR_CHECK(opts.p0 > 0.0 && opts.p0 <= 1.0);
    CR_CHECK(opts.mult > 1.0);
    CR_CHECK(opts.p_min > 0.0 && opts.p_min <= opts.p_max);
  }

  std::unique_ptr<NodeProtocol> spawn(node_id, slot_t, Rng&) override {
    return std::make_unique<CdBackonNode>(opts_);
  }
  std::string name() const override { return "cd-backon"; }

 private:
  CdBackonOptions opts_;
};

}  // namespace

std::unique_ptr<ProtocolFactory> cd_backon_factory(CdBackonOptions opts) {
  return std::make_unique<CdBackonFactory>(opts);
}

}  // namespace cr
