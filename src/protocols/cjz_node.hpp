// The paper's algorithm (§2.1) — per-node state machine.
//
// A node u injected at the beginning of slot l₀ runs three phases over the
// two parity channels (odd slots / even slots):
//
//   Phase 1  (channel-role discovery): run (f/a)-backoff on the channel
//            given by the parity of l₀ until *any* success is heard on
//            either channel. The success slot l₁ defines the data channel α
//            (the channel l₁ lies on).
//   Phase 2  (synchronization): run (f/a)-backoff on the other channel ᾱ
//            starting from slot l₁+1, until a success is heard on ᾱ at some
//            slot l₂. Set l₃ = l₂.
//   Phase 3  (batch): from slot l₃+1 run h_ctrl-batch on the channel of
//            parity(l₃+1); from slot l₃+2 run h_data-batch on the channel of
//            parity(l₃+2). When a success is heard on the h_ctrl channel at
//            slot l₃′, restart Phase 3 with l₃ = l₃′ — note this swaps the
//            control and data channels, as the paper prescribes.
//
// A node halts (is removed by the engine) the moment its own message
// succeeds, in any phase — Phase 1/2 backoff transmissions carry the real
// message.
//
// The Phase-3 batch processes are implemented statelessly: the sending
// probability in slot s is a pure function of (s, l₃), which is what makes
// the fast cohort engine possible (all nodes sharing l₃ are exchangeable).
#pragma once

#include <cstdint>
#include <memory>

#include "common/check.hpp"
#include "common/functions.hpp"
#include "protocols/backoff.hpp"
#include "protocols/protocol.hpp"

namespace cr {

/// Phase-3 sending probability on the *control* pattern for absolute slot
/// `now`, given anchor l3. Requires now >= l3+1 and parity(now)==parity(l3+1).
double cjz_ctrl_prob(const FunctionSet& fs, slot_t l3, slot_t now);
/// Phase-3 sending probability on the *data* pattern for absolute slot
/// `now`. Requires now >= l3+2 and parity(now)==parity(l3+2).
double cjz_data_prob(const FunctionSet& fs, slot_t l3, slot_t now);

/// First slot after anchor `l3` lying on channel `parity` (l3+1 or l3+2).
inline slot_t cjz_first_after(slot_t l3, int parity) {
  return parity_channel(l3 + 1) == parity ? l3 + 1 : l3 + 2;
}
/// Generalized Phase-3 probability for a batch process anchored at l3 on
/// channel `proc_parity`; `ctrl` selects h_ctrl vs h_data. Supports the
/// ablation variants where control may not live on parity(l3+1). Inline: the
/// cohort engine evaluates this once per (cohort, slot) in its hottest loop.
inline double cjz_batch_prob(const FunctionSet& fs, slot_t l3, int proc_parity, bool ctrl,
                             slot_t now) {
  CR_DCHECK(parity_channel(now) == proc_parity);
  const slot_t first = cjz_first_after(l3, proc_parity);
  CR_DCHECK(now >= first);
  const std::uint64_t k = (now - first) / 2 + 1;
  return ctrl ? fs.h_ctrl(static_cast<double>(k))
              : FunctionSet::h_data(static_cast<double>(k));
}

/// Ablation switches for the algorithm (paper behaviour = defaults). Used
/// by bench_ablation to quantify the design decisions of §2.1.
struct CjzOptions {
  /// Paper: each Phase-3 restart swaps the control and data channels.
  bool swap_channels_on_restart = true;
  /// Paper: a Phase-2 backoff round synchronizes joiners onto the control
  /// channel. false = jump from Phase 1 straight to Phase 3.
  bool use_phase2 = true;
};

class CjzNode final : public NodeProtocol {
 public:
  enum class Phase : std::uint8_t { kOne = 1, kTwo = 2, kThree = 3 };

  /// `fs` must outlive the node (owned by the factory).
  CjzNode(const FunctionSet* fs, slot_t arrival, Rng& rng, CjzOptions options = {});

  bool on_slot(slot_t now, Rng& rng) override;
  void on_feedback(slot_t now, Feedback fb, bool sent, bool own_success) override;

  // Introspection (tests, trace tooling).
  Phase phase() const { return phase_; }
  /// Channel the current backoff runs on (Phases 1–2 only).
  int backoff_channel() const { return bkf_channel_; }
  /// Phase-3 anchor (valid in Phase 3).
  slot_t l3() const { return l3_; }
  /// Phase-3 control channel parity (valid in Phase 3).
  int ctrl_channel() const { return ctrl_parity_; }
  std::uint64_t backoff_total_sends() const { return backoff_.total_sends(); }

 private:
  const FunctionSet* fs_;
  CjzOptions opts_;
  Phase phase_ = Phase::kOne;
  BackoffProcess backoff_;
  int bkf_channel_ = 0;   ///< parity the backoff listens/sends on
  slot_t bkf_from_ = 0;   ///< backoff counts channel slots >= this absolute slot
  slot_t l3_ = 0;
  int ctrl_parity_ = 0;   ///< Phase-3 control channel parity
};

class CjzFactory final : public ProtocolFactory {
 public:
  explicit CjzFactory(FunctionSet fs, CjzOptions options = {})
      : fs_(std::move(fs)), opts_(options) {}

  std::unique_ptr<NodeProtocol> spawn(node_id id, slot_t arrival, Rng& rng) override;
  std::string name() const override { return "cjz[" + fs_.describe() + "]"; }

  const FunctionSet& functions() const { return fs_; }
  const CjzOptions& options() const { return opts_; }

 private:
  FunctionSet fs_;
  CjzOptions opts_;
};

}  // namespace cr
