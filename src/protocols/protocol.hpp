// Per-node protocol interface for the generic (reference) simulator.
//
// Lifecycle per slot, for every active node:
//   1. bool send = on_slot(now, rng)    — decide whether to broadcast
//   2. engine resolves the channel
//   3. on_feedback(now, fb, sent, own_success)
//   4. if own_success the engine removes the node (it leaves the system)
//
// Protocols must be deterministic functions of (their construction
// arguments, the rng stream, the observed feedback): they may not peek at
// the engine or at other nodes, matching the model.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "channel/types.hpp"
#include "common/rng.hpp"

namespace cr {

class NodeProtocol {
 public:
  virtual ~NodeProtocol() = default;

  /// Decide whether to broadcast in slot `now` (absolute, 1-based).
  virtual bool on_slot(slot_t now, Rng& rng) = 0;

  /// Public feedback for slot `now`. `sent` echoes this node's decision;
  /// `own_success` is true iff this node transmitted and won the slot.
  virtual void on_feedback(slot_t now, Feedback fb, bool sent, bool own_success) = 0;

  /// Ternary feedback for protocols that assume a collision-detection
  /// mechanism (the comparison model of the paper's introduction). The
  /// default collapses it to the no-CD binary feedback, so ordinary
  /// protocols remain CD-blind; only CD protocols override this.
  virtual void on_feedback_cd(slot_t now, CdFeedback fb, bool sent, bool own_success) {
    on_feedback(now,
                fb == CdFeedback::kSuccess ? Feedback::kSuccess
                                           : Feedback::kSilenceOrCollision,
                sent, own_success);
  }
};

/// Creates protocol instances for arriving nodes.
class ProtocolFactory {
 public:
  virtual ~ProtocolFactory() = default;

  /// `arrival` is the slot at whose beginning the node joins (it may act in
  /// that very slot).
  virtual std::unique_ptr<NodeProtocol> spawn(node_id id, slot_t arrival, Rng& rng) = 0;

  virtual std::string name() const = 0;
};

}  // namespace cr
