#include "protocols/baselines.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "protocols/backoff.hpp"

namespace cr {
namespace {

/// Stateful window-length sequence for the windowed backoff family.
class WindowSequence {
 public:
  explicit WindowSequence(const WindowedBackoffOptions& opts) : opts_(opts) {}

  std::uint64_t next() {
    switch (opts_.scheme) {
      case WindowScheme::kBinaryExponential:
        return static_cast<std::uint64_t>(1) << std::min<std::uint64_t>(index_++, 62);
      case WindowScheme::kPolynomial: {
        ++index_;
        const double len = std::pow(static_cast<double>(index_), opts_.poly_exponent);
        return static_cast<std::uint64_t>(std::max(1.0, std::floor(len)));
      }
      case WindowScheme::kSawtooth: {
        // Epoch e yields windows 2^e, 2^{e-1}, ..., 1.
        const std::uint64_t len = static_cast<std::uint64_t>(1) << pos_;
        if (pos_ == 0) {
          ++epoch_;
          pos_ = std::min<std::uint64_t>(epoch_, 62);
        } else {
          --pos_;
        }
        return len;
      }
    }
    CR_CHECK(false);
    return 1;
  }

 private:
  WindowedBackoffOptions opts_;
  std::uint64_t index_ = 0;  // BEB / polynomial window counter
  std::uint64_t epoch_ = 1;  // sawtooth state
  std::uint64_t pos_ = 1;
};

class WindowedNode final : public NodeProtocol {
 public:
  WindowedNode(const WindowedBackoffOptions& opts, slot_t arrival, Rng& rng)
      : seq_(opts), window_start_(arrival) {
    begin_window(rng);
  }

  bool on_slot(slot_t now, Rng& rng) override {
    while (now >= window_start_ + window_len_) {
      window_start_ += window_len_;
      begin_window(rng);
    }
    return now == window_start_ + send_offset_;
  }

  void on_feedback(slot_t, Feedback, bool, bool) override {}

 private:
  void begin_window(Rng& rng) {
    window_len_ = seq_.next();
    send_offset_ = rng.uniform_u64(window_len_);
  }

  WindowSequence seq_;
  slot_t window_start_;
  std::uint64_t window_len_ = 1;
  std::uint64_t send_offset_ = 0;
};

class WindowedFactory final : public ProtocolFactory {
 public:
  explicit WindowedFactory(WindowedBackoffOptions opts) : opts_(opts) {}

  std::unique_ptr<NodeProtocol> spawn(node_id, slot_t arrival, Rng& rng) override {
    return std::make_unique<WindowedNode>(opts_, arrival, rng);
  }

  std::string name() const override {
    switch (opts_.scheme) {
      case WindowScheme::kBinaryExponential:
        return "beb";
      case WindowScheme::kPolynomial:
        return "poly-backoff(e=" + std::to_string(opts_.poly_exponent) + ")";
      case WindowScheme::kSawtooth:
        return "sawtooth";
    }
    return "windowed";
  }

 private:
  WindowedBackoffOptions opts_;
};

class BackoffNode final : public NodeProtocol {
 public:
  explicit BackoffNode(const FunctionSet* fs) : process_(fs) {}

  bool on_slot(slot_t, Rng& rng) override { return process_.step(rng); }
  void on_feedback(slot_t, Feedback, bool, bool) override {}

 private:
  BackoffProcess process_;
};

class BackoffFactory final : public ProtocolFactory {
 public:
  explicit BackoffFactory(FunctionSet fs) : fs_(std::move(fs)) {}

  std::unique_ptr<NodeProtocol> spawn(node_id, slot_t, Rng&) override {
    return std::make_unique<BackoffNode>(&fs_);
  }

  std::string name() const override { return "h-backoff[" + fs_.describe() + "]"; }

 private:
  FunctionSet fs_;
};

}  // namespace

std::unique_ptr<ProtocolFactory> windowed_backoff_factory(WindowedBackoffOptions opts) {
  return std::make_unique<WindowedFactory>(opts);
}

std::unique_ptr<ProtocolFactory> backoff_protocol_factory(FunctionSet fs) {
  return std::make_unique<BackoffFactory>(std::move(fs));
}

}  // namespace cr
