// The paper's h-backoff subroutine (§2.1).
//
// A node running h-backoff from (channel-local) slot 0 partitions time into
// stages: stage k covers virtual slots [2^k − 1, 2^{k+1} − 1), i.e. has
// length 2^k. Within stage k it broadcasts in h(2^k) slots chosen uniformly
// at random *with replacement* from the stage (duplicate draws collapse into
// a single transmission — sending twice in one slot is just sending).
//
// BackoffProcess implements the subroutine in virtual (channel-local) time;
// the owner advances it exactly once per slot of the channel it runs on.
// This is the adaptive component Theorem 4.2 proves necessary: the set of
// send slots is re-drawn per stage rather than fixed in advance, and the
// per-stage send *count* stays h(stage length) no matter how early slots
// went.
#pragma once

#include <cstdint>
#include <vector>

#include "common/functions.hpp"
#include "common/rng.hpp"

namespace cr {

class BackoffProcess {
 public:
  /// `fs` supplies h := max(1, f/a) via FunctionSet::backoff_sends. The
  /// FunctionSet must outlive the process.
  explicit BackoffProcess(const FunctionSet* fs);

  /// Restart from virtual slot 0 (stage 0). Stage-0 send slots are drawn
  /// lazily on the first step() so resets need no rng (they happen inside
  /// feedback handlers).
  void reset();

  /// Play the next virtual slot; returns true if the node broadcasts in it.
  bool step(Rng& rng);

  /// Virtual slots consumed so far (== number of step() calls since reset).
  std::uint64_t virtual_slots() const { return vslot_; }
  std::uint64_t stage() const { return stage_; }
  std::uint64_t stage_length() const { return stage_len_; }
  /// Distinct send slots drawn for the current stage.
  std::size_t sends_this_stage() const { return send_offsets_.size(); }
  std::uint64_t total_sends() const { return total_sends_; }

 private:
  void begin_stage(std::uint64_t k, Rng& rng);

  const FunctionSet* fs_;
  bool stage_ready_ = false;      // send_offsets_ drawn for current stage?
  std::uint64_t vslot_ = 0;       // next virtual slot index to play
  std::uint64_t stage_ = 0;       // current stage k
  std::uint64_t stage_start_ = 0; // virtual slot where current stage begins
  std::uint64_t stage_len_ = 1;
  std::uint64_t total_sends_ = 0;
  std::vector<std::uint64_t> send_offsets_;  // sorted unique offsets within stage
  std::size_t next_offset_ = 0;
};

/// Stand-alone protocol: runs h-backoff on *every* slot (single-channel
/// setting) until its own message gets through. Used by the E5/E6 benches to
/// demonstrate Theorem 4.2 (adaptive beats non-adaptive under prefix
/// jamming) and the Lemma 4.1 send-count lower bound.
class BackoffProtocolFactory;

}  // namespace cr
