// The paper's h-batch subroutine (§2.1) and probability-profile protocols.
//
// A node running h-batch from slot l broadcasts with probability
// min(1, h(k)) in slot l − 1 + k, for k = 1, 2, ....
//
// With h(x) = 1/x this is exactly the "standard implementation of binary
// exponential backoff" the paper analyses (Claim 3.5.1); with
// h(x) = c₃·log(x)/x it is the Phase-3 control batch.
//
// SendProfile is the value type describing h; ProfileProtocol runs one
// h-batch per node starting at its arrival slot until its own success.
// Profiles ignore all foreign feedback, making ProfileProtocol also the
// *non-adaptive fixed-sequence* protocol family of Theorem 4.2.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/functions.hpp"
#include "protocols/protocol.hpp"

namespace cr {

/// A named per-age sending-probability profile. Age starts at 1.
class SendProfile {
 public:
  SendProfile(std::string name, std::function<double(std::uint64_t)> prob);

  double operator()(std::uint64_t age) const { return prob_(age); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::function<double(std::uint64_t)> prob_;
};

namespace profiles {

/// h_data(k) = min(1, 1/k) — exponential-backoff-style batch.
SendProfile h_data();

/// h_ctrl(k) = min(1, c₃·log2(k+2)/k).
SendProfile h_ctrl(double c3 = 2.0);

/// min(1, c/k^e) — polynomial decay (e = 1 recovers scaled h_data).
SendProfile poly_decay(double c, double e);

/// Constant probability p (slotted ALOHA).
SendProfile aloha(double p);

}  // namespace profiles

/// Nodes run `profile` from their arrival slot until their own success.
class ProfileProtocolFactory final : public ProtocolFactory {
 public:
  explicit ProfileProtocolFactory(SendProfile profile);

  std::unique_ptr<NodeProtocol> spawn(node_id id, slot_t arrival, Rng& rng) override;
  std::string name() const override { return "profile[" + profile_.name() + "]"; }

  const SendProfile& profile() const { return profile_; }

 private:
  SendProfile profile_;
};

}  // namespace cr
