// Backon/backoff protocol for the WITH-collision-detection model.
//
// The paper's introduction contrasts its no-CD setting with the known
// result that, WITH collision detection, constant throughput is attainable
// even under constant-fraction jamming (Awerbuch–Richa–Scheideler '08,
// Bender et al. '18, Chang–Jin–Pettie '19). This module implements the
// simplest representative of that family — a multiplicative backon/backoff
// contention controller:
//
//   each node holds a sending probability p (init p0);
//     on COLLISION heard:  p <- p / mult    (too much contention: back off)
//     on SILENCE heard:    p <- min(p_max, p · mult)  (too little: back on)
//     on SUCCESS heard:    p unchanged      (a departure lowers contention
//                                            by itself)
//
// The ternary feedback is exactly what the no-CD model forbids: silence and
// collision trigger OPPOSITE corrections. This breaks the dilemma behind
// Theorem 1.3, which is why this protocol can deliver Θ(n) batch messages
// in Θ(n) slots under jamming while the best no-CD algorithm pays the
// Θ(log) factor. bench_cd_contrast measures that boundary.
#pragma once

#include <memory>

#include "protocols/protocol.hpp"

namespace cr {

struct CdBackonOptions {
  double p0 = 0.5;      ///< initial sending probability
  double p_max = 0.5;   ///< backon ceiling (p > 1/2 mostly collides)
  double p_min = 1e-9;  ///< floor so recovery stays geometric
  double mult = 2.0;    ///< multiplicative step
};

/// Per-node backon/backoff state machine (requires CD feedback; when run on
/// the no-CD dispatch path it would never hear kSilence and decay forever —
/// itself an instructive failure, see tests).
class CdBackonNode final : public NodeProtocol {
 public:
  explicit CdBackonNode(const CdBackonOptions& opts) : opts_(opts), p_(opts.p0) {}

  bool on_slot(slot_t now, Rng& rng) override;
  void on_feedback(slot_t now, Feedback fb, bool sent, bool own_success) override;
  void on_feedback_cd(slot_t now, CdFeedback fb, bool sent, bool own_success) override;

  double sending_probability() const { return p_; }

 private:
  CdBackonOptions opts_;
  double p_;
};

std::unique_ptr<ProtocolFactory> cd_backon_factory(CdBackonOptions opts = {});

}  // namespace cr
