#include "protocols/batch.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace cr {

SendProfile::SendProfile(std::string name, std::function<double(std::uint64_t)> prob)
    : name_(std::move(name)), prob_(std::move(prob)) {
  CR_CHECK(prob_ != nullptr);
}

namespace profiles {

SendProfile h_data() {
  return SendProfile("h_data", [](std::uint64_t k) {
    return std::min(1.0, 1.0 / static_cast<double>(k));
  });
}

SendProfile h_ctrl(double c3) {
  CR_CHECK(c3 > 0.0);
  std::ostringstream os;
  os << "h_ctrl(c3=" << c3 << ")";
  return SendProfile(os.str(), [c3](std::uint64_t k) {
    const double kd = static_cast<double>(k);
    return std::min(1.0, c3 * std::log2(kd + 2.0) / kd);
  });
}

SendProfile poly_decay(double c, double e) {
  CR_CHECK(c > 0.0 && e > 0.0);
  std::ostringstream os;
  os << c << "/k^" << e;
  return SendProfile(os.str(), [c, e](std::uint64_t k) {
    return std::min(1.0, c / std::pow(static_cast<double>(k), e));
  });
}

SendProfile aloha(double p) {
  CR_CHECK(p > 0.0 && p <= 1.0);
  std::ostringstream os;
  os << "aloha(" << p << ")";
  return SendProfile(os.str(), [p](std::uint64_t) { return p; });
}

}  // namespace profiles

namespace {

class ProfileNode final : public NodeProtocol {
 public:
  ProfileNode(const SendProfile* profile, slot_t arrival)
      : profile_(profile), arrival_(arrival) {}

  bool on_slot(slot_t now, Rng& rng) override {
    CR_DCHECK(now >= arrival_);
    const std::uint64_t age = now - arrival_ + 1;
    return rng.bernoulli((*profile_)(age));
  }

  void on_feedback(slot_t, Feedback, bool, bool) override {
    // Non-adaptive: foreign feedback is ignored; own success removes the
    // node at the engine level.
  }

 private:
  const SendProfile* profile_;
  slot_t arrival_;
};

}  // namespace

ProfileProtocolFactory::ProfileProtocolFactory(SendProfile profile)
    : profile_(std::move(profile)) {}

std::unique_ptr<NodeProtocol> ProfileProtocolFactory::spawn(node_id, slot_t arrival, Rng&) {
  return std::make_unique<ProfileNode>(&profile_, arrival);
}

}  // namespace cr
