#include "protocols/cjz_node.hpp"

#include "common/check.hpp"

namespace cr {

double cjz_ctrl_prob(const FunctionSet& fs, slot_t l3, slot_t now) {
  CR_DCHECK(now >= l3 + 1);
  CR_DCHECK(parity_channel(now) == parity_channel(l3 + 1));
  const std::uint64_t k = (now - (l3 + 1)) / 2 + 1;  // channel-local age, 1-based
  return fs.h_ctrl(static_cast<double>(k));
}

double cjz_data_prob(const FunctionSet& /*fs*/, slot_t l3, slot_t now) {
  CR_DCHECK(now >= l3 + 2);
  CR_DCHECK(parity_channel(now) == parity_channel(l3 + 2));
  const std::uint64_t k = (now - (l3 + 2)) / 2 + 1;
  return FunctionSet::h_data(static_cast<double>(k));
}

CjzNode::CjzNode(const FunctionSet* fs, slot_t arrival, Rng& /*rng*/, CjzOptions options)
    : fs_(fs), opts_(options), backoff_(fs) {
  CR_CHECK(fs_ != nullptr);
  // Phase 1: backoff on the channel determined by the arrival slot's parity,
  // starting at the arrival slot itself.
  bkf_channel_ = parity_channel(arrival);
  bkf_from_ = arrival;
}

bool CjzNode::on_slot(slot_t now, Rng& rng) {
  switch (phase_) {
    case Phase::kOne:
    case Phase::kTwo:
      if (parity_channel(now) == bkf_channel_ && now >= bkf_from_) return backoff_.step(rng);
      return false;
    case Phase::kThree: {
      CR_DCHECK(now >= l3_ + 1);
      const int p = parity_channel(now);
      return rng.bernoulli(cjz_batch_prob(*fs_, l3_, p, p == ctrl_parity_, now));
    }
  }
  CR_CHECK(false);
  return false;
}

void CjzNode::on_feedback(slot_t now, Feedback fb, bool /*sent*/, bool own_success) {
  if (own_success) return;  // engine removes this node; no transition needed
  if (fb != Feedback::kSuccess) return;

  switch (phase_) {
    case Phase::kOne: {
      if (!opts_.use_phase2) {
        // Ablation: skip the synchronization round and enter Phase 3 on the
        // first heard success.
        phase_ = Phase::kThree;
        l3_ = now;
        ctrl_parity_ = opts_.swap_channels_on_restart ? parity_channel(now + 1)
                                                      : parity_channel(now);
        break;
      }
      // First heard success: its slot defines the data channel; run Phase-2
      // backoff on the other channel, starting from the next slot (which is
      // on that other channel by parity).
      phase_ = Phase::kTwo;
      bkf_channel_ = 1 - parity_channel(now);
      bkf_from_ = now + 1;
      // Phase 2 restarts backoff stages from scratch.
      backoff_.reset();
      break;
    }
    case Phase::kTwo:
      if (parity_channel(now) == bkf_channel_) {
        phase_ = Phase::kThree;
        l3_ = now;
        // Cohort convention: a cohort anchored at success slot s has control
        // parity parity(s+1) (paper: the roles swap on every restart) or
        // parity(s) in the pinned-roles ablation.
        ctrl_parity_ = opts_.swap_channels_on_restart ? parity_channel(now + 1)
                                                      : parity_channel(now);
      }
      break;
    case Phase::kThree:
      if (parity_channel(now) == ctrl_parity_) {
        l3_ = now;  // restart
        // Paper: new ctrl = parity(now+1) = 1 - old ctrl (swap). Ablation:
        // parity(now) = old ctrl (pinned).
        if (opts_.swap_channels_on_restart) ctrl_parity_ = 1 - ctrl_parity_;
      }
      break;
  }
}

std::unique_ptr<NodeProtocol> CjzFactory::spawn(node_id, slot_t arrival, Rng& rng) {
  return std::make_unique<CjzNode>(&fs_, arrival, rng, opts_);
}

}  // namespace cr
