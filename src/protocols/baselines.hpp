// Baseline contention-resolution protocols.
//
// * Windowed backoff family (classical BEB, polynomial, sawtooth): a node
//   picks one uniformly random slot per window and the window sequence
//   grows/oscillates per the scheme. These are the schemes related work
//   shows are not constant-throughput.
// * Single-channel h-backoff protocol: the paper's adaptive subroutine run
//   on every slot until own success (used against the Theorem 4.2 / Lemma
//   4.1 adversaries as the "adaptive" contender).
//
// ProfileProtocolFactory (batch.hpp) already covers the non-adaptive
// fixed-probability-sequence family.
#pragma once

#include <cstdint>
#include <memory>

#include "common/functions.hpp"
#include "protocols/protocol.hpp"

namespace cr {

enum class WindowScheme {
  kBinaryExponential,  ///< windows 1, 2, 4, 8, ...
  kPolynomial,         ///< windows 1, 2^e, 3^e, ... (e = poly_exponent)
  kSawtooth,           ///< epochs of halving windows: 2,1, 4,2,1, 8,4,2,1, ...
};

struct WindowedBackoffOptions {
  WindowScheme scheme = WindowScheme::kBinaryExponential;
  double poly_exponent = 2.0;  ///< only for kPolynomial
};

/// Classical windowed backoff: one uniformly-random transmission per window,
/// retrying until the node's own message succeeds. Ignores foreign feedback.
std::unique_ptr<ProtocolFactory> windowed_backoff_factory(WindowedBackoffOptions opts = {});

/// The paper's h-backoff subroutine run on every slot (single channel) until
/// own success. `fs` provides h = max(1, f/a).
std::unique_ptr<ProtocolFactory> backoff_protocol_factory(FunctionSet fs);

}  // namespace cr
