#include "protocols/backoff.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace cr {

BackoffProcess::BackoffProcess(const FunctionSet* fs) : fs_(fs) {
  CR_CHECK(fs_ != nullptr);
  reset();
}

void BackoffProcess::reset() {
  vslot_ = 0;
  total_sends_ = 0;
  stage_ = 0;
  stage_start_ = 0;
  stage_len_ = 1;
  send_offsets_.clear();
  next_offset_ = 0;
  stage_ready_ = false;
}

void BackoffProcess::begin_stage(std::uint64_t k, Rng& rng) {
  stage_ = k;
  stage_len_ = static_cast<std::uint64_t>(1) << k;
  stage_start_ = stage_len_ - 1;  // 2^k − 1
  const unsigned sends = fs_->backoff_sends(stage_len_);
  send_offsets_.clear();
  send_offsets_.reserve(sends);
  for (unsigned i = 0; i < sends; ++i) send_offsets_.push_back(rng.uniform_u64(stage_len_));
  std::sort(send_offsets_.begin(), send_offsets_.end());
  send_offsets_.erase(std::unique(send_offsets_.begin(), send_offsets_.end()),
                      send_offsets_.end());
  next_offset_ = 0;
  stage_ready_ = true;
}

bool BackoffProcess::step(Rng& rng) {
  if (!stage_ready_) begin_stage(stage_, rng);
  if (vslot_ >= stage_start_ + stage_len_) begin_stage(stage_ + 1, rng);
  const std::uint64_t offset = vslot_ - stage_start_;
  ++vslot_;
  bool send = false;
  while (next_offset_ < send_offsets_.size() && send_offsets_[next_offset_] <= offset) {
    if (send_offsets_[next_offset_] == offset) send = true;
    ++next_offset_;
  }
  if (send) ++total_sends_;
  return send;
}

}  // namespace cr
