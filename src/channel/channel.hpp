// Slot resolution for the multiple-access channel.
//
// A Channel object is a per-slot accumulator: begin_slot(), any number of
// broadcast() calls, then resolve() produces the SlotOutcome implementing
// the model semantics:
//   * exactly one broadcaster AND slot not jammed  -> success (winner id)
//   * otherwise                                    -> silence-or-collision
#pragma once

#include "channel/types.hpp"

namespace cr {

class Channel {
 public:
  /// Start accumulating slot `slot`. `jammed` is the adversary's decision,
  /// fixed before any node transmits (the adversary moves first each slot).
  void begin_slot(slot_t slot, bool jammed);

  /// Register a broadcast by `id` in the current slot.
  void broadcast(node_id id);

  /// Finish the current slot and return its ground-truth outcome.
  SlotOutcome resolve();

  slot_t current_slot() const { return cur_.slot; }
  bool slot_open() const { return open_; }

 private:
  SlotOutcome cur_;
  node_id only_sender_ = kNoNode;
  bool open_ = false;
};

/// Pure-function form used by the fast engines (which count senders
/// themselves): resolves the outcome from aggregate counts. `lone_sender`
/// must be the sender's id when `senders == 1` (ignored otherwise).
SlotOutcome resolve_slot(slot_t slot, std::uint64_t senders, bool jammed, node_id lone_sender);

}  // namespace cr
