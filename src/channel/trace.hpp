// Feedback history.
//
// Trace stores ground-truth outcomes (for metrics/tests). PublicHistory is a
// read-only facade over a Trace exposing exactly the information the model
// makes public: per-slot binary feedback plus success bookkeeping. Adversary
// strategies receive PublicHistory only — the type system enforces the
// paper's "Eve has no collision detection either" rule.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/types.hpp"

namespace cr {

class Trace {
 public:
  /// Storage policy: kCounting keeps only the running counters (slots,
  /// successes, jams, last success) and drops per-slot outcomes — what a
  /// lockstep sweep holding thousands of concurrent replications needs,
  /// since the registry's composed adversaries consult exactly those
  /// counters. outcome(s) is unavailable in counting mode (CR_CHECK).
  /// kDisabled keeps nothing at all: the owner promises no component ever
  /// reads the history (the lockstep plan path, whose adversaries are
  /// precomputed), and the engine skips record() entirely — the Trace is a
  /// dead field. Calling record()/advance() on a disabled trace is a bug.
  enum class Storage : std::uint8_t { kFull = 0, kCounting = 1, kDisabled = 2 };

  Trace() = default;
  explicit Trace(Storage storage) : storage_(storage) {}

  /// Record the outcome of the next slot. Outcomes must arrive in slot order
  /// starting at slot 1.
  void record(const SlotOutcome& out);

  /// Account `n` slots that were provably protocol-silent without recording
  /// them individually (the lockstep engine's idle-skip). Counting mode only:
  /// a full trace stores per-slot outcomes and cannot have gaps. The skipped
  /// slots carry no successes; jam accounting for them is the caller's
  /// responsibility (the engine tallies skipped jams outside the trace).
  void advance(slot_t n);

  slot_t slots() const { return slots_; }
  bool empty() const { return slots_ == 0; }
  Storage storage() const { return storage_; }

  /// Ground truth for slot s in [1, slots()]. Requires Storage::kFull.
  const SlotOutcome& outcome(slot_t s) const;

  std::uint64_t total_successes() const { return total_successes_; }
  std::uint64_t total_jammed() const { return total_jammed_; }
  /// 0 when no success yet.
  slot_t last_success_slot() const { return last_success_slot_; }

 private:
  std::vector<SlotOutcome> outcomes_;
  Storage storage_ = Storage::kFull;
  slot_t slots_ = 0;
  std::uint64_t total_successes_ = 0;
  std::uint64_t total_jammed_ = 0;
  slot_t last_success_slot_ = 0;
};

/// The adversary's (and conceptually every node's) view of the past.
class PublicHistory {
 public:
  explicit PublicHistory(const Trace& trace) : trace_(&trace) {}

  /// Number of completed slots (the upcoming slot is slots()+1).
  slot_t slots() const { return trace_->slots(); }

  Feedback feedback(slot_t s) const { return trace_->outcome(s).feedback(); }
  bool was_success(slot_t s) const { return feedback(s) == Feedback::kSuccess; }

  std::uint64_t total_successes() const { return trace_->total_successes(); }
  slot_t last_success_slot() const { return trace_->last_success_slot(); }

 private:
  const Trace* trace_;
};

}  // namespace cr
