#include "channel/trace.hpp"

#include "common/check.hpp"

namespace cr {

void Trace::record(const SlotOutcome& out) {
  CR_DCHECK(storage_ != Storage::kDisabled);
  CR_CHECK(out.slot == slots_ + 1);
  ++slots_;
  if (storage_ == Storage::kFull) outcomes_.push_back(out);
  if (out.success()) {
    ++total_successes_;
    last_success_slot_ = out.slot;
  }
  if (out.jammed) ++total_jammed_;
}

void Trace::advance(slot_t n) {
  CR_CHECK(storage_ == Storage::kCounting);
  slots_ += n;
}

const SlotOutcome& Trace::outcome(slot_t s) const {
  CR_CHECK(storage_ == Storage::kFull);
  CR_CHECK(s >= 1 && s <= slots());
  return outcomes_[s - 1];
}

}  // namespace cr
