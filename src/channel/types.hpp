// Core model types: slots, node ids, channel feedback.
//
// Slots are 1-based (as in the paper). The multiple-access channel has no
// collision detection: public feedback per slot is binary — either a success
// carrying the winner's id, or "silence-or-collision" which conflates an
// empty slot, a collision, and a jammed slot.
//
// The odd/even "conceptual channels" of the algorithm are pure slot-parity
// views; parity_channel() is the single source of truth for that mapping.
#pragma once

#include <cstdint>

namespace cr {

using slot_t = std::uint64_t;
using node_id = std::uint64_t;

inline constexpr node_id kNoNode = ~static_cast<node_id>(0);

/// Public channel feedback (identical for nodes and the adversary).
enum class Feedback : std::uint8_t {
  kSilenceOrCollision = 0,  ///< zero senders, >=2 senders, or jammed
  kSuccess = 1,             ///< exactly one sender, slot not jammed
};

/// Conceptual channel of an absolute slot: 0 = even slots, 1 = odd slots.
inline int parity_channel(slot_t slot) { return static_cast<int>(slot & 1); }

/// Ternary feedback when a collision-detection mechanism IS available — the
/// model the paper contrasts against (its own algorithms never see this;
/// only protocols overriding NodeProtocol::on_feedback_cd do).
enum class CdFeedback : std::uint8_t {
  kSilence = 0,    ///< no transmissions and the slot was not jammed
  kCollision = 1,  ///< >=2 transmissions, or any jammed slot
  kSuccess = 2,
};

/// Ground-truth outcome of one slot (the simulator's record; the `jammed`
/// and `senders` fields are NOT visible to nodes or the adversary).
struct SlotOutcome {
  slot_t slot = 0;
  std::uint64_t senders = 0;
  bool jammed = false;
  node_id winner = kNoNode;

  friend bool operator==(const SlotOutcome&, const SlotOutcome&) = default;

  bool success() const { return winner != kNoNode; }
  Feedback feedback() const {
    return success() ? Feedback::kSuccess : Feedback::kSilenceOrCollision;
  }
  /// What a collision-detection-capable receiver would hear. A jammed slot
  /// always sounds like a collision (the paper's jamming semantics).
  CdFeedback cd_feedback() const {
    if (success()) return CdFeedback::kSuccess;
    if (jammed || senders >= 2) return CdFeedback::kCollision;
    return CdFeedback::kSilence;
  }
};

}  // namespace cr
