#include "channel/channel.hpp"

#include "common/check.hpp"

namespace cr {

void Channel::begin_slot(slot_t slot, bool jammed) {
  CR_CHECK(!open_);
  cur_ = SlotOutcome{};
  cur_.slot = slot;
  cur_.jammed = jammed;
  only_sender_ = kNoNode;
  open_ = true;
}

void Channel::broadcast(node_id id) {
  CR_DCHECK(open_);
  ++cur_.senders;
  only_sender_ = (cur_.senders == 1) ? id : kNoNode;
}

SlotOutcome Channel::resolve() {
  CR_CHECK(open_);
  open_ = false;
  cur_.winner = (cur_.senders == 1 && !cur_.jammed) ? only_sender_ : kNoNode;
  return cur_;
}

SlotOutcome resolve_slot(slot_t slot, std::uint64_t senders, bool jammed, node_id lone_sender) {
  SlotOutcome out;
  out.slot = slot;
  out.senders = senders;
  out.jammed = jammed;
  out.winner = (senders == 1 && !jammed) ? lone_sender : kNoNode;
  return out;
}

}  // namespace cr
