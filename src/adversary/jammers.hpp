// Jamming strategies.
//
// Each jammer is a per-slot predicate over public history. Budgeted jammers
// implement the d_t ≤ t/(c·g(t)) envelopes from the paper's (f,g)-throughput
// definition; the reactive jammer is an *adaptive* strategy that spends its
// budget right after observed successes (the most disruptive slot choice
// available to an adversary without collision detection).
#pragma once

#include <cstdint>
#include <memory>

#include "adversary/adversary.hpp"
#include "common/functions.hpp"

namespace cr {

/// Never jams.
std::unique_ptr<Jammer> no_jam();

/// Jams each slot independently with probability `fraction` (the
/// constant-fraction regime; pair with g = const).
std::unique_ptr<Jammer> iid_jammer(double fraction);

/// Jams slots [1, count] — the pattern that defeats plain exponential
/// backoff (Theorem 4.2's adversary uses this as its first move).
std::unique_ptr<Jammer> prefix_jammer(slot_t count);

/// Jams `burst` consecutive slots at the start of every `period` slots.
std::unique_ptr<Jammer> periodic_jammer(slot_t period, slot_t burst);

/// Keeps cumulative jamming d_t tracking t / (margin · g(t)): the maximal
/// envelope an (f,g)-throughput algorithm must tolerate. Spends the budget
/// greedily (front-loaded), which is the harshest paced schedule.
std::unique_ptr<Jammer> budget_paced_jammer(GrowthFn g, double margin);

/// Adaptive: after each observed success, jams the next `burst` slots,
/// subject to the same t/(margin·g(t)) budget. Models an attacker trying to
/// break the algorithm's success-driven synchronization.
std::unique_ptr<Jammer> reactive_jammer(GrowthFn g, double margin, slot_t burst = 2);

}  // namespace cr
