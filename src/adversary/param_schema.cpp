#include "adversary/param_schema.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "common/check.hpp"
#include "common/cli.hpp"

namespace cr {

std::string param_type_name(ParamType type) {
  switch (type) {
    case ParamType::kUint: return "uint";
    case ParamType::kDouble: return "double";
  }
  return "?";
}

ParamSchema::ParamSchema(std::initializer_list<ParamDef> defs) : defs_(defs) {
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    CR_CHECK(!defs_[i].name.empty());
    // Declared defaults must themselves validate — they are what the docs
    // advertise and what ParamValues falls back to.
    if (defs_[i].type == ParamType::kUint) {
      std::uint64_t u = 0;
      CR_CHECK(parse_uint_text(defs_[i].default_text, &u));
    } else {
      double d = 0.0;
      CR_CHECK(parse_double_text(defs_[i].default_text, &d));
    }
    for (std::size_t j = 0; j < i; ++j) CR_CHECK(defs_[j].name != defs_[i].name);
  }
}

const ParamDef* ParamSchema::find(const std::string& name) const {
  for (const ParamDef& def : defs_)
    if (def.name == name) return &def;
  return nullptr;
}

bool parse_uint_text(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

std::string double_param_text(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

bool parse_double_text(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

std::uint64_t ParamValues::get_uint(const std::string& name) const {
  const ParamDef* def = schema_ == nullptr ? nullptr : schema_->find(name);
  CR_CHECK(def != nullptr && def->type == ParamType::kUint);
  std::uint64_t value = 0;
  CR_CHECK(parse_uint_text(text(name), &value));
  return value;
}

double ParamValues::get_double(const std::string& name) const {
  const ParamDef* def = schema_ == nullptr ? nullptr : schema_->find(name);
  CR_CHECK(def != nullptr && def->type == ParamType::kDouble);
  double value = 0.0;
  CR_CHECK(parse_double_text(text(name), &value));
  return value;
}

const std::string& ParamValues::text(const std::string& name) const {
  CR_CHECK(schema_ != nullptr);
  const auto& defs = schema_->defs();
  for (std::size_t i = 0; i < defs.size(); ++i)
    if (defs[i].name == name) return texts_[i];
  CR_CHECK(false);  // unreachable: getters are schema-checked above
  return texts_.front();
}

ParamValidation ParamValidation::check(
    const ParamSchema& schema, const std::vector<std::pair<std::string, std::string>>& params,
    const std::string& subject) {
  ParamValidation out;
  out.values.schema_ = &schema;
  out.values.texts_.reserve(schema.defs().size());
  for (const ParamDef& def : schema.defs()) out.values.texts_.push_back(def.default_text);

  std::set<std::string> seen;
  for (const auto& [key, value] : params) {
    const ParamDef* def = schema.find(key);
    if (def == nullptr) {
      std::vector<std::string> known;
      known.reserve(schema.defs().size());
      for (const ParamDef& d : schema.defs()) known.push_back(d.name);
      out.error = subject + " does not take a parameter \"" + key + "\"";
      const std::string hint = closest_match(key, known);
      if (!hint.empty()) out.error += " (did you mean \"" + hint + "\"?)";
      if (known.empty()) {
        out.error += "; it takes no parameters";
      } else {
        out.error += "; its parameters are:";
        for (const std::string& name : known) out.error += " " + name;
      }
      return out;
    }
    if (!seen.insert(key).second) {
      out.error = subject + ": parameter \"" + key + "\" given twice";
      return out;
    }
    const bool parses = def->type == ParamType::kUint
                            ? [&] { std::uint64_t u; return parse_uint_text(value, &u); }()
                            : [&] { double d; return parse_double_text(value, &d); }();
    if (!parses) {
      out.error = subject + ": parameter \"" + key + "\" expects a " +
                  param_type_name(def->type) + ", got \"" + value + "\"";
      return out;
    }
    for (std::size_t i = 0; i < schema.defs().size(); ++i)
      if (schema.defs()[i].name == key) out.values.texts_[i] = value;
  }
  return out;
}

}  // namespace cr
