/// \file
/// ArrivalRegistry and JammerRegistry — the fourth and fifth name-keyed
/// registries (after engines, scenarios and benches): every arrival process
/// and jamming strategy registers a name, a description and a ParamSchema,
/// and becomes composable into any WorkloadSpec (src/exp/workload.hpp)
/// without new C++.
///
/// Both registries share the shape of the other three (find/at,
/// names/entries, register_* as the extension point; registration is
/// explicit and not thread-safe — register before fanning out runs).
/// Factories receive validated ParamValues plus a WorkloadContext carrying
/// the run-level values components may depend on (the FunctionSet for paced
/// envelopes, the horizon for default windows, the seed for construction-time
/// randomness) — so a component parameter can default to "the run's horizon"
/// without the caller wiring it through by hand.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adversary/adversary.hpp"
#include "adversary/param_schema.hpp"
#include "common/functions.hpp"

namespace cr {

/// Run-level values a component factory may consume in addition to its own
/// parameters.
struct WorkloadContext {
  const FunctionSet& fs;  ///< the (f, g) pair the protocol under test runs on
  slot_t horizon = 0;     ///< the run's slot horizon
  std::uint64_t seed = 0;  ///< the run seed (construction-time randomness)
};

struct ArrivalEntry {
  std::string name;
  std::string description;
  ParamSchema schema;
  std::unique_ptr<ArrivalProcess> (*make)(const ParamValues&, const WorkloadContext&);
};

struct JammerEntry {
  std::string name;
  std::string description;
  ParamSchema schema;
  std::unique_ptr<Jammer> (*make)(const ParamValues&, const WorkloadContext&);
};

/// Name-keyed registry of arrival processes. Seeded with the built-ins
/// ("none", "batch", "bernoulli", "uniform_random", "paced", "bursty").
class ArrivalRegistry {
 public:
  static ArrivalRegistry& instance();

  /// nullptr when unknown.
  const ArrivalEntry* find(const std::string& name) const;
  /// Aborts (CR_CHECK) on unknown names, after printing the known set;
  /// WorkloadSpec validation reports unknown names gracefully upstream.
  const ArrivalEntry& at(const std::string& name) const;

  std::vector<std::string> names() const;
  const std::vector<ArrivalEntry>& entries() const { return entries_; }

  void register_arrival(ArrivalEntry entry);

 private:
  ArrivalRegistry();
  std::vector<ArrivalEntry> entries_;
};

/// Name-keyed registry of jamming strategies. Seeded with the built-ins
/// ("none", "iid", "prefix", "periodic", "budget_paced", "reactive").
class JammerRegistry {
 public:
  static JammerRegistry& instance();

  const JammerEntry* find(const std::string& name) const;
  const JammerEntry& at(const std::string& name) const;

  std::vector<std::string> names() const;
  const std::vector<JammerEntry>& entries() const { return entries_; }

  void register_jammer(JammerEntry entry);

 private:
  JammerRegistry();
  std::vector<JammerEntry> entries_;
};

}  // namespace cr
