#include "adversary/jammers.hpp"

#include <cmath>

#include "common/check.hpp"

namespace cr {
namespace {

class NoJam final : public Jammer {
 public:
  bool jams(slot_t, const PublicHistory&, Rng&) override { return false; }
  std::string name() const override { return "nojam"; }
};

class IidJammer final : public Jammer {
 public:
  explicit IidJammer(double fraction) : fraction_(fraction) {
    CR_CHECK(fraction >= 0.0 && fraction <= 1.0);
  }
  bool jams(slot_t, const PublicHistory&, Rng& rng) override { return rng.bernoulli(fraction_); }
  std::string name() const override { return "iid(" + std::to_string(fraction_) + ")"; }

 private:
  double fraction_;
};

class PrefixJammer final : public Jammer {
 public:
  explicit PrefixJammer(slot_t count) : count_(count) {}
  bool jams(slot_t slot, const PublicHistory&, Rng&) override { return slot <= count_; }
  std::string name() const override { return "prefix(" + std::to_string(count_) + ")"; }

 private:
  slot_t count_;
};

class PeriodicJammer final : public Jammer {
 public:
  PeriodicJammer(slot_t period, slot_t burst) : period_(period), burst_(burst) {
    CR_CHECK(period >= 1);
    CR_CHECK(burst <= period);
  }
  bool jams(slot_t slot, const PublicHistory&, Rng&) override {
    return ((slot - 1) % period_) < burst_;
  }
  std::string name() const override {
    return "periodic(" + std::to_string(burst_) + "/" + std::to_string(period_) + ")";
  }

 private:
  slot_t period_, burst_;
};

class BudgetPacedJammer final : public Jammer {
 public:
  BudgetPacedJammer(GrowthFn g, double margin) : g_(std::move(g)), margin_(margin) {
    CR_CHECK(margin > 0.0);
  }
  bool jams(slot_t slot, const PublicHistory&, Rng&) override {
    const double t = static_cast<double>(slot);
    const double budget = t / (margin_ * g_(t));
    if (static_cast<double>(jammed_) + 1.0 > budget) return false;
    ++jammed_;
    return true;
  }
  std::string name() const override { return "paced(1/" + std::to_string(margin_) + "g)"; }

 private:
  GrowthFn g_;
  double margin_;
  std::uint64_t jammed_ = 0;
};

class ReactiveJammer final : public Jammer {
 public:
  ReactiveJammer(GrowthFn g, double margin, slot_t burst)
      : g_(std::move(g)), margin_(margin), burst_(burst) {
    CR_CHECK(margin > 0.0);
    CR_CHECK(burst >= 1);
  }
  bool jams(slot_t slot, const PublicHistory& history, Rng&) override {
    const slot_t last = history.last_success_slot();
    const bool wants = last != 0 && slot > last && slot <= last + burst_;
    if (!wants) return false;
    const double t = static_cast<double>(slot);
    const double budget = t / (margin_ * g_(t));
    if (static_cast<double>(jammed_) + 1.0 > budget) return false;
    ++jammed_;
    return true;
  }
  std::string name() const override { return "reactive(burst=" + std::to_string(burst_) + ")"; }

 private:
  GrowthFn g_;
  double margin_;
  slot_t burst_;
  std::uint64_t jammed_ = 0;
};

}  // namespace

std::unique_ptr<Jammer> no_jam() { return std::make_unique<NoJam>(); }

std::unique_ptr<Jammer> iid_jammer(double fraction) { return std::make_unique<IidJammer>(fraction); }

std::unique_ptr<Jammer> prefix_jammer(slot_t count) { return std::make_unique<PrefixJammer>(count); }

std::unique_ptr<Jammer> periodic_jammer(slot_t period, slot_t burst) {
  return std::make_unique<PeriodicJammer>(period, burst);
}

std::unique_ptr<Jammer> budget_paced_jammer(GrowthFn g, double margin) {
  return std::make_unique<BudgetPacedJammer>(std::move(g), margin);
}

std::unique_ptr<Jammer> reactive_jammer(GrowthFn g, double margin, slot_t burst) {
  return std::make_unique<ReactiveJammer>(std::move(g), margin, burst);
}

}  // namespace cr
