// Adversary framework.
//
// An adversary decides, at the start of each slot and based only on public
// feedback, (a) whether to jam the slot and (b) how many new nodes to
// inject. Per the model this makes it exactly as powerful as the paper's
// adaptive Eve: it moves first each slot and sees the same channel feedback
// as the nodes (no collision detection).
//
// Most experiments compose an ArrivalProcess with a Jammer via
// ComposedAdversary; the scripted lower-bound adversaries implement
// Adversary directly (see proof_adversaries.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "channel/trace.hpp"
#include "channel/types.hpp"
#include "common/rng.hpp"

namespace cr {

struct AdversaryAction {
  bool jam = false;
  std::uint64_t inject = 0;  ///< nodes arriving at the beginning of this slot
};

class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Decide the action for `slot` (== history.slots() + 1).
  virtual AdversaryAction on_slot(slot_t slot, const PublicHistory& history, Rng& rng) = 0;

  virtual std::string name() const = 0;
};

/// Arrival side of a composed adversary.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  virtual std::uint64_t arrivals(slot_t slot, const PublicHistory& history, Rng& rng) = 0;
  virtual std::string name() const = 0;
};

/// Jamming side of a composed adversary.
class Jammer {
 public:
  virtual ~Jammer() = default;
  virtual bool jams(slot_t slot, const PublicHistory& history, Rng& rng) = 0;
  virtual std::string name() const = 0;
};

/// Composes an ArrivalProcess with a Jammer. Each component draws from its
/// own forked RNG stream (derived from the engine's adversary stream on the
/// first slot), so swapping one component never perturbs the other's draw
/// sequence — workload axes stay independent under a fixed seed
/// (tests/test_adversary.cpp, ComposedAdversaryStreams.*).
class ComposedAdversary final : public Adversary {
 public:
  ComposedAdversary(std::unique_ptr<ArrivalProcess> arrivals, std::unique_ptr<Jammer> jammer);

  AdversaryAction on_slot(slot_t slot, const PublicHistory& history, Rng& rng) override;
  std::string name() const override;

 private:
  std::unique_ptr<ArrivalProcess> arrivals_;
  std::unique_ptr<Jammer> jammer_;
  /// Per-component streams, forked lazily from the first on_slot rng (which
  /// the engine hands over unconsumed — fork() itself draws nothing).
  bool streams_forked_ = false;
  Rng arrival_rng_;
  Rng jammer_rng_;
};

}  // namespace cr
