// Arrival processes.
//
// All processes are deterministic functions of (slot, public history, rng);
// randomized ones draw from the rng the engine passes in, so runs stay
// reproducible per seed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "adversary/adversary.hpp"
#include "common/functions.hpp"

namespace cr {

/// No arrivals at all (useful with pre-seeded batches handled elsewhere).
std::unique_ptr<ArrivalProcess> no_arrivals();

/// `n` nodes arrive simultaneously at `at_slot` (the paper's batch setting).
std::unique_ptr<ArrivalProcess> batch_arrival(std::uint64_t n, slot_t at_slot = 1);

/// Explicit schedule: (slot, count) pairs. Slots may repeat.
std::unique_ptr<ArrivalProcess> scheduled_arrivals(std::vector<std::pair<slot_t, std::uint64_t>> schedule);

/// Bernoulli stream: each slot in [from, to] one node arrives w.p. `rate`
/// (rate > 1 injects floor(rate) plus a fractional coin).
std::unique_ptr<ArrivalProcess> bernoulli_arrivals(double rate, slot_t from = 1,
                                                   slot_t to = ~static_cast<slot_t>(0));

/// `total` arrival instants drawn uniformly at random from [1, horizon]
/// (with replacement), fixed at construction time from `seed`. This is the
/// "random-injected" pattern of Lemma 4.1.
std::unique_ptr<ArrivalProcess> uniform_random_arrivals(std::uint64_t total, slot_t horizon,
                                                        std::uint64_t seed);

/// Paced ("smooth") arrivals: keeps cumulative arrivals n_t tracking
/// target(t) = t / (margin · f(t)) for the FunctionSet's f — the heaviest
/// arrival pattern a (f,g)-throughput algorithm can absorb while staying
/// below capacity (Corollary 3.6's smoothness condition).
std::unique_ptr<ArrivalProcess> paced_arrivals(FunctionSet fs, double margin, slot_t until = ~static_cast<slot_t>(0));

/// Bursty adversarial arrivals: every `period` slots, injects `burst` nodes.
std::unique_ptr<ArrivalProcess> bursty_arrivals(slot_t period, std::uint64_t burst,
                                                slot_t from = 1,
                                                slot_t to = ~static_cast<slot_t>(0));

}  // namespace cr
