/// \file
/// Typed parameter schemas for self-describing workload components.
///
/// Every registered arrival process and jammer declares a ParamSchema: the
/// full list of parameters it consumes, each with a type, a default and a
/// one-line help string. Validation is structural and total — a key the
/// schema does not declare is a hard error naming the offending key, and a
/// value that does not parse as its declared type is a hard error too. This
/// is what kills the "silent no-op parameter" class of bugs: there is no
/// code path on which an unknown or unconsumed parameter is quietly
/// ignored.
///
/// The same declarations feed `cr list --md` (docs/EXPERIMENTS.md grows a
/// table per component) and `cr bench workload --help`, so the docs cannot
/// drift from what validation actually accepts.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cr {

enum class ParamType {
  kUint,    ///< non-negative integer (fits std::uint64_t, decimal digits)
  kDouble,  ///< finite decimal number
};

/// "uint" / "double", for docs and error messages.
std::string param_type_name(ParamType type);

/// One declared parameter of a workload component.
struct ParamDef {
  std::string name;          ///< key as written in flags/manifests
  ParamType type = ParamType::kDouble;
  std::string default_text;  ///< default value, in source text form
  std::string help;          ///< one-line description for docs/--help
};

/// Ordered list of ParamDefs with unique names.
class ParamSchema {
 public:
  ParamSchema() = default;
  ParamSchema(std::initializer_list<ParamDef> defs);

  /// nullptr when `name` is not declared.
  const ParamDef* find(const std::string& name) const;

  const std::vector<ParamDef>& defs() const { return defs_; }
  bool empty() const { return defs_.empty(); }

 private:
  std::vector<ParamDef> defs_;
};

/// Validated, typed parameter values for one component: every declared
/// parameter resolves to either the supplied text or its default, and the
/// typed getters never fail (validation already proved the text parses).
class ParamValues {
 public:
  std::uint64_t get_uint(const std::string& name) const;
  double get_double(const std::string& name) const;

  /// The raw text backing `name` (supplied or default).
  const std::string& text(const std::string& name) const;

 private:
  friend struct ParamValidation;
  const ParamSchema* schema_ = nullptr;
  /// Parallel to schema_->defs(): resolved text per parameter.
  std::vector<std::string> texts_;
};

/// Outcome of validating a (key, value) list against a schema.
struct ParamValidation {
  ParamValues values;
  std::string error;  ///< empty on success; names the offending key otherwise

  bool ok() const { return error.empty(); }

  /// Validate `params` against `schema`. `subject` names the component in
  /// error messages (e.g. "arrival \"bernoulli\""). Errors: a key the schema
  /// does not declare (with a did-you-mean suggestion when one is close), a
  /// duplicated key, or a value that does not parse as the declared type.
  static ParamValidation check(const ParamSchema& schema,
                               const std::vector<std::pair<std::string, std::string>>& params,
                               const std::string& subject);
};

/// Strict scalar parses shared by the validator (and usable by callers that
/// pre-screen values): whole string must parse, no sign for uints, finite
/// doubles only.
bool parse_uint_text(const std::string& text, std::uint64_t* out);
bool parse_double_text(const std::string& text, double* out);

/// Round-trip-exact text for a double param value (%.17g — survives
/// parse_double_text bit-for-bit). Presets use it to serialize derived
/// parameter values.
std::string double_param_text(double v);

}  // namespace cr
