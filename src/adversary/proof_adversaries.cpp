#include "adversary/proof_adversaries.hpp"

#include <cmath>
#include <map>
#include <utility>

#include "common/check.hpp"

namespace cr {
namespace {

class Lemma41Adversary final : public Adversary {
 public:
  Lemma41Adversary(slot_t t, double x1, GrowthFn h, std::uint64_t seed) : t_(t) {
    CR_CHECK(t >= 16);
    CR_CHECK(x1 > 0.0 && x1 <= 1.0);
    const double td = static_cast<double>(t);
    const auto batch_per_slot =
        static_cast<std::uint64_t>(std::ceil(3.0 * std::log2(td) / x1));
    const auto sqrt_t = static_cast<slot_t>(std::floor(std::sqrt(td)));
    for (slot_t s = 1; s <= sqrt_t; ++s) inject_[s] += batch_per_slot;
    const auto randoms = static_cast<std::uint64_t>(td / (2.0 * h(td)));
    Rng rng(seed);
    for (std::uint64_t i = 0; i < randoms; ++i) inject_[1 + rng.uniform_u64(t)] += 1;
  }

  AdversaryAction on_slot(slot_t slot, const PublicHistory&, Rng&) override {
    AdversaryAction act;
    const auto it = inject_.find(slot);
    if (it != inject_.end()) act.inject = it->second;
    return act;
  }

  std::string name() const override { return "lemma4.1"; }

 private:
  slot_t t_;
  std::map<slot_t, std::uint64_t> inject_;
};

class Theorem13Adversary final : public Adversary {
 public:
  Theorem13Adversary(slot_t t, GrowthFn g, std::uint64_t seed) : t_(t) {
    CR_CHECK(t >= 16);
    const double td = static_cast<double>(t);
    prefix_ = static_cast<slot_t>(std::max(1.0, td / (4.0 * g(td))));
    // t/(4g) random jam slots from (prefix, t].
    Rng rng(seed);
    const auto randoms = static_cast<std::uint64_t>(td / (4.0 * g(td)));
    const slot_t span = t_ - prefix_;
    for (std::uint64_t i = 0; i < randoms && span > 0; ++i)
      random_jams_[prefix_ + 1 + rng.uniform_u64(span)] = true;
  }

  AdversaryAction on_slot(slot_t slot, const PublicHistory&, Rng&) override {
    AdversaryAction act;
    act.inject = (slot == 1) ? 1 : 0;
    act.jam = slot <= prefix_ || slot == t_ || random_jams_.count(slot) > 0;
    return act;
  }

  std::string name() const override { return "theorem1.3"; }

 private:
  slot_t t_;
  slot_t prefix_ = 0;
  std::map<slot_t, bool> random_jams_;
};

class Theorem42Adversary final : public Adversary {
 public:
  Theorem42Adversary(slot_t t, const FunctionSet& fs) : t_(t) {
    CR_CHECK(t >= 16);
    const double td = static_cast<double>(t);
    prefix_ = static_cast<slot_t>(std::max(1.0, td / (4.0 * fs.g(td))));
    last_burst_ = static_cast<std::uint64_t>(std::max(1.0, td / (4.0 * fs.f(td))));
  }

  AdversaryAction on_slot(slot_t slot, const PublicHistory&, Rng&) override {
    AdversaryAction act;
    act.jam = slot <= prefix_ || slot == t_;
    if (slot == 1) act.inject = 2;
    if (slot == t_) act.inject = last_burst_;
    return act;
  }

  std::string name() const override { return "theorem4.2"; }

 private:
  slot_t t_;
  slot_t prefix_ = 0;
  std::uint64_t last_burst_ = 0;
};

}  // namespace

std::unique_ptr<Adversary> lemma41_adversary(slot_t t, double x1, GrowthFn h, std::uint64_t seed) {
  return std::make_unique<Lemma41Adversary>(t, x1, std::move(h), seed);
}

std::unique_ptr<Adversary> theorem13_adversary(slot_t t, GrowthFn g, std::uint64_t seed) {
  return std::make_unique<Theorem13Adversary>(t, std::move(g), seed);
}

std::unique_ptr<Adversary> theorem42_adversary(slot_t t, const FunctionSet& fs) {
  return std::make_unique<Theorem42Adversary>(t, fs);
}

}  // namespace cr
