#include "adversary/arrivals.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/stream_tags.hpp"

namespace cr {

ComposedAdversary::ComposedAdversary(std::unique_ptr<ArrivalProcess> arrivals,
                                     std::unique_ptr<Jammer> jammer)
    : arrivals_(std::move(arrivals)), jammer_(std::move(jammer)) {
  CR_CHECK(arrivals_ != nullptr);
  CR_CHECK(jammer_ != nullptr);
}

AdversaryAction ComposedAdversary::on_slot(slot_t slot, const PublicHistory& history, Rng& rng) {
  // Fork one stream per component so the jammer's and the arrival process's
  // draw sequences are independent: swapping one workload axis cannot shift
  // the other's randomness. The engine hands the adversary stream over
  // unconsumed on the first slot, so both forks are pure functions of the
  // run seed.
  if (!streams_forked_) {
    arrival_rng_ = rng.fork(streams::kArrival);
    jammer_rng_ = rng.fork(streams::kJammer);
    streams_forked_ = true;
  }
  AdversaryAction act;
  // Jamming decision first: it may not depend on this slot's arrivals per the
  // model (both are decided before the slot plays out); a fixed order also
  // keeps the observable trace deterministic.
  act.jam = jammer_->jams(slot, history, jammer_rng_);
  act.inject = arrivals_->arrivals(slot, history, arrival_rng_);
  return act;
}

std::string ComposedAdversary::name() const {
  return arrivals_->name() + "+" + jammer_->name();
}

namespace {

class NoArrivals final : public ArrivalProcess {
 public:
  std::uint64_t arrivals(slot_t, const PublicHistory&, Rng&) override { return 0; }
  std::string name() const override { return "none"; }
};

class BatchArrival final : public ArrivalProcess {
 public:
  BatchArrival(std::uint64_t n, slot_t at) : n_(n), at_(at) {}
  std::uint64_t arrivals(slot_t slot, const PublicHistory&, Rng&) override {
    return slot == at_ ? n_ : 0;
  }
  std::string name() const override { return "batch(" + std::to_string(n_) + ")"; }

 private:
  std::uint64_t n_;
  slot_t at_;
};

class ScheduledArrivals final : public ArrivalProcess {
 public:
  explicit ScheduledArrivals(std::vector<std::pair<slot_t, std::uint64_t>> schedule) {
    for (const auto& [slot, count] : schedule) counts_[slot] += count;
  }
  std::uint64_t arrivals(slot_t slot, const PublicHistory&, Rng&) override {
    const auto it = counts_.find(slot);
    return it == counts_.end() ? 0 : it->second;
  }
  std::string name() const override { return "scheduled"; }

 private:
  std::map<slot_t, std::uint64_t> counts_;
};

class BernoulliArrivals final : public ArrivalProcess {
 public:
  BernoulliArrivals(double rate, slot_t from, slot_t to) : rate_(rate), from_(from), to_(to) {
    CR_CHECK(rate >= 0.0);
  }
  std::uint64_t arrivals(slot_t slot, const PublicHistory&, Rng& rng) override {
    if (slot < from_ || slot > to_) return 0;
    const auto whole = static_cast<std::uint64_t>(rate_);
    const double frac = rate_ - static_cast<double>(whole);
    return whole + (rng.bernoulli(frac) ? 1 : 0);
  }
  std::string name() const override { return "bernoulli(" + std::to_string(rate_) + ")"; }

 private:
  double rate_;
  slot_t from_, to_;
};

class UniformRandomArrivals final : public ArrivalProcess {
 public:
  UniformRandomArrivals(std::uint64_t total, slot_t horizon, std::uint64_t seed) {
    CR_CHECK(horizon >= 1);
    Rng rng(seed);
    for (std::uint64_t i = 0; i < total; ++i) counts_[1 + rng.uniform_u64(horizon)] += 1;
  }
  std::uint64_t arrivals(slot_t slot, const PublicHistory&, Rng&) override {
    const auto it = counts_.find(slot);
    return it == counts_.end() ? 0 : it->second;
  }
  std::string name() const override { return "uniform-random"; }

 private:
  std::map<slot_t, std::uint64_t> counts_;
};

class PacedArrivals final : public ArrivalProcess {
 public:
  PacedArrivals(FunctionSet fs, double margin, slot_t until)
      : fs_(std::move(fs)), margin_(margin), until_(until) {
    CR_CHECK(margin > 0.0);
  }
  std::uint64_t arrivals(slot_t slot, const PublicHistory&, Rng&) override {
    if (slot > until_) return 0;
    const double t = static_cast<double>(slot);
    const double target = t / (margin_ * fs_.f(t));
    if (static_cast<double>(injected_) >= target) return 0;
    const auto deficit = static_cast<std::uint64_t>(target - static_cast<double>(injected_));
    injected_ += deficit;
    return deficit;
  }
  std::string name() const override { return "paced(1/" + std::to_string(margin_) + "f)"; }

 private:
  FunctionSet fs_;
  double margin_;
  slot_t until_;
  std::uint64_t injected_ = 0;
};

class BurstyArrivals final : public ArrivalProcess {
 public:
  BurstyArrivals(slot_t period, std::uint64_t burst, slot_t from, slot_t to)
      : period_(period), burst_(burst), from_(from), to_(to) {
    CR_CHECK(period >= 1);
  }
  std::uint64_t arrivals(slot_t slot, const PublicHistory&, Rng&) override {
    if (slot < from_ || slot > to_) return 0;
    return ((slot - from_) % period_ == 0) ? burst_ : 0;
  }
  std::string name() const override {
    return "bursty(" + std::to_string(burst_) + "/" + std::to_string(period_) + ")";
  }

 private:
  slot_t period_;
  std::uint64_t burst_;
  slot_t from_, to_;
};

}  // namespace

std::unique_ptr<ArrivalProcess> no_arrivals() { return std::make_unique<NoArrivals>(); }

std::unique_ptr<ArrivalProcess> batch_arrival(std::uint64_t n, slot_t at_slot) {
  return std::make_unique<BatchArrival>(n, at_slot);
}

std::unique_ptr<ArrivalProcess> scheduled_arrivals(
    std::vector<std::pair<slot_t, std::uint64_t>> schedule) {
  return std::make_unique<ScheduledArrivals>(std::move(schedule));
}

std::unique_ptr<ArrivalProcess> bernoulli_arrivals(double rate, slot_t from, slot_t to) {
  return std::make_unique<BernoulliArrivals>(rate, from, to);
}

std::unique_ptr<ArrivalProcess> uniform_random_arrivals(std::uint64_t total, slot_t horizon,
                                                        std::uint64_t seed) {
  return std::make_unique<UniformRandomArrivals>(total, horizon, seed);
}

std::unique_ptr<ArrivalProcess> paced_arrivals(FunctionSet fs, double margin, slot_t until) {
  return std::make_unique<PacedArrivals>(std::move(fs), margin, until);
}

std::unique_ptr<ArrivalProcess> bursty_arrivals(slot_t period, std::uint64_t burst, slot_t from,
                                                slot_t to) {
  return std::make_unique<BurstyArrivals>(period, burst, from, to);
}

}  // namespace cr
