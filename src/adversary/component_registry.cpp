#include "adversary/component_registry.hpp"

#include <cstdio>
#include <utility>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "common/check.hpp"

namespace cr {

namespace {

// --- built-in arrivals -----------------------------------------------------

std::unique_ptr<ArrivalProcess> make_no_arrivals(const ParamValues&, const WorkloadContext&) {
  return no_arrivals();
}

std::unique_ptr<ArrivalProcess> make_batch(const ParamValues& p, const WorkloadContext&) {
  return batch_arrival(p.get_uint("n"), p.get_uint("at"));
}

std::unique_ptr<ArrivalProcess> make_bernoulli(const ParamValues& p, const WorkloadContext& ctx) {
  const std::uint64_t to = p.get_uint("to");
  return bernoulli_arrivals(p.get_double("rate"), p.get_uint("from"),
                            to == 0 ? ctx.horizon : static_cast<slot_t>(to));
}

std::unique_ptr<ArrivalProcess> make_uniform_random(const ParamValues& p,
                                                    const WorkloadContext& ctx) {
  // Construction-time randomness comes from the run seed, so the workload
  // stays a pure function of (spec, seed) like everything else.
  return uniform_random_arrivals(p.get_uint("total"), ctx.horizon, ctx.seed);
}

std::unique_ptr<ArrivalProcess> make_paced(const ParamValues& p, const WorkloadContext& ctx) {
  return paced_arrivals(ctx.fs, p.get_double("margin"));
}

std::unique_ptr<ArrivalProcess> make_bursty(const ParamValues& p, const WorkloadContext&) {
  return bursty_arrivals(p.get_uint("period"), p.get_uint("burst"));
}

// --- built-in jammers ------------------------------------------------------

std::unique_ptr<Jammer> make_no_jam(const ParamValues&, const WorkloadContext&) {
  return no_jam();
}

std::unique_ptr<Jammer> make_iid(const ParamValues& p, const WorkloadContext&) {
  return iid_jammer(p.get_double("fraction"));
}

std::unique_ptr<Jammer> make_prefix(const ParamValues& p, const WorkloadContext&) {
  return prefix_jammer(p.get_uint("count"));
}

std::unique_ptr<Jammer> make_periodic(const ParamValues& p, const WorkloadContext&) {
  return periodic_jammer(p.get_uint("period"), p.get_uint("burst"));
}

std::unique_ptr<Jammer> make_budget_paced(const ParamValues& p, const WorkloadContext& ctx) {
  return budget_paced_jammer(ctx.fs.g, p.get_double("margin"));
}

std::unique_ptr<Jammer> make_reactive(const ParamValues& p, const WorkloadContext& ctx) {
  return reactive_jammer(ctx.fs.g, p.get_double("margin"), p.get_uint("burst"));
}

}  // namespace

ArrivalRegistry::ArrivalRegistry() {
  register_arrival({"none", "no arrivals", {}, make_no_arrivals});
  register_arrival({"batch",
                    "n nodes arrive simultaneously (the paper's batch setting)",
                    {{"n", ParamType::kUint, "256", "batch size"},
                     {"at", ParamType::kUint, "1", "arrival slot"}},
                    make_batch});
  register_arrival({"bernoulli",
                    "one node per slot w.p. rate (rate > 1: floor(rate) plus a coin)",
                    {{"rate", ParamType::kDouble, "0.1", "per-slot arrival probability"},
                     {"from", ParamType::kUint, "1", "first active slot"},
                     {"to", ParamType::kUint, "0", "last active slot (0 = the run horizon)"}},
                    make_bernoulli});
  register_arrival({"uniform_random",
                    "total arrival instants uniform over [1, horizon] (Lemma 4.1's "
                    "random-injected pattern; drawn from the run seed)",
                    {{"total", ParamType::kUint, "256", "number of arrivals"}},
                    make_uniform_random});
  register_arrival({"paced",
                    "cumulative arrivals track t/(margin·f(t)) — the heaviest smooth "
                    "pattern (Cor 3.6)",
                    {{"margin", ParamType::kDouble, "4", "pacing margin (larger = lighter)"}},
                    make_paced});
  register_arrival({"bursty",
                    "burst nodes every period slots",
                    {{"period", ParamType::kUint, "1024", "slots between bursts"},
                     {"burst", ParamType::kUint, "256", "nodes per burst"}},
                    make_bursty});
}

ArrivalRegistry& ArrivalRegistry::instance() {
  static ArrivalRegistry registry;
  return registry;
}

const ArrivalEntry* ArrivalRegistry::find(const std::string& name) const {
  for (const auto& entry : entries_)
    if (entry.name == name) return &entry;
  return nullptr;
}

const ArrivalEntry& ArrivalRegistry::at(const std::string& name) const {
  const ArrivalEntry* entry = find(name);
  if (entry == nullptr) {
    std::fprintf(stderr, "ArrivalRegistry: unknown arrival \"%s\" (known:", name.c_str());
    for (const auto& e : entries_) std::fprintf(stderr, " %s", e.name.c_str());
    std::fprintf(stderr, ")\n");
  }
  CR_CHECK(entry != nullptr);
  return *entry;
}

std::vector<std::string> ArrivalRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.name);
  return out;
}

void ArrivalRegistry::register_arrival(ArrivalEntry entry) {
  CR_CHECK(!entry.name.empty());
  CR_CHECK(entry.make != nullptr);
  CR_CHECK(find(entry.name) == nullptr);  // names are unique keys
  entries_.push_back(std::move(entry));
}

JammerRegistry::JammerRegistry() {
  register_jammer({"none", "never jams", {}, make_no_jam});
  register_jammer({"iid",
                   "each slot jammed independently w.p. fraction",
                   {{"fraction", ParamType::kDouble, "0.25", "per-slot jam probability"}},
                   make_iid});
  register_jammer({"prefix",
                   "jams slots [1, count] (Theorem 4.2's first move)",
                   {{"count", ParamType::kUint, "1024", "length of the jammed prefix"}},
                   make_prefix});
  register_jammer({"periodic",
                   "jams the first burst slots of every period",
                   {{"period", ParamType::kUint, "64", "cycle length"},
                    {"burst", ParamType::kUint, "8", "jammed slots per cycle (≤ period)"}},
                   make_periodic});
  register_jammer({"budget_paced",
                   "cumulative jamming tracks t/(margin·g(t)), spent greedily",
                   {{"margin", ParamType::kDouble, "8", "budget margin (larger = weaker)"}},
                   make_budget_paced});
  register_jammer({"reactive",
                   "jams burst slots after each observed success, within the "
                   "t/(margin·g(t)) budget",
                   {{"margin", ParamType::kDouble, "8", "budget margin"},
                    {"burst", ParamType::kUint, "2", "slots jammed per observed success"}},
                   make_reactive});
}

JammerRegistry& JammerRegistry::instance() {
  static JammerRegistry registry;
  return registry;
}

const JammerEntry* JammerRegistry::find(const std::string& name) const {
  for (const auto& entry : entries_)
    if (entry.name == name) return &entry;
  return nullptr;
}

const JammerEntry& JammerRegistry::at(const std::string& name) const {
  const JammerEntry* entry = find(name);
  if (entry == nullptr) {
    std::fprintf(stderr, "JammerRegistry: unknown jammer \"%s\" (known:", name.c_str());
    for (const auto& e : entries_) std::fprintf(stderr, " %s", e.name.c_str());
    std::fprintf(stderr, ")\n");
  }
  CR_CHECK(entry != nullptr);
  return *entry;
}

std::vector<std::string> JammerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.name);
  return out;
}

void JammerRegistry::register_jammer(JammerEntry entry) {
  CR_CHECK(!entry.name.empty());
  CR_CHECK(entry.make != nullptr);
  CR_CHECK(find(entry.name) == nullptr);  // names are unique keys
  entries_.push_back(std::move(entry));
}

}  // namespace cr
