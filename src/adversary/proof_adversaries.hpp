// Scripted adversaries from the paper's impossibility proofs (§4).
//
// These reproduce the exact constructions used in Lemma 4.1, Theorem 1.3 and
// Theorem 4.2 so the lower-bound benches can measure the predicted behaviour
// (no success in the attacked window; Ω(log²t / log²g) sends before first
// success).
#pragma once

#include <cstdint>
#include <memory>

#include "adversary/adversary.hpp"
#include "common/functions.hpp"

namespace cr {

/// Lemma 4.1's adversary, parameterised by the target protocol's first-slot
/// sending probability x₁ and the sub-logarithmic function h it attacks:
///   * injects ceil((3·log t)/x₁) "batch-injected" nodes in each of the first
///     √t slots, and
///   * injects floor(t/(2·h(t))) "random-injected" nodes at slots drawn
///     uniformly at random from [1, t].
/// No jamming. Designed so that, w.h.p., no success occurs in [1, t] against
/// any protocol that sends ω(h(t)·log t) times before its first success.
std::unique_ptr<Adversary> lemma41_adversary(slot_t t, double x1, GrowthFn h, std::uint64_t seed);

/// Theorem 1.3's adversary:
///   * injects one node in slot 1,
///   * jams slots [1, t/(4·g(t))] and the last slot t,
///   * jams another t/(4·g(t)) slots chosen uniformly at random from
///     (t/(4g(t)), t].
std::unique_ptr<Adversary> theorem13_adversary(slot_t t, GrowthFn g, std::uint64_t seed);

/// Theorem 4.2's adversary (against non-adaptive sending patterns):
///   * jams slots [1, t/(4·g(t))] and the last slot,
///   * injects 2 nodes in slot 1 and t/(4·f(t)) nodes in the last slot.
std::unique_ptr<Adversary> theorem42_adversary(slot_t t, const FunctionSet& fs);

}  // namespace cr
