#include "dist/worker.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <random>
#include <thread>
#include <vector>

#include "common/file_lock.hpp"
#include "common/table.hpp"
#include "dist/cell_cache.hpp"

namespace cr {

namespace fs = std::filesystem;

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string utc_now() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string sanitize_token(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    out += ok ? c : '_';
  }
  return out;
}

/// `<host>-<pid>-<rand>`: unique across hosts, across concurrent processes,
/// and across PID reuse within one run directory.
std::string worker_token() {
  std::mt19937_64 gen(std::random_device{}() ^
                      (static_cast<std::uint64_t>(::getpid()) << 32) ^
                      static_cast<std::uint64_t>(
                          std::chrono::steady_clock::now().time_since_epoch().count()));
  char rand_hex[16];
  std::snprintf(rand_hex, sizeof rand_hex, "%08llx",
                static_cast<unsigned long long>(gen() & 0xFFFFFFFFull));
  return sanitize_token(lease_hostname()) + "-" + std::to_string(::getpid()) + "-" + rand_hex;
}

}  // namespace

int run_worker(const SuiteSpec& spec, const WorkerOptions& opts, std::ostream& log) {
  const std::vector<SuiteCell> cells = expand_suite(spec);
  const std::string outdir = opts.output_dir.empty() ? spec.output_dir : opts.output_dir;
  const std::string config_hash = suite_config_hash(cells);
  const std::string locks_dir = outdir + "/.locks";
  const std::string git_sha = git_head_sha(spec.source_dir);
  const std::string worker = worker_token();

  log << "worker " << worker << ": suite " << spec.name << ", " << cells.size()
      << " cells -> " << outdir << "  [config " << config_hash << "]\n";

  std::error_code ec;
  fs::create_directories(locks_dir, ec);
  if (ec) {
    log << "worker " << worker << ": cannot create " << locks_dir << ": " << ec.message()
        << "\n";
    return 1;
  }

  // Same stale-output guard as `cr suite run`: every manifest already in the
  // out dir (including other workers' — they carry this config_hash) must
  // describe this exact expansion and --quick mode.
  const PriorOutputs prior = scan_prior_outputs(outdir, config_hash, opts.quick);
  if (!prior.compatible) {
    log << "worker " << worker << ": " << outdir << "/" << prior.message
        << " — refusing to work over stale outputs; use a fresh --out\n";
    return 1;
  }

  CellCache cache(opts.cache_dir);
  CellRunOptions cell_opts;
  cell_opts.out_dir = outdir;
  cell_opts.quick = opts.quick;
  cell_opts.threads = opts.threads;
  cell_opts.cache = opts.cache_dir.empty() ? nullptr : &cache;
  cell_opts.config_hash = config_hash;
  cell_opts.git_sha = git_sha;

  struct CellState {
    /// "" (open) | "ok" | "hit" | "peer" | "failed"
    std::string status;
    double seconds = 0.0;
    std::string csv_fnv;
  };
  std::vector<CellState> state(cells.size());
  const std::string started = utc_now();
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t ran = 0, hits = 0, failures = 0, peer_failures = 0;

  const auto all_terminal = [&] {
    for (const CellState& cell : state)
      if (cell.status.empty()) return false;
    return true;
  };

  while (!all_terminal()) {
    bool progressed = false;
    for (const SuiteCell& cell : cells) {
      CellState& mine = state[cell.index];
      if (!mine.status.empty()) continue;
      const std::string csv_path = outdir + "/" + cell.id + ".csv";
      const std::string lease_path = locks_dir + "/" + cell.id + ".lease";
      const std::string failed_path = locks_dir + "/" + cell.id + ".failed";

      if (fs::exists(csv_path, ec)) {
        // Finished by a peer (or by us in an earlier run). CSVs appear only
        // via atomic rename, so the bytes are complete; hash them so our
        // manifest cross-validates against the producer's at merge time.
        mine.status = "peer";
        mine.csv_fnv = file_fnv16(csv_path);
        // The producer may have died between its rename and its lease
        // release; reclaim the orphaned lease so the dir ends clean.
        if (fs::exists(lease_path, ec) && lease_is_stale(lease_path, opts.stale_after_seconds))
          lease_release(lease_path);
        progressed = true;
        continue;
      }
      if (fs::exists(failed_path, ec)) {
        mine.status = "failed";
        ++peer_failures;
        progressed = true;
        continue;
      }

      if (!lease_try_acquire(lease_path, cell.id)) {
        // Held by someone. A dead holder's lease is taken over (unlinked);
        // the re-acquire happens on a later pass so a racing taker cannot
        // make us both think we won.
        if (lease_is_stale(lease_path, opts.stale_after_seconds)) {
          log << "worker " << worker << ": taking over stale lease for " << cell.id << "\n";
          lease_release(lease_path);
          progressed = true;
        }
        continue;
      }

      const CellRunResult result = run_cell(cell, cell_opts);
      if (!result.cache_note.empty()) log << "  [cache] " << result.cache_note << "\n";
      mine.status = result.status;
      mine.seconds = result.seconds;
      mine.csv_fnv = result.csv_fnv;
      if (result.status == "failed") {
        ++failures;
        // Mark the cell terminally failed BEFORE releasing the lease, so no
        // other worker squeezes in and retries a deterministic error.
        std::ofstream failed(failed_path);
        failed << "worker " << worker << "\n";
      } else if (result.status == "hit") {
        ++hits;
      } else {
        ++ran;
      }
      lease_release(lease_path);
      progressed = true;
      log << "  [" << cell.index + 1 << "/" << cells.size() << "] " << cell.id << ": "
          << mine.status << " (" << format_double(mine.seconds, 2) << "s)\n";
    }
    if (!progressed && !all_terminal())
      std::this_thread::sleep_for(std::chrono::milliseconds(opts.poll_ms));
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const std::string manifest_path = outdir + "/manifest.work-" + worker + ".json";
  {
    std::ofstream manifest(manifest_path);
    manifest << "{\n"
             << "  \"suite\": \"" << json_escape(spec.name) << "\",\n"
             << "  \"description\": \"" << json_escape(spec.description) << "\",\n"
             << "  \"worker\": \"" << json_escape(worker) << "\",\n"
             << "  \"git_sha\": \"" << json_escape(git_sha) << "\",\n"
             << "  \"config_hash\": \"" << config_hash << "\",\n"
             << "  \"shard\": \"1/1\",\n"
             << "  \"quick\": " << (opts.quick ? "true" : "false") << ",\n"
             << "  \"started_utc\": \"" << started << "\",\n"
             << "  \"finished_utc\": \"" << utc_now() << "\",\n"
             << "  \"wall_seconds\": " << format_double(wall, 3) << ",\n"
             << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellState& cell = state[i];
      manifest << "    {\"id\": \"" << json_escape(cells[i].id) << "\", \"bench\": \""
               << json_escape(cells[i].bench) << "\", \"seed\": "
               << (cells[i].has_seed ? std::to_string(cells[i].seed) : "null")
               << ", \"status\": \"" << cell.status << "\", \"seconds\": "
               << format_double(cell.seconds, 3) << ", \"csv_fnv\": "
               << (cell.csv_fnv.empty() ? "null" : "\"" + cell.csv_fnv + "\"") << "}"
               << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    manifest << "  ]\n}\n";
  }

  log << "worker " << worker << ": " << ran << " ran, " << hits << " cache hits, "
      << failures + peer_failures << " failed (" << failures << " own) in "
      << format_double(wall, 2) << "s; manifest " << manifest_path << "\n";
  return failures + peer_failures == 0 ? 0 : 1;
}

}  // namespace cr
