#include "dist/cell_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "common/json.hpp"
#include "common/snapshot.hpp"
#include "common/table.hpp"

namespace cr {

namespace fs = std::filesystem;

namespace {

std::string hex16(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(value));
  return buf;
}

std::uint64_t fnv1a_text(const std::string& text) {
  return fnv1a64(reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
}

bool is_hex16_name(const std::string& name) {
  if (name.size() != 16) return false;
  for (const char c : name)
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  return true;
}

std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string utc_now_stamp() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Worker-unique scratch name: PID + random suffix, so two processes (or
/// two stores within one process) racing the same cache never collide on a
/// tmp path.
std::string unique_suffix() {
  static thread_local std::mt19937_64 gen(
      std::random_device{}() ^
      (static_cast<std::uint64_t>(::getpid()) << 32) ^
      static_cast<std::uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()));
  return std::to_string(::getpid()) + "-" + hex16(gen());
}

/// Validate one entry directory against an optional probe. Returns true on
/// a clean, provenance-matching entry; otherwise fills `*diagnostic` with a
/// named reason. `csv_out` (optional) receives the verified bytes.
bool validate_entry(const std::string& entry_dir, const CellKey* probe,
                    std::string* csv_out, std::string* diagnostic) {
  const std::string meta_path = entry_dir + "/meta.json";
  const JsonParseResult meta = JsonValue::parse_file(meta_path);
  if (!meta.ok() || !meta.value->is_object()) {
    *diagnostic = "unreadable meta.json (" + (meta.ok() ? "not an object" : meta.error) + ")";
    return false;
  }
  const auto field = [&](const char* name) -> std::string {
    const JsonValue* v = meta.value->find(name);
    return v != nullptr && v->is_string() ? v->as_string() : std::string();
  };
  const JsonValue* quick = meta.value->find("quick");
  if (field("schema") != "cr-cellcache/1") {
    *diagnostic = "meta.json schema is not cr-cellcache/1";
    return false;
  }
  if (quick == nullptr || !quick->is_bool()) {
    *diagnostic = "meta.json missing boolean \"quick\"";
    return false;
  }
  if (probe != nullptr) {
    // Full provenance comparison: an FNV key collision (or a hand-edited
    // entry) must degrade to a named miss, never serve foreign bytes.
    if (field("config_hash") != probe->config_hash || field("cell_id") != probe->cell_id ||
        field("source_digest") != probe->source_digest || quick->as_bool() != probe->quick) {
      *diagnostic = "provenance mismatch (stored entry was produced by a different "
                    "config/cell/source/quick combination)";
      return false;
    }
  }
  const std::string expected_fnv = field("csv_fnv");
  if (expected_fnv.empty()) {
    *diagnostic = "meta.json missing \"csv_fnv\"";
    return false;
  }
  std::ifstream csv_in(entry_dir + "/cell.csv", std::ios::binary);
  if (!csv_in) {
    *diagnostic = "cell.csv is missing";
    return false;
  }
  std::ostringstream buf;
  buf << csv_in.rdbuf();
  std::string csv = buf.str();
  if (hex16(fnv1a_text(csv)) != expected_fnv) {
    *diagnostic = "cell.csv checksum mismatch (expected csv_fnv " + expected_fnv + ")";
    return false;
  }
  if (csv_out != nullptr) *csv_out = std::move(csv);
  return true;
}

}  // namespace

CellCache::CellCache(std::string dir) : dir_(std::move(dir)) {}

std::string CellCache::key_of(const CellKey& key) {
  // \x1f separators mirror suite_config_hash's field framing: "ab"+"c"
  // never collides with "a"+"bc".
  const std::string text = key.config_hash + '\x1f' + key.cell_id + '\x1f' +
                           key.source_digest + '\x1f' + (key.quick ? '1' : '0');
  return hex16(fnv1a_text(text));
}

CacheLookup CellCache::lookup(const CellKey& key) const {
  CacheLookup out;
  const std::string entry = entry_dir(key_of(key));
  std::error_code ec;
  if (!fs::exists(entry, ec)) return out;  // clean miss
  std::string diagnostic;
  if (validate_entry(entry, &key, &out.csv, &diagnostic)) {
    out.hit = true;
    return out;
  }
  out.diagnostic = "cache entry " + key_of(key) + " rejected: " + diagnostic;
  return out;
}

bool CellCache::store(const CellKey& key, const std::string& csv, const std::string& git_sha,
                      double seconds, std::string* error) const {
  const std::string hex_key = key_of(key);
  const std::string final_dir = entry_dir(hex_key);
  std::error_code ec;
  if (fs::exists(final_dir, ec)) return true;  // already stored (rule 9: identical)
  fs::create_directories(dir_, ec);
  if (ec) {
    *error = "cannot create cache dir " + dir_ + ": " + ec.message();
    return false;
  }
  const std::string tmp_dir = dir_ + "/tmp-" + unique_suffix();
  fs::create_directory(tmp_dir, ec);
  if (ec) {
    *error = "cannot create " + tmp_dir + ": " + ec.message();
    return false;
  }
  {
    std::ofstream csv_out(tmp_dir + "/cell.csv", std::ios::binary | std::ios::trunc);
    csv_out << csv;
    csv_out.flush();
    if (!csv_out) {
      *error = "cannot write " + tmp_dir + "/cell.csv";
      fs::remove_all(tmp_dir, ec);
      return false;
    }
  }
  {
    std::ofstream meta(tmp_dir + "/meta.json", std::ios::binary | std::ios::trunc);
    meta << "{\n"
         << "  \"schema\": \"cr-cellcache/1\",\n"
         << "  \"key\": " << json_quote(hex_key) << ",\n"
         << "  \"config_hash\": " << json_quote(key.config_hash) << ",\n"
         << "  \"cell_id\": " << json_quote(key.cell_id) << ",\n"
         << "  \"source_digest\": " << json_quote(key.source_digest) << ",\n"
         << "  \"quick\": " << (key.quick ? "true" : "false") << ",\n"
         << "  \"git_sha\": " << json_quote(git_sha) << ",\n"
         << "  \"created_utc\": " << json_quote(utc_now_stamp()) << ",\n"
         << "  \"csv_fnv\": " << json_quote(hex16(fnv1a_text(csv))) << ",\n"
         << "  \"csv_bytes\": " << csv.size() << ",\n"
         << "  \"compute_seconds\": " << format_double(seconds, 3) << "\n"
         << "}\n";
    meta.flush();
    if (!meta) {
      *error = "cannot write " + tmp_dir + "/meta.json";
      fs::remove_all(tmp_dir, ec);
      return false;
    }
  }
  fs::rename(tmp_dir, final_dir, ec);
  if (ec) {
    // Racing store of the same key: someone else's rename landed first.
    // Their bytes are ours by rule 9, so losing the race is success.
    fs::remove_all(tmp_dir, ec);
    std::error_code exists_ec;
    if (fs::exists(final_dir, exists_ec)) return true;
    *error = "cannot publish cache entry " + final_dir;
    return false;
  }
  return true;
}

CacheStats CellCache::stats() const {
  CacheStats out;
  std::error_code ec;
  if (!fs::exists(dir_, ec)) return out;
  for (const auto& item : fs::directory_iterator(dir_, ec)) {
    const std::string name = item.path().filename().string();
    if (!item.is_directory() || !is_hex16_name(name)) {
      ++out.stray;
      continue;
    }
    std::string diagnostic;
    if (!validate_entry(item.path().string(), nullptr, nullptr, &diagnostic)) {
      ++out.corrupt;
      continue;
    }
    ++out.entries;
    for (const auto& file : fs::directory_iterator(item.path(), ec)) {
      const std::uint64_t size = file.is_regular_file() ? file.file_size(ec) : 0;
      out.total_bytes += size;
      if (file.path().filename() == "cell.csv") out.csv_bytes += size;
    }
  }
  return out;
}

std::size_t CellCache::gc(std::uint64_t max_bytes) {
  std::size_t removed = 0;
  std::error_code ec;
  if (!fs::exists(dir_, ec)) return 0;
  struct Entry {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t bytes = 0;
  };
  std::vector<Entry> keepable;
  for (const auto& item : fs::directory_iterator(dir_, ec)) {
    const std::string name = item.path().filename().string();
    const bool is_entry = item.is_directory() && is_hex16_name(name);
    std::string diagnostic;
    if (!is_entry || !validate_entry(item.path().string(), nullptr, nullptr, &diagnostic)) {
      // Corrupt entries and abandoned tmp dirs are dead weight either way.
      fs::remove_all(item.path(), ec);
      ++removed;
      continue;
    }
    Entry entry{item.path(), fs::last_write_time(item.path() / "meta.json", ec), 0};
    for (const auto& file : fs::directory_iterator(item.path(), ec))
      if (file.is_regular_file()) entry.bytes += file.file_size(ec);
    keepable.push_back(std::move(entry));
  }
  // Newest first; evict from the tail until under budget.
  std::sort(keepable.begin(), keepable.end(),
            [](const Entry& a, const Entry& b) { return a.mtime > b.mtime; });
  std::uint64_t kept_bytes = 0;
  for (const Entry& entry : keepable) {
    if (kept_bytes + entry.bytes <= max_bytes) {
      kept_bytes += entry.bytes;
    } else {
      fs::remove_all(entry.path, ec);
      ++removed;
    }
  }
  return removed;
}

}  // namespace cr
