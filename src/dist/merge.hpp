/// \file
/// `cr suite merge`: union per-shard / per-worker run manifests into the
/// single manifest `cr verify` consumes.
///
/// Inputs are run manifests produced by `cr suite run --shard i/n` or
/// `cr suite work` over the SAME suite configuration. The merge is strict:
///
///   * every input must record the same suite name, config_hash and --quick
///     mode — mixing configurations is a hard error, never a best effort;
///   * every input must describe the same cell expansion (same id set);
///   * for each cell, all success entries ("ok"/"hit"/"cached"/"peer") must
///     agree on csv_fnv. Two manifests claiming DIFFERENT bytes for one
///     cell is a conflict and a hard error — it means rule 9 was violated
///     (mismatched binaries, a corrupted file) and the evidence cannot be
///     trusted;
///   * by default the CSVs on disk next to the output manifest are
///     re-hashed against the merged record, so the manifest the verifier
///     reads provably describes the bytes it will load;
///   * a cell no input finished is "missing" and the merge fails — a
///     partial evidence set must not masquerade as a complete run.
///
/// The merged manifest keeps the run-manifest schema (shard "1/1", summed
/// wall_seconds, min started / max finished stamps) plus a "merged_from"
/// list naming the inputs, so provenance survives the union.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cr {

struct MergeOptions {
  std::vector<std::string> manifest_paths;  ///< >= 1 input run manifests
  /// Output path; empty = "<dir of first input>/manifest.json".
  std::string out_path;
  /// Re-hash each success cell's CSV on disk against the merged record.
  bool check_files = true;
};

/// Merge the manifests. Returns 0 on success, 1 on conflict / incomplete
/// coverage / failed cells, 2 on unreadable or malformed inputs.
int merge_manifests(const MergeOptions& opts, std::ostream& log);

}  // namespace cr
