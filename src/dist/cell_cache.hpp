/// \file
/// CellCache: a content-addressed, on-disk store of finished suite cells.
///
/// The key is FNV-1a 64 over the three facts that fully determine a cell's
/// output bytes (determinism rule 9 in docs/ARCHITECTURE.md):
///
///     key = fnv1a(config_hash \x1f cell_id \x1f source_digest \x1f quick)
///
///   * `config_hash` — the suite's FNV-1a over the FULL expansion (every
///     cell's bench, flags and seed), so any parameter change anywhere in
///     the suite re-keys every cell it could have influenced;
///   * `cell_id` — which cell within that expansion;
///   * `source_digest` — the running binary's digest (common/source_digest),
///     so a code change is a cache miss, never a silently-stale hit;
///   * the --quick mode, which changes cell output but is a run option
///     outside the config hash.
///
/// Thread count is deliberately NOT in the key: results are thread-count
/// invariant (determinism rule 2), so a 1-thread and an 8-thread run of the
/// same cell produce the same bytes and may share an entry.
///
/// On-disk layout (all writes are tmp-dir + rename, so readers never see a
/// partial entry):
///
///     <cache_dir>/<16-hex key>/meta.json   provenance + csv_fnv checksum
///     <cache_dir>/<16-hex key>/cell.csv    the cell's exact output bytes
///
/// A hit is served only after the stored provenance fields are compared
/// verbatim against the probe (an FNV key collision therefore degrades to a
/// miss, never a wrong answer) and the CSV bytes re-hash to the recorded
/// csv_fnv. Any mismatch is a named diagnostic and a miss — a corrupted
/// cache can cost recomputation, never correctness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cr {

/// The probe: everything that determines a cell's output bytes.
struct CellKey {
  std::string config_hash;    ///< suite_config_hash of the full expansion
  std::string cell_id;        ///< expanded cell id (CSV filename stem)
  std::string source_digest;  ///< common/source_digest of the producer
  bool quick = false;
};

/// Lookup outcome. `hit` implies `csv` holds the exact stored bytes and the
/// entry passed provenance + checksum validation. A non-empty `diagnostic`
/// with hit == false names why an EXISTING entry was rejected (corruption,
/// provenance mismatch); a clean miss has both empty.
struct CacheLookup {
  bool hit = false;
  std::string csv;
  std::string diagnostic;
};

/// Aggregate numbers for `cr cache stats`.
struct CacheStats {
  std::size_t entries = 0;
  std::uint64_t csv_bytes = 0;    ///< payload bytes (cell.csv files)
  std::uint64_t total_bytes = 0;  ///< payload + metadata
  std::size_t corrupt = 0;        ///< entries that fail validation
  std::size_t stray = 0;          ///< abandoned tmp dirs / foreign files
};

class CellCache {
 public:
  /// Opens (and lazily creates on first store) the cache at `dir`.
  explicit CellCache(std::string dir);

  const std::string& dir() const { return dir_; }

  /// 16-hex FNV-1a key for a probe — exposed for tests and diagnostics.
  static std::string key_of(const CellKey& key);

  /// Validated lookup; see CacheLookup.
  CacheLookup lookup(const CellKey& key) const;

  /// Store a finished cell's CSV bytes under `key`. `git_sha` and `seconds`
  /// are audit metadata (where the bytes came from, what they cost to
  /// compute). Losing a race to another worker storing the same key is a
  /// success (the entries are byte-identical by rule 9). Returns false only
  /// on I/O failure, with a message in `*error`.
  bool store(const CellKey& key, const std::string& csv, const std::string& git_sha,
             double seconds, std::string* error) const;

  /// Walk the cache and count entries/bytes; validates each entry so
  /// `corrupt` is populated.
  CacheStats stats() const;

  /// Evict entries, oldest (by meta.json mtime) first, until the total
  /// on-disk bytes (cell.csv + meta.json per entry) are <= max_bytes.
  /// Corrupt entries and abandoned tmp dirs are always removed. Returns the
  /// number of entries removed.
  std::size_t gc(std::uint64_t max_bytes);

 private:
  std::string entry_dir(const std::string& hex_key) const { return dir_ + "/" + hex_key; }

  std::string dir_;
};

}  // namespace cr
