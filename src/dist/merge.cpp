#include "dist/merge.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>

#include "cli/suite.hpp"
#include "common/json.hpp"
#include "common/table.hpp"

namespace cr {

namespace fs = std::filesystem;

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One input manifest, decoded into the fields the merge needs.
struct Input {
  std::string path;
  std::string suite;
  std::string description;
  std::string git_sha;
  std::string config_hash;
  bool quick = false;
  std::string started_utc;
  std::string finished_utc;
  double wall_seconds = 0.0;
  struct Cell {
    std::string id;
    std::string bench;
    std::string seed_raw;  ///< raw number text, or "null"
    std::string status;
    double seconds = 0.0;
    std::string csv_fnv;  ///< empty when recorded as null
  };
  std::vector<Cell> cells;
};

bool is_success_status(const std::string& status) {
  return status == "ok" || status == "hit" || status == "cached" || status == "peer";
}

bool load_input(const std::string& path, Input* out, std::string* error) {
  const JsonParseResult parsed = JsonValue::parse_file(path);
  if (!parsed.ok()) {
    *error = parsed.error;
    return false;
  }
  const JsonValue& root = *parsed.value;
  if (!root.is_object()) {
    *error = path + ": manifest must be a JSON object";
    return false;
  }
  const auto str_field = [&](const char* name, std::string* dst) {
    const JsonValue* v = root.find(name);
    if (v == nullptr || !v->is_string()) return false;
    *dst = v->as_string();
    return true;
  };
  out->path = path;
  if (!str_field("suite", &out->suite) || !str_field("config_hash", &out->config_hash)) {
    *error = path + ": not a run manifest (missing \"suite\" or \"config_hash\")";
    return false;
  }
  str_field("description", &out->description);
  str_field("git_sha", &out->git_sha);
  str_field("started_utc", &out->started_utc);
  str_field("finished_utc", &out->finished_utc);
  const JsonValue* quick = root.find("quick");
  if (quick == nullptr || !quick->is_bool()) {
    *error = path + ": missing boolean \"quick\"";
    return false;
  }
  out->quick = quick->as_bool();
  if (const JsonValue* wall = root.find("wall_seconds"); wall != nullptr && wall->is_number())
    out->wall_seconds = wall->as_number();
  const JsonValue* cells = root.find("cells");
  if (cells == nullptr || !cells->is_array()) {
    *error = path + ": missing \"cells\" array";
    return false;
  }
  for (const auto& item : cells->items()) {
    if (!item->is_object()) {
      *error = path + ": every cells[] entry must be an object";
      return false;
    }
    Input::Cell cell;
    const JsonValue* id = item->find("id");
    const JsonValue* status = item->find("status");
    if (id == nullptr || !id->is_string() || status == nullptr || !status->is_string()) {
      *error = path + ": every cells[] entry needs string \"id\" and \"status\"";
      return false;
    }
    cell.id = id->as_string();
    cell.status = status->as_string();
    if (const JsonValue* bench = item->find("bench"); bench != nullptr && bench->is_string())
      cell.bench = bench->as_string();
    const JsonValue* seed = item->find("seed");
    cell.seed_raw = seed != nullptr && seed->is_number() ? seed->raw_number() : "null";
    if (const JsonValue* secs = item->find("seconds"); secs != nullptr && secs->is_number())
      cell.seconds = secs->as_number();
    if (const JsonValue* fnv = item->find("csv_fnv"); fnv != nullptr && fnv->is_string())
      cell.csv_fnv = fnv->as_string();
    if (is_success_status(cell.status) && cell.csv_fnv.empty()) {
      // A pre-merge-era manifest (no checksums) cannot be safely unioned:
      // conflicts would be undetectable.
      *error = path + ": cell \"" + cell.id + "\" has status \"" + cell.status +
               "\" but no csv_fnv — regenerate the manifest with this cr version";
      return false;
    }
    out->cells.push_back(std::move(cell));
  }
  return true;
}

}  // namespace

int merge_manifests(const MergeOptions& opts, std::ostream& log) {
  if (opts.manifest_paths.empty()) {
    log << "cr suite merge: at least one manifest path is required\n";
    return 2;
  }
  std::vector<Input> inputs;
  for (const std::string& path : opts.manifest_paths) {
    Input input;
    std::string error;
    if (!load_input(path, &input, &error)) {
      log << "cr suite merge: " << error << "\n";
      return 2;
    }
    inputs.push_back(std::move(input));
  }

  const Input& first = inputs.front();
  for (const Input& input : inputs) {
    if (input.suite != first.suite || input.config_hash != first.config_hash ||
        input.quick != first.quick) {
      log << "cr suite merge: " << input.path << " records a different configuration than "
          << first.path << " (suite \"" << input.suite << "\" vs \"" << first.suite
          << "\", config " << input.config_hash << " vs " << first.config_hash << ", quick "
          << (input.quick ? "true" : "false") << " vs " << (first.quick ? "true" : "false")
          << ") — shards of different suites cannot be unioned\n";
      return 1;
    }
  }
  // Same configuration implies the same expansion; verify the cell id sets
  // anyway so a hand-edited manifest fails loudly.
  std::set<std::string> first_ids;
  for (const Input::Cell& cell : first.cells) first_ids.insert(cell.id);
  for (const Input& input : inputs) {
    std::set<std::string> ids;
    for (const Input::Cell& cell : input.cells) ids.insert(cell.id);
    if (ids != first_ids) {
      log << "cr suite merge: " << input.path << " describes a different cell set than "
          << first.path << " despite matching config_hash — manifest is corrupt\n";
      return 1;
    }
  }

  const std::string out_path =
      !opts.out_path.empty()
          ? opts.out_path
          : (fs::path(first.path).parent_path() / "manifest.json").string();
  const std::string out_dir = fs::path(out_path).parent_path().string();

  // Union cell by cell, in the first manifest's (= expansion) order.
  struct Merged {
    const Input::Cell* winner = nullptr;  ///< first non-peer success, else peer
    bool any_failed = false;
  };
  std::map<std::string, Merged> merged;
  int conflicts = 0;
  for (const Input& input : inputs) {
    for (const Input::Cell& cell : input.cells) {
      Merged& slot = merged[cell.id];
      if (cell.status == "failed") slot.any_failed = true;
      if (!is_success_status(cell.status)) continue;
      if (slot.winner == nullptr) {
        slot.winner = &cell;
        continue;
      }
      if (slot.winner->csv_fnv != cell.csv_fnv) {
        log << "cr suite merge: CONFLICT on cell \"" << cell.id << "\": csv_fnv "
            << slot.winner->csv_fnv << " vs " << cell.csv_fnv
            << " — two manifests claim different bytes for the same cell (rule 9 "
               "violation: mismatched binaries or corrupted outputs)\n";
        ++conflicts;
        continue;
      }
      // Prefer the producer's record ("ok"/"hit"/"cached") over an
      // observer's ("peer"): it carries the true compute time.
      if (slot.winner->status == "peer" && cell.status != "peer") slot.winner = &cell;
    }
  }
  if (conflicts > 0) return 1;

  std::size_t missing = 0, failed = 0, ok = 0;
  for (const Input::Cell& cell : first.cells) {
    const Merged& slot = merged.at(cell.id);
    if (slot.winner != nullptr) {
      ++ok;
      if (opts.check_files) {
        const std::string on_disk = file_fnv16(out_dir + "/" + cell.id + ".csv");
        if (on_disk != slot.winner->csv_fnv) {
          log << "cr suite merge: cell \"" << cell.id << "\": CSV on disk "
              << (on_disk.empty() ? "is missing" : "hashes to " + on_disk)
              << " but the manifests record " << slot.winner->csv_fnv
              << " — outputs do not match the evidence being merged\n";
          ++conflicts;
        }
      }
    } else if (slot.any_failed) {
      ++failed;
      log << "cr suite merge: cell \"" << cell.id << "\" failed in every manifest that ran "
          << "it\n";
    } else {
      ++missing;
      log << "cr suite merge: cell \"" << cell.id << "\" was not completed by any input "
          << "manifest\n";
    }
  }
  if (conflicts > 0 || failed > 0 || missing > 0) {
    log << "cr suite merge: refusing to write an incomplete/conflicted manifest (" << ok
        << " ok, " << failed << " failed, " << missing << " missing, " << conflicts
        << " conflicts)\n";
    return 1;
  }

  std::string started = first.started_utc, finished = first.finished_utc;
  std::string git_sha = first.git_sha;
  double wall = 0.0;
  for (const Input& input : inputs) {
    // ISO-8601 UTC stamps compare correctly as strings.
    if (!input.started_utc.empty() && (started.empty() || input.started_utc < started))
      started = input.started_utc;
    if (input.finished_utc > finished) finished = input.finished_utc;
    if (input.git_sha != git_sha) git_sha = "mixed";
    wall += input.wall_seconds;
  }

  // tmp + rename, like every other output in the run directory.
  const std::string tmp_path = out_path + ".tmp-" + std::to_string(::getpid());
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    out << "{\n"
        << "  \"suite\": \"" << json_escape(first.suite) << "\",\n"
        << "  \"description\": \"" << json_escape(first.description) << "\",\n"
        << "  \"git_sha\": \"" << json_escape(git_sha) << "\",\n"
        << "  \"config_hash\": \"" << first.config_hash << "\",\n"
        << "  \"shard\": \"1/1\",\n"
        << "  \"quick\": " << (first.quick ? "true" : "false") << ",\n"
        << "  \"started_utc\": \"" << json_escape(started) << "\",\n"
        << "  \"finished_utc\": \"" << json_escape(finished) << "\",\n"
        << "  \"wall_seconds\": " << format_double(wall, 3) << ",\n"
        << "  \"merged_from\": [";
    for (std::size_t i = 0; i < inputs.size(); ++i)
      out << (i ? ", " : "") << "\"" << json_escape(fs::path(inputs[i].path).filename().string())
          << "\"";
    out << "],\n"
        << "  \"cells\": [\n";
    for (std::size_t i = 0; i < first.cells.size(); ++i) {
      const Input::Cell& winner = *merged.at(first.cells[i].id).winner;
      out << "    {\"id\": \"" << json_escape(winner.id) << "\", \"bench\": \""
          << json_escape(winner.bench) << "\", \"seed\": " << winner.seed_raw
          << ", \"status\": \"" << winner.status << "\", \"seconds\": "
          << format_double(winner.seconds, 3) << ", \"csv_fnv\": \"" << winner.csv_fnv
          << "\"}" << (i + 1 < first.cells.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    out.flush();
    if (!out) {
      log << "cr suite merge: cannot write " << tmp_path << "\n";
      return 2;
    }
  }
  std::error_code ec;
  fs::rename(tmp_path, out_path, ec);
  if (ec) {
    log << "cr suite merge: cannot rename " << tmp_path << " -> " << out_path << ": "
        << ec.message() << "\n";
    fs::remove(tmp_path, ec);
    return 2;
  }
  log << "cr suite merge: " << inputs.size() << " manifests, " << ok
      << " cells unioned -> " << out_path << "\n";
  return 0;
}

}  // namespace cr
