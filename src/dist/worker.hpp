/// \file
/// `cr suite work`: the cooperative worker loop of the distributed runner.
///
/// N workers — separate processes on one machine, ssh hosts on a shared
/// mount, or CI matrix jobs — all point at the SAME manifest, output
/// directory and (optionally) CellCache, and drain the suite together with
/// no coordinator process:
///
///   1. a worker scans the expansion; a cell whose CSV already exists is
///      someone's finished work ("peer");
///   2. otherwise it tries to claim `<out>/.locks/<cell id>.lease` via
///      atomic O_CREAT|O_EXCL (common/file_lock). Exactly one worker wins;
///      the rest move on — no cell is ever computed twice concurrently;
///   3. the winner executes the cell through the same run_cell() path as
///      `cr suite run` (cache lookup, forked child, worker-unique tmp +
///      rename) and releases the lease;
///   4. a lease whose holder died (same-host dead PID, or — opt-in — an
///      mtime older than --stale_after on any host) is taken over and the
///      cell rerun, so a SIGKILLed worker costs one cell of rework, never a
///      wedged suite;
///   5. a cell that FAILS writes `<out>/.locks/<cell id>.failed` so other
///      workers record the failure instead of retrying a deterministic
///      error forever.
///
/// Each worker exits once every cell is terminal, writing its own run
/// manifest `manifest.work-<host>-<pid>-<rand>.json` (same schema as
/// `cr suite run`, per-cell csv_fnv included) for `cr suite merge` to union
/// into the single manifest `cr verify` consumes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "cli/suite.hpp"

namespace cr {

struct WorkerOptions {
  std::string output_dir;  ///< override; empty = spec's default
  std::string cache_dir;   ///< CellCache directory; empty = no cache
  bool quick = false;
  std::int64_t threads = 0;
  /// Foreign-host leases older than this many seconds are treated as stale
  /// (0 = never; same-host staleness is always detected via dead PIDs).
  double stale_after_seconds = 0.0;
  int poll_ms = 50;  ///< sleep between passes when only live peers hold work
};

/// Run the worker loop to completion. Returns 0 when every cell in the
/// suite ended in a success status (whoever produced it), 1 when any cell
/// failed or the output directory holds incompatible prior outputs.
int run_worker(const SuiteSpec& spec, const WorkerOptions& opts, std::ostream& log);

}  // namespace cr
