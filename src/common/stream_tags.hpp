/// \file
/// Central registry of RNG stream-fork tags.
///
/// Every independent randomness stream in the library is derived from the run
/// seed by forking with a tag. The tags used to live as hex literals at each
/// fork site; they are gathered here because BOTH substrates consume them:
/// the sequential `Rng` (fork(tag) hashes the tag into a new xoshiro seed)
/// and the counter-based `CounterRng` (the tag selects the Philox key the
/// same way), so a (seed, tag) pair names the same logical stream no matter
/// which substrate draws from it.
///
/// Tags must be pairwise distinct — two streams sharing a tag under one seed
/// would be identical, silently correlating draws that the engines assume
/// independent. tests/test_rng.cpp asserts uniqueness over kAllTags, so a
/// new tag MUST be added to that array.
#pragma once

#include <array>
#include <cstdint>

namespace cr::streams {

/// Engine → adversary decisions (all engines hand this stream, unconsumed,
/// to Adversary::on_slot; ComposedAdversary forks the component streams off
/// it on the first slot).
inline constexpr std::uint64_t kAdversary = 0xADu;
/// ComposedAdversary → arrival process (forked from the adversary stream).
inline constexpr std::uint64_t kArrival = 0xA0u;
/// ComposedAdversary → jammer (forked from the adversary stream).
inline constexpr std::uint64_t kJammer = 0x1Au;
/// Generic engine → per-node protocol draws (one shared stream).
inline constexpr std::uint64_t kGenericNodes = 0x0Du;
/// fast_cjz / lockstep → main protocol stream (backoff offsets, cohort
/// binomials, winner selection).
inline constexpr std::uint64_t kCjzMain = 0xF0u;
/// fast_batch → main protocol stream (cohort binomials).
inline constexpr std::uint64_t kBatchMain = 0xB0u;
/// Cohort engines → send attribution under RecordingTier::kNodeStats. A
/// dedicated stream so the recording tier never perturbs the trajectory.
inline constexpr std::uint64_t kAttribution = 0xA7u;
/// Lockstep many-run sweeps → analytic quiescent-tail jam draws (the one
/// Binomial(remaining, p) replacing per-slot i.i.d. coins once a replication
/// has drained and its certificate rules out further arrivals).
inline constexpr std::uint64_t kLockstepTail = 0x7Au;
/// `cr stream --synth` → synthetic arrival-feed generator (gaps, batch
/// sizes, jam coins of the generated trace; independent of every engine
/// stream so the same seed can drive both the feed and the simulation).
inline constexpr std::uint64_t kStreamSynth = 0x5Eu;

/// Every tag above, for the uniqueness test. Keep in sync.
inline constexpr std::array<std::uint64_t, 9> kAllTags = {
    kAdversary, kArrival,   kJammer,      kGenericNodes, kCjzMain,
    kBatchMain, kAttribution, kLockstepTail, kStreamSynth,
};

}  // namespace cr::streams
