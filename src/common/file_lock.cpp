#include "common/file_lock.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>

namespace cr {

namespace {

std::string utc_now_stamp() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

const std::string& lease_hostname() {
  static const std::string host = [] {
    char buf[256] = {};
    if (::gethostname(buf, sizeof buf - 1) != 0 || buf[0] == '\0')
      return std::string("unknown-host");
    return std::string(buf);
  }();
  return host;
}

bool process_alive(std::int64_t pid) {
  if (pid <= 0) return false;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  // EPERM: the process exists but is not ours — still alive.
  return errno == EPERM;
}

bool lease_try_acquire(const std::string& path, const std::string& name) {
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return false;  // EEXIST (held) or I/O error — either way, no lease
  std::ostringstream body;
  body << "pid " << static_cast<std::int64_t>(::getpid()) << "\n"
       << "host " << lease_hostname() << "\n"
       << "name " << name << "\n"
       << "started_utc " << utc_now_stamp() << "\n";
  const std::string text = body.str();
  // A short write leaves a malformed lease, which reads as stale — safe:
  // some worker (possibly this one) will take it over.
  ssize_t written = 0;
  while (written < static_cast<ssize_t>(text.size())) {
    const ssize_t n = ::write(fd, text.data() + written, text.size() - written);
    if (n <= 0) break;
    written += n;
  }
  ::close(fd);
  return true;
}

bool lease_read(const std::string& path, LeaseInfo* out) {
  std::ifstream in(path);
  if (!in) return false;
  *out = LeaseInfo{};
  bool have_pid = false, have_host = false;
  std::string key;
  while (in >> key) {
    std::string value;
    std::getline(in, value);
    if (!value.empty() && value.front() == ' ') value.erase(0, 1);
    if (key == "pid") {
      char* end = nullptr;
      out->pid = std::strtoll(value.c_str(), &end, 10);
      have_pid = end != nullptr && *end == '\0' && !value.empty();
    } else if (key == "host") {
      out->host = value;
      have_host = !value.empty();
    } else if (key == "name") {
      out->name = value;
    } else if (key == "started_utc") {
      out->started_utc = value;
    }
  }
  return have_pid && have_host;
}

bool lease_is_stale(const std::string& path, double stale_after_seconds) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return false;  // gone: nothing to take over
  LeaseInfo info;
  if (!lease_read(path, &info)) return true;  // malformed body: reclaim it
  if (info.host == lease_hostname()) return !process_alive(info.pid);
  // Foreign host: PIDs mean nothing here. Only an explicit age threshold
  // can declare it dead.
  if (stale_after_seconds <= 0.0) return false;
  const std::time_t now = std::time(nullptr);
  return std::difftime(now, st.st_mtime) > stale_after_seconds;
}

void lease_release(const std::string& path) { ::unlink(path.c_str()); }

}  // namespace cr
