/// \file
/// Statistical assertion predicates shared by the gtest suites and the
/// `cr verify` claim checker (src/verify/).
///
/// Monte-Carlo checks at fixed seeds fail for one of two reasons: a real
/// semantic regression, or a tolerance that was hand-tuned too tight. These
/// helpers make the tolerance policy explicit and the failure messages
/// diagnostic (both sides, their spread, and the bound that was violated).
/// They used to live in tests/stat_assert.hpp returning
/// ::testing::AssertionResult; the ClaimRegistry needs the same predicates
/// without a gtest dependency, so the one implementation now lives here and
/// returns a plain CheckResult. CheckResult converts implicitly to any
/// bool-constructible, string-streamable result type — in a test,
/// EXPECT_TRUE(stat::in_range(...)) still lands in a
/// ::testing::AssertionResult with the full diagnostic attached
/// (tests/stat_assert.hpp is now a thin include of this header).
#pragma once

#include <algorithm>
#include <cmath>
#include <concepts>
#include <sstream>
#include <string>

#include "common/stats.hpp"

namespace cr::stat {

/// Outcome of one statistical predicate: a verdict plus the diagnostic
/// message (populated on success too — `cr verify` prints observed-vs-bound
/// either way).
struct CheckResult {
  bool passed = false;
  std::string message;

  explicit operator bool() const { return passed; }

  /// Adapter to result-like types that construct from bool and accept
  /// streamed strings — in practice ::testing::AssertionResult, so gtest
  /// call sites keep their full diagnostics without this header (or the
  /// library it lives in) depending on gtest.
  template <typename R>
    requires std::constructible_from<R, bool> &&
             requires(R r, const std::string& s) { r << s; }
  operator R() const {  // NOLINT(google-explicit-constructor)
    R result(passed);
    result << message;
    return result;
  }
};

inline CheckResult check_pass(std::string message) { return {true, std::move(message)}; }
inline CheckResult check_fail(std::string message) { return {false, std::move(message)}; }

inline std::string describe(const Accumulator& acc) {
  std::ostringstream os;
  os << acc.mean() << " (sd=" << acc.stddev() << ", n=" << acc.count() << ")";
  return os.str();
}

/// Scalar in [lo, hi] (inclusive).
inline CheckResult in_range(double value, double lo, double hi) {
  std::ostringstream os;
  os << "value " << value << (value >= lo && value <= hi ? " inside [" : " outside [") << lo
     << ", " << hi << "]";
  return {value >= lo && value <= hi, os.str()};
}

/// `large` grew by at least `min_factor` relative to `small` (superlinearity
/// style checks: scaling up the instance must scale the measurement).
inline CheckResult growth_at_least(double small, double large, double min_factor) {
  const double factor = small != 0.0 ? large / small : 0.0;
  if (large >= min_factor * small) {
    std::ostringstream os;
    os << small << " -> " << large << " is " << factor << "x (>= " << min_factor << "x)";
    return check_pass(os.str());
  }
  std::ostringstream os;
  os << "expected growth >= " << min_factor << "x but " << small << " -> " << large
     << " is only " << factor << "x";
  return check_fail(os.str());
}

/// `large` grew by at most `max_factor` relative to `small` (polylog style
/// checks: scaling up the instance must NOT scale the measurement much).
inline CheckResult growth_at_most(double small, double large, double max_factor) {
  const double factor = small != 0.0 ? large / small : 0.0;
  if (large <= max_factor * small) {
    std::ostringstream os;
    os << small << " -> " << large << " is " << factor << "x (<= " << max_factor << "x)";
    return check_pass(os.str());
  }
  std::ostringstream os;
  os << "expected growth <= " << max_factor << "x but " << small << " -> " << large << " is "
     << factor << "x";
  return check_fail(os.str());
}

/// The two scalars agree within a multiplicative band:
/// min/max >= 1/max_ratio. Used for "this normalized quantity is flat"
/// claims.
inline CheckResult within_factor(double a, double b, double max_ratio) {
  const double lo = std::min(a, b);
  const double hi = std::max(a, b);
  const double ratio = lo > 0.0 ? hi / lo : 0.0;
  if (lo > 0.0 && ratio <= max_ratio) {
    std::ostringstream os;
    os << a << " vs " << b << " differ by " << ratio << "x (allowed " << max_ratio << "x)";
    return check_pass(os.str());
  }
  std::ostringstream os;
  os << a << " vs " << b << " differ by " << ratio << "x (allowed " << max_ratio << "x)";
  return check_fail(os.str());
}

/// Two-sample agreement of means: |mean_a - mean_b| must not exceed the
/// combined z-standard-error plus an explicit slack
/// (abs_slack + rel_slack·max(|mean_a|, |mean_b|)). The z·SE term absorbs
/// Monte-Carlo noise; the slack term is the tolerated systematic
/// difference — make it 0 to assert statistical identity.
inline CheckResult means_agree(const Accumulator& a, const Accumulator& b, double z = 3.0,
                               double rel_slack = 0.0, double abs_slack = 0.0) {
  const double se_a = a.count() >= 2 ? a.variance() / static_cast<double>(a.count()) : 0.0;
  const double se_b = b.count() >= 2 ? b.variance() / static_cast<double>(b.count()) : 0.0;
  const double se = std::sqrt(se_a + se_b);
  const double bound =
      z * se + abs_slack + rel_slack * std::max(std::abs(a.mean()), std::abs(b.mean()));
  const double diff = std::abs(a.mean() - b.mean());
  if (diff <= bound) {
    std::ostringstream os;
    os << "means differ by " << diff << " <= bound " << bound;
    return check_pass(os.str());
  }
  std::ostringstream os;
  os << "means differ by " << diff << " > bound " << bound << " (z*SE=" << z * se
     << "): a=" << describe(a) << " b=" << describe(b);
  return check_fail(os.str());
}

/// One-sided dominance with slack: mean_a <= factor·mean_b. The classic
/// "adaptive beats non-adaptive by a constant factor" claim shape.
inline CheckResult mean_at_most(const Accumulator& a, const Accumulator& b, double factor) {
  if (a.mean() <= factor * b.mean()) {
    std::ostringstream os;
    os << "mean(a)=" << a.mean() << " <= " << factor << "*mean(b)=" << factor * b.mean();
    return check_pass(os.str());
  }
  std::ostringstream os;
  os << "expected mean(a) <= " << factor << "*mean(b) but a=" << describe(a)
     << " b=" << describe(b);
  return check_fail(os.str());
}

/// Empirical quantile q of the sample within [lo, hi] (fixed seeds make
/// this deterministic; bounds encode the claim's predicted band).
inline CheckResult quantile_within(const Quantiles& sample, double q, double lo, double hi) {
  const double value = sample.quantile(q);
  if (value >= lo && value <= hi) {
    std::ostringstream os;
    os << "quantile(" << q << ") = " << value << " inside [" << lo << ", " << hi << "]";
    return check_pass(os.str());
  }
  std::ostringstream os;
  os << "quantile(" << q << ") = " << value << " outside [" << lo << ", " << hi << "] over "
     << sample.size() << " samples";
  return check_fail(os.str());
}

}  // namespace cr::stat
