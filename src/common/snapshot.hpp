/// \file
/// Versioned, checksummed binary snapshot framing for checkpoint/restore.
///
/// A snapshot is a little-endian byte blob with a fixed header:
///
///     offset  size  field
///     0       6     magic "CRSNAP"
///     6       2     reserved (zero)
///     8       4     schema version (u32)
///     12      4     reserved (zero)
///     16      8     payload size in bytes (u64)
///     24      8     FNV-1a 64 checksum of the payload (u64)
///     32      ...   payload
///
/// SnapshotWriter appends primitives to the payload and seal() prepends the
/// header. SnapshotReader validates the header first (magic, version, size,
/// checksum) and then serves bounds-checked reads. Every failure mode —
/// wrong magic, version mismatch, truncation, checksum mismatch, a count
/// field larger than the remaining bytes — sets a named, sticky diagnostic
/// (`error()`); after a failure all reads return zero values and never touch
/// out-of-bounds memory. Corrupt input is a reported error, never UB: this
/// is what lets `cr stream --restore` and the snapshot tests feed arbitrary
/// garbage through the reader under ASan/UBSan.
///
/// Determinism contract (rule 8 in docs/ARCHITECTURE.md): restoring a
/// snapshot and continuing must be bit-identical to never having stopped.
/// Writers therefore serialize state verbatim (e.g. the calendar's heap
/// array in storage order, never re-heapified) so every tie-break downstream
/// is preserved.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace cr {

/// FNV-1a 64-bit over a byte range (snapshot payload checksum).
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n);

/// Append-only payload builder. All integers little-endian; doubles are
/// bit-copied IEEE-754 words (exactness matters: restored state must be
/// bit-identical, not merely close).
class SnapshotWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { append(&v, sizeof(v)); }
  void u64(std::uint64_t v) { append(&v, sizeof(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    append(s.data(), s.size());
  }

  std::size_t payload_size() const { return buf_.size(); }

  /// The finished blob: header (with `version`) + payload.
  std::vector<std::uint8_t> seal(std::uint32_t version) const;

 private:
  void append(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked payload reader with sticky named diagnostics.
class SnapshotReader {
 public:
  /// Validates the header against `expected_version`. On any header problem
  /// the reader starts in the failed state (ok() == false) and every read
  /// returns zero.
  SnapshotReader(const std::uint8_t* data, std::size_t size, std::uint32_t expected_version);
  SnapshotReader(const std::vector<std::uint8_t>& blob, std::uint32_t expected_version)
      : SnapshotReader(blob.data(), blob.size(), expected_version) {}

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  /// Record a reader-side failure (e.g. a semantic mismatch the caller
  /// detects). First failure wins; later reads are no-ops.
  void fail(const std::string& message);

  std::uint8_t u8(const char* field);
  std::uint32_t u32(const char* field);
  std::uint64_t u64(const char* field);
  double f64(const char* field);
  std::string str(const char* field);

  /// Guard for count-prefixed arrays: fails (and returns false) unless at
  /// least `count * elem_size` payload bytes remain — a corrupted count can
  /// never trigger a huge allocation or an out-of-bounds loop.
  bool check_count(std::uint64_t count, std::size_t elem_size, const char* field);

  /// Fails unless the payload was consumed exactly (trailing garbage is a
  /// framing error, not ignorable padding).
  void expect_end();

 private:
  bool take(void* out, std::size_t n, const char* field);

  const std::uint8_t* payload_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace cr
