// Tiny command-line flag parser for the bench and example binaries.
//
// Accepts --name=value and --name value; bare --flag is boolean true.
// Unknown positional arguments are collected and retrievable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cr {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace cr
