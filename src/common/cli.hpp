// Tiny command-line flag parser for the bench and example binaries.
//
// Accepts --name=value and --name value; bare --flag is boolean true.
// Unknown positional arguments are collected and retrievable.
//
// Binaries declare their known flags and call reject_unknown() so a typo
// (--rep=10 for --reps=10) fails loudly instead of silently running with
// the default. Every get_*/has call also registers its name, so declare()
// only needs the flags that are read conditionally after the check.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace cr {

/// Levenshtein distance, for did-you-mean suggestions.
std::size_t edit_distance(const std::string& a, const std::string& b);

/// The candidate closest to `name` (edit distance < 3), or "" when nothing
/// is close enough to suggest. Shared by flag parsing, `cr bench <unknown>`
/// and workload-parameter validation.
std::string closest_match(const std::string& name, const std::vector<std::string>& candidates);

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Register flag names as known without reading them.
  void declare(std::initializer_list<const char*> names) const;
  void declare(const std::vector<std::string>& names) const;

  /// Flags that were passed but never declared or read.
  std::vector<std::string> unknown_flags() const;

  /// Exit(2) with a clear message (including a did-you-mean suggestion)
  /// if any passed flag is unknown. Call after declaring/reading all flags.
  void reject_unknown() const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

  /// Every --name=value pair as parsed, in name order. For flag sets whose
  /// names are dynamic (the workload bench's `arrival.*`/`jammer.*` keys);
  /// callers remain responsible for declaring what they consume.
  const std::map<std::string, std::string>& raw_flags() const { return flags_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  /// Names registered via declare() or any accessor; mutable (with a mutex)
  /// so the const accessors benches already use keep registering reads even
  /// when a shared Cli is read from parallel replication workers.
  mutable std::mutex known_mutex_;
  mutable std::set<std::string> known_;
};

}  // namespace cr
