#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/check.hpp"
#include "common/csv.hpp"

namespace cr {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

Cell::Cell(std::int64_t v) {
  std::ostringstream os;
  os << v;
  text_ = os.str();
}

Cell::Cell(std::uint64_t v) {
  std::ostringstream os;
  os << v;
  text_ = os.str();
}

Cell::Cell(double v, int precision) : text_(format_double(v, precision)) {}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CR_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<Cell> cells) {
  CR_CHECK(cells.size() == headers_.size());
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (auto& c : cells) row.push_back(c.text());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto print_sep = [&] {
    os << '+';
    for (auto w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t i = cells[c].size(); i < widths[c]; ++i) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void write_table_csv(const Table& table, const std::vector<std::string>& columns,
                     std::ostream& os) {
  CR_CHECK(columns.size() == table.cols());
  CsvWriter csv(os, columns);
  for (const auto& row : table.row_text()) csv.row(row);
}

}  // namespace cr
