/// \file
/// Source digest: the cache-key component that ties a result to the code
/// that produced it.
///
/// The digest is FNV-1a 64 over the bytes of the RUNNING EXECUTABLE
/// (/proc/self/exe), hex-formatted. Hashing the binary rather than the
/// source tree is deliberate:
///
///   * it is exact — any code change that can change behaviour changes the
///     binary, including uncommitted edits a git-SHA digest would miss;
///   * it needs no VCS at run time, so workers on a bare CI image or an
///     ssh host with only the binary still key the cache correctly;
///   * it is conservative — a rebuild that happens to produce different
///     bytes (new compiler, flags) misses the cache instead of serving
///     results from code that may differ.
///
/// Two different binaries (e.g. `cr` vs a test executable) therefore never
/// share CellCache entries, which is exactly the isolation the determinism
/// contract needs. The digest is computed once per process and cached.
#pragma once

#include <string>

namespace cr {

/// 16-hex-digit FNV-1a 64 digest of the running executable's bytes.
/// Computed on first call, cached for the process lifetime. Returns
/// "unknown" only if /proc/self/exe cannot be read.
const std::string& source_digest();

/// `cr version --json`: a single JSON object with the provenance fields a
/// cache key or a bug report needs. `git_sha`/`build_type` are passed in
/// (they are CLI-layer facts); `source_digest` and the C++ standard are
/// added here. The output parses with cr::JsonValue (round-trip tested).
std::string version_json(const std::string& git_sha, const std::string& build_type);

}  // namespace cr
