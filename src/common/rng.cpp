#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace cr {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  seed_ = seed;
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // xoshiro must not start from the all-zero state; splitmix64 cannot emit
  // four consecutive zeros, but keep the guard for belt and braces.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork(std::uint64_t tag) const {
  std::uint64_t sm = seed_ ^ (tag * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  return Rng(splitmix64(sm));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  CR_DCHECK(n > 0);
  // Lemire-style rejection for unbiased bounded integers.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  CR_DCHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [lo, hi]; fall back to raw bits.
  if (span == 0) return static_cast<std::int64_t>(next_u64());
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  // Exploit symmetry so the mean used below is at most n/2.
  if (p > 0.5) return n - binomial(n, 1.0 - p);

  const double mean = static_cast<double>(n) * p;

  if (n <= 64) {
    std::uint64_t hits = 0;
    for (std::uint64_t i = 0; i < n; ++i) hits += bernoulli(p) ? 1 : 0;
    return hits;
  }

  if (mean <= kInversionMeanCutoff) {
    // BINV: sequential CDF inversion. Expected work O(mean).
    const double q = 1.0 - p;
    const double s = p / q;
    double f = std::pow(q, static_cast<double>(n));  // P[X = 0]
    if (f <= 0.0) {
      // Underflow can only happen when mean is huge, excluded by the cutoff,
      // or n astronomically large with tiny p; fall through to normal approx.
    } else {
      double u = uniform01();
      std::uint64_t k = 0;
      double a = static_cast<double>(n);
      while (u > f) {
        u -= f;
        ++k;
        if (k > n) return n;  // numerical tail guard
        f *= s * (a - static_cast<double>(k) + 1.0) / static_cast<double>(k);
        if (f <= 0.0) break;  // deep tail: probabilities vanish
      }
      return k;
    }
  }

  // Normal approximation with continuity correction, clamped to [0, n].
  const double sd = std::sqrt(mean * (1.0 - p));
  const double x = std::floor(mean + sd * normal01() + 0.5);
  if (x < 0.0) return 0;
  if (x > static_cast<double>(n)) return n;
  return static_cast<std::uint64_t>(x);
}

std::uint64_t Rng::geometric(double p) {
  CR_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  const double u = 1.0 - uniform01();  // in (0, 1]
  const double g = std::floor(std::log(u) / std::log1p(-p));
  if (g < 0.0) return 0;
  return static_cast<std::uint64_t>(g);
}

double Rng::normal01() {
  // Box–Muller; draws fresh uniforms each call (no cached spare, keeps the
  // generator state a pure function of the number of calls made).
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double two_pi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

}  // namespace cr
