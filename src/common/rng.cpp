#include "common/rng.hpp"

namespace cr {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  seed_ = seed;
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // xoshiro must not start from the all-zero state; splitmix64 cannot emit
  // four consecutive zeros, but keep the guard for belt and braces.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork(std::uint64_t tag) const { return Rng(rng_detail::fork_seed(seed_, tag)); }

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Rng::skip(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) next_u64();
}

void Rng::fill(std::uint64_t* out, std::size_t n) {
  // The state words live in registers for the whole loop — one cross-TU
  // call per block instead of one per draw.
  for (std::size_t i = 0; i < n; ++i) out[i] = next_u64();
}

// The distribution methods delegate to the rng_detail templates (shared with
// CounterRng::Stream); the sequences are bit-identical to the pre-template
// implementations because the templates are those implementations, moved.

double Rng::uniform01() { return rng_detail::uniform01(*this); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) { return rng_detail::uniform_u64(*this, n); }

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  return rng_detail::uniform_range(*this, lo, hi);
}

bool Rng::bernoulli(double p) { return rng_detail::bernoulli(*this, p); }

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  return rng_detail::binomial(*this, n, p);
}

std::uint64_t Rng::geometric(double p) { return rng_detail::geometric(*this, p); }

double Rng::normal01() { return rng_detail::normal01(*this); }

// --- CounterRng batched sweeps ---------------------------------------------
// block() itself lives in the header so these loops (and the engine's hot
// paths) inline it; the cross-replication sweeps below stay out of line —
// they are called once per chunk, not once per draw.

void CounterRng::fill_keys(const std::uint64_t* keys, std::size_t r, std::uint64_t hi,
                           std::uint64_t index, std::uint64_t* out) {
  const std::uint64_t blk = index >> 1;
  const bool second = (index & 1) != 0;
  std::size_t i = 0;
  for (; i + 2 <= r; i += 2) {
    // Two independent key chains per iteration keep the multiplier busy.
    const Block a = CounterRng(keys[i]).block(blk, hi);
    const Block b = CounterRng(keys[i + 1]).block(blk, hi);
    out[i] = second ? a.w1 : a.w0;
    out[i + 1] = second ? b.w1 : b.w0;
  }
  for (; i < r; ++i) out[i] = CounterRng(keys[i]).at(hi, index);
}

void CounterRng::fill_keys_unit(const std::uint64_t* keys, std::size_t r, std::uint64_t hi,
                                std::uint64_t index, double* out) {
  const std::uint64_t blk = index >> 1;
  const bool second = (index & 1) != 0;
  std::size_t i = 0;
  for (; i + 2 <= r; i += 2) {
    const Block a = CounterRng(keys[i]).block(blk, hi);
    const Block b = CounterRng(keys[i + 1]).block(blk, hi);
    out[i] = static_cast<double>((second ? a.w1 : a.w0) >> 11) * 0x1.0p-53;
    out[i + 1] = static_cast<double>((second ? b.w1 : b.w0) >> 11) * 0x1.0p-53;
  }
  for (; i < r; ++i)
    out[i] = static_cast<double>(CounterRng(keys[i]).at(hi, index) >> 11) * 0x1.0p-53;
}

void CounterRng::binomial_keys(const std::uint64_t* keys, std::size_t r, std::uint64_t hi,
                               std::uint64_t n, double p, std::uint64_t* out) {
  // Mirror of rng_detail::binomial with the per-key-invariant work hoisted:
  // branch classification and the pow(q, n) inversion anchor depend only on
  // (n, p), so they are computed once for the whole key sweep. Each out[i]
  // is bit-identical to CounterRng(keys[i]).stream(hi).binomial(n, p).
  if (n == 0 || p <= 0.0) {
    for (std::size_t i = 0; i < r; ++i) out[i] = 0;
    return;
  }
  if (p >= 1.0) {
    for (std::size_t i = 0; i < r; ++i) out[i] = n;
    return;
  }
  const bool flip = p > 0.5;
  const double q = flip ? 1.0 - p : p;

  if (n <= 64) {
    std::uint64_t words[64];
    for (std::size_t i = 0; i < r; ++i) {
      CounterRng(keys[i]).fill(hi, 0, words, n);
      std::uint64_t hits = 0;
      for (std::uint64_t w = 0; w < n; ++w)
        hits += (static_cast<double>(words[w] >> 11) * 0x1.0p-53 < q) ? 1 : 0;
      out[i] = flip ? n - hits : hits;
    }
    return;
  }

  const double mean = static_cast<double>(n) * q;
  const double f0 =
      mean <= rng_detail::kInversionMeanCutoff ? std::pow(1.0 - q, static_cast<double>(n)) : 0.0;
  if (mean <= rng_detail::kInversionMeanCutoff && f0 > 0.0) {
    // BINV, one uniform per key; the inversion walk is pure arithmetic.
    const double s = q / (1.0 - q);
    const double a = static_cast<double>(n);
    for (std::size_t i = 0; i < r; ++i) {
      double u = static_cast<double>(CounterRng(keys[i]).at(hi, 0) >> 11) * 0x1.0p-53;
      double f = f0;
      std::uint64_t k = 0;
      while (u > f) {
        u -= f;
        ++k;
        if (k > n) {
          k = n;
          break;
        }
        f *= s * (a - static_cast<double>(k) + 1.0) / static_cast<double>(k);
        if (f <= 0.0) break;
      }
      out[i] = flip ? n - k : k;
    }
    return;
  }

  // Normal-approximation tail (or pow underflow): per-key word consumption
  // can vary in the u1 <= 0 rejection loop, so run the scalar cursor.
  for (std::size_t i = 0; i < r; ++i) {
    Stream st = CounterRng(keys[i]).stream(hi);
    const std::uint64_t k = rng_detail::binomial(st, n, q);
    out[i] = flip ? n - k : k;
  }
}

}  // namespace cr
