#include "common/rng.hpp"

namespace cr {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  seed_ = seed;
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // xoshiro must not start from the all-zero state; splitmix64 cannot emit
  // four consecutive zeros, but keep the guard for belt and braces.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork(std::uint64_t tag) const { return Rng(rng_detail::fork_seed(seed_, tag)); }

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

// The distribution methods delegate to the rng_detail templates (shared with
// CounterRng::Stream); the sequences are bit-identical to the pre-template
// implementations because the templates are those implementations, moved.

double Rng::uniform01() { return rng_detail::uniform01(*this); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) { return rng_detail::uniform_u64(*this, n); }

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  return rng_detail::uniform_range(*this, lo, hi);
}

bool Rng::bernoulli(double p) { return rng_detail::bernoulli(*this, p); }

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  return rng_detail::binomial(*this, n, p);
}

std::uint64_t Rng::geometric(double p) { return rng_detail::geometric(*this, p); }

double Rng::normal01() { return rng_detail::normal01(*this); }

// --- CounterRng ------------------------------------------------------------

CounterRng::Block CounterRng::block(std::uint64_t blk, std::uint64_t hi) const {
  // Philox2x64-10 (Salmon et al., "Parallel random numbers: as easy as
  // 1, 2, 3"): ten rounds of multiply-hi/lo mixing with a Weyl key schedule.
  constexpr std::uint64_t kMult = 0xD2B74407B1CE6E93ULL;
  constexpr std::uint64_t kWeyl = 0x9E3779B97F4A7C15ULL;
  std::uint64_t x0 = blk;
  std::uint64_t x1 = hi;
  std::uint64_t k = key_;
  for (int round = 0; round < 10; ++round) {
    const __uint128_t prod = static_cast<__uint128_t>(kMult) * x0;
    const auto prod_hi = static_cast<std::uint64_t>(prod >> 64);
    const auto prod_lo = static_cast<std::uint64_t>(prod);
    x0 = prod_hi ^ k ^ x1;
    x1 = prod_lo;
    k += kWeyl;
  }
  return {x0, x1};
}

}  // namespace cr
