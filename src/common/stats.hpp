// Small statistics toolkit for experiment aggregation.
//
// Accumulator      — streaming mean/variance (Welford), min/max, count.
// Quantiles        — exact empirical quantiles over a stored sample.
// Summary          — value bundle emitted by the harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cr {

/// Streaming mean / variance / extremes. Numerically stable (Welford).
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than two observations).
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores samples; answers exact empirical quantiles.
class Quantiles {
 public:
  void add(double x);
  void reserve(std::size_t n) { xs_.reserve(n); }
  std::size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  /// q in [0,1]; exact nearest-rank (the ceil(q·n)-th order statistic, so
  /// q=0 is the minimum and q=1 the maximum), robust to floating-point
  /// representation of q — quantile(0.99) over 100 samples is the 99th
  /// order statistic, not the 100th. Empty sample: returns 0.0 (n=1
  /// returns the lone sample for every q).
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double max() const { return quantile(1.0); }

  const std::vector<double>& samples() const { return xs_; }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Aggregate of one measured quantity across replications.
struct Summary {
  std::string name;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::uint64_t n = 0;
};

Summary summarize(const std::string& name, const Accumulator& acc);

/// Ordinary least squares fit y ≈ slope·x + intercept. Requires xs.size() ==
/// ys.size() >= 2. Used by benches to report empirical scaling exponents
/// (e.g. fit log(completion) against log(n)).
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace cr
