/// \file
/// Minimal JSON reader for suite manifests (src/cli/suite.cpp).
///
/// Supports the full JSON value grammar (objects, arrays, strings, numbers,
/// booleans, null) with two deliberate properties the suite runner depends
/// on:
///
///   * object member order is PRESERVED (members_ is a vector, not a map),
///     so grid axes expand in the order the manifest author wrote them and
///     cell ids / CSV filenames are stable across platforms;
///   * numbers keep their RAW source text alongside the parsed double, so a
///     manifest value like `0.25` or `4096` can be forwarded to a bench flag
///     byte-for-byte instead of being re-formatted through double round-trip;
///   * duplicate object keys are a parse ERROR (RFC 8259 leaves the choice
///     open) — a manifest with two "cells" keys would otherwise silently
///     drop a whole block of experiments.
///
/// No external dependency: the container must not grow one (see ROADMAP),
/// and manifests are small enough that a recursive-descent parser is plenty.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cr {

class JsonValue;

/// Parse outcome: either a value or a position-annotated error message.
struct JsonParseResult {
  std::shared_ptr<JsonValue> value;  ///< null on error
  std::string error;                 ///< empty on success, "line L: msg" otherwise

  bool ok() const { return value != nullptr; }
};

/// One JSON value. Immutable after parsing; cheap to share.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// kBool only (CR_CHECK otherwise).
  bool as_bool() const;
  /// kNumber only.
  double as_number() const;
  /// kNumber only: the literal as written in the source ("0.25", "4096").
  const std::string& raw_number() const;
  /// kString only: the decoded string.
  const std::string& as_string() const;
  /// kNumber or kString: the natural flag-value text (raw literal for
  /// numbers, decoded text for strings). CR_CHECK on other kinds.
  std::string scalar_text() const;

  /// kArray only.
  const std::vector<std::shared_ptr<JsonValue>>& items() const;
  /// kObject only, in source order.
  const std::vector<std::pair<std::string, std::shared_ptr<JsonValue>>>& members() const;
  /// kObject only: first member with `key`, nullptr when absent.
  const JsonValue* find(const std::string& key) const;

  /// Parse a complete JSON document (trailing garbage is an error).
  static JsonParseResult parse(const std::string& text);
  /// Read + parse a file; errors mention the path.
  static JsonParseResult parse_file(const std::string& path);

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string text_;  ///< kString: decoded value; kNumber: raw literal
  std::vector<std::shared_ptr<JsonValue>> items_;
  std::vector<std::pair<std::string, std::shared_ptr<JsonValue>>> members_;
};

}  // namespace cr
