#include "common/functions.hpp"

#include <cmath>
#include <cstdint>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace cr {

GrowthFn::GrowthFn(std::string name, std::function<double(double)> fn)
    : name_(std::move(name)), fn_(std::move(fn)) {
  CR_CHECK(fn_ != nullptr);
}

namespace fn {

GrowthFn constant(double c) {
  CR_CHECK(c > 0.0);
  std::ostringstream os;
  os << "const(" << c << ")";
  return GrowthFn(os.str(), [c](double) { return c; });
}

GrowthFn log2p(double scale) {
  CR_CHECK(scale > 0.0);
  std::ostringstream os;
  os << scale << "*log2(x+2)";
  return GrowthFn(os.str(), [scale](double x) { return scale * std::log2(x + 2.0); });
}

GrowthFn poly_log(double scale, double exponent) {
  CR_CHECK(scale > 0.0 && exponent > 0.0);
  std::ostringstream os;
  os << scale << "*log2(x+2)^" << exponent;
  return GrowthFn(os.str(), [scale, exponent](double x) {
    return scale * std::pow(std::log2(x + 2.0), exponent);
  });
}

GrowthFn exp_sqrt_log(double scale) {
  CR_CHECK(scale > 0.0);
  std::ostringstream os;
  os << "2^(" << scale << "*sqrt(log2(x+2)))";
  return GrowthFn(os.str(), [scale](double x) {
    return std::exp2(scale * std::sqrt(std::log2(x + 2.0)));
  });
}

GrowthFn poly(double exponent) {
  CR_CHECK(exponent > 0.0);
  std::ostringstream os;
  os << "x^" << exponent;
  return GrowthFn(os.str(), [exponent](double x) { return std::pow(x, exponent); });
}

}  // namespace fn

double FunctionSet::f(double x) const {
  const double lg = std::max(1.0, std::log2(g(x)));
  return cf * std::log2(x + 2.0) / (lg * lg);
}

double FunctionSet::h_backoff(double x) const {
  CR_DCHECK(a > 0.0);
  return std::max(1.0, f(x) / a);
}

unsigned FunctionSet::backoff_sends(std::uint64_t stage_len) const {
  const double h = h_backoff(static_cast<double>(stage_len));
  const double capped = std::min(h, static_cast<double>(stage_len));
  const long long rounded = std::llround(capped);
  return static_cast<unsigned>(std::max(1LL, rounded));
}

double FunctionSet::h_ctrl(double x) const {
  CR_DCHECK(x >= 1.0);
  return std::min(1.0, c_ctrl * std::log2(x + 2.0) / x);
}

double FunctionSet::h_data(double x) {
  CR_DCHECK(x >= 1.0);
  return std::min(1.0, 1.0 / x);
}

std::string FunctionSet::describe() const {
  std::ostringstream os;
  os << "g=" << g.name() << ", cf=" << cf << ", a=" << a << ", c3=" << c_ctrl;
  return os.str();
}

SublogReport check_sublogarithmic(const GrowthFn& h, double x_max) {
  SublogReport rep;
  // Geometric grid 16, 32, ..., x_max.
  const double kBigOConst = 64.0;      // generous: h(x) <= 64·log2(x)
  const double kDoublingConst = 16.0;  // |h(2x) − h(x)| <= 16
  double prev = h(16.0);
  for (double x = 16.0; x <= x_max; x *= 2.0) {
    const double hx = h(x);
    if (hx + 1e-9 < prev) rep.non_decreasing = false;
    if (hx > kBigOConst * std::log2(x)) rep.big_o_log = false;
    if (std::fabs(h(2.0 * x) - hx) > kDoublingConst) rep.doubling_bounded = false;
    prev = hx;
  }
  // Condition (4): h(x^c) = Θ(h(x)) — ratio bounded both ways on the grid.
  for (double x = 64.0; x <= x_max; x *= 4.0) {
    for (double c : {2.0, 3.0}) {
      const double num = h(std::pow(x, c));
      const double den = h(x);
      if (den <= 0.0 || num / den > 16.0 || num / den < 1.0 / 16.0) rep.power_theta = false;
    }
  }
  return rep;
}

}  // namespace cr
