// Minimal CSV emitter for experiment results.
//
// Values containing commas/quotes/newlines are quoted per RFC 4180.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace cr {

class CsvWriter {
 public:
  /// Writes the header immediately. `os` must outlive the writer.
  CsvWriter(std::ostream& os, std::vector<std::string> header);

  void row(const std::vector<std::string>& values);

  /// Convenience: formats doubles with 6 significant digits.
  void row_numeric(const std::vector<double>& values);

  std::size_t rows_written() const { return rows_; }

  static std::string escape(const std::string& value);

 private:
  std::ostream& os_;
  std::size_t cols_;
  std::size_t rows_ = 0;
};

}  // namespace cr
