#include "common/json.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace cr {

bool JsonValue::as_bool() const {
  CR_CHECK(kind_ == Kind::kBool);
  return bool_;
}

double JsonValue::as_number() const {
  CR_CHECK(kind_ == Kind::kNumber);
  return number_;
}

const std::string& JsonValue::raw_number() const {
  CR_CHECK(kind_ == Kind::kNumber);
  return text_;
}

const std::string& JsonValue::as_string() const {
  CR_CHECK(kind_ == Kind::kString);
  return text_;
}

std::string JsonValue::scalar_text() const {
  CR_CHECK(kind_ == Kind::kNumber || kind_ == Kind::kString);
  return text_;
}

const std::vector<std::shared_ptr<JsonValue>>& JsonValue::items() const {
  CR_CHECK(kind_ == Kind::kArray);
  return items_;
}

const std::vector<std::pair<std::string, std::shared_ptr<JsonValue>>>& JsonValue::members()
    const {
  CR_CHECK(kind_ == Kind::kObject);
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  CR_CHECK(kind_ == Kind::kObject);
  for (const auto& [name, value] : members_)
    if (name == key) return value.get();
  return nullptr;
}

/// Recursive-descent parser over the whole document string.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult out;
    auto value = parse_value();
    if (!error_.empty()) {
      out.error = error_;
      return out;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      out.error = at("trailing characters after the top-level value");
      return out;
    }
    out.value = std::move(value);
    return out;
  }

 private:
  std::string at(const std::string& msg) {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i)
      if (text_[i] == '\n') ++line;
    std::ostringstream os;
    os << "line " << line << ": " << msg;
    return os.str();
  }

  void fail(const std::string& msg) {
    if (error_.empty()) error_ = at(msg);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::shared_ptr<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return nullptr;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string_value();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    if (text_.compare(pos_, 4, "true") == 0) return literal(4, JsonValue::Kind::kBool, true);
    if (text_.compare(pos_, 5, "false") == 0) return literal(5, JsonValue::Kind::kBool, false);
    if (text_.compare(pos_, 4, "null") == 0) return literal(4, JsonValue::Kind::kNull, false);
    fail("expected a JSON value");
    return nullptr;
  }

  std::shared_ptr<JsonValue> literal(std::size_t len, JsonValue::Kind kind, bool b) {
    pos_ += len;
    auto v = std::make_shared<JsonValue>();
    v->kind_ = kind;
    v->bool_ = b;
    return v;
  }

  std::shared_ptr<JsonValue> parse_object() {
    ++pos_;  // '{'
    auto v = std::make_shared<JsonValue>();
    v->kind_ = JsonValue::Kind::kObject;
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected a quoted object key");
        return nullptr;
      }
      std::string key;
      if (!parse_string_text(&key)) return nullptr;
      if (!consume(':')) {
        fail("expected ':' after object key");
        return nullptr;
      }
      auto member = parse_value();
      if (!error_.empty()) return nullptr;
      // Duplicate keys are rejected rather than silently shadowed: in a
      // suite manifest a second "cells" key would otherwise drop a whole
      // block of experiments with no error.
      for (const auto& [existing, unused] : v->members_) {
        if (existing == key) {
          fail("duplicate object key \"" + key + "\"");
          return nullptr;
        }
      }
      v->members_.emplace_back(std::move(key), std::move(member));
      if (consume(',')) continue;
      if (consume('}')) return v;
      fail("expected ',' or '}' in object");
      return nullptr;
    }
  }

  std::shared_ptr<JsonValue> parse_array() {
    ++pos_;  // '['
    auto v = std::make_shared<JsonValue>();
    v->kind_ = JsonValue::Kind::kArray;
    if (consume(']')) return v;
    while (true) {
      auto item = parse_value();
      if (!error_.empty()) return nullptr;
      v->items_.push_back(std::move(item));
      if (consume(',')) continue;
      if (consume(']')) return v;
      fail("expected ',' or ']' in array");
      return nullptr;
    }
  }

  bool parse_string_text(std::string* out) {
    ++pos_;  // opening '"'
    std::string s;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        *out = std::move(s);
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u': {
            // Manifests are ASCII in practice; decode BMP escapes to UTF-8,
            // enough for any key/label a suite would use.
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9')
                code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code += static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("invalid \\u escape");
                return false;
              }
            }
            if (code < 0x80) {
              s += static_cast<char>(code);
            } else if (code < 0x800) {
              s += static_cast<char>(0xC0 | (code >> 6));
              s += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (code >> 12));
              s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape character");
            return false;
        }
        continue;
      }
      if (c == '\n') {
        fail("unterminated string");
        return false;
      }
      s += c;
    }
    fail("unterminated string");
    return false;
  }

  std::shared_ptr<JsonValue> parse_string_value() {
    std::string s;
    if (!parse_string_text(&s)) return nullptr;
    auto v = std::make_shared<JsonValue>();
    v->kind_ = JsonValue::Kind::kString;
    v->text_ = std::move(s);
    return v;
  }

  std::shared_ptr<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    const std::string raw = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(raw.c_str(), &end);
    if (raw.empty() || end != raw.c_str() + raw.size()) {
      fail("malformed number");
      return nullptr;
    }
    auto v = std::make_shared<JsonValue>();
    v->kind_ = JsonValue::Kind::kNumber;
    v->number_ = parsed;
    v->text_ = raw;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

JsonParseResult JsonValue::parse(const std::string& text) {
  return JsonParser(text).run();
}

JsonParseResult JsonValue::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    JsonParseResult out;
    out.error = path + ": cannot open file";
    return out;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  JsonParseResult out = parse(buf.str());
  if (!out.ok()) out.error = path + ": " + out.error;
  return out;
}

}  // namespace cr
