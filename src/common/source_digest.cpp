#include "common/source_digest.hpp"

#include <cstdio>
#include <sstream>

#include "common/snapshot.hpp"

namespace cr {

namespace {

std::string compute_source_digest() {
  std::FILE* exe = std::fopen("/proc/self/exe", "rb");
  if (exe == nullptr) return "unknown";
  // Chunked FNV-1a so Debug/sanitizer binaries (hundreds of MB) never get
  // slurped into one allocation. fnv1a64 cannot be chained through its
  // public signature, so inline the same constants here.
  std::uint64_t hash = 14695981039346656037ull;
  unsigned char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, exe)) > 0) {
    for (std::size_t i = 0; i < got; ++i) {
      hash ^= buf[i];
      hash *= 1099511628211ull;
    }
  }
  const bool failed = std::ferror(exe) != 0;
  std::fclose(exe);
  if (failed) return "unknown";
  char out[24];
  std::snprintf(out, sizeof out, "%016llx", static_cast<unsigned long long>(hash));
  return out;
}

std::string json_string(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

const std::string& source_digest() {
  static const std::string digest = compute_source_digest();
  return digest;
}

std::string version_json(const std::string& git_sha, const std::string& build_type) {
  std::ostringstream os;
  os << "{\n"
     << "  \"git_sha\": " << json_string(git_sha) << ",\n"
     << "  \"build\": " << json_string(build_type.empty() ? "unspecified" : build_type)
     << ",\n"
     << "  \"source_digest\": " << json_string(source_digest()) << ",\n"
     << "  \"cxx\": " << static_cast<long>(__cplusplus) << "\n"
     << "}\n";
  return os.str();
}

}  // namespace cr
