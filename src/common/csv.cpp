#include "common/csv.hpp"

#include <charconv>
#include <system_error>

#include "common/check.hpp"

namespace cr {

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> header)
    : os_(os), cols_(header.size()) {
  CR_CHECK(cols_ > 0);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(header[i]);
  }
  os_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& values) {
  CR_CHECK(values.size() == cols_);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(values[i]);
  }
  os_ << '\n';
  ++rows_;
}

void CsvWriter::row_numeric(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    // to_chars emits the shortest text that parses back to the identical
    // double; precision(6) silently truncated anything >= 1e6.
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    CR_CHECK(res.ec == std::errc());
    cells.emplace_back(buf, res.ptr);
  }
  row(cells);
}

std::string CsvWriter::escape(const std::string& value) {
  const bool needs_quote = value.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return value;
  std::string out = "\"";
  for (char ch : value) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace cr
