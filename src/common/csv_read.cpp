#include "common/csv_read.hpp"

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace cr {
namespace {

// The UTF-8 encoding of '±', as row() receives it from the bench drivers.
constexpr std::string_view kPlusMinus = "\xC2\xB1";

struct FieldParser {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t line = 1;

  bool done() const { return pos >= text.size(); }

  // Parses one record (ending at newline or EOF) into `out`. Returns false
  // with *error set on malformed quoting.
  bool record(std::vector<std::string>* out, std::string* error) {
    out->clear();
    std::string field;
    bool quoted = false;
    bool after_quote = false;  // just closed a quoted field
    const std::size_t start_line = line;
    while (pos < text.size()) {
      const char ch = text[pos];
      if (quoted) {
        if (ch == '"') {
          if (pos + 1 < text.size() && text[pos + 1] == '"') {
            field += '"';
            pos += 2;
          } else {
            quoted = false;
            after_quote = true;
            ++pos;
          }
        } else {
          if (ch == '\n') ++line;
          field += ch;
          ++pos;
        }
        continue;
      }
      if (ch == '"' && field.empty() && !after_quote) {
        quoted = true;
        ++pos;
        continue;
      }
      if (ch == ',') {
        out->push_back(std::move(field));
        field.clear();
        after_quote = false;
        ++pos;
        continue;
      }
      if (ch == '\n' || ch == '\r') {
        if (ch == '\r' && pos + 1 < text.size() && text[pos + 1] == '\n') ++pos;
        ++pos;
        ++line;
        out->push_back(std::move(field));
        return true;
      }
      if (after_quote) {
        std::ostringstream os;
        os << "line " << line << ": text after closing quote";
        *error = os.str();
        return false;
      }
      field += ch;
      ++pos;
    }
    if (quoted) {
      std::ostringstream os;
      os << "line " << start_line << ": unterminated quoted field";
      *error = os.str();
      return false;
    }
    out->push_back(std::move(field));
    return true;
  }
};

}  // namespace

std::optional<std::size_t> CsvTable::column(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return std::nullopt;
}

std::optional<std::string_view> CsvTable::cell(std::size_t row, std::string_view name) const {
  const auto col = column(name);
  if (!col || row >= rows.size() || *col >= rows[row].size()) return std::nullopt;
  return std::string_view(rows[row][*col]);
}

std::optional<CsvTable> read_csv(std::string_view text, std::string* error) {
  CsvTable table;
  FieldParser parser{text};
  if (parser.done()) {
    *error = "empty CSV (no header row)";
    return std::nullopt;
  }
  if (!parser.record(&table.header, error)) return std::nullopt;
  while (!parser.done()) {
    const std::size_t line = parser.line;
    std::vector<std::string> row;
    if (!parser.record(&row, error)) return std::nullopt;
    if (row.size() == 1 && row[0].empty()) continue;  // trailing newline
    if (row.size() != table.header.size()) {
      std::ostringstream os;
      os << "line " << line << ": " << row.size() << " fields, header has "
         << table.header.size();
      *error = os.str();
      return std::nullopt;
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

std::optional<CsvTable> read_csv_file(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = path + ": cannot open";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string local;
  auto table = read_csv(buffer.str(), &local);
  if (!table) *error = path + ": " + local;
  return table;
}

std::optional<NumericCell> parse_numeric_cell(std::string_view text, std::string* error) {
  NumericCell cell;
  std::string_view rest = text;
  if (!rest.empty() && rest.front() == '>') {
    cell.censored = true;
    rest.remove_prefix(1);
  }
  std::string_view mean_part = rest;
  std::string_view sd_part;
  if (const auto pm = rest.find(kPlusMinus); pm != std::string_view::npos) {
    mean_part = rest.substr(0, pm);
    sd_part = rest.substr(pm + kPlusMinus.size());
  }
  const auto parse_double = [](std::string_view s, double* out) {
    const auto res = std::from_chars(s.data(), s.data() + s.size(), *out);
    return res.ec == std::errc() && res.ptr == s.data() + s.size() && !s.empty();
  };
  if (!parse_double(mean_part, &cell.value)) {
    *error = "not numeric: \"" + std::string(text) + "\"";
    return std::nullopt;
  }
  if (!sd_part.empty()) {
    double sd = 0.0;
    if (!parse_double(sd_part, &sd)) {
      *error = "bad \xC2\xB1 spread: \"" + std::string(text) + "\"";
      return std::nullopt;
    }
    cell.spread = sd;
  }
  return cell;
}

}  // namespace cr
