// Shared reader for the CSVs that CsvWriter emits.
//
// Every suite cell writes its results through CsvWriter (RFC 4180 quoting,
// std::to_chars shortest-round-trip doubles). Until now nothing in-tree read
// them back — `cr verify` does, so the inverse lives here: an RFC 4180
// parser that re-parses row_numeric output bit-exactly (std::from_chars on
// the unquoted cell text), plus the domain-specific numeric-cell forms the
// bench CSVs use ("mean±sd" summary cells and ">20.0" censored medians).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cr {

/// One parsed CSV file: a header row plus data rows, all unescaped.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of `name` in the header, or nullopt.
  std::optional<std::size_t> column(std::string_view name) const;

  /// Cell text at (row, header column `name`); nullopt when the column is
  /// missing or the row is short.
  std::optional<std::string_view> cell(std::size_t row, std::string_view name) const;
};

/// Parses CSV text (RFC 4180: quoted fields, doubled quotes, embedded
/// newlines; accepts both \n and \r\n row endings). The first record is the
/// header. On malformed input (unterminated quote, text after a closing
/// quote, a row whose field count differs from the header's) returns nullopt
/// and sets *error to a message naming the offending 1-based line.
std::optional<CsvTable> read_csv(std::string_view text, std::string* error);

/// read_csv over a file's contents; the error message names the path.
std::optional<CsvTable> read_csv_file(const std::string& path, std::string* error);

/// A numeric cell value as the bench CSVs write them. `value` is the point
/// estimate; `censored` marks ">x" cells (horizon-capped medians — the true
/// value is at least `value`); `spread` carries the sd of "mean±sd" cells.
struct NumericCell {
  double value = 0.0;
  bool censored = false;
  std::optional<double> spread;
};

/// Parses a numeric cell: plain doubles round-trip std::to_chars output
/// bit-exactly, "mean±sd" splits on the UTF-8 ± sign, and a leading '>'
/// sets `censored`. Returns nullopt (with *error describing the text) on
/// anything else — empty cells and non-numeric text are errors, not zeros.
std::optional<NumericCell> parse_numeric_cell(std::string_view text, std::string* error);

}  // namespace cr
