// Deterministic random-number substrate.
//
// All randomness in the library flows through cr::Rng so that every run is
// reproducible from a single 64-bit seed. The generator is xoshiro256**
// (public-domain algorithm by Blackman & Vigna) seeded via splitmix64, which
// guarantees well-distributed state even for adjacent seeds — important
// because experiment replications use seeds {base, base+1, ...}.
//
// Beyond uniform bits the substrate provides the exact distributions the
// simulators need:
//   * bernoulli(p)        — one biased coin
//   * binomial(n, p)      — number of senders in a synchronized cohort
//   * uniform_u64(n)      — uniform slot choice within a backoff stage
//   * geometric(p)        — gap sampling for sparse Bernoulli processes
//
// binomial() is exact for small n (coin-by-coin) and small mean (inversion),
// and uses a clamped normal approximation only when n·p is large, where the
// relative error is negligible for simulation purposes (documented below).
#pragma once

#include <cstdint>
#include <limits>

namespace cr {

/// splitmix64 step; used for seeding and hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise the full 256-bit state from a 64-bit seed.
  void reseed(std::uint64_t seed);

  /// Derive an independent stream (hash-combines the tag into the seed).
  Rng fork(std::uint64_t tag) const;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01();

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Biased coin. p <= 0 -> always false; p >= 1 -> always true.
  bool bernoulli(double p);

  /// Number of successes among n independent p-coins.
  ///
  /// Exact for n <= 64 (bit tricks) and for mean <= kInversionMeanCutoff
  /// (CDF inversion). Otherwise a clamped normal approximation; with
  /// n·p ≥ 32 the normal approximation's total-variation error is < 1%,
  /// far below the Monte-Carlo noise floor of any experiment here.
  std::uint64_t binomial(std::uint64_t n, double p);

  /// Number of failures before the first success of a p-coin (support {0,1,...}).
  /// Requires p in (0, 1].
  std::uint64_t geometric(double p);

  /// Standard normal variate (Box–Muller, stateless variant).
  double normal01();

  /// The original seed this Rng (or its ancestor chain) was built from.
  std::uint64_t seed() const { return seed_; }

 private:
  static constexpr double kInversionMeanCutoff = 32.0;

  std::uint64_t s_[4];
  std::uint64_t seed_;
};

}  // namespace cr
