// Deterministic random-number substrate.
//
// All randomness in the library flows through this header so that every run
// is reproducible from a single 64-bit seed. Two substrates share one set of
// distribution algorithms (rng_detail below) and one stream-tag registry
// (common/stream_tags.hpp):
//
//   * cr::Rng — sequential xoshiro256** (public-domain algorithm by Blackman
//     & Vigna) seeded via splitmix64. The default for every engine: state
//     advances draw by draw, so the i-th value depends on the i-1 before it.
//   * cr::CounterRng — counter-based (Philox-style 2x64 block cipher). Any
//     (seed, stream-tag, hi-counter, draw-index) value is a pure function of
//     those four numbers, computable independently and out of order — which
//     is what lets the lockstep engine give every (replication, slot) its
//     own stream without storing any generator state per replication.
//
// Both substrates derive sub-streams with the same fork(tag) seed
// arithmetic, so a (seed, tag) pair names the same logical stream on either.
//
// Beyond uniform bits the substrate provides the exact distributions the
// simulators need:
//   * bernoulli(p)        — one biased coin
//   * binomial(n, p)      — number of senders in a synchronized cohort
//   * uniform_u64(n)      — uniform slot choice within a backoff stage
//   * geometric(p)        — gap sampling for sparse Bernoulli processes
//
// binomial() is exact for small n (coin-by-coin) and small mean (inversion),
// and uses a clamped normal approximation only when n·p is large, where the
// relative error is negligible for simulation purposes (documented below).
//
// Batched draws: both substrates expose block APIs that produce the same
// values as repeated scalar draws — Rng::fill/skip walk the sequential state
// in one call, CounterRng::fill / Stream::fill / Stream::skip evaluate
// Philox blocks two at a time so the ten-round latency chains overlap, and
// CounterRng::fill_keys / binomial_keys sweep one counter position across a
// whole (seed .. seed+R) replication axis in one pass. Every batched call is
// bit-identical to the equivalent scalar loop (asserted in tests/test_rng.cpp);
// the lockstep engine leans on this equivalence for its skip certificates.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/check.hpp"

namespace cr {

/// splitmix64 step; used for seeding and hashing.
std::uint64_t splitmix64(std::uint64_t& state);

namespace rng_detail {

/// Shared fork arithmetic: the seed of the stream `tag` derived from `seed`.
/// Both substrates use this, so forked streams line up across them.
inline std::uint64_t fork_seed(std::uint64_t seed, std::uint64_t tag) {
  std::uint64_t sm = seed ^ (tag * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  return splitmix64(sm);
}

// The distribution algorithms, templated over any UniformRandomBitGenerator
// G producing full 64-bit words. Rng's methods delegate here (bit-identical
// to the pre-template implementations), and CounterRng::Stream reuses them,
// so both substrates sample every distribution with the same arithmetic.

inline constexpr double kInversionMeanCutoff = 32.0;

template <typename G>
double uniform01(G& g) {
  return static_cast<double>(g() >> 11) * 0x1.0p-53;
}

template <typename G>
std::uint64_t uniform_u64(G& g, std::uint64_t n) {
  CR_DCHECK(n > 0);
  // Lemire-style rejection for unbiased bounded integers.
  std::uint64_t x = g();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = g();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

template <typename G>
std::int64_t uniform_range(G& g, std::int64_t lo, std::int64_t hi) {
  CR_DCHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [lo, hi]; fall back to raw bits.
  if (span == 0) return static_cast<std::int64_t>(g());
  return lo + static_cast<std::int64_t>(uniform_u64(g, span));
}

template <typename G>
bool bernoulli(G& g, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01(g) < p;
}

template <typename G>
double normal01(G& g) {
  // Box–Muller; draws fresh uniforms each call (no cached spare, keeps the
  // generator state a pure function of the number of calls made).
  double u1 = uniform01(g);
  while (u1 <= 0.0) u1 = uniform01(g);
  const double u2 = uniform01(g);
  const double two_pi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

template <typename G>
std::uint64_t binomial(G& g, std::uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  // Exploit symmetry so the mean used below is at most n/2.
  if (p > 0.5) return n - binomial(g, n, 1.0 - p);

  const double mean = static_cast<double>(n) * p;

  if (n <= 64) {
    std::uint64_t hits = 0;
    for (std::uint64_t i = 0; i < n; ++i) hits += bernoulli(g, p) ? 1 : 0;
    return hits;
  }

  if (mean <= kInversionMeanCutoff) {
    // BINV: sequential CDF inversion. Expected work O(mean).
    const double q = 1.0 - p;
    const double s = p / q;
    double f = std::pow(q, static_cast<double>(n));  // P[X = 0]
    if (f <= 0.0) {
      // Underflow can only happen when mean is huge, excluded by the cutoff,
      // or n astronomically large with tiny p; fall through to normal approx.
    } else {
      double u = uniform01(g);
      std::uint64_t k = 0;
      double a = static_cast<double>(n);
      while (u > f) {
        u -= f;
        ++k;
        if (k > n) return n;  // numerical tail guard
        f *= s * (a - static_cast<double>(k) + 1.0) / static_cast<double>(k);
        if (f <= 0.0) break;  // deep tail: probabilities vanish
      }
      return k;
    }
  }

  // Normal approximation with continuity correction, clamped to [0, n].
  const double sd = std::sqrt(mean * (1.0 - p));
  const double x = std::floor(mean + sd * normal01(g) + 0.5);
  if (x < 0.0) return 0;
  if (x > static_cast<double>(n)) return n;
  return static_cast<std::uint64_t>(x);
}

template <typename G>
std::uint64_t geometric(G& g, double p) {
  CR_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  const double u = 1.0 - uniform01(g);  // in (0, 1]
  const double v = std::floor(std::log(u) / std::log1p(-p));
  if (v < 0.0) return 0;
  return static_cast<std::uint64_t>(v);
}

}  // namespace rng_detail

/// Deterministic sequential PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise the full 256-bit state from a 64-bit seed.
  void reseed(std::uint64_t seed);

  /// Derive an independent stream (hash-combines the tag into the seed).
  Rng fork(std::uint64_t tag) const;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Advance the state by n draws, discarding the values — exactly n
  /// next_u64() calls, without the per-call overhead.
  void skip(std::uint64_t n);

  /// Fill out[0..n) with the next n words — bit-identical to n sequential
  /// next_u64() calls. One call amortises the cross-TU call cost over the
  /// whole block (the lockstep engine fills adversary-coin buffers this way).
  void fill(std::uint64_t* out, std::size_t n);

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01();

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Biased coin. p <= 0 -> always false; p >= 1 -> always true.
  bool bernoulli(double p);

  /// Number of successes among n independent p-coins.
  ///
  /// Exact for n <= 64 (bit tricks) and for mean <= kInversionMeanCutoff
  /// (CDF inversion). Otherwise a clamped normal approximation; with
  /// n·p ≥ 32 the normal approximation's total-variation error is < 1%,
  /// far below the Monte-Carlo noise floor of any experiment here.
  std::uint64_t binomial(std::uint64_t n, double p);

  /// Number of failures before the first success of a p-coin (support {0,1,...}).
  /// Requires p in (0, 1].
  std::uint64_t geometric(double p);

  /// Standard normal variate (Box–Muller, stateless variant).
  double normal01();

  /// The original seed this Rng (or its ancestor chain) was built from.
  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

/// Counter-based PRNG (Philox2x64-10-style block cipher).
///
/// A CounterRng is a pure value: a 64-bit key derived from (seed, fork
/// chain) with the same arithmetic Rng::fork uses. The random word at
/// counter position (hi, index) is
///
///     at(hi, index) = word[index & 1] of Philox(key, block = index >> 1, hi)
///
/// — no state advances, so any draw is computable without generating its
/// predecessors. stream(hi) binds the hi counter (the lockstep engine uses
/// the slot number) and hands back a sequential cursor over index = 0, 1,
/// ... that offers the same distribution methods as Rng; its draw sequence
/// equals {at(hi, 0), at(hi, 1), ...} by construction (asserted in
/// tests/test_rng.cpp).
class CounterRng {
 public:
  explicit CounterRng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : key_(seed) {}

  /// Derive an independent stream — same seed arithmetic as Rng::fork, so
  /// (seed, tag) names the same logical stream on both substrates.
  CounterRng fork(std::uint64_t tag) const {
    return CounterRng(rng_detail::fork_seed(key_, tag));
  }

  /// The 128-bit Philox output block at (block, hi): two 64-bit words.
  /// Philox2x64-10 (Salmon et al., "Parallel random numbers: as easy as
  /// 1, 2, 3"): ten rounds of multiply-hi/lo mixing with a Weyl key
  /// schedule. Inline so the batched fills below can pipeline several
  /// independent blocks through the multiplier at once.
  struct Block {
    std::uint64_t w0 = 0;
    std::uint64_t w1 = 0;
  };
  Block block(std::uint64_t blk, std::uint64_t hi) const {
    constexpr std::uint64_t kMult = 0xD2B74407B1CE6E93ULL;
    constexpr std::uint64_t kWeyl = 0x9E3779B97F4A7C15ULL;
    std::uint64_t x0 = blk;
    std::uint64_t x1 = hi;
    std::uint64_t k = key_;
    for (int round = 0; round < 10; ++round) {
      const __uint128_t prod = static_cast<__uint128_t>(kMult) * x0;
      const auto prod_hi = static_cast<std::uint64_t>(prod >> 64);
      const auto prod_lo = static_cast<std::uint64_t>(prod);
      x0 = prod_hi ^ k ^ x1;
      x1 = prod_lo;
      k += kWeyl;
    }
    return {x0, x1};
  }

  /// The index-th 64-bit word of the (key, hi) stream — order-independent.
  std::uint64_t at(std::uint64_t hi, std::uint64_t index) const {
    const Block b = block(index >> 1, hi);
    return (index & 1) ? b.w1 : b.w0;
  }

  /// Fill out[0..n) with the stream words at indices start .. start+n-1:
  /// bit-identical to calling at(hi, start + i) for each i, but blocks are
  /// evaluated two at a time so their latency chains overlap.
  void fill(std::uint64_t hi, std::uint64_t start, std::uint64_t* out, std::size_t n) const {
    std::size_t i = 0;
    std::uint64_t index = start;
    if ((index & 1) != 0 && i < n) {
      out[i++] = at(hi, index);
      ++index;
    }
    while (n - i >= 4) {
      const std::uint64_t blk = index >> 1;
      const Block b0 = block(blk, hi);
      const Block b1 = block(blk + 1, hi);
      out[i] = b0.w0;
      out[i + 1] = b0.w1;
      out[i + 2] = b1.w0;
      out[i + 3] = b1.w1;
      i += 4;
      index += 4;
    }
    for (; i < n; ++i, ++index) out[i] = at(hi, index);
  }

  /// Batched cross-replication draw: out[i] = the word at position (hi,
  /// index) of the stream keyed keys[i]. One vectorizable pass — the Philox
  /// chains of neighbouring keys are independent and evaluated pairwise.
  static void fill_keys(const std::uint64_t* keys, std::size_t r, std::uint64_t hi,
                        std::uint64_t index, std::uint64_t* out);

  /// Same sweep producing uniform doubles in [0, 1): out[i] equals
  /// Stream(keys[i], hi) read at `index` through uniform01's 53-bit mapping.
  static void fill_keys_unit(const std::uint64_t* keys, std::size_t r, std::uint64_t hi,
                             std::uint64_t index, double* out);

  /// Batched small-mean binomial across the replication axis: out[i] is
  /// bit-identical to CounterRng(keys[i]).stream(hi).binomial(n, p) — the
  /// classification (flip, coin-by-coin vs inversion vs normal) and the
  /// pow(q, n) anchor of the inversion branch are hoisted out of the loop,
  /// which is what makes retiring thousands of quiescent replications cheap.
  static void binomial_keys(const std::uint64_t* keys, std::size_t r, std::uint64_t hi,
                            std::uint64_t n, double p, std::uint64_t* out);

  /// Sequential cursor over one (key, hi) stream. Satisfies
  /// UniformRandomBitGenerator; the distribution methods delegate to the
  /// same rng_detail templates Rng uses, so e.g. stream.binomial(n, p)
  /// consumes the stream exactly like Rng::binomial consumes xoshiro.
  class Stream {
   public:
    using result_type = std::uint64_t;

    Stream() = default;
    Stream(const CounterRng& owner, std::uint64_t hi) : key_(owner.key_), hi_(hi) {}

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

    result_type operator()() {
      // One Philox block yields two words; cache the second so sequential
      // draws cost one block evaluation per two words. skip() can land the
      // cursor on an odd index without having seen the block, so the spare
      // is re-derived on demand.
      if ((index_ & 1) == 0) {
        const Block b = CounterRng(key_).block(index_ >> 1, hi_);
        spare_ = b.w1;
        spare_valid_ = true;
        ++index_;
        return b.w0;
      }
      if (!spare_valid_) spare_ = CounterRng(key_).block(index_ >> 1, hi_).w1;
      spare_valid_ = false;
      ++index_;
      return spare_;
    }

    /// Advance the cursor by n words without materialising their values.
    /// The words are still consumed — index() moves exactly as if n draws
    /// had been made — so downstream draws stay aligned with the scalar
    /// sequence. Used where a draw's value is provably irrelevant (e.g. the
    /// offset into a length-1 backoff stage).
    void skip(std::uint64_t n) {
      index_ += n;
      spare_valid_ = false;
    }

    /// Fill out[0..n) with the next n words — bit-identical to n sequential
    /// operator() calls, with paired block evaluation (see CounterRng::fill).
    void fill(std::uint64_t* out, std::size_t n) {
      std::size_t i = 0;
      while (i < n && (index_ & 1) != 0) out[i++] = (*this)();
      if (i < n) {
        CounterRng(key_).fill(hi_, index_, out + i, n - i);
        index_ += n - i;
        // An odd landing index means the last block's second word is still
        // unread; re-derive it lazily if the next scalar draw needs it.
        spare_valid_ = false;
      }
    }

    double uniform01() { return rng_detail::uniform01(*this); }
    std::uint64_t uniform_u64(std::uint64_t n) { return rng_detail::uniform_u64(*this, n); }
    std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) {
      return rng_detail::uniform_range(*this, lo, hi);
    }
    bool bernoulli(double p) { return rng_detail::bernoulli(*this, p); }
    std::uint64_t binomial(std::uint64_t n, double p) {
      // Same distribution arithmetic as rng_detail::binomial, but the
      // coin-by-coin branch (n <= 64) pulls its words through fill() so the
      // Philox chains pair up. Consumed-word counts and results are
      // bit-identical to the scalar template in every branch.
      if (n == 0 || p <= 0.0) return 0;
      if (p >= 1.0) return n;
      const bool flip = p > 0.5;
      const double q = flip ? 1.0 - p : p;
      if (n <= 64) {
        std::uint64_t words[64];
        fill(words, n);
        std::uint64_t hits = 0;
        for (std::uint64_t i = 0; i < n; ++i)
          hits += (static_cast<double>(words[i] >> 11) * 0x1.0p-53 < q) ? 1 : 0;
        return flip ? n - hits : hits;
      }
      const std::uint64_t k = rng_detail::binomial(*this, n, q);
      return flip ? n - k : k;
    }
    std::uint64_t geometric(double p) { return rng_detail::geometric(*this, p); }
    double normal01() { return rng_detail::normal01(*this); }

    /// Number of 64-bit words consumed so far (== the next draw index).
    std::uint64_t index() const { return index_; }

   private:
    std::uint64_t key_ = 0;
    std::uint64_t hi_ = 0;
    std::uint64_t index_ = 0;
    std::uint64_t spare_ = 0;
    bool spare_valid_ = false;
  };

  Stream stream(std::uint64_t hi) const { return Stream(*this, hi); }

  /// The key (derived seed) identifying this stream family.
  std::uint64_t key() const { return key_; }

 private:
  std::uint64_t key_;
};

}  // namespace cr
