#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace cr {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Quantiles::add(double x) {
  xs_.push_back(x);
  sorted_ = false;
}

void Quantiles::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Quantiles::quantile(double q) const {
  CR_CHECK(q >= 0.0 && q <= 1.0);
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  const auto n = xs_.size();
  // Nearest rank is ceil(q·n); the relative epsilon guards against q·n
  // landing one ulp ABOVE the exact integer (0.99·100 = 99.00000000000001
  // in IEEE arithmetic, which would otherwise round p99-of-100 up to the
  // maximum instead of the 99th order statistic).
  const double scaled = q * static_cast<double>(n);
  const auto idx = static_cast<std::size_t>(std::ceil(scaled * (1.0 - 1e-12)));
  return xs_[idx == 0 ? 0 : std::min(idx - 1, n - 1)];
}

Summary summarize(const std::string& name, const Accumulator& acc) {
  Summary s;
  s.name = name;
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.n = acc.count();
  return s;
}

LinearFit fit_linear(const std::vector<double>& xs, const std::vector<double>& ys) {
  CR_CHECK(xs.size() == ys.size());
  CR_CHECK(xs.size() >= 2);
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return fit;  // all x equal: slope stays 0
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - (fit.slope * xs[i] + fit.intercept);
    ss_res += r * r;
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace cr
