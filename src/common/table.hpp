// ASCII table renderer for bench/harness output.
//
// Usage:
//   Table t({"n", "slots", "throughput"});
//   t.add_row({Cell(1024), Cell(4096), Cell(0.25, 3)});
//   t.print(std::cout);
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cr {

/// One formatted table cell. Construct from string, integer, or double
/// (with a precision).
class Cell {
 public:
  Cell(std::string s) : text_(std::move(s)) {}          // NOLINT(google-explicit-constructor)
  Cell(const char* s) : text_(s) {}                     // NOLINT(google-explicit-constructor)
  Cell(std::int64_t v);                                 // NOLINT(google-explicit-constructor)
  Cell(std::uint64_t v);                                // NOLINT(google-explicit-constructor)
  Cell(int v) : Cell(static_cast<std::int64_t>(v)) {}   // NOLINT(google-explicit-constructor)
  Cell(double v, int precision = 4);                    // NOLINT(google-explicit-constructor)

  const std::string& text() const { return text_; }

 private:
  std::string text_;
};

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<Cell> cells);
  /// Optional caption printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }

  /// Formatted row text, for CSV export (write_table_csv). Column names
  /// come from the caller — display headers are not machine-readable.
  const std::vector<std::vector<std::string>>& row_text() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Dump a rendered table as CSV under machine-readable column names
/// (`columns` must match the table's width; headers like "succ*log2(t)/t"
/// are display strings, so CSV names are supplied separately). Cells are
/// written exactly as formatted for the table — deterministic for a given
/// platform, which is what the suite runner's bit-identical resume and
/// shard guarantees build on.
void write_table_csv(const Table& table, const std::vector<std::string>& columns,
                     std::ostream& os);

/// Format a double with fixed precision (helper shared with CSV).
std::string format_double(double v, int precision);

}  // namespace cr
