// Growth-function substrate.
//
// The paper's algorithm (Thm 1.2) is parameterised by a jamming-tolerance
// function g with log²(g) sub-logarithmic, from which it derives
//
//     f(x)      = c_f · log(x) / log²(g(x))          (throughput overhead)
//     h_ctrl(x) = c₃ · log(x) / x                    (Phase-3 control batch)
//     h_data(x) = 1 / x                              (Phase-3 data batch)
//     h_bkf(x)  = f(x) / a                           (Phase-1/2 backoff sends per stage)
//
// This header provides g presets (constant, polylog, 2^√log — the three
// regimes the paper discusses), the derived FunctionSet, and diagnostics for
// the "sub-logarithmic" conditions of Remark 1, which the tests exercise.
#pragma once

#include <functional>
#include <string>

namespace cr {

/// A named positive function of a positive real. Small value type; copies are
/// cheap enough for experiment configs (shared_ptr'd callable under the hood).
class GrowthFn {
 public:
  GrowthFn() : GrowthFn("one", [](double) { return 1.0; }) {}
  GrowthFn(std::string name, std::function<double(double)> fn);

  double operator()(double x) const { return fn_(x); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::function<double(double)> fn_;
};

namespace fn {

/// g(x) = c. Tolerates a constant fraction of jammed slots; forces
/// f = Θ(log x) (the worst-case-throughput regime of the introduction).
GrowthFn constant(double c);

/// log2(x + 2): positive and non-decreasing on x >= 0.
GrowthFn log2p(double scale = 1.0);

/// g(x) = scale · log2(x+2)^e.
GrowthFn poly_log(double scale, double exponent);

/// g(x) = 2^(scale · √log2(x+2)). The Remark-2 regime: the induced f is
/// Θ(1), i.e. constant throughput with sub-polynomial jamming tolerance.
GrowthFn exp_sqrt_log(double scale = 1.0);

/// g(x) = x^e (NOT sub-logarithmic in log; used by tests to check the
/// diagnostics reject it).
GrowthFn poly(double exponent);

}  // namespace fn

/// The full set of functions driving one algorithm instance.
struct FunctionSet {
  GrowthFn g = fn::constant(2.0);
  double cf = 1.0;      ///< c₂ scaling of f
  double a = 1.0;       ///< paper's `a` (backoff density divisor)
  double c_ctrl = 2.0;  ///< c₃ scaling of h_ctrl

  /// f(x) = cf · log2(x+2) / max(1, log2 g(x))². Non-decreasing for the
  /// provided g presets; >= cf/ O(1) for small x.
  double f(double x) const;

  /// Sends per backoff stage of length x: max(1, round(f(x)/a)).
  double h_backoff(double x) const;
  /// Integral send count for a stage of length `len` (what BackoffProcess uses).
  unsigned backoff_sends(std::uint64_t stage_len) const;

  /// h_ctrl(x) = min(1, c₃·log2(x+2)/x); positive at x = 1.
  double h_ctrl(double x) const;
  /// h_data(x) = min(1, 1/x) — the paper's exact choice.
  static double h_data(double x);

  /// Human-readable description ("g=const(4), cf=1, c3=2").
  std::string describe() const;
};

/// Diagnostics for Remark 1's sub-logarithmic conditions, evaluated on a
/// geometric sample grid up to x_max. Returns true when all hold:
///  (1) h(x) = O(log x) and non-decreasing,
///  (2) h bounded below by a constant for large x,
///  (3) |h(2x) − h(x)| bounded by a constant,
///  (4) h(x^c) = Θ(h(x)) for c in {2, 3}.
struct SublogReport {
  bool non_decreasing = true;
  bool big_o_log = true;
  bool doubling_bounded = true;
  bool power_theta = true;
  bool ok() const { return non_decreasing && big_o_log && doubling_bounded && power_theta; }
};
SublogReport check_sublogarithmic(const GrowthFn& h, double x_max = 1e9);

}  // namespace cr
