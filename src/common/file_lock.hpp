/// \file
/// Atomic lease files: the coordination primitive behind `cr suite work`.
///
/// A lease is a small text file created with O_CREAT|O_EXCL — the one
/// filesystem operation that is atomic on local disks AND on the shared
/// mounts (NFS with proper O_EXCL semantics) multi-host workers coordinate
/// over. Exactly one process can create a given lease path; everyone else
/// gets EEXIST and moves on to other work.
///
/// The lease body records who holds it (`pid@host`, plus the claimed name
/// and a wall-clock stamp) so a worker that finds a lease can decide whether
/// the holder is still alive:
///
///   * same host, dead PID (kill(pid, 0) == ESRCH)  -> stale, take over;
///   * different host                               -> liveness is
///     unknowable via PIDs; stale only when the caller opts into an age
///     threshold (stale_after_seconds > 0) and the lease file's mtime is
///     older than that.
///
/// Takeover is unlink-then-retry-acquire: if two workers race the takeover,
/// both may unlink (the second gets ENOENT, fine) but O_EXCL guarantees at
/// most one wins the re-acquire. A worker that crashes mid-cell leaves its
/// lease behind; the dead-PID rule is what lets the remaining workers
/// reclaim and rerun that cell.
#pragma once

#include <cstdint>
#include <string>

namespace cr {

/// Parsed lease body.
struct LeaseInfo {
  std::int64_t pid = 0;
  std::string host;
  std::string name;         ///< what the lease claims (the cell id)
  std::string started_utc;  ///< informational wall-clock stamp
};

/// This machine's hostname ("unknown-host" if unavailable); cached.
const std::string& lease_hostname();

/// True iff `pid` is a live process on THIS host (kill(pid, 0) semantics:
/// EPERM still counts as alive).
bool process_alive(std::int64_t pid);

/// Try to create `path` with O_CREAT|O_EXCL and write this process's
/// LeaseInfo (claiming `name`). Returns true iff this process now holds the
/// lease. False on EEXIST (someone else holds it) or any I/O error.
bool lease_try_acquire(const std::string& path, const std::string& name);

/// Read and parse a lease file. Returns false when the file is missing or
/// malformed (a malformed lease is treated as stale by callers).
bool lease_read(const std::string& path, LeaseInfo* out);

/// Decide staleness of an existing lease: malformed body, same-host dead
/// PID, or (when stale_after_seconds > 0) an mtime older than the threshold
/// regardless of host. A missing file returns false — nothing to take over.
bool lease_is_stale(const std::string& path, double stale_after_seconds);

/// Release (unlink) a lease this process holds. Unlinking a lease held by
/// someone else is the takeover path — callers must have checked
/// lease_is_stale first.
void lease_release(const std::string& path);

}  // namespace cr
