#include "common/snapshot.hpp"

#include <cstdio>

namespace cr {

namespace {

constexpr std::size_t kHeaderSize = 32;
constexpr char kMagic[6] = {'C', 'R', 'S', 'N', 'A', 'P'};

void put_u32(std::uint8_t* out, std::uint32_t v) { std::memcpy(out, &v, sizeof(v)); }
void put_u64(std::uint8_t* out, std::uint64_t v) { std::memcpy(out, &v, sizeof(v)); }
std::uint32_t get_u32(const std::uint8_t* in) {
  std::uint32_t v;
  std::memcpy(&v, in, sizeof(v));
  return v;
}
std::uint64_t get_u64(const std::uint8_t* in) {
  std::uint64_t v;
  std::memcpy(&v, in, sizeof(v));
  return v;
}

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::vector<std::uint8_t> SnapshotWriter::seal(std::uint32_t version) const {
  std::vector<std::uint8_t> blob(kHeaderSize + buf_.size(), 0);
  std::memcpy(blob.data(), kMagic, sizeof(kMagic));
  put_u32(blob.data() + 8, version);
  put_u64(blob.data() + 16, buf_.size());
  put_u64(blob.data() + 24, fnv1a64(buf_.data(), buf_.size()));
  std::memcpy(blob.data() + kHeaderSize, buf_.data(), buf_.size());
  return blob;
}

SnapshotReader::SnapshotReader(const std::uint8_t* data, std::size_t size,
                               std::uint32_t expected_version) {
  if (size < kHeaderSize) {
    error_ = "snapshot: truncated header (" + std::to_string(size) + " bytes, need " +
             std::to_string(kHeaderSize) + ")";
    return;
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    error_ = "snapshot: bad magic (not a CRSNAP blob)";
    return;
  }
  const std::uint32_t version = get_u32(data + 8);
  if (version != expected_version) {
    error_ = "snapshot: schema version mismatch (blob v" + std::to_string(version) +
             ", expected v" + std::to_string(expected_version) + ")";
    return;
  }
  const std::uint64_t payload_size = get_u64(data + 16);
  if (payload_size != size - kHeaderSize) {
    error_ = "snapshot: truncated payload (header claims " + std::to_string(payload_size) +
             " bytes, have " + std::to_string(size - kHeaderSize) + ")";
    return;
  }
  const std::uint64_t checksum = get_u64(data + 24);
  const std::uint64_t actual = fnv1a64(data + kHeaderSize, size - kHeaderSize);
  if (checksum != actual) {
    error_ = "snapshot: checksum mismatch (blob is corrupted)";
    return;
  }
  payload_ = data + kHeaderSize;
  size_ = size - kHeaderSize;
}

void SnapshotReader::fail(const std::string& message) {
  if (error_.empty()) error_ = message;
}

bool SnapshotReader::take(void* out, std::size_t n, const char* field) {
  if (!error_.empty()) return false;
  if (size_ - pos_ < n) {
    fail("snapshot: truncated reading " + std::string(field) + " at payload offset " +
         std::to_string(pos_));
    return false;
  }
  std::memcpy(out, payload_ + pos_, n);
  pos_ += n;
  return true;
}

std::uint8_t SnapshotReader::u8(const char* field) {
  std::uint8_t v = 0;
  take(&v, sizeof(v), field);
  return v;
}

std::uint32_t SnapshotReader::u32(const char* field) {
  std::uint32_t v = 0;
  take(&v, sizeof(v), field);
  return v;
}

std::uint64_t SnapshotReader::u64(const char* field) {
  std::uint64_t v = 0;
  take(&v, sizeof(v), field);
  return v;
}

double SnapshotReader::f64(const char* field) {
  std::uint64_t bits = u64(field);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SnapshotReader::str(const char* field) {
  const std::uint64_t n = u64(field);
  if (!check_count(n, 1, field)) return {};
  std::string out(reinterpret_cast<const char*>(payload_ + pos_), n);
  pos_ += n;
  return out;
}

bool SnapshotReader::check_count(std::uint64_t count, std::size_t elem_size, const char* field) {
  if (!error_.empty()) return false;
  const std::uint64_t remaining = size_ - pos_;
  if (elem_size != 0 && (count > remaining / elem_size)) {
    fail("snapshot: implausible count for " + std::string(field) + " (" +
         std::to_string(count) + " x " + std::to_string(elem_size) + " bytes, only " +
         std::to_string(remaining) + " remain)");
    return false;
  }
  return true;
}

void SnapshotReader::expect_end() {
  if (!error_.empty()) return;
  if (pos_ != size_)
    fail("snapshot: " + std::to_string(size_ - pos_) + " trailing bytes after the last field");
}

}  // namespace cr
