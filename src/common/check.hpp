// Lightweight runtime contract checking.
//
// CR_CHECK is always on (cheap invariants guarding library correctness);
// CR_DCHECK compiles out in NDEBUG builds (hot-loop assertions).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cr {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CR_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace cr

#define CR_CHECK(expr)                                  \
  do {                                                  \
    if (!(expr)) ::cr::check_failed(#expr, __FILE__, __LINE__); \
  } while (0)

#ifdef NDEBUG
#define CR_DCHECK(expr) \
  do {                  \
  } while (0)
#else
#define CR_DCHECK(expr) CR_CHECK(expr)
#endif
