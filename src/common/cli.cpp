#include "common/cli.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"

namespace cr {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const {
  {
    const std::lock_guard<std::mutex> lock(known_mutex_);
    known_.insert(name);
  }
  return flags_.count(name) > 0;
}

std::string Cli::get_string(const std::string& name, const std::string& def) const {
  {
    const std::lock_guard<std::mutex> lock(known_mutex_);
    known_.insert(name);
  }
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  {
    const std::lock_guard<std::mutex> lock(known_mutex_);
    known_.insert(name);
  }
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& text = it->second;
  char* end = nullptr;
  errno = 0;
  const std::int64_t value = std::strtoll(text.c_str(), &end, 10);
  const bool parsed =
      !text.empty() && end == text.c_str() + text.size() && errno != ERANGE;
  if (!parsed) {
    std::fprintf(stderr, "Cli: flag --%s expects an integer, got \"%s\"\n",
                 name.c_str(), text.c_str());
  }
  CR_CHECK(parsed);
  return value;
}

double Cli::get_double(const std::string& name, double def) const {
  {
    const std::lock_guard<std::mutex> lock(known_mutex_);
    known_.insert(name);
  }
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& text = it->second;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  // ERANGE only counts as failure on overflow: glibc also sets it for
  // representable subnormals (underflow), which are legitimate inputs.
  const bool overflow =
      errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL);
  const bool parsed =
      !text.empty() && end == text.c_str() + text.size() && !overflow;
  if (!parsed) {
    std::fprintf(stderr, "Cli: flag --%s expects a number, got \"%s\"\n",
                 name.c_str(), text.c_str());
  }
  CR_CHECK(parsed);
  return value;
}

bool Cli::get_bool(const std::string& name, bool def) const {
  {
    const std::lock_guard<std::mutex> lock(known_mutex_);
    known_.insert(name);
  }
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

std::string closest_match(const std::string& name, const std::vector<std::string>& candidates) {
  std::string best;
  std::size_t best_dist = 3;  // suggest only close matches
  for (const std::string& cand : candidates) {
    const std::size_t d = edit_distance(name, cand);
    if (d < best_dist) {
      best_dist = d;
      best = cand;
    }
  }
  return best;
}

void Cli::declare(std::initializer_list<const char*> names) const {
  const std::lock_guard<std::mutex> lock(known_mutex_);
  for (const char* name : names) known_.insert(name);
}

void Cli::declare(const std::vector<std::string>& names) const {
  const std::lock_guard<std::mutex> lock(known_mutex_);
  known_.insert(names.begin(), names.end());
}

std::vector<std::string> Cli::unknown_flags() const {
  const std::lock_guard<std::mutex> lock(known_mutex_);
  std::vector<std::string> out;
  for (const auto& [name, value] : flags_)
    if (known_.count(name) == 0) out.push_back(name);
  return out;
}

void Cli::reject_unknown() const {
  const auto unknown = unknown_flags();
  if (unknown.empty()) return;
  const std::lock_guard<std::mutex> lock(known_mutex_);
  const std::vector<std::string> candidates(known_.begin(), known_.end());
  for (const auto& name : unknown) {
    std::fprintf(stderr, "%s: unknown flag --%s", program_.c_str(), name.c_str());
    const std::string best = closest_match(name, candidates);
    if (!best.empty()) std::fprintf(stderr, " (did you mean --%s?)", best.c_str());
    std::fprintf(stderr, "\n");
  }
  std::fprintf(stderr, "known flags:");
  for (const auto& name : known_) std::fprintf(stderr, " --%s", name.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

}  // namespace cr
