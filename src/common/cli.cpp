#include "common/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"

namespace cr {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get_string(const std::string& name, const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& text = it->second;
  char* end = nullptr;
  errno = 0;
  const std::int64_t value = std::strtoll(text.c_str(), &end, 10);
  const bool parsed =
      !text.empty() && end == text.c_str() + text.size() && errno != ERANGE;
  if (!parsed) {
    std::fprintf(stderr, "Cli: flag --%s expects an integer, got \"%s\"\n",
                 name.c_str(), text.c_str());
  }
  CR_CHECK(parsed);
  return value;
}

double Cli::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& text = it->second;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  // ERANGE only counts as failure on overflow: glibc also sets it for
  // representable subnormals (underflow), which are legitimate inputs.
  const bool overflow =
      errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL);
  const bool parsed =
      !text.empty() && end == text.c_str() + text.size() && !overflow;
  if (!parsed) {
    std::fprintf(stderr, "Cli: flag --%s expects a number, got \"%s\"\n",
                 name.c_str(), text.c_str());
  }
  CR_CHECK(parsed);
  return value;
}

bool Cli::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace cr
