// E8 "first success" — Lemmas 3.2 / 3.3.
//
// The two key lemmas say: with a synchronized batch population running a
// contention-banded profile (h_ctrl), plus un-synchronized f-backoff
// joiners, plus bounded jamming, a success occurs w.h.p. within a window
// proportional to the batch's natural timescale.
//
// The batch's timescale is set by when its contention m·h_ctrl(k) decays
// into the Θ(1) band, i.e. k ≈ m·log(m) — so the first-success slot should
// scale ~linearly in m (up to log factors) and be robust to constant-rate
// jamming. We sweep m, with backoff joiners spread over the window, and
// report the first-success distribution (custom MixedFactory via
// factory_protocol — this also demonstrates the spec extension point).
#include <fstream>
#include <memory>
#include <ostream>
#include <utility>
#include <vector>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "cli/benches/benches.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "protocols/backoff.hpp"
#include "protocols/baselines.hpp"
#include "protocols/batch.hpp"

namespace cr::benches {

namespace {

/// First `batch_size` spawns run the batch profile; later ones run backoff.
class MixedFactory final : public ProtocolFactory {
 public:
  MixedFactory(std::uint64_t batch_size, SendProfile profile, FunctionSet fs)
      : batch_size_(batch_size),
        profile_factory_(std::move(profile)),
        backoff_factory_(backoff_protocol_factory(std::move(fs))) {}

  std::unique_ptr<NodeProtocol> spawn(node_id id, slot_t arrival, Rng& rng) override {
    if (spawned_++ < batch_size_) return profile_factory_.spawn(id, arrival, rng);
    return backoff_factory_->spawn(id, arrival, rng);
  }

  std::string name() const override { return "mixed(batch+backoff)"; }

 private:
  std::uint64_t batch_size_;
  std::uint64_t spawned_ = 0;
  ProfileProtocolFactory profile_factory_;
  std::unique_ptr<ProtocolFactory> backoff_factory_;
};

int run(int argc, const char* const* argv) {
  const BenchDriver driver(
      argc, argv, {first_success().id, first_success().summary, first_success().flags});
  std::ostream& out = driver.out();
  const bool quick = driver.quick();
  const int reps = driver.reps(30, 10);

  out << "E8 (Lemmas 3.2/3.3): first success in mixed batch + backoff traffic\n"
      << "m synchronized h_ctrl-batch nodes from slot 1 + backoff joiners spread over\n"
      << "the window, with/without 25% jamming. Prediction: first success within\n"
      << "~O(m log m) slots, i.e. p50/m roughly flat; mild inflation under jamming.\n\n";

  Table table({"m (batch)", "jam", "window t", "joiners", "p50", "p99", "p50/m", "solved"});
  const FunctionSet fs = functions_constant_g(4.0);
  const std::uint64_t max_m = quick ? 1024 : 4096;
  for (std::uint64_t m = 64; m <= max_m; m <<= 2) {
    const slot_t t = static_cast<slot_t>(64 * m);
    // The mixed population is stateful per run, so the spec builds a fresh
    // MixedFactory each invocation (factory_protocol's contract).
    const ProtocolSpec spec = factory_protocol("mixed(batch+backoff)", [m, fs] {
      return std::make_unique<MixedFactory>(m, profiles::h_ctrl(2.0), fs);
    });
    const Engine& engine = EngineRegistry::instance().preferred(spec);
    for (const double jam : {0.0, 0.25}) {
      const auto joiners = static_cast<std::uint64_t>(
          static_cast<double>(t) / (100.0 * fs.f(static_cast<double>(t))));
      const std::uint64_t base = driver.seed(72000);
      const auto results = driver.replicate(reps, base, [&](std::uint64_t s) {
        std::vector<std::pair<slot_t, std::uint64_t>> sched = {{1, m}};
        {
          Rng tmp(71000 + (s - base));
          for (std::uint64_t j = 0; j < joiners; ++j)
            sched.emplace_back(1 + tmp.uniform_u64(t), 1);
        }
        ComposedAdversary adv(scheduled_arrivals(std::move(sched)),
                              jam > 0 ? iid_jammer(jam) : no_jam());
        SimConfig cfg;
        cfg.horizon = t;
        cfg.seed = s;
        cfg.stop_after_first_success = true;  // the tail is irrelevant here
        return engine.run(spec, adv, cfg);
      });
      Quantiles first;
      for (const SimResult& res : results)
        first.add(static_cast<double>(res.first_success == 0 ? t : res.first_success));
      const double solved =
          fraction(results, [](const SimResult& r) { return r.first_success != 0; });
      table.add_row({Cell(m), Cell(jam, 2), Cell(static_cast<std::uint64_t>(t)),
                     Cell(joiners), Cell(first.quantile(0.5), 0), Cell(first.quantile(0.99), 0),
                     Cell(first.quantile(0.5) / static_cast<double>(m), 3),
                     Cell(solved, 3)});
    }
  }
  table.print(out);

  const std::string csv_path = driver.csv_path("first_success.csv");
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    write_table_csv(table, first_success().csv_columns, file);
    out << "\ntable written to " << csv_path << "\n";
  }

  out << "\nReading: p50/m stays in a narrow band while m spans 64x (the first success\n"
         "tracks the batch's contention timescale), 25% jamming only shifts it by a\n"
         "constant factor, and every run succeeds well inside the window — the\n"
         "quantitative content of Lemmas 3.2/3.3.\n";
  return 0;
}

}  // namespace

BenchSpec first_success() {
  BenchSpec spec;
  spec.name = "first_success";
  spec.id = "E8";
  spec.summary = "first success in mixed batch + backoff traffic (Lemmas 3.2/3.3)";
  spec.claim = "Lemmas 3.2 / 3.3";
  spec.outcome =
      "first success within ~O(m log m) slots of a batch timescale (p50/m flat), "
      "robust to 25% jamming";
  spec.flags = {};
  spec.csv_columns = {"m", "jam", "t", "joiners", "p50", "p99", "p50_over_m", "solved"};
  spec.csv_row_desc = "one (m, jam) cell; quantiles over reps";
  spec.run = run;
  return spec;
}

}  // namespace cr::benches
