// E1 "trade-off curve" — Theorem 1.2.
//
// For each jamming-tolerance regime g ∈ {const, log, 2^√log}, run the CJZ
// algorithm against a smooth adversary that saturates both budgets
// (arrivals ≈ t/(8·f(t)), jamming ≈ t/(8·g(t))) and measure the
// (f,g)-throughput ratio  a_t / (n_t·f(t) + d_t·g(t))  as t grows.
//
// Paper prediction: the ratio stays O(1) for every regime (the algorithm
// achieves (Θ(f), Θ(g))-throughput with f = Θ(log t / log² g)). In the
// 2^√log regime f is constant — constant throughput per Remark 2.
#include <algorithm>
#include <fstream>
#include <ostream>

#include "cli/benches/benches.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "metrics/throughput_check.hpp"
#include "metrics/windowed.hpp"

namespace cr::benches {

namespace {

struct Regime {
  const char* label;
  FunctionSet fs;
};

struct Rep {
  SimResult res;
  double final_ratio = 0;
  double max_ratio = 0;
};

void run_regime(const Regime& regime, const BenchDriver& driver, int reps, int min_exp,
                int max_exp, Table& table) {
  for (int e = min_exp; e <= max_exp; e += 2) {
    const slot_t t = static_cast<slot_t>(1) << e;
    const auto runs = driver.replicate(reps, driver.seed(9000), [&](std::uint64_t s) {
      Scenario sc = smooth_scenario(t, regime.fs, 8.0, 8.0);
      sc.config.seed = s;
      ThroughputChecker checker(sc.fs);
      Rep rep;
      rep.res = run_scenario(EngineRegistry::instance().preferred(sc.protocol), sc, &checker);
      rep.final_ratio = checker.final_ratio();
      rep.max_ratio = checker.max_ratio();
      return rep;
    });
    Accumulator final_ratio, max_ratio, arrivals, jammed, active, served;
    for (const Rep& rep : runs) {
      final_ratio.add(rep.final_ratio);
      max_ratio.add(rep.max_ratio);
      arrivals.add(static_cast<double>(rep.res.arrivals));
      jammed.add(static_cast<double>(rep.res.jammed_slots));
      active.add(static_cast<double>(rep.res.active_slots));
      served.add(rep.res.arrivals ? static_cast<double>(rep.res.successes) /
                                        static_cast<double>(rep.res.arrivals)
                                  : 1.0);
    }
    const double td = static_cast<double>(t);
    table.add_row({regime.label, Cell(static_cast<std::uint64_t>(t)),
                   Cell(regime.fs.f(td), 3), Cell(regime.fs.g(td), 1),
                   Cell(arrivals.mean(), 0), Cell(jammed.mean(), 0), Cell(active.mean(), 0),
                   mean_sd(final_ratio, 3), mean_sd(max_ratio, 3), Cell(served.mean(), 3)});
  }
}

int run(int argc, const char* const* argv) {
  const BenchDriver driver(argc, argv, {tradeoff().id, tradeoff().summary, tradeoff().flags});
  std::ostream& out = driver.out();
  const int reps = driver.reps(10, 3);
  const int max_exp = static_cast<int>(driver.get_int("max_exp", 20, 16));
  const int min_exp = 14;

  out << "E1 (Theorem 1.2): (f,g)-throughput ratio vs t across g regimes\n"
      << "Smooth adversary saturating both budgets; ratio = a_t/(n_t f + d_t g).\n"
      << "Prediction: ratio stays O(1) in every regime as t grows.\n\n";

  Table table({"g regime", "t", "f(t)", "g(t)", "n_t", "d_t", "a_t", "ratio(final)",
               "ratio(max)", "served"});
  Regime regimes[] = {
      {"const(4)", functions_constant_g(4.0)},
      {"log2(x)", functions_log_g()},
      {"log2(x)^2", FunctionSet{fn::poly_log(1.0, 2.0)}},
      {"2^sqrt(log)", functions_exp_sqrt_log_g(1.0)},
  };
  for (const Regime& regime : regimes) run_regime(regime, driver, reps, min_exp, max_exp, table);
  table.print(out);

  // Optional: dump a per-window series (one representative seed per regime
  // at the largest t) for plotting — the (f,g) ratio from the checker plus
  // windowed throughput/backlog from the streaming WindowedMetrics observer,
  // both attached to the same run through an ObserverChain.
  const std::string csv_path = driver.csv_path("tradeoff_series.csv");
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    CsvWriter csv(file, tradeoff().csv_columns);
    const slot_t t = static_cast<slot_t>(1) << max_exp;
    const slot_t window = std::max<slot_t>(1, t / 256);
    for (const Regime& regime : regimes) {
      Scenario sc = smooth_scenario(t, regime.fs, 8.0, 8.0);
      sc.config.seed = driver.seed(9000);
      ThroughputChecker checker(sc.fs, window);
      WindowedMetrics windows(window);
      ObserverChain chain{&checker, &windows};
      run_scenario(EngineRegistry::instance().preferred(sc.protocol), sc, &chain);
      const std::size_t rows = std::min(checker.series().size(), windows.series().size());
      for (std::size_t i = 0; i < rows; ++i) {
        const auto& pt = checker.series()[i];
        const WindowStats& win = windows.series()[i];
        csv.row({regime.label, std::to_string(pt.t), std::to_string(pt.n_t),
                 std::to_string(pt.d_t), std::to_string(pt.a_t), format_double(pt.ratio, 5),
                 std::to_string(win.successes), format_double(win.live_mean, 2),
                 std::to_string(win.live_max)});
      }
    }
    out << "\nratio series written to " << csv_path << " (" << csv.rows_written()
        << " rows)\n";
  }

  out << "\nReading: within each regime the ratio column is flat in t (bounded\n"
         "constant), i.e. active slots track n_t·f + d_t·g as Theorem 1.2 predicts.\n";
  return 0;
}

}  // namespace

BenchSpec tradeoff() {
  BenchSpec spec;
  spec.name = "tradeoff";
  spec.id = "E1";
  spec.summary = "(f,g)-throughput ratio vs t across g regimes (Thm 1.2)";
  spec.claim = "Theorem 1.2 (f,g)-throughput";
  spec.outcome =
      "ratio a_t/(n_t·f + d_t·g) flat in t for every g regime; constant throughput "
      "in the 2^√log regime (Remark 2)";
  spec.flags = {{"max_exp", "largest horizon exponent: t sweeps 2^14..2^max_exp "
                            "(default 20, quick 16)"}};
  spec.csv_columns = {"regime", "t",   "n_t",           "d_t",          "a_t",
                      "ratio",  "win_successes", "win_live_mean", "win_live_max"};
  spec.csv_row_desc =
      "one window of a representative largest-t run per regime (ThroughputChecker + "
      "WindowedMetrics series)";
  spec.run = run;
  return spec;
}

}  // namespace cr::benches
