/// \file
/// Declarations of the registered bench specs. Each lives in its own
/// src/cli/benches/<name>.cpp translation unit; BenchRegistry's constructor
/// calls these explicitly (rather than relying on static registrar objects,
/// which a static-library link would silently drop).
#pragma once

#include "cli/bench_registry.hpp"

namespace cr::benches {

BenchSpec tradeoff();          // E1
BenchSpec worstcase();         // E2
BenchSpec batch_completion();  // E3
BenchSpec batch_robustness();  // E4
BenchSpec nonadaptive();       // E5
BenchSpec lowerbound();        // E6
BenchSpec baselines();         // E7
BenchSpec first_success();     // E8
BenchSpec latency();           // E9
BenchSpec energy();            // E10
BenchSpec ablation();          // E12
BenchSpec cd_contrast();       // E13
BenchSpec scenario();          // S1 — generic registry-scenario runner
BenchSpec workload();          // S2 — composable WorkloadSpec runner
BenchSpec stream();            // S3 — streaming service mode (ring feed + snapshots)
BenchSpec perf();              // P1 — engine throughput trajectory

}  // namespace cr::benches
