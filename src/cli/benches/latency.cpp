// E9 "latency under smooth adversaries" — Corollary 3.6.
//
// Under a "smooth" adversary (arrivals O(j/f(j)) and jamming O(j/g(j)) in
// every suffix window of length j), every node arriving before slot t−j has
// departed by slot t w.h.p. in j. Operationally: latency tails are bounded
// by j ≈ latency·f-factor, and the maximum latency grows slowly with the
// run length.
//
// A trickle of single arrivals would make latency trivially 1 (a lone
// node's stage-0 backoff wins its arrival slot), so we use the burstiest
// arrival pattern that still satisfies the smooth budget — the registered
// "bursty" scenario: batches of B nodes every ceil(16·B·f(t)) slots, with
// budget-paced jamming on top. The interesting quantity is how the latency
// tail scales with B and with the g regime; a WindowedMetrics observer
// streams the backlog alongside, whose peak should stay ~one burst.
//
// Runs on the registry's preferred engine (fast_cjz attributes node stats).
// The --csv table is diffed against tests/golden/bench_latency_quick.csv by
// the golden CTest entry — keep its byte format stable.
#include <fstream>
#include <ostream>

#include "cli/benches/benches.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "metrics/metrics.hpp"
#include "metrics/windowed.hpp"

namespace cr::benches {

namespace {

struct Rep {
  LatencyReport lat;
  std::uint64_t peak_backlog = 0;
};

int run(int argc, const char* const* argv) {
  const BenchDriver driver(argc, argv, {latency().id, latency().summary, latency().flags});
  std::ostream& out = driver.out();
  const int reps = driver.reps(10, 4);
  const int max_exp = static_cast<int>(driver.get_int("max_exp", 18, 16));

  out << "E9 (Corollary 3.6): node latency under smooth adversaries\n"
      << "Paced arrivals 1/(8f), budget jamming 1/(8g). Latency = slots in system.\n\n";

  Table table({"g regime", "t", "burst B", "departed", "stranded", "lat p50", "lat p99",
               "lat max", "peak backlog", "p99/(B f)"});
  std::vector<std::vector<std::string>> csv_rows;
  struct Regime {
    const char* label;
    const char* name;  ///< functions_for_regime key
    double gamma;      ///< const's value / exp_sqrt_log's scale
  } regimes[] = {
      {"const(4)", "const", 4.0},
      {"log2(x)", "log", 4.0},  // gamma unused
      {"2^sqrt(log)", "exp_sqrt_log", 1.0},
  };
  const slot_t t = static_cast<slot_t>(1) << max_exp;
  for (const auto& regime : regimes) {
    const FunctionSet fs = functions_for_regime(regime.name, regime.gamma);
    for (const std::uint64_t burst : {16ull, 64ull, 256ull}) {
      const double ft = fs.f(static_cast<double>(t));
      ScenarioParams params;
      params.horizon = t;
      params.n = burst;
      params.arrival_margin = 16.0;
      params.jam_margin = 8.0;
      params.g_regime = regime.name;
      params.gamma = regime.gamma;
      const auto runs = driver.replicate(reps, driver.seed(81000), [&](std::uint64_t s) {
        ScenarioParams p = params;
        p.seed = s;
        Scenario sc = ScenarioRegistry::instance().build("bursty", p);
        sc.config.recording = RecordingConfig::node_stats();
        WindowedMetrics windows(std::max<slot_t>(1, t / 64));
        const SimResult res =
            run_scenario(EngineRegistry::instance().preferred(sc.protocol), sc, &windows);
        return Rep{latency_report(res), windows.peak_backlog()};
      });
      Accumulator departed, stranded, p50, p99, maxv, backlog;
      for (const Rep& rep : runs) {
        departed.add(static_cast<double>(rep.lat.departed));
        stranded.add(static_cast<double>(rep.lat.stranded));
        p50.add(rep.lat.p50);
        p99.add(rep.lat.p99);
        maxv.add(rep.lat.max);
        backlog.add(static_cast<double>(rep.peak_backlog));
      }
      table.add_row({regime.label, Cell(static_cast<std::uint64_t>(t)), Cell(burst),
                     Cell(departed.mean(), 0), Cell(stranded.mean(), 1), Cell(p50.mean(), 0),
                     Cell(p99.mean(), 0), Cell(maxv.mean(), 0), Cell(backlog.mean(), 1),
                     Cell(p99.mean() / (static_cast<double>(burst) * ft), 2)});
      // Every CSV value is a mean of integer-valued samples — exact IEEE
      // arithmetic, so the bytes are reproducible on a given platform and
      // can be golden-diffed. The p99/(B·f) ratio is deliberately
      // excluded: f(t) feeds straight through libm into the output and
      // would differ in the last ulp across platforms.
      csv_rows.push_back({regime.label, std::to_string(t), std::to_string(burst),
                          format_double(departed.mean(), 17), format_double(stranded.mean(), 17),
                          format_double(p50.mean(), 17), format_double(p99.mean(), 17),
                          format_double(maxv.mean(), 17), format_double(backlog.mean(), 17)});
    }
  }
  table.print(out);

  const std::string csv_path = driver.csv_path("latency.csv");
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    CsvWriter csv(file, latency().csv_columns);
    for (const auto& row : csv_rows) csv.row(row);
    out << "\ntable written to " << csv_path << " (" << csv.rows_written() << " rows)\n";
  }

  out << "\nReading: p99 latency scales like burst·f (the last column is a roughly\n"
         "constant service factor), peak backlog and stranded counts stay ~one burst —\n"
         "every node that arrived before the tail window departs, as Corollary 3.6\n"
         "predicts for smooth adversaries.\n";
  return 0;
}

}  // namespace

BenchSpec latency() {
  BenchSpec spec;
  spec.name = "latency";
  spec.id = "E9";
  spec.summary = "node latency under smooth adversaries (Cor 3.6)";
  spec.claim = "Corollary 3.6 (smooth adversaries)";
  spec.outcome =
      "p99 latency ~ burst·f (constant service factor); stranded count and peak "
      "backlog ~ one burst";
  spec.flags = {{"max_exp", "horizon exponent: runs at t = 2^max_exp (default 18, quick 16)"}};
  spec.csv_columns = {"regime", "t",       "burst",   "departed",    "stranded",
                      "lat_p50", "lat_p99", "lat_max", "peak_backlog"};
  spec.csv_row_desc =
      "one (g regime, burst) cell at t = 2^max_exp; means over reps (exact IEEE "
      "means of integers — golden-diffable)";
  spec.run = run;
  return spec;
}

}  // namespace cr::benches
