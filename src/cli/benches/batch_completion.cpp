// E3 "batch completion" — Claim 3.5.1.
//
// h_data-batch (send w.p. 1/i in slot i — the standard implementation of
// binary exponential backoff) CANNOT deliver all n batch messages in O(n)
// slots w.h.p.; the CJZ algorithm finishes the same batch in Θ(n·f(n))
// slots (n·log n for g = const).
//
// Two measurements:
//   (a) P[all n delivered within c·n slots] for c ∈ {50, 200}: for h_data
//       this probability collapses toward 0 as n grows (that IS the claim);
//       for CJZ it is ~1 throughout.
//   (b) median slots to deliver 90% of the batch — a concentrated statistic
//       (the all-n completion time has a truncated-Pareto tail driven by
//       the lone-survivor phase, so its mean/median are very noisy).
#include <cmath>
#include <fstream>
#include <ostream>
#include <vector>

#include "cli/benches/benches.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "metrics/metrics.hpp"
#include "protocols/batch.hpp"

namespace cr::benches {

namespace {

struct BatchStats {
  double p_done_by_50n = 0;
  double p_done_by_200n = 0;
  double median_90pct = 0;  ///< median slot of the ceil(0.9n)-th success
};

BatchStats measure(const ProtocolSpec& spec, std::uint64_t n, const BenchDriver& driver,
                   int reps, std::uint64_t base_seed) {
  const Engine& engine = EngineRegistry::instance().preferred(spec);
  const slot_t horizon = 400 * n;
  const auto results = driver.replicate(reps, base_seed, [&](std::uint64_t s) {
    Scenario sc = batch_scenario(n, 0.0, horizon, functions_constant_g(4.0));
    sc.protocol = spec;
    sc.config.seed = s;
    sc.config.recording = RecordingConfig::success_times();
    return run_scenario(engine, sc);
  });
  BatchStats out;
  Quantiles q90;
  for (const SimResult& res : results) {
    const std::uint64_t target90 = (9 * n + 9) / 10;
    if (res.success_times.size() >= target90)
      q90.add(static_cast<double>(res.success_times[target90 - 1]));
    else
      q90.add(static_cast<double>(horizon));  // censored
  }
  out.p_done_by_50n =
      fraction(results, [&](const SimResult& r) { return successes_in_window(r, 1, 50 * n) == n; });
  out.p_done_by_200n = fraction(
      results, [&](const SimResult& r) { return successes_in_window(r, 1, 200 * n) == n; });
  out.median_90pct = q90.median();
  return out;
}

int run(int argc, const char* const* argv) {
  const BenchDriver driver(
      argc, argv, {batch_completion().id, batch_completion().summary, batch_completion().flags});
  std::ostream& out = driver.out();
  const int reps = driver.reps(20, 8);
  const auto max_n = static_cast<std::uint64_t>(driver.get_int("max_n", 4096, 1024));

  out << "E3 (Claim 3.5.1): delivering ALL n batch messages\n"
      << "Prediction: P[h_data-batch finishes within c*n slots] -> 0 as n grows\n"
      << "(omega(n) completion w.h.p.), while CJZ finishes in Theta(n log n).\n\n";

  const ProtocolSpec cjz = cjz_protocol(functions_constant_g(4.0));
  const ProtocolSpec h_data = profile_protocol(profiles::h_data());

  Table table({"n", "protocol", "P[done<=50n]", "P[done<=200n]", "median slots to 90%",
               "90% slots /n"});
  std::vector<double> log_n, log_cjz90;
  for (std::uint64_t n = 128; n <= max_n; n <<= 1) {
    const BatchStats h = measure(h_data, n, driver, reps, driver.seed(21000));
    const BatchStats c = measure(cjz, n, driver, reps, driver.seed(22000));
    table.add_row({Cell(n), "h_data", Cell(h.p_done_by_50n, 2), Cell(h.p_done_by_200n, 2),
                   Cell(h.median_90pct, 0), Cell(h.median_90pct / static_cast<double>(n), 1)});
    table.add_row({Cell(n), "cjz", Cell(c.p_done_by_50n, 2), Cell(c.p_done_by_200n, 2),
                   Cell(c.median_90pct, 0), Cell(c.median_90pct / static_cast<double>(n), 1)});
    log_n.push_back(std::log2(static_cast<double>(n)));
    log_cjz90.push_back(std::log2(c.median_90pct));
  }
  table.print(out);

  const std::string csv_path = driver.csv_path("batch_completion.csv");
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    write_table_csv(table, batch_completion().csv_columns, file);
    out << "\ntable written to " << csv_path << "\n";
  }

  const LinearFit fit_c = fit_linear(log_n, log_cjz90);
  out << "\nCJZ 90%-completion log-log slope = " << format_double(fit_c.slope, 2)
      << " (R2=" << format_double(fit_c.r2, 3) << ", ~1 expected: linear in n)\n"
      << "Reading: h_data's probability of finishing everything within a fixed\n"
         "multiple of n collapses as n grows — exactly Claim 3.5.1 — while CJZ\n"
         "finishes every time with near-linear scaling.\n";
  return 0;
}

}  // namespace

BenchSpec batch_completion() {
  BenchSpec spec;
  spec.name = "batch_completion";
  spec.id = "E3";
  spec.summary = "delivering ALL n batch messages (Claim 3.5.1)";
  spec.claim = "Claim 3.5.1";
  spec.outcome =
      "P[h_data finishes within c·n] → 0 as n grows; CJZ finishes every time, "
      "~linear 90%-completion scaling";
  spec.flags = {{"max_n", "largest batch size: n sweeps 128..max_n doubling "
                          "(default 4096, quick 1024)"}};
  spec.csv_columns = {"n", "protocol", "p_done_50n", "p_done_200n", "median_slots_90pct",
                      "slots90_over_n"};
  spec.csv_row_desc = "one (n, protocol) cell; empirical probabilities and medians over reps";
  spec.run = run;
  return spec;
}

}  // namespace cr::benches
