// E12 "ablations" — quantifying the design decisions of §2.1.
//
// The algorithm description makes three deliberate choices:
//   (a) every Phase-3 restart SWAPS the control and data channels;
//   (b) joiners pass through a Phase-2 synchronization round before
//       entering Phase 3;
//   (c) the constants c₃ (control-batch density) and c_f (backoff density)
//       sit in a "Goldilocks" band — too low starves control successes /
//       first successes, too high self-collides.
//
// We toggle each choice and measure (i) batch completion under jamming and
// (ii) served fraction + bound ratio on a dynamic worst-case workload.
#include <fstream>
#include <ostream>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "cli/benches/benches.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "metrics/throughput_check.hpp"

namespace cr::benches {

namespace {

struct Variant {
  const char* label;
  CjzOptions opts;
  double cf = 1.0;
  double c_ctrl = 2.0;
};

void bench_variant(const Variant& v, std::uint64_t n, slot_t stream_t,
                   const BenchDriver& driver, int reps, Table& table) {
  FunctionSet fs = functions_constant_g(4.0);
  fs.cf = v.cf;
  fs.c_ctrl = v.c_ctrl;
  const ProtocolSpec spec = cjz_protocol(fs, v.opts);
  const Engine& engine = EngineRegistry::instance().preferred(spec);

  // (i) batch of n under 25% jamming: median completion (capped).
  const auto batch_runs = driver.replicate(reps, driver.seed(95000), [&](std::uint64_t s) {
    Scenario sc = batch_scenario(n, 0.25, 400 * n, fs);
    sc.protocol = spec;
    sc.config.seed = s;
    sc.config.stop_when_empty = true;
    return run_scenario(engine, sc);
  });
  Quantiles completion;
  for (const SimResult& res : batch_runs)
    completion.add(static_cast<double>(res.live_at_end == 0 ? res.last_success : res.slots));

  // (ii) dynamic worst-case stream: paced arrivals + 25% jamming.
  struct StreamRep {
    double served = 0;
    double max_ratio = 0;
  };
  const auto stream_runs = driver.replicate(reps, driver.seed(96000), [&](std::uint64_t s) {
    ComposedAdversary adv(paced_arrivals(fs, 4.0), iid_jammer(0.25));
    SimConfig cfg;
    cfg.horizon = stream_t;
    cfg.seed = s;
    ThroughputChecker checker(fs);
    const SimResult res = engine.run(spec, adv, cfg, &checker);
    StreamRep rep;
    rep.served = res.arrivals
                     ? static_cast<double>(res.successes) / static_cast<double>(res.arrivals)
                     : 1.0;
    rep.max_ratio = checker.max_ratio();
    return rep;
  });
  Accumulator served, ratio;
  for (const StreamRep& rep : stream_runs) {
    served.add(rep.served);
    ratio.add(rep.max_ratio);
  }

  table.add_row({v.label, Cell(completion.median(), 0),
                 Cell(completion.median() / static_cast<double>(n), 1), Cell(served.mean(), 3),
                 mean_sd(ratio, 2)});
}

int run(int argc, const char* const* argv) {
  const BenchDriver driver(argc, argv, {ablation().id, ablation().summary, ablation().flags});
  std::ostream& out = driver.out();
  const int reps = driver.reps(10, 4);
  const auto n = static_cast<std::uint64_t>(driver.get_int("n", 1024, 256));
  const slot_t stream_t = driver.quick() ? (1 << 15) : (1 << 17);

  out << "E12: ablations of the algorithm's design choices (g = const(4))\n"
      << "batch: n = " << n << " under 25% jamming; stream: paced arrivals + 25% jam,\n"
      << "t = " << stream_t << ". 'bound ratio' is max a_t/(n_t f + d_t g).\n\n";

  Table table({"variant", "batch completion (median)", "completion/n", "stream served",
               "bound ratio max"});

  Variant variants[] = {
      {"paper (swap + phase2)", {}, 1.0, 2.0},
      {"no channel swap", {.swap_channels_on_restart = false, .use_phase2 = true}, 1.0, 2.0},
      {"no phase 2", {.swap_channels_on_restart = true, .use_phase2 = false}, 1.0, 2.0},
      {"neither", {.swap_channels_on_restart = false, .use_phase2 = false}, 1.0, 2.0},
      {"c3 = 0.5 (sparse ctrl)", {}, 1.0, 0.5},
      {"c3 = 8 (dense ctrl)", {}, 1.0, 8.0},
      {"cf = 0.25 (sparse backoff)", {}, 0.25, 2.0},
      {"cf = 4 (dense backoff)", {}, 4.0, 2.0},
  };
  for (const Variant& v : variants) bench_variant(v, n, stream_t, driver, reps, table);
  table.print(out);

  const std::string csv_path = driver.csv_path("ablation.csv");
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    write_table_csv(table, ablation().csv_columns, file);
    out << "\ntable written to " << csv_path << "\n";
  }

  out << "\nReading: the constants matter most — c3 off its sweet spot slows the batch\n"
         "in BOTH directions (sparse ctrl starves restarts, dense ctrl self-collides),\n"
         "and a too-sparse backoff density (cf = 0.25) collapses dynamic service and\n"
         "blows the (f,g) bound, exactly the failure Theorem 4.2's dilemma predicts\n"
         "for under-aggressive senders. The Phase-2 round and the channel swap show\n"
         "little effect on stochastic workloads — they are robustness devices against\n"
         "adversarial timing (their role in the proofs), which the table reports\n"
         "honestly rather than manufacturing a gap.\n";
  return 0;
}

}  // namespace

BenchSpec ablation() {
  BenchSpec spec;
  spec.name = "ablation";
  spec.id = "E12";
  spec.summary = "ablations of the algorithm's design choices";
  spec.claim = "§2.1 design choices";
  spec.outcome =
      "the c₃/c_f constants matter most (both directions hurt); channel swap and "
      "Phase 2 are adversarial-robustness devices with little stochastic effect";
  spec.flags = {{"n", "batch size for the completion measurement (default 1024, quick 256)"}};
  spec.csv_columns = {"variant", "batch_completion_median", "completion_over_n",
                      "stream_served", "bound_ratio_max"};
  spec.csv_row_desc = "one variant row; medians/means over reps (bound ratio is mean±sd)";
  spec.run = run;
  return spec;
}

}  // namespace cr::benches
