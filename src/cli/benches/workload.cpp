// S2 "workload" — composable WorkloadSpec runner.
//
// Where `cr bench scenario` runs a NAMED preset, this subcommand composes a
// workload from first principles: any registered arrival process × any
// registered jammer × g regime × named protocol, each component configured
// through its own ParamSchema via dotted flags:
//
//   cr bench workload --arrival=bernoulli --arrival.rate=0.2
//                     --jammer=reactive --jammer.burst=3 --protocol=cjz
//
// Every key is validated against the component registries before anything
// runs — an unknown or unconsumed parameter is a hard error naming the key
// (exit 2), both here and at suite-manifest parse time (validate_cell). The
// same grid works from a suite cell, e.g.
//   "grid": {"arrival": ["batch", "paced"], "jammer": ["none", "iid"]}
// — the (arrival × jammer) product with zero new C++.
#include <cstdio>
#include <fstream>
#include <ostream>

#include "cli/benches/benches.hpp"
#include "common/table.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/workload.hpp"

namespace cr::benches {

namespace {

bool is_component_param(const std::string& name) {
  return name.rfind("arrival.", 0) == 0 || name.rfind("jammer.", 0) == 0;
}

/// Flags the driver layer owns; everything else a workload invocation
/// carries is a workload key.
bool is_driver_flag(const std::string& name) {
  if (name == "engine") return true;
  for (const BenchFlag& flag : BenchDriver::standard_flags())
    if (flag.name == name) return true;
  return false;
}

/// Shared by the CLI path and the suite validator: split `flags` into
/// workload keys, parse + validate them, resolve the engine. Returns "" and
/// fills the outputs on success.
std::string resolve(const std::vector<std::pair<std::string, std::string>>& flags,
                    const std::string& engine_name, WorkloadParse* parsed,
                    const Engine** engine) {
  std::vector<std::pair<std::string, std::string>> kvs;
  for (const auto& [key, value] : flags)
    if (!is_driver_flag(key)) kvs.emplace_back(key, value);
  *parsed = parse_workload(kvs);
  if (!parsed->ok()) return parsed->error;
  // Engine choice needs only the protocol spec — do NOT materialise the
  // workload here: suite validation runs this per expanded cell, and some
  // arrival processes (uniform_random) pay construction costs proportional
  // to their parameters.
  const ProtocolSpec protocol = workload_protocol(
      parsed->spec.protocol, functions_for_regime(parsed->spec.g_regime, parsed->spec.gamma));
  if (engine_name == "preferred") {
    *engine = &EngineRegistry::instance().preferred(protocol);
  } else {
    *engine = EngineRegistry::instance().find(engine_name);
    if (*engine == nullptr) {
      std::string error = "unknown engine \"" + engine_name + "\"; known engines:";
      for (const std::string& name : EngineRegistry::instance().names()) error += " " + name;
      error += " (or \"preferred\")";
      return error;
    }
    if (!(*engine)->supports(protocol)) {
      std::string error = "engine \"" + engine_name + "\" cannot execute protocol \"" +
                          parsed->spec.protocol + "\"; compatible engines:";
      for (const Engine* candidate : EngineRegistry::instance().compatible(protocol)) {
        error += ' ';
        error += candidate->name();
      }
      return error;
    }
  }
  return "";
}

int run(int argc, const char* const* argv) {
  const BenchSpec& self = workload();
  const BenchDriver driver(argc, argv,
                           {self.id, self.summary, self.flags, is_component_param});
  std::ostream& out = driver.out();
  const int reps = driver.reps(8, 3);
  const std::string engine_name = driver.cli().get_string("engine", "preferred");

  std::vector<std::pair<std::string, std::string>> flags;
  for (const auto& [key, value] : driver.cli().raw_flags()) flags.emplace_back(key, value);
  WorkloadParse parsed;
  const Engine* engine = nullptr;
  if (const std::string error = resolve(flags, engine_name, &parsed, &engine);
      !error.empty()) {
    std::fprintf(stderr, "cr bench workload: %s\n", error.c_str());
    return 2;
  }
  WorkloadSpec spec = parsed.spec;
  if (!driver.cli().has("horizon"))
    spec.horizon = static_cast<slot_t>(driver.get_int("horizon", 1 << 16, 1 << 14));

  // One probe build names the composition for the narrative line; every
  // replication builds a fresh adversary (stateful, consumed per run).
  spec.seed = driver.seed(60000);
  const std::string composed = build_workload(spec).adversary->name();

  out << "S2: workload " << composed << ", g=" << spec.g_regime << ", protocol "
      << spec.protocol << ", engine " << engine->name() << ", means over " << reps
      << " seeds\n\n";

  // The lockstep engine replicates through the many-seed sweep path (one
  // lockstep pass over all seeds, quiescent tails skipped analytically);
  // scalar engines keep the classic one-run-per-seed harness loop.
  const auto results =
      engine->name() == "lockstep"
          ? replicate_workload(*engine, spec, reps, driver.seed(60000), driver.threads())
          : driver.replicate(reps, driver.seed(60000), [&](std::uint64_t s) {
              WorkloadSpec per_run = spec;
              per_run.seed = s;
              Scenario sc = build_workload(per_run);
              return run_scenario(*engine, sc);
            });

  const auto slots =
      collect(results, [](const SimResult& r) { return static_cast<double>(r.slots); });
  const auto arrivals =
      collect(results, [](const SimResult& r) { return static_cast<double>(r.arrivals); });
  const auto successes =
      collect(results, [](const SimResult& r) { return static_cast<double>(r.successes); });
  const auto jammed =
      collect(results, [](const SimResult& r) { return static_cast<double>(r.jammed_slots); });
  const auto served = collect(results, [](const SimResult& r) {
    return r.arrivals ? static_cast<double>(r.successes) / static_cast<double>(r.arrivals)
                      : 1.0;
  });
  const auto sends =
      collect(results, [](const SimResult& r) { return static_cast<double>(r.total_sends); });
  const auto backlog =
      collect(results, [](const SimResult& r) { return static_cast<double>(r.live_at_end); });

  Table table({"arrival", "jammer", "g", "protocol", "engine", "horizon", "slots", "arrivals",
               "successes", "jammed", "served", "sends", "backlog at end"});
  table.add_row({spec.arrival.name, spec.jammer.name, spec.g_regime, spec.protocol,
                 engine->name(), Cell(static_cast<std::uint64_t>(spec.horizon)),
                 Cell(slots.mean(), 0), Cell(arrivals.mean(), 1), Cell(successes.mean(), 1),
                 Cell(jammed.mean(), 1), Cell(served.mean(), 3), Cell(sends.mean(), 1),
                 mean_sd(backlog, 1)});
  table.print(out);

  const std::string csv_path = driver.csv_path("workload.csv");
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    write_table_csv(table, workload().csv_columns, file);
    out << "\ntable written to " << csv_path << "\n";
  }

  out << "\nReading: one row per invocation by design — grids over\n"
         "(arrival × jammer × g × protocol) come from suite manifests\n"
         "(see suites/workload_grid_quick.json).\n";
  return 0;
}

std::string validate_cell(const std::vector<std::pair<std::string, std::string>>& flags) {
  std::string engine_name = "preferred";
  for (const auto& [key, value] : flags)
    if (key == "engine") engine_name = value;
  WorkloadParse parsed;
  const Engine* engine = nullptr;
  return resolve(flags, engine_name, &parsed, &engine);
}

}  // namespace

BenchSpec workload() {
  BenchSpec spec;
  spec.name = "workload";
  spec.id = "S2";
  spec.summary = "composable WorkloadSpec runner (arrival × jammer × g × protocol)";
  spec.claim = "— (runs any registered component composition)";
  spec.outcome =
      "one CSV row of aggregate counters for the composed workload at one "
      "parameter point; grids come from suite manifests";
  spec.flags = {
      {"arrival", "ArrivalRegistry component name (default none); parameters via "
                  "--arrival.<param>"},
      {"jammer", "JammerRegistry component name (default none); parameters via "
                 "--jammer.<param>"},
      {"g", "g regime: const | log | exp_sqrt_log (default const)"},
      {"gamma", "const-g value / exp_sqrt_log scale (default 4; rejected under g=log)"},
      {"protocol", "named protocol: cjz | h_backoff | h_data | beb | sawtooth | poly "
                   "(default cjz)"},
      {"engine", "engine name, or \"preferred\" for the fastest compatible (default)"},
      {"horizon", "slot horizon (default 65536, quick 16384)"},
  };
  spec.allows_flag = is_component_param;
  spec.validate_cell = validate_cell;
  spec.csv_columns = {"arrival", "jammer", "g",      "protocol", "engine",
                      "horizon", "slots",  "arrivals", "successes", "jammed",
                      "served",  "sends",  "backlog_at_end"};
  spec.csv_row_desc = "exactly one row: aggregate counters, means over reps";
  spec.run = run;
  return spec;
}

}  // namespace cr::benches
