// E5 "non-adaptive fails" — Theorem 4.2.
//
// A protocol that broadcasts with a PRE-DEFINED probability a_i in its i-th
// slot (until the first heard success) cannot achieve optimal throughput
// under jamming. The constructive half: jam a prefix of t/(4·g(t)) slots.
// A decaying non-adaptive sequence (1/i — exponential backoff's profile) has
// already wasted its high-probability slots inside the jammed prefix and
// then needs ~another prefix-length to recover; the paper's adaptive
// backoff subroutine re-draws h(2^k) send slots per stage, so it recovers
// within a constant number of stages.
//
// We inject a single node at slot 1, jam [1, t/16], and measure the time to
// first success beyond the prefix ("excess") and the number of broadcasts.
#include <fstream>
#include <memory>
#include <ostream>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "cli/benches/benches.hpp"
#include "common/table.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "protocols/baselines.hpp"
#include "protocols/batch.hpp"

namespace cr::benches {

namespace {

void measure(const ProtocolSpec& spec, const char* label, slot_t t, const BenchDriver& driver,
             int reps, Table& table) {
  const slot_t prefix = t / 16;
  // Sends under prefix jamming are the measurement, so every contender runs
  // on the per-node reference engine (the cohort engines aggregate).
  const Engine& engine = EngineRegistry::instance().at("generic");
  const auto results = driver.replicate(reps, driver.seed(41000), [&](std::uint64_t s) {
    ComposedAdversary adv(batch_arrival(1, 1), prefix_jammer(prefix));
    SimConfig cfg;
    cfg.horizon = t;
    cfg.seed = s;
    cfg.stop_when_empty = true;
    return engine.run(spec, adv, cfg);
  });
  const auto first = [t](const SimResult& r) {
    return static_cast<double>(r.first_success == 0 ? t : r.first_success);
  };
  const auto time_acc = collect(results, first);
  const auto excess_acc = collect(results, [&](const SimResult& r) {
    return first(r) - static_cast<double>(prefix);
  });
  const auto sends_acc =
      collect(results, [](const SimResult& r) { return static_cast<double>(r.total_sends); });
  const double solved =
      fraction(results, [](const SimResult& r) { return r.first_success != 0; });
  table.add_row({Cell(static_cast<std::uint64_t>(t)), label,
                 Cell(static_cast<std::uint64_t>(prefix)), Cell(time_acc.mean(), 0),
                 mean_sd(excess_acc, 0), mean_sd(sends_acc, 1), Cell(solved, 2)});
}

int run(int argc, const char* const* argv) {
  const BenchDriver driver(argc, argv,
                           {nonadaptive().id, nonadaptive().summary, nonadaptive().flags});
  std::ostream& out = driver.out();
  const bool quick = driver.quick();
  const int reps = driver.reps(20, 8);
  const int max_exp = static_cast<int>(driver.get_int("max_exp", 18, 16));

  out << "E5 (Theorem 4.2): adaptive backoff vs non-adaptive sequences under prefix jam\n"
      << "Single node, slots [1, t/16] jammed. 'excess' = first success - prefix.\n\n";

  const FunctionSet fs = functions_constant_g(4.0);
  const ProtocolSpec adaptive =
      factory_protocol("h-backoff", [fs] { return backoff_protocol_factory(fs); });
  const ProtocolSpec decay_1k = profile_protocol(profiles::h_data());
  const ProtocolSpec decay_slow = profile_protocol(profiles::poly_decay(1.0, 0.75));
  const ProtocolSpec beb =
      factory_protocol("windowed-beb", [] { return windowed_backoff_factory({}); });

  Table table({"t", "protocol", "jam prefix", "first succ", "excess", "sends", "solved"});
  for (int e = 14; e <= max_exp; e += 2) {
    const slot_t t = static_cast<slot_t>(1) << e;
    measure(adaptive, "h-backoff (adaptive)", t, driver, reps, table);
    measure(decay_1k, "non-adaptive 1/k", t, driver, reps, table);
    measure(decay_slow, "non-adaptive 1/k^0.75", t, driver, reps, table);
    measure(beb, "windowed BEB", t, driver, reps, table);
  }
  table.print(out);

  const std::string csv_path = driver.csv_path("nonadaptive.csv");
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    write_table_csv(table, nonadaptive().csv_columns, file);
    out << "\ntable written to " << csv_path << "\n";
  }

  out << "\nReading: the adaptive subroutine's excess is a small fraction of the\n"
         "prefix; the 1/k sequence (already decayed) pays ~a full extra prefix.\n"
         "The slower 1/k^0.75 sequence survives jamming — but see the second horn:\n\n";

  // E5b is narrative-only (outside the CSV schema); under --quiet its whole
  // sweep would stream into the null sink — skip it.
  if (driver.quiet()) return 0;

  // Horn 2 of the dilemma: a batch of n nodes injected simultaneously.
  // A sequence that decays slowly enough to survive jamming keeps contention
  // n·k^{-3/4} >> 1 for ~n^{4/3} slots: the first success is superlinearly
  // delayed. The adaptive backoff and the 1/k profile handle this fine.
  out << "E5b (dilemma, second horn): first success after a batch of n nodes, no jam\n"
      << "(profiles measured at large n with the cohort engine; the drift is\n"
      << " ~n^(1/3)/log^(4/3)(n) in the /n column, so it needs big n to show)\n\n";
  Table t2({"n", "protocol", "first succ p50", "first succ /n", "solved"});
  const std::uint64_t max_n = quick ? (1 << 15) : (1 << 18);
  for (std::uint64_t n = 1 << 12; n <= max_n; n <<= (quick ? 1 : 2)) {
    struct Cand {
      const char* label;
      const ProtocolSpec* spec;
      bool adaptive;  ///< needs the O(live·slots) reference engine
    };
    for (const Cand& cand : {Cand{"h-backoff (adaptive)", &adaptive, true},
                             Cand{"non-adaptive 1/k", &decay_1k, false},
                             Cand{"non-adaptive 1/k^0.75", &decay_slow, false}}) {
      // The adaptive contender's ~linear first-success scaling is
      // established by moderate n, so cap it there rather than burn minutes
      // on the largest sizes.
      if (cand.adaptive && n > 8192) {
        t2.add_row({Cell(n), cand.label, "-", "-", "-"});
        continue;
      }
      // First success is early, so the reference engine gets a tight guard
      // horizon; the cohort engine can afford a generous one.
      const slot_t horizon = cand.adaptive ? 8 * n : 64 * n;
      const Engine& engine = EngineRegistry::instance().preferred(*cand.spec);
      const auto results = driver.replicate(reps, driver.seed(43000), [&](std::uint64_t s) {
        ComposedAdversary adv(batch_arrival(n, 1), no_jam());
        SimConfig cfg;
        cfg.horizon = horizon;
        cfg.seed = s;
        cfg.stop_after_first_success = true;
        return engine.run(*cand.spec, adv, cfg);
      });
      Quantiles first;
      for (const SimResult& res : results)
        first.add(static_cast<double>(res.first_success == 0 ? horizon : res.first_success));
      const double solved =
          fraction(results, [](const SimResult& r) { return r.first_success != 0; });
      t2.add_row({Cell(n), cand.label, Cell(first.quantile(0.5), 0),
                  Cell(first.quantile(0.5) / static_cast<double>(n), 2), Cell(solved, 2)});
    }
  }
  t2.print(out);

  out << "\nReading: 1/k^0.75's first-success/n grows with n (superlinear delay from\n"
         "excess contention) while 1/k and the adaptive backoff stay ~linear. No\n"
         "fixed sequence wins both tables simultaneously — Theorem 4.2's dilemma;\n"
         "only the adaptive backoff subroutine is good in both.\n";
  return 0;
}

}  // namespace

BenchSpec nonadaptive() {
  BenchSpec spec;
  spec.name = "nonadaptive";
  spec.id = "E5";
  spec.summary = "adaptive backoff vs non-adaptive sequences (Thm 4.2)";
  spec.claim = "Theorem 4.2 (non-adaptive dilemma)";
  spec.outcome =
      "adaptive h-backoff recovers from a jammed prefix quickly; 1/k pays ~a full "
      "prefix; 1/k^0.75 survives jamming but is superlinearly slow on batches — no "
      "fixed sequence wins both";
  spec.flags = {{"max_exp", "largest horizon exponent for the prefix-jam table "
                            "(default 18, quick 16)"}};
  spec.csv_columns = {"t", "protocol", "jam_prefix", "first_success", "excess", "sends",
                      "solved"};
  spec.csv_row_desc =
      "one (t, protocol) cell of the prefix-jam table (the E5b batch table is "
      "narrative-only); means over reps";
  spec.run = run;
  return spec;
}

}  // namespace cr::benches
