// E13 "collision-detection contrast" — the introduction's framing.
//
// The paper's trade-off is specific to the NO-collision-detection model:
// with CD, constant throughput is possible even under constant-fraction
// jamming (Awerbuch et al. '08; Bender et al. '18). We measure both sides
// of that boundary on the same workloads:
//
//   * cd-backon   — multiplicative backon/backoff with ternary feedback
//   * cjz         — the paper's algorithm, binary feedback
//   * cd-backon run WITHOUT CD (its backon signal removed) — a controller
//     built for the wrong model, to show the degradation is structural.
//
// Prediction: cd-backon's batch completion/n is ~constant in n (constant
// throughput) even at 25% jamming; CJZ pays the Θ(log n) factor (the best
// possible without CD, Theorem 1.3); the degraded controller collapses.
#include <fstream>
#include <memory>
#include <ostream>

#include "cli/benches/benches.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "protocols/cd_backon.hpp"

namespace cr::benches {

namespace {

/// Strips the CD feedback from an inner protocol: routes the ternary signal
/// through the binary no-CD path, emulating the same controller deployed on
/// a channel without collision detection.
class NoCdWrapper final : public NodeProtocol {
 public:
  explicit NoCdWrapper(std::unique_ptr<NodeProtocol> inner) : inner_(std::move(inner)) {}
  bool on_slot(slot_t now, Rng& rng) override { return inner_->on_slot(now, rng); }
  void on_feedback(slot_t now, Feedback fb, bool sent, bool own) override {
    inner_->on_feedback(now, fb, sent, own);
  }
  void on_feedback_cd(slot_t now, CdFeedback fb, bool sent, bool own) override {
    inner_->on_feedback(now,
                        fb == CdFeedback::kSuccess ? Feedback::kSuccess
                                                   : Feedback::kSilenceOrCollision,
                        sent, own);
  }

 private:
  std::unique_ptr<NodeProtocol> inner_;
};

class NoCdFactory final : public ProtocolFactory {
 public:
  explicit NoCdFactory(std::unique_ptr<ProtocolFactory> inner) : inner_(std::move(inner)) {}
  std::unique_ptr<NodeProtocol> spawn(node_id id, slot_t arrival, Rng& rng) override {
    return std::make_unique<NoCdWrapper>(inner_->spawn(id, arrival, rng));
  }
  std::string name() const override { return inner_->name() + "-no-cd"; }

 private:
  std::unique_ptr<ProtocolFactory> inner_;
};

struct Contender {
  const char* label;
  ProtocolSpec spec;
  /// The degraded controller provably stalls; a tighter guard horizon keeps
  /// the bench fast (it reports '>cap' either way).
  slot_t horizon_per_n;
};

double median_completion(const Contender& c, std::uint64_t n, double jam,
                         const BenchDriver& driver, int reps, std::uint64_t base_seed,
                         bool* capped) {
  const Engine& engine = EngineRegistry::instance().preferred(c.spec);
  const auto results = driver.replicate(reps, base_seed, [&](std::uint64_t s) {
    Scenario sc = batch_scenario(n, jam, c.horizon_per_n * n, functions_constant_g(4.0));
    sc.protocol = c.spec;
    sc.config.seed = s;
    sc.config.stop_when_empty = true;
    return run_scenario(engine, sc);
  });
  Quantiles q;
  *capped = false;
  for (const SimResult& res : results) {
    if (res.live_at_end != 0) *capped = true;
    q.add(static_cast<double>(res.live_at_end == 0 ? res.last_success : res.slots));
  }
  return q.median();
}

int run(int argc, const char* const* argv) {
  const BenchDriver driver(argc, argv,
                           {cd_contrast().id, cd_contrast().summary, cd_contrast().flags});
  std::ostream& out = driver.out();
  const int reps = driver.reps(8, 4);
  const auto max_n = static_cast<std::uint64_t>(driver.get_int("max_n", 4096, 1024));

  out << "E13: the collision-detection boundary (intro framing)\n"
      << "Batch of n, median completion/n ('>' = horizon-capped runs).\n"
      << "Prediction: WITH CD completion/n is ~constant (constant throughput even\n"
      << "under jamming); withOUT CD the same controller collapses, and the best\n"
      << "possible (CJZ) pays the Theta(log n) factor.\n\n";

  const Contender cd_backon{"cd-backon",
                            factory_protocol("cd-backon", [] { return cd_backon_factory({}); }),
                            200};
  const Contender cjz{"cjz", cjz_protocol(functions_constant_g(4.0)), 200};
  const Contender no_cd{"no-cd", factory_protocol("cd-backon-no-cd", [] {
                          return std::make_unique<NoCdFactory>(cd_backon_factory({}));
                        }),
                        20};

  Table table({"n", "jam", "cd-backon /n", "cjz /n", "backon-without-cd /n"});
  for (std::uint64_t n = 256; n <= max_n; n <<= 1) {
    for (const double jam : {0.0, 0.25}) {
      bool cap_cd = false, cap_cjz = false, cap_nocd = false;
      const double cd = median_completion(cd_backon, n, jam, driver, reps, driver.seed(97000),
                                          &cap_cd);
      const double cjz_med = median_completion(cjz, n, jam, driver, reps, driver.seed(98000),
                                               &cap_cjz);
      const double nocd = median_completion(no_cd, n, jam, driver, reps, driver.seed(99000),
                                            &cap_nocd);
      auto cell = [&](double v, bool cap) {
        std::string text = cap ? ">" : "";
        text += format_double(v / static_cast<double>(n), 1);
        return text;
      };
      table.add_row({Cell(n), Cell(jam, 2), cell(cd, cap_cd), cell(cjz_med, cap_cjz),
                     cell(nocd, cap_nocd)});
    }
  }
  table.print(out);

  const std::string csv_path = driver.csv_path("cd_contrast.csv");
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    write_table_csv(table, cd_contrast().csv_columns, file);
    out << "\ntable written to " << csv_path << "\n";
  }

  out << "\nReading: the cd-backon column is flat in n (constant throughput, even at\n"
         "25% jamming) — the very capability Theorem 1.3 proves unattainable without\n"
         "collision detection, where CJZ's growing-but-logarithmic column is optimal\n"
         "and the CD controller deprived of its backon signal falls off a cliff.\n";
  return 0;
}

}  // namespace

BenchSpec cd_contrast() {
  BenchSpec spec;
  spec.name = "cd_contrast";
  spec.id = "E13";
  spec.summary = "the collision-detection boundary";
  spec.claim = "introduction: the CD boundary";
  spec.outcome =
      "with CD, completion/n is flat even under jamming; without CD the same "
      "controller collapses while CJZ pays only the optimal Θ(log n)";
  spec.flags = {{"max_n", "largest batch size: n sweeps 256..max_n doubling "
                          "(default 4096, quick 1024)"}};
  spec.csv_columns = {"n", "jam", "cd_backon_over_n", "cjz_over_n", "no_cd_over_n"};
  spec.csv_row_desc =
      "one (n, jam) row; median completion/n per contender, '>' prefixes "
      "horizon-capped medians";
  spec.run = run;
  return spec;
}

}  // namespace cr::benches
