// S1 "scenario" — generic registry-scenario runner.
//
// Unlike the E-numbered benches (each tied to one paper claim with a fixed
// sweep), this subcommand runs ANY registered scenario at one parameter
// point and reports the aggregate counters, means over --reps seeds. It is
// the composition primitive for suite manifests: a grid over
// (--scenario, --n, --jam, ...) turns one manifest cell block into an
// arbitrary workload sweep without writing a new bench.
//
//   cr bench scenario --scenario=bursty --n=64 --jam_margin=8 --reps=8
//   cr suite run ... with "grid": {"scenario": ["batch","worst_case"], ...}
#include <cstdio>
#include <fstream>
#include <ostream>

#include "cli/benches/benches.hpp"
#include "common/table.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"

namespace cr::benches {

namespace {

int run(int argc, const char* const* argv) {
  const BenchDriver driver(argc, argv, {scenario().id, scenario().summary, scenario().flags});
  std::ostream& out = driver.out();
  const int reps = driver.reps(8, 3);

  ScenarioParams params;
  params.horizon = static_cast<slot_t>(driver.get_int("horizon", 1 << 16, 1 << 14));
  params.n = static_cast<std::uint64_t>(driver.get_int("n", 256, 128));
  params.jam = driver.cli().get_double("jam", 0.25);
  params.rate = driver.cli().get_double("rate", 0.1);
  params.arrival_margin = driver.cli().get_double("arrival_margin", 4.0);
  params.jam_margin = driver.cli().get_double("jam_margin", 8.0);
  params.g_regime = driver.cli().get_string("g_regime", "const");
  params.gamma = driver.cli().get_double("gamma", 4.0);
  const std::string scenario_name = driver.cli().get_string("scenario", "batch");
  const std::string engine_name = driver.cli().get_string("engine", "preferred");

  // Validate the scenario name and resolve the engine before burning any
  // replication time; both registries abort with the known-name list. The
  // protocol spec does not depend on the seed, so one probe build picks the
  // engine for every replication.
  const Scenario probe = ScenarioRegistry::instance().build(scenario_name, params);
  const Engine& engine = engine_name == "preferred"
                             ? EngineRegistry::instance().preferred(probe.protocol)
                             : EngineRegistry::instance().at(engine_name);
  if (!engine.supports(probe.protocol)) {
    std::string compatible;
    for (const Engine* candidate : EngineRegistry::instance().compatible(probe.protocol)) {
      compatible += ' ';
      compatible += candidate->name();
    }
    std::fprintf(stderr,
                 "cr bench scenario: engine \"%s\" cannot execute scenario \"%s\"'s protocol; "
                 "compatible engines:%s\n",
                 engine_name.c_str(), scenario_name.c_str(), compatible.c_str());
    return 2;
  }
  const std::string engine_used = engine.name();

  out << "S1: scenario \"" << scenario_name << "\" at one parameter point, engine "
      << engine_used << ", means over " << reps << " seeds\n\n";

  const auto results = driver.replicate(reps, driver.seed(50000), [&](std::uint64_t s) {
    ScenarioParams p = params;
    p.seed = s;
    Scenario sc = ScenarioRegistry::instance().build(scenario_name, p);
    return run_scenario(engine, sc);
  });

  const auto slots =
      collect(results, [](const SimResult& r) { return static_cast<double>(r.slots); });
  const auto arrivals =
      collect(results, [](const SimResult& r) { return static_cast<double>(r.arrivals); });
  const auto successes =
      collect(results, [](const SimResult& r) { return static_cast<double>(r.successes); });
  const auto jammed =
      collect(results, [](const SimResult& r) { return static_cast<double>(r.jammed_slots); });
  const auto served = collect(results, [](const SimResult& r) {
    return r.arrivals ? static_cast<double>(r.successes) / static_cast<double>(r.arrivals)
                      : 1.0;
  });
  const auto sends =
      collect(results, [](const SimResult& r) { return static_cast<double>(r.total_sends); });
  const auto backlog =
      collect(results, [](const SimResult& r) { return static_cast<double>(r.live_at_end); });

  Table table({"scenario", "engine", "horizon", "n", "jam", "slots", "arrivals", "successes",
               "jammed", "served", "sends", "backlog at end"});
  table.add_row({scenario_name, engine_used, Cell(static_cast<std::uint64_t>(params.horizon)),
                 Cell(params.n), Cell(params.jam, 2), Cell(slots.mean(), 0),
                 Cell(arrivals.mean(), 1), Cell(successes.mean(), 1), Cell(jammed.mean(), 1),
                 Cell(served.mean(), 3), Cell(sends.mean(), 1), mean_sd(backlog, 1)});
  table.print(out);

  const std::string csv_path = driver.csv_path("scenario.csv");
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    write_table_csv(table, scenario().csv_columns, file);
    out << "\ntable written to " << csv_path << "\n";
  }

  out << "\nReading: one row per invocation by design — sweeps come from suite grids\n"
         "(see suites/*.json), which expand a cell block into many invocations and\n"
         "concatenate the per-cell CSVs.\n";
  return 0;
}

}  // namespace

BenchSpec scenario() {
  BenchSpec spec;
  spec.name = "scenario";
  spec.id = "S1";
  spec.summary = "generic registry-scenario runner (suite composition primitive)";
  spec.claim = "— (runs any ScenarioRegistry workload)";
  spec.outcome =
      "one CSV row of aggregate counters for the named scenario at one parameter "
      "point; sweeps come from suite grids";
  spec.flags = {
      {"scenario", "ScenarioRegistry workload name (default batch)"},
      {"engine", "engine name, or \"preferred\" for the fastest compatible (default)"},
      {"horizon", "slot horizon (default 65536, quick 16384)"},
      {"n", "batch / burst size (default 256, quick 128)"},
      {"jam", "i.i.d. jam fraction (default 0.25)"},
      {"rate", "Bernoulli arrival rate, bernoulli_stream only (default 0.1)"},
      {"arrival_margin", "paced-arrival margin, worst_case/smooth/bursty (default 4)"},
      {"jam_margin", "budget-paced jam margin, smooth/bursty (default 8)"},
      {"g_regime", "g regime: const | log | exp_sqrt_log (default const)"},
      {"gamma", "const-g value / exp_sqrt_log scale (default 4)"},
  };
  spec.csv_columns = {"scenario", "engine", "horizon", "n",      "jam",   "slots",
                      "arrivals", "successes", "jammed", "served", "sends", "backlog_at_end"};
  spec.csv_row_desc = "exactly one row: aggregate counters, means over reps";
  spec.run = run;
  return spec;
}

}  // namespace cr::benches
