// S1 "scenario" — generic registry-scenario runner.
//
// Unlike the E-numbered benches (each tied to one paper claim with a fixed
// sweep), this subcommand runs ANY registered scenario at one parameter
// point and reports the aggregate counters, means over --reps seeds. It is
// the composition primitive for suite manifests: a grid over
// (--scenario, --n, --jam, ...) turns one manifest cell block into an
// arbitrary workload sweep without writing a new bench.
//
//   cr bench scenario --scenario=bursty --n=64 --jam_margin=8 --reps=8
//   cr suite run ... with "grid": {"scenario": ["batch","worst_case"], ...}
#include <cstdio>
#include <fstream>
#include <ostream>

#include "cli/benches/benches.hpp"
#include "common/table.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "exp/workload.hpp"

namespace cr::benches {

namespace {

/// The ScenarioParams-backed flags of this bench (everything except
/// --scenario/--engine). Each preset declares which of these it consumes
/// (ScenarioEntry::params); passing one a preset ignores is a hard error —
/// the same no-silent-no-op rule the WorkloadSpec API enforces.
const std::vector<std::string>& scenario_param_flags() {
  static const std::vector<std::string> flags = {
      "horizon", "n", "jam", "rate", "arrival_margin", "jam_margin", "g_regime", "gamma"};
  return flags;
}

/// "" when every explicitly-passed param flag is consumed by `entry` under
/// `g_regime`, else an error naming the first offending key. The g=log
/// regime has no scale, so an explicit --gamma there is the same silent
/// no-op the WorkloadSpec validator rejects (functions_log_g ignores it).
std::string check_consumed(const ScenarioEntry& entry,
                           const std::vector<std::string>& passed,
                           const std::string& g_regime) {
  for (const std::string& name : passed) {
    if (name == "gamma" && g_regime == "log")
      return "scenario \"" + entry.name + "\" does not consume --gamma under "
             "--g_regime=log (the log regime has no scale; it would be a silent no-op); "
             "drop it or pick const/exp_sqrt_log";
    if (entry.consumes(name)) continue;
    std::string consumed;
    for (const std::string& p : entry.params) consumed += " " + p;
    return "scenario \"" + entry.name + "\" does not consume --" + name +
           " (it would be a silent no-op); its parameters are:" + consumed;
  }
  return "";
}

std::string validate_cell(const std::vector<std::pair<std::string, std::string>>& flags) {
  std::string scenario_name = "batch";
  std::string g_regime = "const";
  for (const auto& [key, value] : flags) {
    if (key == "scenario") scenario_name = value;
    if (key == "g_regime") g_regime = value;
  }
  const ScenarioEntry* entry = ScenarioRegistry::instance().find(scenario_name);
  if (entry == nullptr) {
    std::string error = "unknown scenario \"" + scenario_name + "\"";
    const std::string hint =
        closest_match(scenario_name, ScenarioRegistry::instance().names());
    if (!hint.empty()) error += " (did you mean \"" + hint + "\"?)";
    error += "; known scenarios:";
    for (const std::string& name : ScenarioRegistry::instance().names()) error += " " + name;
    return error;
  }
  std::vector<std::string> passed;
  for (const auto& [key, value] : flags)
    for (const std::string& param : scenario_param_flags())
      if (key == param) passed.push_back(key);
  return check_consumed(*entry, passed, g_regime);
}

int run(int argc, const char* const* argv) {
  const BenchDriver driver(argc, argv, {scenario().id, scenario().summary, scenario().flags});
  std::ostream& out = driver.out();
  const int reps = driver.reps(8, 3);

  ScenarioParams params;
  params.horizon = static_cast<slot_t>(driver.get_int("horizon", 1 << 16, 1 << 14));
  params.n = static_cast<std::uint64_t>(driver.get_int("n", 256, 128));
  params.jam = driver.cli().get_double("jam", 0.25);
  params.rate = driver.cli().get_double("rate", 0.1);
  params.arrival_margin = driver.cli().get_double("arrival_margin", 4.0);
  params.jam_margin = driver.cli().get_double("jam_margin", 8.0);
  params.g_regime = driver.cli().get_string("g_regime", "const");
  params.gamma = driver.cli().get_double("gamma", 4.0);
  const std::string scenario_name = driver.cli().get_string("scenario", "batch");
  const std::string engine_name = driver.cli().get_string("engine", "preferred");

  // Validate the scenario name and the passed params before burning any
  // replication time: an unknown scenario exits 2 with a suggestion, and a
  // param this preset does not consume is a hard error instead of a silent
  // no-op (the suite validator applies the same rule at parse time).
  const ScenarioEntry* entry = ScenarioRegistry::instance().find(scenario_name);
  std::string error;
  if (entry == nullptr) {
    std::vector<std::pair<std::string, std::string>> probe_flags = {
        {"scenario", scenario_name}};
    error = validate_cell(probe_flags);
  } else {
    std::vector<std::string> passed;
    for (const std::string& name : scenario_param_flags())
      if (driver.cli().has(name)) passed.push_back(name);
    error = check_consumed(*entry, passed, params.g_regime);
  }
  if (!error.empty()) {
    std::fprintf(stderr, "cr bench scenario: %s\n", error.c_str());
    return 2;
  }

  // Resolve the engine from one probe build — the protocol spec does not
  // depend on the seed, so it picks the engine for every replication.
  const Scenario probe = ScenarioRegistry::instance().build(scenario_name, params);
  const Engine& engine = engine_name == "preferred"
                             ? EngineRegistry::instance().preferred(probe.protocol)
                             : EngineRegistry::instance().at(engine_name);
  if (!engine.supports(probe.protocol)) {
    std::string compatible;
    for (const Engine* candidate : EngineRegistry::instance().compatible(probe.protocol)) {
      compatible += ' ';
      compatible += candidate->name();
    }
    std::fprintf(stderr,
                 "cr bench scenario: engine \"%s\" cannot execute scenario \"%s\"'s protocol; "
                 "compatible engines:%s\n",
                 engine_name.c_str(), scenario_name.c_str(), compatible.c_str());
    return 2;
  }
  const std::string engine_used = engine.name();

  out << "S1: scenario \"" << scenario_name << "\" at one parameter point, engine "
      << engine_used << ", means over " << reps << " seeds\n\n";

  // The lockstep engine replicates through the many-seed sweep path (one
  // lockstep pass over all seeds, quiescent tails skipped analytically);
  // scalar engines keep the classic one-run-per-seed harness loop.
  const auto results =
      engine_used == "lockstep"
          ? replicate_scenario(engine, scenario_name, params, reps, driver.seed(50000),
                               driver.threads())
          : driver.replicate(reps, driver.seed(50000), [&](std::uint64_t s) {
              ScenarioParams p = params;
              p.seed = s;
              Scenario sc = ScenarioRegistry::instance().build(scenario_name, p);
              return run_scenario(engine, sc);
            });

  const auto slots =
      collect(results, [](const SimResult& r) { return static_cast<double>(r.slots); });
  const auto arrivals =
      collect(results, [](const SimResult& r) { return static_cast<double>(r.arrivals); });
  const auto successes =
      collect(results, [](const SimResult& r) { return static_cast<double>(r.successes); });
  const auto jammed =
      collect(results, [](const SimResult& r) { return static_cast<double>(r.jammed_slots); });
  const auto served = collect(results, [](const SimResult& r) {
    return r.arrivals ? static_cast<double>(r.successes) / static_cast<double>(r.arrivals)
                      : 1.0;
  });
  const auto sends =
      collect(results, [](const SimResult& r) { return static_cast<double>(r.total_sends); });
  const auto backlog =
      collect(results, [](const SimResult& r) { return static_cast<double>(r.live_at_end); });

  Table table({"scenario", "engine", "horizon", "n", "jam", "slots", "arrivals", "successes",
               "jammed", "served", "sends", "backlog at end"});
  table.add_row({scenario_name, engine_used, Cell(static_cast<std::uint64_t>(params.horizon)),
                 Cell(params.n), Cell(params.jam, 2), Cell(slots.mean(), 0),
                 Cell(arrivals.mean(), 1), Cell(successes.mean(), 1), Cell(jammed.mean(), 1),
                 Cell(served.mean(), 3), Cell(sends.mean(), 1), mean_sd(backlog, 1)});
  table.print(out);

  const std::string csv_path = driver.csv_path("scenario.csv");
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    write_table_csv(table, scenario().csv_columns, file);
    out << "\ntable written to " << csv_path << "\n";
  }

  out << "\nReading: one row per invocation by design — sweeps come from suite grids\n"
         "(see suites/*.json), which expand a cell block into many invocations and\n"
         "concatenate the per-cell CSVs.\n";
  return 0;
}

}  // namespace

BenchSpec scenario() {
  BenchSpec spec;
  spec.name = "scenario";
  spec.id = "S1";
  spec.summary = "generic registry-scenario runner (suite composition primitive)";
  spec.claim = "— (runs any ScenarioRegistry workload)";
  spec.outcome =
      "one CSV row of aggregate counters for the named scenario at one parameter "
      "point; sweeps come from suite grids";
  spec.flags = {
      {"scenario", "ScenarioRegistry workload name (default batch)"},
      {"engine", "engine name, or \"preferred\" for the fastest compatible (default)"},
      {"horizon", "slot horizon (default 65536, quick 16384)"},
      {"n", "batch / burst size (default 256, quick 128)"},
      {"jam", "i.i.d. jam fraction (default 0.25)"},
      {"rate", "Bernoulli arrival rate, bernoulli_stream only (default 0.1)"},
      {"arrival_margin", "paced-arrival margin, worst_case/smooth/bursty (default 4)"},
      {"jam_margin", "budget-paced jam margin, smooth/bursty (default 8)"},
      {"g_regime", "g regime: const | log | exp_sqrt_log (default const)"},
      {"gamma", "const-g value / exp_sqrt_log scale (default 4)"},
  };
  spec.validate_cell = validate_cell;
  spec.csv_columns = {"scenario", "engine", "horizon", "n",      "jam",   "slots",
                      "arrivals", "successes", "jammed", "served", "sends", "backlog_at_end"};
  spec.csv_row_desc = "exactly one row: aggregate counters, means over reps";
  spec.run = run;
  return spec;
}

}  // namespace cr::benches
