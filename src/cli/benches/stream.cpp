// S3 "stream" — long-lived streaming service mode.
//
// Turns the simulator into a service: arrivals are ingested from a trace
// file, stdin, or a deterministic synthetic generator, flow through a
// fixed-capacity SPSC ring buffer into the sparse-table CJZ cohort core,
// and completed metric windows leave as JSON lines the moment they close.
// There is no horizon — the run ends when the feed does (or after
// --max_windows). Checkpoint/restore is bit-exact: kill the process, point
// --restore at the last checkpoint, re-feed the same trace, and the output
// tail is byte-identical to the uninterrupted run (determinism rule 8 in
// docs/ARCHITECTURE.md; enforced by the `stream`-labelled tests).
//
//   cr stream --synth=100000 --window=4096 --checkpoint=run.snap > run.jsonl
//   cr stream --trace=feed.txt --max_windows=8 ... (see --help)
//
// JSON lines go to stdout; operational notes (event counts, drops, memory
// footprint) go to stderr, so piped output stays machine-readable.
#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>

#include "cli/benches/benches.hpp"
#include "engine/stream.hpp"
#include "exp/bench_driver.hpp"

namespace cr::benches {

namespace {

int run(int argc, const char* const* argv) {
  const BenchDriver driver(argc, argv, {stream().id, stream().summary, stream().flags});

  const std::uint64_t seed = driver.seed(1);
  const auto window = static_cast<slot_t>(driver.get_int("window", 1024, 256));
  const auto ring_capacity = static_cast<std::size_t>(driver.get_int("ring", 1024, 1024));
  const auto synth_count = static_cast<std::uint64_t>(driver.get_int("synth", 0, 0));
  const auto max_windows = static_cast<std::uint64_t>(driver.get_int("max_windows", 0, 0));
  const auto checkpoint_every =
      static_cast<slot_t>(driver.get_int("checkpoint_every", 0, 0));
  const std::string trace_path = driver.cli().get_string("trace", "-");
  const std::string overflow = driver.cli().get_string("overflow", "block");
  const std::string table = driver.cli().get_string("table", "sparse");
  const std::string checkpoint_path = driver.cli().get_string("checkpoint", "");
  const std::string restore_path = driver.cli().get_string("restore", "");

  if (window < 1) {
    std::fprintf(stderr, "cr stream: --window must be >= 1\n");
    return 2;
  }
  if (ring_capacity < 1) {
    std::fprintf(stderr, "cr stream: --ring must be >= 1\n");
    return 2;
  }
  if (overflow != "block" && overflow != "drop") {
    std::fprintf(stderr, "cr stream: --overflow must be block or drop (got \"%s\")\n",
                 overflow.c_str());
    return 2;
  }
  if (table != "sparse" && table != "dense") {
    std::fprintf(stderr, "cr stream: --table must be sparse or dense (got \"%s\")\n",
                 table.c_str());
    return 2;
  }
  if (synth_count > 0 && driver.cli().has("trace")) {
    std::fprintf(stderr, "cr stream: --synth and --trace are mutually exclusive\n");
    return 2;
  }
  if (!restore_path.empty() && overflow == "drop") {
    // Drops depend on producer/consumer timing, so a restored run could see
    // a different feed than the original — the bit-identity contract cannot
    // hold. Refuse instead of silently diverging.
    std::fprintf(stderr,
                 "cr stream: --restore requires --overflow=block (drops are "
                 "timing-dependent, which breaks restore determinism)\n");
    return 2;
  }
  const OverflowPolicy policy =
      overflow == "drop" ? OverflowPolicy::kDrop : OverflowPolicy::kBlock;

  StreamOptions opts;
  opts.seed = seed;
  opts.window = window;
  opts.max_windows = max_windows;
  opts.checkpoint_every = checkpoint_every;
  opts.node_table = table == "dense" ? NodeTableKind::kDense : NodeTableKind::kSparse;

  StreamSim sim(opts);

  if (!restore_path.empty()) {
    std::ifstream f(restore_path, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cr stream: cannot open snapshot \"%s\"\n", restore_path.c_str());
      return 2;
    }
    std::vector<std::uint8_t> blob((std::istreambuf_iterator<char>(f)),
                                   std::istreambuf_iterator<char>());
    std::string error;
    if (!sim.restore(blob, &error)) {
      std::fprintf(stderr, "cr stream: restore failed: %s\n", error.c_str());
      return 2;
    }
    std::fprintf(stderr, "stream: restored \"%s\" at slot %llu (skipping %llu feed events)\n",
                 restore_path.c_str(), static_cast<unsigned long long>(sim.current_slot()),
                 static_cast<unsigned long long>(sim.feed_skip()));
  }

  if (!checkpoint_path.empty()) {
    sim.set_checkpoint_sink([&checkpoint_path](const std::vector<std::uint8_t>& blob) {
      // Write-then-rename so a kill mid-checkpoint leaves the previous
      // checkpoint intact instead of a truncated blob.
      const std::string tmp = checkpoint_path + ".tmp";
      std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
      f.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
      f.close();
      std::rename(tmp.c_str(), checkpoint_path.c_str());
    });
  }

  // The trace file is opened before the producer thread starts so a bad
  // path fails fast with exit 2 instead of mid-run.
  std::ifstream trace_file;
  std::istream* trace_in = &std::cin;
  if (synth_count == 0 && trace_path != "-") {
    trace_file.open(trace_path);
    if (!trace_file) {
      std::fprintf(stderr, "cr stream: cannot open trace \"%s\"\n", trace_path.c_str());
      return 2;
    }
    trace_in = &trace_file;
  }

  EventRing ring(ring_capacity);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> dropped{0};
  std::string feed_error;  // written by the producer, read after join()

  std::thread producer([&] {
    std::uint64_t skip = sim.feed_skip();
    const auto feed = [&](const StreamEvent& ev) -> bool {
      if (skip > 0) {
        --skip;
        return true;
      }
      if (policy == OverflowPolicy::kBlock) {
        while (!ring.try_push(ev)) {
          if (stop.load(std::memory_order_acquire)) return false;
          std::this_thread::yield();
        }
      } else if (!ring.try_push(ev)) {
        dropped.fetch_add(1, std::memory_order_relaxed);
      }
      return true;
    };
    if (synth_count > 0) {
      for (const StreamEvent& ev : synth_stream_events(seed, synth_count))
        if (!feed(ev)) break;
    } else {
      std::string line;
      std::string error;
      StreamEvent ev;
      while (std::getline(*trace_in, line)) {
        if (!parse_stream_event(line, &ev, &error)) {
          if (!error.empty()) {
            feed_error = error;
            break;
          }
          continue;  // blank / comment line
        }
        if (!feed(ev)) break;
      }
    }
    ring.close();
  });

  const StreamRunSummary summary = sim.run(ring, driver.out());
  stop.store(true, std::memory_order_release);
  producer.join();

  if (!feed_error.empty()) {
    std::fprintf(stderr, "cr stream: %s\n", feed_error.c_str());
    return 1;
  }
  if (!summary.ok()) {
    std::fprintf(stderr, "cr stream: %s\n", summary.error.c_str());
    return 1;
  }

  const CjzCoreMemoryStats mem = sim.memory_stats();
  std::fprintf(stderr,
               "stream: %llu slots, %llu events applied, %llu arrivals, %llu successes, "
               "backlog %llu, %llu windows, %llu dropped\n",
               static_cast<unsigned long long>(summary.slots),
               static_cast<unsigned long long>(summary.events_applied),
               static_cast<unsigned long long>(summary.arrivals),
               static_cast<unsigned long long>(summary.successes),
               static_cast<unsigned long long>(summary.live_at_end),
               static_cast<unsigned long long>(summary.windows),
               static_cast<unsigned long long>(dropped.load()));
  std::fprintf(stderr,
               "stream: node table %s, peak live %llu, resident slots %llu (%llu bytes)\n",
               table.c_str(), static_cast<unsigned long long>(mem.peak_live_nodes),
               static_cast<unsigned long long>(mem.node_table_slots),
               static_cast<unsigned long long>(mem.node_bytes));
  return 0;
}

}  // namespace

BenchSpec stream() {
  BenchSpec spec;
  spec.name = "stream";
  spec.id = "S3";
  spec.summary =
      "long-lived streaming service mode (ring-fed arrivals, windowed JSONL, "
      "bit-exact checkpoint/restore)";
  spec.claim =
      "— (service mode; determinism rule 8: restore-then-continue is bit-identical "
      "to the uninterrupted run)";
  spec.outcome =
      "one JSON line per completed metrics window plus a final {\"done\":...} summary; "
      "byte-identical across kill/checkpoint/restore on the same feed";
  spec.flags = {
      {"trace", "arrival trace path, \"-\" = stdin (lines: slot inject [jam01]; default -)"},
      {"synth", "generate N synthetic feed events instead of reading a trace (default 0)"},
      {"window", "metrics window width in slots (default 1024, quick 256)"},
      {"ring", "SPSC ring-buffer capacity in events (default 1024)"},
      {"overflow", "ring-full policy: block (lossless) | drop (count drops; default block)"},
      {"table", "node-table storage: sparse | dense (default sparse)"},
      {"checkpoint", "checkpoint blob path (written atomically; default: none)"},
      {"checkpoint_every", "cut a checkpoint every N slots (0 = only at stop; default 0)"},
      {"restore", "resume from this checkpoint blob, re-feeding the same trace"},
      {"max_windows", "stop after N completed windows (0 = run to feed EOF; default 0)"},
  };
  spec.csv_columns = {};
  spec.csv_row_desc =
      "no CSV — output is JSON lines on stdout, one object per completed window";
  spec.run = run;
  return spec;
}

}  // namespace cr::benches
