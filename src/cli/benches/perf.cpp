// P1 "perf" — engine throughput trajectory.
//
// Times every engine that can run a scenario against that scenario at fixed
// seeds and reports slots/sec and runs/sec, plus the lockstep-vs-fast_cjz
// aggregate speedup per cell (the growth target this subcommand exists to
// track). Numbers go to the narrative table, the optional --csv, and a JSON
// snapshot that CI archives per commit so throughput regressions show up as
// a trajectory, not an anecdote.
//
//   cr perf                          # full sweep (R=1000 per fast-engine cell)
//   cr perf --quick                  # CI smoke: small horizons, R=64
//   cr perf --baseline BENCH_6.json  # also print per-cell deltas vs a prior
//                                    # snapshot; exit 1 when any fast-engine
//                                    # cell regresses past --tolerance
//
// The snapshot name is derived, not hardcoded: the next BENCH_<n+1>.json
// after the baseline (when --baseline names a BENCH_<n>.json) or after the
// highest BENCH_<n>.json in the working directory. --json still overrides,
// and --json "" disables the snapshot.
//
// Measurement notes: each (engine, scenario) cell is timed around the same
// replication entry point the benches use (replicate_scenario), so the
// numbers include adversary construction and per-run setup — what a real
// sweep pays. The reference engine runs a reduced rep count (its per-run
// cost is orders of magnitude higher and runs/sec normalises it out);
// slots/sec counts simulated slots, so the lockstep engine's plan path and
// analytic tail skip (engine/lockstep.hpp) legitimately count the slots
// they prove they can skip.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "cli/benches/benches.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "engine/fast_cjz.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "exp/workload.hpp"

namespace cr::benches {

namespace {

struct PerfCell {
  std::string scenario;
  slot_t horizon = 0;
};

struct PerfRow {
  std::string scenario;
  std::string engine;
  slot_t horizon = 0;
  int reps = 0;
  int threads = 1;
  double seconds = 0.0;
  double slots_per_sec = 0.0;
  double runs_per_sec = 0.0;
  double mean_successes = 0.0;
  double mean_sends = 0.0;
  double speedup_vs_fast_cjz = 0.0;  ///< lockstep rows only; 0 = not applicable

  /// Memory-cell rows only (engine "fast_cjz_sparse"); all zero elsewhere.
  bool memory_cell = false;
  std::uint64_t peak_live_nodes = 0;     ///< max simultaneously live nodes
  std::uint64_t node_table_slots = 0;    ///< resident node-table slots at finish
  std::uint64_t resident_bytes = 0;      ///< node_table_slots * sizeof(Node)
  std::uint64_t dense_extrap_bytes = 0;  ///< arrivals * sizeof(Node) — dense cost
  std::uint64_t peak_rss_kb = 0;         ///< getrusage ru_maxrss after the run
};

/// BENCH_<n>.json -> n; -1 when `name` is not of that shape.
int snapshot_index(const std::string& name) {
  const std::string prefix = "BENCH_";
  const std::string suffix = ".json";
  if (name.size() <= prefix.size() + suffix.size()) return -1;
  if (name.rfind(prefix, 0) != 0) return -1;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) return -1;
  const std::string digits = name.substr(prefix.size(),
                                         name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return -1;
  int value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
  }
  return value;
}

/// The next snapshot name in the trajectory: baseline's n+1 when --baseline
/// names a BENCH_<n>.json, otherwise one past the highest BENCH_<n>.json in
/// the working directory (BENCH_1.json on a clean slate).
std::string derive_snapshot_path(const std::string& baseline_path) {
  int highest = 0;
  const int from_baseline =
      snapshot_index(std::filesystem::path(baseline_path).filename().string());
  if (from_baseline >= 0) {
    highest = from_baseline;
  } else {
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(".", ec)) {
      const int n = snapshot_index(entry.path().filename().string());
      if (n > highest) highest = n;
    }
  }
  return "BENCH_" + std::to_string(highest + 1) + ".json";
}

/// A baseline cell's slots/sec, or 0 when the snapshot has no matching
/// (scenario, horizon, engine) row.
double baseline_slots_per_sec(const JsonValue& snapshot, const PerfRow& row) {
  const JsonValue* cells = snapshot.find("cells");
  if (cells == nullptr || !cells->is_array()) return 0.0;
  for (const auto& cell : cells->items()) {
    if (!cell->is_object()) continue;
    const JsonValue* scenario = cell->find("scenario");
    const JsonValue* horizon = cell->find("horizon");
    const JsonValue* engine = cell->find("engine");
    const JsonValue* slots = cell->find("slots_per_sec");
    if (scenario == nullptr || horizon == nullptr || engine == nullptr || slots == nullptr)
      continue;
    if (!scenario->is_string() || !horizon->is_number() || !engine->is_string() ||
        !slots->is_number())
      continue;
    if (scenario->as_string() == row.scenario && engine->as_string() == row.engine &&
        static_cast<slot_t>(horizon->as_number()) == row.horizon)
      return slots->as_number();
  }
  return 0.0;
}

int run(int argc, const char* const* argv) {
  const BenchSpec& self = perf();
  const BenchDriver driver(argc, argv, {self.id, self.summary, self.flags});
  std::ostream& out = driver.out();
  const int reps = driver.reps(1000, 64);
  const std::uint64_t base_seed = driver.seed(70000);
  const int threads = driver.threads();
  const std::string baseline_path = driver.cli().get_string("baseline", "");
  const double tolerance = driver.cli().get_double("tolerance", 0.15);
  const std::string json_path =
      driver.cli().get_string("json", derive_snapshot_path(baseline_path));

  std::shared_ptr<JsonValue> baseline;
  if (!baseline_path.empty()) {
    JsonParseResult parsed = JsonValue::parse_file(baseline_path);
    if (!parsed.ok()) {
      out << "perf: cannot read baseline " << baseline_path << ": " << parsed.error << "\n";
      return 2;
    }
    baseline = parsed.value;
  }

  // The paper_repro workload axis: batch cells at two horizons (the large
  // one is where quiescent tails dominate a scalar sweep), plus the two
  // always-active workloads where no tail skip is possible — honest
  // lower-bound cells for the lockstep engine's plan path. Quick mode keeps
  // a subset of the SAME cells (fewer reps) so a CI smoke's --baseline diff
  // against a committed full snapshot has matching rows.
  const std::vector<PerfCell> cells =
      driver.quick()
          ? std::vector<PerfCell>{{"batch", slot_t{1} << 16}, {"worst_case", slot_t{1} << 16}}
          : std::vector<PerfCell>{{"batch", slot_t{1} << 16},
                                  {"batch", slot_t{1} << 20},
                                  {"worst_case", slot_t{1} << 16},
                                  {"bernoulli_stream", slot_t{1} << 16}};
  const std::vector<std::string> engines = {"generic", "fast_cjz", "lockstep"};

  out << "P1: engine throughput at fixed seeds, " << reps << " reps per fast-engine cell, "
      << threads << " thread(s)\n\n";

  std::vector<PerfRow> rows;
  for (const PerfCell& cell : cells) {
    ScenarioParams params;
    params.horizon = cell.horizon;
    for (const std::string& engine_name : engines) {
      const Engine& engine = EngineRegistry::instance().at(engine_name);
      // The reference engine is O(nodes) per slot — a handful of runs gives
      // a stable per-run rate without dominating the wall clock.
      const int engine_reps = engine_name == "generic" ? std::min(reps, 4) : reps;

      const auto start = std::chrono::steady_clock::now();
      const auto results = replicate_scenario(engine, cell.scenario, params, engine_reps,
                                              base_seed, threads);
      const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

      PerfRow row;
      row.scenario = cell.scenario;
      row.engine = engine_name;
      row.horizon = cell.horizon;
      row.reps = engine_reps;
      row.threads = threads;
      row.seconds = elapsed.count();
      double slots = 0.0;
      row.mean_successes =
          collect(results, [](const SimResult& r) { return static_cast<double>(r.successes); })
              .mean();
      row.mean_sends =
          collect(results,
                  [](const SimResult& r) { return static_cast<double>(r.total_sends); })
              .mean();
      for (const SimResult& r : results) slots += static_cast<double>(r.slots);
      row.slots_per_sec = row.seconds > 0.0 ? slots / row.seconds : 0.0;
      row.runs_per_sec =
          row.seconds > 0.0 ? static_cast<double>(engine_reps) / row.seconds : 0.0;
      rows.push_back(row);
    }
  }

  // Memory cell: one sparse-table fast_cjz run at a streaming-scale horizon
  // (2^24 slots of Bernoulli(0.1) arrivals — ~1.7M nodes pass through the
  // system). reps=1 and run directly (not via replicate_scenario) because
  // the signal is the footprint, not throughput: resident node-table bytes
  // against the dense extrapolation (arrivals × node record), plus process
  // peak RSS. Same horizon in quick mode so a CI smoke's --baseline diff
  // against a committed full snapshot finds the matching row.
  {
    ScenarioParams params;
    params.horizon = slot_t{1} << 24;
    params.seed = base_seed;
    Scenario sc = ScenarioRegistry::instance().build("bernoulli_stream", params);
    sc.config.node_table = NodeTableKind::kSparse;

    const auto start = std::chrono::steady_clock::now();
    FastCjzSimulator sim(sc.protocol.fs, *sc.adversary, sc.config,
                         sc.protocol.cjz_options);
    const SimResult r = sim.run();
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    const CjzCoreMemoryStats mem = sim.memory_stats();

    PerfRow row;
    row.scenario = "bernoulli_stream";
    row.engine = "fast_cjz_sparse";
    row.horizon = params.horizon;
    row.reps = 1;
    row.threads = 1;
    row.seconds = elapsed.count();
    row.mean_successes = static_cast<double>(r.successes);
    row.mean_sends = static_cast<double>(r.total_sends);
    row.slots_per_sec =
        row.seconds > 0.0 ? static_cast<double>(r.slots) / row.seconds : 0.0;
    row.runs_per_sec = row.seconds > 0.0 ? 1.0 / row.seconds : 0.0;
    row.memory_cell = true;
    row.peak_live_nodes = mem.peak_live_nodes;
    row.node_table_slots = mem.node_table_slots;
    row.resident_bytes = mem.node_bytes;
    const std::uint64_t node_record_bytes =
        mem.node_table_slots > 0 ? mem.node_bytes / mem.node_table_slots : 0;
    row.dense_extrap_bytes = r.arrivals * node_record_bytes;
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) == 0)
      row.peak_rss_kb = static_cast<std::uint64_t>(usage.ru_maxrss);
    rows.push_back(row);
  }

  // Attach the headline ratio to the lockstep rows so the JSON snapshot
  // carries it as a machine-readable field, not just table narrative.
  for (PerfRow& row : rows) {
    if (row.engine != "lockstep") continue;
    for (const PerfRow& fast : rows) {
      if (fast.engine == "fast_cjz" && fast.scenario == row.scenario &&
          fast.horizon == row.horizon && fast.slots_per_sec > 0.0)
        row.speedup_vs_fast_cjz = row.slots_per_sec / fast.slots_per_sec;
    }
  }

  Table table({"scenario", "horizon", "engine", "reps", "seconds", "slots/sec", "runs/sec",
               "successes", "sends"});
  for (const PerfRow& row : rows)
    table.add_row({row.scenario, Cell(static_cast<std::uint64_t>(row.horizon)), row.engine,
                   Cell(static_cast<std::int64_t>(row.reps)), Cell(row.seconds, 3),
                   Cell(row.slots_per_sec, 0), Cell(row.runs_per_sec, 1),
                   Cell(row.mean_successes, 1), Cell(row.mean_sends, 1)});
  table.print(out);

  // Headline: lockstep aggregate throughput over the threaded fast_cjz sweep
  // of the same cell (both sides used the same --threads).
  out << "\nlockstep speedup over fast_cjz (aggregate slots/sec, same thread count):\n";
  for (const PerfRow& row : rows)
    if (row.engine == "lockstep" && row.speedup_vs_fast_cjz > 0.0)
      out << "  " << row.scenario << " @ " << static_cast<std::uint64_t>(row.horizon) << ": "
          << format_double(row.speedup_vs_fast_cjz, 2) << "x\n";

  // Memory headline: sparse node-table footprint vs what a dense table would
  // have resident at the same arrival count.
  for (const PerfRow& row : rows) {
    if (!row.memory_cell) continue;
    const double ratio = row.resident_bytes > 0
                             ? static_cast<double>(row.dense_extrap_bytes) /
                                   static_cast<double>(row.resident_bytes)
                             : 0.0;
    out << "\nsparse node-table footprint (" << row.scenario << " @ "
        << static_cast<std::uint64_t>(row.horizon) << ", 1 run):\n"
        << "  peak live nodes " << row.peak_live_nodes << ", resident slots "
        << row.node_table_slots << " (" << row.resident_bytes << " bytes); dense would hold "
        << row.dense_extrap_bytes << " bytes — " << format_double(ratio, 0)
        << "x smaller; process peak RSS " << row.peak_rss_kb << " KB\n";
  }

  // Baseline comparison: per-cell slots/sec delta against the prior
  // snapshot. Only the fast engines gate — the reference engine's 4-rep
  // cells are too noisy to regress meaningfully.
  int regressions = 0;
  if (baseline != nullptr) {
    out << "\ndelta vs " << baseline_path << " (tolerance "
        << format_double(tolerance * 100.0, 0) << "%):\n";
    Table delta_table({"scenario", "horizon", "engine", "baseline", "current", "delta"});
    for (const PerfRow& row : rows) {
      const double before = baseline_slots_per_sec(*baseline, row);
      if (before <= 0.0) continue;
      const double delta = (row.slots_per_sec - before) / before;
      const bool gates = row.engine != "generic";
      const bool regressed = gates && delta < -tolerance;
      if (regressed) ++regressions;
      delta_table.add_row({row.scenario, Cell(static_cast<std::uint64_t>(row.horizon)),
                           row.engine, Cell(before, 0), Cell(row.slots_per_sec, 0),
                           std::string(delta >= 0.0 ? "+" : "") +
                               format_double(delta * 100.0, 1) + "%" +
                               (regressed ? "  REGRESSION" : "")});
    }
    delta_table.print(out);
    if (regressions > 0)
      out << "\n" << regressions << " cell(s) regressed more than "
          << format_double(tolerance * 100.0, 0) << "% — exiting nonzero\n";
  }

  const std::string csv_path = driver.csv_path("perf.csv");
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    write_table_csv(table, perf().csv_columns, file);
    out << "\ntable written to " << csv_path << "\n";
  }

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    json << "{\n  \"bench\": \"perf\",\n  \"quick\": " << (driver.quick() ? "true" : "false")
         << ",\n  \"threads\": " << threads << ",\n  \"reps\": " << reps
         << ",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const PerfRow& row = rows[i];
      char buf[640];
      std::snprintf(buf, sizeof(buf),
                    "    {\"scenario\": \"%s\", \"horizon\": %llu, \"engine\": \"%s\", "
                    "\"reps\": %d, \"threads\": %d, \"seconds\": %.6f, "
                    "\"slots_per_sec\": %.1f, \"runs_per_sec\": %.3f, "
                    "\"mean_successes\": %.2f, \"mean_sends\": %.2f",
                    row.scenario.c_str(),
                    static_cast<unsigned long long>(row.horizon), row.engine.c_str(),
                    row.reps, row.threads, row.seconds, row.slots_per_sec, row.runs_per_sec,
                    row.mean_successes, row.mean_sends);
      json << buf;
      if (row.speedup_vs_fast_cjz > 0.0) {
        std::snprintf(buf, sizeof(buf), ", \"speedup_vs_fast_cjz\": %.3f",
                      row.speedup_vs_fast_cjz);
        json << buf;
      }
      if (row.memory_cell) {
        std::snprintf(buf, sizeof(buf),
                      ", \"peak_live_nodes\": %llu, \"node_table_slots\": %llu, "
                      "\"resident_bytes\": %llu, \"dense_extrap_bytes\": %llu, "
                      "\"peak_rss_kb\": %llu",
                      static_cast<unsigned long long>(row.peak_live_nodes),
                      static_cast<unsigned long long>(row.node_table_slots),
                      static_cast<unsigned long long>(row.resident_bytes),
                      static_cast<unsigned long long>(row.dense_extrap_bytes),
                      static_cast<unsigned long long>(row.peak_rss_kb));
        json << buf;
      }
      json << "}" << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    json << "  ]\n}\n";
    out << "\nperf snapshot written to " << json_path << "\n";
  }

  out << "\nReading: slots/sec counts simulated slots (the lockstep engine's plan\n"
         "path and analytic tail skip count the slots they certify away); runs/sec\n"
         "is the end-to-end replication rate a sweep observes. Compare rows within\n"
         "a scenario cell.\n";
  return regressions > 0 ? 1 : 0;
}

}  // namespace

BenchSpec perf() {
  BenchSpec spec;
  spec.name = "perf";
  spec.id = "P1";
  spec.summary = "engine throughput per scenario (slots/sec, runs/sec, lockstep speedup)";
  spec.claim = "— (performance trajectory, not a paper claim)";
  spec.outcome =
      "per (scenario × engine) timing rows plus the lockstep-vs-fast_cjz aggregate "
      "speedup and a sparse node-table memory cell (resident bytes vs dense "
      "extrapolation, peak RSS); JSON snapshot for CI trend tracking; delta gate vs "
      "a prior snapshot";
  spec.flags = {
      {"json", "JSON snapshot path (default: next BENCH_<n+1>.json; empty string disables)"},
      {"baseline", "prior snapshot to diff against (per-cell slots/sec deltas; exit 1 on "
                   "fast-engine regressions past --tolerance)"},
      {"tolerance", "allowed fractional slots/sec regression vs --baseline (default 0.15)"},
  };
  spec.csv_columns = {"scenario", "horizon", "engine", "reps", "seconds",
                      "slots_per_sec", "runs_per_sec", "successes", "sends"};
  spec.csv_row_desc = "one row per (scenario × engine) timing cell";
  spec.run = run;
  return spec;
}

}  // namespace cr::benches
