// P1 "perf" — engine throughput trajectory.
//
// Times every engine that can run a scenario against that scenario at fixed
// seeds and reports slots/sec and runs/sec, plus the lockstep-vs-fast_cjz
// aggregate speedup per cell (the growth target this subcommand exists to
// track). Numbers go to the narrative table, the optional --csv, and a JSON
// snapshot (--json, default BENCH_6.json) that CI archives per commit so
// throughput regressions show up as a trajectory, not an anecdote.
//
//   cr perf                 # full sweep (R=1000 per fast-engine cell)
//   cr perf --quick         # CI smoke: small horizons, R=64
//
// Measurement notes: each (engine, scenario) cell is timed around the same
// replication entry point the benches use (replicate_scenario), so the
// numbers include adversary construction and per-run setup — what a real
// sweep pays. The reference engine runs a reduced rep count (its per-run
// cost is orders of magnitude higher and runs/sec normalises it out);
// slots/sec counts simulated slots, so the lockstep engine's analytic tail
// skip (engine/lockstep.hpp) legitimately counts the slots it proves it can
// skip.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "cli/benches/benches.hpp"
#include "common/table.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "exp/workload.hpp"

namespace cr::benches {

namespace {

struct PerfCell {
  std::string scenario;
  slot_t horizon = 0;
};

struct PerfRow {
  std::string scenario;
  std::string engine;
  slot_t horizon = 0;
  int reps = 0;
  double seconds = 0.0;
  double slots_per_sec = 0.0;
  double runs_per_sec = 0.0;
  double mean_successes = 0.0;
  double mean_sends = 0.0;
};

int run(int argc, const char* const* argv) {
  const BenchSpec& self = perf();
  const BenchDriver driver(argc, argv, {self.id, self.summary, self.flags});
  std::ostream& out = driver.out();
  const int reps = driver.reps(1000, 64);
  const std::uint64_t base_seed = driver.seed(70000);
  const int threads = driver.threads();
  const std::string json_path = driver.cli().get_string("json", "BENCH_6.json");

  // The paper_repro workload axis: batch cells at two horizons (the large
  // one is where quiescent tails dominate a scalar sweep), plus the two
  // always-active workloads where no tail skip is possible — honest
  // lower-bound cells for the lockstep engine.
  const std::vector<PerfCell> cells =
      driver.quick()
          ? std::vector<PerfCell>{{"batch", slot_t{1} << 14}, {"worst_case", slot_t{1} << 14}}
          : std::vector<PerfCell>{{"batch", slot_t{1} << 16},
                                  {"batch", slot_t{1} << 20},
                                  {"worst_case", slot_t{1} << 16},
                                  {"bernoulli_stream", slot_t{1} << 16}};
  const std::vector<std::string> engines = {"generic", "fast_cjz", "lockstep"};

  out << "P1: engine throughput at fixed seeds, " << reps << " reps per fast-engine cell, "
      << threads << " thread(s)\n\n";

  std::vector<PerfRow> rows;
  for (const PerfCell& cell : cells) {
    ScenarioParams params;
    params.horizon = cell.horizon;
    for (const std::string& engine_name : engines) {
      const Engine& engine = EngineRegistry::instance().at(engine_name);
      // The reference engine is O(nodes) per slot — a handful of runs gives
      // a stable per-run rate without dominating the wall clock.
      const int engine_reps = engine_name == "generic" ? std::min(reps, 4) : reps;

      const auto start = std::chrono::steady_clock::now();
      const auto results = replicate_scenario(engine, cell.scenario, params, engine_reps,
                                              base_seed, threads);
      const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

      PerfRow row;
      row.scenario = cell.scenario;
      row.engine = engine_name;
      row.horizon = cell.horizon;
      row.reps = engine_reps;
      row.seconds = elapsed.count();
      double slots = 0.0;
      row.mean_successes =
          collect(results, [](const SimResult& r) { return static_cast<double>(r.successes); })
              .mean();
      row.mean_sends =
          collect(results,
                  [](const SimResult& r) { return static_cast<double>(r.total_sends); })
              .mean();
      for (const SimResult& r : results) slots += static_cast<double>(r.slots);
      row.slots_per_sec = row.seconds > 0.0 ? slots / row.seconds : 0.0;
      row.runs_per_sec =
          row.seconds > 0.0 ? static_cast<double>(engine_reps) / row.seconds : 0.0;
      rows.push_back(row);
    }
  }

  Table table({"scenario", "horizon", "engine", "reps", "seconds", "slots/sec", "runs/sec",
               "successes", "sends"});
  for (const PerfRow& row : rows)
    table.add_row({row.scenario, Cell(static_cast<std::uint64_t>(row.horizon)), row.engine,
                   Cell(static_cast<std::int64_t>(row.reps)), Cell(row.seconds, 3),
                   Cell(row.slots_per_sec, 0), Cell(row.runs_per_sec, 1),
                   Cell(row.mean_successes, 1), Cell(row.mean_sends, 1)});
  table.print(out);

  // Headline: lockstep aggregate throughput over the threaded fast_cjz sweep
  // of the same cell (both sides used the same --threads).
  out << "\nlockstep speedup over fast_cjz (aggregate slots/sec, same thread count):\n";
  for (const PerfCell& cell : cells) {
    const PerfRow* fast = nullptr;
    const PerfRow* lockstep = nullptr;
    for (const PerfRow& row : rows) {
      if (row.scenario != cell.scenario || row.horizon != cell.horizon) continue;
      if (row.engine == "fast_cjz") fast = &row;
      if (row.engine == "lockstep") lockstep = &row;
    }
    if (fast == nullptr || lockstep == nullptr || fast->slots_per_sec <= 0.0) continue;
    out << "  " << cell.scenario << " @ " << static_cast<std::uint64_t>(cell.horizon) << ": "
        << format_double(lockstep->slots_per_sec / fast->slots_per_sec, 2) << "x\n";
  }

  const std::string csv_path = driver.csv_path("perf.csv");
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    write_table_csv(table, perf().csv_columns, file);
    out << "\ntable written to " << csv_path << "\n";
  }

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    json << "{\n  \"bench\": \"perf\",\n  \"quick\": " << (driver.quick() ? "true" : "false")
         << ",\n  \"threads\": " << threads << ",\n  \"reps\": " << reps
         << ",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const PerfRow& row = rows[i];
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "    {\"scenario\": \"%s\", \"horizon\": %llu, \"engine\": \"%s\", "
                    "\"reps\": %d, \"seconds\": %.6f, \"slots_per_sec\": %.1f, "
                    "\"runs_per_sec\": %.3f, \"mean_successes\": %.2f, \"mean_sends\": %.2f}",
                    row.scenario.c_str(),
                    static_cast<unsigned long long>(row.horizon), row.engine.c_str(),
                    row.reps, row.seconds, row.slots_per_sec, row.runs_per_sec,
                    row.mean_successes, row.mean_sends);
      json << buf << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    json << "  ]\n}\n";
    out << "\nperf snapshot written to " << json_path << "\n";
  }

  out << "\nReading: slots/sec counts simulated slots (the lockstep engine's analytic\n"
         "tail skip counts the slots it certifies away); runs/sec is the end-to-end\n"
         "replication rate a sweep observes. Compare rows within a scenario cell.\n";
  return 0;
}

}  // namespace

BenchSpec perf() {
  BenchSpec spec;
  spec.name = "perf";
  spec.id = "P1";
  spec.summary = "engine throughput per scenario (slots/sec, runs/sec, lockstep speedup)";
  spec.claim = "— (performance trajectory, not a paper claim)";
  spec.outcome =
      "per (scenario × engine) timing rows plus the lockstep-vs-fast_cjz aggregate "
      "speedup; JSON snapshot for CI trend tracking";
  spec.flags = {
      {"json", "JSON snapshot path (default BENCH_6.json; empty string disables)"},
  };
  spec.csv_columns = {"scenario", "horizon", "engine", "reps", "seconds",
                      "slots_per_sec", "runs_per_sec", "successes", "sends"};
  spec.csv_row_desc = "one row per (scenario × engine) timing cell";
  spec.run = run;
  return spec;
}

}  // namespace cr::benches
