// E2 "worst-case throughput" — introduction headline claim.
//
// With a constant fraction of all slots jammed (the asymptotically worst
// jamming an algorithm can survive), the paper proves the best possible
// throughput is Θ(1/log t) — and the CJZ algorithm attains it: Θ(t/log t)
// successful transmissions within t slots.
//
// We sweep arrival pressure (paced arrivals n_t ≈ t/(margin·f(t))): at
// margin 4 the system is underloaded and serves everything; at margin 1 it
// runs at the theoretical capacity; at margin 0.5 it is overloaded and the
// success count exposes the Θ(t/log t) ceiling. The normalized column
// successes·log2(t)/t should be flat in t and capped by a constant.
#include <cmath>
#include <fstream>
#include <ostream>

#include "cli/benches/benches.hpp"
#include "common/table.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"

namespace cr::benches {

namespace {

int run(int argc, const char* const* argv) {
  const BenchDriver driver(argc, argv,
                           {worstcase().id, worstcase().summary, worstcase().flags});
  std::ostream& out = driver.out();
  const bool quick = driver.quick();
  const int reps = driver.reps(6, 3);
  const int max_exp = static_cast<int>(driver.get_int("max_exp", 20, 17));

  out << "E2: worst-case throughput under constant-fraction jamming\n"
      << "Prediction: successes*log2(t)/t flat in t and capped by a constant\n"
      << "(Theta(t/log t) messages in t slots is the best possible and is attained).\n\n";

  Table table({"jam rate", "arrival margin", "t", "arrivals", "successes", "served",
               "succ*log2(t)/t"});
  for (const double jam : {0.0, 0.25, 0.4}) {
    for (const double margin : {4.0, 1.0, 0.5}) {
      for (int e = 14; e <= max_exp; e += (quick ? 3 : 2)) {
        const slot_t t = static_cast<slot_t>(1) << e;
        const auto results = driver.replicate(reps, driver.seed(11000), [&](std::uint64_t s) {
          Scenario sc = worst_case_scenario(t, jam, margin, s);
          return run_scenario(EngineRegistry::instance().preferred(sc.protocol), sc);
        });
        const auto arr = collect(results, [](const SimResult& r) { return double(r.arrivals); });
        const auto succ = collect(results, [](const SimResult& r) { return double(r.successes); });
        const auto served = collect(results, [](const SimResult& r) {
          return r.arrivals ? double(r.successes) / double(r.arrivals) : 1.0;
        });
        const auto norm = collect(results, [&](const SimResult& r) {
          return double(r.successes) * std::log2(double(t)) / double(t);
        });
        table.add_row({Cell(jam, 2), Cell(margin, 2), Cell(static_cast<std::uint64_t>(t)),
                       Cell(arr.mean(), 0), Cell(succ.mean(), 0), Cell(served.mean(), 3),
                       mean_sd(norm, 3)});
      }
    }
  }
  table.print(out);

  const std::string csv_path = driver.csv_path("worstcase.csv");
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    write_table_csv(table, worstcase().csv_columns, file);
    out << "\ntable written to " << csv_path << "\n";
  }

  out << "\nReading: down each (jam, margin) block the normalized column is flat in t;\n"
         "across margins it saturates at a constant ceiling — goodput Theta(t/log t),\n"
         "even when 40% of all slots are jammed.\n";
  return 0;
}

}  // namespace

BenchSpec worstcase() {
  BenchSpec spec;
  spec.name = "worstcase";
  spec.id = "E2";
  spec.summary = "worst-case throughput under constant-fraction jamming";
  spec.claim = "Introduction headline; Θ(1/log t) optimality";
  spec.outcome =
      "successes·log2(t)/t flat in t, capped by a constant, even at 40% jamming";
  spec.flags = {{"max_exp", "largest horizon exponent: t sweeps 2^14..2^max_exp "
                            "(default 20, quick 17)"}};
  spec.csv_columns = {"jam", "arrival_margin", "t", "arrivals", "successes", "served",
                      "norm_succ"};
  spec.csv_row_desc =
      "one (jam, margin, t) cell; means over reps (norm_succ column is mean±sd)";
  spec.run = run;
  return spec;
}

}  // namespace cr::benches
