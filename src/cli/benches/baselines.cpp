// E7 "baseline comparison" — related-work framing (§1).
//
// Plain backoff schemes (binary exponential, polynomial, sawtooth) are known
// not to deliver constant throughput on batch arrivals; the CJZ algorithm
// does (up to its f factor). We race them on an n-node batch with no
// jamming and report the median completion time (capped at the horizon) and
// the fraction delivered within 32n slots.
//
// Every contender is a ProtocolSpec; the registry picks the fastest engine
// that can execute it (cohort engines for CJZ and the probability profile,
// the per-node reference engine for the windowed schemes).
#include <fstream>
#include <ostream>
#include <vector>

#include "cli/benches/benches.hpp"
#include "common/table.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "metrics/metrics.hpp"
#include "protocols/baselines.hpp"
#include "protocols/batch.hpp"

namespace cr::benches {

namespace {

struct Contender {
  const char* label;
  ProtocolSpec spec;
};

std::vector<Contender> contenders(bool with_profile) {
  std::vector<Contender> out;
  out.push_back({"cjz", cjz_protocol(functions_constant_g(4.0))});
  out.push_back({"beb", factory_protocol("windowed-beb", [] {
                   return windowed_backoff_factory({});
                 })});
  out.push_back({"sawtooth", factory_protocol("windowed-sawtooth", [] {
                   return windowed_backoff_factory({.scheme = WindowScheme::kSawtooth});
                 })});
  out.push_back({"poly", factory_protocol("windowed-poly", [] {
                   return windowed_backoff_factory(
                       {.scheme = WindowScheme::kPolynomial, .poly_exponent = 2.0});
                 })});
  if (with_profile) out.push_back({"h_data", profile_protocol(profiles::h_data())});
  return out;
}

struct Outcome {
  double median_completion;
  double frac_by_32n;
  bool capped;
};

Outcome race(const ProtocolSpec& spec, std::uint64_t n, const BenchDriver& driver, int reps,
             std::uint64_t base_seed) {
  const Engine& engine = EngineRegistry::instance().preferred(spec);
  const slot_t horizon = 4000 * n;
  const auto results = driver.replicate(reps, base_seed, [&](std::uint64_t s) {
    Scenario sc = batch_scenario(n, 0.0, horizon, functions_constant_g(4.0));
    sc.protocol = spec;
    sc.config.seed = s;
    sc.config.stop_when_empty = true;
    sc.config.recording = RecordingConfig::success_times();
    return run_scenario(engine, sc);
  });
  Quantiles completion;
  Accumulator frac;
  bool capped = false;
  for (const SimResult& res : results) {
    if (res.live_at_end != 0) capped = true;
    completion.add(static_cast<double>(res.live_at_end == 0 ? res.last_success : res.slots));
    frac.add(static_cast<double>(successes_in_window(res, 1, 32 * n)) /
             static_cast<double>(n));
  }
  return {completion.median(), frac.mean(), capped};
}

int run(int argc, const char* const* argv) {
  const BenchDriver driver(argc, argv,
                           {baselines().id, baselines().summary, baselines().flags});
  std::ostream& out = driver.out();
  const bool quick = driver.quick();
  const int reps = driver.reps(7, 3);
  const auto max_n = static_cast<std::uint64_t>(driver.get_int("max_n", 512, 256));

  out << "E7: CJZ vs classical backoff baselines on an n-node batch (no jamming)\n"
      << "median completion (slots; '>' = some runs hit the horizon cap) and\n"
      << "fraction delivered within 32n slots.\n\n";

  Table table({"n", "protocol", "median completion", "completion/n", "frac by 32n"});
  for (std::uint64_t n = 64; n <= max_n; n <<= 1) {
    for (const Contender& c : contenders(/*with_profile=*/true)) {
      const Outcome o = race(c.spec, n, driver, reps, driver.seed(61000));
      std::string med = o.capped ? ">" : "";
      med += format_double(o.median_completion, 0);
      table.add_row({Cell(n), c.label, med,
                     Cell(o.median_completion / static_cast<double>(n), 1),
                     Cell(o.frac_by_32n, 3)});
    }
  }
  table.print(out);

  const std::string csv_path = driver.csv_path("baselines.csv");
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    write_table_csv(table, baselines().csv_columns, file);
    out << "\ntable written to " << csv_path << "\n";
  }

  out << "\nReading: on a clean batch the windowed schemes and CJZ are all ~n·polylog\n"
         "(constants differ); the probability-profile BEB (h_data) collapses. The\n"
         "structural separations show under dynamic arrivals and jamming:\n\n";

  // E7b/E7c are narrative-only (outside the CSV schema), so under --quiet
  // their entire computation would stream into the null sink — skip it.
  if (driver.quiet()) return 0;

  // E7b: sustained arrival stream, moderate and overload rates.
  out << "E7b: Bernoulli arrival stream for t slots, no jamming\n\n";
  Table t2({"t", "rate", "protocol", "arrivals", "served", "backlog at end"});
  const slot_t t = quick ? (1 << 15) : (1 << 17);
  for (const double rate : {0.1, 0.45}) {
    for (const Contender& c : contenders(/*with_profile=*/false)) {
      const Engine& engine = EngineRegistry::instance().preferred(c.spec);
      ScenarioParams params;
      params.horizon = t;
      params.rate = rate;
      params.jam = 0.0;
      const auto results = driver.replicate(reps, driver.seed(66000), [&](std::uint64_t s) {
        ScenarioParams p = params;
        p.seed = s;
        Scenario sc = ScenarioRegistry::instance().build("bernoulli_stream", p);
        sc.protocol = c.spec;
        return run_scenario(engine, sc);
      });
      const auto arrivals =
          collect(results, [](const SimResult& r) { return static_cast<double>(r.arrivals); });
      const auto served = collect(results, [](const SimResult& r) {
        return r.arrivals ? static_cast<double>(r.successes) / static_cast<double>(r.arrivals)
                          : 1.0;
      });
      const auto backlog =
          collect(results, [](const SimResult& r) { return static_cast<double>(r.live_at_end); });
      t2.add_row({Cell(static_cast<std::uint64_t>(t)), Cell(rate, 2), c.label,
                  Cell(arrivals.mean(), 0), Cell(served.mean(), 3), mean_sd(backlog, 1)});
    }
  }
  t2.print(out);

  // E7c: batch under 25% jamming.
  out << "\nE7c: batch of n under 25% i.i.d. jamming — fraction delivered by 64n\n\n";
  Table t3({"n", "protocol", "frac by 64n"});
  const std::uint64_t nj = quick ? 128 : 256;
  for (const Contender& c : contenders(/*with_profile=*/true)) {
    const Engine& engine = EngineRegistry::instance().preferred(c.spec);
    const auto results = driver.replicate(reps, driver.seed(67000), [&](std::uint64_t s) {
      Scenario sc = batch_scenario(nj, 0.25, 64 * nj, functions_constant_g(4.0));
      sc.protocol = c.spec;
      sc.config.seed = s;
      return run_scenario(engine, sc);
    });
    const auto frac = collect(results, [&](const SimResult& r) {
      return static_cast<double>(r.successes) / static_cast<double>(nj);
    });
    t3.add_row({Cell(nj), c.label, mean_sd(frac, 3)});
  }
  t3.print(out);

  out << "\nReading (honest): on benign workloads — clean batches, Bernoulli streams,\n"
         "even i.i.d. jamming — the windowed schemes are competitive with CJZ (their\n"
         "constants are smaller; CJZ pays its f = Theta(log) overhead). The paper's\n"
         "separations are adversarial: the probability-profile BEB collapses on\n"
         "batches (E3/Claim 3.5.1), and every windowed scheme is a non-adaptive\n"
         "sequence in Theorem 4.2's sense, losing to h-backoff under prefix jamming\n"
         "(see `cr bench nonadaptive`). CJZ is the only contender with worst-case\n"
         "guarantees across all of these at once.\n";
  return 0;
}

}  // namespace

BenchSpec baselines() {
  BenchSpec spec;
  spec.name = "baselines";
  spec.id = "E7";
  spec.summary = "CJZ vs classical backoff baselines";
  spec.claim = "§1 related-work framing";
  spec.outcome =
      "on benign workloads windowed schemes are competitive; h_data collapses on "
      "batches; only CJZ has worst-case guarantees across all tables";
  spec.flags = {{"max_n", "largest batch size for the race table (default 512, quick 256)"}};
  spec.csv_columns = {"n", "protocol", "median_completion", "completion_over_n",
                      "frac_by_32n"};
  spec.csv_row_desc =
      "one (n, protocol) cell of the clean-batch race (E7b/E7c tables are "
      "narrative-only); '>' prefixes horizon-capped medians";
  spec.run = run;
  return spec;
}

}  // namespace cr::benches
