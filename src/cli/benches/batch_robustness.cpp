// E4 "batch robustness" — remark after Claim 3.5.1 + the batch subroutine's
// role in the algorithm (Section 2, "Achieving jamming resistance").
//
// Prediction: with n nodes starting simultaneously, h_data-batch delivers a
// constant fraction of all n messages within O(n) slots even when a constant
// fraction of those slots is jammed. (Finishing *all* of them is what it
// cannot do — see E3.)
//
// We sweep the jamming rate and report the fraction delivered within c·n
// slots for c ∈ {2, 4, 8}.
#include <fstream>
#include <ostream>

#include "cli/benches/benches.hpp"
#include "common/table.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "metrics/metrics.hpp"
#include "protocols/batch.hpp"

namespace cr::benches {

namespace {

int run(int argc, const char* const* argv) {
  const BenchDriver driver(
      argc, argv, {batch_robustness().id, batch_robustness().summary, batch_robustness().flags});
  std::ostream& out = driver.out();
  const auto n = static_cast<std::uint64_t>(driver.get_int("n", 4096, 1024));
  const int reps = driver.reps(15, 5);

  out << "E4: h_data-batch delivers a constant fraction of n in O(n) slots under jamming\n"
      << "n = " << n << ", i.i.d. jamming at the given rate.\n\n";

  const ProtocolSpec h_data = profile_protocol(profiles::h_data());
  const Engine& engine = EngineRegistry::instance().preferred(h_data);

  Table table({"jam rate", "frac by 2n", "frac by 4n", "frac by 8n"});
  for (const double jam : {0.0, 0.1, 0.25, 0.4}) {
    const auto results = driver.replicate(reps, driver.seed(31000), [&](std::uint64_t s) {
      Scenario sc = batch_scenario(n, jam, 8 * n, functions_constant_g(4.0));
      sc.protocol = h_data;
      sc.config.seed = s;
      sc.config.recording = RecordingConfig::success_times();
      return run_scenario(engine, sc);
    });
    const double dn = static_cast<double>(n);
    const auto by2 = collect(results, [&](const SimResult& r) {
      return static_cast<double>(successes_in_window(r, 1, 2 * n)) / dn;
    });
    const auto by4 = collect(results, [&](const SimResult& r) {
      return static_cast<double>(successes_in_window(r, 1, 4 * n)) / dn;
    });
    const auto by8 = collect(results, [&](const SimResult& r) {
      return static_cast<double>(successes_in_window(r, 1, 8 * n)) / dn;
    });
    table.add_row({Cell(jam, 2), mean_sd(by2, 3), mean_sd(by4, 3), mean_sd(by8, 3)});
  }
  table.print(out);

  const std::string csv_path = driver.csv_path("batch_robustness.csv");
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    write_table_csv(table, batch_robustness().csv_columns, file);
    out << "\ntable written to " << csv_path << "\n";
  }

  out << "\nReading: even at 40% jamming a constant fraction (not a vanishing one) of\n"
         "the batch is delivered within a few multiples of n — the property Phase 3\n"
         "of the algorithm is built on.\n";
  return 0;
}

}  // namespace

BenchSpec batch_robustness() {
  BenchSpec spec;
  spec.name = "batch_robustness";
  spec.id = "E4";
  spec.summary = "h_data-batch delivers a constant fraction under jamming";
  spec.claim = "Remark after Claim 3.5.1 / §2";
  spec.outcome =
      "h_data-batch delivers a constant fraction of n within O(n) slots even at "
      "40% jamming";
  spec.flags = {{"n", "batch size (default 4096, quick 1024)"}};
  spec.csv_columns = {"jam", "frac_by_2n", "frac_by_4n", "frac_by_8n"};
  spec.csv_row_desc = "one jam-rate row; fractions are mean±sd over reps";
  spec.run = run;
  return spec;
}

}  // namespace cr::benches
