// E6 "lower-bound tightness" — Theorem 1.3 / Lemma 4.1.
//
// The impossibility proof shows any (f,g)-throughput algorithm must send
// Ω(log²t / log²g(t)) times before its first success when the adversary
// jams a t/(4g)-prefix plus random slots (Theorem 1.3's construction). The
// algorithm's backoff subroutine matches this: its send count before first
// success under that adversary is Θ(log²t / log²g).
//
// We run a single h-backoff node against the Theorem 1.3 adversary and
// report mean sends-before-first-success, normalized by log²t/log²g —
// flatness of that column is the tightness claim.
#include <cmath>
#include <fstream>
#include <ostream>

#include "adversary/proof_adversaries.hpp"
#include "cli/benches/benches.hpp"
#include "common/table.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "protocols/baselines.hpp"

namespace cr::benches {

namespace {

int run(int argc, const char* const* argv) {
  const BenchDriver driver(argc, argv,
                           {lowerbound().id, lowerbound().summary, lowerbound().flags});
  std::ostream& out = driver.out();
  const int reps = driver.reps(20, 8);
  const int max_exp = static_cast<int>(driver.get_int("max_exp", 20, 17));

  out << "E6 (Thm 1.3 / Lemma 4.1): sends before first success vs the lower bound\n"
      << "Theorem 1.3 adversary (prefix + random jamming, one node), h-backoff node.\n"
      << "Prediction: sends ~ c * log2(t)^2 / log2(g)^2 — the normalized column is flat.\n\n";

  Table table({"g", "t", "mean first succ", "mean sends", "log2(t)^2/log2(g)^2", "normalized"});
  for (const double gamma : {4.0, 16.0}) {
    const FunctionSet fs = functions_constant_g(gamma);
    const ProtocolSpec spec =
        factory_protocol("h-backoff", [fs] { return backoff_protocol_factory(fs); });
    const Engine& engine = EngineRegistry::instance().preferred(spec);
    for (int e = 13; e <= max_exp; ++e) {
      const slot_t t = static_cast<slot_t>(1) << e;
      const std::uint64_t base = driver.seed(52000);
      const auto results = driver.replicate(reps, base, [&](std::uint64_t s) {
        // Two independent streams per replication: the scripted adversary's
        // own seed and the simulation seed (matching the serial original).
        const auto adv = theorem13_adversary(t, fs.g, 51000 + (s - base));
        SimConfig cfg;
        cfg.horizon = t;
        cfg.seed = s;
        cfg.stop_when_empty = true;
        return engine.run(spec, *adv, cfg);
      });
      const auto first = collect(results, [&](const SimResult& r) {
        return static_cast<double>(r.first_success == 0 ? t : r.first_success);
      });
      const auto sends =
          collect(results, [](const SimResult& r) { return static_cast<double>(r.total_sends); });
      const double lg = std::log2(static_cast<double>(t));
      const double lgg = std::log2(gamma);
      const double bound = lg * lg / (lgg * lgg);
      table.add_row({Cell(gamma, 0), Cell(static_cast<std::uint64_t>(t)), Cell(first.mean(), 0),
                     mean_sd(sends, 1), Cell(bound, 1), Cell(sends.mean() / bound, 3)});
    }
  }
  table.print(out);

  const std::string csv_path = driver.csv_path("lowerbound.csv");
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    write_table_csv(table, lowerbound().csv_columns, file);
    out << "\ntable written to " << csv_path << "\n";
  }

  out << "\nReading: 'normalized' hovers around a constant within each g block while t\n"
         "spans two orders of magnitude — the algorithm's energy matches the\n"
         "Omega(log^2 t / log^2 g) lower bound, hence the trade-off is tight.\n";
  return 0;
}

}  // namespace

BenchSpec lowerbound() {
  BenchSpec spec;
  spec.name = "lowerbound";
  spec.id = "E6";
  spec.summary = "sends before first success vs the lower bound (Thm 1.3)";
  spec.claim = "Theorem 1.3 / Lemma 4.1 tightness";
  spec.outcome = "sends before first success ≈ c·log²t/log²g (normalized column flat)";
  spec.flags = {{"max_exp", "largest horizon exponent: t sweeps 2^13..2^max_exp "
                            "(default 20, quick 17)"}};
  spec.csv_columns = {"g", "t", "first_success_mean", "sends_mean", "bound", "normalized"};
  spec.csv_row_desc = "one (g, t) cell; means over reps (sends_mean is mean±sd)";
  spec.run = run;
  return spec;
}

}  // namespace cr::benches
