// E10 "energy" — channel accesses per node.
//
// Related work frames energy (number of broadcasts a node makes before
// succeeding) as the second key metric; the CJZ algorithm's per-node energy
// is polylogarithmic: Phase 1/2 backoff contributes O(f·log) sends and
// Phase 3's batch profiles sum to O(log) in expectation per restart.
//
// We measure the per-node send distribution on batches with and without
// jamming, and report it against log²(n). The fast engines attribute every
// transmission under RecordingTier::kNodeStats, so the registry's preferred
// (cohort) engine serves here — orders of magnitude faster than the per-node
// reference engine this bench used to pin.
#include <cmath>
#include <fstream>
#include <ostream>

#include "cli/benches/benches.hpp"
#include "common/table.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "metrics/metrics.hpp"

namespace cr::benches {

namespace {

int run(int argc, const char* const* argv) {
  const BenchDriver driver(argc, argv, {energy().id, energy().summary, energy().flags});
  std::ostream& out = driver.out();
  // The cohort engine turned this bench from the suite's slowest into a
  // sub-second run (measured ~8x wall-clock at n<=2048), so the default
  // sweep now reaches 4x further than the generic engine used to afford.
  const int reps = driver.reps(8, 3);
  const auto max_n = static_cast<std::uint64_t>(driver.get_int("max_n", 2048, 256));

  out << "E10: per-node channel accesses (energy) for the CJZ algorithm\n"
      << "Batch of n, preferred engine. Prediction: mean/p99 energy = O(log^2 n),\n"
      << "mildly inflated by jamming.\n\n";

  Table table({"n", "jam", "energy mean", "energy p50", "energy p99", "energy max",
               "log2(n)^2"});
  for (std::uint64_t n = 64; n <= max_n; n <<= 1) {
    for (const double jam : {0.0, 0.25}) {
      const auto reports = driver.replicate(reps, driver.seed(91000), [&](std::uint64_t s) {
        Scenario sc = batch_scenario(n, jam, 4'000'000, functions_constant_g(4.0));
        sc.config.seed = s;
        sc.config.stop_when_empty = true;
        sc.config.recording = RecordingConfig::node_stats();
        return energy_report(
            run_scenario(EngineRegistry::instance().preferred(sc.protocol), sc));
      });
      Accumulator mean_acc, p50_acc, p99_acc, max_acc;
      for (const EnergyReport& rep : reports) {
        mean_acc.add(rep.mean);
        p50_acc.add(rep.p50);
        p99_acc.add(rep.p99);
        max_acc.add(rep.max);
      }
      const double l2 = std::pow(std::log2(static_cast<double>(n)), 2.0);
      table.add_row({Cell(n), Cell(jam, 2), Cell(mean_acc.mean(), 1), Cell(p50_acc.mean(), 1),
                     Cell(p99_acc.mean(), 1), Cell(max_acc.mean(), 1), Cell(l2, 1)});
    }
  }
  table.print(out);

  const std::string csv_path = driver.csv_path("energy.csv");
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    write_table_csv(table, energy().csv_columns, file);
    out << "\ntable written to " << csv_path << "\n";
  }

  out << "\nReading: energy grows like the log^2(n) column (not like n) — polylog\n"
         "channel accesses per message, in line with the backoff-style algorithms\n"
         "the paper builds on.\n";
  return 0;
}

}  // namespace

BenchSpec energy() {
  BenchSpec spec;
  spec.name = "energy";
  spec.id = "E10";
  spec.summary = "per-node channel accesses (energy)";
  spec.claim = "related-work energy metric";
  spec.outcome =
      "per-node sends grow like log²(n), not n; runs on the preferred cohort engine "
      "(~8× wall-clock vs the generic engine it used to pin)";
  spec.flags = {{"max_n", "largest batch size: n sweeps 64..max_n doubling "
                          "(default 2048, quick 256)"}};
  spec.csv_columns = {"n", "jam", "energy_mean", "energy_p50", "energy_p99", "energy_max",
                      "log2n_sq"};
  spec.csv_row_desc = "one (n, jam) cell; means over reps of per-run energy quantiles";
  spec.run = run;
  return spec;
}

}  // namespace cr::benches
