#include "cli/suite.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <map>
#include <random>
#include <set>
#include <sstream>

#include "cli/bench_registry.hpp"
#include "common/snapshot.hpp"
#include "common/source_digest.hpp"
#include "common/table.hpp"
#include "dist/cell_cache.hpp"

namespace cr {

namespace {

/// Flags the runner itself controls; a manifest naming one is a mistake.
/// --quick is reserved too: it is a run option (`cr suite run --quick`) and
/// the stale-resume guard tracks it, so a per-cell override would record
/// wrong provenance.
const std::set<std::string>& reserved_flags() {
  static const std::set<std::string> reserved = {"seed",    "csv",  "quiet",
                                                 "threads", "help", "quick"};
  return reserved;
}

bool is_standard_flag(const std::string& name) {
  for (const BenchFlag& flag : BenchDriver::standard_flags())
    if (flag.name == name) return true;
  return false;
}

bool bench_declares(const BenchSpec& spec, const std::string& name) {
  for (const BenchFlag& flag : spec.flags)
    if (flag.name == name) return true;
  return false;
}

/// A flag a manifest may set on `bench`: declared by it, accepted by its
/// dynamic-flag predicate (the workload bench's `arrival.*`/`jammer.*`
/// keys), or a standard flag that is not runner-reserved.
bool flag_allowed(const BenchSpec& spec, const std::string& name) {
  if (reserved_flags().count(name)) return false;
  if (spec.allows_flag != nullptr && spec.allows_flag(name)) return true;
  return bench_declares(spec, name) || is_standard_flag(name);
}

/// Manifest scalars become flag text: numbers keep their raw source bytes,
/// strings their decoded text, booleans "true"/"false".
bool scalar_flag_text(const JsonValue& value, std::string* out) {
  if (value.is_number() || value.is_string()) {
    *out = value.scalar_text();
    return true;
  }
  if (value.is_bool()) {
    *out = value.as_bool() ? "true" : "false";
    return true;
  }
  return false;
}

/// Strict decimal seed parse: digits only, capped at INT64_MAX — the seed
/// travels through Cli::get_int (strtoll) in the bench, so anything larger
/// would pass validation here only to abort at run time.
bool parse_seed(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text.size() > 19) return false;
  std::uint64_t value = 0;
  const std::uint64_t max = static_cast<std::uint64_t>(INT64_MAX);
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (max - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

std::string sanitize_for_path(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    out += ok ? c : '_';
  }
  return out;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string git_head_sha(const std::string& dir) {
  if (dir.empty()) return "unknown";
  // Shell-quote the directory: close the single-quoted span, emit an
  // escaped quote, reopen ('\'' idiom).
  std::string quoted = "'";
  for (const char c : dir)
    if (c == '\'')
      quoted += "'\\''";
    else
      quoted += c;
  quoted += "'";
  std::string out;
  const std::string cmd = "git -C " + quoted + " rev-parse --short HEAD 2>/dev/null";
  if (FILE* pipe = ::popen(cmd.c_str(), "r")) {
    char buf[128];
    if (std::fgets(buf, sizeof buf, pipe) != nullptr) out = buf;
    ::pclose(pipe);
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  return out.empty() ? "unknown" : out;
}

namespace {

/// Execute one cell in a forked child so a bench that exits or aborts
/// (bad flag value hitting CR_CHECK, std::exit in a driver, a crash)
/// becomes a "failed" status for THAT cell instead of killing the whole
/// suite run. Cells run sequentially, so no other threads are live at fork
/// time. Returns the cell's exit code (128+signal on abnormal death,
/// 126 when fork itself fails).
int run_cell_isolated(const std::string& bench, const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  // fork failure (EAGAIN/ENOMEM under CI pressure): report the CELL as
  // failed rather than falling back to an in-process run, where a bench
  // abort would kill the whole suite — the exact failure mode this
  // function exists to contain.
  if (pid < 0) return 126;
  if (pid == 0) {
    const int rc = BenchRegistry::instance().run(bench, args);
    // _Exit: the CSV ofstream is already closed inside the bench, and the
    // child must not flush stdio buffers it inherited from the parent.
    std::_Exit(rc);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return WIFSIGNALED(status) ? 128 + WTERMSIG(status) : 1;
}

std::string utc_now() {
  const std::time_t now = std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Worker-unique tmp suffix (PID + random hex): two workers racing the same
/// out_dir — or the same process writing twice — never collide on a tmp
/// path, so nobody can rename someone else's partial write into place.
std::string unique_tmp_suffix() {
  static thread_local std::mt19937_64 gen(
      std::random_device{}() ^ (static_cast<std::uint64_t>(::getpid()) << 32) ^
      static_cast<std::uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()));
  char buf[24];
  std::snprintf(buf, sizeof buf, "%08llx",
                static_cast<unsigned long long>(gen() & 0xFFFFFFFFull));
  return ".tmp-" + std::to_string(::getpid()) + "-" + buf;
}

bool read_file_bytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

std::string file_fnv16(const std::string& path) {
  std::string bytes;
  if (!read_file_bytes(path, &bytes)) return "";
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(
                    reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size())));
  return buf;
}

CellRunResult run_cell(const SuiteCell& cell, const CellRunOptions& opts) {
  namespace fs = std::filesystem;
  CellRunResult result;
  const std::string csv_path = opts.out_dir + "/" + cell.id + ".csv";
  const std::string tmp_path = csv_path + unique_tmp_suffix();
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };

  CellKey key;
  if (opts.cache != nullptr) {
    key.config_hash = opts.config_hash;
    key.cell_id = cell.id;
    key.source_digest = source_digest();
    key.quick = opts.quick;
    CacheLookup found = opts.cache->lookup(key);
    result.cache_note = found.diagnostic;
    if (found.hit) {
      // Restore through the same tmp+rename protocol as a computed cell so
      // a concurrent reader never sees a partial CSV.
      std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
      out << found.csv;
      out.flush();
      if (out) {
        out.close();
        std::error_code ec;
        fs::rename(tmp_path, csv_path, ec);
        if (!ec) {
          result.status = "hit";
          result.seconds = elapsed();
          char buf[24];
          std::snprintf(buf, sizeof buf, "%016llx",
                        static_cast<unsigned long long>(
                            fnv1a64(reinterpret_cast<const std::uint8_t*>(found.csv.data()),
                                    found.csv.size())));
          result.csv_fnv = buf;
          return result;
        }
      }
      std::error_code ec;
      fs::remove(tmp_path, ec);
      // Restore failed (I/O): fall through and recompute.
    }
  }

  std::vector<std::string> args;
  for (const auto& [flag, value] : cell.flags) args.push_back("--" + flag + "=" + value);
  if (cell.has_seed) args.push_back("--seed=" + std::to_string(cell.seed));
  if (opts.quick) args.push_back("--quick");
  if (opts.threads > 0) args.push_back("--threads=" + std::to_string(opts.threads));
  args.push_back("--quiet");
  args.push_back("--csv=" + tmp_path);

  const int rc = run_cell_isolated(cell.bench, args);
  result.seconds = elapsed();
  std::string csv_bytes;
  if (rc == 0 && read_file_bytes(tmp_path, &csv_bytes)) {
    std::error_code ec;
    fs::rename(tmp_path, csv_path, ec);
    if (ec) {
      fs::remove(tmp_path, ec);
      result.status = "failed";
      return result;
    }
    result.status = "ok";
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(reinterpret_cast<const std::uint8_t*>(csv_bytes.data()),
                              csv_bytes.size())));
    result.csv_fnv = buf;
    if (opts.cache != nullptr) {
      std::string store_error;
      if (!opts.cache->store(key, csv_bytes, opts.git_sha, result.seconds, &store_error) &&
          result.cache_note.empty())
        result.cache_note = store_error;
    }
  } else {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    result.status = "failed";
  }
  return result;
}

PriorOutputs scan_prior_outputs(const std::string& out_dir, const std::string& config_hash,
                                bool quick) {
  namespace fs = std::filesystem;
  PriorOutputs out;
  std::error_code ec;
  if (!fs::exists(out_dir, ec)) return out;
  for (const auto& entry : fs::directory_iterator(out_dir, ec)) {
    const std::string fname = entry.path().filename().string();
    if (fname.rfind("manifest", 0) != 0 || entry.path().extension() != ".json") continue;
    const JsonParseResult prior = JsonValue::parse_file(entry.path().string());
    if (!prior.ok() || !prior.value->is_object()) continue;
    const JsonValue* hash = prior.value->find("config_hash");
    const JsonValue* prior_quick = prior.value->find("quick");
    const bool same_hash =
        hash != nullptr && hash->is_string() && hash->as_string() == config_hash;
    const bool same_quick = prior_quick != nullptr && prior_quick->is_bool() &&
                            prior_quick->as_bool() == quick;
    if (!same_hash || !same_quick) {
      out.compatible = false;
      out.message = fname + std::string(" records a different configuration") +
                    (same_hash ? " (--quick mode differs)" : " (config hash differs)");
      return out;
    }
    const JsonValue* cells = prior.value->find("cells");
    if (cells == nullptr || !cells->is_array()) continue;
    for (const auto& cell : cells->items()) {
      if (!cell->is_object()) continue;
      const JsonValue* id = cell->find("id");
      const JsonValue* fnv = cell->find("csv_fnv");
      if (id != nullptr && id->is_string() && fnv != nullptr && fnv->is_string() &&
          !fnv->as_string().empty())
        out.cell_csv_fnv.emplace(id->as_string(), fnv->as_string());
    }
  }
  return out;
}

SuiteLoadResult parse_suite(const JsonValue& root, const std::string& source) {
  SuiteLoadResult out;
  auto fail = [&](const std::string& msg) {
    out.error = source + ": " + msg;
    return out;
  };
  if (!root.is_object()) return fail("manifest must be a JSON object");

  const JsonValue* name = root.find("name");
  if (name == nullptr || !name->is_string() || name->as_string().empty())
    return fail("\"name\" (non-empty string) is required");
  out.spec.name = name->as_string();

  if (const JsonValue* desc = root.find("description")) {
    if (!desc->is_string()) return fail("\"description\" must be a string");
    out.spec.description = desc->as_string();
  }
  if (const JsonValue* dir = root.find("output_dir")) {
    if (!dir->is_string()) return fail("\"output_dir\" must be a string");
    out.spec.output_dir = dir->as_string();
  }
  if (out.spec.output_dir.empty()) out.spec.output_dir = "out/" + out.spec.name;

  const BenchRegistry& registry = BenchRegistry::instance();

  if (const JsonValue* defaults = root.find("defaults")) {
    if (!defaults->is_object()) return fail("\"defaults\" must be an object");
    for (const auto& [key, value] : defaults->members()) {
      if (reserved_flags().count(key))
        return fail("defaults: --" + key + " is controlled by the suite runner");
      std::string text;
      if (!scalar_flag_text(*value, &text))
        return fail("defaults: \"" + key + "\" must be a scalar");
      out.spec.defaults.emplace_back(key, std::move(text));
    }
  }

  const JsonValue* cells = root.find("cells");
  if (cells == nullptr || !cells->is_array() || cells->items().empty())
    return fail("\"cells\" (non-empty array) is required");
  for (const auto& item : cells->items()) {
    if (!item->is_object()) return fail("cells: every entry must be an object");
    SuiteSpec::Block block;
    const JsonValue* bench = item->find("bench");
    if (bench == nullptr || !bench->is_string())
      return fail("cells: \"bench\" (string) is required in every entry");
    block.bench = bench->as_string();
    const BenchSpec* bench_spec = registry.find(block.bench);
    if (bench_spec == nullptr) {
      std::string known;
      for (const auto& n : registry.names()) known += " " + n;
      std::string error = "unknown bench \"" + block.bench + "\"";
      const std::string hint = closest_match(block.bench, registry.names());
      if (!hint.empty()) error += " (did you mean \"" + hint + "\"?)";
      return fail(error + "; known benches:" + known);
    }
    if (const JsonValue* grid = item->find("grid")) {
      if (!grid->is_object()) return fail(block.bench + ": \"grid\" must be an object");
      for (const auto& [axis, values] : grid->members()) {
        if (!flag_allowed(*bench_spec, axis))
          return fail(block.bench + ": grid axis \"" + axis +
                      "\" is not a flag of this bench (seeds have their own \"seeds\" key; "
                      "--seed/--csv/--quiet/--threads/--quick are runner-controlled)");
        std::vector<std::string> texts;
        if (values->is_array()) {
          if (values->items().empty())
            return fail(block.bench + ": grid axis \"" + axis + "\" must not be empty");
          for (const auto& v : values->items()) {
            std::string text;
            if (!scalar_flag_text(*v, &text))
              return fail(block.bench + ": grid axis \"" + axis + "\" has a non-scalar value");
            texts.push_back(std::move(text));
          }
        } else {
          std::string text;
          if (!scalar_flag_text(*values, &text))
            return fail(block.bench + ": grid axis \"" + axis + "\" has a non-scalar value");
          texts.push_back(std::move(text));
        }
        block.grid.emplace_back(axis, std::move(texts));
      }
    }
    if (const JsonValue* seeds = item->find("seeds")) {
      if (!seeds->is_array() || seeds->items().empty())
        return fail(block.bench + ": \"seeds\" must be a non-empty array of integers");
      for (const auto& s : seeds->items()) {
        // Parse the RAW literal so 1.9 (fractional), -1, and values the
        // bench-side --seed parse could not hold are rejected here instead
        // of truncating through double or failing the cell at run time.
        std::uint64_t seed = 0;
        if (!s->is_number() || !parse_seed(s->raw_number(), &seed))
          return fail(block.bench + ": \"seeds\" must contain integers in [0, 2^63), got " +
                      (s->is_number() ? s->raw_number() : "a non-number"));
        block.seeds.push_back(seed);
      }
    }
    // No "seeds" key: the block runs at the bench's own canonical base
    // seeds (no --seed is passed), reproducing the default tables exactly.
    out.spec.blocks.push_back(std::move(block));
  }

  // Every suite-wide default must mean something somewhere, or it is a typo.
  for (const auto& [key, value] : out.spec.defaults) {
    bool used = is_standard_flag(key);
    for (const auto& block : out.spec.blocks)
      used = used || bench_declares(*registry.find(block.bench), key);
    if (!used) return fail("defaults: \"" + key + "\" is not a flag of any bench in this suite");
  }

  // Expansion must be collision-free: two cells with one CSV path would
  // silently halve the intended coverage. Distinguish true duplicates from
  // distinct cells whose values merely sanitize to the same id, so the
  // error points at the actual problem.
  const std::vector<SuiteCell> expanded = expand_suite(out.spec);
  std::map<std::string, std::string> seen;  // id -> canonical cell text
  for (const SuiteCell& cell : expanded) {
    std::string canonical = cell.bench;
    for (const auto& [key, value] : cell.flags) canonical += "\x1f" + key + "=" + value;
    canonical += "\x1f" + (cell.has_seed ? std::to_string(cell.seed) : "default");
    const auto [it, inserted] = seen.emplace(cell.id, canonical);
    if (!inserted)
      return fail(it->second == canonical
                      ? "duplicate cell \"" + cell.id +
                            "\" — two blocks expand to the same (bench, params, seed)"
                      : "cell id collision: two DIFFERENT cells sanitize to \"" + cell.id +
                            "\" (values differing only in non-[A-Za-z0-9._-] characters); "
                            "rename the values to differ in filesystem-safe characters");
  }

  // Benches with semantic cell validation (the scenario preset's
  // consumed-param rule, the workload bench's component schemas) veto bad
  // cells last — an unconsumed parameter or unknown component in a manifest
  // axis fails the whole load with a message naming the key, BEFORE anything
  // runs.
  for (const SuiteCell& cell : expanded) {
    const BenchSpec& bench_spec = *registry.find(cell.bench);
    if (bench_spec.validate_cell == nullptr) continue;
    const std::string cell_error = bench_spec.validate_cell(cell.flags);
    if (!cell_error.empty()) return fail("cell \"" + cell.id + "\": " + cell_error);
  }
  return out;
}

SuiteLoadResult load_suite(const std::string& path) {
  const JsonParseResult parsed = JsonValue::parse_file(path);
  if (!parsed.ok()) {
    SuiteLoadResult out;
    out.error = parsed.error;
    return out;
  }
  SuiteLoadResult out = parse_suite(*parsed.value, path);
  if (out.ok()) {
    const std::string dir = std::filesystem::path(path).parent_path().string();
    out.spec.source_dir = dir.empty() ? "." : dir;  // bare filename = CWD
  }
  return out;
}

std::vector<SuiteCell> expand_suite(const SuiteSpec& spec) {
  const BenchRegistry& registry = BenchRegistry::instance();
  std::vector<SuiteCell> cells;
  for (const auto& block : spec.blocks) {
    const BenchSpec& bench_spec = registry.at(block.bench);
    // Suite-wide defaults apply where they mean something for this bench.
    std::vector<std::pair<std::string, std::string>> base;
    for (const auto& def : spec.defaults)
      if (flag_allowed(bench_spec, def.first)) base.push_back(def);

    // Row-major over the axes as written (rightmost fastest), like nested
    // loops in the manifest's own order.
    std::vector<std::size_t> cursor(block.grid.size(), 0);
    while (true) {
      std::vector<std::pair<std::string, std::string>> flags = base;
      std::string id = sanitize_for_path(block.bench);
      for (std::size_t a = 0; a < block.grid.size(); ++a) {
        const auto& [axis, values] = block.grid[a];
        flags.emplace_back(axis, values[cursor[a]]);
        id += "__" + sanitize_for_path(axis) + "-" + sanitize_for_path(values[cursor[a]]);
      }
      const auto emit = [&](bool has_seed, std::uint64_t seed) {
        SuiteCell cell;
        cell.index = cells.size();
        cell.bench = block.bench;
        cell.flags = flags;
        cell.has_seed = has_seed;
        cell.seed = seed;
        cell.id = id + "__seed-" + (has_seed ? std::to_string(seed) : "default");
        cells.push_back(std::move(cell));
      };
      if (block.seeds.empty())
        emit(false, 0);
      else
        for (const std::uint64_t seed : block.seeds) emit(true, seed);
      // Advance the rightmost axis; carry leftwards; done when all wrap.
      bool wrapped = true;
      for (std::size_t a = block.grid.size(); a-- > 0;) {
        if (++cursor[a] < block.grid[a].second.size()) {
          wrapped = false;
          break;
        }
        cursor[a] = 0;
      }
      if (wrapped) break;
    }
  }
  return cells;
}

bool parse_shard(const std::string& text, ShardSpec* out) {
  const auto slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) return false;
  for (std::size_t i = 0; i < text.size(); ++i)
    if (i != slash && (text[i] < '0' || text[i] > '9')) return false;
  // Bound the digit count before converting so absurd inputs (including
  // anything that would overflow long long or truncate in the int cast)
  // are rejected instead of silently running the wrong cell subset.
  if (slash > 9 || text.size() - slash - 1 > 9) return false;
  const long index = std::strtol(text.substr(0, slash).c_str(), nullptr, 10);
  const long count = std::strtol(text.substr(slash + 1).c_str(), nullptr, 10);
  if (index < 1 || count < 1 || index > count) return false;
  out->index = static_cast<int>(index);
  out->count = static_cast<int>(count);
  return true;
}

bool cell_in_shard(std::size_t cell_index, const ShardSpec& shard) {
  return cell_index % static_cast<std::size_t>(shard.count) ==
         static_cast<std::size_t>(shard.index - 1);
}

std::string suite_config_hash(const std::vector<SuiteCell>& cells) {
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  auto mix = [&hash](const std::string& text) {
    for (const char c : text) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;  // FNV-1a prime
    }
    hash ^= 0xFFu;  // field separator
    hash *= 1099511628211ull;
  };
  for (const SuiteCell& cell : cells) {
    mix(cell.bench);
    for (const auto& [key, value] : cell.flags) {
      mix(key);
      mix(value);
    }
    mix(cell.has_seed ? std::to_string(cell.seed) : "default");
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(hash));
  return buf;
}

int run_suite(const SuiteSpec& spec, const SuiteRunOptions& opts, std::ostream& log) {
  namespace fs = std::filesystem;
  const std::vector<SuiteCell> cells = expand_suite(spec);
  const std::string outdir = opts.output_dir.empty() ? spec.output_dir : opts.output_dir;
  const std::string config_hash = suite_config_hash(cells);

  log << "suite " << spec.name << ": " << cells.size() << " cells";
  if (opts.shard.count > 1)
    log << " (shard " << opts.shard.index << "/" << opts.shard.count << ")";
  log << " -> " << outdir << "  [config " << config_hash << "]\n";

  struct CellOutcome {
    const SuiteCell* cell;
    /// "pending" | "ok" | "hit" (cache) | "cached" (resume) | "failed" |
    /// "shard" | "planned"
    std::string status;
    double seconds = 0.0;
    std::string csv_fnv;  ///< 16-hex checksum of the cell's CSV, when known
  };
  std::vector<CellOutcome> outcomes;
  outcomes.reserve(cells.size());
  for (const SuiteCell& cell : cells)
    outcomes.push_back(
        {&cell, cell_in_shard(cell.index, opts.shard) ? "pending" : "shard", 0.0, ""});

  std::string manifest_path = outdir + "/manifest.json";
  if (opts.shard.count > 1)
    manifest_path = outdir + "/manifest." + std::to_string(opts.shard.index) + "of" +
                    std::to_string(opts.shard.count) + ".json";
  const std::string started = utc_now();
  const std::string git_sha = git_head_sha(spec.source_dir);
  // Run manifest: provenance for the CSVs sitting next to it. Written once
  // up front (all in-shard cells "pending") so even a killed run leaves a
  // record of what configuration produced the outputs, and rewritten with
  // final statuses at the end. Sharded runs write distinct manifests (the
  // CSV set is the part that must be bit-identical to an unsharded run;
  // manifests record each shard's view). Each finished cell records its CSV
  // checksum (csv_fnv) so resume and `cr suite merge` can validate outputs
  // instead of trusting any same-named file.
  const auto write_manifest = [&](double wall) {
    std::ofstream manifest(manifest_path);
    manifest << "{\n"
             << "  \"suite\": \"" << json_escape(spec.name) << "\",\n"
             << "  \"description\": \"" << json_escape(spec.description) << "\",\n"
             << "  \"git_sha\": \"" << json_escape(git_sha) << "\",\n"
             << "  \"config_hash\": \"" << config_hash << "\",\n"
             << "  \"shard\": \"" << opts.shard.index << "/" << opts.shard.count << "\",\n"
             << "  \"quick\": " << (opts.quick ? "true" : "false") << ",\n"
             << "  \"started_utc\": \"" << started << "\",\n"
             << "  \"finished_utc\": \"" << utc_now() << "\",\n"
             << "  \"wall_seconds\": " << format_double(wall, 3) << ",\n"
             << "  \"cells\": [\n";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const CellOutcome& outcome = outcomes[i];
      manifest << "    {\"id\": \"" << json_escape(outcome.cell->id) << "\", \"bench\": \""
               << json_escape(outcome.cell->bench) << "\", \"seed\": "
               << (outcome.cell->has_seed ? std::to_string(outcome.cell->seed) : "null")
               << ", \"status\": \"" << outcome.status << "\", \"seconds\": "
               << format_double(outcome.seconds, 3) << ", \"csv_fnv\": "
               << (outcome.csv_fnv.empty() ? "null" : "\"" + outcome.csv_fnv + "\"") << "}"
               << (i + 1 < outcomes.size() ? "," : "") << "\n";
    }
    manifest << "  ]\n}\n";
  };

  PriorOutputs prior;
  if (!opts.dry_run) {
    fs::create_directories(outdir);
    // Stale-output guard: any manifest already in outdir must describe the
    // same expansion (config_hash) and the same --quick mode. Otherwise the
    // CSVs sitting there came from a DIFFERENT configuration — resuming
    // over them would silently mix old and new results (and restamp the
    // new config_hash over the old data). --force reruns every cell, so it
    // may proceed regardless.
    if (!opts.force) {
      prior = scan_prior_outputs(outdir, config_hash, opts.quick);
      if (!prior.compatible) {
        log << "suite " << spec.name << ": " << outdir << "/" << prior.message
            << " — refusing to resume over stale outputs; rerun with --force or a fresh "
               "--out\n";
        return 1;
      }
    }
    write_manifest(0.0);
  }
  CellCache cache(opts.cache_dir);
  const bool use_cache = !opts.cache_dir.empty() && !opts.dry_run;
  CellRunOptions cell_opts;
  cell_opts.out_dir = outdir;
  cell_opts.quick = opts.quick;
  cell_opts.threads = opts.threads;
  cell_opts.cache = use_cache ? &cache : nullptr;
  cell_opts.config_hash = config_hash;
  cell_opts.git_sha = git_sha;

  const auto suite_t0 = std::chrono::steady_clock::now();
  int failures = 0;
  std::size_t ran = 0, resumed = 0, hits = 0;

  for (const SuiteCell& cell : cells) {
    CellOutcome& outcome = outcomes[cell.index];
    const std::string csv_path = outdir + "/" + cell.id + ".csv";
    if (!cell_in_shard(cell.index, opts.shard)) continue;

    if (opts.dry_run) {
      outcome.status = "planned";
      log << "  [" << cell.index + 1 << "/" << cells.size() << "] " << cell.id << ": "
          << cell.bench;
      for (const auto& [key, value] : cell.flags) log << " --" << key << "=" << value;
      if (cell.has_seed) log << " --seed=" << cell.seed;
      if (opts.quick) log << " --quick";
      if (opts.threads > 0) log << " --threads=" << opts.threads;
      log << " --quiet --csv=" << csv_path << "\n";
      continue;
    }

    if (!opts.force && fs::exists(csv_path)) {
      // Resume path: do not trust a same-named CSV blindly. When a prior
      // manifest recorded this cell's checksum, the bytes on disk must
      // still match it — a truncated or hand-edited file reruns instead of
      // poisoning the result set.
      const std::string on_disk = file_fnv16(csv_path);
      const auto recorded = prior.cell_csv_fnv.find(cell.id);
      const bool valid =
          !on_disk.empty() &&
          (recorded == prior.cell_csv_fnv.end() || recorded->second == on_disk);
      if (valid) {
        outcome.status = "cached";
        outcome.csv_fnv = on_disk;
        ++resumed;
        log << "  [" << cell.index + 1 << "/" << cells.size() << "] " << cell.id
            << ": cached\n";
        continue;
      }
      log << "  [" << cell.index + 1 << "/" << cells.size() << "] " << cell.id
          << ": existing CSV fails its recorded checksum — rerunning\n";
      std::error_code ec;
      fs::remove(csv_path, ec);
    }

    const CellRunResult result = run_cell(cell, cell_opts);
    if (!result.cache_note.empty())
      log << "  [cache] " << result.cache_note << "\n";
    outcome.status = result.status;
    outcome.seconds = result.seconds;
    outcome.csv_fnv = result.csv_fnv;
    if (result.status == "failed") {
      ++failures;
    } else if (result.status == "hit") {
      ++hits;
    } else {
      ++ran;
    }
    log << "  [" << cell.index + 1 << "/" << cells.size() << "] " << cell.id << ": "
        << outcome.status << " (" << format_double(outcome.seconds, 2) << "s" << ")\n";
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - suite_t0).count();
  if (opts.dry_run) {
    log << "dry run: nothing executed\n";
    return 0;
  }
  write_manifest(wall);

  log << "suite " << spec.name << ": " << ran << " ran, " << resumed << " cached, " << hits
      << " cache hits, " << failures << " failed in " << format_double(wall, 2) << "s"
      << "; manifest " << manifest_path << "\n";
  if (use_cache)
    log << "cache " << opts.cache_dir << ": " << hits << " hits, " << ran + failures
        << " misses\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace cr
