/// \file
/// BenchRegistry — the third name-keyed registry (after EngineRegistry and
/// ScenarioRegistry): every CLI experiment registers its name, paper claim,
/// flag declarations and CSV column schema here, and the `cr` tool derives
/// everything else from it:
///
///   * `cr bench <name> [flags]` dispatches to the registered run function
///     (the legacy bench_<name> binaries are thin wrappers over the same
///     entries);
///   * `cr suite run <manifest>` validates manifest cells against the
///     declared flags before running anything;
///   * `cr list --md` renders docs/EXPERIMENTS.md from these specs, and the
///     `docs`-labelled CTest entry diffs the committed file against that
///     output — so the registry is the single source of truth and the docs
///     cannot drift from the code.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "exp/bench_driver.hpp"

namespace cr {

/// Everything `cr` needs to run and document one experiment.
struct BenchSpec {
  std::string name;     ///< subcommand, e.g. "latency"
  std::string id;       ///< experiment number, e.g. "E9"
  std::string summary;  ///< one-line description (--help, `cr list`)
  std::string claim;    ///< paper claim / section the bench exercises
  std::string outcome;  ///< expected qualitative outcome (docs index table)
  /// Bench-specific flags beyond the uniform BenchDriver set.
  std::vector<BenchFlag> flags;
  /// Column schema of the --csv output (machine-readable names; the
  /// rendered table may use prettier display headers).
  std::vector<std::string> csv_columns;
  /// What one CSV row is (docs: e.g. "one (regime, t, burst) cell,
  /// means over reps").
  std::string csv_row_desc;
  /// Entry point: argv[0] is a display name; flags follow. Returns the
  /// process exit code.
  int (*run)(int argc, const char* const* argv);

  /// Optional: accept flags whose names are dynamic (the workload bench's
  /// `arrival.<param>`/`jammer.<param>` keys) — consulted by the suite
  /// validator in addition to `flags`, and forwarded as
  /// BenchInfo::dynamic_flag by the bench itself.
  bool (*allows_flag)(const std::string& name) = nullptr;

  /// Optional: semantic validation of one fully-expanded suite cell (the
  /// flag list the cell would pass, minus runner-controlled flags). Returns
  /// "" when valid, else a message naming the offending key. Runs at
  /// manifest-parse time, so a bad cell fails BEFORE anything executes.
  std::string (*validate_cell)(const std::vector<std::pair<std::string, std::string>>& flags) =
      nullptr;

  /// Name of the legacy standalone binary ("bench_" + name).
  std::string legacy_binary() const { return "bench_" + name; }
};

/// Name-keyed registry of all CLI benches. Seeded with the 12 paper
/// experiments plus the generic "scenario" runner; register_bench() is the
/// extension point. Registration is not thread-safe — register before
/// fanning out runs.
class BenchRegistry {
 public:
  static BenchRegistry& instance();

  /// nullptr when unknown.
  const BenchSpec* find(const std::string& name) const;
  /// Exits 2 with the known-name list on unknown names (CLI contract).
  const BenchSpec& at(const std::string& name) const;

  std::vector<std::string> names() const;
  const std::vector<BenchSpec>& entries() const { return entries_; }

  void register_bench(BenchSpec spec);

  /// Dispatch to `at(name).run` with a synthetic argv whose argv[0] names
  /// the subcommand ("cr bench <name>"); `args` are the remaining flags.
  int run(const std::string& name, const std::vector<std::string>& args) const;

 private:
  BenchRegistry();
  std::vector<BenchSpec> entries_;
};

}  // namespace cr
