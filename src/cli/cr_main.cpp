// `cr` — the single entry point for every experiment in this repo.
//
//   cr list [--md]                     registry listing / docs/EXPERIMENTS.md
//   cr bench <name> [flags…]           one experiment (cr bench <name> --help)
//   cr perf [flags…]                   engine throughput snapshot (alias for
//                                      `cr bench perf`)
//   cr stream [flags…]                 streaming service mode (alias for
//                                      `cr bench stream`)
//   cr suite run <manifest> [flags…]   manifest-driven grid of cells
//   cr suite expand <manifest> […]     print the cell plan, run nothing
//   cr help                            this text
//
// Subsumes the 12 former bench_* binaries (still built as thin wrappers —
// see the migration table in README.md) behind the BenchRegistry, so new
// experiments, their docs and their suite cells all come from one
// registration.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "cli/bench_registry.hpp"
#include "cli/docs_gen.hpp"
#include "cli/suite.hpp"
#include "common/cli.hpp"
#include "verify/verify.hpp"

namespace {

int usage(int exit_code) {
  std::FILE* os = exit_code == 0 ? stdout : stderr;
  std::fprintf(os,
               "cr — contention-resolution experiment tool (conf_podc_ChenJZ21)\n"
               "\n"
               "usage:\n"
               "  cr list [--md]                      list benches/scenarios/engines\n"
               "                                      (--md: emit docs/EXPERIMENTS.md)\n"
               "  cr bench <name> [flags...]          run one experiment\n"
               "                                      (cr bench <name> --help for flags)\n"
               "  cr perf [flags...]                  engine throughput snapshot\n"
               "                                      (alias for cr bench perf)\n"
               "  cr stream [flags...]                streaming service mode: ring-fed\n"
               "                                      arrivals, windowed JSONL, bit-exact\n"
               "                                      checkpoint/restore (alias for\n"
               "                                      cr bench stream)\n"
               "  cr suite run <manifest> [flags...]  run a suite manifest\n"
               "      --out=DIR      override the manifest's output_dir\n"
               "      --quick        append --quick to every cell\n"
               "      --shard=i/n    run only cells with index %% n == i-1 (1-based)\n"
               "      --threads=N    per-cell replication workers (default: all cores)\n"
               "      --force        rerun cells whose CSV already exists\n"
               "  cr suite expand <manifest> [--shard=i/n] [--quick] [--out=DIR]\n"
               "                                      print the cell plan, run nothing\n"
               "  cr verify <out_dir> [flags...]      check every registered paper claim\n"
               "                                      against a suite run's CSVs and write\n"
               "                                      <out_dir>/verify_report.json\n"
               "      --quick        evidence came from a --quick run (quick cells/bounds)\n"
               "      --report=PATH  write the report JSON to PATH instead\n"
               "  cr version                          git SHA, build type, C++ standard\n"
               "  cr help                             this text\n");
  return exit_code;
}

/// `cr version` — provenance for bug reports: the git SHA of the repository
/// at the CWD (same `git -C` path the suite run-manifests use), the CMake
/// build type baked in at compile time, and the C++ standard.
int run_version() {
#ifndef CR_BUILD_TYPE
#define CR_BUILD_TYPE "unspecified"
#endif
  std::printf("cr (conf_podc_ChenJZ21 experiment tool)\n");
  std::printf("  git_sha:  %s (repository at the current directory)\n",
              cr::git_head_sha(".").c_str());
  std::printf("  build:    %s\n", CR_BUILD_TYPE[0] == '\0' ? "unspecified" : CR_BUILD_TYPE);
  std::printf("  C++:      %ld\n", static_cast<long>(__cplusplus));
  return 0;
}

int run_list(int argc, const char* const* argv) {
  const cr::Cli cli(argc, argv);
  cli.declare({"md"});
  cli.reject_unknown();
  if (cli.get_bool("md", false))
    std::cout << cr::experiments_markdown();
  else
    std::cout << cr::registry_listing_text();
  return 0;
}

int run_suite_cmd(const std::string& sub, int argc, const char* const* argv) {
  const cr::Cli cli(argc, argv);
  cli.declare({"out", "quick", "shard", "threads", "force"});
  cli.reject_unknown();
  cr::SuiteRunOptions opts;
  // Cli's `--name value` rule means a bare boolean written BEFORE the
  // manifest path swallows the path as its value (`cr suite run --force
  // suites/x.json`). A boolean flag carrying a non-boolean value is exactly
  // that case: reinterpret the value as the manifest path and the flag as
  // set.
  std::vector<std::string> paths = cli.positional();
  const auto take_bool = [&](const char* name) {
    const std::string value = cli.get_string(name, "");
    if (value.empty()) return false;
    if (value == "true" || value == "1" || value == "yes") return true;
    if (value == "false" || value == "0" || value == "no") return false;
    paths.push_back(value);
    return true;
  };
  opts.quick = take_bool("quick");
  opts.force = take_bool("force");
  if (paths.size() != 1) {
    std::fprintf(stderr, "cr suite %s: exactly one manifest path is required\n", sub.c_str());
    return 2;
  }
  const cr::SuiteLoadResult loaded = cr::load_suite(paths[0]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cr suite %s: %s\n", sub.c_str(), loaded.error.c_str());
    return 2;
  }
  opts.output_dir = cli.get_string("out", "");
  opts.threads = cli.get_int("threads", 0);
  opts.dry_run = sub == "expand";
  const std::string shard = cli.get_string("shard", "");
  if (!shard.empty() && !cr::parse_shard(shard, &opts.shard)) {
    std::fprintf(stderr, "cr suite %s: --shard expects i/n with 1 <= i <= n, got \"%s\"\n",
                 sub.c_str(), shard.c_str());
    return 2;
  }
  if (cli.has("threads") && opts.threads < 1) {
    std::fprintf(stderr, "cr suite %s: --threads must be >= 1\n", sub.c_str());
    return 2;
  }
  return cr::run_suite(loaded.spec, opts, std::cout);
}

int run_verify_cmd(int argc, const char* const* argv) {
  const cr::Cli cli(argc, argv);
  cli.declare({"quick", "report"});
  cli.reject_unknown();
  cr::verify::VerifyOptions opts;
  // Same bare-boolean-before-positional fixup as `cr suite run`: `cr verify
  // --quick out/quick` parses "out/quick" as --quick's value.
  std::vector<std::string> paths = cli.positional();
  const std::string quick_value = cli.get_string("quick", "");
  if (!quick_value.empty()) {
    if (quick_value == "true" || quick_value == "1" || quick_value == "yes") {
      opts.quick = true;
    } else if (quick_value == "false" || quick_value == "0" || quick_value == "no") {
      opts.quick = false;
    } else {
      paths.push_back(quick_value);
      opts.quick = true;
    }
  }
  if (paths.size() != 1) {
    std::fprintf(stderr, "cr verify: exactly one suite output directory is required\n");
    return 2;
  }
  opts.out_dir = paths[0];
  opts.report_path = cli.get_string("report", "");
  return cr::verify::run_verify(opts, std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(2);
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") return usage(0);
  if (cmd == "version" || cmd == "--version") return run_version();
  // Cli treats argv[0] as the program name, so hand each subcommand an argv
  // that starts at its own token ("list" / "run" / "expand").
  if (cmd == "list") return run_list(argc - 1, argv + 1);
  if (cmd == "bench") {
    if (argc < 3) {
      std::fprintf(stderr, "cr bench: a bench name is required; known:");
      for (const auto& name : cr::BenchRegistry::instance().names())
        std::fprintf(stderr, " %s", name.c_str());
      std::fprintf(stderr, "\n");
      return 2;
    }
    const std::vector<std::string> args(argv + 3, argv + argc);
    return cr::BenchRegistry::instance().run(argv[2], args);
  }
  if (cmd == "perf") {
    const std::vector<std::string> args(argv + 2, argv + argc);
    return cr::BenchRegistry::instance().run("perf", args);
  }
  if (cmd == "stream") {
    const std::vector<std::string> args(argv + 2, argv + argc);
    return cr::BenchRegistry::instance().run("stream", args);
  }
  if (cmd == "verify") return run_verify_cmd(argc - 1, argv + 1);
  if (cmd == "suite") {
    if (argc < 3 || (std::string(argv[2]) != "run" && std::string(argv[2]) != "expand")) {
      std::fprintf(stderr, "cr suite: expected \"run\" or \"expand\"\n");
      return 2;
    }
    return run_suite_cmd(argv[2], argc - 2, argv + 2);
  }
  std::fprintf(stderr, "cr: unknown command \"%s\"\n\n", cmd.c_str());
  return usage(2);
}
