// `cr` — the single entry point for every experiment in this repo.
//
//   cr list [--md]                     registry listing / docs/EXPERIMENTS.md
//   cr bench <name> [flags…]           one experiment (cr bench <name> --help)
//   cr perf [flags…]                   engine throughput snapshot (alias for
//                                      `cr bench perf`)
//   cr stream [flags…]                 streaming service mode (alias for
//                                      `cr bench stream`)
//   cr suite run <manifest> [flags…]   manifest-driven grid of cells
//   cr suite expand <manifest> […]     print the cell plan, run nothing
//   cr help                            this text
//
// Subsumes the 12 former bench_* binaries (still built as thin wrappers —
// see the migration table in README.md) behind the BenchRegistry, so new
// experiments, their docs and their suite cells all come from one
// registration.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "cli/bench_registry.hpp"
#include "cli/docs_gen.hpp"
#include "cli/suite.hpp"
#include "common/cli.hpp"
#include "common/source_digest.hpp"
#include "dist/cell_cache.hpp"
#include "dist/merge.hpp"
#include "dist/worker.hpp"
#include "verify/verify.hpp"

namespace {

int usage(int exit_code) {
  std::FILE* os = exit_code == 0 ? stdout : stderr;
  std::fprintf(os,
               "cr — contention-resolution experiment tool (conf_podc_ChenJZ21)\n"
               "\n"
               "usage:\n"
               "  cr list [--md]                      list benches/scenarios/engines\n"
               "                                      (--md: emit docs/EXPERIMENTS.md)\n"
               "  cr bench <name> [flags...]          run one experiment\n"
               "                                      (cr bench <name> --help for flags)\n"
               "  cr perf [flags...]                  engine throughput snapshot\n"
               "                                      (alias for cr bench perf)\n"
               "  cr stream [flags...]                streaming service mode: ring-fed\n"
               "                                      arrivals, windowed JSONL, bit-exact\n"
               "                                      checkpoint/restore (alias for\n"
               "                                      cr bench stream)\n"
               "  cr suite run <manifest> [flags...]  run a suite manifest\n"
               "      --out=DIR      override the manifest's output_dir\n"
               "      --quick        append --quick to every cell\n"
               "      --shard=i/n    run only cells with index %% n == i-1 (1-based)\n"
               "      --threads=N    per-cell replication workers (default: all cores)\n"
               "      --force        rerun cells whose CSV already exists\n"
               "      --cache=DIR    content-addressed CellCache: restore finished\n"
               "                     cells byte-identically instead of recomputing\n"
               "  cr suite expand <manifest> [--shard=i/n] [--quick] [--out=DIR]\n"
               "                                      print the cell plan, run nothing\n"
               "  cr suite work <manifest> [flags...] cooperative worker: claim cells via\n"
               "                                      atomic lease files so N concurrent\n"
               "                                      workers drain one suite together\n"
               "      --out=DIR --cache=DIR --quick --threads=N as for run\n"
               "      --stale_after=SECS  treat foreign-host leases older than SECS as\n"
               "                     dead (same-host dead PIDs are always reclaimed)\n"
               "  cr suite merge <manifest...> [--out=PATH]\n"
               "                                      union shard/worker run manifests\n"
               "                                      (matching config required; cell\n"
               "                                      checksum conflicts are hard errors)\n"
               "                                      into the manifest cr verify reads\n"
               "  cr cache stats <DIR>                CellCache entry/byte/corruption counts\n"
               "  cr cache gc <DIR> [--max_bytes=N]   evict oldest entries past the byte\n"
               "                                      budget (default 256 MiB); corrupt\n"
               "                                      entries always removed\n"
               "  cr verify <out_dir> [flags...]      check every registered paper claim\n"
               "                                      against a suite run's CSVs and write\n"
               "                                      <out_dir>/verify_report.json\n"
               "      --quick        evidence came from a --quick run (quick cells/bounds)\n"
               "      --report=PATH  write the report JSON to PATH instead\n"
               "  cr version [--json]                 git SHA, build type, source digest\n"
               "                                      (--json: machine-readable, incl. the\n"
               "                                      CellCache source-digest key component)\n"
               "  cr help                             this text\n");
  return exit_code;
}

#ifndef CR_BUILD_TYPE
#define CR_BUILD_TYPE "unspecified"
#endif

/// `cr version` — provenance for bug reports and cache keys: the git SHA of
/// the repository at the CWD (same `git -C` path the suite run-manifests
/// use), the CMake build type baked in at compile time, the C++ standard,
/// and the source digest (the running binary's FNV-1a — the code component
/// of every CellCache key). --json emits the same facts as one JSON object.
int run_version(int argc, const char* const* argv) {
  const cr::Cli cli(argc, argv);
  cli.declare({"json"});
  cli.reject_unknown();
  const char* build = CR_BUILD_TYPE[0] == '\0' ? "unspecified" : CR_BUILD_TYPE;
  if (cli.get_bool("json", false)) {
    std::fputs(cr::version_json(cr::git_head_sha("."), build).c_str(), stdout);
    return 0;
  }
  std::printf("cr (conf_podc_ChenJZ21 experiment tool)\n");
  std::printf("  git_sha:        %s (repository at the current directory)\n",
              cr::git_head_sha(".").c_str());
  std::printf("  build:          %s\n", build);
  std::printf("  C++:            %ld\n", static_cast<long>(__cplusplus));
  std::printf("  source_digest:  %s (CellCache key component)\n",
              cr::source_digest().c_str());
  return 0;
}

int run_list(int argc, const char* const* argv) {
  const cr::Cli cli(argc, argv);
  cli.declare({"md"});
  cli.reject_unknown();
  if (cli.get_bool("md", false))
    std::cout << cr::experiments_markdown();
  else
    std::cout << cr::registry_listing_text();
  return 0;
}

int run_suite_cmd(const std::string& sub, int argc, const char* const* argv) {
  const bool is_work = sub == "work";
  const cr::Cli cli(argc, argv);
  if (is_work)
    cli.declare({"out", "quick", "threads", "cache", "stale_after"});
  else
    cli.declare({"out", "quick", "shard", "threads", "force", "cache"});
  cli.reject_unknown();
  cr::SuiteRunOptions opts;
  // Cli's `--name value` rule means a bare boolean written BEFORE the
  // manifest path swallows the path as its value (`cr suite run --force
  // suites/x.json`). A boolean flag carrying a non-boolean value is exactly
  // that case: reinterpret the value as the manifest path and the flag as
  // set.
  std::vector<std::string> paths = cli.positional();
  const auto take_bool = [&](const char* name) {
    const std::string value = cli.get_string(name, "");
    if (value.empty()) return false;
    if (value == "true" || value == "1" || value == "yes") return true;
    if (value == "false" || value == "0" || value == "no") return false;
    paths.push_back(value);
    return true;
  };
  opts.quick = take_bool("quick");
  opts.force = !is_work && take_bool("force");
  if (paths.size() != 1) {
    std::fprintf(stderr, "cr suite %s: exactly one manifest path is required\n", sub.c_str());
    return 2;
  }
  const cr::SuiteLoadResult loaded = cr::load_suite(paths[0]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cr suite %s: %s\n", sub.c_str(), loaded.error.c_str());
    return 2;
  }
  opts.output_dir = cli.get_string("out", "");
  opts.threads = cli.get_int("threads", 0);
  opts.cache_dir = cli.get_string("cache", "");
  opts.dry_run = sub == "expand";
  if (cli.has("threads") && opts.threads < 1) {
    std::fprintf(stderr, "cr suite %s: --threads must be >= 1\n", sub.c_str());
    return 2;
  }
  if (is_work) {
    cr::WorkerOptions worker;
    worker.output_dir = opts.output_dir;
    worker.cache_dir = opts.cache_dir;
    worker.quick = opts.quick;
    worker.threads = opts.threads;
    worker.stale_after_seconds = cli.get_double("stale_after", 0.0);
    if (worker.stale_after_seconds < 0.0) {
      std::fprintf(stderr, "cr suite work: --stale_after must be >= 0\n");
      return 2;
    }
    return cr::run_worker(loaded.spec, worker, std::cout);
  }
  const std::string shard = cli.get_string("shard", "");
  if (!shard.empty() && !cr::parse_shard(shard, &opts.shard)) {
    std::fprintf(stderr, "cr suite %s: --shard expects i/n with 1 <= i <= n, got \"%s\"\n",
                 sub.c_str(), shard.c_str());
    return 2;
  }
  return cr::run_suite(loaded.spec, opts, std::cout);
}

int run_suite_merge_cmd(int argc, const char* const* argv) {
  const cr::Cli cli(argc, argv);
  cli.declare({"out"});
  cli.reject_unknown();
  cr::MergeOptions opts;
  opts.manifest_paths = cli.positional();
  opts.out_path = cli.get_string("out", "");
  if (opts.manifest_paths.empty()) {
    std::fprintf(stderr,
                 "cr suite merge: at least one run-manifest path is required "
                 "(e.g. out/q/manifest.1of2.json out/q/manifest.2of2.json)\n");
    return 2;
  }
  return cr::merge_manifests(opts, std::cout);
}

int run_cache_cmd(int argc, const char* const* argv) {
  if (argc < 2 ||
      (std::string(argv[1]) != "stats" && std::string(argv[1]) != "gc")) {
    std::fprintf(stderr, "cr cache: expected \"stats\" or \"gc\"\n");
    return 2;
  }
  const std::string sub = argv[1];
  const cr::Cli cli(argc - 1, argv + 1);
  cli.declare({"max_bytes"});
  cli.reject_unknown();
  if (cli.positional().size() != 1) {
    std::fprintf(stderr, "cr cache %s: exactly one cache directory is required\n",
                 sub.c_str());
    return 2;
  }
  cr::CellCache cache(cli.positional()[0]);
  if (sub == "gc") {
    const std::int64_t max_bytes = cli.get_int("max_bytes", 256ll << 20);
    if (max_bytes < 0) {
      std::fprintf(stderr, "cr cache gc: --max_bytes must be >= 0\n");
      return 2;
    }
    const std::size_t removed = cache.gc(static_cast<std::uint64_t>(max_bytes));
    std::printf("cr cache gc: removed %zu entries from %s\n", removed, cache.dir().c_str());
  }
  const cr::CacheStats stats = cache.stats();
  std::printf("cache %s\n", cache.dir().c_str());
  std::printf("  entries:      %zu\n", stats.entries);
  std::printf("  csv_bytes:    %llu\n", static_cast<unsigned long long>(stats.csv_bytes));
  std::printf("  total_bytes:  %llu\n", static_cast<unsigned long long>(stats.total_bytes));
  std::printf("  corrupt:      %zu\n", stats.corrupt);
  std::printf("  stray:        %zu\n", stats.stray);
  return 0;
}

int run_verify_cmd(int argc, const char* const* argv) {
  const cr::Cli cli(argc, argv);
  cli.declare({"quick", "report"});
  cli.reject_unknown();
  cr::verify::VerifyOptions opts;
  // Same bare-boolean-before-positional fixup as `cr suite run`: `cr verify
  // --quick out/quick` parses "out/quick" as --quick's value.
  std::vector<std::string> paths = cli.positional();
  const std::string quick_value = cli.get_string("quick", "");
  if (!quick_value.empty()) {
    if (quick_value == "true" || quick_value == "1" || quick_value == "yes") {
      opts.quick = true;
    } else if (quick_value == "false" || quick_value == "0" || quick_value == "no") {
      opts.quick = false;
    } else {
      paths.push_back(quick_value);
      opts.quick = true;
    }
  }
  if (paths.size() != 1) {
    std::fprintf(stderr, "cr verify: exactly one suite output directory is required\n");
    return 2;
  }
  opts.out_dir = paths[0];
  opts.report_path = cli.get_string("report", "");
  return cr::verify::run_verify(opts, std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(2);
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") return usage(0);
  if (cmd == "version" || cmd == "--version") return run_version(argc - 1, argv + 1);
  // Cli treats argv[0] as the program name, so hand each subcommand an argv
  // that starts at its own token ("list" / "run" / "expand").
  if (cmd == "list") return run_list(argc - 1, argv + 1);
  if (cmd == "bench") {
    if (argc < 3) {
      std::fprintf(stderr, "cr bench: a bench name is required; known:");
      for (const auto& name : cr::BenchRegistry::instance().names())
        std::fprintf(stderr, " %s", name.c_str());
      std::fprintf(stderr, "\n");
      return 2;
    }
    const std::vector<std::string> args(argv + 3, argv + argc);
    return cr::BenchRegistry::instance().run(argv[2], args);
  }
  if (cmd == "perf") {
    const std::vector<std::string> args(argv + 2, argv + argc);
    return cr::BenchRegistry::instance().run("perf", args);
  }
  if (cmd == "stream") {
    const std::vector<std::string> args(argv + 2, argv + argc);
    return cr::BenchRegistry::instance().run("stream", args);
  }
  if (cmd == "verify") return run_verify_cmd(argc - 1, argv + 1);
  if (cmd == "suite") {
    const std::string sub = argc >= 3 ? argv[2] : "";
    if (sub == "merge") return run_suite_merge_cmd(argc - 2, argv + 2);
    if (sub != "run" && sub != "expand" && sub != "work") {
      std::fprintf(stderr, "cr suite: expected \"run\", \"expand\", \"work\" or \"merge\"\n");
      return 2;
    }
    return run_suite_cmd(sub, argc - 2, argv + 2);
  }
  if (cmd == "cache") return run_cache_cmd(argc - 1, argv + 1);
  std::fprintf(stderr, "cr: unknown command \"%s\"\n\n", cmd.c_str());
  return usage(2);
}
