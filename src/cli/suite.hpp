/// \file
/// Manifest-driven experiment suites: `cr suite run suites/paper_repro.json`.
///
/// A suite manifest is a JSON file naming a grid of
/// (bench × params × seeds) cells:
///
///   {
///     "name": "paper_repro",
///     "description": "full reproduction of the paper tables",
///     "output_dir": "out/paper_repro",          // optional; default out/<name>
///     "defaults": {"reps": 8},                  // flags applied to every cell
///                                               // that declares them
///     "cells": [
///       {"bench": "latency",
///        "grid": {"max_exp": [16, 18]},         // cartesian product over axes
///        "seeds": [81000, 81100]},              // × per-cell base seeds
///       {"bench": "scenario",
///        "grid": {"scenario": ["batch", "worst_case"], "jam": [0.0, 0.25]}}
///     ]
///   }
///
/// The runner expands the grid in manifest order, validates every bench and
/// flag name against the BenchRegistry BEFORE running anything, and executes
/// each cell in a forked child (`--quiet --csv=<output_dir>/<cell id>.csv`)
/// — so a cell that exits or aborts (e.g. a type-invalid flag value hitting
/// CR_CHECK) is recorded as "failed" and the remaining cells still run —
/// fanning the cell's replications across the PR-2 thread pool. Three
/// properties the tests pin down:
///
///   * deterministic sharding — `--shard i/n` partitions cells by
///     expansion index (index % n == i-1): the n shards are disjoint, cover
///     every cell, and together produce byte-identical CSVs to an unsharded
///     run;
///   * resume — a cell whose output CSV already exists is skipped
///     ("cached"), so a killed run continues where it left off and a
///     completed run is a fast no-op (--force reruns everything);
///   * provenance — a run manifest (JSON) is written next to the CSVs with
///     the git SHA, a config hash over the FULL expansion (shard-independent,
///     so shards of the same suite can be matched up), wall-clock timings and
///     the per-cell status.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"

namespace cr {

class CellCache;  // src/dist/cell_cache.hpp

/// One expanded grid point: a single bench invocation.
struct SuiteCell {
  std::size_t index = 0;  ///< position in the full expansion (sharding key)
  std::string bench;
  /// Flags in application order: block defaults first, then grid axes;
  /// values are raw manifest text (numbers are forwarded byte-for-byte).
  std::vector<std::pair<std::string, std::string>> flags;
  /// False when the block omitted "seeds": the cell runs WITHOUT --seed, at
  /// the bench's own canonical base seeds (a multi-table bench like
  /// batch_completion uses several internal bases, which a forced --seed
  /// would collapse to one value).
  bool has_seed = false;
  std::uint64_t seed = 0;  ///< meaningful only when has_seed
  std::string id;  ///< filesystem-safe unique name; CSV lands at <id>.csv
};

/// Parsed manifest, pre-expansion.
struct SuiteSpec {
  std::string name;
  std::string description;
  std::string output_dir;  ///< default "out/<name>"
  /// Directory the manifest file was loaded from (empty when parsed from
  /// memory); anchors the run manifest's git-SHA provenance lookup.
  std::string source_dir;
  std::vector<std::pair<std::string, std::string>> defaults;
  struct Block {
    std::string bench;
    /// Ordered axes; a scalar manifest value is a 1-element axis.
    std::vector<std::pair<std::string, std::vector<std::string>>> grid;
    /// Empty = one cell per grid point at the bench's canonical defaults
    /// (no --seed passed).
    std::vector<std::uint64_t> seeds;
  };
  std::vector<Block> blocks;
};

/// Manifest load outcome: spec or a human-readable error.
struct SuiteLoadResult {
  SuiteSpec spec;
  std::string error;  ///< empty on success

  bool ok() const { return error.empty(); }
};

/// Parse + validate a manifest against the BenchRegistry (bench names, flag
/// names — a typo fails here, before any cell runs). `source` names the
/// manifest in error messages.
SuiteLoadResult parse_suite(const JsonValue& root, const std::string& source);
/// Read + parse_suite a manifest file.
SuiteLoadResult load_suite(const std::string& path);

/// Expand all blocks into cells, in manifest order (block order, then
/// row-major over the grid axes as written, then seeds).
std::vector<SuiteCell> expand_suite(const SuiteSpec& spec);

/// `--shard i/n`, 1-based.
struct ShardSpec {
  int index = 1;
  int count = 1;
};

/// Parse "i/n"; false on malformed input (i<1, n<1, i>n, junk).
bool parse_shard(const std::string& text, ShardSpec* out);

/// Deterministic partition: cell k belongs to shard i/n iff k % n == i-1.
bool cell_in_shard(std::size_t cell_index, const ShardSpec& shard);

struct SuiteRunOptions {
  std::string output_dir;  ///< override; empty = spec's default
  bool quick = false;      ///< append --quick to every cell
  ShardSpec shard;
  bool force = false;          ///< rerun cells whose CSV already exists
  std::int64_t threads = 0;    ///< per-cell --threads; 0 = bench default (all cores)
  bool dry_run = false;        ///< print the plan, run nothing, write nothing
  std::string cache_dir;       ///< CellCache directory; empty = no cache
};

/// Execute (or, with dry_run, print) the suite. Progress goes to `log`.
/// Returns 0 when every cell succeeded, 1 when any failed.
int run_suite(const SuiteSpec& spec, const SuiteRunOptions& opts, std::ostream& log);

/// Options for executing ONE cell (the unit both `cr suite run` and the
/// `cr suite work` worker loop share).
struct CellRunOptions {
  std::string out_dir;  ///< where <cell id>.csv lands
  bool quick = false;
  std::int64_t threads = 0;     ///< 0 = bench default
  CellCache* cache = nullptr;   ///< optional content-addressed result cache
  std::string config_hash;      ///< suite_config_hash; required when cache set
  std::string git_sha;          ///< audit metadata for cache stores
};

/// Outcome of run_cell.
struct CellRunResult {
  std::string status;      ///< "ok" (computed) | "hit" (cache) | "failed"
  double seconds = 0.0;
  std::string csv_fnv;     ///< 16-hex FNV-1a of the CSV bytes; empty on failure
  std::string cache_note;  ///< non-empty when a corrupt cache entry was rejected
};

/// Execute one cell: consult the cache (when configured), otherwise run the
/// bench in a forked child writing to a WORKER-UNIQUE tmp path
/// (<csv>.tmp-<pid>-<random>), then atomically rename into place — two
/// workers racing the same out_dir can never observe each other's partial
/// writes. A fresh result is stored back into the cache. A cache hit
/// restores the CSV byte-identically to recomputation (determinism rule 9).
CellRunResult run_cell(const SuiteCell& cell, const CellRunOptions& opts);

/// What an output directory already contains, per its manifest*.json files.
struct PriorOutputs {
  bool compatible = true;  ///< false: a manifest records a different config
  std::string message;     ///< why, when !compatible
  /// Recorded per-cell CSV checksums (cell id -> 16-hex FNV-1a) from every
  /// compatible manifest — what resume validates same-named CSVs against.
  std::map<std::string, std::string> cell_csv_fnv;
};

/// Scan `out_dir` for manifest*.json files and compare their recorded
/// config_hash/--quick mode against this run's; collects recorded per-cell
/// CSV checksums from compatible manifests along the way.
PriorOutputs scan_prior_outputs(const std::string& out_dir, const std::string& config_hash,
                                bool quick);

/// 16-hex FNV-1a 64 of a file's bytes; empty string when unreadable.
std::string file_fnv16(const std::string& path);

/// FNV-1a over the canonical full expansion (bench, flags, seed per cell) —
/// shard-independent, hex-formatted. Stored in the run manifest so outputs
/// can be matched to the exact suite configuration that produced them.
std::string suite_config_hash(const std::vector<SuiteCell>& cells);

/// Short SHA of the git repository containing `dir` (via `git -C`), or
/// "unknown" outside a repo / when `dir` is empty. Run manifests record the
/// manifest's own repo; `cr version` records the CWD's.
std::string git_head_sha(const std::string& dir);

}  // namespace cr
