#include "cli/bench_registry.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "cli/benches/benches.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"

namespace cr {

BenchRegistry::BenchRegistry() {
  register_bench(benches::tradeoff());
  register_bench(benches::worstcase());
  register_bench(benches::batch_completion());
  register_bench(benches::batch_robustness());
  register_bench(benches::nonadaptive());
  register_bench(benches::lowerbound());
  register_bench(benches::baselines());
  register_bench(benches::first_success());
  register_bench(benches::latency());
  register_bench(benches::energy());
  register_bench(benches::ablation());
  register_bench(benches::cd_contrast());
  register_bench(benches::scenario());
  register_bench(benches::workload());
  register_bench(benches::stream());
  register_bench(benches::perf());
}

BenchRegistry& BenchRegistry::instance() {
  static BenchRegistry registry;
  return registry;
}

const BenchSpec* BenchRegistry::find(const std::string& name) const {
  for (const BenchSpec& spec : entries_)
    if (spec.name == name) return &spec;
  return nullptr;
}

const BenchSpec& BenchRegistry::at(const std::string& name) const {
  const BenchSpec* spec = find(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown bench \"%s\"", name.c_str());
    const std::string hint = closest_match(name, names());
    if (!hint.empty()) std::fprintf(stderr, " (did you mean \"%s\"?)", hint.c_str());
    std::fprintf(stderr, "; known benches:");
    for (const BenchSpec& entry : entries_) std::fprintf(stderr, " %s", entry.name.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
  return *spec;
}

std::vector<std::string> BenchRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const BenchSpec& spec : entries_) out.push_back(spec.name);
  return out;
}

void BenchRegistry::register_bench(BenchSpec spec) {
  CR_CHECK(!spec.name.empty());
  CR_CHECK(spec.run != nullptr);
  CR_CHECK(find(spec.name) == nullptr);
  entries_.push_back(std::move(spec));
}

int BenchRegistry::run(const std::string& name, const std::vector<std::string>& args) const {
  const BenchSpec& spec = at(name);
  const std::string argv0 = "cr bench " + name;
  std::vector<const char*> argv;
  argv.reserve(args.size() + 1);
  argv.push_back(argv0.c_str());
  for (const std::string& arg : args) argv.push_back(arg.c_str());
  return spec.run(static_cast<int>(argv.size()), argv.data());
}

}  // namespace cr
