#include "cli/docs_gen.hpp"

#include <sstream>

#include "adversary/component_registry.hpp"
#include "cli/bench_registry.hpp"
#include "engine/engine.hpp"
#include "exp/scenarios.hpp"
#include "exp/workload.hpp"
#include "verify/claim_registry.hpp"

namespace cr {

namespace {

/// Escape '|' for use inside a markdown table cell.
std::string md_cell(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '|') out += "\\|";
    else out += c;
  }
  return out;
}

std::string flag_list(const BenchSpec& spec) {
  if (spec.flags.empty()) return "—";
  std::string out;
  for (const BenchFlag& flag : spec.flags) {
    if (!out.empty()) out += ", ";
    out += "`--" + flag.name + "`";
  }
  return out;
}

std::string column_list(const BenchSpec& spec) {
  std::string out;
  for (const std::string& column : spec.csv_columns) {
    if (!out.empty()) out += ", ";
    out += "`" + column + "`";
  }
  return out;
}

/// "—" for parameterless components, else "`p` (type, default d): help; …".
std::string schema_cell(const ParamSchema& schema) {
  if (schema.empty()) return "—";
  std::string out;
  for (const ParamDef& def : schema.defs()) {
    if (!out.empty()) out += "; ";
    out += "`" + def.name + "` (" + param_type_name(def.type) + ", default " +
           def.default_text + "): " + def.help;
  }
  return out;
}

/// The arrivals/jammers tables shared by the workload section; rendered
/// straight from the component registries so the docs cannot drift from
/// what validation accepts.
void component_tables(std::ostringstream& os) {
  os << "### Arrival processes (`--arrival`, params `--arrival.<p>`)\n"
     << "\n"
     << "| Name | Workload | Parameters |\n"
     << "| --- | --- | --- |\n";
  for (const ArrivalEntry& entry : ArrivalRegistry::instance().entries())
    os << "| `" << entry.name << "` | " << md_cell(entry.description) << " | "
       << md_cell(schema_cell(entry.schema)) << " |\n";
  os << "\n"
     << "### Jamming strategies (`--jammer`, params `--jammer.<p>`)\n"
     << "\n"
     << "| Name | Strategy | Parameters |\n"
     << "| --- | --- | --- |\n";
  for (const JammerEntry& entry : JammerRegistry::instance().entries())
    os << "| `" << entry.name << "` | " << md_cell(entry.description) << " | "
       << md_cell(schema_cell(entry.schema)) << " |\n";
}

}  // namespace

std::string registry_listing_text() {
  std::ostringstream os;
  os << "benches (cr bench <name>):\n";
  for (const BenchSpec& spec : BenchRegistry::instance().entries())
    os << "  " << spec.name << std::string(spec.name.size() < 18 ? 18 - spec.name.size() : 1, ' ')
       << spec.id << "  " << spec.summary << "\n";
  os << "\nscenarios (cr bench scenario --scenario=<name>; presets over WorkloadSpec):\n";
  for (const ScenarioEntry& entry : ScenarioRegistry::instance().entries())
    os << "  " << entry.name
       << std::string(entry.name.size() < 18 ? 18 - entry.name.size() : 1, ' ')
       << entry.description << "\n";
  os << "\narrivals (cr bench workload --arrival=<name>; params via --arrival.<p>):\n";
  for (const ArrivalEntry& entry : ArrivalRegistry::instance().entries())
    os << "  " << entry.name
       << std::string(entry.name.size() < 18 ? 18 - entry.name.size() : 1, ' ')
       << entry.description << "\n";
  os << "\njammers (cr bench workload --jammer=<name>; params via --jammer.<p>):\n";
  for (const JammerEntry& entry : JammerRegistry::instance().entries())
    os << "  " << entry.name
       << std::string(entry.name.size() < 18 ? 18 - entry.name.size() : 1, ' ')
       << entry.description << "\n";
  os << "\nprotocols (--protocol on the workload bench):\n";
  for (const std::string& name : workload_protocol_names()) os << "  " << name << "\n";
  os << "\nengines (--engine on the scenario/workload benches; others pick preferred()):\n";
  for (const std::string& name : EngineRegistry::instance().names()) os << "  " << name << "\n";
  os << "\nclaims (cr verify <out_dir>; machine-checked against suite CSVs):\n";
  for (const verify::ClaimSpec& spec : verify::ClaimRegistry::instance().entries())
    os << "  " << spec.id
       << std::string(spec.id.size() < 26 ? 26 - spec.id.size() : 1, ' ') << spec.title
       << "\n";
  os << "\n`cr list --md` prints docs/EXPERIMENTS.md; `cr help` prints usage.\n";
  return os.str();
}

std::string experiments_markdown() {
  std::ostringstream os;
  os << "# Experiment index\n"
     << "\n"
     << "<!-- GENERATED FILE — do not edit by hand. This file is the verbatim\n"
     << "     output of `cr list --md`, rendered from the bench/scenario/engine\n"
     << "     registries; the docs-labelled CTest entry byte-diffs it against\n"
     << "     that output and fails on any drift. To regenerate:\n"
     << "       ./build/src/cr list --md > docs/EXPERIMENTS.md -->\n"
     << "\n"
     << "Every experiment reproduces one claim of *conf_podc_ChenJZ21*\n"
     << "(Chen–Jiang–Zheng, PODC'21: contention resolution on a multiple-access\n"
     << "channel with adaptive jamming and no collision detection). All of them\n"
     << "are subcommands of the single `cr` tool:\n"
     << "\n"
     << "```sh\n"
     << "cr list                      # what exists (this document: cr list --md)\n"
     << "cr bench latency --quick     # one experiment\n"
     << "cr suite run suites/quick.json   # a manifest-driven grid of cells\n"
     << "```\n"
     << "\n"
     << "The legacy `bench_<name>` binaries still build as thin wrappers over\n"
     << "the same registry entries (see the migration table in README.md).\n"
     << "\n"
     << "## Uniform driver flags\n"
     << "\n"
     << "Every bench shares the `BenchDriver` contract\n"
     << "(`src/exp/bench_driver.hpp`):\n"
     << "\n"
     << "| Flag | Meaning |\n"
     << "| --- | --- |\n";
  for (const BenchFlag& flag : BenchDriver::standard_flags())
    os << "| `--" << flag.name << "` | " << md_cell(flag.help) << " |\n";
  os << "\n"
     << "Unknown or misspelled flags are rejected with a did-you-mean message\n"
     << "(exit 2). `--threads` never changes results: replication seeds are\n"
     << "independent by construction (splitmix64-seeded xoshiro256\\*\\* streams),\n"
     << "so fanning seeds across a worker pool is bit-identical to a serial run\n"
     << "for every thread count (`tests/test_scenarios.cpp`, `ParallelReplicate.*`).\n"
     << "\n"
     << "## Registries\n"
     << "\n"
     << "Engine and workload selection go through six name-keyed registries\n"
     << "(`EngineRegistry` in `src/engine/engine.hpp`, `ScenarioRegistry` in\n"
     << "`src/exp/scenarios.hpp`, `BenchRegistry` in `src/cli/bench_registry.hpp`,\n"
     << "`ArrivalRegistry`/`JammerRegistry` in\n"
     << "`src/adversary/component_registry.hpp`, `ClaimRegistry` in\n"
     << "`src/verify/claim_registry.hpp`): a bench describes *what* runs\n"
     << "(a `ProtocolSpec`) and the registry picks the fastest engine that can\n"
     << "execute it (`generic` — per-node reference; `fast_cjz`, `fast_batch` —\n"
     << "cohort engines validated against it in `tests/test_cross_engine.cpp`);\n"
     << "workloads compose by name from the arrival/jammer component registries\n"
     << "(see the workload composition section below).\n"
     << "\n"
     << "## Recording tiers\n"
     << "\n"
     << "`SimConfig::recording` selects how much observability a run pays for\n"
     << "(`RecordingConfig` in `src/engine/sim_result.hpp`). Tiers are cumulative,\n"
     << "every engine honours every tier, and the simulated trajectory is\n"
     << "**bit-identical across tiers** (attribution draws on a dedicated RNG\n"
     << "stream; asserted by the fuzz sweep in `tests/test_cross_engine.cpp`):\n"
     << "\n"
     << "| Tier | Extra per-slot cost | Unlocks |\n"
     << "| --- | --- | --- |\n"
     << "| `kNone` (default) | — | aggregate counters in `SimResult` |\n"
     << "| `kSuccessTimes` | O(1) per success | `success_times`, `successes_in_window()` |\n"
     << "| `kNodeStats` | O(#sends) attribution + one row per node | `node_stats`, "
        "`latency_report()`, `energy_report()` |\n"
     << "| `kFullTrace` | O(1) copy per slot | `SimResult::slot_outcomes` |\n"
     << "\n"
     << "The fast engines attribute each cohort's binomial sender count to a\n"
     << "uniformly sampled member subset — exactly the conditional law of \"who\n"
     << "sent\" given the count — so energy/latency metrics do not require the\n"
     << "generic engine. For metrics over time without any recording tier,\n"
     << "attach the streaming `WindowedMetrics` observer\n"
     << "(`src/metrics/windowed.hpp`; combine observers with `ObserverChain`).\n"
     << "\n"
     << "## Index\n"
     << "\n"
     << "| E | Subcommand | Paper claim / section | Extra flags | Expected qualitative "
        "outcome |\n"
     << "| --- | --- | --- | --- | --- |\n";
  for (const BenchSpec& spec : BenchRegistry::instance().entries())
    os << "| " << spec.id << " | `cr bench " << spec.name << "` | " << md_cell(spec.claim)
       << " | " << flag_list(spec) << " | " << md_cell(spec.outcome) << " |\n";
  os << "| E11 | `bench_engine` (standalone) | — (engine performance) | google-benchmark args "
        "| slots/second of each engine + hot RNG paths; built only when google-benchmark is "
        "installed |\n"
     << "\n"
     << "E11 is the one non-`cr` experiment: a google-benchmark microbenchmark\n"
     << "with its own runner, built only when the library is present.\n"
     << "\n"
     << "## Bench reference\n";
  for (const BenchSpec& spec : BenchRegistry::instance().entries()) {
    os << "\n### `cr bench " << spec.name << "` (" << spec.id << ")\n"
       << "\n"
       << md_cell(spec.summary) << ". Claim: " << md_cell(spec.claim) << ".\n";
    if (!spec.flags.empty()) {
      os << "\n";
      for (const BenchFlag& flag : spec.flags)
        os << "- `--" << flag.name << "` — " << md_cell(flag.help) << "\n";
    }
    os << "\nCSV (`--csv`): " << column_list(spec) << ".\n"
       << "One row = " << md_cell(spec.csv_row_desc) << ".\n";
  }
  os << "\n## Machine-checked claims (`cr verify`)\n"
     << "\n"
     << "Every paper claim the suites evidence is registered in the\n"
     << "`ClaimRegistry` (`src/verify/claim_registry.hpp`) as an executable\n"
     << "acceptance test over suite CSVs. `cr verify <out_dir>` evaluates all of\n"
     << "them against a `cr suite run` output directory, prints the verdict\n"
     << "table, writes `<out_dir>/verify_report.json` (schema\n"
     << "`cr-verify-report/1`: per-claim verdict, observed values, bound, and\n"
     << "evidence-cell provenance keyed by the run manifest's `config_hash`),\n"
     << "and exits nonzero iff any claim fails — CI gates on\n"
     << "`cr verify --quick` after running `suites/quick.json --quick`.\n"
     << "`--quick` selects the quick evidence cells and the widened bounds\n"
     << "below; `tests/test_claims.cpp` evaluates the same registry in-process,\n"
     << "so gtest and the CLI cannot drift apart.\n"
     << "\n"
     << "| Claim | Title | Bound (full) | Bound (`--quick`) | Evidence cells | Columns |\n"
     << "| --- | --- | --- | --- | --- | --- |\n";
  for (const verify::ClaimSpec& spec : verify::ClaimRegistry::instance().entries()) {
    std::string cells, quick_cells, columns;
    for (const std::string& cell : spec.cells) {
      if (!cells.empty()) cells += ", ";
      cells += "`" + cell + "`";
    }
    for (const std::string& cell : spec.quick_cells) {
      if (!quick_cells.empty()) quick_cells += ", ";
      quick_cells += "`" + cell + "`";
    }
    if (!quick_cells.empty()) cells += " (quick: " + quick_cells + ")";
    for (const std::string& column : spec.columns) {
      if (!columns.empty()) columns += ", ";
      columns += "`" + column + "`";
    }
    os << "| `" << spec.id << "` | " << md_cell(spec.title) << " | " << md_cell(spec.bound)
       << " | " << md_cell(spec.quick_bound.empty() ? "same" : spec.quick_bound) << " | "
       << cells << " | " << columns << " |\n";
  }
  os << "\nEach claim's full statement lives in `src/verify/claims.cpp` next to\n"
     << "its check; the \"add a claim\" recipe is in `docs/ARCHITECTURE.md`.\n";
  os << "\n## Named scenarios\n"
     << "\n"
     << "`ScenarioRegistry` entries (parameterised by `ScenarioParams`; run any\n"
     << "of them directly with `cr bench scenario --scenario=<name>`). Each is a\n"
     << "thin preset over `WorkloadSpec` (`src/exp/workload.hpp`) — byte-identical\n"
     << "to the equivalent component composition, parity-tested in\n"
     << "`tests/test_workload.cpp`. A preset consumes exactly the listed\n"
     << "parameters; passing any other is a hard error, not a silent no-op:\n"
     << "\n"
     << "| Name | Workload | Consumed params |\n"
     << "| --- | --- | --- |\n";
  for (const ScenarioEntry& entry : ScenarioRegistry::instance().entries()) {
    std::string params;
    for (const std::string& p : entry.params) {
      if (!params.empty()) params += ", ";
      params += "`" + p + "`";
    }
    os << "| `" << entry.name << "` | " << md_cell(entry.description) << " | " << params
       << " |\n";
  }
  os << "\n## Workload composition\n"
     << "\n"
     << "`cr bench workload` composes a workload from first principles instead\n"
     << "of a preset: any registered arrival process × any registered jammer ×\n"
     << "g regime × named protocol. Every component self-describes a parameter\n"
     << "schema (below); an unknown or unconsumed key — a parameter the chosen\n"
     << "component does not declare, or `gamma` under `g=log` — is a hard error\n"
     << "naming the key, both on the command line and at suite-manifest parse\n"
     << "time. The flat `key=value` form is the same in both places:\n"
     << "\n"
     << "```sh\n"
     << "cr bench workload --arrival=bernoulli --arrival.rate=0.2 \\\n"
     << "                  --jammer=reactive --jammer.burst=3 --protocol=cjz\n"
     << "```\n"
     << "\n"
     << "or, as a suite cell sweeping the (arrival × jammer) product\n"
     << "(`suites/workload_grid_quick.json` is the checked-in example, run by\n"
     << "the `workload`-labelled CTest entry):\n"
     << "\n"
     << "```json\n"
     << "{\"bench\": \"workload\",\n"
     << " \"grid\": {\"arrival\": [\"batch\", \"paced\"], \"jammer\": [\"none\", \"iid\"]}}\n"
     << "```\n"
     << "\n";
  component_tables(os);
  os << "\nNamed protocols (`--protocol`): ";
  {
    std::string names;
    for (const std::string& name : workload_protocol_names()) {
      if (!names.empty()) names += ", ";
      names += "`" + name + "`";
    }
    os << names << ".\n";
  }
  os << "\n## Engines\n"
     << "\n";
  for (const std::string& name : EngineRegistry::instance().names())
    os << "- `" << name << "`\n";
  os << "\nBenches select engines via `EngineRegistry::preferred(spec)`; the\n"
     << "`scenario` and `workload` benches expose the choice as `--engine`.\n"
     << "\n"
     << "## Suites\n"
     << "\n"
     << "`cr suite run <manifest.json>` expands a manifest's grid of\n"
     << "(bench × params × seeds) cells, runs each cell `--quiet` with a\n"
     << "per-cell CSV under the suite's output directory, and writes a run\n"
     << "manifest (git SHA, config hash, wall-clock, per-cell status) next to\n"
     << "them. Properties guaranteed by `tests/test_suite.cpp`:\n"
     << "\n"
     << "- `--shard i/n` partitions cells deterministically (expansion index\n"
     << "  mod n); the shards are disjoint, cover everything, and together\n"
     << "  produce byte-identical CSVs to an unsharded run;\n"
     << "- rerunning skips cells whose CSV already exists (resume after an\n"
     << "  interrupt; `--force` reruns), again bit-identically;\n"
     << "- `cr suite expand` prints the cell plan without running anything.\n"
     << "\n"
     << "Checked-in manifests: `suites/paper_repro.json` (every table above),\n"
     << "`suites/quick.json` (CI-sized smoke grid covering every claim's quick\n"
     << "evidence cells; the `suite`-labelled CTest entries run it with\n"
     << "`--quick`, and `cr verify --quick` gates on the result).\n"
     << "\n"
     << "## Smoke tests\n"
     << "\n"
     << "Each bench is registered with CTest as `smoke_bench_*` running\n"
     << "`cr bench <name> --quick --reps=2 --threads=2`, so a bench that\n"
     << "crashes or regresses structurally fails the tier-1 suite\n"
     << "(`ctest -L bench_smoke` runs just these).\n"
     << "\n"
     << "## Golden regressions\n"
     << "\n"
     << "`golden_bench_latency` (label `golden`) byte-compares the latency\n"
     << "bench's `--quick` CSV against `tests/golden/bench_latency_quick.csv`.\n"
     << "The file contains only means of integer-valued samples at fixed seeds\n"
     << "(exact IEEE arithmetic, thread-count independent), so on the CI\n"
     << "platform any diff is a real behaviour change in the engines, scenarios\n"
     << "or metrics. The simulation does route through libm (`f`/`g` pacing,\n"
     << "binomial sampling), so a different libm implementation (macOS, a major\n"
     << "glibc bump) can legitimately shift the integers — regenerate on the\n"
     << "Linux CI platform:\n"
     << "\n"
     << "```sh\n"
     << "./build/src/cr bench latency --quick --reps=2 --threads=2 \\\n"
     << "    --csv=tests/golden/bench_latency_quick.csv\n"
     << "```\n"
     << "\n"
     << "`docs_experiments_md` (label `docs`) is the second golden test: it\n"
     << "diffs this very file against `cr list --md`.\n";
  return os.str();
}

}  // namespace cr
