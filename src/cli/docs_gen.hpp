/// \file
/// Self-documenting pipeline: docs/EXPERIMENTS.md is the verbatim output of
/// `cr list --md`, generated from the three registries (benches, scenarios,
/// engines). The `docs`-labelled CTest entry byte-diffs the committed file
/// against this output, so the experiment tables can never drift from the
/// code the way hand-maintained copies used to.
#pragma once

#include <string>

namespace cr {

/// Compact plain-text listing for `cr list`: benches, scenarios, engines.
std::string registry_listing_text();

/// The complete docs/EXPERIMENTS.md content for `cr list --md`.
std::string experiments_markdown();

}  // namespace cr
