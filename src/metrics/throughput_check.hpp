// Online verification of Definition 1.1 ((f,g)-throughput).
//
// Attached to either engine as a SlotObserver, the checker maintains the
// cumulative counters n_t (arrivals), d_t (jammed slots), a_t (active slots)
// and evaluates, at every slot t, the paper's bound
//
//     a_t  ≤  n_t·f(t) + d_t·g(t)
//
// reporting the worst (maximum) ratio a_t / (n_t·f(t) + d_t·g(t)) over the
// run and where it occurred. A ratio that stays O(1) as t grows is the
// empirical signature of (Θ(f), Θ(g))-throughput; the paper's unspecified
// constants mean the absolute level is implementation-defined, so benches
// compare ratios across t and across g regimes rather than against 1.0.
#pragma once

#include <cstdint>
#include <vector>

#include "common/functions.hpp"
#include "engine/sim_result.hpp"

namespace cr {

class ThroughputChecker final : public SlotObserver {
 public:
  /// `sample_every` > 0 additionally records a (t, ratio) series for CSV
  /// output (one point per `sample_every` slots).
  explicit ThroughputChecker(FunctionSet fs, slot_t sample_every = 0);

  void on_slot(const SlotOutcome& out, std::uint64_t injected, std::uint64_t live_nodes) override;

  std::uint64_t arrivals() const { return n_t_; }
  std::uint64_t jammed() const { return d_t_; }
  std::uint64_t active() const { return a_t_; }
  slot_t slots() const { return t_; }

  /// Bound value n_t·f(t) + d_t·g(t) at the current t.
  double bound() const;
  /// a_t / bound at the current t (0 when bound == 0).
  double final_ratio() const;
  double max_ratio() const { return max_ratio_; }
  slot_t max_ratio_slot() const { return max_ratio_slot_; }

  struct SamplePoint {
    slot_t t;
    std::uint64_t n_t, d_t, a_t;
    double ratio;
  };
  const std::vector<SamplePoint>& series() const { return series_; }

 private:
  FunctionSet fs_;
  slot_t sample_every_;
  slot_t t_ = 0;
  std::uint64_t n_t_ = 0;
  std::uint64_t d_t_ = 0;
  std::uint64_t a_t_ = 0;
  double max_ratio_ = 0.0;
  slot_t max_ratio_slot_ = 0;
  std::vector<SamplePoint> series_;
};

}  // namespace cr
