// Derived metrics over SimResult.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "engine/sim_result.hpp"

namespace cr {

/// Latency of departed nodes (slots in system). Requires
/// RecordingTier::kNodeStats; every engine supports it.
struct LatencyReport {
  std::uint64_t departed = 0;
  std::uint64_t stranded = 0;  ///< still live at end of run
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};
LatencyReport latency_report(const SimResult& result);

/// Channel accesses per departed node (energy). Requires
/// RecordingTier::kNodeStats; the fast engines attribute every cohort
/// transmission to a concrete member (see engine/attribution.hpp), so this
/// works on all engines.
struct EnergyReport {
  std::uint64_t departed = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};
EnergyReport energy_report(const SimResult& result);

/// Number of successes in slot window [from, to]. Requires
/// RecordingTier::kSuccessTimes.
std::uint64_t successes_in_window(const SimResult& result, slot_t from, slot_t to);

/// Max latency among nodes that arrived in [from, to] (0 if none departed).
/// Requires RecordingTier::kNodeStats.
std::uint64_t max_latency_for_arrivals(const SimResult& result, slot_t from, slot_t to);

}  // namespace cr
