#include "metrics/throughput_check.hpp"

#include <utility>

#include "common/check.hpp"

namespace cr {

ThroughputChecker::ThroughputChecker(FunctionSet fs, slot_t sample_every)
    : fs_(std::move(fs)), sample_every_(sample_every) {}

void ThroughputChecker::on_slot(const SlotOutcome& out, std::uint64_t injected,
                                std::uint64_t live_nodes) {
  CR_CHECK(out.slot == t_ + 1);
  t_ = out.slot;
  n_t_ += injected;
  if (out.jammed) ++d_t_;
  if (live_nodes > 0) ++a_t_;

  const double b = bound();
  const double ratio = b > 0.0 ? static_cast<double>(a_t_) / b : 0.0;
  if (ratio > max_ratio_) {
    max_ratio_ = ratio;
    max_ratio_slot_ = t_;
  }
  if (sample_every_ > 0 && t_ % sample_every_ == 0)
    series_.push_back({t_, n_t_, d_t_, a_t_, ratio});
}

double ThroughputChecker::bound() const {
  const double t = static_cast<double>(t_);
  return static_cast<double>(n_t_) * fs_.f(t) + static_cast<double>(d_t_) * fs_.g(t);
}

double ThroughputChecker::final_ratio() const {
  const double b = bound();
  return b > 0.0 ? static_cast<double>(a_t_) / b : 0.0;
}

}  // namespace cr
