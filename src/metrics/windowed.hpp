// Streaming windowed metrics: throughput / backlog / jamming over time.
//
// Attached to any engine as a SlotObserver, WindowedMetrics folds the run
// into fixed-width slot windows — O(1) state per slot, one WindowStats row
// per window — so benches can plot "successes per window" and "queue depth
// over time" on runs far too long to record per-slot traces for. The final
// partial window (a run stopping early or a horizon not divisible by the
// width) is flushed by on_run_end(), which every engine calls.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/snapshot.hpp"
#include "engine/sim_result.hpp"

namespace cr {

struct WindowStats {
  slot_t start = 0;  ///< first slot of the window (inclusive)
  slot_t end = 0;    ///< last slot of the window (inclusive)
  std::uint64_t arrivals = 0;
  std::uint64_t successes = 0;
  std::uint64_t jammed = 0;
  std::uint64_t sends = 0;      ///< transmissions incl. collisions
  std::uint64_t live_max = 0;   ///< peak backlog inside the window
  std::uint64_t live_end = 0;   ///< backlog when the window closed
  double live_mean = 0.0;       ///< mean backlog over the window's slots

  slot_t width() const { return end - start + 1; }
  double throughput() const {
    return width() ? static_cast<double>(successes) / static_cast<double>(width()) : 0.0;
  }

  friend bool operator==(const WindowStats&, const WindowStats&) = default;
};

class WindowedMetrics final : public SlotObserver {
 public:
  /// `window` >= 1: number of slots folded into each WindowStats row.
  explicit WindowedMetrics(slot_t window);

  void on_slot(const SlotOutcome& out, std::uint64_t injected, std::uint64_t live_nodes) override;
  void on_run_end(const SimResult& result) override;

  const std::vector<WindowStats>& series() const { return series_; }
  slot_t window() const { return window_; }

  /// Max live population over the whole run (0 before any slot).
  std::uint64_t peak_backlog() const { return peak_backlog_; }

  /// Streaming mode: deliver each completed window to `sink` instead of
  /// accumulating it in series() — an unbounded run must not grow an
  /// unbounded series vector. Set once, before the first slot.
  void set_sink(std::function<void(const WindowStats&)> sink) { sink_ = std::move(sink); }

  /// Serialize the open (partial) window and running aggregates. Completed
  /// windows are NOT serialized — in streaming mode they were already
  /// published through the sink before any checkpoint is cut.
  void save(SnapshotWriter& w) const;
  /// Inverse of save(); fails the reader on a window-width mismatch.
  void load(SnapshotReader& r);

 private:
  void flush();

  slot_t window_;
  std::vector<WindowStats> series_;
  WindowStats cur_;
  std::uint64_t live_sum_ = 0;
  std::uint64_t slots_in_window_ = 0;
  std::uint64_t peak_backlog_ = 0;
  std::function<void(const WindowStats&)> sink_;
};

}  // namespace cr
