#include "metrics/metrics.hpp"

#include <algorithm>

namespace cr {

LatencyReport latency_report(const SimResult& result) {
  LatencyReport rep;
  Quantiles q;
  Accumulator acc;
  for (const auto& ns : result.node_stats) {
    if (!ns.departed()) {
      ++rep.stranded;
      continue;
    }
    ++rep.departed;
    const auto lat = static_cast<double>(ns.latency());
    q.add(lat);
    acc.add(lat);
  }
  if (rep.departed > 0) {
    rep.mean = acc.mean();
    rep.p50 = q.quantile(0.5);
    rep.p99 = q.quantile(0.99);
    rep.max = q.max();
  }
  return rep;
}

EnergyReport energy_report(const SimResult& result) {
  EnergyReport rep;
  Quantiles q;
  Accumulator acc;
  for (const auto& ns : result.node_stats) {
    if (!ns.departed()) continue;
    ++rep.departed;
    const auto sends = static_cast<double>(ns.sends);
    q.add(sends);
    acc.add(sends);
  }
  if (rep.departed > 0) {
    rep.mean = acc.mean();
    rep.p50 = q.quantile(0.5);
    rep.p99 = q.quantile(0.99);
    rep.max = q.max();
  }
  return rep;
}

std::uint64_t successes_in_window(const SimResult& result, slot_t from, slot_t to) {
  const auto& ts = result.success_times;
  const auto lo = std::lower_bound(ts.begin(), ts.end(), from);
  const auto hi = std::upper_bound(ts.begin(), ts.end(), to);
  return static_cast<std::uint64_t>(hi - lo);
}

std::uint64_t max_latency_for_arrivals(const SimResult& result, slot_t from, slot_t to) {
  std::uint64_t max_lat = 0;
  for (const auto& ns : result.node_stats) {
    if (!ns.departed()) continue;
    if (ns.arrival < from || ns.arrival > to) continue;
    max_lat = std::max(max_lat, ns.latency());
  }
  return max_lat;
}

}  // namespace cr
