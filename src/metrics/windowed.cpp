#include "metrics/windowed.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace cr {

WindowedMetrics::WindowedMetrics(slot_t window) : window_(window) { CR_CHECK(window >= 1); }

void WindowedMetrics::on_slot(const SlotOutcome& out, std::uint64_t injected,
                              std::uint64_t live_nodes) {
  if (slots_in_window_ == 0) cur_.start = out.slot;
  cur_.end = out.slot;
  cur_.arrivals += injected;
  cur_.successes += out.success() ? 1 : 0;
  cur_.jammed += out.jammed ? 1 : 0;
  cur_.sends += out.senders;
  cur_.live_max = std::max(cur_.live_max, live_nodes);
  cur_.live_end = live_nodes;
  live_sum_ += live_nodes;
  peak_backlog_ = std::max(peak_backlog_, live_nodes);
  if (++slots_in_window_ == window_) flush();
}

void WindowedMetrics::on_run_end(const SimResult&) {
  if (slots_in_window_ > 0) flush();
}

void WindowedMetrics::flush() {
  cur_.live_mean = static_cast<double>(live_sum_) / static_cast<double>(slots_in_window_);
  if (sink_) {
    sink_(cur_);
  } else {
    series_.push_back(cur_);
  }
  cur_ = WindowStats{};
  live_sum_ = 0;
  slots_in_window_ = 0;
}

void WindowedMetrics::save(SnapshotWriter& w) const {
  w.u64(window_);
  w.u64(cur_.start);
  w.u64(cur_.end);
  w.u64(cur_.arrivals);
  w.u64(cur_.successes);
  w.u64(cur_.jammed);
  w.u64(cur_.sends);
  w.u64(cur_.live_max);
  w.u64(cur_.live_end);
  w.f64(cur_.live_mean);
  w.u64(live_sum_);
  w.u64(slots_in_window_);
  w.u64(peak_backlog_);
}

void WindowedMetrics::load(SnapshotReader& r) {
  const std::uint64_t window = r.u64("windowed.window");
  if (r.ok() && window != window_) {
    r.fail("snapshot: window width mismatch (blob " + std::to_string(window) + ", run " +
           std::to_string(window_) + ")");
    return;
  }
  cur_.start = r.u64("windowed.cur.start");
  cur_.end = r.u64("windowed.cur.end");
  cur_.arrivals = r.u64("windowed.cur.arrivals");
  cur_.successes = r.u64("windowed.cur.successes");
  cur_.jammed = r.u64("windowed.cur.jammed");
  cur_.sends = r.u64("windowed.cur.sends");
  cur_.live_max = r.u64("windowed.cur.live_max");
  cur_.live_end = r.u64("windowed.cur.live_end");
  cur_.live_mean = r.f64("windowed.cur.live_mean");
  live_sum_ = r.u64("windowed.live_sum");
  slots_in_window_ = r.u64("windowed.slots_in_window");
  peak_backlog_ = r.u64("windowed.peak_backlog");
}

}  // namespace cr
