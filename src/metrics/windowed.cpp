#include "metrics/windowed.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace cr {

WindowedMetrics::WindowedMetrics(slot_t window) : window_(window) { CR_CHECK(window >= 1); }

void WindowedMetrics::on_slot(const SlotOutcome& out, std::uint64_t injected,
                              std::uint64_t live_nodes) {
  if (slots_in_window_ == 0) cur_.start = out.slot;
  cur_.end = out.slot;
  cur_.arrivals += injected;
  cur_.successes += out.success() ? 1 : 0;
  cur_.jammed += out.jammed ? 1 : 0;
  cur_.sends += out.senders;
  cur_.live_max = std::max(cur_.live_max, live_nodes);
  cur_.live_end = live_nodes;
  live_sum_ += live_nodes;
  peak_backlog_ = std::max(peak_backlog_, live_nodes);
  if (++slots_in_window_ == window_) flush();
}

void WindowedMetrics::on_run_end(const SimResult&) {
  if (slots_in_window_ > 0) flush();
}

void WindowedMetrics::flush() {
  cur_.live_mean = static_cast<double>(live_sum_) / static_cast<double>(slots_in_window_);
  series_.push_back(cur_);
  cur_ = WindowStats{};
  live_sum_ = 0;
  slots_in_window_ = 0;
}

}  // namespace cr
