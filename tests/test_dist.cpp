// Tests for the distributed execution fabric (src/dist + common/file_lock +
// common/source_digest): CellCache hit/miss/corruption semantics, the
// O_EXCL lease protocol with dead-holder takeover, `cr suite merge`'s strict
// union rules, the cold/warm cache contract of run_suite (determinism rule
// 9: a hit is byte-identical to recomputation), and a fork-based
// multi-worker integration run whose merged output must equal a
// single-process run byte for byte.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cli/suite.hpp"
#include "common/file_lock.hpp"
#include "common/json.hpp"
#include "common/source_digest.hpp"
#include "dist/cell_cache.hpp"
#include "dist/merge.hpp"
#include "dist/worker.hpp"

namespace cr {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() /
                       ("cr_test_dist_" + std::to_string(::getpid()) + "_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spit(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

// ---------------------------------------------------------------------------
// CellCache

class CellCacheTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = fresh_dir("cache"); }
  void TearDown() override { fs::remove_all(dir_); }

  CellKey key(const std::string& cell = "cell_a") const {
    CellKey k;
    k.config_hash = "deadbeefdeadbeef";
    k.cell_id = cell;
    k.source_digest = "0123456789abcdef";
    k.quick = false;
    return k;
  }

  fs::path dir_;
};

TEST_F(CellCacheTest, HitReturnsStoredBytesExactly) {
  CellCache cache(dir_.string());
  // Bytes with every hazard a naive round-trip could mangle: CRLF, NUL-free
  // high bytes, a trailing newline.
  const std::string csv = "a,b\r\n1,\xC3\xA9\n2,3\n";
  std::string error;
  ASSERT_TRUE(cache.store(key(), csv, "abc1234", 0.5, &error)) << error;
  const CacheLookup hit = cache.lookup(key());
  ASSERT_TRUE(hit.hit) << hit.diagnostic;
  EXPECT_EQ(hit.csv, csv);
  EXPECT_TRUE(hit.diagnostic.empty());
}

TEST_F(CellCacheTest, CleanMissHasNoDiagnostic) {
  CellCache cache(dir_.string());
  const CacheLookup miss = cache.lookup(key());
  EXPECT_FALSE(miss.hit);
  EXPECT_TRUE(miss.diagnostic.empty());  // nothing existed, nothing is wrong
}

TEST_F(CellCacheTest, KeyIsSensitiveToEveryComponent) {
  const std::string base = CellCache::key_of(key());
  EXPECT_EQ(base.size(), 16u);
  CellKey other = key();
  other.config_hash = "deadbeefdeadbee0";
  EXPECT_NE(CellCache::key_of(other), base);
  other = key();
  other.cell_id = "cell_b";
  EXPECT_NE(CellCache::key_of(other), base);
  other = key();
  other.source_digest = "fedcba9876543210";
  EXPECT_NE(CellCache::key_of(other), base);
  other = key();
  other.quick = true;
  EXPECT_NE(CellCache::key_of(other), base);
  // Field contents must not be able to masquerade as each other across the
  // separator: (config="a", cell="b") != (config="ab", cell="").
  CellKey ab = key();
  ab.config_hash = "a";
  ab.cell_id = "b";
  CellKey ab2 = key();
  ab2.config_hash = "ab";
  ab2.cell_id = "";
  EXPECT_NE(CellCache::key_of(ab), CellCache::key_of(ab2));
}

TEST_F(CellCacheTest, StoreIsIdempotentAndRaceLosingStoreSucceeds) {
  CellCache cache(dir_.string());
  std::string error;
  ASSERT_TRUE(cache.store(key(), "x\n", "sha", 0.1, &error)) << error;
  // Determinism rule 9: a second producer of the same key computed the same
  // bytes, so "the entry already exists" is success, not conflict.
  ASSERT_TRUE(cache.store(key(), "x\n", "sha", 0.1, &error)) << error;
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST_F(CellCacheTest, CorruptedCsvIsRejectedWithNamedDiagnostic) {
  CellCache cache(dir_.string());
  std::string error;
  ASSERT_TRUE(cache.store(key(), "a,b\n1,2\n", "sha", 0.1, &error)) << error;
  const fs::path entry = dir_ / CellCache::key_of(key());
  spit(entry / "cell.csv", "a,b\n1,TAMPERED\n");
  const CacheLookup miss = cache.lookup(key());
  EXPECT_FALSE(miss.hit);
  EXPECT_NE(miss.diagnostic.find("checksum"), std::string::npos) << miss.diagnostic;
  EXPECT_EQ(cache.stats().corrupt, 1u);
}

TEST_F(CellCacheTest, MissingCsvAndMangledMetaAreRejected) {
  CellCache cache(dir_.string());
  std::string error;
  ASSERT_TRUE(cache.store(key(), "a\n", "sha", 0.1, &error)) << error;
  const fs::path entry = dir_ / CellCache::key_of(key());
  fs::remove(entry / "cell.csv");
  CacheLookup miss = cache.lookup(key());
  EXPECT_FALSE(miss.hit);
  EXPECT_NE(miss.diagnostic.find("cell.csv"), std::string::npos) << miss.diagnostic;

  ASSERT_TRUE(cache.store(key("cell_m"), "a\n", "sha", 0.1, &error)) << error;
  spit(dir_ / CellCache::key_of(key("cell_m")) / "meta.json", "{not json");
  miss = cache.lookup(key("cell_m"));
  EXPECT_FALSE(miss.hit);
  EXPECT_FALSE(miss.diagnostic.empty());
}

TEST_F(CellCacheTest, KeyCollisionDegradesToMissNotWrongBytes) {
  CellCache cache(dir_.string());
  std::string error;
  ASSERT_TRUE(cache.store(key(), "a\n", "sha", 0.1, &error)) << error;
  // Simulate an FNV collision: an entry stored under OUR key whose recorded
  // provenance belongs to a different probe. Rewriting meta.json's cell_id
  // (keeping everything else valid) is exactly what a collision looks like
  // at lookup time.
  const fs::path meta = dir_ / CellCache::key_of(key()) / "meta.json";
  std::string text = slurp(meta);
  const std::size_t at = text.find("cell_a");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 6, "cell_x");
  spit(meta, text);
  const CacheLookup miss = cache.lookup(key());
  EXPECT_FALSE(miss.hit);
  EXPECT_NE(miss.diagnostic.find("provenance"), std::string::npos) << miss.diagnostic;
}

TEST_F(CellCacheTest, StatsAndGcEvictOldestPastBudgetAndPurgeJunk) {
  CellCache cache(dir_.string());
  std::string error;
  ASSERT_TRUE(cache.store(key("old"), std::string(100, 'o') + "\n", "sha", 0.1, &error));
  ASSERT_TRUE(cache.store(key("new"), std::string(100, 'n') + "\n", "sha", 0.1, &error));
  // Make "old" unambiguously older than "new" without sleeping.
  fs::last_write_time(dir_ / CellCache::key_of(key("old")) / "meta.json",
                      fs::last_write_time(dir_ / CellCache::key_of(key("new")) / "meta.json") -
                          std::chrono::hours(1));
  fs::create_directories(dir_ / "tmp-999-abandoned");  // a crashed store()
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.csv_bytes, 202u);
  EXPECT_EQ(stats.stray, 1u);

  // Budget fits exactly one full entry (cell.csv + meta.json): the OLDER
  // one is evicted, the stray always is.
  std::uint64_t one_entry = 0;
  for (const auto& file :
       fs::directory_iterator(dir_ / CellCache::key_of(key("new"))))
    one_entry += fs::file_size(file.path());
  cache.gc(one_entry);
  EXPECT_FALSE(cache.lookup(key("old")).hit);
  EXPECT_TRUE(cache.lookup(key("new")).hit);
  EXPECT_FALSE(fs::exists(dir_ / "tmp-999-abandoned"));

  EXPECT_EQ(cache.gc(0), 1u);  // zero budget = empty cache
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// Lease files

class FileLockTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = fresh_dir("lock"); }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(FileLockTest, AcquireIsExclusiveUntilReleased) {
  const std::string path = (dir_ / "c.lease").string();
  ASSERT_TRUE(lease_try_acquire(path, "c"));
  EXPECT_FALSE(lease_try_acquire(path, "c"));  // second claimant loses
  LeaseInfo info;
  ASSERT_TRUE(lease_read(path, &info));
  EXPECT_EQ(info.pid, ::getpid());
  EXPECT_EQ(info.host, lease_hostname());
  EXPECT_EQ(info.name, "c");
  // We are alive, so our own lease is never stale — at any age threshold.
  EXPECT_FALSE(lease_is_stale(path, 0.0));
  EXPECT_FALSE(lease_is_stale(path, 0.001));
  lease_release(path);
  EXPECT_TRUE(lease_try_acquire(path, "c"));
}

TEST_F(FileLockTest, DeadHolderLeaseIsStale) {
  const std::string path = (dir_ / "c.lease").string();
  // A real dead holder: the child acquires the lease and exits; after
  // waitpid its PID refers to no process (modulo reuse, negligible in-test).
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) std::_Exit(lease_try_acquire(path, "c") ? 0 : 1);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_EQ(status, 0);
  EXPECT_TRUE(lease_is_stale(path, 0.0));
  // Takeover: unlink, then a fresh acquire wins.
  lease_release(path);
  EXPECT_TRUE(lease_try_acquire(path, "c"));
  EXPECT_FALSE(lease_is_stale(path, 0.0));
}

TEST_F(FileLockTest, MalformedLeaseIsStaleAndMissingLeaseIsNot) {
  const std::string path = (dir_ / "c.lease").string();
  spit(path, "garbage with no pid line\n");
  EXPECT_TRUE(lease_is_stale(path, 0.0));
  fs::remove(path);
  EXPECT_FALSE(lease_is_stale(path, 0.0));  // nothing to take over
}

TEST_F(FileLockTest, ForeignHostLeaseNeedsExplicitAgeOptIn) {
  const std::string path = (dir_ / "c.lease").string();
  spit(path, "pid 1\nhost not-" + lease_hostname() + "\nname c\nstarted_utc t\n");
  fs::last_write_time(path, fs::file_time_type::clock::now() - std::chrono::hours(2));
  // PID liveness means nothing across hosts: without the age opt-in the
  // lease must be presumed held.
  EXPECT_FALSE(lease_is_stale(path, 0.0));
  EXPECT_TRUE(lease_is_stale(path, 3600.0));        // 2h old > 1h threshold
  EXPECT_FALSE(lease_is_stale(path, 3 * 3600.0));   // 2h old < 3h threshold
}

// ---------------------------------------------------------------------------
// `cr version --json` round-trip

TEST(SourceDigest, IsStableSixteenHex) {
  const std::string digest = source_digest();
  ASSERT_EQ(digest.size(), 16u);
  for (const char c : digest)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << digest;
  EXPECT_EQ(source_digest(), digest);  // cached, deterministic
}

TEST(VersionJson, RoundTripsThroughTheJsonReader) {
  const JsonParseResult parsed = JsonValue::parse(version_json("abc1234", "Debug"));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.value->find("git_sha")->as_string(), "abc1234");
  EXPECT_EQ(parsed.value->find("build")->as_string(), "Debug");
  EXPECT_EQ(parsed.value->find("source_digest")->as_string(), source_digest());
  EXPECT_TRUE(parsed.value->find("cxx")->is_number());
}

// ---------------------------------------------------------------------------
// run_suite × CellCache, and the multi-worker fabric

/// Two-cell suite (same shape as test_suite's fixture) plus a cache dir.
class DistRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    out_ = fresh_dir("out");
    cache_ = fresh_dir("cachedir");
    const JsonParseResult json = JsonValue::parse(
        R"({"name": "tiny", "defaults": {"reps": 1},
            "cells": [{"bench": "scenario",
                       "grid": {"scenario": ["batch"], "horizon": [512], "n": [16],
                                "jam": [0.0, 0.5]},
                       "seeds": [3]}]})");
    ASSERT_TRUE(json.ok()) << json.error;
    const SuiteLoadResult loaded = parse_suite(*json.value, "test-manifest");
    ASSERT_TRUE(loaded.ok()) << loaded.error;
    spec_ = loaded.spec;
  }
  void TearDown() override {
    fs::remove_all(out_);
    fs::remove_all(cache_);
  }

  SuiteRunOptions options(const fs::path& out) const {
    SuiteRunOptions opts;
    opts.output_dir = out.string();
    opts.threads = 1;
    opts.cache_dir = cache_.string();
    return opts;
  }

  std::map<std::string, std::string> csvs(const fs::path& dir) const {
    std::map<std::string, std::string> found;
    for (const auto& entry : fs::directory_iterator(dir))
      if (entry.path().extension() == ".csv")
        found[entry.path().filename().string()] = slurp(entry.path());
    return found;
  }

  std::vector<std::string> worker_manifests(const fs::path& dir) const {
    std::vector<std::string> paths;
    for (const auto& entry : fs::directory_iterator(dir))
      if (entry.path().filename().string().rfind("manifest.work-", 0) == 0)
        paths.push_back(entry.path().string());
    return paths;
  }

  /// Fork `n` workers, all draining `out`; returns their exit codes.
  std::vector<int> run_workers(int n, const fs::path& out, double stale_after = 0.0) const {
    WorkerOptions opts;
    opts.output_dir = out.string();
    opts.cache_dir = "";  // force real computation
    opts.threads = 1;
    opts.stale_after_seconds = stale_after;
    std::vector<pid_t> pids;
    for (int i = 0; i < n; ++i) {
      const pid_t pid = fork();
      if (pid == 0) {
        std::ostringstream sink;
        std::_Exit(run_worker(spec_, opts, sink));
      }
      pids.push_back(pid);
    }
    std::vector<int> codes;
    for (const pid_t pid : pids) {
      int status = 0;
      ::waitpid(pid, &status, 0);
      codes.push_back(WIFEXITED(status) ? WEXITSTATUS(status) : 128);
    }
    return codes;
  }

  fs::path out_, cache_;
  SuiteSpec spec_;
};

TEST_F(DistRunTest, WarmCacheRunIsAllHitsAndByteIdentical) {
  std::ostringstream cold;
  ASSERT_EQ(run_suite(spec_, options(out_), cold), 0);
  EXPECT_NE(cold.str().find("2 ran, 0 cached, 0 cache hits"), std::string::npos)
      << cold.str();
  const auto reference = csvs(out_);
  ASSERT_EQ(reference.size(), 2u);

  // A FRESH output directory forces every cell through the cache: rule 9
  // says the restored bytes equal recomputation exactly.
  const fs::path out2 = fresh_dir("out_warm");
  std::ostringstream warm;
  ASSERT_EQ(run_suite(spec_, options(out2), warm), 0);
  EXPECT_NE(warm.str().find("0 ran, 0 cached, 2 cache hits"), std::string::npos)
      << warm.str();
  EXPECT_EQ(csvs(out2), reference);

  // The warm manifest records "hit" and the same checksums as the cold one.
  const auto manifest = JsonValue::parse_file((out2 / "manifest.json").string());
  ASSERT_TRUE(manifest.ok()) << manifest.error;
  for (const auto& cell : manifest.value->find("cells")->items()) {
    EXPECT_EQ(cell->find("status")->as_string(), "hit");
    EXPECT_EQ(cell->find("csv_fnv")->as_string().size(), 16u);
  }
  fs::remove_all(out2);
}

TEST_F(DistRunTest, CodeChangeMissesViaSourceDigest) {
  std::ostringstream cold;
  ASSERT_EQ(run_suite(spec_, options(out_), cold), 0);
  // Same config, same cell, DIFFERENT binary: must not hit.
  CellCache cache(cache_.string());
  CellKey probe;
  probe.config_hash = suite_config_hash(expand_suite(spec_));
  probe.cell_id = expand_suite(spec_)[0].id;
  probe.source_digest = source_digest();
  ASSERT_TRUE(cache.lookup(probe).hit);
  probe.source_digest = "0000000000000000";
  EXPECT_FALSE(cache.lookup(probe).hit);
}

TEST_F(DistRunTest, ResumeReRunsCellWhoseCsvFailsItsRecordedChecksum) {
  std::ostringstream first;
  ASSERT_EQ(run_suite(spec_, options(out_), first), 0);
  const auto reference = csvs(out_);
  const std::string victim = reference.begin()->first;
  spit(out_ / victim, reference.at(victim) + "bitrot\n");

  std::ostringstream second;
  ASSERT_EQ(run_suite(spec_, options(out_), second), 0);
  EXPECT_NE(second.str().find("fails its recorded checksum"), std::string::npos)
      << second.str();
  EXPECT_EQ(csvs(out_), reference);  // corruption healed, bytes restored
}

TEST_F(DistRunTest, ThreeWorkersDrainSuiteByteIdenticalToSingleProcess) {
  // Reference: plain single-process run (no cache, so both paths compute).
  const fs::path ref = fresh_dir("ref");
  SuiteRunOptions ref_opts = options(ref);
  ref_opts.cache_dir.clear();
  std::ostringstream ref_log;
  ASSERT_EQ(run_suite(spec_, ref_opts, ref_log), 0);
  const auto reference = csvs(ref);

  // One worker died mid-claim before the fleet started: a lease whose
  // holder is a real, reaped (dead) PID. The fleet must take it over.
  const std::string first_cell = expand_suite(spec_)[0].id;
  fs::create_directories(out_ / ".locks");
  const std::string orphan = (out_ / ".locks" / (first_cell + ".lease")).string();
  const pid_t dead = fork();
  ASSERT_GE(dead, 0);
  if (dead == 0) std::_Exit(lease_try_acquire(orphan, first_cell) ? 0 : 1);
  int status = 0;
  ASSERT_EQ(::waitpid(dead, &status, 0), dead);
  ASSERT_EQ(status, 0);
  ASSERT_TRUE(fs::exists(orphan));

  for (const int code : run_workers(3, out_)) EXPECT_EQ(code, 0);
  EXPECT_EQ(csvs(out_), reference);  // byte-equal to the unsharded run

  // Union the worker manifests; the merged manifest must carry every cell
  // as a success with the reference checksums.
  MergeOptions merge;
  merge.manifest_paths = worker_manifests(out_);
  ASSERT_EQ(merge.manifest_paths.size(), 3u);
  std::ostringstream merge_log;
  ASSERT_EQ(merge_manifests(merge, merge_log), 0) << merge_log.str();
  const auto merged = JsonValue::parse_file((out_ / "manifest.json").string());
  ASSERT_TRUE(merged.ok()) << merged.error;
  EXPECT_EQ(merged.value->find("config_hash")->as_string(),
            suite_config_hash(expand_suite(spec_)));
  ASSERT_EQ(merged.value->find("cells")->items().size(), 2u);
  for (const auto& cell : merged.value->find("cells")->items()) {
    const std::string id = cell->find("id")->as_string();
    EXPECT_EQ(cell->find("csv_fnv")->as_string(), file_fnv16((out_ / (id + ".csv")).string()));
  }
  // The merged manifest is what resume/verify read: it must scan as
  // compatible prior output for this exact configuration.
  const PriorOutputs prior =
      scan_prior_outputs(out_.string(), suite_config_hash(expand_suite(spec_)), false);
  EXPECT_TRUE(prior.compatible) << prior.message;
  fs::remove_all(ref);
}

TEST_F(DistRunTest, FailedCellIsTerminalAcrossWorkersAndBlocksMerge) {
  // A cell that always dies: junk flag value hits CR_CHECK in the child.
  const JsonParseResult json = JsonValue::parse(
      R"({"name": "tiny", "defaults": {"reps": 1},
          "cells": [{"bench": "scenario", "grid": {"horizon": ["junk"], "n": [16]}},
                    {"bench": "scenario", "grid": {"horizon": [512], "n": [16]}}]})");
  ASSERT_TRUE(json.ok()) << json.error;
  const SuiteLoadResult loaded = parse_suite(*json.value, "test-manifest");
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  spec_ = loaded.spec;

  const std::vector<int> codes = run_workers(2, out_);
  EXPECT_EQ(codes[0], 1);
  EXPECT_EQ(codes[1], 1);
  // The failure marker makes the failure terminal — exactly one `.failed`
  // file, and both manifests record the cell as failed rather than one
  // worker retrying forever.
  EXPECT_TRUE(fs::exists(out_ / ".locks" / (expand_suite(spec_)[0].id + ".failed")));

  MergeOptions merge;
  merge.manifest_paths = worker_manifests(out_);
  ASSERT_EQ(merge.manifest_paths.size(), 2u);
  std::ostringstream log;
  EXPECT_EQ(merge_manifests(merge, log), 1);
  EXPECT_NE(log.str().find("refusing to write an incomplete/conflicted manifest"),
            std::string::npos)
      << log.str();
  EXPECT_FALSE(fs::exists(out_ / "manifest.json"));
}

// ---------------------------------------------------------------------------
// `cr suite merge` on crafted manifests

class MergeTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = fresh_dir("merge"); }
  void TearDown() override { fs::remove_all(dir_); }

  std::string manifest(const std::string& name, const std::string& config,
                       const std::string& cells, bool quick = false) {
    const fs::path path = dir_ / name;
    spit(path, std::string("{\"suite\": \"s\", \"description\": \"d\", ") +
                   "\"git_sha\": \"abc\", \"config_hash\": \"" + config +
                   "\", \"shard\": \"1/1\", \"quick\": " + (quick ? "true" : "false") +
                   ", \"started_utc\": \"2026-01-01T00:00:00Z\", " +
                   "\"finished_utc\": \"2026-01-01T00:00:01Z\", \"wall_seconds\": 1.0, " +
                   "\"cells\": [" + cells + "]}");
    return path.string();
  }

  static std::string cell(const std::string& id, const std::string& status,
                          const std::string& fnv) {
    return "{\"id\": \"" + id + "\", \"bench\": \"b\", \"seed\": 1, \"status\": \"" +
           status + "\", \"seconds\": 0.5, \"csv_fnv\": " +
           (fnv.empty() ? "null" : "\"" + fnv + "\"") + "}";
  }

  int merge(const std::vector<std::string>& paths, std::string* log_out) {
    MergeOptions opts;
    opts.manifest_paths = paths;
    opts.check_files = false;  // crafted manifests have no CSVs on disk
    std::ostringstream log;
    const int rc = merge_manifests(opts, log);
    *log_out = log.str();
    return rc;
  }

  fs::path dir_;
};

TEST_F(MergeTest, UnionsComplementaryShards) {
  // Shard views of a two-cell suite: each ran one cell, recorded the other
  // as "shard" (not its responsibility).
  const std::string a = manifest(
      "manifest.1of2.json", "cafe",
      cell("c1", "ok", "1111111111111111") + ", " + cell("c2", "shard", ""));
  const std::string b = manifest(
      "manifest.2of2.json", "cafe",
      cell("c1", "shard", "") + ", " + cell("c2", "ok", "2222222222222222"));
  std::string log;
  ASSERT_EQ(merge({a, b}, &log), 0) << log;
  const auto merged = JsonValue::parse_file((dir_ / "manifest.json").string());
  ASSERT_TRUE(merged.ok()) << merged.error;
  EXPECT_EQ(merged.value->find("shard")->as_string(), "1/1");
  EXPECT_EQ(merged.value->find("wall_seconds")->as_number(), 2.0);  // summed
  const auto& cells = merged.value->find("cells")->items();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0]->find("id")->as_string(), "c1");  // expansion order kept
  EXPECT_EQ(cells[0]->find("csv_fnv")->as_string(), "1111111111111111");
  EXPECT_EQ(cells[1]->find("csv_fnv")->as_string(), "2222222222222222");
  ASSERT_NE(merged.value->find("merged_from"), nullptr);
  EXPECT_EQ(merged.value->find("merged_from")->items().size(), 2u);
}

TEST_F(MergeTest, AgreeingDuplicatesMergeButConflictingChecksumsAreFatal) {
  const std::string a = manifest(
      "a.json", "cafe", cell("c1", "ok", "1111111111111111"));
  const std::string b = manifest(
      "b.json", "cafe", cell("c1", "peer", "1111111111111111"));
  std::string log;
  EXPECT_EQ(merge({a, b}, &log), 0) << log;  // same bytes — fine

  const std::string c = manifest(
      "c.json", "cafe", cell("c1", "ok", "2222222222222222"));
  EXPECT_EQ(merge({a, c}, &log), 1);
  EXPECT_NE(log.find("CONFLICT"), std::string::npos) << log;
}

TEST_F(MergeTest, RejectsMismatchedConfigAndQuickMode) {
  const std::string a = manifest("a.json", "cafe", cell("c1", "ok", "1111111111111111"));
  const std::string b = manifest("b.json", "f00d", cell("c1", "ok", "1111111111111111"));
  std::string log;
  EXPECT_EQ(merge({a, b}, &log), 1);
  EXPECT_NE(log.find("different configuration"), std::string::npos) << log;

  const std::string q = manifest("q.json", "cafe",
                                 cell("c1", "ok", "1111111111111111"), /*quick=*/true);
  EXPECT_EQ(merge({a, q}, &log), 1);
}

TEST_F(MergeTest, RejectsIncompleteCoverage) {
  const std::string a = manifest(
      "a.json", "cafe",
      cell("c1", "ok", "1111111111111111") + ", " + cell("c2", "shard", ""));
  std::string log;
  EXPECT_EQ(merge({a}, &log), 1);
  EXPECT_NE(log.find("not completed"), std::string::npos) << log;
  EXPECT_NE(log.find("refusing"), std::string::npos) << log;
}

TEST_F(MergeTest, RejectsPreChecksumEraManifests) {
  // A success cell without csv_fnv cannot be safely unioned — conflicts
  // would be invisible. Exit 2 = malformed input, not a merge conflict.
  const std::string a = manifest("a.json", "cafe", cell("c1", "ok", ""));
  std::string log;
  EXPECT_EQ(merge({a}, &log), 2);
  EXPECT_NE(log.find("csv_fnv"), std::string::npos) << log;
}

}  // namespace
}  // namespace cr
