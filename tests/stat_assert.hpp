// Statistical assertion helpers shared by the test suites.
//
// The implementation lives in src/common/stat_assert.hpp so that the
// `cr verify` claim checker evaluates the exact same predicates the tests
// do (one assertion path, two harnesses). Each helper returns a
// cr::stat::CheckResult whose templated conversion operator turns it into a
// ::testing::AssertionResult at the EXPECT_TRUE call site, message intact —
// use with EXPECT_TRUE(stat::means_agree(a, b, ...)) as before.
#pragma once

#include <gtest/gtest.h>

#include "common/stat_assert.hpp"
