// Statistical assertion helpers shared by the test suites.
//
// Monte-Carlo tests at fixed seeds fail for one of two reasons: a real
// semantic regression, or a tolerance that was hand-tuned too tight. These
// helpers make the tolerance policy explicit and the failure messages
// diagnostic (both sides, their spread, and the bound that was violated),
// replacing the bare `EXPECT_LT(a, 0.35 * b)` incantations that used to be
// scattered through test_claims.cpp / test_properties.cpp /
// test_cross_engine.cpp.
//
// All helpers return ::testing::AssertionResult — use with
// EXPECT_TRUE(stat::means_agree(a, b, ...)).
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/stats.hpp"

namespace cr::stat {

inline std::string describe(const Accumulator& acc) {
  std::ostringstream os;
  os << acc.mean() << " (sd=" << acc.stddev() << ", n=" << acc.count() << ")";
  return os.str();
}

/// Scalar in [lo, hi] (inclusive).
inline ::testing::AssertionResult in_range(double value, double lo, double hi) {
  if (value >= lo && value <= hi) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "value " << value << " outside [" << lo << ", " << hi << "]";
}

/// `large` grew by at least `min_factor` relative to `small` (superlinearity
/// style checks: scaling up the instance must scale the measurement).
inline ::testing::AssertionResult growth_at_least(double small, double large,
                                                  double min_factor) {
  if (large >= min_factor * small) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "expected growth >= " << min_factor << "x but " << small << " -> " << large
         << " is only " << (small != 0.0 ? large / small : 0.0) << "x";
}

/// `large` grew by at most `max_factor` relative to `small` (polylog style
/// checks: scaling up the instance must NOT scale the measurement much).
inline ::testing::AssertionResult growth_at_most(double small, double large,
                                                 double max_factor) {
  if (large <= max_factor * small) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "expected growth <= " << max_factor << "x but " << small << " -> " << large
         << " is " << (small != 0.0 ? large / small : 0.0) << "x";
}

/// The two scalars agree within a multiplicative band:
/// min/max >= 1/max_ratio. Used for "this normalized quantity is flat"
/// claims.
inline ::testing::AssertionResult within_factor(double a, double b, double max_ratio) {
  const double lo = std::min(a, b);
  const double hi = std::max(a, b);
  if (lo > 0.0 && hi / lo <= max_ratio) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " vs " << b << " differ by " << (lo > 0.0 ? hi / lo : 0.0)
         << "x (allowed " << max_ratio << "x)";
}

/// Two-sample agreement of means: |mean_a - mean_b| must not exceed the
/// combined z-standard-error plus an explicit slack
/// (abs_slack + rel_slack·max(|mean_a|, |mean_b|)). The z·SE term absorbs
/// Monte-Carlo noise; the slack term is the tolerated systematic
/// difference — make it 0 to assert statistical identity.
inline ::testing::AssertionResult means_agree(const Accumulator& a, const Accumulator& b,
                                              double z = 3.0, double rel_slack = 0.0,
                                              double abs_slack = 0.0) {
  const double se_a = a.count() >= 2 ? a.variance() / static_cast<double>(a.count()) : 0.0;
  const double se_b = b.count() >= 2 ? b.variance() / static_cast<double>(b.count()) : 0.0;
  const double se = std::sqrt(se_a + se_b);
  const double bound =
      z * se + abs_slack + rel_slack * std::max(std::abs(a.mean()), std::abs(b.mean()));
  const double diff = std::abs(a.mean() - b.mean());
  if (diff <= bound) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "means differ by " << diff << " > bound " << bound << " (z*SE=" << z * se
         << "): a=" << describe(a) << " b=" << describe(b);
}

/// One-sided dominance with slack: mean_a <= factor·mean_b. The classic
/// "adaptive beats non-adaptive by a constant factor" claim shape.
inline ::testing::AssertionResult mean_at_most(const Accumulator& a, const Accumulator& b,
                                               double factor) {
  if (a.mean() <= factor * b.mean()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "expected mean(a) <= " << factor << "*mean(b) but a=" << describe(a)
         << " b=" << describe(b);
}

/// Empirical quantile q of the sample within [lo, hi] (fixed seeds make
/// this deterministic; bounds encode the claim's predicted band).
inline ::testing::AssertionResult quantile_within(const Quantiles& sample, double q, double lo,
                                                  double hi) {
  const double value = sample.quantile(q);
  if (value >= lo && value <= hi) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "quantile(" << q << ") = " << value << " outside [" << lo << ", " << hi
         << "] over " << sample.size() << " samples";
}

}  // namespace cr::stat
