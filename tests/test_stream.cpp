// Streaming service mode (engine/stream.hpp): the SPSC event ring, the feed
// parser, the synthetic generator, and the StreamSim driver's bit-exact
// kill/restore contract — all in-process (the CLI end-to-end byte-diff is
// the golden_stream_kill_restore CTest in tests/golden/stream_diff.cmake).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/stream.hpp"

namespace cr {
namespace {

// ---------------------------------------------------------------------------
// EventRing.
// ---------------------------------------------------------------------------

TEST(EventRing, CapacityOneBackpressure) {
  EventRing ring(1);
  const StreamEvent a{1, 1, false};
  const StreamEvent b{2, 2, true};
  EXPECT_TRUE(ring.try_push(a));
  EXPECT_FALSE(ring.try_push(b)) << "capacity-1 ring must refuse a second push";
  StreamEvent out;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, a);
  EXPECT_TRUE(ring.try_push(b)) << "pop must free the slot";
  EXPECT_FALSE(ring.exhausted()) << "not closed yet";
  ring.close();
  EXPECT_FALSE(ring.exhausted()) << "closed but not drained";
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, b);
  EXPECT_TRUE(ring.exhausted());
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(EventRing, BlockPolicyIsLosslessAtCapacityOne) {
  // Producer thread pushes N events through a capacity-1 ring with the
  // block (spin/yield) policy; the consumer must see every event in order.
  constexpr std::uint64_t kEvents = 2000;
  EventRing ring(1);
  std::thread producer([&ring] {
    for (std::uint64_t i = 1; i <= kEvents; ++i) {
      const StreamEvent ev{i, i, false};
      while (!ring.try_push(ev)) std::this_thread::yield();
    }
    ring.close();
  });
  std::uint64_t received = 0;
  StreamEvent ev;
  while (!ring.exhausted()) {
    if (!ring.try_pop(ev)) {
      std::this_thread::yield();
      continue;
    }
    ++received;
    EXPECT_EQ(ev.slot, received) << "events must arrive in push order";
  }
  producer.join();
  EXPECT_EQ(received, kEvents);
}

TEST(EventRing, DropPolicyCountsEveryLoss) {
  // Same setup with the drop policy: delivered + dropped must equal the
  // total — no event may vanish unaccounted.
  constexpr std::uint64_t kEvents = 2000;
  EventRing ring(1);
  std::atomic<std::uint64_t> dropped{0};
  std::thread producer([&ring, &dropped] {
    for (std::uint64_t i = 1; i <= kEvents; ++i) {
      const StreamEvent ev{i, i, false};
      if (!ring.try_push(ev)) dropped.fetch_add(1, std::memory_order_relaxed);
    }
    ring.close();
  });
  std::uint64_t received = 0;
  std::uint64_t last_slot = 0;
  StreamEvent ev;
  while (!ring.exhausted()) {
    if (!ring.try_pop(ev)) {
      std::this_thread::yield();
      continue;
    }
    ++received;
    EXPECT_GT(ev.slot, last_slot) << "drops must preserve the survivors' order";
    last_slot = ev.slot;
  }
  producer.join();
  EXPECT_EQ(received + dropped.load(), kEvents);
  EXPECT_GE(received, 1u);
}

// ---------------------------------------------------------------------------
// Feed parsing and the synthetic generator.
// ---------------------------------------------------------------------------

TEST(StreamParse, AcceptsTwoAndThreeFieldLines) {
  StreamEvent ev;
  std::string error;
  ASSERT_TRUE(parse_stream_event("12 3", &ev, &error)) << error;
  EXPECT_EQ(ev, (StreamEvent{12, 3, false}));
  ASSERT_TRUE(parse_stream_event("40 1 1", &ev, &error)) << error;
  EXPECT_EQ(ev, (StreamEvent{40, 1, true}));
  ASSERT_TRUE(parse_stream_event("  7 0 0  # trailing comment", &ev, &error)) << error;
  EXPECT_EQ(ev, (StreamEvent{7, 0, false}));
}

TEST(StreamParse, SkipsBlankAndCommentLines) {
  StreamEvent ev;
  std::string error;
  EXPECT_FALSE(parse_stream_event("", &ev, &error));
  EXPECT_TRUE(error.empty());
  EXPECT_FALSE(parse_stream_event("   ", &ev, &error));
  EXPECT_TRUE(error.empty());
  EXPECT_FALSE(parse_stream_event("# a comment", &ev, &error));
  EXPECT_TRUE(error.empty());
}

TEST(StreamParse, RejectsMalformedLines) {
  StreamEvent ev;
  std::string error;
  EXPECT_FALSE(parse_stream_event("nonsense", &ev, &error));
  EXPECT_NE(error.find("malformed trace line"), std::string::npos);
  EXPECT_FALSE(parse_stream_event("5", &ev, &error));
  EXPECT_NE(error.find("malformed trace line"), std::string::npos);
  EXPECT_FALSE(parse_stream_event("5 1 2", &ev, &error));
  EXPECT_NE(error.find("malformed trace line"), std::string::npos);
  EXPECT_FALSE(parse_stream_event("0 1", &ev, &error));
  EXPECT_NE(error.find("slot 0 is invalid"), std::string::npos);
}

TEST(StreamSynth, DeterministicAndStrictlyIncreasing) {
  const auto a = synth_stream_events(7, 500);
  const auto b = synth_stream_events(7, 500);
  ASSERT_EQ(a.size(), 500u);
  EXPECT_EQ(a, b) << "same (seed, count) must reproduce the same feed";
  slot_t last = 0;
  for (const StreamEvent& ev : a) {
    EXPECT_GT(ev.slot, last);
    last = ev.slot;
  }
  const auto c = synth_stream_events(8, 500);
  EXPECT_NE(a, c) << "different seeds must differ";
}

// ---------------------------------------------------------------------------
// StreamSim: determinism, kill/restore, sparse-vs-dense.
// ---------------------------------------------------------------------------

struct DrainResult {
  std::string jsonl;
  StreamRunSummary summary;
  std::vector<std::uint8_t> last_checkpoint;
};

/// Preload every event (minus the first `skip`) into a ring sized to hold
/// them all, close it, and drain through `sim` — single-threaded and fully
/// deterministic.
DrainResult drain(StreamSim& sim, const std::vector<StreamEvent>& events, std::uint64_t skip) {
  DrainResult out;
  sim.set_checkpoint_sink(
      [&out](const std::vector<std::uint8_t>& blob) { out.last_checkpoint = blob; });
  EventRing ring(events.size() + 1);
  for (std::size_t i = static_cast<std::size_t>(skip); i < events.size(); ++i)
    EXPECT_TRUE(ring.try_push(events[i]));
  ring.close();
  std::ostringstream os;
  out.summary = sim.run(ring, os);
  out.jsonl = os.str();
  return out;
}

StreamOptions test_options() {
  StreamOptions opts;
  opts.seed = 5;
  opts.window = 64;
  return opts;
}

TEST(StreamSim, RerunIsByteIdentical) {
  const auto events = synth_stream_events(5, 400);
  StreamSim a(test_options());
  StreamSim b(test_options());
  const DrainResult ra = drain(a, events, 0);
  const DrainResult rb = drain(b, events, 0);
  ASSERT_TRUE(ra.summary.ok()) << ra.summary.error;
  EXPECT_EQ(ra.jsonl, rb.jsonl);
  EXPECT_GT(ra.summary.windows, 4u);
  EXPECT_EQ(ra.summary.events_applied, events.size());
  EXPECT_NE(ra.jsonl.find("\"done\":true"), std::string::npos);
}

TEST(StreamSim, KillAtWindowRestoreIsByteIdentical) {
  const auto events = synth_stream_events(5, 400);

  StreamSim full(test_options());
  const DrainResult whole = drain(full, events, 0);
  ASSERT_TRUE(whole.summary.ok()) << whole.summary.error;
  ASSERT_GT(whole.summary.windows, 6u) << "need enough windows to kill mid-run";

  // Kill after 3 windows anywhere in the run...
  StreamOptions head_opts = test_options();
  head_opts.max_windows = 3;
  StreamSim head(head_opts);
  const DrainResult head_out = drain(head, events, 0);
  ASSERT_TRUE(head_out.summary.ok()) << head_out.summary.error;
  EXPECT_TRUE(head_out.summary.stopped_by_max_windows);
  ASSERT_FALSE(head_out.last_checkpoint.empty()) << "max_windows stop must cut a checkpoint";

  // ...restore, re-feed the SAME events minus the consumed prefix, run to EOF.
  StreamSim tail(test_options());
  std::string error;
  ASSERT_TRUE(tail.restore(head_out.last_checkpoint, &error)) << error;
  const DrainResult tail_out = drain(tail, events, tail.feed_skip());
  ASSERT_TRUE(tail_out.summary.ok()) << tail_out.summary.error;

  EXPECT_EQ(head_out.jsonl + tail_out.jsonl, whole.jsonl)
      << "head+tail must concatenate to the uninterrupted output byte for byte";
}

TEST(StreamSim, PeriodicCheckpointsAllRestoreExactly) {
  const auto events = synth_stream_events(9, 300);
  StreamOptions opts = test_options();
  opts.seed = 9;
  opts.checkpoint_every = 128;

  // Collect EVERY periodic checkpoint, then verify each one resumes to the
  // same final output tail.
  StreamSim full(opts);
  std::vector<std::vector<std::uint8_t>> checkpoints;
  full.set_checkpoint_sink(
      [&checkpoints](const std::vector<std::uint8_t>& blob) { checkpoints.push_back(blob); });
  EventRing ring(events.size() + 1);
  for (const StreamEvent& ev : events) ASSERT_TRUE(ring.try_push(ev));
  ring.close();
  std::ostringstream os;
  const StreamRunSummary summary = full.run(ring, os);
  ASSERT_TRUE(summary.ok()) << summary.error;
  const std::string whole = os.str();
  ASSERT_GT(checkpoints.size(), 3u);

  for (std::size_t ci = 0; ci + 1 < checkpoints.size(); ci += 2) {
    StreamOptions tail_opts = opts;
    tail_opts.checkpoint_every = 0;
    StreamSim tail(tail_opts);
    std::string error;
    ASSERT_TRUE(tail.restore(checkpoints[ci], &error)) << "checkpoint " << ci << ": " << error;
    const DrainResult tail_out = drain(tail, events, tail.feed_skip());
    ASSERT_TRUE(tail_out.summary.ok()) << tail_out.summary.error;
    EXPECT_TRUE(whole.ends_with(tail_out.jsonl)) << "checkpoint " << ci;
  }
}

TEST(StreamSim, SparseAndDenseTablesMatchByteForByte) {
  const auto events = synth_stream_events(13, 400);
  StreamOptions sparse_opts = test_options();
  sparse_opts.seed = 13;
  sparse_opts.node_table = NodeTableKind::kSparse;
  StreamOptions dense_opts = sparse_opts;
  dense_opts.node_table = NodeTableKind::kDense;

  StreamSim sparse(sparse_opts);
  StreamSim dense(dense_opts);
  const DrainResult rs = drain(sparse, events, 0);
  const DrainResult rd = drain(dense, events, 0);
  ASSERT_TRUE(rs.summary.ok()) << rs.summary.error;
  ASSERT_TRUE(rd.summary.ok()) << rd.summary.error;
  EXPECT_EQ(rs.jsonl, rd.jsonl);

  // The sparse table's residency tracks the backlog, not the arrival count.
  const CjzCoreMemoryStats ms = sparse.memory_stats();
  const CjzCoreMemoryStats md = dense.memory_stats();
  EXPECT_EQ(ms.node_table_slots, ms.peak_live_nodes);
  EXPECT_EQ(md.node_table_slots, rd.summary.arrivals);
  EXPECT_LE(ms.node_table_slots, md.node_table_slots);
}

TEST(StreamSim, NonMonotoneFeedIsANamedError) {
  const std::vector<StreamEvent> events = {{10, 1, false}, {10, 1, false}};
  StreamSim sim(test_options());
  const DrainResult r = drain(sim, events, 0);
  EXPECT_FALSE(r.summary.ok());
  EXPECT_NE(r.summary.error.find("strictly increasing"), std::string::npos);
}

TEST(StreamSim, RestoreRejectsForeignAndCorruptBlobs) {
  StreamSim sim(test_options());
  std::string error;
  EXPECT_FALSE(sim.restore(std::vector<std::uint8_t>{1, 2, 3}, &error));
  EXPECT_NE(error.find("truncated header"), std::string::npos);

  // A stream snapshot corrupted in transit must name the checksum.
  const auto events = synth_stream_events(5, 100);
  StreamOptions opts = test_options();
  opts.max_windows = 1;
  StreamSim head(opts);
  DrainResult head_out = drain(head, events, 0);
  ASSERT_FALSE(head_out.last_checkpoint.empty());
  head_out.last_checkpoint[head_out.last_checkpoint.size() / 2] ^= 0x10;
  StreamSim tail(test_options());
  EXPECT_FALSE(tail.restore(head_out.last_checkpoint, &error));
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos);
}

}  // namespace
}  // namespace cr
