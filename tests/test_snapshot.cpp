// Stop/restore differential suite (determinism rule 8): restoring a
// snapshot and continuing must be BIT-IDENTICAL to never having stopped.
//
// Layers:
//   1. the k-sweep — on every registry scenario, stop at slots spread across
//      the run (coarse fractions plus the slots around the first/last
//      success: mid-cohort, mid-calendar-event, pre-tail and tail
//      boundaries), restore into a fresh core, continue, and require
//      SimResult equality (operator== covers every counter, success time,
//      node stat and slot outcome) — on both node-table kinds;
//   2. adversarial input — corrupted, truncated, version-mismatched and
//      config-mismatched blobs must be rejected with the named diagnostics
//      from common/snapshot.hpp, and arbitrary truncations/bit-flips must
//      never crash (ASan/UBSan runs this suite in CI via `ctest -L stream`);
//   3. WindowedMetrics round-trip — the open window crosses a snapshot
//      boundary intact, and a window-width mismatch is a named error.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/snapshot.hpp"
#include "exp/scenarios.hpp"
#include "metrics/windowed.hpp"
#include "snapshot_harness.hpp"

namespace cr {
namespace {

using snaptest::materialize;
using snaptest::replay;
using snaptest::ReplayCase;
using snaptest::restore_and_continue;
using snaptest::snapshot_at;
using snaptest::stop_restore_replay;
using snaptest::sweep_points;

ScenarioParams small_params() {
  ScenarioParams p;
  p.horizon = 1024;
  p.n = 24;
  p.jam = 0.2;
  p.rate = 0.05;
  return p;
}

ReplayCase make_case(const std::string& scenario, RecordingConfig recording,
                     NodeTableKind table, std::uint64_t seed = 11) {
  ScenarioParams p = small_params();
  p.seed = seed;
  Scenario sc = ScenarioRegistry::instance().build(scenario, p);
  sc.config.recording = recording;
  sc.config.node_table = table;
  return materialize(sc);
}

TEST(SnapshotRestore, KSweepBitExactOnEveryRegistryScenario) {
  // Both table kinds, and the two recording extremes: full_trace carries the
  // densest result state across the snapshot; node_stats carries the node
  // table's id/arrival/sends bookkeeping.
  const struct {
    RecordingConfig recording;
    NodeTableKind table;
    const char* tag;
  } modes[] = {
      {RecordingConfig::full_trace(), NodeTableKind::kDense, "full_trace/dense"},
      {RecordingConfig::full_trace(), NodeTableKind::kSparse, "full_trace/sparse"},
      {RecordingConfig::node_stats(), NodeTableKind::kSparse, "node_stats/sparse"},
  };
  for (const std::string& name : ScenarioRegistry::instance().names()) {
    for (const auto& mode : modes) {
      const ReplayCase rc = make_case(name, mode.recording, mode.table);
      const SimResult full = replay(rc);
      ASSERT_GT(full.slots, 0u) << name;
      for (const slot_t k : sweep_points(full)) {
        std::string error;
        const SimResult resumed = stop_restore_replay(rc, k, &error);
        ASSERT_TRUE(error.empty()) << name << " " << mode.tag << " k=" << k << ": " << error;
        EXPECT_EQ(full, resumed) << name << " " << mode.tag << " k=" << k;
      }
    }
  }
}

TEST(SnapshotRestore, StopConditionRunsSurviveRestore) {
  // A run that trips stop_when_empty ends before the horizon; stopping at or
  // past the stop slot must restore and finish without stepping further.
  ScenarioParams p = small_params();
  p.seed = 23;
  Scenario sc = ScenarioRegistry::instance().build("batch", p);
  sc.config.stop_when_empty = true;
  sc.config.recording = RecordingConfig::full_trace();
  sc.config.node_table = NodeTableKind::kSparse;
  const ReplayCase rc = materialize(sc);
  const SimResult full = replay(rc);
  ASSERT_LT(full.slots, static_cast<slot_t>(p.horizon)) << "batch should drain early";
  for (const slot_t k : sweep_points(full)) {
    std::string error;
    const SimResult resumed = stop_restore_replay(rc, k, &error);
    ASSERT_TRUE(error.empty()) << "k=" << k << ": " << error;
    EXPECT_EQ(full, resumed) << "k=" << k;
  }
}

// ---------------------------------------------------------------------------
// Adversarial blobs: every failure mode is a named diagnostic, never UB.
// ---------------------------------------------------------------------------

class SnapshotRejection : public ::testing::Test {
 protected:
  void SetUp() override {
    rc_ = make_case("batch", RecordingConfig::full_trace(), NodeTableKind::kSparse);
    blob_ = snapshot_at(rc_, 64);
    // Sanity: the pristine blob restores bit-exactly.
    std::string error;
    const SimResult resumed = restore_and_continue(rc_, blob_, &error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_EQ(replay(rc_), resumed);
  }

  std::string restore_error(const std::vector<std::uint8_t>& blob) {
    std::string error;
    restore_and_continue(rc_, blob, &error);
    return error;
  }

  ReplayCase rc_;
  std::vector<std::uint8_t> blob_;
};

TEST_F(SnapshotRejection, TruncatedHeader) {
  const std::vector<std::uint8_t> t(blob_.begin(), blob_.begin() + 16);
  EXPECT_NE(restore_error(t).find("truncated header"), std::string::npos);
}

TEST_F(SnapshotRejection, BadMagic) {
  std::vector<std::uint8_t> b = blob_;
  b[0] ^= 0xFF;
  EXPECT_NE(restore_error(b).find("bad magic"), std::string::npos);
}

TEST_F(SnapshotRejection, VersionMismatch) {
  // Patch the u32 version at header offset 8 (checksum covers the payload
  // only, so this isolates the version check).
  std::vector<std::uint8_t> b = blob_;
  b[8] ^= 0x01;
  EXPECT_NE(restore_error(b).find("schema version mismatch"), std::string::npos);
}

TEST_F(SnapshotRejection, TruncatedPayload) {
  std::vector<std::uint8_t> b = blob_;
  b.pop_back();
  EXPECT_NE(restore_error(b).find("truncated payload"), std::string::npos);
}

TEST_F(SnapshotRejection, CorruptedPayloadByte) {
  std::vector<std::uint8_t> b = blob_;
  b[b.size() / 2] ^= 0x40;
  EXPECT_NE(restore_error(b).find("checksum mismatch"), std::string::npos);
}

TEST_F(SnapshotRejection, TrailingBytesInsidePayload) {
  // A well-formed blob whose payload has extra bytes after the last field:
  // re-serialize the core state with an extra word appended before sealing.
  CounterCjzStreams streams(rc_.config.seed);
  snaptest::CounterCore core(&rc_.fs, rc_.config, rc_.options, std::move(streams),
                             Trace::Storage::kDisabled);
  for (std::size_t i = 0; i < 64 && i < rc_.actions.size(); ++i)
    core.step(static_cast<slot_t>(i + 1), rc_.actions[i], nullptr);
  SnapshotWriter w;
  core.save(w);
  w.u64(0xDEADBEEF);
  EXPECT_NE(restore_error(w.seal(snaptest::kHarnessSnapshotVersion))
                .find("trailing bytes after the last field"),
            std::string::npos);
}

TEST_F(SnapshotRejection, ConfigMismatch) {
  ReplayCase other = rc_;
  other.config.seed += 1;
  std::string error;
  restore_and_continue(other, blob_, &error);
  EXPECT_NE(error.find("config mismatch on config.seed"), std::string::npos);

  other = rc_;
  other.config.node_table = NodeTableKind::kDense;
  restore_and_continue(other, blob_, &error);
  EXPECT_NE(error.find("config mismatch on config.node_table"), std::string::npos);
}

TEST_F(SnapshotRejection, ImplausibleCountIsRejected) {
  // A count field larger than the remaining payload must fail check_count,
  // not allocate or loop out of bounds.
  SnapshotWriter w;
  w.u64(~std::uint64_t{0});
  const std::vector<std::uint8_t> tiny = w.seal(snaptest::kHarnessSnapshotVersion);
  SnapshotReader r(tiny, snaptest::kHarnessSnapshotVersion);
  const std::uint64_t n = r.u64("count");
  EXPECT_FALSE(r.check_count(n, 8, "elements"));
  EXPECT_NE(r.error().find("implausible count"), std::string::npos);
}

TEST_F(SnapshotRejection, EveryTruncationFailsCleanly) {
  // Sweep truncation lengths across the whole blob: all must produce a
  // diagnostic (and, under the CI sanitizers, no out-of-bounds access).
  for (std::size_t len = 0; len < blob_.size(); len += 7) {
    const std::vector<std::uint8_t> t(blob_.begin(),
                                      blob_.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(restore_error(t).empty()) << "len=" << len;
  }
}

TEST_F(SnapshotRejection, BitFlipsNeverDivergeSilently) {
  // Flip one byte at a time across header and payload. Flips in validated
  // bytes must fail with a diagnostic; flips in the header's reserved bytes
  // (offsets 6-7 and 12-15, not covered by the checksum) are framing no-ops
  // and must restore to the exact uninterrupted result. Either way: never a
  // silent divergence, never a crash.
  const SimResult full = replay(rc_);
  for (std::size_t pos = 0; pos < blob_.size(); pos += 13) {
    std::vector<std::uint8_t> b = blob_;
    b[pos] ^= 0x80;
    std::string error;
    const SimResult resumed = restore_and_continue(rc_, b, &error);
    if (error.empty()) {
      EXPECT_EQ(full, resumed) << "pos=" << pos;
    }
  }
}

// ---------------------------------------------------------------------------
// WindowedMetrics round-trip.
// ---------------------------------------------------------------------------

SlotOutcome synth_outcome(slot_t slot) {
  SlotOutcome out;
  out.slot = slot;
  out.senders = slot % 3;
  out.jammed = slot % 7 == 0;
  out.winner = (out.senders == 1 && !out.jammed) ? slot : kNoNode;
  return out;
}

TEST(WindowedSnapshot, OpenWindowCrossesSnapshotIntact) {
  constexpr slot_t kWindow = 16;
  constexpr slot_t kSlots = 100;  // deliberately not a multiple of 16
  constexpr slot_t kCut = 41;     // mid-window

  const auto drive = [](WindowedMetrics& m, slot_t from, slot_t to) {
    for (slot_t s = from; s <= to; ++s)
      m.on_slot(synth_outcome(s), /*injected=*/s % 2, /*live_nodes=*/3 + s % 5);
  };
  const auto collect_into = [](WindowedMetrics& m, std::vector<WindowStats>& sink) {
    m.set_sink([&sink](const WindowStats& ws) { sink.push_back(ws); });
  };

  std::vector<WindowStats> uninterrupted;
  WindowedMetrics full(kWindow);
  collect_into(full, uninterrupted);
  drive(full, 1, kSlots);
  full.on_run_end(SimResult{});

  std::vector<WindowStats> spliced;
  WindowedMetrics head(kWindow);
  collect_into(head, spliced);
  drive(head, 1, kCut);
  SnapshotWriter w;
  head.save(w);
  const std::vector<std::uint8_t> blob = w.seal(1);

  WindowedMetrics tail(kWindow);
  collect_into(tail, spliced);
  SnapshotReader r(blob, 1);
  tail.load(r);
  ASSERT_TRUE(r.ok()) << r.error();
  r.expect_end();
  ASSERT_TRUE(r.ok()) << r.error();
  drive(tail, kCut + 1, kSlots);
  tail.on_run_end(SimResult{});

  ASSERT_EQ(uninterrupted.size(), spliced.size());
  for (std::size_t i = 0; i < uninterrupted.size(); ++i)
    EXPECT_EQ(uninterrupted[i], spliced[i]) << "window " << i;
  EXPECT_EQ(full.peak_backlog(), tail.peak_backlog());
}

TEST(WindowedSnapshot, WindowWidthMismatchIsNamed) {
  WindowedMetrics src(16);
  src.on_slot(synth_outcome(1), 0, 1);
  SnapshotWriter w;
  src.save(w);
  const std::vector<std::uint8_t> blob = w.seal(1);

  WindowedMetrics dst(32);
  SnapshotReader r(blob, 1);
  dst.load(r);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("window width mismatch"), std::string::npos);
}

}  // namespace
}  // namespace cr
