// Property suites (parameterized): invariants that must hold across the
// whole (n × jamming × g-regime) grid, with fixed seeds.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "engine/fast_batch.hpp"
#include "engine/fast_cjz.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "metrics/throughput_check.hpp"
#include "protocols/batch.hpp"
#include "stat_assert.hpp"

namespace cr {
namespace {

// ---------------------------------------------------------------------------
// CJZ batch property: every message eventually gets through, under any
// jamming level below saturation, and the run respects basic accounting.
// ---------------------------------------------------------------------------

using BatchParam = std::tuple<std::uint64_t /*n*/, double /*jam*/>;

class CjzBatchProperty : public ::testing::TestWithParam<BatchParam> {};

TEST_P(CjzBatchProperty, DrainsAndAccountsCorrectly) {
  const auto [n, jam] = GetParam();
  FunctionSet fs = functions_constant_g(4.0);
  ComposedAdversary adv(batch_arrival(n, 1), jam > 0 ? iid_jammer(jam) : no_jam());
  SimConfig cfg;
  cfg.horizon = 2'000'000;
  cfg.seed = 1000 + n;
  cfg.stop_when_empty = true;
  FastCjzSimulator sim(fs, adv, cfg);
  const SimResult res = sim.run();

  EXPECT_EQ(res.successes, n) << "all messages delivered";
  EXPECT_EQ(res.live_at_end, 0u);
  EXPECT_GE(res.total_sends, res.successes);
  EXPECT_LE(res.active_slots, res.slots);
  EXPECT_EQ(res.arrivals, n);
  // No success in a jammed slot; winners are unique senders.
  for (slot_t s = 1; s <= res.slots; ++s) {
    const SlotOutcome& out = sim.trace().outcome(s);
    if (out.jammed) { ASSERT_FALSE(out.success()) << "slot " << s; }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CjzBatchProperty,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 4, 16, 64, 200),
                       ::testing::Values(0.0, 0.15, 0.3)));

// ---------------------------------------------------------------------------
// Throughput-bound property across all three g regimes of the paper: under a
// smooth adversary the (f,g) ratio stays bounded by a small constant.
// ---------------------------------------------------------------------------

struct RegimeCase {
  const char* name;
  int regime;  // 0 const, 1 log, 2 exp-sqrt-log
};

class ThroughputRegime : public ::testing::TestWithParam<RegimeCase> {};

TEST_P(ThroughputRegime, SmoothAdversaryRatioBounded) {
  FunctionSet fs;
  switch (GetParam().regime) {
    case 0: fs = functions_constant_g(4.0); break;
    case 1: fs = functions_log_g(); break;
    default: fs = functions_exp_sqrt_log_g(1.0); break;
  }
  Scenario sc = smooth_scenario(1 << 15, fs, 8.0, 8.0);
  sc.config.seed = 77;
  ThroughputChecker checker(sc.fs);
  const SimResult res = run_fast_cjz(sc.fs, *sc.adversary, sc.config, &checker);
  EXPECT_GT(res.arrivals, 10u);
  EXPECT_TRUE(stat::in_range(checker.max_ratio(), 0.0, 8.0)) << GetParam().name;
  // The system keeps up: most arrivals depart.
  const double served =
      static_cast<double>(res.successes) / static_cast<double>(res.arrivals);
  EXPECT_TRUE(stat::in_range(served, 0.85, 1.0))
      << GetParam().name << ": >=85% of arrivals must depart";
}

INSTANTIATE_TEST_SUITE_P(Regimes, ThroughputRegime,
                         ::testing::Values(RegimeCase{"const", 0}, RegimeCase{"log", 1},
                                           RegimeCase{"exp_sqrt_log", 2}),
                         [](const ::testing::TestParamInfo<RegimeCase>& info) {
                           return info.param.name;
                         });

// ---------------------------------------------------------------------------
// h_data batch property (the paper's Remark after Claim 3.5.1): a constant
// fraction of n messages goes through within O(n) slots, even under constant
// jamming — but completing ALL of them takes longer (see test_claims.cpp).
// ---------------------------------------------------------------------------

using RobustParam = std::tuple<std::uint64_t /*n*/, double /*jam*/>;

class BatchFractionProperty : public ::testing::TestWithParam<RobustParam> {};

TEST_P(BatchFractionProperty, ConstantFractionWithinLinearTime) {
  const auto [n, jam] = GetParam();
  ComposedAdversary adv(batch_arrival(n, 1), jam > 0 ? iid_jammer(jam) : no_jam());
  SimConfig cfg;
  cfg.horizon = 8 * n;
  cfg.seed = 2000 + n;
  cfg.recording = RecordingConfig::success_times();
  const SimResult res = run_fast_batch(profiles::h_data(), adv, cfg);
  EXPECT_GE(res.successes, n / 5)
      << "h_data-batch should deliver >=20% of n within 8n slots (jam=" << jam << ")";
}

INSTANTIATE_TEST_SUITE_P(Grid, BatchFractionProperty,
                         ::testing::Combine(::testing::Values<std::uint64_t>(256, 1024, 4096),
                                            ::testing::Values(0.0, 0.25)));

// ---------------------------------------------------------------------------
// Monotone jamming property: more jamming can only slow the batch down
// (statistically, averaged over seeds).
// ---------------------------------------------------------------------------

TEST(JammingMonotonicity, MeanCompletionGrowsWithJamRate) {
  const std::uint64_t n = 96;
  auto run_at = [&](double jam, std::uint64_t seed) {
    FunctionSet fs = functions_constant_g(4.0);
    ComposedAdversary adv(batch_arrival(n, 1), jam > 0 ? iid_jammer(jam) : no_jam());
    SimConfig cfg;
    cfg.horizon = 2'000'000;
    cfg.seed = seed;
    cfg.stop_when_empty = true;
    return run_fast_cjz(fs, adv, cfg);
  };
  const int reps = 12;
  const auto none = collect(replicate(reps, 3000, [&](std::uint64_t s) { return run_at(0.0, s); }),
                            [](const SimResult& r) { return double(r.last_success); });
  const auto heavy = collect(replicate(reps, 3000, [&](std::uint64_t s) { return run_at(0.35, s); }),
                             [](const SimResult& r) { return double(r.last_success); });
  EXPECT_TRUE(stat::mean_at_most(none, heavy, 1.0))
      << "35% jamming must not finish the batch faster than no jamming";
}

// ---------------------------------------------------------------------------
// Reactive (adaptive) jamming: the algorithm still drains the batch when the
// adversary targets post-success slots.
// ---------------------------------------------------------------------------

TEST(AdaptiveJamming, ReactiveJammerDoesNotStallBatch) {
  const std::uint64_t n = 128;
  FunctionSet fs = functions_constant_g(4.0);
  ComposedAdversary adv(batch_arrival(n, 1), reactive_jammer(fs.g, 2.0, 2));
  SimConfig cfg;
  cfg.horizon = 2'000'000;
  cfg.seed = 4000;
  cfg.stop_when_empty = true;
  const SimResult res = run_fast_cjz(fs, adv, cfg);
  EXPECT_EQ(res.successes, n);
}

}  // namespace
}  // namespace cr
