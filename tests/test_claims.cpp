// The ClaimRegistry, evaluated in-process — the gtest harness over the same
// assertion path `cr verify` drives from the CLI.
//
// Until PR 8 this file held hand-rolled reproductions of individual paper
// claims with their own tolerances; those now live as registered ClaimSpecs
// in src/verify/claims.cpp, and this suite (a) runs the quick evidence suite
// (suites/quick.json, --quick) into a temp directory through the real
// run_suite path, (b) evaluates every registered claim against it, and (c)
// guards the registry's evidence-cell ids against the checked-in manifests
// so a renamed cell or grid axis fails here instead of surfacing as a
// missing-file "error" verdict in CI. One assertion path, two harnesses.
//
// Requires CR_SOURCE_DIR (set in tests/CMakeLists.txt) to locate the
// manifests.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cli/suite.hpp"
#include "verify/claim_registry.hpp"
#include "verify/verify.hpp"

namespace cr {
namespace {

namespace fs = std::filesystem;
using verify::ClaimRegistry;
using verify::ClaimSpec;

std::string manifest_path(const char* name) {
  return std::string(CR_SOURCE_DIR) + "/suites/" + name;
}

std::set<std::string> expanded_ids(const char* manifest) {
  const SuiteLoadResult loaded = load_suite(manifest_path(manifest));
  EXPECT_TRUE(loaded.ok()) << loaded.error;
  std::set<std::string> ids;
  for (const SuiteCell& cell : expand_suite(loaded.spec)) ids.insert(cell.id);
  return ids;
}

TEST(ClaimRegistry, CoversThePaper) {
  const auto& entries = ClaimRegistry::instance().entries();
  // ISSUE 8 acceptance floor: the 12 E-bench claims plus scenario sweeps.
  EXPECT_GE(entries.size(), 14u);
  for (const ClaimSpec& spec : entries) {
    SCOPED_TRACE(spec.id);
    EXPECT_FALSE(spec.title.empty());
    EXPECT_FALSE(spec.statement.empty());
    EXPECT_FALSE(spec.bound.empty());
    EXPECT_FALSE(spec.cells.empty());
    EXPECT_FALSE(spec.columns.empty());
    EXPECT_NE(spec.check, nullptr);
  }
}

// Drift guard: every claim's evidence cells must exist in the manifest that
// mode evaluates against — full ids in suites/paper_repro.json, quick ids in
// suites/quick.json. A manifest edit that renames a cell (new grid axis,
// different seed) fails here with the claim and id named.
TEST(ClaimRegistry, EvidenceCellsMatchTheManifests) {
  const std::set<std::string> full_ids = expanded_ids("paper_repro.json");
  const std::set<std::string> quick_ids = expanded_ids("quick.json");
  for (const ClaimSpec& spec : ClaimRegistry::instance().entries()) {
    SCOPED_TRACE(spec.id);
    for (const std::string& cell : spec.evidence_cells(/*quick=*/false))
      EXPECT_TRUE(full_ids.count(cell)) << "cell \"" << cell
                                        << "\" not in suites/paper_repro.json's expansion";
    for (const std::string& cell : spec.evidence_cells(/*quick=*/true))
      EXPECT_TRUE(quick_ids.count(cell)) << "cell \"" << cell
                                         << "\" not in suites/quick.json's expansion";
  }
}

// The full evaluation: run the quick evidence suite once (forked cells, the
// real run_suite path), then every claim in one TEST — a single evidence
// run shared across all claims instead of one whole suite per gtest case
// (gtest_discover_tests forks the binary per TEST).
TEST(Claims, AllClaimsPassOnAFreshQuickRun) {
  const fs::path dir =
      fs::temp_directory_path() / ("cr_test_claims_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  const SuiteLoadResult loaded = load_suite(manifest_path("quick.json"));
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  SuiteRunOptions opts;
  opts.output_dir = dir.string();
  opts.quick = true;
  opts.force = true;
  opts.threads = 2;
  std::ostringstream log;
  ASSERT_EQ(run_suite(loaded.spec, opts, log), 0) << log.str();

  const std::vector<verify::ClaimOutcome> outcomes =
      verify::evaluate_claims(dir.string(), /*quick=*/true);
  EXPECT_EQ(outcomes.size(), ClaimRegistry::instance().entries().size());
  for (const verify::ClaimOutcome& outcome : outcomes) {
    SCOPED_TRACE(outcome.id);
    EXPECT_EQ(outcome.verdict, "pass") << outcome.detail;
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace cr
