// Tests pinning the paper's quantitative claims on small instances (the
// bench binaries measure the same effects at full scale):
//   * Claim 3.5.1   — h_data-batch needs ω(n) slots to finish all n.
//   * Theorem 4.2   — adaptive backoff beats non-adaptive sequences under
//                     prefix jamming.
//   * Lemma 4.1 / Thm 1.3 — sends-before-first-success grows ~ log²t.
//   * Energy        — CJZ per-node channel accesses stay polylogarithmic.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "engine/fast_batch.hpp"
#include "engine/fast_cjz.hpp"
#include "engine/generic_sim.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "metrics/metrics.hpp"
#include "protocols/baselines.hpp"
#include "protocols/batch.hpp"
#include "protocols/cjz_node.hpp"
#include "stat_assert.hpp"

namespace cr {
namespace {

// h_data completion time has a heavy (truncated-Pareto) tail: once one node
// remains at slot s, P[still unsent at slot x] ≈ s/x. Means are therefore
// horizon-dominated; the robust statistic is the median across seeds.
double median_completion_over_n(std::uint64_t n, int reps, std::uint64_t base_seed) {
  Quantiles q;
  for (int r = 0; r < reps; ++r) {
    ComposedAdversary adv(batch_arrival(n, 1), no_jam());
    SimConfig cfg;
    cfg.horizon = 64 * n * n;  // generous: completion is ~Θ(n²)
    cfg.seed = base_seed + r;
    cfg.stop_when_empty = true;
    const SimResult res = run_fast_batch(profiles::h_data(), adv, cfg);
    q.add(static_cast<double>(res.live_at_end == 0 ? res.last_success : res.slots) /
          static_cast<double>(n));
  }
  return q.median();
}

TEST(Claim351, HdataBatchCompletionIsSuperlinear) {
  // Claim 3.5.1 proves ALL n messages need ω(n) slots w.h.p. Empirically the
  // lone-survivor phase makes completion ~ n², so completion/n must grow
  // clearly when n scales 8x.
  // The prefactor of the ~n² law fluctuates across seeds even in the
  // median; 1.5x growth of completion/n over an 8x n scale is already
  // incompatible with O(n) completion.
  const double small = median_completion_over_n(64, 15, 11000);
  const double large = median_completion_over_n(512, 15, 12000);
  EXPECT_TRUE(stat::growth_at_least(small, large, 1.5))
      << "median completion/n must grow when n scales 8x";
}

TEST(Claim351, CompletionScalesRoughlyQuadratically) {
  // log-log fit of median completion vs n should have slope ~2 (between 1.4
  // and 2.6): clearly superlinear, clearly polynomial.
  std::vector<double> log_n, log_c;
  for (std::uint64_t n : {64ull, 128ull, 256ull, 512ull}) {
    const double c = median_completion_over_n(n, 9, 13000 + n);
    log_n.push_back(std::log2(static_cast<double>(n)));
    log_c.push_back(std::log2(c * static_cast<double>(n)));
  }
  const LinearFit fit = fit_linear(log_n, log_c);
  EXPECT_TRUE(stat::in_range(fit.slope, 1.4, 2.6))
      << "completion must be superlinear in n but not worse than ~quadratic";
}

struct FirstSuccessStats {
  Accumulator time;    ///< first-success slot (t when never succeeded)
  Accumulator excess;  ///< first-success slot minus the jammed prefix
  Accumulator sends;
};

FirstSuccessStats single_node_under_prefix_jam(ProtocolFactory& factory, slot_t t, slot_t prefix,
                                               int reps, std::uint64_t base_seed) {
  FirstSuccessStats stats;
  for (int r = 0; r < reps; ++r) {
    ComposedAdversary adv(batch_arrival(1, 1), prefix_jammer(prefix));
    SimConfig cfg;
    cfg.horizon = t;
    cfg.seed = base_seed + r;
    cfg.stop_when_empty = true;
    const SimResult res = run_generic(factory, adv, cfg);
    // total_sends at stop == the lone node's sends up to its success.
    const double first = static_cast<double>(res.first_success == 0 ? t : res.first_success);
    stats.time.add(first);
    stats.excess.add(first - static_cast<double>(prefix));
    stats.sends.add(static_cast<double>(res.total_sends));
  }
  return stats;
}

TEST(Theorem42, AdaptiveBackoffBeatsNonAdaptiveUnderPrefixJam) {
  // Jam slots [1, t/16]; a single node wants to get through. The adaptive
  // h-backoff keeps its per-stage send budget and succeeds soon after the
  // jamming stops; the non-adaptive 1/k sequence has decayed and needs
  // ~ another prefix-length of slots.
  const slot_t t = 1 << 16;
  const slot_t prefix = t / 16;
  auto adaptive = backoff_protocol_factory(functions_constant_g(4.0));
  ProfileProtocolFactory nonadaptive(profiles::h_data());
  const auto a = single_node_under_prefix_jam(*adaptive, t, prefix, 16, 21000);
  const auto na = single_node_under_prefix_jam(nonadaptive, t, prefix, 16, 22000);
  EXPECT_TRUE(stat::mean_at_most(a.time, na.time, 1.0));
  // The adaptive protocol's *excess* beyond the unavoidable prefix should be
  // clearly smaller.
  EXPECT_TRUE(stat::mean_at_most(a.excess, na.excess, 0.7));
}

TEST(Lemma41, BackoffSendsBeforeFirstSuccessGrowPolylogarithmically) {
  // Under prefix jamming of length t/(4g(t)), the lone h-backoff node makes
  // Θ(f(t)·log t) = Θ(log²t / log²g) sends before its first success. Check
  // sends grow far slower than t: t scales by 16, sends by < 4.
  auto factory = backoff_protocol_factory(functions_constant_g(4.0));
  const auto small = single_node_under_prefix_jam(*factory, 1 << 12, (1 << 12) / 16, 16, 31000);
  const auto large = single_node_under_prefix_jam(*factory, 1 << 16, (1 << 16) / 16, 16, 32000);
  EXPECT_TRUE(stat::growth_at_least(small.sends.mean(), large.sends.mean(), 1.0))
      << "more jamming -> more retries";
  EXPECT_TRUE(stat::growth_at_most(small.sends.mean(), large.sends.mean(), 4.0))
      << "growth must be polylogarithmic, not polynomial (t grew 16x)";
}

TEST(Energy, CjzPerNodeSendsArePolylogarithmic) {
  const std::uint64_t n = 192;
  CjzFactory factory(functions_constant_g(4.0));
  ComposedAdversary adv(batch_arrival(n, 1), no_jam());
  SimConfig cfg;
  cfg.horizon = 500'000;
  cfg.seed = 41000;
  cfg.stop_when_empty = true;
  cfg.recording = RecordingConfig::node_stats();
  const SimResult res = run_generic(factory, adv, cfg);
  ASSERT_EQ(res.successes, n);
  const EnergyReport rep = energy_report(res);
  const double logn = std::log2(static_cast<double>(n));
  EXPECT_TRUE(stat::in_range(rep.mean, 1.0, 4.0 * logn * logn))
      << "mean sends should be O(log² n)";
  EXPECT_TRUE(stat::in_range(rep.max, 1.0, 40.0 * logn * logn));
}

TEST(WorstCase, ThroughputScalesAsTOverLogT) {
  // Intro claim: with constant-fraction jamming, Θ(t/log t) messages make it
  // through t slots. Check successes·log(t)/t stays within a constant band
  // as t quadruples.
  auto run_at = [&](slot_t t, std::uint64_t seed) {
    Scenario sc = worst_case_scenario(t, 0.25, 4.0, seed);
    sc.config.seed = seed;
    return run_fast_cjz(sc.fs, *sc.adversary, sc.config);
  };
  auto normalized = [&](slot_t t, std::uint64_t base) {
    const auto results = replicate(6, base, [&](std::uint64_t s) { return run_at(t, s); });
    return collect(results, [t](const SimResult& r) {
      return static_cast<double>(r.successes) * std::log2(static_cast<double>(t)) /
             static_cast<double>(t);
    }).mean();
  };
  const double v1 = normalized(1 << 14, 51000);
  const double v2 = normalized(1 << 16, 52000);
  EXPECT_GT(v1, 0.05) << "normalized throughput should be bounded away from 0";
  EXPECT_GT(v2, 0.05);
  EXPECT_TRUE(stat::within_factor(v1, v2, 2.5))
      << "successes·log t/t should be roughly flat in t";
}

TEST(Baselines, CjzBeatsHdataBatchOnCompletion) {
  // The paper's own baseline comparison: h_data-batch (plain exponential
  // backoff) cannot finish an n-batch in O(n) slots (Claim 3.5.1); CJZ can.
  // On a batch, windowed BEB is asymptotically comparable to CJZ (both
  // ~n log n), so the crisp separation is against the probability profile.
  const std::uint64_t n = 128;
  const int reps = 10;
  auto run_hdata = [&](std::uint64_t s) {
    ComposedAdversary adv(batch_arrival(n, 1), no_jam());
    SimConfig cfg;
    cfg.horizon = 64 * n * n;
    cfg.seed = s;
    cfg.stop_when_empty = true;
    return run_fast_batch(profiles::h_data(), adv, cfg);
  };
  auto run_cjz = [&](std::uint64_t s) {
    FunctionSet fs = functions_constant_g(4.0);
    ComposedAdversary adv(batch_arrival(n, 1), no_jam());
    SimConfig cfg;
    cfg.horizon = 64 * n * n;
    cfg.seed = s;
    cfg.stop_when_empty = true;
    return run_fast_cjz(fs, adv, cfg);
  };
  Quantiles hdata, cjz;
  for (const auto& r : replicate(reps, 61000, run_hdata))
    hdata.add(static_cast<double>(r.last_success));
  for (const auto& r : replicate(reps, 62000, run_cjz))
    cjz.add(static_cast<double>(r.last_success));
  EXPECT_TRUE(stat::growth_at_least(cjz.median(), hdata.median(), 4.0))
      << "h_data-batch completion must exceed CJZ's by a clear factor";
  // Absolute band at fixed seeds: delivering n messages takes >= n slots,
  // and CJZ's median must sit far below the n² horizon h_data needs.
  EXPECT_TRUE(stat::quantile_within(cjz, 0.5, static_cast<double>(n),
                                    8.0 * static_cast<double>(n * n)));
}

TEST(Baselines, WindowedBebIsANonAdaptiveVictimOfPrefixJamming) {
  // Windowed BEB's sending probability in its i-th slot is pre-defined
  // (1/window(i)) — it is in Theorem 4.2's non-adaptive class. Under prefix
  // jamming its recovery is slower than the adaptive h-backoff subroutine's
  // by roughly the f(P) send-density factor.
  const slot_t t = 1 << 16;
  const slot_t prefix = t / 16;
  const int reps = 20;
  auto adaptive = backoff_protocol_factory(functions_constant_g(4.0));
  auto beb = windowed_backoff_factory({});
  Accumulator excess_a, excess_b;
  for (int r = 0; r < reps; ++r) {
    for (int which = 0; which < 2; ++which) {
      ComposedAdversary adv(batch_arrival(1, 1), prefix_jammer(prefix));
      SimConfig cfg;
      cfg.horizon = t;
      cfg.seed = 63000 + static_cast<std::uint64_t>(r);
      cfg.stop_when_empty = true;
      const SimResult res = run_generic(which == 0 ? *adaptive : *beb, adv, cfg);
      const double first =
          static_cast<double>(res.first_success == 0 ? t : res.first_success);
      (which == 0 ? excess_a : excess_b).add(first - static_cast<double>(prefix));
    }
  }
  EXPECT_TRUE(stat::mean_at_most(excess_a, excess_b, 0.8))
      << "adaptive recovery excess must beat windowed BEB's";
}

}  // namespace
}  // namespace cr
