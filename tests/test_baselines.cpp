// Unit tests for the baseline protocols: windowed backoff family window
// geometry and the single-channel h-backoff protocol.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "exp/scenarios.hpp"
#include "protocols/baselines.hpp"

namespace cr {
namespace {

/// Counts sends of one node over slots [arrival, arrival+span).
std::uint64_t count_sends(NodeProtocol& node, slot_t arrival, std::uint64_t span, Rng& rng) {
  std::uint64_t sends = 0;
  for (slot_t s = arrival; s < arrival + span; ++s) sends += node.on_slot(s, rng) ? 1 : 0;
  return sends;
}

TEST(WindowedBackoff, BebOneSendPerWindow) {
  // BEB windows 1,2,4,8 cover 15 slots -> exactly 4 sends.
  WindowedBackoffOptions opts;
  opts.scheme = WindowScheme::kBinaryExponential;
  auto factory = windowed_backoff_factory(opts);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    auto node = factory->spawn(0, 5, rng);
    EXPECT_EQ(count_sends(*node, 5, 15, rng), 4u) << "seed " << seed;
  }
}

TEST(WindowedBackoff, BebFirstWindowSends) {
  // Window 0 has length 1: the node always transmits at its arrival slot.
  auto factory = windowed_backoff_factory({});
  Rng rng(9);
  auto node = factory->spawn(0, 42, rng);
  EXPECT_TRUE(node->on_slot(42, rng));
}

TEST(WindowedBackoff, PolynomialWindows) {
  // Windows 1,4,9,16 cover 30 slots -> exactly 4 sends.
  WindowedBackoffOptions opts;
  opts.scheme = WindowScheme::kPolynomial;
  opts.poly_exponent = 2.0;
  auto factory = windowed_backoff_factory(opts);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    auto node = factory->spawn(0, 1, rng);
    EXPECT_EQ(count_sends(*node, 1, 30, rng), 4u) << "seed " << seed;
  }
}

TEST(WindowedBackoff, SawtoothWindows) {
  // Epochs: 2,1 then 4,2,1 then 8,4,2,1 -> cumulative 3, 10, 25; one send
  // per window.
  WindowedBackoffOptions opts;
  opts.scheme = WindowScheme::kSawtooth;
  auto factory = windowed_backoff_factory(opts);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    auto node = factory->spawn(0, 1, rng);
    EXPECT_EQ(count_sends(*node, 1, 3, rng), 2u) << "seed " << seed;
    EXPECT_EQ(count_sends(*node, 4, 7, rng), 3u) << "seed " << seed;
    EXPECT_EQ(count_sends(*node, 11, 15, rng), 4u) << "seed " << seed;
  }
}

TEST(WindowedBackoff, Names) {
  EXPECT_EQ(windowed_backoff_factory({})->name(), "beb");
  WindowedBackoffOptions poly;
  poly.scheme = WindowScheme::kPolynomial;
  EXPECT_NE(windowed_backoff_factory(poly)->name().find("poly"), std::string::npos);
  WindowedBackoffOptions saw;
  saw.scheme = WindowScheme::kSawtooth;
  EXPECT_EQ(windowed_backoff_factory(saw)->name(), "sawtooth");
}

TEST(BackoffProtocol, SendsSparsely) {
  auto factory = backoff_protocol_factory(functions_constant_g(4.0));
  Rng rng(17);
  auto node = factory->spawn(0, 1, rng);
  const std::uint64_t T = 1 << 14;
  std::uint64_t sends = 0;
  for (slot_t s = 1; s <= T; ++s) sends += node->on_slot(s, rng) ? 1 : 0;
  EXPECT_GE(sends, 15u);   // one per stage minimum
  EXPECT_LE(sends, 400u);  // O(f log T), way below T
}

TEST(BackoffProtocol, Name) {
  auto factory = backoff_protocol_factory(functions_constant_g(4.0));
  EXPECT_NE(factory->name().find("h-backoff"), std::string::npos);
}

}  // namespace
}  // namespace cr
