// Lockstep many-replication engine (engine/lockstep.hpp): the many-seed
// sweep must be bit-exact to its own single-run path once per seed in exact
// mode, invariant to the worker-thread count, and — with the analytic
// quiescent-tail skip on — must leave every non-jam counter untouched while
// matching the jam counter in distribution. The workload-layer certificate
// (exp/workload.hpp lockstep_certificate) is unit-tested against the
// component registry rules it encodes.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "adversary/adversary.hpp"
#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "engine/engine.hpp"
#include "engine/lockstep.hpp"
#include "exp/scenarios.hpp"
#include "exp/workload.hpp"

namespace cr {
namespace {

ProtocolSpec test_protocol() { return cjz_protocol(functions_for_regime("const", 4.0)); }

SimConfig base_config(slot_t horizon, RecordingConfig recording) {
  SimConfig cfg;
  cfg.horizon = horizon;
  cfg.recording = recording;
  return cfg;
}

/// A batch-then-iid sweep over `reps` seeds; the single-run equivalent of
/// replication r is run_lockstep_single with a fresh ComposedAdversary over
/// the same components at seed base_seed + r.
LockstepSweep batch_iid_sweep(int reps, std::uint64_t base_seed, int threads) {
  LockstepSweep sweep;
  sweep.reps = reps;
  sweep.base_seed = base_seed;
  sweep.threads = threads;
  sweep.make_arrival = [](std::uint64_t) { return batch_arrival(64, 1); };
  sweep.make_jammer = [](std::uint64_t) { return iid_jammer(0.25); };
  return sweep;
}

SimResult single_batch_iid(std::uint64_t seed, const SimConfig& cfg) {
  ComposedAdversary adv(batch_arrival(64, 1), iid_jammer(0.25));
  SimConfig per = cfg;
  per.seed = seed;
  return run_lockstep_single(test_protocol(), adv, per);
}

TEST(Lockstep, SingleRunIsDeterministic) {
  const SimConfig cfg = base_config(4096, RecordingConfig::full_trace());
  const SimResult a = single_batch_iid(99, cfg);
  const SimResult b = single_batch_iid(99, cfg);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.slots, 4096);
  EXPECT_GT(a.successes, 0u);
}

TEST(Lockstep, ManyMatchesSingleExact) {
  // Exact mode (no analytic tail): the sweep result for seed base+r is
  // bit-identical to running the single-run path at that seed — node stats
  // and the full slot trace included.
  const int kReps = 8;
  const std::uint64_t kBase = 4242;
  const SimConfig cfg = base_config(2048, RecordingConfig::full_trace());
  LockstepSweep sweep = batch_iid_sweep(kReps, kBase, 1);
  const std::vector<SimResult> many = run_lockstep_many(test_protocol(), cfg, sweep);
  ASSERT_EQ(many.size(), static_cast<std::size_t>(kReps));
  for (int r = 0; r < kReps; ++r)
    EXPECT_EQ(many[static_cast<std::size_t>(r)],
              single_batch_iid(kBase + static_cast<std::uint64_t>(r), cfg))
        << "rep " << r;
}

TEST(Lockstep, ThreadCountInvariance) {
  // Replications are split into contiguous chunks; results must not depend
  // on how many workers advanced them. 10 reps / 4 threads exercises the
  // uneven-chunk path.
  const SimConfig cfg = base_config(1024, RecordingConfig::node_stats());
  LockstepSweep one = batch_iid_sweep(10, 777, 1);
  LockstepSweep four = batch_iid_sweep(10, 777, 4);
  one.analytic_tail = four.analytic_tail = true;
  one.quiet_after = four.quiet_after = 1;
  one.tail_jam = four.tail_jam = 0.25;
  const auto a = run_lockstep_many(test_protocol(), cfg, one);
  const auto b = run_lockstep_many(test_protocol(), cfg, four);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) EXPECT_EQ(a[r], b[r]) << "rep " << r;
}

TEST(Lockstep, AnalyticTailPreservesNonJamCounters) {
  // The tail skip replaces per-slot i.i.d. jam coins on provably-empty slots
  // with one Binomial draw. Everything the protocol does happens before the
  // skip point, so every counter except jammed_slots must be EXACTLY the
  // per-slot loop's value; jammed_slots matches in distribution (checked on
  // the mean below).
  const int kReps = 32;
  const slot_t kHorizon = 4096;
  const SimConfig cfg = base_config(kHorizon, RecordingConfig::node_stats());
  LockstepSweep exact = batch_iid_sweep(kReps, 31337, 1);
  LockstepSweep tail = batch_iid_sweep(kReps, 31337, 1);
  tail.analytic_tail = true;
  tail.quiet_after = 1;
  tail.tail_jam = 0.25;
  const auto a = run_lockstep_many(test_protocol(), cfg, exact);
  const auto b = run_lockstep_many(test_protocol(), cfg, tail);
  ASSERT_EQ(a.size(), b.size());
  double jam_exact = 0.0, jam_tail = 0.0;
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(b[r].slots, kHorizon) << "rep " << r;
    EXPECT_EQ(a[r].slots, b[r].slots) << "rep " << r;
    EXPECT_EQ(a[r].arrivals, b[r].arrivals) << "rep " << r;
    EXPECT_EQ(a[r].successes, b[r].successes) << "rep " << r;
    EXPECT_EQ(a[r].total_sends, b[r].total_sends) << "rep " << r;
    EXPECT_EQ(a[r].first_success, b[r].first_success) << "rep " << r;
    EXPECT_EQ(a[r].last_success, b[r].last_success) << "rep " << r;
    EXPECT_EQ(a[r].active_slots, b[r].active_slots) << "rep " << r;
    EXPECT_EQ(a[r].live_at_end, b[r].live_at_end) << "rep " << r;
    EXPECT_EQ(a[r].node_stats, b[r].node_stats) << "rep " << r;
    jam_exact += static_cast<double>(a[r].jammed_slots);
    jam_tail += static_cast<double>(b[r].jammed_slots);
  }
  // Means over 32 reps of ~Binomial(4096, 0.25): sd of each mean ≈ 4.9, so
  // 35 is a ~5-sigma band on the difference — loose but regression-sensitive.
  EXPECT_NEAR(jam_exact / kReps, jam_tail / kReps, 35.0);
}

TEST(Lockstep, AnalyticTailDisabledUnderFullTrace) {
  // A full slot trace wants every slot's outcome, so the skip must not fire:
  // tail mode under kFullTrace is bit-exact to exact mode.
  const SimConfig cfg = base_config(1024, RecordingConfig::full_trace());
  LockstepSweep exact = batch_iid_sweep(6, 555, 1);
  LockstepSweep tail = batch_iid_sweep(6, 555, 1);
  tail.analytic_tail = true;
  tail.quiet_after = 1;
  tail.tail_jam = 0.25;
  const auto a = run_lockstep_many(test_protocol(), cfg, exact);
  const auto b = run_lockstep_many(test_protocol(), cfg, tail);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) EXPECT_EQ(a[r], b[r]) << "rep " << r;
}

TEST(Lockstep, RegistryEntryAndPreference) {
  // Registered, supports kCjz, but ranked below fast_cjz so single-run
  // callers keep the sequential substrate (and its golden CSVs) by default.
  const Engine* lockstep = EngineRegistry::instance().find("lockstep");
  ASSERT_NE(lockstep, nullptr);
  const ProtocolSpec spec = test_protocol();
  EXPECT_TRUE(lockstep->supports(spec));
  EXPECT_EQ(EngineRegistry::instance().preferred(spec).name(), "fast_cjz");
}

// ---------------------------------------------------------------------------
// lockstep_certificate — the workload-layer eligibility rules.

WorkloadSpec make_spec(ComponentSpec arrival, ComponentSpec jammer, slot_t horizon = 4096) {
  WorkloadSpec spec;
  spec.arrival = std::move(arrival);
  spec.jammer = std::move(jammer);
  spec.horizon = horizon;
  return spec;
}

TEST(LockstepCertificate, BatchPlusIidUsesBatchSlotAndFraction) {
  const auto cert = lockstep_certificate(make_spec(
      {"batch", {{"n", "32"}, {"at", "7"}}}, {"iid", {{"fraction", "0.3"}}}));
  EXPECT_TRUE(cert.eligible);
  EXPECT_EQ(cert.quiet_after, 7);
  EXPECT_DOUBLE_EQ(cert.tail_jam, 0.3);
}

TEST(LockstepCertificate, NonePlusNoneIsTriviallyQuiet) {
  const auto cert = lockstep_certificate(make_spec({"none", {}}, {"none", {}}));
  EXPECT_TRUE(cert.eligible);
  EXPECT_EQ(cert.quiet_after, 0);
  EXPECT_DOUBLE_EQ(cert.tail_jam, 0.0);
}

TEST(LockstepCertificate, BernoulliWindowAndPrefixTakeTheMax) {
  // Arrivals stop at to=100 but the prefix jammer is only provably silent
  // past count=500 — the certificate must wait for both.
  const auto cert = lockstep_certificate(
      make_spec({"bernoulli", {{"rate", "0.1"}, {"to", "100"}}},
                {"prefix", {{"count", "500"}}}));
  EXPECT_TRUE(cert.eligible);
  EXPECT_EQ(cert.quiet_after, 500);
  EXPECT_DOUBLE_EQ(cert.tail_jam, 0.0);
}

TEST(LockstepCertificate, OpenBernoulliWindowKeepsHorizon) {
  // to=0 means "until the horizon": the certificate stays correct (quiet ==
  // horizon) and the skip simply never fires.
  const auto cert = lockstep_certificate(
      make_spec({"bernoulli", {{"rate", "0.1"}}}, {"none", {}}, 9999));
  EXPECT_TRUE(cert.eligible);
  EXPECT_EQ(cert.quiet_after, 9999);
}

TEST(LockstepCertificate, HistoryCoupledJammerIsIneligible) {
  for (const char* jammer : {"reactive", "periodic", "budget_paced"}) {
    const auto cert = lockstep_certificate(make_spec({"batch", {}}, {jammer, {}}));
    EXPECT_FALSE(cert.eligible) << jammer;
    EXPECT_LT(cert.tail_jam, 0.0) << jammer;
  }
}

TEST(LockstepCertificate, UnboundedArrivalKeepsHorizon) {
  const auto cert = lockstep_certificate(
      make_spec({"uniform_random", {{"total", "16"}}}, {"iid", {}}, 2048));
  EXPECT_TRUE(cert.eligible);
  EXPECT_EQ(cert.quiet_after, 2048);
}

// ---------------------------------------------------------------------------
// Plan path (engine/lockstep.hpp LockstepPlan) — the precomputed-adversary
// fast path must be DRAW-FOR-DRAW identical to the generic per-slot loop,
// not just statistically equivalent. Each spec below exercises one plan
// shape: shared schedule × shared jam list, shared schedule × i.i.d. coins,
// i.i.d. arrivals × i.i.d. jams, and the stateful-deterministic components.

std::vector<SimResult> run_workload_sweep(const WorkloadSpec& spec, int reps,
                                          std::uint64_t base_seed, int threads,
                                          bool with_plan, bool with_tail = false) {
  LockstepSweep sweep = lockstep_sweep(spec, reps, base_seed, threads);
  EXPECT_TRUE(sweep.plan.valid) << spec.arrival.name << "+" << spec.jammer.name;
  if (!with_plan) sweep.plan = LockstepPlan{};
  // With the tail off, the reference is the EXACT per-slot loop: the analytic
  // tail skip matches jam counts only in distribution, while the tail-less
  // plan path is draw-for-draw exact — a strictly stronger contract. With the
  // tail on (both paths honor the certificate), plan and generic must agree
  // on the skip slot and the tail-stream binomial, bit for bit.
  if (!with_tail) sweep.analytic_tail = false;
  SimConfig cfg;
  cfg.horizon = spec.horizon;
  cfg.seed = base_seed;
  cfg.recording = RecordingConfig::node_stats();
  const ProtocolSpec protocol =
      workload_protocol(spec.protocol, functions_for_regime(spec.g_regime, spec.gamma));
  return run_lockstep_many(protocol, cfg, sweep);
}

void expect_plan_matches_generic(const WorkloadSpec& spec) {
  const int kReps = 12;
  const std::uint64_t kBase = 60600;
  const auto plan = run_workload_sweep(spec, kReps, kBase, 1, true);
  const auto generic = run_workload_sweep(spec, kReps, kBase, 1, false);
  ASSERT_EQ(plan.size(), generic.size());
  for (std::size_t r = 0; r < plan.size(); ++r)
    EXPECT_EQ(plan[r], generic[r]) << spec.arrival.name << "+" << spec.jammer.name
                                   << " rep " << r;
}

TEST(LockstepPlanPath, BatchPlusNoneMatchesGeneric) {
  expect_plan_matches_generic(
      make_spec({"batch", {{"n", "48"}, {"at", "3"}}}, {"none", {}}, 2048));
}

TEST(LockstepPlanPath, BatchPlusPrefixMatchesGeneric) {
  expect_plan_matches_generic(
      make_spec({"batch", {{"n", "32"}}}, {"prefix", {{"count", "200"}}}, 2048));
}

TEST(LockstepPlanPath, BatchPlusPeriodicMatchesGeneric) {
  expect_plan_matches_generic(make_spec(
      {"batch", {{"n", "32"}}}, {"periodic", {{"period", "7"}, {"burst", "2"}}}, 2048));
}

TEST(LockstepPlanPath, PacedPlusIidMatchesGeneric) {
  // Stateful-deterministic arrivals (paced ignores history and rng but
  // carries internal state) against per-rep i.i.d. jam coins.
  expect_plan_matches_generic(make_spec(
      {"paced", {{"margin", "2"}}}, {"iid", {{"fraction", "0.25"}}}, 2048));
}

TEST(LockstepPlanPath, BurstyPlusBudgetPacedMatchesGeneric) {
  expect_plan_matches_generic(make_spec({"bursty", {{"period", "64"}, {"burst", "4"}}},
                                        {"budget_paced", {{"margin", "2"}}}, 2048));
}

TEST(LockstepPlanPath, BernoulliPlusIidMatchesGeneric) {
  // Both axes i.i.d. — the bernoulli_stream shape: per-rep batched coin
  // scans on both the arrival and jam sides.
  expect_plan_matches_generic(make_spec(
      {"bernoulli", {{"rate", "0.15"}}}, {"iid", {{"fraction", "0.25"}}}, 2048));
}

TEST(LockstepPlanPath, BernoulliWindowMatchesGeneric) {
  // A closed arrival window [from, to] — the coin scan must start and stop
  // exactly where the scalar component does.
  expect_plan_matches_generic(make_spec(
      {"bernoulli", {{"rate", "0.3"}, {"from", "100"}, {"to", "700"}}},
      {"iid", {{"fraction", "0.1"}}}, 2048));
}

void expect_plan_tail_matches_generic_tail(const WorkloadSpec& spec) {
  // Both sides keep the certificate's analytic tail: the plan path must fire
  // the skip at the same slot and draw the same tail-stream binomial as the
  // generic per-slot loop, so the results stay bit-identical in production
  // dispatch too (where the certificate is always honored).
  ASSERT_TRUE(lockstep_certificate(spec).eligible)
      << spec.arrival.name << "+" << spec.jammer.name;
  const int kReps = 12;
  const std::uint64_t kBase = 61600;
  const auto plan = run_workload_sweep(spec, kReps, kBase, 1, true, true);
  const auto generic = run_workload_sweep(spec, kReps, kBase, 1, false, true);
  ASSERT_EQ(plan.size(), generic.size());
  for (std::size_t r = 0; r < plan.size(); ++r)
    EXPECT_EQ(plan[r], generic[r]) << spec.arrival.name << "+" << spec.jammer.name
                                   << " rep " << r;
}

TEST(LockstepPlanPath, TailSkipMatchesGenericTailBatchIid) {
  // The perf-critical batch cell shape: quiet_after is the batch slot, so
  // once the cohort drains almost the whole horizon is tail — the lazy coin
  // fill must stop where the generic path stops drawing.
  expect_plan_tail_matches_generic_tail(make_spec(
      {"batch", {{"n", "48"}, {"at", "3"}}}, {"iid", {{"fraction", "0.25"}}}, 4096));
}

TEST(LockstepPlanPath, TailSkipMatchesGenericTailBernoulliWindow) {
  // Closed arrival window: the tail fires only after the window shuts AND
  // the last cohort drains, whichever is later.
  expect_plan_tail_matches_generic_tail(make_spec(
      {"bernoulli", {{"rate", "0.3"}, {"from", "100"}, {"to", "700"}}},
      {"iid", {{"fraction", "0.1"}}}, 4096));
}

TEST(LockstepPlanPath, TailSkipMatchesGenericTailNoArrivals) {
  // Degenerate certificate: no arrivals at all, quiet_after = 0 — the tail
  // fires at slot 1 and the whole run is one binomial on both paths.
  expect_plan_tail_matches_generic_tail(
      make_spec({"none", {}}, {"iid", {{"fraction", "0.5"}}}, 4096));
}

TEST(LockstepPlanPath, ThreadCountInvariance) {
  const WorkloadSpec spec = make_spec({"bernoulli", {{"rate", "0.15"}}},
                                      {"iid", {{"fraction", "0.25"}}}, 1024);
  const auto one = run_workload_sweep(spec, 10, 9090, 1, true);
  const auto four = run_workload_sweep(spec, 10, 9090, 4, true);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t r = 0; r < one.size(); ++r) EXPECT_EQ(one[r], four[r]) << "rep " << r;
}

TEST(LockstepPlanPath, IneligibleComponentsFallBack) {
  // History-reading (reactive) and seed-dependent (uniform_random)
  // components cannot be precomputed; the plan must refuse so the sweep
  // takes the generic path.
  EXPECT_FALSE(lockstep_plan(make_spec({"batch", {}}, {"reactive", {}})).valid);
  EXPECT_FALSE(
      lockstep_plan(make_spec({"uniform_random", {{"total", "16"}}}, {"iid", {}})).valid);
  EXPECT_TRUE(lockstep_plan(make_spec({"none", {}}, {"none", {}})).valid);
}

TEST(Lockstep, ReplicateScenarioStatParityWithFastCjz) {
  // End-to-end through the exp layer: a lockstep batch sweep (analytic tail
  // on, different substrate) must agree with fast_cjz on the mean success
  // and send counts. Batch of 256 nodes, 25% jamming: every node succeeds
  // well before the horizon, so mean successes is exactly 256 on both sides
  // and sends agree to Monte-Carlo noise.
  const int kReps = 24;
  ScenarioParams params;
  params.horizon = 1 << 14;
  const Engine& lockstep = EngineRegistry::instance().at("lockstep");
  const Engine& fast = EngineRegistry::instance().at("fast_cjz");
  const auto a = replicate_scenario(lockstep, "batch", params, kReps, 8800, 1);
  const auto b = replicate_scenario(fast, "batch", params, kReps, 8800, 1);
  ASSERT_EQ(a.size(), b.size());
  double succ_a = 0, succ_b = 0, sends_a = 0, sends_b = 0;
  for (int r = 0; r < kReps; ++r) {
    succ_a += static_cast<double>(a[static_cast<std::size_t>(r)].successes);
    succ_b += static_cast<double>(b[static_cast<std::size_t>(r)].successes);
    sends_a += static_cast<double>(a[static_cast<std::size_t>(r)].total_sends);
    sends_b += static_cast<double>(b[static_cast<std::size_t>(r)].total_sends);
  }
  EXPECT_DOUBLE_EQ(succ_a / kReps, succ_b / kReps);
  const double mean_sends = sends_b / kReps;
  EXPECT_NEAR(sends_a / kReps, mean_sends, 0.15 * mean_sends);
}

}  // namespace
}  // namespace cr
