# Golden-docs driver: regenerate the experiment index with `cr list --md`
# and byte-compare it against the committed docs/EXPERIMENTS.md, so the
# documentation can never drift from the bench/scenario/engine registries it
# is rendered from.
#
# Invoked by CTest (see tests/CMakeLists.txt, label `docs`) as
#   cmake -DCR=<cr binary> -DGOLDEN=<docs/EXPERIMENTS.md> -DOUT=<out.md> -P docs_diff.cmake
#
# To regenerate after changing any BenchSpec/ScenarioEntry/engine
# registration (or the generator itself):
#   ./build/src/cr list --md > docs/EXPERIMENTS.md
foreach(var CR GOLDEN OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "docs_diff.cmake: -D${var}=... is required")
  endif()
endforeach()

execute_process(
  COMMAND ${CR} list --md
  RESULT_VARIABLE run_rc
  OUTPUT_FILE ${OUT})
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "docs generation failed: ${CR} list --md exited with ${run_rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
    "docs/EXPERIMENTS.md is out of sync with the registries.\n"
    "Generated: ${OUT}\nCommitted: ${GOLDEN}\n"
    "If the change is intentional, regenerate with:\n"
    "  ${CR} list --md > ${GOLDEN}")
endif()
