# Golden-CSV regression driver: run a bench with its deterministic quick
# configuration and byte-compare the CSV it writes against the checked-in
# golden file.
#
# Invoked by CTest (see tests/CMakeLists.txt) as
#   cmake -DBENCH=<binary> -DGOLDEN=<golden.csv> -DOUT=<out.csv> -P run_and_diff.cmake
#
# The CSV contains only means of integer-valued samples (exact IEEE
# arithmetic at fixed seeds), so the bytes are reproducible for every
# --threads value and across reruns on the same platform. (The samples do
# route through libm, so an exotic libm may shift them — regenerate on the
# Linux CI platform.) To regenerate after an intentional engine/scenario
# change:
#   ./build/bench/bench_latency --quick --reps=2 --threads=2 --csv=tests/golden/bench_latency_quick.csv
foreach(var BENCH GOLDEN OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_and_diff.cmake: -D${var}=... is required")
  endif()
endforeach()

execute_process(
  COMMAND ${BENCH} --quick --reps=2 --threads=2 --csv=${OUT}
  RESULT_VARIABLE run_rc
  OUTPUT_QUIET)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "golden run failed: ${BENCH} exited with ${run_rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
    "golden CSV mismatch: ${OUT} differs from ${GOLDEN}.\n"
    "If the change is intentional, regenerate with:\n"
    "  ${BENCH} --quick --reps=2 --threads=2 --csv=${GOLDEN}")
endif()
