# End-to-end distributed-runner smoke through the real `cr` binary (driven
# by the dist_smoke CTest entry; see tests/test_dist.cpp for the in-process
# unit/integration coverage):
#
#   1. cold `cr suite run --cache` populates the CellCache;
#   2. a warm run into a FRESH output dir must be 100% cache hits and
#      byte-identical (determinism rule 9);
#   3. two sequential `cr suite work` workers drain a third dir (the second
#      observes only peer results), `cr suite merge` unions their manifests,
#      and the worker CSVs byte-match the suite-run CSVs;
#   4. `cr cache stats` still sees a clean cache.
#
# Expects -DCR=<cr binary> -DMANIFEST=<suites/dist_smoke.json> -DOUT=<dir>.

file(REMOVE_RECURSE ${OUT})

function(run_cr expect_rc out_var)
  execute_process(COMMAND ${CR} ${ARGN}
    RESULT_VARIABLE rc OUTPUT_VARIABLE log ERROR_VARIABLE log)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "cr ${ARGN} exited ${rc} (expected ${expect_rc}):\n${log}")
  endif()
  set(${out_var} "${log}" PARENT_SCOPE)
endfunction()

run_cr(0 cold_log suite run ${MANIFEST} --out=${OUT}/cold --cache=${OUT}/cache --threads=2)
if(NOT cold_log MATCHES "2 ran, 0 cached, 0 cache hits, 0 failed")
  message(FATAL_ERROR "cold run was not a full compute:\n${cold_log}")
endif()

run_cr(0 warm_log suite run ${MANIFEST} --out=${OUT}/warm --cache=${OUT}/cache --threads=2)
if(NOT warm_log MATCHES "0 ran, 0 cached, 2 cache hits, 0 failed")
  message(FATAL_ERROR "warm run into a fresh dir was not 100% cache hits:\n${warm_log}")
endif()

file(GLOB cold_csvs RELATIVE ${OUT}/cold ${OUT}/cold/*.csv)
list(LENGTH cold_csvs n_csvs)
if(NOT n_csvs EQUAL 2)
  message(FATAL_ERROR "expected 2 CSVs in the cold run, found ${n_csvs}")
endif()
foreach(csv IN LISTS cold_csvs)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    ${OUT}/cold/${csv} ${OUT}/warm/${csv} RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "rule 9 violation: cache hit for ${csv} differs from recomputation")
  endif()
endforeach()

# Workers compute WITHOUT the cache so the lease/claim path really executes
# cells rather than restoring them.
run_cr(0 w1_log suite work ${MANIFEST} --out=${OUT}/work --threads=2)
if(NOT w1_log MATCHES "2 ran, 0 cache hits, 0 failed")
  message(FATAL_ERROR "first worker did not drain the suite:\n${w1_log}")
endif()
run_cr(0 w2_log suite work ${MANIFEST} --out=${OUT}/work --threads=2)
if(NOT w2_log MATCHES "0 ran, 0 cache hits, 0 failed")
  message(FATAL_ERROR "second worker should have found only peer results:\n${w2_log}")
endif()

file(GLOB worker_manifests ${OUT}/work/manifest.work-*.json)
list(LENGTH worker_manifests n_manifests)
if(NOT n_manifests EQUAL 2)
  message(FATAL_ERROR "expected 2 worker manifests, found ${n_manifests}")
endif()
run_cr(0 merge_log suite merge ${worker_manifests})
if(NOT EXISTS ${OUT}/work/manifest.json)
  message(FATAL_ERROR "merge did not write ${OUT}/work/manifest.json:\n${merge_log}")
endif()

foreach(csv IN LISTS cold_csvs)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    ${OUT}/cold/${csv} ${OUT}/work/${csv} RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "worker output for ${csv} differs from the suite run")
  endif()
endforeach()

run_cr(0 stats_log cache stats ${OUT}/cache)
if(NOT stats_log MATCHES "corrupt: *0")
  message(FATAL_ERROR "cache reports corruption after the round-trip:\n${stats_log}")
endif()
