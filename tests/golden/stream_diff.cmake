# Golden kill/restore driver for `cr stream` (determinism rule 8):
#
#   1. run the fixed trace end-to-end; the JSONL must byte-match the
#      committed golden file (output stability across platforms/reruns);
#   2. run the same trace with --max_windows=4, cutting a checkpoint at the
#      stop (the simulated kill);
#   3. restore the checkpoint and re-feed the same trace; the concatenated
#      head+tail output must byte-match the golden too — restore-then-
#      continue is indistinguishable from never having stopped.
#
# Invoked by CTest (see tests/CMakeLists.txt, labels `golden;stream`) as
#   cmake -DCR=<cr binary> -DTRACE=<stream_trace.txt> -DGOLDEN=<stream_quick.jsonl>
#         -DOUT=<outdir/prefix> -P stream_diff.cmake
#
# To regenerate after an intentional engine/metrics change:
#   ./build/src/cr stream --trace=tests/golden/stream_trace.txt --window=256 --seed=5 \
#       > tests/golden/stream_quick.jsonl
foreach(var CR TRACE GOLDEN OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "stream_diff.cmake: -D${var}=... is required")
  endif()
endforeach()

set(flags --trace=${TRACE} --window=256 --seed=5)

# 1. Uninterrupted run.
execute_process(
  COMMAND ${CR} stream ${flags}
  RESULT_VARIABLE run_rc
  OUTPUT_FILE ${OUT}_full.jsonl
  ERROR_QUIET)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "stream golden: full run exited with ${run_rc}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT}_full.jsonl ${GOLDEN}
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
    "stream golden mismatch: ${OUT}_full.jsonl differs from ${GOLDEN}.\n"
    "If the change is intentional, regenerate with:\n"
    "  ${CR} stream --trace=${TRACE} --window=256 --seed=5 > ${GOLDEN}")
endif()

# 2. Kill after 4 windows, checkpointing at the stop.
execute_process(
  COMMAND ${CR} stream ${flags} --max_windows=4 --checkpoint=${OUT}_head.snap
  RESULT_VARIABLE head_rc
  OUTPUT_FILE ${OUT}_head.jsonl
  ERROR_QUIET)
if(NOT head_rc EQUAL 0)
  message(FATAL_ERROR "stream golden: head run exited with ${head_rc}")
endif()

# 3. Restore and run the tail to EOF on the same trace.
execute_process(
  COMMAND ${CR} stream ${flags} --restore=${OUT}_head.snap
  RESULT_VARIABLE tail_rc
  OUTPUT_FILE ${OUT}_tail.jsonl
  ERROR_QUIET)
if(NOT tail_rc EQUAL 0)
  message(FATAL_ERROR "stream golden: restored tail run exited with ${tail_rc}")
endif()

file(READ ${OUT}_head.jsonl head_text)
file(READ ${OUT}_tail.jsonl tail_text)
file(WRITE ${OUT}_spliced.jsonl "${head_text}${tail_text}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT}_spliced.jsonl ${GOLDEN}
  RESULT_VARIABLE splice_rc)
if(NOT splice_rc EQUAL 0)
  message(FATAL_ERROR
    "stream kill/restore mismatch: head (${OUT}_head.jsonl) + restored tail "
    "(${OUT}_tail.jsonl) does not reproduce the uninterrupted output ${GOLDEN} — "
    "determinism rule 8 is broken.")
endif()
