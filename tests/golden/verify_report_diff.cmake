# Golden verify-report driver: run `cr verify --quick` over the evidence
# directory the suite_run_quick fixture produced and byte-compare the
# written verify_report.json against the checked-in golden file.
#
# Invoked by CTest (see tests/CMakeLists.txt, FIXTURES_REQUIRED
# quick_evidence) as
#   cmake -DCR=<cr binary> -DEVIDENCE=<suite_quick_out> -DGOLDEN=<golden.json>
#         -DOUT=<out.json> -P verify_report_diff.cmake
#
# The quick evidence run is deterministic (fixed seeds, thread-count
# invariant, exact to_chars CSV formatting) and the report carries no
# timestamps or machine identifiers, so the bytes reproduce across reruns
# and --threads values on the same platform. `cr verify` must also exit 0 —
# a failing claim fails this test before the diff does. To regenerate after
# an intentional claim/bound/bench change:
#   ./build/src/cr suite run suites/quick.json --quick --out=/tmp/qev --force --threads=2
#   ./build/src/cr verify --quick /tmp/qev --report=tests/golden/verify_report_quick.json
foreach(var CR EVIDENCE GOLDEN OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "verify_report_diff.cmake: -D${var}=... is required")
  endif()
endforeach()

execute_process(
  COMMAND ${CR} verify --quick ${EVIDENCE} --report=${OUT}
  RESULT_VARIABLE run_rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_out)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR
    "cr verify --quick ${EVIDENCE} exited with ${run_rc} — a claim failed "
    "or the evidence directory is unusable:\n${run_out}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
    "golden verify report mismatch: ${OUT} differs from ${GOLDEN}.\n"
    "If the change is intentional, regenerate with:\n"
    "  ${CR} verify --quick ${EVIDENCE} --report=${GOLDEN}")
endif()
