// Unit tests for the growth-function library: preset values, the derived
// f / h_ctrl / h_data / backoff-send functions, and the Remark-1
// sub-logarithmic diagnostics.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/functions.hpp"

namespace cr {
namespace {

TEST(GrowthFn, ConstantPreset) {
  const GrowthFn g = fn::constant(4.0);
  EXPECT_DOUBLE_EQ(g(1.0), 4.0);
  EXPECT_DOUBLE_EQ(g(1e9), 4.0);
  EXPECT_EQ(g.name(), "const(4)");
}

TEST(GrowthFn, Log2pPreset) {
  const GrowthFn g = fn::log2p(1.0);
  EXPECT_NEAR(g(2.0), 2.0, 1e-12);   // log2(4)
  EXPECT_NEAR(g(14.0), 4.0, 1e-12);  // log2(16)
  EXPECT_GT(g(0.0), 0.0);
}

TEST(GrowthFn, PolyLogPreset) {
  const GrowthFn g = fn::poly_log(2.0, 2.0);
  EXPECT_NEAR(g(2.0), 2.0 * 4.0, 1e-12);  // 2·log2(4)²
}

TEST(GrowthFn, ExpSqrtLogPreset) {
  const GrowthFn g = fn::exp_sqrt_log(1.0);
  EXPECT_NEAR(g(14.0), std::exp2(2.0), 1e-9);  // 2^sqrt(log2 16) = 2^2
  EXPECT_GT(g(1e6), g(100.0));
}

TEST(GrowthFn, PolyPreset) {
  const GrowthFn g = fn::poly(0.5);
  EXPECT_NEAR(g(16.0), 4.0, 1e-12);
}

TEST(FunctionSet, ConstantGGivesLogarithmicF) {
  FunctionSet fs;
  fs.g = fn::constant(4.0);
  fs.cf = 1.0;
  // f(x) = log2(x+2) / log2(4)² = log2(x+2)/4.
  EXPECT_NEAR(fs.f(14.0), 1.0, 1e-9);
  EXPECT_NEAR(fs.f(1022.0), 2.5, 1e-9);
  // f grows logarithmically: doubling x adds a constant.
  const double d1 = fs.f(1 << 12) - fs.f(1 << 11);
  const double d2 = fs.f(1 << 20) - fs.f(1 << 19);
  EXPECT_NEAR(d1, d2, 0.01);
}

TEST(FunctionSet, ExpSqrtLogGGivesConstantF) {
  FunctionSet fs;
  fs.g = fn::exp_sqrt_log(1.0);
  fs.cf = 1.0;
  // f(x) = log2(x+2) / (sqrt(log2(x+2)))² = 1 exactly (Remark 2's regime).
  EXPECT_NEAR(fs.f(10.0), 1.0, 1e-9);
  EXPECT_NEAR(fs.f(1e8), 1.0, 1e-9);
}

TEST(FunctionSet, FNonDecreasingForPresets) {
  // f is an asymptotic object: for g = log the denominator log²(log x)
  // briefly outgrows the numerator at tiny x, so we check monotonicity on
  // the asymptotic range x >= 2^10.
  for (FunctionSet fs : {FunctionSet{fn::constant(4.0)}, FunctionSet{fn::log2p(1.0)},
                         FunctionSet{fn::exp_sqrt_log(1.0)}}) {
    double prev = fs.f(1024.0);
    for (double x = 2048.0; x <= 1e9; x *= 2.0) {
      const double cur = fs.f(x);
      EXPECT_GE(cur + 1e-9, prev) << fs.describe() << " at x=" << x;
      prev = cur;
    }
  }
}

TEST(FunctionSet, BackoffSendsAtLeastOne) {
  FunctionSet fs;
  fs.g = fn::constant(1024.0);  // large g -> tiny f
  for (std::uint64_t len = 1; len <= (1ull << 20); len <<= 1)
    EXPECT_GE(fs.backoff_sends(len), 1u);
}

TEST(FunctionSet, BackoffSendsCappedByStage) {
  FunctionSet fs;
  fs.g = fn::constant(2.0);
  fs.cf = 100.0;  // force huge f
  EXPECT_LE(fs.backoff_sends(1), 1u);
  EXPECT_LE(fs.backoff_sends(2), 2u);
  EXPECT_LE(fs.backoff_sends(4), 4u);
}

TEST(FunctionSet, BackoffSendsScaleWithA) {
  FunctionSet fs;
  fs.g = fn::constant(2.0);
  fs.cf = 8.0;
  fs.a = 1.0;
  const auto dense = fs.backoff_sends(1 << 16);
  fs.a = 4.0;
  const auto sparse = fs.backoff_sends(1 << 16);
  EXPECT_GT(dense, sparse);
}

TEST(FunctionSet, HctrlShape) {
  FunctionSet fs;
  fs.c_ctrl = 2.0;
  EXPECT_DOUBLE_EQ(fs.h_ctrl(1.0), 1.0);  // capped at 1
  EXPECT_GT(fs.h_ctrl(100.0), fs.h_ctrl(1000.0));
  EXPECT_NEAR(fs.h_ctrl(1 << 20), 2.0 * std::log2((1 << 20) + 2.0) / (1 << 20), 1e-9);
}

TEST(FunctionSet, HdataExact) {
  EXPECT_DOUBLE_EQ(FunctionSet::h_data(1.0), 1.0);
  EXPECT_DOUBLE_EQ(FunctionSet::h_data(2.0), 0.5);
  EXPECT_DOUBLE_EQ(FunctionSet::h_data(1000.0), 0.001);
}

TEST(FunctionSet, HctrlDominatesHdata) {
  // The control batch must stay denser than the data batch (by the log
  // factor) so control successes arrive by slot Θ(n).
  FunctionSet fs;
  for (double x = 8.0; x <= 1e8; x *= 4.0) EXPECT_GT(fs.h_ctrl(x), FunctionSet::h_data(x));
}

TEST(FunctionSet, Describe) {
  FunctionSet fs;
  fs.g = fn::constant(4.0);
  EXPECT_NE(fs.describe().find("const(4)"), std::string::npos);
}

TEST(Sublogarithmic, AcceptsPaperFamilies) {
  EXPECT_TRUE(check_sublogarithmic(fn::constant(4.0)).ok());
  EXPECT_TRUE(check_sublogarithmic(fn::log2p(1.0)).ok());
  const GrowthFn log_exp_sqrt("log2(2^sqrt(log))",
                              [](double x) { return std::sqrt(std::log2(x + 2.0)); });
  EXPECT_TRUE(check_sublogarithmic(log_exp_sqrt).ok());
}

TEST(Sublogarithmic, RejectsPolynomial) {
  const SublogReport rep = check_sublogarithmic(fn::poly(0.5));
  EXPECT_FALSE(rep.ok());
}

TEST(Sublogarithmic, RejectsDecreasing) {
  const GrowthFn dec("1/x", [](double x) { return 1.0 / x; });
  EXPECT_FALSE(check_sublogarithmic(dec).non_decreasing);
}

class FRegimeRatio : public ::testing::TestWithParam<double> {};

TEST_P(FRegimeRatio, FScalesInverselyWithLogSquaredG) {
  // Fix x, scale g: f should shrink like 1/log²(g) (the paper's trade-off).
  const double x = 1 << 20;
  FunctionSet small_g{fn::constant(4.0)};
  FunctionSet big_g{fn::constant(GetParam())};
  const double expect = std::pow(std::log2(GetParam()) / 2.0, 2.0);
  EXPECT_NEAR(small_g.f(x) / big_g.f(x), expect, 0.05 * expect);
}

INSTANTIATE_TEST_SUITE_P(GSweep, FRegimeRatio, ::testing::Values(16.0, 64.0, 256.0, 1024.0));

}  // namespace
}  // namespace cr
