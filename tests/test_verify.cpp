// The verify subsystem's plumbing: the shared CSV reader (round-trip
// against CsvWriter), ClaimContext evidence diagnostics (missing file /
// column / non-numeric cell each produce a distinct message naming the
// claim and the file), the verify_report.json schema (round-trips through
// the in-tree JSON parser), and the exit-code contract (a failing claim
// makes `cr verify` exit nonzero with a "fail" verdict in the report).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/csv_read.hpp"
#include "common/json.hpp"
#include "verify/claim_registry.hpp"
#include "verify/verify.hpp"

namespace cr {
namespace {

namespace fs = std::filesystem;
using verify::ClaimContext;
using verify::ClaimOutcome;
using verify::ClaimSpec;
using verify::EvidenceError;

// ---------------------------------------------------------------------------
// csv_read: the reader half of the CsvWriter contract.

TEST(CsvRead, RoundTripsRowNumericBitExactly) {
  // row_numeric emits std::to_chars shortest-round-trip text; the reader
  // must re-parse every cell to the bit-identical double.
  const std::vector<double> values = {1234567.891011, 1e6 + 0.125, 9876543210.123,
                                      1.0 / 3.0, -2.5e-7, 0.0};
  std::ostringstream os;
  CsvWriter writer(os, {"a", "b", "c", "d", "e", "f"});
  writer.row_numeric(values);
  std::string error;
  const auto table = read_csv(os.str(), &error);
  ASSERT_TRUE(table) << error;
  ASSERT_EQ(table->rows.size(), 1u);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto cell = parse_numeric_cell(table->rows[0][i], &error);
    ASSERT_TRUE(cell) << error;
    EXPECT_EQ(cell->value, values[i]) << "cell text: " << table->rows[0][i];
    EXPECT_FALSE(cell->censored);
    EXPECT_FALSE(cell->spread.has_value());
  }
}

TEST(CsvRead, RoundTripsRfc4180Escapes) {
  const std::vector<std::string> specials = {"plain", "a,b", "say \"hi\"", "line\nbreak"};
  std::ostringstream os;
  CsvWriter writer(os, {"w", "x", "y", "z"});
  writer.row(specials);
  std::string error;
  const auto table = read_csv(os.str(), &error);
  ASSERT_TRUE(table) << error;
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0], specials);
}

TEST(CsvRead, HeaderAccessorsAndCrlf) {
  std::string error;
  const auto table = read_csv("n,rate\r\n4,0.5\r\n8,0.25\r\n", &error);
  ASSERT_TRUE(table) << error;
  EXPECT_EQ(table->column("rate"), 1u);
  EXPECT_FALSE(table->column("missing").has_value());
  ASSERT_TRUE(table->cell(1, "rate").has_value());
  EXPECT_EQ(*table->cell(1, "rate"), "0.25");
  EXPECT_FALSE(table->cell(2, "rate").has_value());  // row out of range
}

TEST(CsvRead, DiagnosesMalformedInput) {
  std::string error;
  EXPECT_FALSE(read_csv("", &error));
  EXPECT_NE(error.find("empty CSV"), std::string::npos);
  EXPECT_FALSE(read_csv("a,b\n\"unterminated\n", &error));
  EXPECT_NE(error.find("unterminated"), std::string::npos);
  EXPECT_FALSE(read_csv("a,b\n\"x\"junk,2\n", &error));
  EXPECT_NE(error.find("after closing quote"), std::string::npos);
  EXPECT_FALSE(read_csv("a,b\n1,2,3\n", &error));
  EXPECT_NE(error.find("3 fields"), std::string::npos);
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(CsvRead, ParsesBenchNumericCellForms) {
  std::string error;
  // Plain double.
  auto cell = parse_numeric_cell("0.25", &error);
  ASSERT_TRUE(cell);
  EXPECT_EQ(cell->value, 0.25);
  // mean±sd summary cells (UTF-8 ±, as the scenario/robustness CSVs write).
  cell = parse_numeric_cell("0.512\xC2\xB1"
                            "0.011",
                            &error);
  ASSERT_TRUE(cell);
  EXPECT_EQ(cell->value, 0.512);
  ASSERT_TRUE(cell->spread.has_value());
  EXPECT_EQ(*cell->spread, 0.011);
  // Censored horizon-capped medians (">20.0" in the cd_contrast/baselines
  // tables): the true value is at least 20.
  cell = parse_numeric_cell(">20.0", &error);
  ASSERT_TRUE(cell);
  EXPECT_TRUE(cell->censored);
  EXPECT_EQ(cell->value, 20.0);
  // Errors, each naming the offending text.
  EXPECT_FALSE(parse_numeric_cell("", &error));
  EXPECT_NE(error.find("not numeric"), std::string::npos);
  EXPECT_FALSE(parse_numeric_cell("n/a", &error));
  EXPECT_NE(error.find("n/a"), std::string::npos);
  EXPECT_FALSE(parse_numeric_cell("1.5\xC2\xB1x", &error));
  EXPECT_NE(error.find("spread"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ClaimContext / evaluate_claims: evidence diagnostics and verdicts.

class VerifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cr_test_verify_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write_file(const std::string& name, const std::string& content) {
    std::ofstream out(dir_ / name, std::ios::binary);
    out << content;
  }

  std::string dir() const { return dir_.string(); }

  fs::path dir_;
};

TEST_F(VerifyTest, ContextDiagnosticsNameFileColumnAndRow) {
  write_file("cell.csv", "n,rate\n4,0.5\n8,oops\n");
  ClaimContext ctx(dir(), /*quick=*/false);
  // Missing file.
  EXPECT_THROW(
      {
        try {
          ctx.table("nope");
        } catch (const EvidenceError& error) {
          EXPECT_NE(std::string(error.what()).find("nope"), std::string::npos);
          EXPECT_NE(std::string(error.what()).find("cannot open"), std::string::npos);
          throw;
        }
      },
      EvidenceError);
  // Missing column.
  EXPECT_THROW(
      {
        try {
          ctx.column("cell", "ghost");
        } catch (const EvidenceError& error) {
          const std::string what = error.what();
          EXPECT_NE(what.find("cell.csv"), std::string::npos);
          EXPECT_NE(what.find("ghost"), std::string::npos);
          throw;
        }
      },
      EvidenceError);
  // Non-numeric cell, named by row and column.
  EXPECT_THROW(
      {
        try {
          ctx.column("cell", "rate");
        } catch (const EvidenceError& error) {
          const std::string what = error.what();
          EXPECT_NE(what.find("row 2"), std::string::npos);
          EXPECT_NE(what.find("oops"), std::string::npos);
          throw;
        }
      },
      EvidenceError);
  // No matching key row.
  EXPECT_THROW(ctx.column_where("cell", "rate", "n", "99"), EvidenceError);
  // single_where with several matches.
  write_file("dup.csv", "k,v\na,1\na,2\n");
  EXPECT_THROW(ctx.single_where("dup", "v", "k", "a"), EvidenceError);
}

/// Fixture claims against a one-column CSV: `value` is 7 in the evidence.
ClaimSpec fixture_claim(const char* id, stat::CheckResult (*check)(ClaimContext&)) {
  ClaimSpec spec;
  spec.id = id;
  spec.title = "fixture";
  spec.statement = "fixture";
  spec.bound = "value == 7";
  spec.cells = {"fixture_cell"};
  spec.columns = {"value"};
  spec.check = check;
  return spec;
}

stat::CheckResult passing_check(ClaimContext& ctx) {
  const auto values = ctx.column(ctx.cells().front(), "value");
  ctx.observe("value", values.front().value);
  return stat::in_range(values.front().value, 7.0, 7.0);
}

stat::CheckResult failing_check(ClaimContext& ctx) {
  const auto values = ctx.column(ctx.cells().front(), "value");
  ctx.observe("value", values.front().value);
  return stat::in_range(values.front().value, 100.0, 200.0);
}

TEST_F(VerifyTest, VerdictsAndErrorNamesTheClaim) {
  write_file("fixture_cell.csv", "value\n7\n");
  std::vector<ClaimSpec> claims = {fixture_claim("fixture-pass", &passing_check),
                                   fixture_claim("fixture-fail", &failing_check),
                                   fixture_claim("fixture-error", &passing_check)};
  claims[2].cells = {"missing_cell"};
  const std::vector<ClaimOutcome> outcomes =
      verify::evaluate_claims(dir(), /*quick=*/false, &claims);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].verdict, "pass");
  ASSERT_FALSE(outcomes[0].observed.empty());
  EXPECT_EQ(outcomes[0].observed[0].second, "7");
  EXPECT_EQ(outcomes[1].verdict, "fail");
  EXPECT_NE(outcomes[1].detail.find("outside"), std::string::npos);
  EXPECT_EQ(outcomes[2].verdict, "error");
  // The error verdict names the claim AND the missing file.
  EXPECT_NE(outcomes[2].detail.find("fixture-error"), std::string::npos);
  EXPECT_NE(outcomes[2].detail.find("missing_cell"), std::string::npos);
}

TEST_F(VerifyTest, RunVerifyExitCodesAndReport) {
  write_file("fixture_cell.csv", "value\n7\n");
  write_file("manifest.json",
             R"({"suite": "fixture", "config_hash": "cafe1234", "quick": false})");
  // All-pass: exit 0.
  std::vector<ClaimSpec> passing = {fixture_claim("fixture-pass", &passing_check)};
  verify::VerifyOptions opts;
  opts.out_dir = dir();
  opts.claims = &passing;
  std::ostringstream out;
  EXPECT_EQ(verify::run_verify(opts, out), 0);
  EXPECT_TRUE(fs::exists(dir_ / "verify_report.json"));
  // A failing claim: exit 1 and a "fail" verdict in the written report.
  std::vector<ClaimSpec> failing = {fixture_claim("fixture-pass", &passing_check),
                                    fixture_claim("fixture-fail", &failing_check)};
  opts.claims = &failing;
  opts.report_path = (dir_ / "custom_report.json").string();
  EXPECT_EQ(verify::run_verify(opts, out), 1);
  const JsonParseResult report = JsonValue::parse_file(opts.report_path);
  ASSERT_TRUE(report.ok()) << report.error;
  const JsonValue* summary = report.value->find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->find("fail")->as_number(), 1.0);
  // Quick flag mismatching the evidence manifest is a setup error: exit 2.
  opts.quick = true;
  EXPECT_EQ(verify::run_verify(opts, out), 2);
}

TEST_F(VerifyTest, ReportJsonRoundTripsItsSchema) {
  write_file("fixture_cell.csv", "value\n7\n");
  std::vector<ClaimSpec> claims = {fixture_claim("fixture-pass", &passing_check),
                                   fixture_claim("fixture-fail", &failing_check)};
  const std::vector<ClaimOutcome> outcomes =
      verify::evaluate_claims(dir(), /*quick=*/false, &claims);
  verify::RunInfo info;
  info.manifest_found = true;
  info.suite = "fixture \"quoted\" name";  // escaping must survive the round trip
  info.config_hash = "deadbeef";
  info.quick = true;
  const std::string json = verify::report_json(info, outcomes);
  const JsonParseResult parsed = JsonValue::parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const JsonValue& root = *parsed.value;
  EXPECT_EQ(root.find("schema")->as_string(), "cr-verify-report/1");
  EXPECT_EQ(root.find("suite")->as_string(), info.suite);
  EXPECT_EQ(root.find("config_hash")->as_string(), "deadbeef");
  EXPECT_TRUE(root.find("quick")->as_bool());
  const JsonValue* summary = root.find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->find("claims")->as_number(), 2.0);
  EXPECT_EQ(summary->find("pass")->as_number(), 1.0);
  EXPECT_EQ(summary->find("fail")->as_number(), 1.0);
  EXPECT_EQ(summary->find("error")->as_number(), 0.0);
  const JsonValue* claims_json = root.find("claims");
  ASSERT_NE(claims_json, nullptr);
  ASSERT_EQ(claims_json->items().size(), 2u);
  const JsonValue& first = *claims_json->items()[0];
  EXPECT_EQ(first.find("id")->as_string(), "fixture-pass");
  EXPECT_EQ(first.find("verdict")->as_string(), "pass");
  EXPECT_EQ(first.find("bound")->as_string(), "value == 7");
  EXPECT_EQ(first.find("observed")->find("value")->as_string(), "7");
  ASSERT_EQ(first.find("cells")->items().size(), 1u);
  EXPECT_EQ(first.find("cells")->items()[0]->as_string(), "fixture_cell");
  EXPECT_EQ(claims_json->items()[1]->find("verdict")->as_string(), "fail");
}

TEST_F(VerifyTest, MissingManifestIsAWarningNotAnError) {
  write_file("fixture_cell.csv", "value\n7\n");
  std::vector<ClaimSpec> claims = {fixture_claim("fixture-pass", &passing_check)};
  verify::VerifyOptions opts;
  opts.out_dir = dir();
  opts.claims = &claims;
  std::ostringstream out;
  EXPECT_EQ(verify::run_verify(opts, out), 0);
  EXPECT_NE(out.str().find("no readable manifest.json"), std::string::npos);
  const verify::RunInfo info = verify::load_run_info(dir());
  EXPECT_FALSE(info.manifest_found);
}

}  // namespace
}  // namespace cr
