// Tests for the algorithm-variant (ablation) switches: semantics of the
// pinned-channel and no-phase-2 variants in both engines.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "engine/fast_cjz.hpp"
#include "common/stats.hpp"
#include "engine/generic_sim.hpp"
#include "exp/scenarios.hpp"
#include "protocols/cjz_node.hpp"

namespace cr {
namespace {

TEST(CjzVariants, NoSwapKeepsControlParityAcrossRestarts) {
  const FunctionSet fs = functions_constant_g(4.0);
  Rng rng(1);
  CjzOptions opts;
  opts.swap_channels_on_restart = false;
  CjzNode node(&fs, 2, rng, opts);
  node.on_feedback(9, Feedback::kSuccess, false, false);   // -> P2 on even
  node.on_feedback(14, Feedback::kSuccess, false, false);  // -> P3, anchored 14
  // Pinned convention: ctrl parity = parity(anchor) = 0.
  ASSERT_EQ(node.phase(), CjzNode::Phase::kThree);
  ASSERT_EQ(node.ctrl_channel(), 0);
  // Restart on an even (ctrl) success: parity must NOT flip.
  node.on_feedback(20, Feedback::kSuccess, false, false);
  EXPECT_EQ(node.l3(), 20u);
  EXPECT_EQ(node.ctrl_channel(), 0);
  node.on_feedback(26, Feedback::kSuccess, false, false);
  EXPECT_EQ(node.l3(), 26u);
  EXPECT_EQ(node.ctrl_channel(), 0);
}

TEST(CjzVariants, NoPhase2JumpsStraightToPhase3) {
  const FunctionSet fs = functions_constant_g(4.0);
  Rng rng(2);
  CjzOptions opts;
  opts.use_phase2 = false;
  CjzNode node(&fs, 2, rng, opts);
  node.on_feedback(9, Feedback::kSuccess, false, false);
  EXPECT_EQ(node.phase(), CjzNode::Phase::kThree);
  EXPECT_EQ(node.l3(), 9u);
  EXPECT_EQ(node.ctrl_channel(), parity_channel(10));
}

TEST(CjzVariants, DefaultMatchesPaperSemantics) {
  const FunctionSet fs = functions_constant_g(4.0);
  Rng rng(3);
  CjzNode node(&fs, 2, rng);  // defaults
  node.on_feedback(9, Feedback::kSuccess, false, false);
  EXPECT_EQ(node.phase(), CjzNode::Phase::kTwo);
  node.on_feedback(14, Feedback::kSuccess, false, false);
  EXPECT_EQ(node.ctrl_channel(), parity_channel(15));
  node.on_feedback(15, Feedback::kSuccess, false, false);  // ctrl success
  EXPECT_EQ(node.ctrl_channel(), parity_channel(16)) << "paper variant swaps";
}

struct VariantCase {
  const char* name;
  CjzOptions opts;
};

class VariantDrains : public ::testing::TestWithParam<VariantCase> {};

TEST_P(VariantDrains, FastEngineDrainsBatchUnderJamming) {
  FunctionSet fs = functions_constant_g(4.0);
  ComposedAdversary adv(batch_arrival(128, 1), iid_jammer(0.2));
  SimConfig cfg;
  cfg.horizon = 1'000'000;
  cfg.seed = 11;
  cfg.stop_when_empty = true;
  const SimResult res = run_fast_cjz(fs, adv, cfg, nullptr, GetParam().opts);
  EXPECT_EQ(res.successes, 128u) << GetParam().name;
}

TEST_P(VariantDrains, GenericEngineDrainsBatchUnderJamming) {
  CjzFactory factory(functions_constant_g(4.0), GetParam().opts);
  ComposedAdversary adv(batch_arrival(48, 1), iid_jammer(0.2));
  SimConfig cfg;
  cfg.horizon = 500'000;
  cfg.seed = 13;
  cfg.stop_when_empty = true;
  const SimResult res = run_generic(factory, adv, cfg);
  EXPECT_EQ(res.successes, 48u) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, VariantDrains,
    ::testing::Values(VariantCase{"paper", {}},
                      VariantCase{"no_swap", {.swap_channels_on_restart = false}},
                      VariantCase{"no_phase2",
                                  {.swap_channels_on_restart = true, .use_phase2 = false}},
                      VariantCase{"neither",
                                  {.swap_channels_on_restart = false, .use_phase2 = false}}),
    [](const ::testing::TestParamInfo<VariantCase>& info) { return info.param.name; });

TEST(CjzVariants, CrossEngineAgreementForNoPhase2) {
  const std::uint64_t n = 48;
  const int reps = 16;
  CjzOptions opts;
  opts.use_phase2 = false;
  Accumulator gen, fast;
  for (int r = 0; r < reps; ++r) {
    {
      CjzFactory factory(functions_constant_g(4.0), opts);
      ComposedAdversary adv(batch_arrival(n, 1), no_jam());
      SimConfig cfg;
      cfg.horizon = 400'000;
      cfg.seed = 800 + static_cast<std::uint64_t>(r);
      cfg.stop_when_empty = true;
      gen.add(static_cast<double>(run_generic(factory, adv, cfg).last_success));
    }
    {
      FunctionSet fs = functions_constant_g(4.0);
      ComposedAdversary adv(batch_arrival(n, 1), no_jam());
      SimConfig cfg;
      cfg.horizon = 400'000;
      cfg.seed = 800 + static_cast<std::uint64_t>(r);
      cfg.stop_when_empty = true;
      fast.add(static_cast<double>(run_fast_cjz(fs, adv, cfg, nullptr, opts).last_success));
    }
  }
  EXPECT_LT(std::abs(gen.mean() - fast.mean()), 0.35 * std::max(gen.mean(), fast.mean()))
      << "generic=" << gen.mean() << " fast=" << fast.mean();
}

TEST(CjzVariants, BatchProbHelperConsistency) {
  // cjz_batch_prob must reproduce the specialized helpers in paper mode.
  const FunctionSet fs = functions_constant_g(4.0);
  const slot_t l3 = 14;
  const int ctrl = parity_channel(l3 + 1);
  for (slot_t s = l3 + 1; s <= l3 + 40; ++s) {
    if (parity_channel(s) == ctrl)
      EXPECT_DOUBLE_EQ(cjz_batch_prob(fs, l3, ctrl, true, s), cjz_ctrl_prob(fs, l3, s));
    else
      EXPECT_DOUBLE_EQ(cjz_batch_prob(fs, l3, 1 - ctrl, false, s), cjz_data_prob(fs, l3, s));
  }
}

}  // namespace
}  // namespace cr
