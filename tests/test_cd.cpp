// Tests for the collision-detection contrast model: ternary feedback
// mapping, backon/backoff dynamics, and the structural throughput gap the
// paper's introduction describes.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "channel/channel.hpp"
#include "engine/generic_sim.hpp"
#include "exp/scenarios.hpp"
#include "protocols/cd_backon.hpp"

namespace cr {
namespace {

TEST(CdFeedback, TruthTable) {
  EXPECT_EQ(resolve_slot(1, 0, false, kNoNode).cd_feedback(), CdFeedback::kSilence);
  EXPECT_EQ(resolve_slot(1, 1, false, 7).cd_feedback(), CdFeedback::kSuccess);
  EXPECT_EQ(resolve_slot(1, 2, false, kNoNode).cd_feedback(), CdFeedback::kCollision);
  // Jamming always sounds like a collision — even on an empty slot, and
  // even when a lone sender transmitted.
  EXPECT_EQ(resolve_slot(1, 0, true, kNoNode).cd_feedback(), CdFeedback::kCollision);
  EXPECT_EQ(resolve_slot(1, 1, true, 7).cd_feedback(), CdFeedback::kCollision);
}

TEST(CdBackon, MultiplicativeDynamics) {
  CdBackonOptions opts;
  opts.p0 = 0.25;
  CdBackonNode node(opts);
  EXPECT_DOUBLE_EQ(node.sending_probability(), 0.25);
  node.on_feedback_cd(1, CdFeedback::kCollision, true, false);
  EXPECT_DOUBLE_EQ(node.sending_probability(), 0.125);
  node.on_feedback_cd(2, CdFeedback::kSilence, false, false);
  EXPECT_DOUBLE_EQ(node.sending_probability(), 0.25);
  node.on_feedback_cd(3, CdFeedback::kSuccess, false, false);
  EXPECT_DOUBLE_EQ(node.sending_probability(), 0.25) << "success leaves p unchanged";
  // Backon is capped at p_max.
  node.on_feedback_cd(4, CdFeedback::kSilence, false, false);
  node.on_feedback_cd(5, CdFeedback::kSilence, false, false);
  EXPECT_DOUBLE_EQ(node.sending_probability(), 0.5);
}

TEST(CdBackon, FloorGuard) {
  CdBackonOptions opts;
  opts.p0 = 0.5;
  CdBackonNode node(opts);
  for (int i = 0; i < 100; ++i) node.on_feedback_cd(i + 1, CdFeedback::kCollision, true, false);
  EXPECT_GE(node.sending_probability(), opts.p_min);
}

TEST(CdBackon, NoCdPathOnlyDecays) {
  // Through the binary (no-CD) path the controller never hears silence: a
  // wasted slot can only lower p. This is the structural handicap.
  CdBackonOptions opts;
  opts.p0 = 0.5;
  CdBackonNode node(opts);
  node.on_feedback(1, Feedback::kSilenceOrCollision, false, false);
  EXPECT_DOUBLE_EQ(node.sending_probability(), 0.25);
  node.on_feedback(2, Feedback::kSuccess, false, false);
  EXPECT_DOUBLE_EQ(node.sending_probability(), 0.25);
}

TEST(CdBackon, DrainsJammedBatchInLinearTime) {
  // With CD, an n-batch under 25% jamming drains within a small constant
  // multiple of n — the constant-throughput regime of the CD literature.
  const std::uint64_t n = 256;
  auto factory = cd_backon_factory({});
  ComposedAdversary adv(batch_arrival(n, 1), iid_jammer(0.25));
  SimConfig cfg;
  cfg.horizon = 16 * n;
  cfg.seed = 5;
  cfg.stop_when_empty = true;
  const SimResult res = run_generic(*factory, adv, cfg);
  EXPECT_EQ(res.successes, n) << "must finish within 16n slots";
}

TEST(CdBackon, ConstantThroughputAcrossScales) {
  // completion/n roughly flat as n quadruples (vs CJZ's log growth).
  auto completion_over_n = [](std::uint64_t n) {
    auto factory = cd_backon_factory({});
    ComposedAdversary adv(batch_arrival(n, 1), no_jam());
    SimConfig cfg;
    cfg.horizon = 32 * n;
    cfg.seed = 11;
    cfg.stop_when_empty = true;
    const SimResult res = run_generic(*factory, adv, cfg);
    EXPECT_EQ(res.successes, n);
    return static_cast<double>(res.last_success) / static_cast<double>(n);
  };
  const double small = completion_over_n(128);
  const double large = completion_over_n(2048);
  EXPECT_LT(large, 2.0 * small + 2.0) << "completion/n should not grow materially with n";
}

TEST(CdBackon, CollapsesWithoutCollisionDetection) {
  // The identical controller with its feedback collapsed to binary stalls:
  // after the first collisions p decays and, hearing only
  // silence-or-collision, never recovers.
  class Degraded final : public NodeProtocol {
   public:
    explicit Degraded(std::unique_ptr<NodeProtocol> inner) : inner_(std::move(inner)) {}
    bool on_slot(slot_t now, Rng& rng) override { return inner_->on_slot(now, rng); }
    void on_feedback(slot_t now, Feedback fb, bool sent, bool own) override {
      inner_->on_feedback(now, fb, sent, own);
    }
    void on_feedback_cd(slot_t now, CdFeedback fb, bool sent, bool own) override {
      inner_->on_feedback(now,
                          fb == CdFeedback::kSuccess ? Feedback::kSuccess
                                                     : Feedback::kSilenceOrCollision,
                          sent, own);
    }

   private:
    std::unique_ptr<NodeProtocol> inner_;
  };
  class DegradedFactory final : public ProtocolFactory {
   public:
    std::unique_ptr<NodeProtocol> spawn(node_id id, slot_t arrival, Rng& rng) override {
      return std::make_unique<Degraded>(inner_->spawn(id, arrival, rng));
    }
    std::string name() const override { return "degraded"; }
    std::unique_ptr<ProtocolFactory> inner_ = cd_backon_factory({});
  };

  const std::uint64_t n = 128;
  DegradedFactory factory;
  ComposedAdversary adv(batch_arrival(n, 1), no_jam());
  SimConfig cfg;
  cfg.horizon = 32 * n;
  cfg.seed = 7;
  const SimResult res = run_generic(factory, adv, cfg);
  EXPECT_LT(res.successes, n / 2) << "without CD the controller loses its backon signal";
}

}  // namespace
}  // namespace cr
