// Unit tests for send profiles and the profile protocol.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "protocols/batch.hpp"

namespace cr {
namespace {

TEST(Profiles, HdataValues) {
  const SendProfile p = profiles::h_data();
  EXPECT_DOUBLE_EQ(p(1), 1.0);
  EXPECT_DOUBLE_EQ(p(2), 0.5);
  EXPECT_DOUBLE_EQ(p(10), 0.1);
  EXPECT_EQ(p.name(), "h_data");
}

TEST(Profiles, HctrlValues) {
  const SendProfile p = profiles::h_ctrl(2.0);
  EXPECT_DOUBLE_EQ(p(1), 1.0);  // capped
  for (std::uint64_t k : {10ull, 100ull, 10000ull}) {
    EXPECT_GT(p(k), 0.0);
    EXPECT_LE(p(k), 1.0);
    EXPECT_GT(p(k), profiles::h_data()(k)) << "ctrl denser than data at k=" << k;
  }
}

TEST(Profiles, PolyDecay) {
  const SendProfile p = profiles::poly_decay(1.0, 2.0);
  EXPECT_DOUBLE_EQ(p(1), 1.0);
  EXPECT_DOUBLE_EQ(p(10), 0.01);
}

TEST(Profiles, Aloha) {
  const SendProfile p = profiles::aloha(0.25);
  EXPECT_DOUBLE_EQ(p(1), 0.25);
  EXPECT_DOUBLE_EQ(p(100000), 0.25);
}

TEST(ProfileProtocol, AgeOneSendsWithProbOne) {
  ProfileProtocolFactory factory(profiles::h_data());
  Rng rng(3);
  // h_data(1) = 1: a node always transmits in its arrival slot.
  for (slot_t arrival : {1ull, 2ull, 17ull, 1000ull}) {
    auto node = factory.spawn(0, arrival, rng);
    EXPECT_TRUE(node->on_slot(arrival, rng));
  }
}

TEST(ProfileProtocol, EmpiricalRateMatchesProfile) {
  ProfileProtocolFactory factory(profiles::aloha(0.2));
  Rng rng(5);
  auto node = factory.spawn(0, 1, rng);
  int sends = 0;
  const int T = 50000;
  for (slot_t s = 1; s <= static_cast<slot_t>(T); ++s) sends += node->on_slot(s, rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(sends) / T, 0.2, 0.01);
}

TEST(ProfileProtocol, IgnoresForeignFeedback) {
  // The profile is a pure function of age: feeding successes must not change
  // the distribution. Compare two nodes, one fed successes, same rng seeds.
  ProfileProtocolFactory factory(profiles::h_data());
  Rng r1(7), r2(7);
  auto a = factory.spawn(0, 1, r1);
  auto b = factory.spawn(1, 1, r2);
  for (slot_t s = 1; s <= 1000; ++s) {
    const bool sa = a->on_slot(s, r1);
    const bool sb = b->on_slot(s, r2);
    EXPECT_EQ(sa, sb) << "slot " << s;
    a->on_feedback(s, Feedback::kSilenceOrCollision, sa, false);
    b->on_feedback(s, Feedback::kSuccess, sb, false);  // fake foreign success
  }
}

TEST(ProfileProtocol, FactoryName) {
  ProfileProtocolFactory factory(profiles::h_data());
  EXPECT_NE(factory.name().find("h_data"), std::string::npos);
}

}  // namespace
}  // namespace cr
