// The unified Engine interface and its registry: name lookup, capability
// matrix, preferred-engine selection, and spec → factory materialisation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "engine/engine.hpp"
#include "exp/scenarios.hpp"
#include "protocols/baselines.hpp"
#include "protocols/batch.hpp"

namespace cr {
namespace {

TEST(EngineRegistryTest, KnowsTheBuiltInEngines) {
  const auto names = EngineRegistry::instance().names();
  for (const char* expected : {"generic", "fast_cjz", "fast_batch"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing engine: " << expected;
  }
  EXPECT_EQ(EngineRegistry::instance().find("warp"), nullptr);
}

TEST(EngineRegistryDeathTest, AtRejectsUnknownNames) {
  EXPECT_DEATH(EngineRegistry::instance().at("warp"), "unknown engine");
}

TEST(EngineRegistryTest, CapabilityMatrix) {
  const auto& registry = EngineRegistry::instance();
  const ProtocolSpec cjz = cjz_protocol(functions_constant_g(4.0));
  const ProtocolSpec profile = profile_protocol(profiles::h_data());
  const ProtocolSpec custom =
      factory_protocol("beb", [] { return windowed_backoff_factory({}); });

  // The reference engine executes everything; each cohort engine exactly its
  // own protocol family.
  EXPECT_TRUE(registry.at("generic").supports(cjz));
  EXPECT_TRUE(registry.at("generic").supports(profile));
  EXPECT_TRUE(registry.at("generic").supports(custom));
  EXPECT_TRUE(registry.at("fast_cjz").supports(cjz));
  EXPECT_FALSE(registry.at("fast_cjz").supports(profile));
  EXPECT_FALSE(registry.at("fast_cjz").supports(custom));
  EXPECT_TRUE(registry.at("fast_batch").supports(profile));
  EXPECT_FALSE(registry.at("fast_batch").supports(cjz));
  EXPECT_FALSE(registry.at("fast_batch").supports(custom));
}

TEST(EngineRegistryTest, PreferredPicksTheFastestCompatibleEngine) {
  const auto& registry = EngineRegistry::instance();
  EXPECT_EQ(registry.preferred(cjz_protocol(functions_constant_g(4.0))).name(), "fast_cjz");
  EXPECT_EQ(registry.preferred(profile_protocol(profiles::h_data())).name(), "fast_batch");
  EXPECT_EQ(registry
                .preferred(factory_protocol("beb",
                                            [] { return windowed_backoff_factory({}); }))
                .name(),
            "generic");
}

TEST(EngineRegistryTest, CompatibleIsOrderedFastestFirst) {
  const auto engines =
      EngineRegistry::instance().compatible(cjz_protocol(functions_constant_g(4.0)));
  ASSERT_EQ(engines.size(), 3u);  // fast_cjz (rank 100) + lockstep (50) + generic (0)
  EXPECT_EQ(engines[0]->name(), "fast_cjz");
  EXPECT_EQ(engines[1]->name(), "lockstep");
  EXPECT_EQ(engines[2]->name(), "generic");
}

TEST(ProtocolSpecTest, MakeFactoryMaterialisesEveryKind) {
  EXPECT_EQ(make_protocol_factory(cjz_protocol(functions_constant_g(4.0)))->name(),
            "cjz[g=const(4), cf=1, a=1, c3=2]");
  EXPECT_EQ(make_protocol_factory(profile_protocol(profiles::h_data()))->name(),
            "profile[h_data]");
  const ProtocolSpec custom =
      factory_protocol("beb", [] { return windowed_backoff_factory({}); });
  EXPECT_NE(make_protocol_factory(custom), nullptr);
  // Each call builds a FRESH factory (the contract parallel replication
  // relies on).
  EXPECT_NE(make_protocol_factory(custom), make_protocol_factory(custom));
}

TEST(EngineInterface, AllCompatibleEnginesRunTheSameScenarioShape) {
  // Structural check (statistical agreement lives in test_cross_engine):
  // every compatible engine consumes the same spec/adversary/config and
  // reports the same arrival count.
  const ProtocolSpec spec = cjz_protocol(functions_constant_g(4.0));
  for (const Engine* engine : EngineRegistry::instance().compatible(spec)) {
    ComposedAdversary adv(batch_arrival(16, 1), no_jam());
    SimConfig cfg;
    cfg.horizon = 50'000;
    cfg.seed = 3;
    cfg.stop_when_empty = true;
    const SimResult res = engine->run(spec, adv, cfg);
    EXPECT_EQ(res.arrivals, 16u) << engine->name();
    EXPECT_EQ(res.successes, 16u) << engine->name();
  }
}

}  // namespace
}  // namespace cr
