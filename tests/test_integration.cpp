// End-to-end integration tests: whole-system runs through both engines,
// checking the invariants that define the model and the algorithm's
// headline behaviour on small instances.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "engine/fast_batch.hpp"
#include "engine/fast_cjz.hpp"
#include "engine/generic_sim.hpp"
#include "exp/scenarios.hpp"
#include "metrics/throughput_check.hpp"
#include "protocols/batch.hpp"
#include "protocols/cjz_node.hpp"

namespace cr {
namespace {

ComposedAdversary make_adv(std::unique_ptr<ArrivalProcess> a, std::unique_ptr<Jammer> j) {
  return ComposedAdversary(std::move(a), std::move(j));
}

TEST(Integration, CjzGenericDrainsBatchWithoutJamming) {
  const std::uint64_t n = 64;
  CjzFactory factory(functions_constant_g(4.0));
  auto adv = make_adv(batch_arrival(n, 1), no_jam());
  SimConfig cfg;
  cfg.horizon = 200'000;
  cfg.seed = 7;
  cfg.stop_when_empty = true;
  const SimResult res = run_generic(factory, adv, cfg);
  EXPECT_EQ(res.successes, n);
  EXPECT_EQ(res.live_at_end, 0u);
  EXPECT_LT(res.slots, cfg.horizon) << "batch should drain well before the guard horizon";
}

TEST(Integration, CjzFastDrainsBatchWithoutJamming) {
  const std::uint64_t n = 256;
  FunctionSet fs = functions_constant_g(4.0);
  auto adv = make_adv(batch_arrival(n, 1), no_jam());
  SimConfig cfg;
  cfg.horizon = 1'000'000;
  cfg.seed = 7;
  cfg.stop_when_empty = true;
  const SimResult res = run_fast_cjz(fs, adv, cfg);
  EXPECT_EQ(res.successes, n);
  EXPECT_EQ(res.live_at_end, 0u);
}

TEST(Integration, CjzFastSurvivesQuarterJamming) {
  const std::uint64_t n = 256;
  FunctionSet fs = functions_constant_g(4.0);
  auto adv = make_adv(batch_arrival(n, 1), iid_jammer(0.25));
  SimConfig cfg;
  cfg.horizon = 2'000'000;
  cfg.seed = 11;
  cfg.stop_when_empty = true;
  const SimResult res = run_fast_cjz(fs, adv, cfg);
  EXPECT_EQ(res.successes, n);
  EXPECT_EQ(res.live_at_end, 0u);
}

TEST(Integration, SingleNodeSucceedsQuickly) {
  CjzFactory factory(functions_constant_g(4.0));
  auto adv = make_adv(batch_arrival(1, 1), no_jam());
  SimConfig cfg;
  cfg.horizon = 10'000;
  cfg.seed = 3;
  cfg.stop_when_empty = true;
  const SimResult res = run_generic(factory, adv, cfg);
  EXPECT_EQ(res.successes, 1u);
  // A lone node's Phase-1 backoff sends within every stage; first success
  // should come within a few stages.
  EXPECT_LT(res.first_success, 2'000u);
}

TEST(Integration, DynamicArrivalsAreServed) {
  FunctionSet fs = functions_constant_g(4.0);
  auto adv = make_adv(bernoulli_arrivals(0.02, 1, 50'000), no_jam());
  SimConfig cfg;
  cfg.horizon = 120'000;
  cfg.seed = 19;
  const SimResult res = run_fast_cjz(fs, adv, cfg);
  EXPECT_GT(res.arrivals, 500u);
  // Nearly everything injected in the first 50k slots should be out by 120k.
  EXPECT_GE(res.successes + 5, res.arrivals);
}

TEST(Integration, ThroughputBoundHoldsOnSmoothScenario) {
  Scenario sc = smooth_scenario(1 << 16, functions_constant_g(4.0), 8.0, 8.0);
  sc.config.seed = 5;
  ThroughputChecker checker(sc.fs);
  const SimResult res = run_fast_cjz(sc.fs, *sc.adversary, sc.config, &checker);
  EXPECT_GT(res.arrivals, 0u);
  // The bound holds with generous constant headroom: ratio stays O(1).
  EXPECT_LT(checker.max_ratio(), 8.0);
}

TEST(Integration, FastBatchDrainsHdataBatch) {
  auto adv = make_adv(batch_arrival(512, 1), no_jam());
  SimConfig cfg;
  cfg.horizon = 2'000'000;
  cfg.seed = 23;
  cfg.stop_when_empty = true;
  const SimResult res = run_fast_batch(profiles::h_data(), adv, cfg);
  EXPECT_EQ(res.successes, 512u);
}

TEST(Integration, JammedSlotsNeverSucceed) {
  CjzFactory factory(functions_constant_g(4.0));
  auto adv = make_adv(batch_arrival(16, 1), iid_jammer(0.5));
  SimConfig cfg;
  cfg.horizon = 20'000;
  cfg.seed = 29;
  GenericSimulator sim(factory, adv, cfg);
  const SimResult res = sim.run();
  for (slot_t s = 1; s <= res.slots; ++s) {
    const SlotOutcome& out = sim.trace().outcome(s);
    if (out.jammed) { EXPECT_FALSE(out.success()) << "slot " << s; }
    if (out.success()) { EXPECT_EQ(out.senders, 1u); }
  }
}

TEST(Integration, DeterministicPerSeed) {
  FunctionSet fs = functions_constant_g(4.0);
  SimConfig cfg;
  cfg.horizon = 50'000;
  cfg.seed = 42;
  cfg.stop_when_empty = true;
  auto adv1 = make_adv(batch_arrival(100, 1), iid_jammer(0.1));
  auto adv2 = make_adv(batch_arrival(100, 1), iid_jammer(0.1));
  const SimResult r1 = run_fast_cjz(fs, adv1, cfg);
  const SimResult r2 = run_fast_cjz(fs, adv2, cfg);
  EXPECT_EQ(r1.slots, r2.slots);
  EXPECT_EQ(r1.successes, r2.successes);
  EXPECT_EQ(r1.total_sends, r2.total_sends);
  EXPECT_EQ(r1.jammed_slots, r2.jammed_slots);
}

}  // namespace
}  // namespace cr
