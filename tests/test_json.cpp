// Tests for the minimal JSON reader (src/common/json.hpp): value kinds,
// member-order preservation, raw number text, escapes, and error reporting
// — the properties the suite runner builds on.
#include "common/json.hpp"

#include <gtest/gtest.h>

namespace cr {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").value->is_null());
  EXPECT_TRUE(JsonValue::parse("true").value->as_bool());
  EXPECT_FALSE(JsonValue::parse("false").value->as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("-1.5e2").value->as_number(), -150.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").value->as_string(), "hi");
}

TEST(Json, NumbersKeepRawSourceText) {
  // The suite runner forwards manifest numbers to bench flags byte-for-byte;
  // a double round-trip would turn 0.25 into 0.25000000000000000 or similar.
  const auto parsed = JsonValue::parse(R"({"jam": 0.25, "n": 4096, "e": 1e3})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value->find("jam")->raw_number(), "0.25");
  EXPECT_EQ(parsed.value->find("n")->raw_number(), "4096");
  EXPECT_EQ(parsed.value->find("e")->raw_number(), "1e3");
  EXPECT_DOUBLE_EQ(parsed.value->find("e")->as_number(), 1000.0);
}

TEST(Json, ObjectPreservesMemberOrder) {
  const auto parsed = JsonValue::parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(parsed.ok());
  const auto& members = parsed.value->members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(Json, NestedStructures) {
  const auto parsed =
      JsonValue::parse(R"({"cells": [{"bench": "latency", "seeds": [1, 2]}, {}]})");
  ASSERT_TRUE(parsed.ok());
  const JsonValue* cells = parsed.value->find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->items().size(), 2u);
  EXPECT_EQ(cells->items()[0]->find("bench")->as_string(), "latency");
  EXPECT_EQ(cells->items()[0]->find("seeds")->items().size(), 2u);
  EXPECT_TRUE(cells->items()[1]->members().empty());
}

TEST(Json, StringEscapes) {
  const auto parsed = JsonValue::parse(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value->as_string(), "a\"b\\c\nd\teA");
}

TEST(Json, FindReturnsNullForMissingKey) {
  const auto parsed = JsonValue::parse(R"({"a": 1})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value->find("b"), nullptr);
}

TEST(Json, ErrorsCarryLineNumbers) {
  const auto parsed = JsonValue::parse("{\n  \"a\": ,\n}");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("line 2"), std::string::npos) << parsed.error;
}

TEST(Json, RejectsTrailingGarbage) {
  EXPECT_FALSE(JsonValue::parse("{} extra").ok());
  EXPECT_FALSE(JsonValue::parse("1 2").ok());
}

TEST(Json, RejectsDuplicateObjectKeys) {
  const auto parsed = JsonValue::parse(R"({"cells": [1], "cells": [2]})");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("duplicate object key"), std::string::npos) << parsed.error;
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::parse("").ok());
  EXPECT_FALSE(JsonValue::parse("{\"a\": 1").ok());
  EXPECT_FALSE(JsonValue::parse("[1, ]").ok());
  EXPECT_FALSE(JsonValue::parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::parse("{\"bad\\q\": 1}").ok());
  EXPECT_FALSE(JsonValue::parse("{'single': 1}").ok());
}

TEST(Json, ParseFileReportsMissingPath) {
  const auto parsed = JsonValue::parse_file("/nonexistent/suite.json");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("/nonexistent/suite.json"), std::string::npos);
}

}  // namespace
}  // namespace cr
