// Unit tests for the generic (reference) engine: bookkeeping invariants,
// observer plumbing, early-exit and per-node stats.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "engine/generic_sim.hpp"
#include "exp/scenarios.hpp"
#include "protocols/batch.hpp"
#include "protocols/cjz_node.hpp"

namespace cr {
namespace {

ComposedAdversary make_adv(std::unique_ptr<ArrivalProcess> a, std::unique_ptr<Jammer> j) {
  return ComposedAdversary(std::move(a), std::move(j));
}

TEST(GenericSim, SingleAlohaNodeWinsFirstSlot) {
  // aloha(1.0): the lone node transmits every slot; with nobody else it
  // succeeds immediately at its arrival slot.
  ProfileProtocolFactory factory(profiles::aloha(1.0));
  auto adv = make_adv(batch_arrival(1, 4), no_jam());
  SimConfig cfg;
  cfg.horizon = 10;
  cfg.recording = RecordingConfig::success_times();
  const SimResult res = run_generic(factory, adv, cfg);
  EXPECT_EQ(res.successes, 1u);
  EXPECT_EQ(res.first_success, 4u);
  EXPECT_EQ(res.active_slots, 1u) << "slots before arrival and after departure are inactive";
}

TEST(GenericSim, TwoGreedyNodesNeverSucceed) {
  // Two aloha(1.0) nodes collide forever — and, without collision detection,
  // nothing can tell them apart from silence.
  ProfileProtocolFactory factory(profiles::aloha(1.0));
  auto adv = make_adv(batch_arrival(2, 1), no_jam());
  SimConfig cfg;
  cfg.horizon = 500;
  const SimResult res = run_generic(factory, adv, cfg);
  EXPECT_EQ(res.successes, 0u);
  EXPECT_EQ(res.live_at_end, 2u);
  EXPECT_EQ(res.total_sends, 1000u);
  EXPECT_EQ(res.active_slots, 500u);
}

TEST(GenericSim, SuccessesEqualDepartures) {
  ProfileProtocolFactory factory(profiles::h_data());
  auto adv = make_adv(batch_arrival(40, 1), no_jam());
  SimConfig cfg;
  cfg.horizon = 100'000;
  cfg.seed = 13;
  cfg.stop_when_empty = true;
  cfg.recording = RecordingConfig::node_stats();
  const SimResult res = run_generic(factory, adv, cfg);
  EXPECT_EQ(res.successes + res.live_at_end, 40u);
  std::uint64_t departed = 0;
  for (const auto& ns : res.node_stats) departed += ns.departed() ? 1 : 0;
  EXPECT_EQ(departed, res.successes);
}

TEST(GenericSim, NodeStatsSendsSumToTotal) {
  ProfileProtocolFactory factory(profiles::h_data());
  auto adv = make_adv(batch_arrival(20, 1), no_jam());
  SimConfig cfg;
  cfg.horizon = 50'000;
  cfg.seed = 17;
  cfg.stop_when_empty = true;
  cfg.recording = RecordingConfig::node_stats();
  const SimResult res = run_generic(factory, adv, cfg);
  std::uint64_t sum = 0;
  for (const auto& ns : res.node_stats) sum += ns.sends;
  EXPECT_EQ(sum, res.total_sends);
}

TEST(GenericSim, ActiveSlotAccountingWithGap) {
  // One node at slot 10 succeeding immediately; slots 1..9 inactive.
  ProfileProtocolFactory factory(profiles::aloha(1.0));
  auto adv = make_adv(scheduled_arrivals({{10, 1}, {20, 1}}), no_jam());
  SimConfig cfg;
  cfg.horizon = 25;
  const SimResult res = run_generic(factory, adv, cfg);
  EXPECT_EQ(res.successes, 2u);
  EXPECT_EQ(res.active_slots, 2u);
}

TEST(GenericSim, StopWhenEmptyWaitsForFirstArrival) {
  ProfileProtocolFactory factory(profiles::aloha(1.0));
  auto adv = make_adv(scheduled_arrivals({{50, 1}}), no_jam());
  SimConfig cfg;
  cfg.horizon = 1000;
  cfg.stop_when_empty = true;
  const SimResult res = run_generic(factory, adv, cfg);
  EXPECT_EQ(res.successes, 1u);
  EXPECT_EQ(res.slots, 50u) << "must not stop before the first arrival";
}

TEST(GenericSim, JammedSlotCountMatchesTrace) {
  CjzFactory factory(functions_constant_g(4.0));
  auto adv = make_adv(batch_arrival(8, 1), periodic_jammer(4, 1));
  SimConfig cfg;
  cfg.horizon = 4000;
  GenericSimulator sim(factory, adv, cfg);
  const SimResult res = sim.run();
  EXPECT_EQ(res.jammed_slots, sim.trace().total_jammed());
  EXPECT_EQ(res.jammed_slots, 1000u);
}

class ProbeObserver final : public SlotObserver {
 public:
  std::uint64_t calls = 0;
  std::uint64_t injected_total = 0;
  std::uint64_t max_live = 0;
  slot_t last_slot = 0;

  void on_slot(const SlotOutcome& out, std::uint64_t injected, std::uint64_t live) override {
    ++calls;
    injected_total += injected;
    max_live = std::max(max_live, live);
    EXPECT_EQ(out.slot, last_slot + 1);
    last_slot = out.slot;
  }
};

TEST(GenericSim, ObserverSeesEverySlot) {
  ProfileProtocolFactory factory(profiles::h_data());
  auto adv = make_adv(batch_arrival(10, 5), no_jam());
  SimConfig cfg;
  cfg.horizon = 2000;
  ProbeObserver probe;
  GenericSimulator sim(factory, adv, cfg);
  sim.set_observer(&probe);
  const SimResult res = sim.run();
  EXPECT_EQ(probe.calls, res.slots);
  EXPECT_EQ(probe.injected_total, 10u);
  EXPECT_EQ(probe.max_live, 10u);
}

TEST(GenericSim, DeterministicPerSeedAcrossInstances) {
  for (int trial = 0; trial < 2; ++trial) {
    CjzFactory f1(functions_constant_g(4.0));
    CjzFactory f2(functions_constant_g(4.0));
    auto a1 = make_adv(batch_arrival(30, 1), iid_jammer(0.2));
    auto a2 = make_adv(batch_arrival(30, 1), iid_jammer(0.2));
    SimConfig cfg;
    cfg.horizon = 20'000;
    cfg.seed = 1234;
    cfg.stop_when_empty = true;
    const SimResult r1 = run_generic(f1, a1, cfg);
    const SimResult r2 = run_generic(f2, a2, cfg);
    EXPECT_EQ(r1.slots, r2.slots);
    EXPECT_EQ(r1.total_sends, r2.total_sends);
    EXPECT_EQ(r1.successes, r2.successes);
  }
}

TEST(GenericSim, SeedsChangeOutcome) {
  CjzFactory f1(functions_constant_g(4.0));
  CjzFactory f2(functions_constant_g(4.0));
  auto a1 = make_adv(batch_arrival(30, 1), no_jam());
  auto a2 = make_adv(batch_arrival(30, 1), no_jam());
  SimConfig c1, c2;
  c1.horizon = c2.horizon = 50'000;
  c1.stop_when_empty = c2.stop_when_empty = true;
  c1.seed = 1;
  c2.seed = 2;
  const SimResult r1 = run_generic(f1, a1, c1);
  const SimResult r2 = run_generic(f2, a2, c2);
  EXPECT_NE(r1.total_sends, r2.total_sends);
}

TEST(GenericSim, SuccessTimesSortedAndComplete) {
  ProfileProtocolFactory factory(profiles::h_data());
  auto adv = make_adv(batch_arrival(30, 1), no_jam());
  SimConfig cfg;
  cfg.horizon = 100'000;
  cfg.seed = 3;
  cfg.stop_when_empty = true;
  cfg.recording = RecordingConfig::success_times();
  const SimResult res = run_generic(factory, adv, cfg);
  EXPECT_EQ(res.success_times.size(), res.successes);
  EXPECT_TRUE(std::is_sorted(res.success_times.begin(), res.success_times.end()));
  if (!res.success_times.empty()) {
    EXPECT_EQ(res.success_times.front(), res.first_success);
    EXPECT_EQ(res.success_times.back(), res.last_success);
  }
}

}  // namespace
}  // namespace cr
