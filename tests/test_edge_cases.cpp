// Edge cases and failure injection: degenerate horizons, total jamming,
// last-slot injections, flag combinations, and end-to-end runs against the
// scripted proof adversaries.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "adversary/proof_adversaries.hpp"
#include "engine/fast_batch.hpp"
#include "engine/fast_cjz.hpp"
#include "engine/generic_sim.hpp"
#include "exp/scenarios.hpp"
#include "protocols/batch.hpp"
#include "protocols/baselines.hpp"
#include "protocols/cjz_node.hpp"

namespace cr {
namespace {

ComposedAdversary make_adv(std::unique_ptr<ArrivalProcess> a, std::unique_ptr<Jammer> j) {
  return ComposedAdversary(std::move(a), std::move(j));
}

TEST(EdgeCases, TotalJammingBlocksEverything) {
  // Failure injection: every slot jammed. Nobody ever succeeds; everything
  // stays queued; the trace shows zero successes.
  FunctionSet fs = functions_constant_g(4.0);
  auto adv = make_adv(batch_arrival(10, 1), iid_jammer(1.0));
  SimConfig cfg;
  cfg.horizon = 5000;
  cfg.seed = 3;
  FastCjzSimulator sim(fs, adv, cfg);
  const SimResult res = sim.run();
  EXPECT_EQ(res.successes, 0u);
  EXPECT_EQ(res.live_at_end, 10u);
  EXPECT_EQ(res.jammed_slots, 5000u);
  EXPECT_EQ(res.active_slots, 5000u);
}

TEST(EdgeCases, RecoveryAfterTotalJammingWindow) {
  // Jamming stops at slot 2000; the batch must then drain normally.
  FunctionSet fs = functions_constant_g(4.0);
  auto adv = make_adv(batch_arrival(16, 1), prefix_jammer(2000));
  SimConfig cfg;
  cfg.horizon = 100'000;
  cfg.seed = 5;
  cfg.stop_when_empty = true;
  const SimResult res = run_fast_cjz(fs, adv, cfg);
  EXPECT_EQ(res.successes, 16u);
  EXPECT_GT(res.first_success, 2000u);
}

TEST(EdgeCases, ArrivalInLastSlot) {
  // A node injected at the horizon's last slot: it acts in that slot (it
  // may even succeed — a lone stage-0 backoff sends immediately).
  CjzFactory factory(functions_constant_g(4.0));
  auto adv = make_adv(scheduled_arrivals({{100, 1}}), no_jam());
  SimConfig cfg;
  cfg.horizon = 100;
  const SimResult res = run_generic(factory, adv, cfg);
  EXPECT_EQ(res.arrivals, 1u);
  EXPECT_EQ(res.active_slots, 1u);
  EXPECT_EQ(res.successes, 1u) << "lone node transmits at its arrival slot";
}

TEST(EdgeCases, HorizonOne) {
  CjzFactory factory(functions_constant_g(4.0));
  auto adv = make_adv(batch_arrival(1, 1), no_jam());
  SimConfig cfg;
  cfg.horizon = 1;
  const SimResult res = run_generic(factory, adv, cfg);
  EXPECT_EQ(res.slots, 1u);
  EXPECT_EQ(res.successes, 1u);
}

TEST(EdgeCases, StopAfterFirstSuccessAllEngines) {
  FunctionSet fs = functions_constant_g(4.0);
  SimConfig cfg;
  cfg.horizon = 1'000'000;
  cfg.seed = 9;
  cfg.stop_after_first_success = true;
  {
    auto adv = make_adv(batch_arrival(64, 1), no_jam());
    const SimResult res = run_fast_cjz(fs, adv, cfg);
    EXPECT_EQ(res.successes, 1u);
    EXPECT_EQ(res.slots, res.first_success);
  }
  {
    auto adv = make_adv(batch_arrival(64, 1), no_jam());
    const SimResult res = run_fast_batch(profiles::h_data(), adv, cfg);
    EXPECT_EQ(res.successes, 1u);
    EXPECT_EQ(res.slots, res.first_success);
  }
  {
    CjzFactory factory(fs);
    auto adv = make_adv(batch_arrival(64, 1), no_jam());
    const SimResult res = run_generic(factory, adv, cfg);
    EXPECT_EQ(res.successes, 1u);
    EXPECT_EQ(res.slots, res.first_success);
  }
}

TEST(EdgeCases, EmptyRunProducesEmptyResult) {
  CjzFactory factory(functions_constant_g(4.0));
  auto adv = make_adv(no_arrivals(), no_jam());
  SimConfig cfg;
  cfg.horizon = 1000;
  cfg.recording = RecordingConfig::full_trace();
  const SimResult res = run_generic(factory, adv, cfg);
  EXPECT_EQ(res.arrivals, 0u);
  EXPECT_EQ(res.active_slots, 0u);
  EXPECT_TRUE(res.success_times.empty());
  EXPECT_TRUE(res.node_stats.empty());
}

TEST(ProofIntegration, Theorem13AdversaryDelaysButCannotStopBackoff) {
  // The Theorem 1.3 construction jams a prefix plus random slots against a
  // single node; the node must still get through within t (the adversary's
  // budget is t/(2g)+1, far below t).
  const slot_t t = 1 << 14;
  const FunctionSet fs = functions_constant_g(4.0);
  int solved = 0;
  for (int r = 0; r < 10; ++r) {
    auto factory = backoff_protocol_factory(fs);
    auto adv = theorem13_adversary(t, fs.g, 100 + static_cast<std::uint64_t>(r));
    SimConfig cfg;
    cfg.horizon = t;
    cfg.seed = 200 + static_cast<std::uint64_t>(r);
    cfg.stop_after_first_success = true;
    const SimResult res = run_generic(*factory, *adv, cfg);
    if (res.first_success != 0) {
      ++solved;
      EXPECT_GT(res.first_success, t / 16) << "prefix jam must delay the first success";
    }
  }
  EXPECT_GE(solved, 9) << "the jamming budget cannot prevent success within t";
}

TEST(ProofIntegration, Theorem42AdversaryAgainstCjz) {
  // CJZ (which embeds the adaptive backoff) against the Theorem 4.2
  // adversary: prefix jam + last-slot flood. It should succeed soon after
  // the prefix and keep the pre-flood population served.
  const slot_t t = 1 << 14;
  FunctionSet fs = functions_constant_g(4.0);
  auto adv = theorem42_adversary(t, fs);
  SimConfig cfg;
  cfg.horizon = t;
  cfg.seed = 7;
  const SimResult res = run_fast_cjz(fs, *adv, cfg);
  EXPECT_GT(res.successes, 0u);
  // Both initial nodes served long before the end (flood arrives at slot t).
  EXPECT_GE(res.successes, 2u);
  EXPECT_LT(res.first_success, t / 2);
}

TEST(ProofIntegration, Lemma41AdversarySuppressesProfileProtocols) {
  // Lemma 4.1's mass-injection pattern is designed to prevent any success
  // against senders with high cumulative sending probability. The constant
  // ALOHA profile (x_i = p for all i) is the canonical victim: batch
  // injections keep every slot's contention enormous.
  const slot_t t = 4096;
  ProfileProtocolFactory aloha(profiles::aloha(0.5));
  auto adv = lemma41_adversary(t, 0.5, fn::log2p(1.0), 17);
  SimConfig cfg;
  cfg.horizon = t;
  cfg.seed = 23;
  const SimResult res = run_generic(aloha, *adv, cfg);
  EXPECT_EQ(res.successes, 0u) << "contention never drops below Θ(log t)";
}

TEST(EdgeCases, FastBatchCohortCompaction) {
  // Long run with many drained cohorts: the periodic compaction must not
  // drop live nodes (conservation still holds).
  auto adv = make_adv(bernoulli_arrivals(0.01, 1, 20'000), no_jam());
  SimConfig cfg;
  cfg.horizon = 60'000;
  cfg.seed = 31;
  const SimResult res = run_fast_batch(profiles::h_data(), adv, cfg);
  EXPECT_EQ(res.successes + res.live_at_end, res.arrivals);
}

TEST(EdgeCases, ReseedReproducesStream) {
  Rng rng(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(rng.next_u64());
  rng.reseed(77);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.next_u64(), first[i]);
}

TEST(EdgeCases, GrowthFnCopyIsIndependent) {
  GrowthFn a = fn::constant(4.0);
  GrowthFn b = a;
  EXPECT_DOUBLE_EQ(b(10.0), 4.0);
  a = fn::constant(8.0);
  EXPECT_DOUBLE_EQ(b(10.0), 4.0) << "copies must not alias";
}

class JamRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(JamRateSweep, ConservationHoldsAtEveryJamRate) {
  FunctionSet fs = functions_constant_g(4.0);
  auto adv = make_adv(bernoulli_arrivals(0.01, 1, 30'000), iid_jammer(GetParam()));
  SimConfig cfg;
  cfg.horizon = 50'000;
  cfg.seed = 41;
  const SimResult res = run_fast_cjz(fs, adv, cfg);
  EXPECT_EQ(res.successes + res.live_at_end, res.arrivals);
  EXPECT_LE(res.successes, res.total_sends);
}

INSTANTIATE_TEST_SUITE_P(Rates, JamRateSweep,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 0.95));

}  // namespace
}  // namespace cr
