// Unit tests for Cli numeric-flag validation: malformed values must fail
// loudly via CR_CHECK instead of silently parsing to 0.
#include <gtest/gtest.h>

#include <initializer_list>
#include <vector>

#include "common/cli.hpp"

namespace cr {
namespace {

Cli make_cli(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(CliValidate, AcceptsWellFormedNumbers) {
  const Cli cli = make_cli({"--n=42", "--neg=-17", "--rate=0.25", "--exp=1e3"});
  EXPECT_EQ(cli.get_int("n", 0), 42);
  EXPECT_EQ(cli.get_int("neg", 0), -17);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 0.25);
  EXPECT_DOUBLE_EQ(cli.get_double("exp", 0.0), 1000.0);
}

TEST(CliValidate, AcceptsSubnormalDouble) {
  // glibc strtod sets ERANGE on underflow; a representable subnormal must
  // still be accepted, not treated as a parse failure.
  const Cli cli = make_cli({"--rate=1e-310"});
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 1e-310);
}

TEST(CliValidate, MissingFlagsFallBackToDefaults) {
  const Cli cli = make_cli({});
  EXPECT_EQ(cli.get_int("n", 9), 9);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.5), 0.5);
}

TEST(CliValidateDeathTest, RejectsGarbageInt) {
  const Cli cli = make_cli({"--n=abc"});
  EXPECT_DEATH(cli.get_int("n", 0), "expects an integer");
}

TEST(CliValidateDeathTest, RejectsTrailingJunkInt) {
  const Cli cli = make_cli({"--n=12x"});
  EXPECT_DEATH(cli.get_int("n", 0), "expects an integer");
}

TEST(CliValidateDeathTest, RejectsFloatAsInt) {
  const Cli cli = make_cli({"--n=3.5"});
  EXPECT_DEATH(cli.get_int("n", 0), "expects an integer");
}

TEST(CliValidateDeathTest, RejectsIntOverflow) {
  const Cli cli = make_cli({"--n=99999999999999999999999999"});
  EXPECT_DEATH(cli.get_int("n", 0), "expects an integer");
}

TEST(CliValidateDeathTest, RejectsDoubleOverflow) {
  const Cli cli = make_cli({"--rate=1e999"});
  EXPECT_DEATH(cli.get_double("rate", 0.0), "expects a number");
}

TEST(CliValidateDeathTest, RejectsGarbageDouble) {
  const Cli cli = make_cli({"--rate=fast"});
  EXPECT_DEATH(cli.get_double("rate", 0.0), "expects a number");
}

TEST(CliValidateDeathTest, RejectsTrailingJunkDouble) {
  const Cli cli = make_cli({"--rate=0.5qq"});
  EXPECT_DEATH(cli.get_double("rate", 0.0), "expects a number");
}

TEST(CliValidateDeathTest, RejectsBareBoolReadAsInt) {
  // `--verbose` with no value stores "true"; asking for it as an int must
  // abort rather than return 0.
  const Cli cli = make_cli({"--verbose"});
  EXPECT_DEATH(cli.get_int("verbose", 0), "expects an integer");
}

// Unknown-flag rejection: a typo like --rep=10 must fail loudly instead of
// silently running with the default.

TEST(CliUnknown, ReadsAndDeclaresRegisterKnownFlags) {
  const Cli cli = make_cli({"--n=42", "--quick", "--out=x.csv"});
  cli.get_int("n", 0);
  cli.get_bool("quick", false);
  EXPECT_EQ(cli.unknown_flags(), std::vector<std::string>{"out"});
  cli.declare({"out"});
  EXPECT_TRUE(cli.unknown_flags().empty());
  cli.reject_unknown();  // no-op when everything is known
}

TEST(CliUnknown, NoFlagsIsTriviallyKnown) {
  const Cli cli = make_cli({});
  EXPECT_TRUE(cli.unknown_flags().empty());
  cli.reject_unknown();
}

TEST(CliUnknownDeathTest, RejectUnknownExitsWithMessage) {
  const Cli cli = make_cli({"--rep=10"});
  cli.declare({"reps", "seed"});
  EXPECT_EXIT(cli.reject_unknown(), ::testing::ExitedWithCode(2), "unknown flag --rep");
}

TEST(CliUnknownDeathTest, SuggestsCloseMatches) {
  const Cli cli = make_cli({"--thread=4"});
  cli.declare({"threads", "reps"});
  EXPECT_EXIT(cli.reject_unknown(), ::testing::ExitedWithCode(2),
              "did you mean --threads");
}

}  // namespace
}  // namespace cr
