// Unit tests for metrics: latency/energy reports, success windows, and the
// online (f,g)-throughput checker fed with synthetic slot outcomes.
#include <gtest/gtest.h>

#include "channel/channel.hpp"
#include "exp/scenarios.hpp"
#include "metrics/metrics.hpp"
#include "metrics/throughput_check.hpp"

namespace cr {
namespace {

SimResult synthetic_result() {
  SimResult res;
  res.node_stats = {
      {0, 1, 10, 3},   // latency 10
      {1, 1, 5, 1},    // latency 5
      {2, 2, 21, 7},   // latency 20
      {3, 4, 0, 2},    // stranded
  };
  res.success_times = {5, 10, 21};
  res.successes = 3;
  return res;
}

TEST(Metrics, LatencyReport) {
  const LatencyReport rep = latency_report(synthetic_result());
  EXPECT_EQ(rep.departed, 3u);
  EXPECT_EQ(rep.stranded, 1u);
  EXPECT_NEAR(rep.mean, (10.0 + 5.0 + 20.0) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(rep.p50, 10.0);
  EXPECT_DOUBLE_EQ(rep.max, 20.0);
}

TEST(Metrics, EnergyReport) {
  const EnergyReport rep = energy_report(synthetic_result());
  EXPECT_EQ(rep.departed, 3u);
  EXPECT_NEAR(rep.mean, (3.0 + 1.0 + 7.0) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(rep.max, 7.0);
}

TEST(Metrics, EmptyReports) {
  SimResult res;
  EXPECT_EQ(latency_report(res).departed, 0u);
  EXPECT_EQ(energy_report(res).departed, 0u);
}

TEST(Metrics, SuccessesInWindow) {
  const SimResult res = synthetic_result();
  EXPECT_EQ(successes_in_window(res, 1, 100), 3u);
  EXPECT_EQ(successes_in_window(res, 5, 10), 2u);
  EXPECT_EQ(successes_in_window(res, 6, 9), 0u);
  EXPECT_EQ(successes_in_window(res, 21, 21), 1u);
}

TEST(Metrics, MaxLatencyForArrivals) {
  const SimResult res = synthetic_result();
  EXPECT_EQ(max_latency_for_arrivals(res, 1, 1), 10u);
  EXPECT_EQ(max_latency_for_arrivals(res, 1, 2), 20u);
  EXPECT_EQ(max_latency_for_arrivals(res, 3, 9), 0u) << "node 3 never departed";
}

TEST(ThroughputChecker, CountersTrackOutcomes) {
  ThroughputChecker checker(functions_constant_g(4.0));
  // slot 1: 2 arrivals, active, no jam.
  checker.on_slot(resolve_slot(1, 2, false, kNoNode), 2, 2);
  // slot 2: jammed, active.
  checker.on_slot(resolve_slot(2, 1, true, kNoNode), 0, 2);
  // slot 3: success, active.
  checker.on_slot(resolve_slot(3, 1, false, 7), 0, 2);
  // slot 4: idle.
  checker.on_slot(resolve_slot(4, 0, false, kNoNode), 0, 0);
  EXPECT_EQ(checker.arrivals(), 2u);
  EXPECT_EQ(checker.jammed(), 1u);
  EXPECT_EQ(checker.active(), 3u);
  EXPECT_EQ(checker.slots(), 4u);
}

TEST(ThroughputChecker, BoundArithmetic) {
  FunctionSet fs = functions_constant_g(4.0);
  ThroughputChecker checker(fs);
  checker.on_slot(resolve_slot(1, 0, true, kNoNode), 3, 3);
  // n=3, d=1, t=1: bound = 3·f(1) + 1·g(1).
  const double expect = 3.0 * fs.f(1.0) + 4.0;
  EXPECT_NEAR(checker.bound(), expect, 1e-12);
  EXPECT_NEAR(checker.final_ratio(), 1.0 / expect, 1e-12);
}

TEST(ThroughputChecker, MaxRatioTracksWorstSlot) {
  FunctionSet fs = functions_constant_g(4.0);
  ThroughputChecker checker(fs);
  // 1 arrival then long active streak with no arrivals/jams: ratio grows.
  checker.on_slot(resolve_slot(1, 0, false, kNoNode), 1, 1);
  for (slot_t s = 2; s <= 100; ++s)
    checker.on_slot(resolve_slot(s, 0, false, kNoNode), 0, 1);
  EXPECT_GT(checker.max_ratio(), checker.final_ratio() * 0.99);
  EXPECT_GE(checker.max_ratio_slot(), 1u);
  // a_t = 100, bound = f(100) ≈ log2(102)/4 ≈ 1.67 -> ratio ~ 60.
  EXPECT_GT(checker.max_ratio(), 10.0);
}

TEST(ThroughputChecker, SeriesSampling) {
  ThroughputChecker checker(functions_constant_g(4.0), 10);
  for (slot_t s = 1; s <= 100; ++s)
    checker.on_slot(resolve_slot(s, 0, false, kNoNode), s == 1 ? 1 : 0, 1);
  ASSERT_EQ(checker.series().size(), 10u);
  EXPECT_EQ(checker.series().front().t, 10u);
  EXPECT_EQ(checker.series().back().t, 100u);
  EXPECT_EQ(checker.series().back().a_t, 100u);
}

}  // namespace
}  // namespace cr
