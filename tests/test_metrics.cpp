// Unit tests for metrics: latency/energy reports, success windows, and the
// online (f,g)-throughput checker fed with synthetic slot outcomes.
#include <gtest/gtest.h>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "channel/channel.hpp"
#include "engine/fast_cjz.hpp"
#include "exp/scenarios.hpp"
#include "metrics/metrics.hpp"
#include "metrics/throughput_check.hpp"
#include "metrics/windowed.hpp"

namespace cr {
namespace {

SimResult synthetic_result() {
  SimResult res;
  res.node_stats = {
      {0, 1, 10, 3},   // latency 10
      {1, 1, 5, 1},    // latency 5
      {2, 2, 21, 7},   // latency 20
      {3, 4, 0, 2},    // stranded
  };
  res.success_times = {5, 10, 21};
  res.successes = 3;
  return res;
}

TEST(Metrics, LatencyReport) {
  const LatencyReport rep = latency_report(synthetic_result());
  EXPECT_EQ(rep.departed, 3u);
  EXPECT_EQ(rep.stranded, 1u);
  EXPECT_NEAR(rep.mean, (10.0 + 5.0 + 20.0) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(rep.p50, 10.0);
  EXPECT_DOUBLE_EQ(rep.max, 20.0);
}

TEST(Metrics, EnergyReport) {
  const EnergyReport rep = energy_report(synthetic_result());
  EXPECT_EQ(rep.departed, 3u);
  EXPECT_NEAR(rep.mean, (3.0 + 1.0 + 7.0) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(rep.max, 7.0);
}

TEST(Metrics, EmptyReports) {
  SimResult res;
  EXPECT_EQ(latency_report(res).departed, 0u);
  EXPECT_EQ(energy_report(res).departed, 0u);
}

TEST(Metrics, SuccessesInWindow) {
  const SimResult res = synthetic_result();
  EXPECT_EQ(successes_in_window(res, 1, 100), 3u);
  EXPECT_EQ(successes_in_window(res, 5, 10), 2u);
  EXPECT_EQ(successes_in_window(res, 6, 9), 0u);
  EXPECT_EQ(successes_in_window(res, 21, 21), 1u);
}

TEST(Metrics, MaxLatencyForArrivals) {
  const SimResult res = synthetic_result();
  EXPECT_EQ(max_latency_for_arrivals(res, 1, 1), 10u);
  EXPECT_EQ(max_latency_for_arrivals(res, 1, 2), 20u);
  EXPECT_EQ(max_latency_for_arrivals(res, 3, 9), 0u) << "node 3 never departed";
}

TEST(ThroughputChecker, CountersTrackOutcomes) {
  ThroughputChecker checker(functions_constant_g(4.0));
  // slot 1: 2 arrivals, active, no jam.
  checker.on_slot(resolve_slot(1, 2, false, kNoNode), 2, 2);
  // slot 2: jammed, active.
  checker.on_slot(resolve_slot(2, 1, true, kNoNode), 0, 2);
  // slot 3: success, active.
  checker.on_slot(resolve_slot(3, 1, false, 7), 0, 2);
  // slot 4: idle.
  checker.on_slot(resolve_slot(4, 0, false, kNoNode), 0, 0);
  EXPECT_EQ(checker.arrivals(), 2u);
  EXPECT_EQ(checker.jammed(), 1u);
  EXPECT_EQ(checker.active(), 3u);
  EXPECT_EQ(checker.slots(), 4u);
}

TEST(ThroughputChecker, BoundArithmetic) {
  FunctionSet fs = functions_constant_g(4.0);
  ThroughputChecker checker(fs);
  checker.on_slot(resolve_slot(1, 0, true, kNoNode), 3, 3);
  // n=3, d=1, t=1: bound = 3·f(1) + 1·g(1).
  const double expect = 3.0 * fs.f(1.0) + 4.0;
  EXPECT_NEAR(checker.bound(), expect, 1e-12);
  EXPECT_NEAR(checker.final_ratio(), 1.0 / expect, 1e-12);
}

TEST(ThroughputChecker, MaxRatioTracksWorstSlot) {
  FunctionSet fs = functions_constant_g(4.0);
  ThroughputChecker checker(fs);
  // 1 arrival then long active streak with no arrivals/jams: ratio grows.
  checker.on_slot(resolve_slot(1, 0, false, kNoNode), 1, 1);
  for (slot_t s = 2; s <= 100; ++s)
    checker.on_slot(resolve_slot(s, 0, false, kNoNode), 0, 1);
  EXPECT_GT(checker.max_ratio(), checker.final_ratio() * 0.99);
  EXPECT_GE(checker.max_ratio_slot(), 1u);
  // a_t = 100, bound = f(100) ≈ log2(102)/4 ≈ 1.67 -> ratio ~ 60.
  EXPECT_GT(checker.max_ratio(), 10.0);
}

TEST(ThroughputChecker, SeriesSampling) {
  ThroughputChecker checker(functions_constant_g(4.0), 10);
  for (slot_t s = 1; s <= 100; ++s)
    checker.on_slot(resolve_slot(s, 0, false, kNoNode), s == 1 ? 1 : 0, 1);
  ASSERT_EQ(checker.series().size(), 10u);
  EXPECT_EQ(checker.series().front().t, 10u);
  EXPECT_EQ(checker.series().back().t, 100u);
  EXPECT_EQ(checker.series().back().a_t, 100u);
}

TEST(WindowedMetrics, FoldsSlotsIntoWindows) {
  WindowedMetrics windows(4);
  // 10 synthetic slots: 3 arrivals at slot 1, successes at 3 and 7, jam at 5.
  for (slot_t s = 1; s <= 10; ++s) {
    const bool jam = s == 5;
    const bool success = s == 3 || s == 7;
    const std::uint64_t senders = success ? 1 : 2;
    windows.on_slot(resolve_slot(s, senders, jam, success ? 1 : kNoNode), s == 1 ? 3 : 0,
                    3 - (s >= 3 ? 1 : 0) - (s >= 7 ? 1 : 0));
  }
  windows.on_run_end(SimResult{});
  ASSERT_EQ(windows.series().size(), 3u) << "two full windows + flushed partial";
  const WindowStats& w0 = windows.series()[0];
  EXPECT_EQ(w0.start, 1u);
  EXPECT_EQ(w0.end, 4u);
  EXPECT_EQ(w0.arrivals, 3u);
  EXPECT_EQ(w0.successes, 1u);
  EXPECT_EQ(w0.jammed, 0u);
  EXPECT_EQ(w0.sends, 2u + 2u + 1u + 2u);
  EXPECT_EQ(w0.live_max, 3u);
  EXPECT_EQ(w0.live_end, 2u);
  EXPECT_DOUBLE_EQ(w0.throughput(), 0.25);
  const WindowStats& w1 = windows.series()[1];
  EXPECT_EQ(w1.jammed, 1u);
  EXPECT_EQ(w1.successes, 1u);
  const WindowStats& w2 = windows.series()[2];
  EXPECT_EQ(w2.start, 9u);
  EXPECT_EQ(w2.end, 10u);
  EXPECT_EQ(w2.width(), 2u);
  EXPECT_EQ(windows.peak_backlog(), 3u);
}

TEST(WindowedMetrics, AgreesWithEngineCountersOnARealRun) {
  FunctionSet fs = functions_constant_g(4.0);
  ComposedAdversary adv(batch_arrival(32, 1), iid_jammer(0.2));
  SimConfig cfg;
  cfg.horizon = 10'000;
  cfg.seed = 5;
  WindowedMetrics windows(128);
  const SimResult res = run_fast_cjz(fs, adv, cfg, &windows);
  std::uint64_t successes = 0, jammed = 0, sends = 0, arrivals = 0;
  slot_t covered = 0;
  for (const WindowStats& w : windows.series()) {
    successes += w.successes;
    jammed += w.jammed;
    sends += w.sends;
    arrivals += w.arrivals;
    covered += w.width();
  }
  EXPECT_EQ(covered, res.slots) << "windows tile the run exactly";
  EXPECT_EQ(successes, res.successes);
  EXPECT_EQ(jammed, res.jammed_slots);
  EXPECT_EQ(sends, res.total_sends);
  EXPECT_EQ(arrivals, res.arrivals);
}

TEST(ObserverChain, FansOutToAllObserversAndSkipsNull) {
  class Counter final : public SlotObserver {
   public:
    int slots = 0, ends = 0;
    void on_slot(const SlotOutcome&, std::uint64_t, std::uint64_t) override { ++slots; }
    void on_run_end(const SimResult&) override { ++ends; }
  };
  Counter a, b;
  ObserverChain chain{&a, nullptr, &b};
  FunctionSet fs = functions_constant_g(4.0);
  ComposedAdversary adv(batch_arrival(4, 1), no_jam());
  SimConfig cfg;
  cfg.horizon = 500;
  run_fast_cjz(fs, adv, cfg, &chain);
  EXPECT_EQ(a.slots, 500);
  EXPECT_EQ(b.slots, 500);
  EXPECT_EQ(a.ends, 1);
  EXPECT_EQ(b.ends, 1);
}

}  // namespace
}  // namespace cr
