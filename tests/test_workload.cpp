// Tests for the composable WorkloadSpec API (src/exp/workload.hpp) and the
// typed component registries behind it (src/adversary/component_registry.hpp,
// src/adversary/param_schema.hpp):
//
//   * ParamSchema validation — unknown/ill-typed/duplicated parameters are
//     hard errors naming the offending key; defaults resolve;
//   * flat-form parse/serialize round-trips and its hard-error cases
//     (unknown keys, unknown components, gamma under g=log);
//   * preset parity — the five registered scenario builders, now thin
//     presets over WorkloadSpec, produce byte-identical SimResults to the
//     direct hand-built compositions they replaced;
//   * suite integration — a manifest cell carrying an unconsumed workload
//     or scenario parameter fails at parse time, naming the key.
#include "exp/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "adversary/arrivals.hpp"
#include "adversary/component_registry.hpp"
#include "adversary/jammers.hpp"
#include "cli/suite.hpp"
#include "common/json.hpp"
#include "exp/scenarios.hpp"

namespace cr {
namespace {

using KV = std::vector<std::pair<std::string, std::string>>;

// --- ParamSchema -----------------------------------------------------------

const ParamSchema& test_schema() {
  static const ParamSchema schema = {
      {"n", ParamType::kUint, "256", "batch size"},
      {"rate", ParamType::kDouble, "0.5", "probability"},
  };
  return schema;
}

TEST(ParamSchema, DefaultsResolveWhenUnset) {
  const auto checked = ParamValidation::check(test_schema(), {}, "arrival \"x\"");
  ASSERT_TRUE(checked.ok()) << checked.error;
  EXPECT_EQ(checked.values.get_uint("n"), 256u);
  EXPECT_DOUBLE_EQ(checked.values.get_double("rate"), 0.5);
}

TEST(ParamSchema, SuppliedValuesOverrideDefaults) {
  const auto checked =
      ParamValidation::check(test_schema(), {{"n", "7"}, {"rate", "0.125"}}, "arrival \"x\"");
  ASSERT_TRUE(checked.ok()) << checked.error;
  EXPECT_EQ(checked.values.get_uint("n"), 7u);
  EXPECT_DOUBLE_EQ(checked.values.get_double("rate"), 0.125);
}

TEST(ParamSchema, UnknownParamNamesTheKey) {
  const auto checked = ParamValidation::check(test_schema(), {{"rat", "0.5"}}, "arrival \"x\"");
  ASSERT_FALSE(checked.ok());
  EXPECT_NE(checked.error.find("\"rat\""), std::string::npos) << checked.error;
  EXPECT_NE(checked.error.find("did you mean \"rate\""), std::string::npos) << checked.error;
}

TEST(ParamSchema, IllTypedValueIsAnError) {
  const auto bad_uint =
      ParamValidation::check(test_schema(), {{"n", "-3"}}, "arrival \"x\"");
  EXPECT_FALSE(bad_uint.ok());
  EXPECT_NE(bad_uint.error.find("\"n\""), std::string::npos) << bad_uint.error;
  const auto bad_double =
      ParamValidation::check(test_schema(), {{"rate", "fast"}}, "arrival \"x\"");
  EXPECT_FALSE(bad_double.ok());
  const auto duplicate = ParamValidation::check(
      test_schema(), {{"n", "1"}, {"n", "2"}}, "arrival \"x\"");
  EXPECT_FALSE(duplicate.ok());
  EXPECT_NE(duplicate.error.find("twice"), std::string::npos) << duplicate.error;
}

TEST(ParamSchema, ScalarTextParsers) {
  std::uint64_t u = 0;
  EXPECT_TRUE(parse_uint_text("18446744073709551615", &u));
  EXPECT_EQ(u, UINT64_MAX);
  EXPECT_FALSE(parse_uint_text("18446744073709551616", &u));  // overflow
  EXPECT_FALSE(parse_uint_text("1.5", &u));
  EXPECT_FALSE(parse_uint_text("", &u));
  double d = 0.0;
  EXPECT_TRUE(parse_double_text("-2.5e-3", &d));
  EXPECT_DOUBLE_EQ(d, -2.5e-3);
  EXPECT_FALSE(parse_double_text("1e999", &d));  // non-finite
  EXPECT_FALSE(parse_double_text("1x", &d));
  // double_param_text round-trips exactly.
  for (const double v : {4.0, 0.1, 1.0 / 3.0, 1e-17}) {
    double back = 0.0;
    ASSERT_TRUE(parse_double_text(double_param_text(v), &back));
    EXPECT_EQ(back, v);
  }
}

// --- component registries --------------------------------------------------

TEST(ComponentRegistries, BuiltinsRegistered) {
  const auto arrivals = ArrivalRegistry::instance().names();
  for (const char* name :
       {"none", "batch", "bernoulli", "uniform_random", "paced", "bursty"})
    EXPECT_NE(std::find(arrivals.begin(), arrivals.end(), name), arrivals.end()) << name;
  const auto jammers = JammerRegistry::instance().names();
  for (const char* name :
       {"none", "iid", "prefix", "periodic", "budget_paced", "reactive"})
    EXPECT_NE(std::find(jammers.begin(), jammers.end(), name), jammers.end()) << name;
  EXPECT_EQ(ArrivalRegistry::instance().find("nope"), nullptr);
  EXPECT_EQ(JammerRegistry::instance().find("nope"), nullptr);
}

TEST(ComponentRegistries, EverySchemaDefaultValidates) {
  for (const ArrivalEntry& entry : ArrivalRegistry::instance().entries()) {
    const auto checked =
        ParamValidation::check(entry.schema, {}, "arrival \"" + entry.name + "\"");
    EXPECT_TRUE(checked.ok()) << entry.name << ": " << checked.error;
  }
  for (const JammerEntry& entry : JammerRegistry::instance().entries()) {
    const auto checked =
        ParamValidation::check(entry.schema, {}, "jammer \"" + entry.name + "\"");
    EXPECT_TRUE(checked.ok()) << entry.name << ": " << checked.error;
  }
}

// --- flat form -------------------------------------------------------------

TEST(WorkloadParse, FullFormParses) {
  const auto parsed = parse_workload({{"arrival", "bernoulli"},
                                      {"arrival.rate", "0.2"},
                                      {"jammer", "iid"},
                                      {"jammer.fraction", "0.3"},
                                      {"g", "exp_sqrt_log"},
                                      {"gamma", "2"},
                                      {"protocol", "cjz"},
                                      {"horizon", "8192"}});
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.spec.arrival.name, "bernoulli");
  ASSERT_EQ(parsed.spec.arrival.params.size(), 1u);
  EXPECT_EQ(parsed.spec.arrival.params[0], (std::pair<std::string, std::string>{"rate", "0.2"}));
  EXPECT_EQ(parsed.spec.jammer.name, "iid");
  EXPECT_EQ(parsed.spec.g_regime, "exp_sqrt_log");
  EXPECT_TRUE(parsed.spec.gamma_set);
  EXPECT_DOUBLE_EQ(parsed.spec.gamma, 2.0);
  EXPECT_EQ(parsed.spec.horizon, 8192u);
}

TEST(WorkloadParse, UnknownTopLevelKeyNamesTheKey) {
  const auto parsed = parse_workload({{"arival", "batch"}});
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("\"arival\""), std::string::npos) << parsed.error;
  EXPECT_NE(parsed.error.find("did you mean \"arrival\""), std::string::npos) << parsed.error;
}

TEST(WorkloadParse, UnconsumedComponentParamNamesTheKey) {
  const auto parsed = parse_workload({{"arrival", "batch"}, {"arrival.rate", "0.5"}});
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("\"rate\""), std::string::npos) << parsed.error;
  EXPECT_NE(parsed.error.find("batch"), std::string::npos) << parsed.error;
}

TEST(WorkloadParse, UnknownComponentSuggests) {
  const auto parsed = parse_workload({{"jammer", "reactiv"}});
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("did you mean \"reactive\""), std::string::npos) << parsed.error;
}

TEST(WorkloadParse, GammaUnderLogRegimeIsAnError) {
  const auto parsed = parse_workload({{"g", "log"}, {"gamma", "3"}});
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("\"gamma\""), std::string::npos) << parsed.error;
  // Without the explicit gamma the same regime is fine.
  EXPECT_TRUE(parse_workload({{"g", "log"}}).ok());
}

TEST(WorkloadParse, MoreHardErrors) {
  EXPECT_FALSE(parse_workload({{"horizon", "0"}}).ok());
  EXPECT_FALSE(parse_workload({{"horizon", "-1"}}).ok());
  EXPECT_FALSE(parse_workload({{"gamma", "abc"}}).ok());
  EXPECT_FALSE(parse_workload({{"g", "cubic"}}).ok());
  EXPECT_FALSE(parse_workload({{"protocol", "tcp"}}).ok());
  EXPECT_FALSE(parse_workload({{"arrival", "batch"}, {"arrival", "paced"}}).ok());
  EXPECT_FALSE(parse_workload({{"seed", "1"}}).ok());  // runner-owned, not a flat key
}

TEST(WorkloadParse, RoundTripsThroughFlags) {
  WorkloadSpec spec;
  spec.arrival = {"bursty", {{"period", "512"}, {"burst", "32"}}};
  spec.jammer = {"reactive", {{"margin", "6.5"}, {"burst", "3"}}};
  spec.g_regime = "exp_sqrt_log";
  spec.gamma = 1.0 / 3.0;
  spec.gamma_set = true;
  spec.protocol = "h_backoff";
  spec.horizon = 12345;
  const auto parsed = parse_workload(workload_to_flags(spec));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.spec, spec);

  const auto parsed_default = parse_workload(workload_to_flags(WorkloadSpec{}));
  ASSERT_TRUE(parsed_default.ok()) << parsed_default.error;
  EXPECT_EQ(parsed_default.spec, WorkloadSpec{});
}

TEST(WorkloadBuild, DeterministicPerSeed) {
  WorkloadSpec spec;
  spec.arrival = {"bernoulli", {{"rate", "0.2"}}};
  spec.jammer = {"iid", {{"fraction", "0.2"}}};
  spec.horizon = 4096;
  spec.seed = 11;
  const auto run_once = [&] {
    Scenario sc = build_workload(spec);
    return run_scenario(EngineRegistry::instance().preferred(sc.protocol), sc);
  };
  const SimResult a = run_once();
  const SimResult b = run_once();
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.jammed_slots, b.jammed_slots);
  EXPECT_EQ(a.total_sends, b.total_sends);
  EXPECT_GT(a.arrivals, 0u);
}

TEST(WorkloadBuild, EveryProtocolRunsOnSomeEngine) {
  for (const std::string& protocol : workload_protocol_names()) {
    WorkloadSpec spec;
    spec.arrival = {"batch", {{"n", "16"}}};
    spec.protocol = protocol;
    spec.horizon = 1024;
    Scenario sc = build_workload(spec);
    const SimResult r = run_scenario(EngineRegistry::instance().preferred(sc.protocol), sc);
    EXPECT_EQ(r.arrivals, 16u) << protocol;
  }
}

// --- preset parity ---------------------------------------------------------

/// Hand-builds the scenario exactly the way the pre-WorkloadSpec builders
/// composed it (direct arrivals/jammers calls), so the registry path is
/// checked against an independent construction.
Scenario legacy_build(const std::string& name, const ScenarioParams& p) {
  Scenario sc;
  if (name == "worst_case") {
    sc.fs = functions_constant_g(4.0);
    sc.adversary = std::make_unique<ComposedAdversary>(
        paced_arrivals(sc.fs, p.arrival_margin),
        p.jam > 0.0 ? iid_jammer(p.jam) : no_jam());
  } else if (name == "batch") {
    sc.fs = functions_for_regime(p.g_regime, p.gamma);
    sc.adversary = std::make_unique<ComposedAdversary>(
        batch_arrival(p.n, 1), p.jam > 0.0 ? iid_jammer(p.jam) : no_jam());
  } else if (name == "smooth") {
    sc.fs = functions_for_regime(p.g_regime, p.gamma);
    sc.adversary = std::make_unique<ComposedAdversary>(
        paced_arrivals(sc.fs, p.arrival_margin), budget_paced_jammer(sc.fs.g, p.jam_margin));
  } else if (name == "bernoulli_stream") {
    sc.fs = functions_for_regime(p.g_regime, p.gamma);
    sc.adversary = std::make_unique<ComposedAdversary>(
        bernoulli_arrivals(p.rate, 1, p.horizon),
        p.jam > 0.0 ? iid_jammer(p.jam) : no_jam());
  } else if (name == "bursty") {
    sc.fs = functions_for_regime(p.g_regime, p.gamma);
    const double ft = sc.fs.f(static_cast<double>(p.horizon));
    const auto period = static_cast<slot_t>(
        std::max(1.0, std::ceil(p.arrival_margin * static_cast<double>(p.n) * ft)));
    sc.adversary = std::make_unique<ComposedAdversary>(
        bursty_arrivals(period, p.n), budget_paced_jammer(sc.fs.g, p.jam_margin));
  } else {
    ADD_FAILURE() << "unknown legacy scenario " << name;
  }
  sc.config.horizon = p.horizon;
  sc.config.seed = p.seed;
  sc.protocol = cjz_protocol(sc.fs);
  return sc;
}

void expect_identical(const SimResult& a, const SimResult& b, const std::string& context) {
  EXPECT_EQ(a.slots, b.slots) << context;
  EXPECT_EQ(a.arrivals, b.arrivals) << context;
  EXPECT_EQ(a.successes, b.successes) << context;
  EXPECT_EQ(a.jammed_slots, b.jammed_slots) << context;
  EXPECT_EQ(a.total_sends, b.total_sends) << context;
  EXPECT_EQ(a.live_at_end, b.live_at_end) << context;
  EXPECT_EQ(a.success_times, b.success_times) << context;
  // SlotOutcome has defaulted operator== — the full traces must match
  // slot-for-slot (senders, jam pattern, winner).
  EXPECT_EQ(a.slot_outcomes, b.slot_outcomes) << context;
}

TEST(PresetParity, RegistryPresetsMatchLegacyCompositionsByteForByte) {
  for (const std::string& name : ScenarioRegistry::instance().names()) {
    for (const std::uint64_t seed : {1ull, 42ull}) {
      ScenarioParams p;
      p.horizon = 4096;
      p.seed = seed;
      p.n = 64;
      Scenario preset = ScenarioRegistry::instance().build(name, p);
      Scenario legacy = legacy_build(name, p);
      EXPECT_EQ(preset.adversary->name(), legacy.adversary->name()) << name;
      preset.config.recording = RecordingConfig::full_trace();
      legacy.config.recording = RecordingConfig::full_trace();
      const Engine& engine = EngineRegistry::instance().preferred(preset.protocol);
      const SimResult a = run_scenario(engine, preset);
      const SimResult b = run_scenario(engine, legacy);
      expect_identical(a, b, name + " seed=" + std::to_string(seed));
    }
  }
}

TEST(PresetParity, PresetWorkloadsSerializeToValidFlatForms) {
  // Every preset's WorkloadSpec must survive the flat form unchanged — so
  // any legacy scenario sweep is also a valid suite workload sweep.
  for (const std::string& name : ScenarioRegistry::instance().names()) {
    ScenarioParams p;
    p.horizon = 2048;
    p.jam = 0.25;
    const WorkloadSpec spec = scenario_preset_workload(name, p);
    EXPECT_EQ(validate_workload(spec), "") << name;
    const auto parsed = parse_workload(workload_to_flags(spec));
    ASSERT_TRUE(parsed.ok()) << name << ": " << parsed.error;
    EXPECT_EQ(parsed.spec, spec) << name;
  }
}

// --- suite integration -----------------------------------------------------

SuiteLoadResult parse_manifest(const std::string& text) {
  const JsonParseResult json = JsonValue::parse(text);
  EXPECT_TRUE(json.ok()) << json.error;
  return parse_suite(*json.value, "test-manifest");
}

TEST(WorkloadSuite, ComponentGridValidates) {
  const auto loaded = parse_manifest(R"({
    "name": "w",
    "cells": [{"bench": "workload",
               "grid": {"arrival": ["batch", "paced"], "jammer": ["none", "iid"]}},
              {"bench": "workload",
               "grid": {"jammer": ["iid"], "jammer.fraction": [0.1, 0.25]}}]})");
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(expand_suite(loaded.spec).size(), 6u);
}

TEST(WorkloadSuite, ParamAxisCrossedWithNonConsumingComponentFails) {
  // jammer=none × jammer.fraction is exactly the cell-level no-op the
  // validator bans: the axis must be split per component.
  const auto loaded = parse_manifest(R"({
    "name": "w",
    "cells": [{"bench": "workload",
               "grid": {"jammer": ["none", "iid"], "jammer.fraction": [0.25]}}]})");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("\"fraction\""), std::string::npos) << loaded.error;
}

TEST(WorkloadSuite, UnconsumedWorkloadParamFailsAtParseTimeNamingTheKey) {
  const auto loaded = parse_manifest(R"({
    "name": "w",
    "cells": [{"bench": "workload",
               "grid": {"arrival": ["batch"], "arrival.rate": [0.5]}}]})");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("\"rate\""), std::string::npos) << loaded.error;
}

TEST(WorkloadSuite, UnknownComponentParamAxisIsRejectedUpFront) {
  const auto loaded = parse_manifest(R"({
    "name": "w",
    "cells": [{"bench": "workload", "grid": {"arrivals": ["batch"]}}]})");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("arrivals"), std::string::npos) << loaded.error;
}

TEST(WorkloadSuite, IncompatibleEngineCellFailsAtParseTime) {
  // beb is a factory protocol: only the generic engine executes it.
  const auto loaded = parse_manifest(R"({
    "name": "w",
    "cells": [{"bench": "workload",
               "grid": {"protocol": ["beb"], "engine": ["fast_cjz"]}}]})");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("cannot execute"), std::string::npos) << loaded.error;
}

TEST(ScenarioSuite, UnconsumedScenarioParamFailsAtParseTimeNamingTheKey) {
  const auto loaded = parse_manifest(R"({
    "name": "s",
    "cells": [{"bench": "scenario",
               "grid": {"scenario": ["smooth"], "jam": [0.25]}}]})");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("--jam"), std::string::npos) << loaded.error;
  EXPECT_NE(loaded.error.find("smooth"), std::string::npos) << loaded.error;
}

TEST(ScenarioSuite, GammaUnderLogRegimeFailsLikeTheWorkloadPath) {
  // batch consumes gamma in general, but g_regime=log has no scale — the
  // preset path must reject the combination exactly like parse_workload.
  const auto loaded = parse_manifest(R"({
    "name": "s",
    "cells": [{"bench": "scenario",
               "grid": {"scenario": ["batch"], "g_regime": ["log"], "gamma": [2, 8]}}]})");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("--gamma"), std::string::npos) << loaded.error;
  // Same axes under const-g remain valid.
  const auto const_g = parse_manifest(R"({
    "name": "s",
    "cells": [{"bench": "scenario",
               "grid": {"scenario": ["batch"], "g_regime": ["const"], "gamma": [2, 8]}}]})");
  EXPECT_TRUE(const_g.ok()) << const_g.error;
}

TEST(ScenarioSuite, ConsumedParamsStillPass) {
  const auto loaded = parse_manifest(R"({
    "name": "s",
    "cells": [{"bench": "scenario",
               "grid": {"scenario": ["smooth", "bursty"], "jam_margin": [8, 32]}}]})");
  EXPECT_TRUE(loaded.ok()) << loaded.error;
}

TEST(WorkloadSuite, SuggestsBenchNameOnTypo) {
  const auto loaded =
      parse_manifest(R"({"name": "s", "cells": [{"bench": "worklod"}]})");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("did you mean \"workload\""), std::string::npos) << loaded.error;
}

}  // namespace
}  // namespace cr
