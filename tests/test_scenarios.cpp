// Scenario builders, the scenario registry, and the deterministic parallel
// replication path.
//
// The builder tests pin the documented adversary/config shapes of the three
// g regimes and the named workloads; the determinism tests assert that
// parallel replicate() output is ELEMENT-WISE IDENTICAL to the serial path
// for threads ∈ {1, 2, 8} — the contract that makes --threads a pure
// speed knob on every bench.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>

#include "engine/engine.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"

namespace cr {
namespace {

// ---------------------------------------------------------------- g regimes

TEST(GRegimes, ConstantG) {
  const FunctionSet fs = functions_constant_g(4.0);
  for (const double x : {1.0, 100.0, 1e6}) EXPECT_DOUBLE_EQ(fs.g(x), 4.0);
  // f = cf·log2(x+2)/max(1, log2 g)² grows logarithmically.
  EXPECT_GT(fs.f(1 << 20), fs.f(1 << 10));
}

TEST(GRegimes, LogG) {
  const FunctionSet fs = functions_log_g();
  EXPECT_DOUBLE_EQ(fs.g(14.0), 4.0);  // log2(14+2)
  EXPECT_DOUBLE_EQ(fs.g(1022.0), 10.0);
}

TEST(GRegimes, ExpSqrtLogG) {
  const FunctionSet fs = functions_exp_sqrt_log_g(1.0);
  const double x = 1022.0;  // log2(x+2) = 10
  EXPECT_NEAR(fs.g(x), std::pow(2.0, std::sqrt(10.0)), 1e-9);
}

TEST(GRegimes, ForRegimeDispatchesByName) {
  EXPECT_DOUBLE_EQ(functions_for_regime("const", 7.0).g(100.0), 7.0);
  EXPECT_DOUBLE_EQ(functions_for_regime("log").g(14.0), functions_log_g().g(14.0));
  EXPECT_DOUBLE_EQ(functions_for_regime("exp_sqrt_log", 1.0).g(1022.0),
                   functions_exp_sqrt_log_g(1.0).g(1022.0));
}

TEST(GRegimesDeathTest, ForRegimeRejectsUnknownNames) {
  EXPECT_DEATH(functions_for_regime("cubic"), "unknown regime");
}

// ---------------------------------------------------------- builder shapes

TEST(ScenarioBuilders, WorstCaseShape) {
  const Scenario sc = worst_case_scenario(1 << 14, 0.25, 4.0, 42);
  EXPECT_EQ(sc.config.horizon, static_cast<slot_t>(1 << 14));
  EXPECT_EQ(sc.config.seed, 42u);
  EXPECT_DOUBLE_EQ(sc.fs.g(123.0), 4.0);  // always configured for g = const
  EXPECT_EQ(sc.adversary->name(), "paced(1/4.000000f)+iid(0.250000)");
  EXPECT_EQ(sc.protocol.kind, ProtocolSpec::Kind::kCjz);
}

TEST(ScenarioBuilders, WorstCaseZeroJamUsesNoJam) {
  const Scenario sc = worst_case_scenario(1024, 0.0, 4.0, 1);
  EXPECT_EQ(sc.adversary->name(), "paced(1/4.000000f)+nojam");
}

TEST(ScenarioBuilders, BatchShape) {
  const Scenario sc = batch_scenario(48, 0.25, 4096, functions_constant_g(4.0));
  EXPECT_EQ(sc.config.horizon, 4096u);
  EXPECT_EQ(sc.adversary->name(), "batch(48)+iid(0.250000)");
  EXPECT_EQ(sc.protocol.kind, ProtocolSpec::Kind::kCjz);
}

TEST(ScenarioBuilders, SmoothShape) {
  const Scenario sc = smooth_scenario(2048, functions_log_g(), 8.0, 8.0);
  EXPECT_EQ(sc.config.horizon, 2048u);
  EXPECT_EQ(sc.adversary->name(), "paced(1/8.000000f)+paced(1/8.000000g)");
  EXPECT_EQ(sc.protocol.kind, ProtocolSpec::Kind::kCjz);
}

// -------------------------------------------------------- scenario registry

TEST(ScenarioRegistryTest, KnowsTheBuiltInWorkloads) {
  const auto names = ScenarioRegistry::instance().names();
  for (const char* expected :
       {"worst_case", "batch", "smooth", "bernoulli_stream", "bursty"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing scenario: " << expected;
  }
  EXPECT_EQ(ScenarioRegistry::instance().find("nope"), nullptr);
}

TEST(ScenarioRegistryTest, BuildsParameterisedBatch) {
  ScenarioParams params;
  params.n = 32;
  params.jam = 0.0;
  params.horizon = 200'000;
  params.seed = 7;
  Scenario sc = ScenarioRegistry::instance().build("batch", params);
  sc.config.stop_when_empty = true;
  EXPECT_EQ(sc.config.seed, 7u);
  EXPECT_EQ(sc.adversary->name(), "batch(32)+nojam");
  const SimResult res =
      run_scenario(EngineRegistry::instance().preferred(sc.protocol), sc);
  EXPECT_EQ(res.arrivals, 32u);
  EXPECT_EQ(res.successes, 32u);  // clean batch drains completely
}

TEST(ScenarioRegistryTest, EveryEntryBuildsAndRuns) {
  // Each registered workload must produce a runnable scenario with the
  // declared protocol; tiny horizons keep this a structural check.
  ScenarioParams params;
  params.horizon = 512;
  params.n = 8;
  for (const auto& name : ScenarioRegistry::instance().names()) {
    Scenario sc = ScenarioRegistry::instance().build(name, params);
    ASSERT_NE(sc.adversary, nullptr) << name;
    const SimResult res =
        run_scenario(EngineRegistry::instance().preferred(sc.protocol), sc);
    EXPECT_EQ(res.slots, 512u) << name;
  }
}

TEST(ScenarioRegistryDeathTest, RejectsUnknownNames) {
  EXPECT_DEATH(ScenarioRegistry::instance().build("no_such_workload"), "unknown scenario");
}

// ------------------------------------------------- parallel determinism

SimResult run_batch_rep(std::uint64_t seed) {
  Scenario sc = batch_scenario(24, 0.25, 100'000, functions_constant_g(4.0));
  sc.config.seed = seed;
  sc.config.stop_when_empty = true;
  sc.config.recording = RecordingConfig::success_times();  // exercise vector payloads too
  return run_scenario(EngineRegistry::instance().preferred(sc.protocol), sc);
}

TEST(ParallelReplicate, BitIdenticalToSerialForAllThreadCounts) {
  const int reps = 12;
  const std::uint64_t base = 900;
  const auto serial = replicate(reps, base, run_batch_rep, /*threads=*/1);
  ASSERT_EQ(serial.size(), static_cast<std::size_t>(reps));
  for (const int threads : {1, 2, 8}) {
    const auto parallel = replicate(reps, base, run_batch_rep, threads);
    ASSERT_EQ(parallel.size(), serial.size()) << "threads=" << threads;
    for (int r = 0; r < reps; ++r) {
      EXPECT_EQ(parallel[static_cast<std::size_t>(r)], serial[static_cast<std::size_t>(r)])
          << "threads=" << threads << " rep=" << r;
    }
  }
}

TEST(ParallelReplicate, ResultsAreSeedOrdered) {
  // With more threads than reps and an artificial reversal of finishing
  // order, results must still land at their seed's index.
  const auto results = replicate_map(
      8, 100, [](std::uint64_t seed) { return seed; }, /*threads=*/8);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], 100 + i);
}

TEST(ParallelReplicate, EveryRepRunsExactlyOnce) {
  std::atomic<int> calls{0};
  const auto results = replicate_map(
      100, 0,
      [&](std::uint64_t seed) {
        calls.fetch_add(1);
        return seed;
      },
      /*threads=*/4);
  EXPECT_EQ(calls.load(), 100);
  EXPECT_EQ(results.size(), 100u);
}

TEST(ParallelReplicate, ThreadCountAboveRepsIsClamped) {
  const auto results = replicate_map(
      3, 5, [](std::uint64_t seed) { return seed * 2; }, /*threads=*/64);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[2], 14u);
}

}  // namespace
}  // namespace cr
